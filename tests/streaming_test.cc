// Tests for the streaming one-pass validator and the document counter.
#include <gtest/gtest.h>

#include <random>
#include <utility>

#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/count.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/streaming.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

DfaXsd LibraryXsd() {
  SchemaBuilder builder;
  builder.AddType("Lib", "library", "Book*");
  builder.AddType("Book", "book", "Title Chapter+");
  builder.AddType("Title", "title", "%");
  builder.AddType("Chapter", "chapter", "%");
  builder.AddStart("Lib");
  return DfaXsdFromStEdtd(ReduceEdtd(builder.Build()));
}

TEST(StreamingTest, AcceptsEventByEvent) {
  DfaXsd xsd = LibraryXsd();
  int lib = xsd.sigma.Find("library"), book = xsd.sigma.Find("book"),
      title = xsd.sigma.Find("title"), chapter = xsd.sigma.Find("chapter");
  StreamingValidator v(&xsd);
  EXPECT_TRUE(v.StartElement(lib));
  EXPECT_TRUE(v.StartElement(book));
  EXPECT_EQ(v.depth(), 2);
  EXPECT_TRUE(v.StartElement(title));
  EXPECT_TRUE(v.EndElement());
  EXPECT_TRUE(v.StartElement(chapter));
  EXPECT_TRUE(v.EndElement());
  EXPECT_TRUE(v.EndElement());  // </book>
  EXPECT_FALSE(v.EndDocument());  // library still open
  EXPECT_TRUE(v.EndElement());  // </library>
  EXPECT_TRUE(v.EndDocument());
}

TEST(StreamingTest, RejectsAtTheFirstViolation) {
  DfaXsd xsd = LibraryXsd();
  int lib = xsd.sigma.Find("library"), book = xsd.sigma.Find("book"),
      chapter = xsd.sigma.Find("chapter");
  StreamingValidator v(&xsd);
  EXPECT_TRUE(v.StartElement(lib));
  EXPECT_TRUE(v.StartElement(book));
  // chapter before title violates the content model immediately.
  EXPECT_FALSE(v.StartElement(chapter));
  EXPECT_FALSE(v.ok());
  // Subsequent events keep failing but do not crash.
  EXPECT_FALSE(v.EndElement());
  EXPECT_FALSE(v.EndDocument());
}

TEST(StreamingTest, RejectsBadRootsAndSecondRoots) {
  DfaXsd xsd = LibraryXsd();
  int lib = xsd.sigma.Find("library"), book = xsd.sigma.Find("book");
  {
    StreamingValidator v(&xsd);
    EXPECT_FALSE(v.StartElement(book));  // not a start symbol
  }
  {
    StreamingValidator v(&xsd);
    EXPECT_TRUE(v.StartElement(lib));
    EXPECT_TRUE(v.EndElement());
    EXPECT_FALSE(v.StartElement(lib));  // second root
  }
  {
    StreamingValidator v(&xsd);
    EXPECT_FALSE(v.EndElement());  // nothing open
  }
}

TEST(StreamingTest, AgreesWithRecursiveValidationOnEnumeration) {
  DfaXsd xsd = LibraryXsd();
  for (const Tree& tree : EnumerateTrees({3, 2, xsd.sigma.size()})) {
    EXPECT_EQ(ValidateStreaming(xsd, tree), xsd.Accepts(tree))
        << tree.ToString(xsd.sigma);
  }
}

// Property: streaming == recursive on random schemas and random trees.
class StreamingRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamingRandomTest, MatchesRecursiveValidator) {
  std::mt19937 rng(GetParam() * 7177 + 3);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = 4;
  DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
  // Members...
  for (int i = 0; i < 5; ++i) {
    std::optional<Tree> tree = SampleTree(xsd, &rng, 4);
    ASSERT_TRUE(tree.has_value());
    EXPECT_TRUE(ValidateStreaming(xsd, *tree));
  }
  // ...and arbitrary small trees.
  for (const Tree& tree : EnumerateTrees({3, 2, 3})) {
    EXPECT_EQ(ValidateStreaming(xsd, tree), xsd.Accepts(tree));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingRandomTest, ::testing::Range(0, 15));

TEST(CountTest, CountsMatchEnumerationExactly) {
  DfaXsd xsd = LibraryXsd();
  // Keep the enumeration sizes sane: wide sweeps at shallow depth, a
  // narrower sweep at depth 3.
  const std::pair<int, int> cases[] = {{1, 3}, {2, 0}, {2, 2}, {2, 3},
                                       {3, 1}, {3, 2}};
  for (auto [depth, width] : cases) {
    int64_t expected = 0;
    for (const Tree& tree :
         EnumerateTrees({depth, width, xsd.sigma.size()})) {
      if (xsd.Accepts(tree)) ++expected;
    }
    EXPECT_DOUBLE_EQ(CountDocuments(xsd, depth, width),
                     static_cast<double>(expected))
        << "depth=" << depth << " width=" << width;
  }
}

TEST(CountTest, GrowsWithBounds) {
  DfaXsd xsd = LibraryXsd();
  double small = CountDocuments(xsd, 3, 2);
  double large = CountDocuments(xsd, 3, 6);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
}

TEST(CountTest, EmptySchemaCountsZero) {
  SchemaBuilder builder;
  builder.AddType("R", "a", "R");
  builder.AddStart("R");
  DfaXsd xsd = DfaXsdFromStEdtd(ReduceEdtd(builder.Build()));
  EXPECT_DOUBLE_EQ(CountDocuments(xsd, 4, 4), 0.0);
}

// Random cross-check: the DP equals brute-force enumeration.
class CountRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CountRandomTest, MatchesEnumeration) {
  std::mt19937 rng(GetParam() * 523 + 7);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
  int64_t expected = 0;
  for (const Tree& tree : EnumerateTrees({3, 2, 2})) {
    if (xsd.Accepts(tree)) ++expected;
  }
  EXPECT_DOUBLE_EQ(CountDocuments(xsd, 3, 2),
                   static_cast<double>(expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountRandomTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace stap
