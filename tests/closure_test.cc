// Unit tests for exchange closures and derivation trees
// (Definitions 2.14–2.16, Lemma 2.17).
#include <gtest/gtest.h>

#include "stap/approx/closure.h"
#include "stap/approx/lower_check.h"
#include "stap/tree/tree.h"

namespace stap {
namespace {

// Labels: a=0, b=1.
TEST(ClosureTest, SeedsOnlyWhenNoGuardMatches) {
  // Two trees with no common ancestor strings beyond the roots of equal
  // label... here roots differ, nothing exchanges.
  ClosureResult result = CloseUnderExchange({Tree(0), Tree(1)});
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.trees.size(), 2u);
  EXPECT_EQ(result.seed_count, 2);
}

TEST(ClosureTest, RootExchangeMergesLanguages) {
  // Equal root labels allow exchanging the whole trees (anc-str = "a"),
  // which yields nothing new; but equal deeper guards do.
  Tree t1(0, {Tree(0, {Tree(1)})});  // a(a(b))
  Tree t2(0, {Tree(0)});             // a(a)
  ClosureResult result = CloseUnderExchange({t1, t2});
  // Exchange at path {0} (anc-str a·a both): a(a(b)) <-> a(a) swaps the
  // subtrees, reproducing the seeds; nothing new appears.
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.trees.size(), 2u);
}

TEST(ClosureTest, GeneratesTheClassicCounterexample) {
  // The standard witness that ST-REG is not closed under union:
  // t1 = a(b(c), b(d))-style... here: r(x(a)) and r(x(b)) with sibling
  // structure r(x(a), x(b)). Exchange creates mixed variants.
  // Labels: r=0, x=1, a=2, b=3.
  Tree t1(0, {Tree(1, {Tree(2)}), Tree(1, {Tree(2)})});
  Tree t2(0, {Tree(1, {Tree(3)}), Tree(1, {Tree(3)})});
  ClosureResult result = CloseUnderExchange({t1, t2});
  EXPECT_TRUE(result.saturated);
  Tree mixed(0, {Tree(1, {Tree(2)}), Tree(1, {Tree(3)})});
  EXPECT_TRUE(result.Contains(mixed));
  Tree mixed_rev(0, {Tree(1, {Tree(3)}), Tree(1, {Tree(2)})});
  EXPECT_TRUE(result.Contains(mixed_rev));
  EXPECT_EQ(result.trees.size(), 4u);
}

TEST(ClosureTest, StringGuardedClosuresOfFiniteSetsAreFinite) {
  // Ancestor-string guards pin every exchange position to a fixed depth,
  // so depth and rank never exceed the seeds': the closure of a finite
  // set always saturates. Here closure({a, a(a)}) is just the seeds.
  ClosureResult result =
      CloseUnderExchange({Tree(0), Tree(0, {Tree(0)})});
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.trees.size(), 2u);
}

TEST(ClosureTest, CapStopsInfiniteTypeGuardedClosures) {
  // Under a coarser (1-state) guard the same seeds pump unboundedly:
  // chains of every length appear, and the cap must intervene.
  ClosureOptions options;
  options.max_trees = 20;
  ClosureResult result = CloseUnderTypeGuardedExchange(
      {Tree(0), Tree(0, {Tree(0)})}, Dfa::AllWords(1), options);
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.trees.size(), 20u);
}

TEST(ClosureTest, NodeBoundKeepsFixpointFinite) {
  ClosureOptions options;
  options.max_nodes = 4;
  ClosureResult result = CloseUnderTypeGuardedExchange(
      {Tree(0), Tree(0, {Tree(0)})}, Dfa::AllWords(1), options);
  EXPECT_TRUE(result.saturated);
  for (const Tree& tree : result.trees) {
    EXPECT_LE(tree.NumNodes(), 4);
  }
  // Chains of length 1..4 are all reachable.
  EXPECT_EQ(result.trees.size(), 4u);
}

TEST(ClosureTest, DerivationTreesWitnessMembership) {
  Tree t1(0, {Tree(1, {Tree(2)}), Tree(1, {Tree(2)})});
  Tree t2(0, {Tree(1, {Tree(3)}), Tree(1, {Tree(3)})});
  ClosureResult result = CloseUnderExchange({t1, t2});
  Tree mixed(0, {Tree(1, {Tree(2)}), Tree(1, {Tree(3)})});
  int index = -1;
  for (size_t i = 0; i < result.trees.size(); ++i) {
    if (result.trees[i] == mixed) index = static_cast<int>(i);
  }
  ASSERT_GE(index, 0);
  DerivationTree derivation = BuildDerivation(result, index);
  EXPECT_EQ(derivation.value, mixed);
  EXPECT_GE(derivation.Height(), 2);
  EXPECT_EQ(derivation.NumLeaves(), 2);
  // Leaves are seeds.
  const DerivationTree* leaf = derivation.left.get();
  while (leaf->left != nullptr) leaf = leaf->left.get();
  EXPECT_TRUE(leaf->value == t1 || leaf->value == t2);
}

TEST(ClosureTest, SeedsHaveSingletonDerivations) {
  ClosureResult result = CloseUnderExchange({Tree(0)});
  DerivationTree derivation = BuildDerivation(result, 0);
  EXPECT_EQ(derivation.Height(), 1);
  EXPECT_EQ(derivation.NumLeaves(), 1);
}

TEST(TypeGuardedClosureTest, CoarserGuardExchangesMore) {
  // t1 = a(a(b)), t2 = a(b): under ancestor-string guard the b-nodes
  // (anc-str a·a·b vs a·b) cannot exchange; under a 1-state guard DFA
  // (all strings equivalent) label-equality alone suffices.
  Tree t1(0, {Tree(0, {Tree(1)})});
  Tree t2(0, {Tree(1)});
  ClosureResult strict = CloseUnderExchange({t1, t2});
  // a-guarded: roots exchange trivially; a·a node in t1 has no partner.
  EXPECT_EQ(strict.trees.size(), 2u);

  Dfa trivial_guard = Dfa::AllWords(2);
  ClosureOptions options;
  options.max_trees = 50;
  options.max_nodes = 12;  // exchanged trees double in size otherwise
  ClosureResult loose =
      CloseUnderTypeGuardedExchange({t1, t2}, trivial_guard, options);
  // Now the inner a of t1 (guard state equal, label a) exchanges with
  // both roots: plugging t1 into its own a-leaf position grows chains
  // like a(a(a(b))) that the string guard forbids.
  EXPECT_GT(loose.trees.size(), 2u);
  Tree grown(0, {Tree(0, {Tree(0, {Tree(1)})})});
  EXPECT_TRUE(loose.Contains(grown));
}

TEST(TypeGuardedClosureTest, NkGuardEqualsStringGuardOnShallowTrees) {
  Dfa nk = NkAutomaton(3, 2);
  Tree t1(0, {Tree(1), Tree(0, {Tree(1)})});
  Tree t2(0, {Tree(0, {Tree(0)})});
  ClosureResult by_string = CloseUnderExchange({t1, t2});
  ClosureResult by_nk = CloseUnderTypeGuardedExchange({t1, t2}, nk);
  ASSERT_TRUE(by_string.saturated);
  ASSERT_TRUE(by_nk.saturated);
  EXPECT_EQ(by_string.trees.size(), by_nk.trees.size());
  for (const Tree& tree : by_string.trees) {
    EXPECT_TRUE(by_nk.Contains(tree));
  }
}

TEST(NkAutomatonTest, SeparatesShortStrings) {
  Dfa nk = NkAutomaton(2, 2);
  // All strings of length <= 2 land in distinct states.
  std::vector<Word> words = {{}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = i + 1; j < words.size(); ++j) {
      EXPECT_NE(nk.Run(nk.initial(), words[i]),
                nk.Run(nk.initial(), words[j]));
    }
  }
  // Longer strings collapse into the overflow state.
  EXPECT_EQ(nk.Run(nk.initial(), {0, 0, 0}), nk.Run(nk.initial(), {1, 1, 1}));
}

TEST(FindEscapeTest, LocatesMembersOutsideAPredicate) {
  Tree t1(0, {Tree(1, {Tree(2)}), Tree(1, {Tree(2)})});
  Tree t2(0, {Tree(1, {Tree(3)}), Tree(1, {Tree(3)})});
  ClosureResult result = CloseUnderExchange({t1, t2});
  auto homogeneous = [&](const Tree& tree) {
    int first = tree.At({0, 0}).label;
    return tree.At({1, 0}).label != first;  // escapes when mixed
  };
  std::optional<Tree> escape = FindEscape(result, homogeneous);
  ASSERT_TRUE(escape.has_value());
  EXPECT_NE(escape->At({0, 0}).label, escape->At({1, 0}).label);
}

}  // namespace
}  // namespace stap
