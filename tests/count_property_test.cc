// Algebraic property tests for the counting DPs.
//
// Counting a regular tree language slice must respect the Boolean
// algebra of the languages themselves:
//   |A ∪ B| + |A ∩ B| = |A| + |B|          (inclusion–exclusion)
//   d ≤ d'  ⇒  count(d) ≤ count(d')        (cumulative in depth)
//   w ≤ w'  ⇒  count(w) ≤ count(w')        (monotone in width)
//   lower ⊆ S ⊆ upper                       (sandwich, per the paper)
// checked on seeded random EDTDs, the paper's lower-bound families, and
// counted-content `family counted` instances. The sandwich checks also
// pin down the two containments `stap measure` relies on:
// |upper ∩ S| = |S| and |lower ∩ S| = |lower|.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "stap/approx/lower.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/count/counter.h"
#include "stap/count/measure.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/tree/enumerate.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

std::vector<CountValue> MustCountEdtd(const Edtd& edtd,
                                      const CountBounds& bounds) {
  StatusOr<std::vector<CountValue>> counts =
      CountEdtdByDepth(edtd, bounds, nullptr);
  EXPECT_TRUE(counts.ok());
  return counts.ok() ? *std::move(counts)
                     : std::vector<CountValue>(bounds.max_depth);
}

TEST(CountPropertyTest, InclusionExclusionAtEveryDepth) {
  CountBounds bounds;
  bounds.max_depth = 4;
  bounds.max_width = 2;

  for (int i = 0; i < 60; ++i) {
    std::mt19937 rng(MixSeed(0x1E0000 + i));
    RandomSchemaParams params;
    params.num_symbols = 2;
    params.num_types = 3;
    params.repeat_percent = (i % 2 == 0) ? 50 : 0;
    const Edtd a = RandomEdtd(&rng, params);
    const Edtd b = RandomEdtd(&rng, params);

    const std::vector<CountValue> count_a = MustCountEdtd(a, bounds);
    const std::vector<CountValue> count_b = MustCountEdtd(b, bounds);
    const std::vector<CountValue> count_union =
        MustCountEdtd(EdtdUnion(a, b), bounds);
    const std::vector<CountValue> count_inter =
        MustCountEdtd(EdtdIntersection(a, b), bounds);

    for (int d = 0; d < bounds.max_depth; ++d) {
      const CountValue lhs =
          CountValue::Add(count_union[d], count_inter[d]);
      const CountValue rhs = CountValue::Add(count_a[d], count_b[d]);
      ASSERT_EQ(CountValue::Compare(lhs, rhs), 0)
          << "schema pair " << i << " depth " << (d + 1) << ": |A∪B|+|A∩B|="
          << lhs.ToString() << " but |A|+|B|=" << rhs.ToString();
    }
  }
}

TEST(CountPropertyTest, CountsMonotoneInDepthAndWidth) {
  for (int i = 0; i < 40; ++i) {
    std::mt19937 rng(MixSeed(0x303000 + i));
    RandomSchemaParams params;
    params.num_symbols = 3;
    params.num_types = 4;
    params.repeat_percent = 30;
    const Edtd edtd = RandomEdtd(&rng, params);

    CountBounds bounds;
    bounds.max_depth = 5;
    bounds.max_width = 3;
    const std::vector<CountValue> counts = MustCountEdtd(edtd, bounds);
    for (int d = 1; d < bounds.max_depth; ++d) {
      EXPECT_LE(CountValue::Compare(counts[d - 1], counts[d]), 0)
          << "schema " << i << ": cumulative count shrank at depth "
          << (d + 1);
    }

    CountBounds narrow = bounds;
    narrow.max_width = 2;
    const std::vector<CountValue> narrow_counts =
        MustCountEdtd(edtd, narrow);
    for (int d = 0; d < bounds.max_depth; ++d) {
      EXPECT_LE(CountValue::Compare(narrow_counts[d], counts[d]), 0)
          << "schema " << i << ": widening the slice lost trees at depth "
          << (d + 1);
    }
  }
}

// The sandwich |L(lower)| ≤ |L(S)| ≤ |L(upper)| at every depth, plus the
// two intersection identities measure's difference arithmetic rests on.
void CheckSandwich(const Edtd& schema, const char* what) {
  MeasureOptions options;
  options.bounds.max_depth = 4;
  options.bounds.max_width = 3;
  StatusOr<MeasureResult> result = MeasureSchema(schema, options, nullptr);
  ASSERT_TRUE(result.ok()) << what;
  for (int d = 0; d < options.bounds.max_depth; ++d) {
    EXPECT_LE(CountValue::Compare(result->schema[d], result->upper[d]), 0)
        << what << ": |L(S)| > |L(upper)| at depth " << (d + 1);
    EXPECT_LE(CountValue::Compare(result->lower[d], result->schema[d]), 0)
        << what << ": |L(lower)| > |L(S)| at depth " << (d + 1);
    // S ⊆ upper: the intersection with the upper approximation is S.
    EXPECT_EQ(CountValue::Compare(result->upper_common[d],
                                  result->schema[d]), 0)
        << what << ": |L(upper) ∩ L(S)| != |L(S)| at depth " << (d + 1);
    // lower ⊆ S: the intersection with the schema is the lower language.
    EXPECT_EQ(CountValue::Compare(result->lower_common[d],
                                  result->lower[d]), 0)
        << what << ": |L(lower) ∩ L(S)| != |L(lower)| at depth " << (d + 1);
    EXPECT_GE(result->UpperPrecision(d), 0.0) << what;
    EXPECT_LE(result->UpperPrecision(d), 1.0 + 1e-9) << what;
    EXPECT_GE(result->LowerRecall(d), 0.0) << what;
    EXPECT_LE(result->LowerRecall(d), 1.0 + 1e-9) << what;
  }
}

TEST(CountPropertyTest, SandwichOnPaperFamilies) {
  CheckSandwich(Theorem32Family(1), "theorem32(1)");
  CheckSandwich(Theorem32Family(2), "theorem32(2)");
  CheckSandwich(Theorem32Family(3), "theorem32(3)");
  CheckSandwich(Theorem36Family(2).first, "theorem36a(2)");
  CheckSandwich(Theorem36Family(2).second, "theorem36b(2)");
  CheckSandwich(CountedFamily(1, 2), "counted(1,2)");
  CheckSandwich(CountedFamily(2, 4), "counted(2,4)");
}

TEST(CountPropertyTest, SandwichOnRandomEdtds) {
  for (int i = 0; i < 30; ++i) {
    std::mt19937 rng(MixSeed(0x5A5D0000 + i));
    RandomSchemaParams params;
    params.num_symbols = 2;
    params.num_types = 4;
    params.repeat_percent = (i % 2 == 0) ? 40 : 0;
    const Edtd edtd = RandomEdtd(&rng, params);
    CheckSandwich(edtd, ("random " + std::to_string(i)).c_str());
    if (HasFailure()) {
      ADD_FAILURE() << "failing schema " << i << ":\n" << edtd.ToString();
      return;
    }
  }
}

// On a single-type input both approximations are the identity up to
// state renaming, so gained and lost must vanish at every depth.
TEST(CountPropertyTest, ApproximationsExactOnSingleTypeSchemas) {
  for (int i = 0; i < 30; ++i) {
    std::mt19937 rng(MixSeed(0xE1AC7 + i));
    RandomSchemaParams params;
    params.num_symbols = 3;
    params.num_types = 4;
    params.repeat_percent = (i % 3 == 0) ? 50 : 0;
    const Edtd st = RandomStEdtd(&rng, params);

    MeasureOptions options;
    options.bounds.max_depth = 4;
    options.bounds.max_width = 3;
    StatusOr<MeasureResult> result = MeasureSchema(st, options, nullptr);
    ASSERT_TRUE(result.ok()) << "schema " << i;
    EXPECT_TRUE(result->single_type) << "schema " << i;
    for (int d = 0; d < options.bounds.max_depth; ++d) {
      EXPECT_TRUE(result->gained[d].IsZero())
          << "schema " << i << ": upper gained "
          << result->gained[d].ToString() << " trees at depth " << (d + 1);
      EXPECT_TRUE(result->lost[d].IsZero())
          << "schema " << i << ": lower lost "
          << result->lost[d].ToString() << " trees at depth " << (d + 1);
    }
    if (HasFailure()) {
      ADD_FAILURE() << "failing schema " << i << ":\n" << st.ToString();
      return;
    }
  }
}

// Soundness of SubsetIntersectionLower checked against brute force:
// every enumerated tree the lower XSD accepts must be in L(S).
TEST(CountPropertyTest, LowerApproximationIsSoundByEnumeration) {
  TreeBounds tree_bounds;
  tree_bounds.max_depth = 3;
  tree_bounds.max_width = 2;
  tree_bounds.num_symbols = 2;
  const std::vector<Tree> trees = EnumerateTrees(tree_bounds);

  for (int i = 0; i < 60; ++i) {
    std::mt19937 rng(MixSeed(0x10E4 + i));
    RandomSchemaParams params;
    params.num_symbols = 2;
    params.num_types = 4;
    params.repeat_percent = (i % 2 == 0) ? 40 : 0;
    const Edtd edtd = ReduceEdtd(RandomEdtd(&rng, params));
    StatusOr<DfaXsd> lower = SubsetIntersectionLower(edtd, nullptr);
    ASSERT_TRUE(lower.ok()) << "schema " << i;
    for (const Tree& tree : trees) {
      if (!lower->Accepts(tree)) continue;
      ASSERT_TRUE(edtd.Accepts(tree))
          << "schema " << i << ": lower accepts a tree outside L(S): "
          << tree.ToString(edtd.sigma) << "\n" << edtd.ToString();
    }
  }
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
