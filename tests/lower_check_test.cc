// Tests for Section 4.4 (bounded instances): maximal-lower-approximation
// checking via exact finite closures, and single-type definability.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/lower_check.h"
#include "stap/approx/nv.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/single_type.h"

namespace stap {
namespace {

TEST(DefinabilityTest, KnownLanguages) {
  // Unary-tree languages are always single-type definable.
  EXPECT_TRUE(IsSingleTypeDefinable(Theorem32Family(2)));
  // The sibling-mix language is not.
  SchemaBuilder builder;
  builder.AddType("R1", "r", "X1 Y1");
  builder.AddType("R2", "r", "X2 Y2");
  builder.AddType("X1", "x", "A1");
  builder.AddType("Y1", "y", "A2");
  builder.AddType("X2", "x", "B1");
  builder.AddType("Y2", "y", "B2");
  builder.AddType("A1", "a", "%");
  builder.AddType("A2", "a", "%");
  builder.AddType("B1", "b", "%");
  builder.AddType("B2", "b", "%");
  builder.AddStart("R1");
  builder.AddStart("R2");
  EXPECT_FALSE(IsSingleTypeDefinable(builder.Build()));
  // Unions of DTDs over disjoint roots are definable.
  auto [d1, d2] = Theorem43Schemas();
  EXPECT_FALSE(IsSingleTypeDefinable(EdtdUnion(d1, d2)));
}

// Regression: a single-type schema is definable by itself, and the check
// must short-circuit instead of running the EXPTIME exact inclusion —
// with counted content models like Item{1,500} the exact search took
// hours, which used to hang `stap check` on imported .xsd files.
TEST(DefinabilityTest, SingleTypeShortCircuitsOnCountedContent) {
  SchemaBuilder builder;
  builder.AddType("Catalog", "catalog", "Product{1,500}");
  builder.AddType("Product", "product", "Name Tag{0,10}");
  builder.AddType("Name", "name", "%");
  builder.AddType("Tag", "tag", "%");
  builder.AddStart("Catalog");
  EXPECT_TRUE(IsSingleTypeDefinable(builder.Build()));
}

// A finite non-definable target: { r(x(a), y(a)), r(x(b), y(b)) } — its
// closure adds the two mixed documents.
Edtd FiniteTarget() {
  SchemaBuilder builder;
  builder.AddType("R1", "r", "X1 Y1");
  builder.AddType("R2", "r", "X2 Y2");
  builder.AddType("X1", "x", "A1");
  builder.AddType("Y1", "y", "A2");
  builder.AddType("X2", "x", "B1");
  builder.AddType("Y2", "y", "B2");
  builder.AddType("A1", "a", "%");
  builder.AddType("A2", "a", "%");
  builder.AddType("B1", "b", "%");
  builder.AddType("B2", "b", "%");
  builder.AddStart("R1");
  builder.AddStart("R2");
  return builder.Build();
}

// Candidate accepting only the a-document.
Edtd ADocOnly() {
  SchemaBuilder builder;
  builder.AddType("R", "r", "X Y");
  builder.AddType("X", "x", "A1");
  builder.AddType("Y", "y", "A2");
  builder.AddType("A1", "a", "%");
  builder.AddType("A2", "a", "%");
  builder.AddStart("R");
  return builder.Build();
}

TEST(LowerCheckTest, SingleDocumentIsMaximalLower) {
  // Adding the b-document to { a-doc } forces the mixed documents via
  // closure, which are outside the target: the a-doc alone is maximal.
  TreeBounds bounds{3, 2, 5};
  LowerCheckResult result =
      CheckMaximalLowerFinite(ADocOnly(), FiniteTarget(), bounds);
  EXPECT_TRUE(result.is_lower);
  EXPECT_TRUE(result.is_maximal);
  EXPECT_TRUE(result.exhaustive);
  EXPECT_FALSE(result.extension.has_value());
}

TEST(LowerCheckTest, DetectsExtensibleCandidates) {
  // Against a definable (exchange-closed) target, a strict sub-language
  // is never maximal: any missing document extends it safely.
  SchemaBuilder target;
  target.AddType("R", "r", "A? B?");
  target.AddType("A", "a", "%");
  target.AddType("B", "b", "%");
  target.AddStart("R");

  SchemaBuilder candidate;
  candidate.AddType("R", "r", "A?");
  candidate.AddType("A", "a", "%");
  candidate.AddStart("R");

  TreeBounds bounds{2, 2, 3};
  LowerCheckResult result =
      CheckMaximalLowerFinite(candidate.Build(), target.Build(), bounds);
  EXPECT_TRUE(result.is_lower);
  EXPECT_FALSE(result.is_maximal);
  ASSERT_TRUE(result.extension.has_value());
}

TEST(LowerCheckTest, RejectsNonLowerCandidates) {
  LowerCheckResult result = CheckMaximalLowerFinite(
      ADocOnly(), Theorem43Schemas().first, TreeBounds{3, 2, 5});
  EXPECT_FALSE(result.is_lower);
  EXPECT_FALSE(result.is_maximal);
}

TEST(LowerCheckTest, TargetItselfWhenDefinable) {
  SchemaBuilder builder;
  builder.AddType("R", "r", "A?");
  builder.AddType("A", "a", "%");
  builder.AddStart("R");
  Edtd schema = builder.Build();
  LowerCheckResult result =
      CheckMaximalLowerFinite(schema, schema, TreeBounds{2, 1, 2});
  EXPECT_TRUE(result.is_lower);
  EXPECT_TRUE(result.is_maximal);
}

TEST(LowerCheckTest, LowerUnionPassesTheCheckOnFiniteInstance) {
  // Theorem 4.8's output is a maximal lower approximation; verify on a
  // finite sibling-style instance.
  auto make = [](const std::string& leaf) {
    SchemaBuilder builder;
    builder.AddType("R", "r", "X Y");
    builder.AddType("X", "x", "Leaf");
    builder.AddType("Y", "y", "Leaf");
    builder.AddType("Leaf", leaf, "%");
    builder.AddStart("R");
    return builder.Build();
  };
  Edtd d1 = make("a");
  Edtd d2 = make("b");
  DfaXsd lower = LowerUnionFixingFirst(d1, d2);
  Edtd lower_edtd = StEdtdFromDfaXsd(lower);
  Edtd target = EdtdUnion(d1, d2);
  LowerCheckResult result =
      CheckMaximalLowerFinite(lower_edtd, target, TreeBounds{3, 2, 5});
  EXPECT_TRUE(result.is_lower);
  EXPECT_TRUE(result.is_maximal)
      << (result.extension.has_value()
              ? result.extension->ToString(lower.sigma)
              : "");
}

// Theorem 4.8's output is a *maximal* lower approximation; verify with
// the Section 4.4 decision procedure on random finite instances.
class LowerUnionMaximalityTest : public ::testing::TestWithParam<int> {};

TEST_P(LowerUnionMaximalityTest, LowerUnionIsMaximalOnFiniteInstances) {
  std::mt19937 rng(GetParam() * 28657 + 3);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  params.content_breadth = 2;
  Edtd d1 = RandomNonRecursiveStEdtd(&rng, params);
  Edtd d2 = RandomNonRecursiveStEdtd(&rng, params);
  auto [a1, a2] = AlignAlphabets(d1, d2);
  Edtd target = EdtdUnion(a1, a2);
  DfaXsd lower = LowerUnionFixingFirst(a1, a2);

  TreeBounds bounds{3, 2, a1.sigma.size()};
  // Keep the brute-force reference tractable.
  int64_t members = 0;
  for (const Tree& tree : EnumerateTrees(bounds)) {
    if (target.Accepts(tree)) ++members;
  }
  if (members > 80) GTEST_SKIP() << "instance too large";

  ClosureOptions options;
  options.max_trees = 5000;
  LowerCheckResult result = CheckMaximalLowerFinite(
      StEdtdFromDfaXsd(lower), target, bounds, options);
  EXPECT_TRUE(result.is_lower);
  EXPECT_TRUE(result.exhaustive);
  EXPECT_TRUE(result.is_maximal)
      << (result.extension.has_value()
              ? "extension: " + result.extension->ToString(a1.sigma)
              : "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerUnionMaximalityTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace stap
