// Differential tests for the streaming one-pass validator: on random
// single-type schemas, ValidateStreaming must agree with every other
// validation route (DfaXsd::Accepts, ValidateWithDiagnostics, and the
// EDTD obtained by converting the XSD back), on valid documents, on
// random mutations of valid documents, and on arbitrary enumerated
// trees. A second group drives the event API directly with malformed
// sequences — out-of-range symbols, a second root, EndElement with
// nothing open — which no tree-shaped input can produce.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/streaming.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/validate.h"
#include "stap/tree/enumerate.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

// Every node of `tree` in pre-order, as mutable pointers.
std::vector<Tree*> CollectNodes(Tree* tree) {
  std::vector<Tree*> nodes;
  std::vector<Tree*> stack = {tree};
  while (!stack.empty()) {
    Tree* node = stack.back();
    stack.pop_back();
    nodes.push_back(node);
    for (Tree& child : node->children) stack.push_back(&child);
  }
  return nodes;
}

// One random structural edit: relabel a node, drop a child, or duplicate
// a child. The result may or may not still be valid — the point is that
// all validators agree on whichever it is.
Tree Mutate(const Tree& original, std::mt19937* rng, int num_symbols) {
  Tree tree = original;
  std::vector<Tree*> nodes = CollectNodes(&tree);
  Tree* node = nodes[(*rng)() % nodes.size()];
  switch ((*rng)() % 3) {
    case 0:
      node->label = static_cast<int>((*rng)() % num_symbols);
      break;
    case 1:
      if (!node->children.empty()) {
        node->children.erase(node->children.begin() +
                             (*rng)() % node->children.size());
      }
      break;
    default:
      if (!node->children.empty()) {
        const Tree& child = node->children[(*rng)() % node->children.size()];
        node->children.push_back(child);
      }
      break;
  }
  return tree;
}

void ExpectAllValidatorsAgree(const DfaXsd& xsd, const Edtd& round_trip,
                              const Tree& tree) {
  const bool expected = xsd.Accepts(tree);
  EXPECT_EQ(ValidateStreaming(xsd, tree), expected)
      << tree.ToString(xsd.sigma);
  EXPECT_EQ(ValidateWithDiagnostics(xsd, tree).ok, expected)
      << tree.ToString(xsd.sigma);
  EXPECT_EQ(round_trip.Accepts(tree), expected) << tree.ToString(xsd.sigma);
}

class StreamingDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamingDifferentialTest, AgreesOnRandomSchemasAndTrees) {
  std::mt19937 rng(MixSeed(GetParam()));
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = 5;
  params.content_breadth = 2;
  DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
  Edtd round_trip = StEdtdFromDfaXsd(xsd);

  // Sampled members, then mutated members.
  for (int i = 0; i < 8; ++i) {
    std::optional<Tree> tree = SampleTree(xsd, &rng, 5);
    ASSERT_TRUE(tree.has_value());
    EXPECT_TRUE(ValidateStreaming(xsd, *tree)) << tree->ToString(xsd.sigma);
    ExpectAllValidatorsAgree(xsd, round_trip, *tree);
    Tree mutated = Mutate(*tree, &rng, params.num_symbols);
    for (int j = 0; j < 3; ++j) {
      ExpectAllValidatorsAgree(xsd, round_trip, mutated);
      mutated = Mutate(mutated, &rng, params.num_symbols);
    }
  }
  // Exhaustive small trees, valid or not.
  for (const Tree& tree : EnumerateTrees({3, 2, params.num_symbols})) {
    ExpectAllValidatorsAgree(xsd, round_trip, tree);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingDifferentialTest,
                         ::testing::Range(0, 25));

DfaXsd ChainXsd() {
  SchemaBuilder builder;
  builder.AddType("R", "a", "R?");
  builder.AddStart("R");
  return DfaXsdFromStEdtd(ReduceEdtd(builder.Build()));
}

TEST(StreamingMalformedTest, EndElementWithNothingOpen) {
  DfaXsd xsd = ChainXsd();
  StreamingValidator v(&xsd);
  EXPECT_FALSE(v.EndElement());
  EXPECT_FALSE(v.ok());
  // The rejection latches: a well-formed continuation cannot revive it.
  EXPECT_FALSE(v.StartElement(0));
  EXPECT_FALSE(v.EndDocument());
}

TEST(StreamingMalformedTest, SecondRootIsRejected) {
  DfaXsd xsd = ChainXsd();
  StreamingValidator v(&xsd);
  EXPECT_TRUE(v.StartElement(0));
  EXPECT_TRUE(v.EndElement());
  EXPECT_TRUE(v.EndDocument());  // complete document so far
  EXPECT_FALSE(v.StartElement(0));
  EXPECT_FALSE(v.EndDocument());
}

TEST(StreamingMalformedTest, OutOfRangeSymbolsAreRejectedNotIndexed) {
  DfaXsd xsd = ChainXsd();
  const int bogus[] = {-1, -1000000, xsd.sigma.size(), xsd.sigma.size() + 7,
                       1 << 30};
  for (int symbol : bogus) {
    {
      StreamingValidator v(&xsd);
      EXPECT_FALSE(v.StartElement(symbol)) << symbol;
      EXPECT_FALSE(v.ok()) << symbol;
    }
    {
      // Mid-document, where the parent's content run is live.
      StreamingValidator v(&xsd);
      ASSERT_TRUE(v.StartElement(0));
      EXPECT_FALSE(v.StartElement(symbol)) << symbol;
      EXPECT_FALSE(v.ok()) << symbol;
    }
  }
}

TEST(StreamingMalformedTest, UnclosedElementFailsOnlyAtEndDocument) {
  DfaXsd xsd = ChainXsd();
  StreamingValidator v(&xsd);
  EXPECT_TRUE(v.StartElement(0));
  EXPECT_TRUE(v.StartElement(0));
  EXPECT_TRUE(v.EndElement());
  EXPECT_TRUE(v.ok());          // no violation yet...
  EXPECT_FALSE(v.EndDocument());  // ...but the root is still open
}

TEST(StreamingDeepDocumentTest, ValidatesPathDeeperThanTheCallStack) {
  // A 200k-deep chain of <a> elements: recursion over the document would
  // overflow the stack, so this doubles as a regression test for the
  // explicit-stack event generation in ValidateStreaming.
  DfaXsd xsd = ChainXsd();
  constexpr int kDepth = 200000;
  StreamingValidator v(&xsd);
  for (int i = 0; i < kDepth; ++i) ASSERT_TRUE(v.StartElement(0));
  EXPECT_EQ(v.depth(), kDepth);
  for (int i = 0; i < kDepth; ++i) ASSERT_TRUE(v.EndElement());
  EXPECT_TRUE(v.EndDocument());

  Tree deep(0);
  for (int i = 1; i < kDepth; ++i) {
    Tree next(0);
    next.children.push_back(std::move(deep));
    deep = std::move(next);
  }
  EXPECT_TRUE(ValidateStreaming(xsd, deep));
  EXPECT_TRUE(ValidateWithDiagnostics(xsd, deep).ok);
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
