// Tests for Lemma 4.18 / Figure 2: partitioning generalized contexts
// into contexts and forks.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/decompose.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

// A complete binary tree of the given depth over one label.
Tree CompleteBinary(int depth) {
  if (depth == 1) return Tree(0);
  return Tree(0, {CompleteBinary(depth - 1), CompleteBinary(depth - 1)});
}

TEST(DecomposeTest, SingleHoleIsOneContext) {
  GeneralizedContext input =
      GeneralizedContext::Make(CompleteBinary(3), {{0, 1}});
  DecompositionNode decomposition = Decompose(input);
  EXPECT_EQ(decomposition.NumContexts(), 1);
  EXPECT_EQ(decomposition.NumForks(), 0);
  GeneralizedContext back = Reassemble(decomposition);
  EXPECT_EQ(back.tree, input.tree);
  EXPECT_EQ(back.holes, input.holes);
}

TEST(DecomposeTest, TwoHolesNeedOneFork) {
  // Holes in both halves force a fork at the root.
  GeneralizedContext input =
      GeneralizedContext::Make(CompleteBinary(3), {{0, 0}, {1, 1}});
  DecompositionNode decomposition = Decompose(input);
  EXPECT_EQ(decomposition.NumForks(), 1);
  EXPECT_EQ(decomposition.NumContexts(), 3);  // above + two below
  GeneralizedContext back = Reassemble(decomposition);
  EXPECT_EQ(back.tree, input.tree);
  EXPECT_EQ(back.holes, input.holes);
}

TEST(DecomposeTest, KHolesNeedKMinusOneForks) {
  // A generalized context with k holes always has exactly k - 1 forks
  // and k contexts... (each fork splits one strand into two; terminal
  // strands end in the original holes).
  Tree tree = CompleteBinary(4);
  std::vector<TreePath> holes = {{0, 0, 0}, {0, 1, 0}, {1, 0, 1}, {1, 1, 1}};
  GeneralizedContext input = GeneralizedContext::Make(tree, holes);
  DecompositionNode decomposition = Decompose(input);
  EXPECT_EQ(decomposition.NumForks(), 3);
  EXPECT_EQ(decomposition.NumContexts(),
            static_cast<int>(holes.size()) + 3);
  GeneralizedContext back = Reassemble(decomposition);
  EXPECT_EQ(back.tree, input.tree);
  EXPECT_EQ(back.holes, input.holes);
}

TEST(DecomposeTest, HoleAtTheRootOfAPiece) {
  // The fork's child can itself be an immediate hole: the context piece
  // degenerates to a single hole node.
  Tree tree(0, {Tree(1), Tree(2)});
  GeneralizedContext input = GeneralizedContext::Make(tree, {{0}, {1}});
  DecompositionNode decomposition = Decompose(input);
  EXPECT_EQ(decomposition.NumForks(), 1);
  GeneralizedContext back = Reassemble(decomposition);
  EXPECT_EQ(back.tree, input.tree);
  EXPECT_EQ(back.holes, input.holes);
}

// Property sweep: random binary trees, random hole subsets — the
// decomposition always reassembles, and forks = holes - 1.
class DecomposeRandomTest : public ::testing::TestWithParam<int> {};

Tree RandomBinary(std::mt19937* rng, int depth) {
  if (depth <= 1 || (*rng)() % 3 == 0) {
    return Tree(static_cast<int>((*rng)() % 3));
  }
  return Tree(static_cast<int>((*rng)() % 3),
              {RandomBinary(rng, depth - 1), RandomBinary(rng, depth - 1)});
}

TEST_P(DecomposeRandomTest, ReassemblesExactly) {
  std::mt19937 rng(GetParam() * 887 + 3);
  Tree tree = RandomBinary(&rng, 5);
  // Collect the leaves; pick a random non-empty subset as holes.
  std::vector<TreePath> leaves;
  for (const TreePath& path : tree.AllPaths()) {
    if (tree.At(path).IsLeaf()) leaves.push_back(path);
  }
  std::vector<TreePath> holes;
  for (const TreePath& leaf : leaves) {
    if (rng() % 2 == 0) holes.push_back(leaf);
  }
  if (holes.empty()) holes.push_back(leaves[0]);

  GeneralizedContext input = GeneralizedContext::Make(tree, holes);
  DecompositionNode decomposition = Decompose(input);
  EXPECT_EQ(decomposition.NumForks(),
            static_cast<int>(input.holes.size()) - 1);
  GeneralizedContext back = Reassemble(decomposition);
  EXPECT_EQ(back.tree, input.tree);
  EXPECT_EQ(back.holes, input.holes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace stap
