// Concurrency tests for the compile cache and determinism tests for
// parallel batch validation.
//
// The exactly-once contract is asserted through the cache.insert counter:
// however many threads race on the same key set, the number of published
// compilations equals the number of distinct keys. These tests run under
// the ThreadSanitizer CI job, so a data race in the cache's entry state
// machine or the batch sweep's verdict vector fails loudly there.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "stap/base/compile_cache.h"
#include "stap/base/metrics.h"
#include "stap/gen/random.h"
#include "stap/io/artifact.h"
#include "stap/io/batch_validate.h"
#include "stap/schema/text_format.h"
#include "stap/tree/xml.h"

namespace stap {
namespace {

Alphabet TwoTypes() {
  Alphabet types;
  types.Intern("A");
  types.Intern("B");
  return types;
}

TEST(ContentModelKey, DistinguishesSourceAndAlphabet) {
  Alphabet ab = TwoTypes();
  Alphabet ba;
  ba.Intern("B");
  ba.Intern("A");
  ContentModelKey k1 = MakeContentModelKey("A B*", ab);
  ContentModelKey k2 = MakeContentModelKey("A B*", ba);
  ContentModelKey k3 = MakeContentModelKey("A B *", ab);
  EXPECT_EQ(k1.canonical, MakeContentModelKey("A B*", ab).canonical);
  EXPECT_NE(k1.canonical, k2.canonical);  // same source, reordered alphabet
  EXPECT_NE(k1.canonical, k3.canonical);  // different source text
  // Length prefixing: no concatenation ambiguity between source and names.
  Alphabet one;
  one.Intern("AB");
  EXPECT_NE(MakeContentModelKey("x", one).canonical,
            MakeContentModelKey("x", ab).canonical);
}

TEST(CompileCache, HitMissInsertCounters) {
  CompileCache cache(4);
  Counter* hits = GetCounter("cache.hit");
  Counter* misses = GetCounter("cache.miss");
  Counter* inserts = GetCounter("cache.insert");
  const int64_t hits0 = hits->value();
  const int64_t misses0 = misses->value();
  const int64_t inserts0 = inserts->value();

  Alphabet types = TwoTypes();
  ContentModelKey key = MakeContentModelKey("A*", types);
  int compiles = 0;
  auto compile = [&]() -> StatusOr<Dfa> {
    ++compiles;
    return Dfa::AllWords(types.size());
  };

  StatusOr<std::shared_ptr<const Dfa>> first = cache.GetOrCompile(key, compile);
  ASSERT_TRUE(first.ok());
  StatusOr<std::shared_ptr<const Dfa>> second =
      cache.GetOrCompile(key, compile);
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(compiles, 1);
  EXPECT_EQ(*first, *second);  // the exact same shared_ptr
  EXPECT_EQ(misses->value() - misses0, 1);
  EXPECT_EQ(hits->value() - hits0, 1);
  EXPECT_EQ(inserts->value() - inserts0, 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(CompileCache, FailureIsReportedButNotCached) {
  CompileCache cache(1);
  Alphabet types = TwoTypes();
  ContentModelKey key = MakeContentModelKey("B+", types);

  StatusOr<std::shared_ptr<const Dfa>> failed = cache.GetOrCompile(
      key, []() -> StatusOr<Dfa> {
        return InvalidArgumentError("synthetic compile failure");
      });
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 0);  // failure was not latched

  // A later request retries and can succeed.
  StatusOr<std::shared_ptr<const Dfa>> retried = cache.GetOrCompile(
      key, [&]() -> StatusOr<Dfa> { return Dfa::EpsilonOnly(types.size()); });
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE((*retried)->AcceptsEpsilon());
  EXPECT_EQ(cache.size(), 1);
}

// Regression test: waiters blocked on an in-flight entry must not
// inherit the owner's failure. Here the first arrival's compilation
// fails the way a budget-starved request does (kResourceExhausted)
// while several other threads are already parked on the entry; every
// waiter must retry with its own compiler and come back with a real
// DFA, never the owner's error.
TEST(CompileCache, WaitersRetryInsteadOfInheritingOwnerFailure) {
  CompileCache cache(1);
  Counter* retries = GetCounter("cache.retry");
  const int64_t retries0 = retries->value();
  Alphabet types = TwoTypes();
  ContentModelKey key = MakeContentModelKey("A B", types);

  std::mutex mutex;
  std::condition_variable cv;
  bool owner_inside = false;   // guarded by mutex
  bool release_owner = false;  // guarded by mutex
  std::atomic<int> calls{0};

  auto compile = [&]() -> StatusOr<Dfa> {
    if (calls.fetch_add(1) == 0) {
      // First arrival: park until the waiters have piled up, then fail
      // the way a starved Budget does.
      {
        std::lock_guard<std::mutex> lock(mutex);
        owner_inside = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release_owner; });
      return ResourceExhaustedError("budget exhausted: states");
    }
    return Dfa::AllWords(types.size());
  };

  constexpr int kWaiters = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kWaiters + 1);
  for (int t = 0; t < kWaiters + 1; ++t) {
    threads.emplace_back([&] {
      StatusOr<std::shared_ptr<const Dfa>> dfa =
          cache.GetOrCompile(key, compile);
      // The doomed owner's own call reports its failure; everyone else
      // must end up with a value.
      if (!dfa.ok() &&
          dfa.status().code() != StatusCode::kResourceExhausted) {
        failures.fetch_add(10);
      }
      if (!dfa.ok()) failures.fetch_add(1);
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return owner_inside; });
  }
  // Give the remaining threads a moment to reach the entry wait; even if
  // some have not parked yet, they retry through the same discipline.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_owner = true;
  }
  cv.notify_all();
  for (std::thread& thread : threads) thread.join();

  // Exactly one failure (the starved owner's own), never inherited.
  EXPECT_EQ(failures.load(), 1);
  EXPECT_GE(calls.load(), 2);  // the failed attempt plus at least one retry
  EXPECT_EQ(cache.size(), 1);  // the retried success was published
  EXPECT_GE(retries->value() - retries0, 1);
}

// The tentpole concurrency assertion: N threads hammer the same K keys;
// exactly K compilations are published, every thread sees a usable DFA,
// and every thread requesting the same key gets the same language.
TEST(CompileCache, ConcurrentCompilationHappensExactlyOnce) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 5;
  constexpr int kRoundsPerThread = 40;

  CompileCache cache(4);  // fewer shards than threads: real contention
  Counter* inserts = GetCounter("cache.insert");
  const int64_t inserts0 = inserts->value();

  Alphabet types = TwoTypes();
  std::vector<ContentModelKey> keys;
  std::vector<std::string> sources;
  for (int k = 0; k < kKeys; ++k) {
    // Distinct sources: A, A A, A A A, ... (distinct languages too).
    std::string source = "A";
    for (int j = 0; j < k; ++j) source += " A";
    sources.push_back(source);
    keys.push_back(MakeContentModelKey(source, types));
  }

  std::atomic<int> compilations{0};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(1234 + t);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const int k = static_cast<int>(rng() % kKeys);
        auto compile = [&, k]() -> StatusOr<Dfa> {
          compilations.fetch_add(1, std::memory_order_relaxed);
          // Word A^{k+1}: a (k+2)-state chain.
          Dfa dfa(k + 2, types.size());
          for (int q = 0; q <= k; ++q) dfa.SetTransition(q, 0, q + 1);
          dfa.SetFinal(k + 1);
          return dfa;
        };
        StatusOr<std::shared_ptr<const Dfa>> dfa =
            cache.GetOrCompile(keys[k], compile);
        if (!dfa.ok()) {
          mismatch.store(true);
          continue;
        }
        // The returned DFA accepts exactly A^{k+1}.
        Word word(static_cast<size_t>(k) + 1, 0);
        if (!(*dfa)->Accepts(word) || (*dfa)->AcceptsEpsilon()) {
          mismatch.store(true);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(compilations.load(), kKeys);  // exactly once per key
  EXPECT_EQ(inserts->value() - inserts0, kKeys);
  EXPECT_EQ(cache.size(), kKeys);
}

// Concurrent ParseSchema calls sharing one cache agree with the uncached
// parse, and the cache ends up with one entry per distinct content model.
TEST(CompileCache, ConcurrentParseSchemaSharesCache) {
  constexpr char kSource[] = R"(
start Lib
type Lib     : library -> Book*
type Book    : book    -> Title Chapter+
type Title   : title   -> %
type Chapter : chapter -> (Section | %)
type Section : section -> %
)";
  StatusOr<Edtd> reference = ParseSchema(kSource);
  ASSERT_TRUE(reference.ok());
  const std::string reference_text = SchemaToText(*reference);

  CompileCache cache(2);
  std::atomic<bool> disagreement{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        StatusOr<Edtd> parsed = ParseSchema(kSource, &cache);
        if (!parsed.ok() || SchemaToText(*parsed) != reference_text) {
          disagreement.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(disagreement.load());
  // 5 types but 4 distinct content models ("%" appears twice).
  EXPECT_EQ(cache.size(), 4);
}

TEST(CompileCache, ClearEmptiesTheCache) {
  CompileCache cache(2);
  Alphabet types = TwoTypes();
  for (const char* source : {"A", "B", "A B"}) {
    ASSERT_TRUE(cache
                    .GetOrCompile(MakeContentModelKey(source, types),
                                  [&]() -> StatusOr<Dfa> {
                                    return Dfa::AllWords(types.size());
                                  })
                    .ok());
  }
  EXPECT_EQ(cache.size(), 3);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
}

// --- batch determinism -------------------------------------------------

// The rendered batch report must be byte-identical whatever the job
// count; documents are a seeded mix of valid samples, invalid mutations,
// and malformed XML so every verdict kind is exercised.
TEST(BatchValidate, ReportIsIdenticalAcrossJobCounts) {
  constexpr char kSource[] = R"(
start Lib
type Lib     : library -> Book*
type Book    : book    -> Title Chapter+
type Title   : title   -> %
type Chapter : chapter -> (Section | %)
type Section : section -> %
)";
  StatusOr<CompiledSchema> schema = CompileSchema(kSource, nullptr);
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(schema->single_type);

  std::mt19937 rng(987654321);
  std::vector<BatchDocument> documents;
  for (int i = 0; i < 60; ++i) {
    BatchDocument document;
    document.name = "doc" + std::to_string(i) + ".xml";
    auto tree = SampleTree(schema->xsd, &rng);
    ASSERT_TRUE(tree.has_value());
    document.xml = ToXml(*tree, schema->edtd.sigma);
    switch (i % 4) {
      case 0:  // valid, as sampled
        break;
      case 1:  // invalid: book missing its mandatory chapter
        document.xml =
            "<library><book><title/></book></library>";
        break;
      case 2:  // error: malformed XML
        document.xml.resize(document.xml.size() / 2);
        break;
      case 3:  // error: unreadable input
        document.read_error = "cannot open '" + document.name + "'";
        break;
    }
    documents.push_back(std::move(document));
  }

  std::vector<std::string> reports;
  for (int jobs : {1, 3, 8}) {
    BatchOptions options;
    options.jobs = jobs;
    BatchResult result = BatchValidate(*schema, documents, options);
    EXPECT_EQ(result.num_valid + result.num_invalid + result.num_errors, 60);
    EXPECT_GE(result.num_valid, 1);
    EXPECT_GE(result.num_invalid, 1);
    EXPECT_GE(result.num_errors, 1);
    reports.push_back(FormatBatchReport(documents, result));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(BatchValidate, EmptyBatch) {
  StatusOr<CompiledSchema> schema =
      CompileSchema("start A\ntype A : a -> %\n", nullptr);
  ASSERT_TRUE(schema.ok());
  BatchOptions options;
  options.jobs = 4;
  BatchResult result = BatchValidate(*schema, {}, options);
  EXPECT_TRUE(result.all_valid());
  EXPECT_EQ(FormatBatchReport({}, result),
            "0 documents: 0 valid, 0 invalid, 0 errors\n");
}

}  // namespace
}  // namespace stap
