// Tests for Theorem 3.5: deciding whether a single-type EDTD is the
// minimal upper XSD-approximation of a given EDTD.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/minimal_upper_check.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/single_type.h"

namespace stap {
namespace {

Edtd NonDefinableEdtd() {
  SchemaBuilder builder;
  builder.AddType("R1", "r", "X1 Y1");
  builder.AddType("R2", "r", "X2 Y2");
  builder.AddType("X1", "x", "A1");
  builder.AddType("Y1", "y", "A2");
  builder.AddType("X2", "x", "B1");
  builder.AddType("Y2", "y", "B2");
  builder.AddType("A1", "a", "%");
  builder.AddType("A2", "a", "%");
  builder.AddType("B1", "b", "%");
  builder.AddType("B2", "b", "%");
  builder.AddStart("R1");
  builder.AddStart("R2");
  return builder.Build();
}

TEST(MinimalUpperCheckTest, AcceptsTheConstruction) {
  Edtd target = NonDefinableEdtd();
  Edtd candidate = StEdtdFromDfaXsd(MinimalUpperApproximation(target));
  EXPECT_TRUE(IsMinimalUpperApproximation(candidate, target));
}

TEST(MinimalUpperCheckTest, RejectsNonUpperBounds) {
  Edtd target = NonDefinableEdtd();
  // A schema missing the b-documents is not even an upper bound.
  SchemaBuilder builder;
  builder.AddType("R", "r", "X Y");
  builder.AddType("X", "x", "A1");
  builder.AddType("Y", "y", "A2");
  builder.AddType("A1", "a", "%");
  builder.AddType("A2", "a", "%");
  builder.AddStart("R");
  EXPECT_FALSE(IsMinimalUpperApproximation(builder.Build(), target));
}

TEST(MinimalUpperCheckTest, RejectsLooseUpperBounds) {
  Edtd target = NonDefinableEdtd();
  // Allowing optional children is an upper bound but not minimal.
  SchemaBuilder loose;
  loose.AddType("R", "r", "X? Y?");  // also allows missing children
  loose.AddType("X", "x", "LA | LB");
  loose.AddType("Y", "y", "LA2 | LB2");
  loose.AddType("LA", "a", "%");
  loose.AddType("LB", "b", "%");
  loose.AddType("LA2", "a", "%");
  loose.AddType("LB2", "b", "%");
  loose.AddStart("R");
  EXPECT_FALSE(IsMinimalUpperApproximation(loose.Build(), target));
}

TEST(MinimalUpperCheckTest, DefinableLanguagesRequireEquality) {
  SchemaBuilder builder;
  builder.AddType("R", "r", "A*");
  builder.AddType("A", "a", "%");
  builder.AddStart("R");
  Edtd target = builder.Build();
  EXPECT_TRUE(IsMinimalUpperApproximation(target, target));
  SchemaBuilder wider;
  wider.AddType("R", "r", "A* B?");
  wider.AddType("A", "a", "%");
  wider.AddType("B", "b", "%");
  wider.AddStart("R");
  EXPECT_FALSE(IsMinimalUpperApproximation(wider.Build(), target));
}

TEST(MinimalUpperCheckTest, Theorem32FamilyCandidates) {
  Edtd target = Theorem32Family(2);
  Edtd exact_candidate = StEdtdFromDfaXsd(MinimalUpperApproximation(target));
  EXPECT_TRUE(IsMinimalUpperApproximation(exact_candidate, target));
  // A unary-tree XSD accepting all (a+b)-chains that contain an a is an
  // upper bound but too coarse.
  SchemaBuilder coarse;
  coarse.AddType("S0", "b", "S0b | S0a");  // no a seen yet, root b
  coarse.AddType("S0a", "a", "S1b? | S1a?");
  coarse.AddType("S0b", "b", "S0b | S0a");
  coarse.AddType("S1a", "a", "S1b? | S1a?");
  coarse.AddType("S1b", "b", "S1b? | S1a?");
  coarse.AddStart("S0");
  coarse.AddStart("S0a");
  Edtd loose = coarse.Build();
  EXPECT_FALSE(IsMinimalUpperApproximation(loose, target));
}

// Property: the construction's output always passes the check, and the
// check rejects a strictly widened variant.
class MinimalUpperRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimalUpperRandomTest, ConstructionPassesCheck) {
  std::mt19937 rng(GetParam() * 2654435761u + 3);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  Edtd target = RandomEdtd(&rng, params);
  Edtd candidate = StEdtdFromDfaXsd(MinimalUpperApproximation(target));
  EXPECT_TRUE(IsMinimalUpperApproximation(candidate, target));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalUpperRandomTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace stap
