// Differential tests for the antichain inclusion engine against the
// determinize-based subset-product oracles retained in inclusion.h.
//
// Both searches are breadth-first, and the antichain's subsumption
// pruning only ever discards newcomers in favor of earlier ⊆-smaller
// pairs (see automata/antichain.cc), so the two sides must agree not just
// on the verdict but on the LENGTH of a shortest counterexample. The
// witness words themselves may differ (BFS layers are visited in
// different orders), so validity is checked semantically.
//
// Run with --seed=N (or STAP_SEED=N) to explore a different random
// stream; failures print the reproduction flag.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "stap/automata/antichain.h"
#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/gen/random.h"
#include "test_seed.h"

namespace stap {
namespace {

// Oracle for universality: determinize, complete, and BFS for the
// shortest word reaching a non-final state.
std::optional<Word> SubsetUniversalityCounterexample(const Nfa& nfa) {
  Dfa dfa = Determinize(nfa).Completed();
  const int num_symbols = dfa.num_symbols();
  std::vector<int> parent(dfa.num_states(), -2);
  std::vector<int> via(dfa.num_states(), kNoSymbol);
  std::deque<int> queue = {dfa.initial()};
  parent[dfa.initial()] = -1;
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    if (!dfa.IsFinal(q)) {
      Word word;
      for (int cur = q; parent[cur] >= 0; cur = parent[cur]) {
        word.push_back(via[cur]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (int a = 0; a < num_symbols; ++a) {
      int r = dfa.Next(q, a);
      if (parent[r] == -2) {
        parent[r] = q;
        via[r] = a;
        queue.push_back(r);
      }
    }
  }
  return std::nullopt;
}

class AntichainDifferentialTest : public ::testing::TestWithParam<int> {};

// 10 params x 50 rounds = 500 randomized NFA pairs.
constexpr int kRoundsPerParam = 50;

TEST_P(AntichainDifferentialTest, InclusionAgreesWithSubsetOracle) {
  std::mt19937 rng(test::MixSeed(GetParam() * 1000003ull + 17));
  for (int round = 0; round < kRoundsPerParam; ++round) {
    SCOPED_TRACE("param=" + std::to_string(GetParam()) +
                 " round=" + std::to_string(round));
    int sym = 2 + round % 3;
    Nfa a = RandomNfa(&rng, 2 + round % 12, sym, 1 + round % 3);
    Nfa b = RandomNfa(&rng, 2 + round % 10, sym, 1 + round % 3);

    // Verdict agreement with the pair-subset oracle.
    bool included = AntichainIncluded(a, b);
    EXPECT_EQ(included, NfaIncludedInNfaViaSubsets(a, b));

    // Witness agreement with the determinize-based BFS oracle: same
    // existence, same shortest length, and a semantically valid word.
    std::optional<Word> witness = AntichainInclusionCounterexample(a, b);
    std::optional<Word> oracle =
        NfaDfaInclusionCounterexampleViaSubsets(a, Determinize(b));
    ASSERT_EQ(witness.has_value(), oracle.has_value());
    EXPECT_EQ(included, !witness.has_value());
    if (witness.has_value()) {
      EXPECT_EQ(witness->size(), oracle->size());
      EXPECT_TRUE(a.Accepts(*witness));
      EXPECT_FALSE(b.Accepts(*witness));
    }
  }
}

TEST_P(AntichainDifferentialTest, UniversalityAgreesWithSubsetOracle) {
  std::mt19937 rng(test::MixSeed(GetParam() * 7777777ull + 29));
  for (int round = 0; round < kRoundsPerParam; ++round) {
    SCOPED_TRACE("param=" + std::to_string(GetParam()) +
                 " round=" + std::to_string(round));
    int sym = 2 + round % 3;
    // Dense transition tables make universal instances reasonably likely,
    // so both branches of the verdict are exercised.
    Nfa nfa = RandomNfa(&rng, 2 + round % 8, sym, 2 + round % 3);

    std::optional<Word> witness = AntichainUniversalityCounterexample(nfa);
    std::optional<Word> oracle = SubsetUniversalityCounterexample(nfa);
    ASSERT_EQ(witness.has_value(), oracle.has_value());
    EXPECT_EQ(AntichainUniversal(nfa), !witness.has_value());
    if (witness.has_value()) {
      EXPECT_EQ(witness->size(), oracle->size());
      EXPECT_FALSE(nfa.Accepts(*witness));
    }
  }
}

TEST_P(AntichainDifferentialTest, EquivalenceAgreesWithSubsetOracle) {
  std::mt19937 rng(test::MixSeed(GetParam() * 424243ull + 5));
  for (int round = 0; round < kRoundsPerParam; ++round) {
    SCOPED_TRACE("param=" + std::to_string(GetParam()) +
                 " round=" + std::to_string(round));
    int sym = 2 + round % 3;
    Nfa a = RandomNfa(&rng, 2 + round % 8, sym);
    // Mix fresh pairs with structurally perturbed copies so equivalent
    // instances actually occur.
    Nfa b = (round % 3 == 0) ? a : RandomNfa(&rng, 2 + round % 8, sym);
    bool oracle = NfaIncludedInNfaViaSubsets(a, b) &&
                  NfaIncludedInNfaViaSubsets(b, a);
    EXPECT_EQ(AntichainEquivalent(a, b), oracle);
  }
}

// Hand-picked edge cases the random sweep is unlikely to cover.
TEST(AntichainEdgeCases, EmptyAndEpsilonLanguages) {
  Nfa empty(1, 2);
  empty.AddInitial(0);  // no finals: empty language
  Nfa eps(1, 2);
  eps.AddInitial(0);
  eps.SetFinal(0);  // accepts exactly the empty word

  EXPECT_TRUE(AntichainIncluded(empty, eps));
  EXPECT_FALSE(AntichainIncluded(eps, empty));
  std::optional<Word> w = AntichainInclusionCounterexample(eps, empty);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->empty());  // the empty word is the shortest witness
  EXPECT_FALSE(AntichainUniversal(eps));
  EXPECT_TRUE(AntichainEquivalent(empty, empty));
  EXPECT_FALSE(AntichainEquivalent(empty, eps));
}

TEST(AntichainEdgeCases, UniversalSigmaStar) {
  Nfa all(1, 3);
  all.AddInitial(0);
  all.SetFinal(0);
  for (int a = 0; a < 3; ++a) all.AddTransition(0, a, 0);
  EXPECT_TRUE(AntichainUniversal(all));
  EXPECT_FALSE(AntichainUniversalityCounterexample(all).has_value());
  Nfa empty(1, 3);
  empty.AddInitial(0);
  EXPECT_TRUE(AntichainIncluded(empty, all));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AntichainDifferentialTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
