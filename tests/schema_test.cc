// Unit tests for DTDs, EDTDs, reduction, and type automata.
#include <gtest/gtest.h>

#include "stap/gen/families.h"
#include "stap/schema/builder.h"
#include "stap/schema/dtd.h"
#include "stap/schema/edtd.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

// DTD: store -> book*, book -> (title chapter*), title/chapter leaves.
Dtd StoreDtd() {
  Alphabet sigma({"store", "book", "title", "chapter"});
  Dtd dtd = Dtd::LeafOnly(sigma);
  // store: book*
  Dfa store(1, 4);
  store.SetFinal(0);
  store.SetTransition(0, 1, 0);
  dtd.content[0] = store;
  // book: title chapter*
  Dfa book(2, 4);
  book.SetTransition(0, 2, 1);
  book.SetTransition(1, 3, 1);
  book.SetFinal(1);
  dtd.content[1] = book;
  dtd.start_symbols = {0};
  return dtd;
}

TEST(DtdTest, AcceptsAndRejects) {
  Dtd dtd = StoreDtd();
  // store(book(title), book(title, chapter, chapter))
  Tree good(0, {Tree(1, {Tree(2)}), Tree(1, {Tree(2), Tree(3), Tree(3)})});
  EXPECT_TRUE(dtd.Accepts(good));
  EXPECT_TRUE(dtd.Accepts(Tree(0)));             // empty store
  EXPECT_FALSE(dtd.Accepts(Tree(1, {Tree(2)})));  // wrong root
  Tree bad(0, {Tree(1, {Tree(3)})});             // chapter before title
  EXPECT_FALSE(dtd.Accepts(bad));
  Tree nested(0, {Tree(1, {Tree(2, {Tree(3)})})});  // title not a leaf
  EXPECT_FALSE(dtd.Accepts(nested));
}

TEST(DtdTest, SizeCountsPieces) {
  Dtd dtd = StoreDtd();
  EXPECT_GT(dtd.Size(), 4);
}

TEST(EdtdTest, FromDtdPreservesLanguage) {
  Dtd dtd = StoreDtd();
  Edtd edtd = Edtd::FromDtd(dtd);
  for (const Tree& tree : EnumerateTrees({3, 2, 4})) {
    EXPECT_EQ(dtd.Accepts(tree), edtd.Accepts(tree))
        << tree.ToString(dtd.sigma);
  }
}

// The classic non-single-type EDTD: root a whose single child is b, where
// the b-child's content depends on a *sibling-invisible* choice of type.
Edtd DiningEdtd() {
  SchemaBuilder builder;
  builder.AddType("Root1", "a", "B1");
  builder.AddType("Root2", "a", "B2");
  builder.AddType("B1", "b", "C");
  builder.AddType("B2", "b", "%");
  builder.AddType("C", "c", "%");
  builder.AddStart("Root1");
  builder.AddStart("Root2");
  return builder.Build();
}

TEST(EdtdTest, MembershipUsesTyping) {
  Edtd edtd = DiningEdtd();
  Alphabet& sigma = edtd.sigma;
  int a = sigma.Find("a"), b = sigma.Find("b"), c = sigma.Find("c");
  EXPECT_TRUE(edtd.Accepts(Tree(a, {Tree(b, {Tree(c)})})));
  EXPECT_TRUE(edtd.Accepts(Tree(a, {Tree(b)})));
  EXPECT_FALSE(edtd.Accepts(Tree(a, {Tree(c)})));
  EXPECT_FALSE(edtd.Accepts(Tree(b)));
  EXPECT_FALSE(edtd.Accepts(Tree(a, {Tree(b, {Tree(c), Tree(c)})})));
}

TEST(EdtdTest, PossibleTypesReportsAllAssignments) {
  Edtd edtd = DiningEdtd();
  int b = edtd.sigma.Find("b");
  // A bare b-leaf can be typed B2 (content ε) but not B1.
  std::vector<int> types = edtd.PossibleTypes(Tree(b));
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(edtd.types.Name(types[0]), "B2");
}

TEST(EdtdTest, OccurringTypesComesFromTrimmedContent) {
  SchemaBuilder builder;
  builder.AddType("R", "a", "X | Y Z");  // Z unsatisfiable below
  builder.AddType("X", "b", "%");
  builder.AddType("Y", "b", "%");
  builder.AddType("Z", "c", "Z");  // unproductive: infinite recursion
  builder.AddStart("R");
  Edtd edtd = builder.Build();
  std::vector<int> occurring = edtd.OccurringTypes(0);
  // All three occur syntactically (trimming content DFAs alone does not
  // know about productivity)...
  EXPECT_EQ(occurring.size(), 3u);
  // ...but reduction removes Z and with it the Y Z alternative.
  Edtd reduced = ReduceEdtd(edtd);
  EXPECT_EQ(reduced.num_types(), 2);  // R and X
  EXPECT_EQ(reduced.types.Find("Z"), kNoSymbol);
  EXPECT_EQ(reduced.types.Find("Y"), kNoSymbol);
}

TEST(ReduceTest, PreservesLanguage) {
  SchemaBuilder builder;
  builder.AddType("R", "a", "X | Y Z | X X");
  builder.AddType("X", "b", "%");
  builder.AddType("Y", "b", "%");
  builder.AddType("Z", "c", "Z");
  builder.AddType("Orphan", "c", "%");  // unreachable
  builder.AddStart("R");
  Edtd edtd = builder.Build();
  Edtd reduced = ReduceEdtd(edtd);
  EXPECT_TRUE(IsReduced(reduced));
  for (const Tree& tree : EnumerateTrees({3, 2, 3})) {
    EXPECT_EQ(edtd.Accepts(tree), reduced.Accepts(tree))
        << tree.ToString(edtd.sigma);
  }
}

TEST(ReduceTest, EmptyLanguageGivesZeroTypes) {
  SchemaBuilder builder;
  builder.AddType("R", "a", "R");  // no finite tree
  builder.AddStart("R");
  Edtd reduced = ReduceEdtd(builder.Build());
  EXPECT_EQ(reduced.num_types(), 0);
  EXPECT_TRUE(reduced.start_types.empty());
}

TEST(ReduceTest, IsIdempotent) {
  Edtd reduced = ReduceEdtd(DiningEdtd());
  Edtd twice = ReduceEdtd(reduced);
  EXPECT_EQ(reduced.num_types(), twice.num_types());
  EXPECT_EQ(reduced.start_types, twice.start_types);
  EXPECT_EQ(reduced.mu, twice.mu);
  for (int tau = 0; tau < reduced.num_types(); ++tau) {
    EXPECT_EQ(reduced.content[tau], twice.content[tau]) << tau;
  }
}

TEST(TypeAutomatonTest, Example26Structure) {
  // The worked Example 2.6: τ1 -> τ1 + τ2¹, τ2¹ -> τ2² + ε,
  // τ2² -> τ1 + τ2² + ε, with μ(τ1)=a, μ(τ2¹)=μ(τ2²)=b.
  Edtd edtd = Example26Edtd();
  TypeAutomaton automaton = BuildTypeAutomaton(edtd);
  int a = edtd.sigma.Find("a"), b = edtd.sigma.Find("b");
  int t1 = edtd.types.Find("t1"), t2x = edtd.types.Find("t2x"),
      t2y = edtd.types.Find("t2y");

  auto next = [&](int state, int symbol) {
    return automaton.nfa.Next(state, symbol);
  };
  using S = StateSet;
  int q1 = TypeAutomaton::StateOfType(t1);
  int q2x = TypeAutomaton::StateOfType(t2x);
  int q2y = TypeAutomaton::StateOfType(t2y);
  EXPECT_EQ(next(TypeAutomaton::kInit, a), S{q1});
  EXPECT_EQ(next(TypeAutomaton::kInit, b), S{});
  EXPECT_EQ(next(q1, a), S{q1});
  EXPECT_EQ(next(q1, b), S{q2x});
  EXPECT_EQ(next(q2x, b), S{q2y});
  EXPECT_EQ(next(q2x, a), S{});
  EXPECT_EQ(next(q2y, a), S{q1});
  EXPECT_EQ(next(q2y, b), S{q2y});

  // Labels follow μ.
  EXPECT_EQ(automaton.state_label[q1], a);
  EXPECT_EQ(automaton.state_label[q2x], b);
  EXPECT_EQ(automaton.state_label[TypeAutomaton::kInit], kNoSymbol);
}

TEST(TypeAutomatonTest, TypesAfterTracksAncestorStrings) {
  Edtd edtd = Example26Edtd();
  int a = edtd.sigma.Find("a"), b = edtd.sigma.Find("b");
  EXPECT_EQ(BuildTypeAutomaton(edtd).TypesAfter({a, a, b, b}).size(), 1u);
  EXPECT_EQ(BuildTypeAutomaton(edtd).TypesAfter({b}).size(), 0u);
}

TEST(SingleTypeTest, DetectsViolations) {
  EXPECT_TRUE(IsSingleType(Example26Edtd()));
  EXPECT_FALSE(IsSingleType(DiningEdtd()));  // two a-start types
  // Two b-types inside one content model (the paper's example after
  // Definition 2.4: d(τ) = τ1 + τ2 with μ(τ1) = μ(τ2)).
  SchemaBuilder builder;
  builder.AddType("R", "a", "B1 | B2");
  builder.AddType("B1", "b", "%");
  builder.AddType("B2", "b", "B1?");
  builder.AddStart("R");
  EXPECT_FALSE(IsSingleType(builder.Build()));
}

TEST(SingleTypeTest, DtdsAreAlwaysSingleType) {
  EXPECT_TRUE(IsSingleType(Edtd::FromDtd(StoreDtd())));
}

}  // namespace
}  // namespace stap
