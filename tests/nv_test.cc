// Tests for Section 4.2.2: s-types, c-types, the non-violating set
// nv(D2, D1), and the maximal lower approximation of a union fixing one
// disjunct (Theorem 4.8).
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/closure.h"
#include "stap/approx/inclusion.h"
#include "stap/approx/nv.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

// Brute-force reference for nv(D2, D1) on bounded instances: t ∈ L(D2) is
// non-violating iff closing {t} with the bounded part of L(D1) stays
// inside L(D1) ∪ L(D2). Exact when L(D1) is finite within the bounds and
// closures saturate.
bool NonViolatingBruteForce(const Tree& t, const Edtd& d1, const Edtd& d2,
                            const std::vector<Tree>& d1_members) {
  std::vector<Tree> seeds = d1_members;
  seeds.push_back(t);
  ClosureOptions options;
  options.max_trees = 4000;
  // Stop as soon as the closure escapes the union.
  options.stop_predicate = [&](const Tree& member) {
    return !d1.Accepts(member) && !d2.Accepts(member);
  };
  ClosureResult closure = CloseUnderExchange(seeds, options);
  if (closure.stop_match.has_value()) return false;
  if (!closure.saturated) ADD_FAILURE() << "closure capped; enlarge limits";
  return true;
}

TEST(NvTest, Theorem43UnionHasStrictNonViolatingSet) {
  auto [d1, d2] = Theorem43Schemas();  // a*b chains vs. rank<=2 a-trees
  DfaXsd nv = NonViolating(d1, d2);
  auto [a1, a2] = AlignAlphabets(d1, d2);
  int a = nv.sigma.Find("a");

  // Proof of Theorem 4.3: adding any deep-branching tree lets exchange
  // escape the union, so nv(D2, D1) must reject *some* D2 trees...
  // L(D1) members are unary a-chains ending in b; L(D2) members are
  // all-a trees, so restrict the enumerations accordingly.
  std::vector<Tree> d1_members;
  for (const Tree& tree : EnumerateTrees({5, 1, 2})) {
    if (a1.Accepts(tree)) d1_members.push_back(tree);
  }
  bool some_rejected = false;
  for (const Tree& tree : EnumerateTrees({4, 2, 1})) {
    if (!a2.Accepts(tree)) continue;
    bool in_nv = nv.Accepts(tree);
    bool reference = NonViolatingBruteForce(tree, a1, a2, d1_members);
    EXPECT_EQ(in_nv, reference) << tree.ToString(nv.sigma);
    if (!in_nv) some_rejected = true;
  }
  EXPECT_TRUE(some_rejected);
  (void)a;
}

TEST(NvTest, LowerUnionIsALowerBoundAndContainsD1) {
  auto [d1, d2] = Theorem43Schemas();
  DfaXsd lower = LowerUnionFixingFirst(d1, d2);
  auto [a1, a2] = AlignAlphabets(d1, d2);
  // Contains D1 entirely.
  EXPECT_TRUE(EdtdIncludedInXsd(a1, lower));
  // Lower bound: member-wise within the union.
  for (const Tree& tree : EnumerateTrees({4, 2, 2})) {
    if (lower.Accepts(tree)) {
      EXPECT_TRUE(a1.Accepts(tree) || a2.Accepts(tree))
          << tree.ToString(lower.sigma);
    }
  }
}

TEST(NvTest, DisjointAlphabetUnionIsFullyNonViolating) {
  // When the two languages cannot interact (no shared ancestor strings),
  // everything in D2 is non-violating and the lower approximation is the
  // full union.
  SchemaBuilder b1;
  b1.AddType("A", "a", "A?");
  b1.AddStart("A");
  SchemaBuilder b2;
  b2.AddType("B", "b", "B?");
  b2.AddStart("B");
  Edtd d1 = b1.Build(), d2 = b2.Build();
  DfaXsd nv = NonViolating(d1, d2);
  Edtd d2_aligned = AlignAlphabets(d2, d1).first;
  EXPECT_TRUE(EdtdIncludedInXsd(d2_aligned, nv));
  EXPECT_TRUE(IncludedInSingleType(StEdtdFromDfaXsd(nv), d2_aligned));
}

TEST(NvTest, IdenticalSchemasAreFullyNonViolating) {
  SchemaBuilder builder;
  builder.AddType("R", "r", "A*");
  builder.AddType("A", "a", "%");
  builder.AddStart("R");
  Edtd d = builder.Build();
  DfaXsd nv = NonViolating(d, d);
  EXPECT_TRUE(SingleTypeEquivalent(d, StEdtdFromDfaXsd(nv)));
  DfaXsd lower = LowerUnionFixingFirst(d, d);
  EXPECT_TRUE(SingleTypeEquivalent(d, StEdtdFromDfaXsd(lower)));
}

TEST(NvTest, AnalysisMarksSAndCTypes) {
  auto [d1, d2] = Theorem43Schemas();
  NvAnalysis analysis = AnalyzeNv(d1, d2);
  bool any_s = false, any_c = false;
  for (const auto& pair : analysis.pairs) {
    any_s |= pair.s_type;
    any_c |= pair.c_type;
  }
  // D1 chains a^k b are never D2-subtrees: s-types must exist. The
  // b-terminated contexts of D1 are never D2-contexts: c-types must
  // exist as well.
  EXPECT_TRUE(any_s);
  EXPECT_TRUE(any_c);
}

TEST(NvTest, EmptyFirstLanguageKeepsAllOfSecond) {
  SchemaBuilder empty;
  empty.AddType("R", "a", "R");
  empty.AddStart("R");
  SchemaBuilder b2;
  b2.AddType("B", "a", "B?");
  b2.AddStart("B");
  Edtd d1 = empty.Build(), d2 = b2.Build();
  DfaXsd nv = NonViolating(d1, d2);
  EXPECT_TRUE(IncludedInSingleType(d2, StEdtdFromDfaXsd(nv)));
  EXPECT_TRUE(IncludedInSingleType(StEdtdFromDfaXsd(nv), d2));
}

// Property sweep on random single-type pairs: the computed nv(D2, D1)
// agrees with the brute-force closure semantics on bounded documents, and
// Theorem 4.8's result is a lower bound of the union containing D1.
class NvRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(NvRandomTest, AgreesWithClosureSemantics) {
  std::mt19937 rng(GetParam() * 48611 + 11);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  params.content_breadth = 1;
  Edtd d1 = RandomStEdtd(&rng, params);
  Edtd d2 = RandomStEdtd(&rng, params);
  auto [a1, a2] = AlignAlphabets(d1, d2);

  DfaXsd lower = LowerUnionFixingFirst(a1, a2);
  EXPECT_TRUE(EdtdIncludedInXsd(a1, lower));

  TreeBounds bounds{3, 2, a1.sigma.size()};
  std::vector<Tree> d1_members;
  std::vector<Tree> all = EnumerateTrees(bounds);
  for (const Tree& tree : all) {
    if (a1.Accepts(tree)) d1_members.push_back(tree);
  }
  // Language caution: the brute force is only sound when L(D1) within
  // bounds captures all exchange partners for bounded documents; random
  // schemas may have deeper members, so we assert one-sided soundness:
  // everything the lower approximation accepts stays inside the union.
  for (const Tree& tree : all) {
    if (lower.Accepts(tree)) {
      EXPECT_TRUE(a1.Accepts(tree) || a2.Accepts(tree))
          << tree.ToString(lower.sigma);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NvRandomTest, ::testing::Range(0, 25));

// Two-sided agreement with the closure semantics on random *finite*
// (non-recursive, finite-content) schemas, where the bounded enumeration
// captures both languages completely.
class NvFiniteTest : public ::testing::TestWithParam<int> {};

TEST_P(NvFiniteTest, MatchesBruteForceExactly) {
  std::mt19937 rng(GetParam() * 15131 + 23);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  params.content_breadth = 2;
  Edtd d1 = RandomNonRecursiveStEdtd(&rng, params);
  Edtd d2 = RandomNonRecursiveStEdtd(&rng, params);
  auto [a1, a2] = AlignAlphabets(d1, d2);

  // Depth is bounded by the type count (3-node DAG paths), width by the
  // content breadth: {3, 2, Σ} covers both languages completely.
  TreeBounds bounds{3, 2, a1.sigma.size()};
  std::vector<Tree> all = EnumerateTrees(bounds);
  std::vector<Tree> d1_members;
  std::vector<Tree> d2_members;
  for (const Tree& tree : all) {
    if (a1.Accepts(tree)) d1_members.push_back(tree);
    if (a2.Accepts(tree)) d2_members.push_back(tree);
  }
  if (d1_members.size() > 60 || d2_members.size() > 80) {
    GTEST_SKIP() << "instance too large for the brute-force reference";
  }
  DfaXsd nv = NonViolating(a1, a2);
  for (const Tree& tree : d2_members) {
    bool reference = NonViolatingBruteForce(tree, a1, a2, d1_members);
    EXPECT_EQ(nv.Accepts(tree), reference)
        << tree.ToString(nv.sigma) << "\nd1 members: " << d1_members.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NvFiniteTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace stap
