// Tests for polynomial inclusion witnesses (approx/witness.h).
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper_boolean.h"
#include "stap/approx/witness.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"

namespace stap {
namespace {

TEST(MinimalTypeTreesTest, ProducesMembersPerType) {
  SchemaBuilder builder;
  builder.AddType("Lib", "library", "Book+");
  builder.AddType("Book", "book", "Title");
  builder.AddType("Title", "title", "%");
  builder.AddStart("Lib");
  Edtd schema = ReduceEdtd(builder.Build());
  std::vector<Tree> minimal = MinimalTypeTrees(schema);
  ASSERT_EQ(minimal.size(), 3u);
  int lib = schema.types.Find("Lib");
  EXPECT_TRUE(schema.Accepts(minimal[lib]));
  EXPECT_EQ(minimal[lib].NumNodes(), 3);  // library(book(title))
}

TEST(WitnessTest, ContentModelViolation) {
  SchemaBuilder sub;
  sub.AddType("R", "r", "A A A");
  sub.AddType("A", "a", "%");
  sub.AddStart("R");
  SchemaBuilder super;
  super.AddType("R", "r", "A A?");
  super.AddType("A", "a", "%");
  super.AddStart("R");
  Edtd d1 = sub.Build();
  Edtd d2 = ReduceEdtd(super.Build());
  DfaXsd xsd2 = DfaXsdFromStEdtd(d2);
  std::optional<Tree> witness = XsdInclusionWitness(d1, xsd2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(d1.Accepts(*witness));
  EXPECT_FALSE(xsd2.Accepts(*witness));
}

TEST(WitnessTest, DeepViolationGetsWrapped) {
  // The disagreement sits three levels down.
  SchemaBuilder sub;
  sub.AddType("R", "r", "M");
  sub.AddType("M", "m", "N");
  sub.AddType("N", "n", "A A");  // two leaves
  sub.AddType("A", "a", "%");
  sub.AddStart("R");
  SchemaBuilder super;
  super.AddType("R", "r", "M");
  super.AddType("M", "m", "N");
  super.AddType("N", "n", "A");  // only one
  super.AddType("A", "a", "%");
  super.AddStart("R");
  Edtd d1 = sub.Build();
  DfaXsd xsd2 = DfaXsdFromStEdtd(ReduceEdtd(super.Build()));
  std::optional<Tree> witness = XsdInclusionWitness(d1, xsd2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(d1.Accepts(*witness));
  EXPECT_FALSE(xsd2.Accepts(*witness));
  EXPECT_GE(witness->Depth(), 4);
}

TEST(WitnessTest, RootLabelViolation) {
  // The padding type fixes the alphabet order so that d1's symbol ids
  // coincide with the witness's merged alphabet (xsd2's symbols first).
  SchemaBuilder sub;
  sub.AddType("Pad", "a", "Pad");  // unproductive; only pins the alphabet
  sub.AddType("B", "b", "%");
  sub.AddStart("B");
  SchemaBuilder super;
  super.AddType("A", "a", "%");
  super.AddStart("A");
  Edtd d1 = sub.Build();
  DfaXsd xsd2 = DfaXsdFromStEdtd(ReduceEdtd(super.Build()));
  std::optional<Tree> witness = XsdInclusionWitness(d1, xsd2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(d1.Accepts(*witness));
  EXPECT_FALSE(xsd2.Accepts(*witness));
}

TEST(WitnessTest, NoWitnessWhenIncluded) {
  SchemaBuilder sub;
  sub.AddType("R", "r", "A A");
  sub.AddType("A", "a", "%");
  sub.AddStart("R");
  SchemaBuilder super;
  super.AddType("R", "r", "A*");
  super.AddType("A", "a", "%");
  super.AddStart("R");
  Edtd d1 = sub.Build();
  DfaXsd xsd2 = DfaXsdFromStEdtd(ReduceEdtd(super.Build()));
  EXPECT_FALSE(XsdInclusionWitness(d1, xsd2).has_value());
}

TEST(WitnessTest, NonSingleTypeLeftSides) {
  // Lemma 3.3 allows arbitrary EDTDs on the left; Theorem 4.3's union
  // schemas versus one disjunct gives a natural witness (an a*b chain).
  auto [d1, d2] = Theorem43Schemas();
  Edtd both = ReduceEdtd(EdtdUnion(d1, d2));
  DfaXsd only_d2 =
      DfaXsdFromStEdtd(ReduceEdtd(AlignAlphabets(d2, d1).first));
  ASSERT_TRUE(both.sigma == only_d2.sigma);
  std::optional<Tree> witness = XsdInclusionWitness(both, only_d2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(both.Accepts(*witness));
  EXPECT_FALSE(only_d2.Accepts(*witness));
}

// Property sweep: the witness agrees with the Boolean inclusion test.
class WitnessRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(WitnessRandomTest, WitnessIffNotIncluded) {
  std::mt19937 rng(GetParam() * 86969 + 41);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  Edtd d1 = RandomEdtd(&rng, params);
  Edtd d2 = RandomStEdtd(&rng, params);
  DfaXsd xsd2 = DfaXsdFromStEdtd(ReduceEdtd(d2));
  ASSERT_TRUE(d1.sigma == xsd2.sigma);  // generators intern identically
  bool included = EdtdIncludedInXsd(d1, xsd2);
  std::optional<Tree> witness = XsdInclusionWitness(d1, xsd2);
  EXPECT_EQ(witness.has_value(), !included);
  if (witness.has_value()) {
    EXPECT_TRUE(d1.Accepts(*witness));
    EXPECT_FALSE(xsd2.Accepts(*witness));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessRandomTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace stap
