// Unit tests for unranked trees, contexts, and subtree exchange.
#include <gtest/gtest.h>

#include "stap/tree/context.h"
#include "stap/tree/enumerate.h"
#include "stap/tree/tree.h"

namespace stap {
namespace {

// Labels: a=0, b=1, c=2.
Tree ABTree() {
  // a(b, a(b, c))
  return Tree(0, {Tree(1), Tree(0, {Tree(1), Tree(2)})});
}

TEST(TreeTest, BasicAccessors) {
  Tree tree = ABTree();
  EXPECT_EQ(tree.NumNodes(), 5);
  EXPECT_EQ(tree.Depth(), 3);
  EXPECT_FALSE(tree.IsLeaf());
  EXPECT_TRUE(tree.At({0}).IsLeaf());
  EXPECT_EQ(tree.At({1, 1}).label, 2);
  EXPECT_TRUE(tree.IsValidPath({1, 0}));
  EXPECT_FALSE(tree.IsValidPath({2}));
  EXPECT_FALSE(tree.IsValidPath({1, 1, 0}));
}

TEST(TreeTest, ChildAndAncestorStrings) {
  Tree tree = ABTree();
  EXPECT_EQ(tree.ChildString({}), (Word{1, 0}));
  EXPECT_EQ(tree.ChildString({1}), (Word{1, 2}));
  EXPECT_EQ(tree.ChildString({0}), Word{});
  EXPECT_EQ(tree.AncestorString({}), Word{0});
  EXPECT_EQ(tree.AncestorString({1, 1}), (Word{0, 0, 2}));
}

TEST(TreeTest, UnaryBuilder) {
  Tree tree = Tree::Unary({0, 0, 1});
  EXPECT_EQ(tree.Depth(), 3);
  EXPECT_EQ(tree.NumNodes(), 3);
  EXPECT_EQ(tree.AncestorString({0, 0}), (Word{0, 0, 1}));
}

TEST(TreeTest, ReplaceSubtree) {
  Tree tree = ABTree();
  Tree replaced = tree.ReplaceSubtree({1}, Tree(2));
  EXPECT_EQ(replaced.NumNodes(), 3);
  EXPECT_EQ(replaced.At({1}).label, 2);
  // Original is untouched (value semantics).
  EXPECT_EQ(tree.NumNodes(), 5);
  // Replacing the root returns the replacement itself.
  EXPECT_EQ(tree.ReplaceSubtree({}, Tree(1)), Tree(1));
}

TEST(TreeTest, AllPathsBreadthFirst) {
  Tree tree = ABTree();
  std::vector<TreePath> paths = tree.AllPaths();
  ASSERT_EQ(paths.size(), 5u);
  EXPECT_EQ(paths[0], TreePath{});
  EXPECT_EQ(paths[1], TreePath{0});
  EXPECT_EQ(paths[2], TreePath{1});
  EXPECT_EQ(paths[3], (TreePath{1, 0}));
  EXPECT_EQ(paths[4], (TreePath{1, 1}));
}

TEST(TreeTest, ToStringTermSyntax) {
  Alphabet alphabet({"a", "b", "c"});
  EXPECT_EQ(ABTree().ToString(alphabet), "a(b, a(b, c))");
  EXPECT_EQ(Tree(2).ToString(alphabet), "c");
}

TEST(TreeTest, OrderingIsTotal) {
  Tree a = Tree(0);
  Tree b = Tree(0, {Tree(1)});
  Tree c = Tree(1);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_FALSE(a < a);
}

TEST(ExchangeTest, GuardedExchangeRespectsAncestorStrings) {
  // t1 = a(b, a(b, c)), t2 = a(a(c, c)): nodes {1} in t1 and {0} in t2
  // both have ancestor string a·a.
  Tree t1 = ABTree();
  Tree t2 = Tree(0, {Tree(0, {Tree(2), Tree(2)})});
  ASSERT_TRUE(AncestorStringsEqual(t1, {1}, t2, {0}));
  Tree exchanged = AncestorGuardedExchange(t1, {1}, t2, {0});
  EXPECT_EQ(exchanged, Tree(0, {Tree(1), Tree(0, {Tree(2), Tree(2)})}));
  EXPECT_FALSE(AncestorStringsEqual(t1, {0}, t2, {0}));
}

TEST(ContextTest, ExtractAndApply) {
  Tree tree = ABTree();
  TreeContext context = TreeContext::Extract(tree, {1});
  EXPECT_EQ(context.hole_label(), 0);
  EXPECT_EQ(context.tree.NumNodes(), 3);  // subtree at the hole removed
  Tree rebuilt = context.Apply(tree.At({1}));
  EXPECT_EQ(rebuilt, tree);
  Tree other = context.Apply(Tree(0));
  EXPECT_EQ(other, Tree(0, {Tree(1), Tree(0)}));
}

TEST(ContextTest, ComposeNestsHoles) {
  Tree tree = ABTree();
  TreeContext outer = TreeContext::Extract(tree, {1});
  TreeContext inner = TreeContext::Extract(tree.At({1}), {1});
  TreeContext composed = outer.Compose(inner);
  EXPECT_EQ(composed.hole, (TreePath{1, 1}));
  EXPECT_EQ(composed.Apply(Tree(2)), tree);
}

TEST(ContextTest, ToStringMarksHole) {
  Alphabet alphabet({"a", "b", "c"});
  TreeContext context = TreeContext::Extract(ABTree(), {1});
  EXPECT_EQ(context.ToString(alphabet), "a(b, a*)");
}

TEST(EnumerateTest, CountsMatchMaterialization) {
  for (int depth = 1; depth <= 3; ++depth) {
    for (int width = 0; width <= 2; ++width) {
      TreeBounds bounds{depth, width, 2};
      std::vector<Tree> trees = EnumerateTrees(bounds);
      EXPECT_EQ(static_cast<int64_t>(trees.size()),
                CountTrees(bounds, 1 << 30))
          << "depth=" << depth << " width=" << width;
    }
  }
}

TEST(EnumerateTest, SmallCasesAreExact) {
  // Depth 1: just the leaves.
  EXPECT_EQ(EnumerateTrees({1, 2, 3}).size(), 3u);
  // Depth <= 2, width <= 1, 1 symbol: a and a(a).
  EXPECT_EQ(EnumerateTrees({2, 1, 1}).size(), 2u);
  // Depth <= 2, width <= 2, 1 symbol: a, a(a), a(a,a).
  EXPECT_EQ(EnumerateTrees({2, 2, 1}).size(), 3u);
}

TEST(EnumerateTest, RespectsBoundsAndUniqueness) {
  TreeBounds bounds{3, 2, 2};
  std::vector<Tree> trees = EnumerateTrees(bounds);
  for (const Tree& tree : trees) {
    EXPECT_LE(tree.Depth(), 3);
  }
  for (size_t i = 1; i < trees.size(); ++i) {
    EXPECT_FALSE(trees[i - 1] == trees[i]);
  }
  EXPECT_GT(trees.size(), 10u);
}

TEST(EnumerateTest, CountCapSaturates) {
  EXPECT_EQ(CountTrees({5, 5, 5}, 1000), 1000);
}

}  // namespace
}  // namespace stap
