// Unit tests for the regex module: AST, parser, Glushkov construction,
// one-unambiguity, DFA round trips.
#include <gtest/gtest.h>

#include <random>

#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/base/budget.h"
#include "stap/regex/ast.h"
#include "stap/regex/from_dfa.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"

namespace stap {
namespace {

RegexPtr Parse(const std::string& text, Alphabet* alphabet) {
  StatusOr<RegexPtr> regex = ParseRegex(text, alphabet);
  EXPECT_TRUE(regex.ok()) << regex.status();
  return *regex;
}

TEST(RegexAstTest, NullabilityFollowsTheGrammar) {
  Alphabet alphabet;
  EXPECT_FALSE(Parse("a", &alphabet)->IsNullable());
  EXPECT_TRUE(Parse("a?", &alphabet)->IsNullable());
  EXPECT_TRUE(Parse("a*", &alphabet)->IsNullable());
  EXPECT_FALSE(Parse("a+", &alphabet)->IsNullable());
  EXPECT_TRUE(Parse("a* b?", &alphabet)->IsNullable());
  EXPECT_FALSE(Parse("a* b", &alphabet)->IsNullable());
  EXPECT_TRUE(Parse("a | %", &alphabet)->IsNullable());
  EXPECT_FALSE(Regex::EmptySet()->IsNullable());
  EXPECT_TRUE(Regex::Epsilon()->IsNullable());
}

TEST(RegexAstTest, FactoriesNormalizeDegenerateCases) {
  EXPECT_EQ(Regex::Concat({})->kind(), RegexKind::kEpsilon);
  EXPECT_EQ(Regex::Union({})->kind(), RegexKind::kEmptySet);
  RegexPtr symbol = Regex::Symbol(0);
  EXPECT_EQ(Regex::Concat({symbol}), symbol);
  EXPECT_EQ(Regex::Union({symbol}), symbol);
}

TEST(RegexParserTest, PrecedenceAndGrouping) {
  Alphabet alphabet;
  RegexPtr regex = Parse("a b | c", &alphabet);
  ASSERT_EQ(regex->kind(), RegexKind::kUnion);
  EXPECT_EQ(regex->children()[0]->kind(), RegexKind::kConcat);
  EXPECT_EQ(regex->children()[1]->kind(), RegexKind::kSymbol);

  RegexPtr grouped = Parse("a (b | c)", &alphabet);
  ASSERT_EQ(grouped->kind(), RegexKind::kConcat);
  EXPECT_EQ(grouped->children()[1]->kind(), RegexKind::kUnion);

  RegexPtr postfix = Parse("a b*", &alphabet);
  ASSERT_EQ(postfix->kind(), RegexKind::kConcat);
  EXPECT_EQ(postfix->children()[1]->kind(), RegexKind::kStar);
}

TEST(RegexParserTest, ErrorsAreReported) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseRegex("a | ", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("(a", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a )", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("*", &alphabet).ok());
  // Unknown symbols are an error when interning is off.
  Alphabet fixed({"a"});
  EXPECT_FALSE(ParseRegex("b", &fixed, /*intern_new_symbols=*/false).ok());
  EXPECT_TRUE(ParseRegex("a", &fixed, /*intern_new_symbols=*/false).ok());
}

TEST(RegexPrinterTest, RoundTripsThroughParser) {
  Alphabet alphabet;
  for (const char* source :
       {"a", "a b c", "a | b | c", "(a | b) c*", "a+ b? (c a)+", "%",
        "a (b c | %)*"}) {
    RegexPtr regex = Parse(source, &alphabet);
    std::string printed = regex->ToString(alphabet);
    RegexPtr reparsed = Parse(printed, &alphabet);
    EXPECT_TRUE(DfaEquivalent(RegexToDfa(*regex, alphabet.size()),
                              RegexToDfa(*reparsed, alphabet.size())))
        << source << " vs " << printed;
  }
}

TEST(GlushkovTest, PositionsAndAcceptance) {
  Alphabet alphabet;
  RegexPtr regex = Parse("(a b)* a", &alphabet);
  Nfa nfa = GlushkovAutomaton(*regex, alphabet.size());
  EXPECT_EQ(nfa.num_states(), 4);  // 3 positions + initial
  EXPECT_TRUE(nfa.Accepts({0}));
  EXPECT_TRUE(nfa.Accepts({0, 1, 0}));
  EXPECT_FALSE(nfa.Accepts({0, 1}));
  EXPECT_FALSE(nfa.Accepts({}));
}

TEST(GlushkovTest, StateLabeledProperty) {
  Alphabet alphabet;
  RegexPtr regex = Parse("(a | b)* a (a | b)", &alphabet);
  Nfa nfa = GlushkovAutomaton(*regex, alphabet.size());
  // Every state has all incoming transitions on one symbol.
  std::vector<int> incoming(nfa.num_states(), kNoSymbol);
  for (int q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.num_symbols(); ++a) {
      for (int r : nfa.Next(q, a)) {
        EXPECT_TRUE(incoming[r] == kNoSymbol || incoming[r] == a);
        incoming[r] = a;
      }
    }
  }
}

TEST(GlushkovTest, OneUnambiguityMatchesKnownExamples) {
  Alphabet alphabet({"a", "b"});
  // (a b)* a: after reading a, the next position is ambiguous between
  // the loop's b-successor... actually the a-positions are the issue.
  EXPECT_FALSE(IsOneUnambiguous(*Parse("(a b)* a", &alphabet),
                                alphabet.size()));
  EXPECT_TRUE(IsOneUnambiguous(*Parse("b* a (a | b)*", &alphabet),
                               alphabet.size()));
  EXPECT_TRUE(IsOneUnambiguous(*Parse("a? b", &alphabet), alphabet.size()));
  // The classical non-deterministic content model (a + b)* a.
  EXPECT_FALSE(IsOneUnambiguous(*Parse("(a | b)* a", &alphabet),
                                alphabet.size()));
}

TEST(RegexToDfaTest, EpsilonAndEmpty) {
  EXPECT_TRUE(RegexToDfa(*Regex::EmptySet(), 2).IsEmpty());
  Dfa eps = RegexToDfa(*Regex::Epsilon(), 2);
  EXPECT_TRUE(eps.Accepts({}));
  EXPECT_FALSE(eps.Accepts({0}));
}

TEST(RegexToDfaTest, LiteralWord) {
  Dfa dfa = RegexToDfa(*Regex::Literal({0, 1, 0}), 2);
  EXPECT_TRUE(dfa.Accepts({0, 1, 0}));
  EXPECT_FALSE(dfa.Accepts({0, 1}));
  EXPECT_EQ(dfa.num_states(), 4);
}

TEST(RepeatTest, FactoryNormalizesDegenerateBounds) {
  RegexPtr a = Regex::Symbol(0);
  EXPECT_EQ(Regex::Repeat(a, 0, Regex::kUnboundedRepeat)->kind(),
            RegexKind::kStar);
  EXPECT_EQ(Regex::Repeat(a, 1, Regex::kUnboundedRepeat)->kind(),
            RegexKind::kPlus);
  EXPECT_EQ(Regex::Repeat(a, 0, 1)->kind(), RegexKind::kOptional);
  EXPECT_EQ(Regex::Repeat(a, 1, 1), a);
  EXPECT_EQ(Regex::Repeat(a, 0, 0)->kind(), RegexKind::kEpsilon);
  RegexPtr counted = Regex::Repeat(a, 2, 4);
  ASSERT_EQ(counted->kind(), RegexKind::kRepeat);
  EXPECT_EQ(counted->repeat_min(), 2);
  EXPECT_EQ(counted->repeat_max(), 4);
  EXPECT_TRUE(counted->ContainsRepeat());
  EXPECT_FALSE(a->ContainsRepeat());
}

TEST(RepeatTest, ParserHandlesCountedBounds) {
  Alphabet alphabet;
  RegexPtr ranged = Parse("a{2,4}", &alphabet);
  ASSERT_EQ(ranged->kind(), RegexKind::kRepeat);
  EXPECT_EQ(ranged->repeat_min(), 2);
  EXPECT_EQ(ranged->repeat_max(), 4);
  RegexPtr exact = Parse("a{3}", &alphabet);
  ASSERT_EQ(exact->kind(), RegexKind::kRepeat);
  EXPECT_EQ(exact->repeat_min(), 3);
  EXPECT_EQ(exact->repeat_max(), 3);
  RegexPtr open = Parse("a{2,}", &alphabet);
  ASSERT_EQ(open->kind(), RegexKind::kRepeat);
  EXPECT_EQ(open->repeat_max(), Regex::kUnboundedRepeat);
  EXPECT_TRUE(Parse("a{0,3}", &alphabet)->IsNullable());
  EXPECT_FALSE(Parse("a{2,4}", &alphabet)->IsNullable());
  EXPECT_TRUE(Parse("(a?){2,4}", &alphabet)->IsNullable());

  EXPECT_FALSE(ParseRegex("a{,3}", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a{5,2}", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a{2", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a{}", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a{9999999999}", &alphabet).ok());
}

TEST(RepeatTest, PrinterRoundTripsCountedBounds) {
  Alphabet alphabet;
  for (const char* source :
       {"a{2,4}", "a{3}", "(a b){1,2} c", "a{2,} b?", "(a | b){0,2}"}) {
    RegexPtr regex = Parse(source, &alphabet);
    std::string printed = regex->ToString(alphabet);
    RegexPtr reparsed = Parse(printed, &alphabet);
    EXPECT_TRUE(DfaEquivalent(RegexToDfa(*regex, alphabet.size()),
                              RegexToDfa(*reparsed, alphabet.size())))
        << source << " vs " << printed;
  }
}

TEST(RepeatTest, GlushkovExpansionMatchesCountedSemantics) {
  Alphabet alphabet;
  RegexPtr ranged = Parse("a{2,4}", &alphabet);
  Dfa dfa = RegexToDfa(*ranged, alphabet.size());
  for (int k = 0; k <= 6; ++k) {
    EXPECT_EQ(dfa.Accepts(Word(k, 0)), k >= 2 && k <= 4) << "k=" << k;
  }
  RegexPtr open = Parse("(a b){2,}", &alphabet);
  Dfa open_dfa = RegexToDfa(*open, alphabet.size());
  EXPECT_FALSE(open_dfa.Accepts({0, 1}));
  EXPECT_TRUE(open_dfa.Accepts({0, 1, 0, 1}));
  EXPECT_TRUE(open_dfa.Accepts({0, 1, 0, 1, 0, 1}));
  EXPECT_FALSE(open_dfa.Accepts({0, 1, 0}));
  // A nullable body keeps the lower bound honest: (a?){2,3} accepts ε.
  RegexPtr nullable = Parse("(a?){2,3}", &alphabet);
  Dfa nullable_dfa = RegexToDfa(*nullable, alphabet.size());
  for (int k = 0; k <= 4; ++k) {
    EXPECT_EQ(nullable_dfa.Accepts(Word(k, 0)), k <= 3) << "k=" << k;
  }
}

TEST(RepeatTest, HostileBoundsExhaustStateBudget) {
  Alphabet alphabet;
  RegexPtr hostile = Parse("a{1,1000000}", &alphabet);
  Budget budget;
  budget.set_max_states(10000);
  StatusOr<Dfa> dfa = RegexToDfa(*hostile, alphabet.size(), &budget);
  ASSERT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), StatusCode::kResourceExhausted)
      << dfa.status();
  // The same expression under a sufficient budget still compiles.
  Budget roomy;
  roomy.set_max_states(5000);
  StatusOr<Dfa> small = RegexToDfa(*Parse("a{1,100}", &alphabet),
                                   alphabet.size(), &roomy);
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_TRUE(small->Accepts(Word(100, 0)));
  EXPECT_FALSE(small->Accepts(Word(101, 0)));
}

TEST(DfaToRegexTest, RoundTripsPreserveLanguage) {
  Alphabet alphabet;
  for (const char* source :
       {"a", "a*", "(a | b)* a", "a b | b a", "(a b+)* c?", "%", "~"}) {
    RegexPtr regex = Parse(source, &alphabet);
    alphabet.Intern("a");
    alphabet.Intern("b");
    alphabet.Intern("c");
    Dfa dfa = RegexToDfa(*regex, alphabet.size());
    RegexPtr back = DfaToRegex(dfa);
    Dfa dfa2 = RegexToDfa(*back, alphabet.size());
    EXPECT_TRUE(DfaEquivalent(dfa, dfa2)) << source;
  }
}

// Parameterized sweep: Glushkov automaton language equals the derivative
// semantics computed via the minimal DFA for randomized expressions.
class RegexRandomTest : public ::testing::TestWithParam<int> {};

RegexPtr RandomRegex(std::mt19937* rng, int depth) {
  int choice = static_cast<int>((*rng)() % (depth <= 0 ? 2 : 6));
  switch (choice) {
    case 0:
      return Regex::Symbol(static_cast<int>((*rng)() % 2));
    case 1:
      return Regex::Epsilon();
    case 2:
      return Regex::Star(RandomRegex(rng, depth - 1));
    case 3:
      return Regex::Union(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    case 4:
      return Regex::Concat(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    default:
      return Regex::Plus(RandomRegex(rng, depth - 1));
  }
}

TEST_P(RegexRandomTest, GlushkovAgreesWithMinimalDfaOnShortWords) {
  std::mt19937 rng(GetParam());
  RegexPtr regex = RandomRegex(&rng, 4);
  Nfa glushkov = GlushkovAutomaton(*regex, 2);
  Dfa dfa = RegexToDfa(*regex, 2);
  for (int len = 0; len <= 5; ++len) {
    for (int bits = 0; bits < (1 << len); ++bits) {
      Word word;
      for (int i = 0; i < len; ++i) word.push_back((bits >> i) & 1);
      EXPECT_EQ(glushkov.Accepts(word), dfa.Accepts(word));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexRandomTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace stap
