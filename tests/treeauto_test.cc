// Unit tests for binary tree automata, the binary encoding (Figure 3
// flavor), and the exact EXPTIME decision procedures.
#include <gtest/gtest.h>

#include "stap/gen/families.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/tree/enumerate.h"
#include "stap/treeauto/bta.h"
#include "stap/treeauto/encoding.h"
#include "stap/treeauto/exact.h"

namespace stap {
namespace {

TEST(EncodingTest, RoundTripsAllSmallTrees) {
  const int num_symbols = 2;
  for (const Tree& tree : EnumerateTrees({3, 3, num_symbols})) {
    Tree binary = EncodeBinary(tree, num_symbols);
    // Binary shape: every node has 0 or 2 children.
    for (const TreePath& path : binary.AllPaths()) {
      size_t arity = binary.At(path).children.size();
      EXPECT_TRUE(arity == 0 || arity == 2);
    }
    StatusOr<Tree> decoded = DecodeBinary(binary, num_symbols);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, tree);
  }
}

TEST(EncodingTest, DecodeRejectsGarbage) {
  const int hash = HashSymbol(2);
  EXPECT_FALSE(DecodeBinary(Tree(hash), 2).ok());
  EXPECT_FALSE(DecodeBinary(Tree(0, {Tree(0), Tree(hash)}), 2).ok());
  EXPECT_FALSE(DecodeBinary(Tree(0, {Tree(hash)}), 2).ok());
}

TEST(BtaTest, ManualAutomatonEvaluation) {
  // Accepts binary trees over {0} of the form 0(leaf, leaf).
  Bta bta(2, 1);
  bta.AddLeafTransition(0, 0);
  bta.AddInternalTransition(0, 0, 0, 1);
  bta.SetFinal(1);
  EXPECT_TRUE(bta.Accepts(Tree(0, {Tree(0), Tree(0)})));
  EXPECT_FALSE(bta.Accepts(Tree(0)));
  EXPECT_FALSE(bta.Accepts(
      Tree(0, {Tree(0, {Tree(0), Tree(0)}), Tree(0)})));
  EXPECT_FALSE(bta.IsEmpty());
  EXPECT_EQ(bta.NumTransitions(), 2);
}

TEST(BtaTest, EmptinessFixpoint) {
  Bta bta(2, 1);
  bta.AddInternalTransition(0, 1, 1, 0);  // state 1 is never leaf-reachable
  bta.SetFinal(0);
  EXPECT_TRUE(bta.IsEmpty());
}

TEST(DetBtaTest, AgreesWithNondeterministic) {
  Edtd edtd = ReduceEdtd(Example26Edtd());
  Bta bta = BtaFromEdtd(edtd);
  DetBta det = DeterminizeBta(bta);
  for (const Tree& tree : EnumerateTrees({3, 2, 2})) {
    Tree binary = EncodeBinary(tree, edtd.num_symbols());
    EXPECT_EQ(det.Accepts(binary), bta.Accepts(binary))
        << tree.ToString(edtd.sigma);
  }
}

TEST(BtaFromEdtdTest, AcceptsExactlyEncodedLanguage) {
  Edtd edtd = ReduceEdtd(Example26Edtd());
  Bta bta = BtaFromEdtd(edtd);
  for (const Tree& tree : EnumerateTrees({4, 2, 2})) {
    Tree binary = EncodeBinary(tree, edtd.num_symbols());
    EXPECT_EQ(bta.Accepts(binary), edtd.Accepts(tree))
        << tree.ToString(edtd.sigma);
  }
}

TEST(ExactTest, InclusionAndEquivalence) {
  SchemaBuilder sub;
  sub.AddType("R", "a", "B B");
  sub.AddType("B", "b", "%");
  sub.AddStart("R");

  SchemaBuilder super;
  super.AddType("R", "a", "B*");
  super.AddType("B", "b", "%");
  super.AddStart("R");

  Edtd small = sub.Build();
  Edtd big = super.Build();
  EXPECT_TRUE(EdtdIncludedInExact(small, big));
  EXPECT_FALSE(EdtdIncludedInExact(big, small));
  EXPECT_TRUE(EdtdEquivalentExact(small, small));
  EXPECT_FALSE(EdtdEquivalentExact(small, big));

  std::optional<Tree> witness = EdtdInclusionCounterexample(big, small);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(big.Accepts(*witness));
  EXPECT_FALSE(small.Accepts(*witness));
}

TEST(ExactTest, NonSingleTypeLanguagesSupported) {
  // The exact procedures must handle EDTDs beyond ST-REG: the language
  // { a(b(c)), a(b) } forced through two root types.
  SchemaBuilder builder;
  builder.AddType("R1", "a", "B1");
  builder.AddType("R2", "a", "B2");
  builder.AddType("B1", "b", "C");
  builder.AddType("B2", "b", "%");
  builder.AddType("C", "c", "%");
  builder.AddStart("R1");
  builder.AddStart("R2");
  Edtd both = builder.Build();

  SchemaBuilder one;
  one.AddType("R", "a", "B");
  one.AddType("B", "b", "C?");
  one.AddType("C", "c", "%");
  one.AddStart("R");
  Edtd merged = one.Build();
  EXPECT_TRUE(EdtdEquivalentExact(both, merged));
}

TEST(ExactTest, EmptyLanguageEdgeCases) {
  SchemaBuilder builder;
  builder.AddType("R", "a", "R");
  builder.AddStart("R");
  Edtd empty = ReduceEdtd(builder.Build());

  SchemaBuilder leaf;
  leaf.AddType("R", "a", "%");
  leaf.AddStart("R");
  Edtd single = leaf.Build();

  // Align alphabets (both must speak of 'a').
  EXPECT_TRUE(EdtdIncludedInExact(empty, single));
  EXPECT_FALSE(EdtdIncludedInExact(single, empty));
}

}  // namespace
}  // namespace stap
