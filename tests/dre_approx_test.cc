// Tests for the deterministic-RE upper approximation of content models
// (the [4]-style step the paper's conclusion composes with Section 3).
#include <gtest/gtest.h>

#include <random>

#include "stap/automata/inclusion.h"
#include "stap/regex/bkw.h"
#include "stap/regex/dre_approx.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"

namespace stap {
namespace {

Dfa Language(const char* text, Alphabet* alphabet) {
  StatusOr<RegexPtr> regex = ParseRegex(text, alphabet);
  EXPECT_TRUE(regex.ok()) << regex.status();
  return RegexToDfa(**regex, alphabet->size());
}

TEST(DreApproxTest, ExactOnChainLanguages) {
  Alphabet alphabet({"a", "b", "c"});
  for (const char* text :
       {"a", "a?", "a*", "a+ b*", "(a | b)* c", "a? b+ c?", "%"}) {
    Dfa dfa = Language(text, &alphabet);
    RegexPtr approx = ApproximateDre(dfa);
    EXPECT_TRUE(IsOneUnambiguous(*approx, alphabet.size())) << text;
    EXPECT_TRUE(DfaEquivalent(RegexToDfa(*approx, alphabet.size()), dfa))
        << text << " -> " << approx->ToString(alphabet);
    EXPECT_TRUE(ApproximateDreIsExact(dfa)) << text;
  }
}

TEST(DreApproxTest, SoundSupersetOnNonChainLanguages) {
  Alphabet alphabet({"a", "b", "c"});
  for (const char* text :
       {"a b | b a", "(a b)+", "a b a", "(a | b)* a (a | b)",
        "a (b c)* | b"}) {
    Dfa dfa = Language(text, &alphabet);
    RegexPtr approx = ApproximateDre(dfa);
    EXPECT_TRUE(IsOneUnambiguous(*approx, alphabet.size())) << text;
    // Superset...
    EXPECT_TRUE(NfaIncludedInDfa(dfa.ToNfa(),
                                 RegexToDfa(*approx, alphabet.size())))
        << text << " -> " << approx->ToString(alphabet);
  }
  // ...and not exact for genuinely non-chain languages.
  EXPECT_FALSE(ApproximateDreIsExact(Language("a b a", &alphabet)));
}

TEST(DreApproxTest, CyclicPrecedenceCollapsesToOneGroup) {
  // {ab, bc, ca}: precedence a->b->c->a without any direct mutual pair —
  // the transitive closure must still put all three in one group.
  Alphabet alphabet({"a", "b", "c"});
  Dfa dfa = Language("a b | b c | c a", &alphabet);
  RegexPtr approx = ApproximateDre(dfa);
  EXPECT_TRUE(IsOneUnambiguous(*approx, alphabet.size()));
  EXPECT_TRUE(
      NfaIncludedInDfa(dfa.ToNfa(), RegexToDfa(*approx, alphabet.size())));
}

TEST(DreApproxTest, EmptyAndEpsilon) {
  EXPECT_EQ(ApproximateDre(Dfa::EmptyLanguage(2))->kind(),
            RegexKind::kEmptySet);
  EXPECT_EQ(ApproximateDre(Dfa::EpsilonOnly(2))->kind(),
            RegexKind::kEpsilon);
}

// Property sweep: for random expressions, the approximation is always a
// deterministic superset, and exact whenever the language already is a
// chain (verified via the exactness probe itself on chain inputs above).
class DreApproxRandomTest : public ::testing::TestWithParam<int> {};

RegexPtr RandomRegex(std::mt19937* rng, int depth) {
  int choice = static_cast<int>((*rng)() % (depth <= 0 ? 2 : 6));
  switch (choice) {
    case 0:
      return Regex::Symbol(static_cast<int>((*rng)() % 3));
    case 1:
      return Regex::Epsilon();
    case 2:
      return Regex::Star(RandomRegex(rng, depth - 1));
    case 3:
      return Regex::Union(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    case 4:
      return Regex::Concat(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    default:
      return Regex::Plus(RandomRegex(rng, depth - 1));
  }
}

TEST_P(DreApproxRandomTest, DeterministicSuperset) {
  std::mt19937 rng(GetParam() * 39916801 + 31);
  RegexPtr regex = RandomRegex(&rng, 4);
  Dfa dfa = RegexToDfa(*regex, 3);
  RegexPtr approx = ApproximateDre(dfa);
  EXPECT_TRUE(IsOneUnambiguous(*approx, 3));
  EXPECT_TRUE(IsOneUnambiguousLanguage(RegexToDfa(*approx, 3)));
  EXPECT_TRUE(NfaIncludedInDfa(dfa.ToNfa(), RegexToDfa(*approx, 3)))
      << "input DFA states=" << dfa.num_states();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DreApproxRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace stap
