// Tests for W3C-style XSD export/import round trips.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/base/budget.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/text_format.h"
#include "stap/schema/xsd_io.h"
#include "stap/tree/xml.h"

namespace stap {
namespace {

Edtd LibrarySchema() {
  SchemaBuilder builder;
  builder.AddType("Lib", "library", "Book*");
  builder.AddType("Book", "book", "Title Chapter+");
  builder.AddType("Title", "title", "%");
  builder.AddType("Chapter", "chapter", "%");
  builder.AddStart("Lib");
  return builder.Build();
}

TEST(XsdExportTest, EmitsSchemaSkeleton) {
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(LibrarySchema())));
  std::string exported = ExportXsd(xsd);
  EXPECT_NE(exported.find("<xs:schema"), std::string::npos);
  EXPECT_NE(exported.find("xs:complexType"), std::string::npos);
  EXPECT_NE(exported.find("name=\"library\""), std::string::npos);
  EXPECT_NE(exported.find("maxOccurs=\"unbounded\""), std::string::npos);
}

TEST(XsdExportTest, RoundTripsThroughImport) {
  Edtd schema = ReduceEdtd(LibrarySchema());
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(schema));
  StatusOr<Edtd> imported = ImportXsd(ExportXsd(xsd));
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_TRUE(IsSingleType(ReduceEdtd(*imported)));
  EXPECT_TRUE(SingleTypeEquivalent(schema, *imported));
}

TEST(XsdImportTest, ParsesHandWrittenSubset) {
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order" type="OrderType"/>
  <xs:complexType name="OrderType">
    <xs:sequence>
      <xs:element name="customer" type="Empty"/>
      <xs:element name="item" type="ItemType" minOccurs="1"
                  maxOccurs="unbounded"/>
      <xs:element name="note" type="Empty" minOccurs="0"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="ItemType">
    <xs:choice>
      <xs:element name="sku" type="Empty"/>
      <xs:element name="gtin" type="Empty"/>
    </xs:choice>
  </xs:complexType>
  <xs:complexType name="Empty">
    <xs:sequence/>
  </xs:complexType>
</xs:schema>
)";
  StatusOr<Edtd> schema = ImportXsd(source);
  ASSERT_TRUE(schema.ok()) << schema.status();
  Edtd reduced = ReduceEdtd(*schema);
  EXPECT_TRUE(IsSingleType(reduced));
  Alphabet& s = reduced.sigma;
  int order = s.Find("order"), customer = s.Find("customer"),
      item = s.Find("item"), sku = s.Find("sku"), gtin = s.Find("gtin"),
      note = s.Find("note");
  Tree good(order, {Tree(customer), Tree(item, {Tree(sku)}),
                    Tree(item, {Tree(gtin)}), Tree(note)});
  EXPECT_TRUE(reduced.Accepts(good));
  Tree no_items(order, {Tree(customer), Tree(note)});
  EXPECT_FALSE(reduced.Accepts(no_items));
  Tree both(order, {Tree(customer),
                    Tree(item, {Tree(sku), Tree(gtin)})});
  EXPECT_FALSE(reduced.Accepts(both));
}

TEST(XsdImportTest, InlineAnonymousTypes) {
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="b" minOccurs="0">
          <xs:complexType>
            <xs:sequence/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
)";
  StatusOr<Edtd> schema = ImportXsd(source);
  ASSERT_TRUE(schema.ok()) << schema.status();
  int a = schema->sigma.Find("a"), b = schema->sigma.Find("b");
  EXPECT_TRUE(schema->Accepts(Tree(a)));
  EXPECT_TRUE(schema->Accepts(Tree(a, {Tree(b)})));
  EXPECT_FALSE(schema->Accepts(Tree(a, {Tree(b), Tree(b)})));
}

TEST(XsdImportTest, NonSingleTypeSchemasImportAsEdtds) {
  // Two global elements with the same name would clash, but two types for
  // the same element name in *different* contexts are fine and produce a
  // genuine EDTD.
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r" type="RootType"/>
  <xs:complexType name="RootType">
    <xs:choice>
      <xs:element name="x" type="XDeep"/>
      <xs:element name="x" type="XFlat"/>
    </xs:choice>
  </xs:complexType>
  <xs:complexType name="XDeep">
    <xs:sequence>
      <xs:element name="x" type="XFlat"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="XFlat">
    <xs:sequence/>
  </xs:complexType>
</xs:schema>
)";
  StatusOr<Edtd> schema = ImportXsd(source);
  ASSERT_TRUE(schema.ok()) << schema.status();
  // EDC violated: two x-types in one content model.
  EXPECT_FALSE(IsSingleType(ReduceEdtd(*schema)));
  int r = schema->sigma.Find("r"), x = schema->sigma.Find("x");
  EXPECT_TRUE(schema->Accepts(Tree(r, {Tree(x)})));
  EXPECT_TRUE(schema->Accepts(Tree(r, {Tree(x, {Tree(x)})})));
  EXPECT_FALSE(schema->Accepts(Tree(r, {Tree(x, {Tree(x, {Tree(x)})})})));
}

TEST(XsdImportTest, RejectsUnsupportedConstructs) {
  EXPECT_FALSE(ImportXsd("<foo/>").ok());
  EXPECT_FALSE(ImportXsd(R"(
<xs:schema>
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:any/>
  </xs:complexType>
</xs:schema>)").ok());
  EXPECT_FALSE(ImportXsd(R"(
<xs:schema>
  <xs:element name="a" type="Missing"/>
</xs:schema>)").ok());
  EXPECT_FALSE(ImportXsd(R"(
<xs:schema>
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:all>
      <xs:element name="b" type="T"/>
    </xs:all>
  </xs:complexType>
</xs:schema>)").ok());
}

// Numeric minOccurs/maxOccurs import with counted semantics: the particle
// `item{2,4}` admits exactly 2..4 repetitions.
TEST(XsdImportTest, CountedOccursBounds) {
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="cart" type="CartType"/>
  <xs:complexType name="CartType">
    <xs:sequence>
      <xs:element name="item" type="Empty" minOccurs="2" maxOccurs="4"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="Empty">
    <xs:sequence/>
  </xs:complexType>
</xs:schema>
)";
  StatusOr<Edtd> schema = ImportXsd(source);
  ASSERT_TRUE(schema.ok()) << schema.status();
  int cart = schema->sigma.Find("cart"), item = schema->sigma.Find("item");
  for (int k = 0; k <= 6; ++k) {
    std::vector<Tree> items(k, Tree(item));
    EXPECT_EQ(schema->Accepts(Tree(cart, items)), k >= 2 && k <= 4)
        << "k=" << k;
  }
}

// minOccurs with unbounded maxOccurs: `item{3,}`.
TEST(XsdImportTest, CountedMinWithUnboundedMax) {
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="cart" type="CartType"/>
  <xs:complexType name="CartType">
    <xs:sequence>
      <xs:element name="item" type="Empty" minOccurs="3"
                  maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="Empty">
    <xs:sequence/>
  </xs:complexType>
</xs:schema>
)";
  StatusOr<Edtd> schema = ImportXsd(source);
  ASSERT_TRUE(schema.ok()) << schema.status();
  int cart = schema->sigma.Find("cart"), item = schema->sigma.Find("item");
  for (int k = 0; k <= 8; ++k) {
    std::vector<Tree> items(k, Tree(item));
    EXPECT_EQ(schema->Accepts(Tree(cart, items)), k >= 3) << "k=" << k;
  }
}

TEST(XsdImportTest, RejectsInvertedOccursBounds) {
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:sequence>
      <xs:element name="b" type="T" minOccurs="5" maxOccurs="2"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>
)";
  StatusOr<Edtd> schema = ImportXsd(source);
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().ToString().find("exceeds"), std::string::npos)
      << schema.status();
  // Out-of-range and non-numeric bounds are rejected, not truncated.
  EXPECT_FALSE(ImportXsd(R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:sequence>
      <xs:element name="b" type="T" maxOccurs="9999999999"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>)").ok());
  EXPECT_FALSE(ImportXsd(R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:sequence>
      <xs:element name="b" type="T" maxOccurs="two"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>)").ok());
}

// Counted bounds survive compile → minimize → export: the emitted XSD
// carries numeric minOccurs/maxOccurs (via content_source provenance,
// not an expanded particle), and re-importing it preserves the language.
TEST(XsdExportTest, CountedBoundsRoundTripThroughExport) {
  SchemaBuilder builder;
  builder.AddType("R", "r", "A{2,5}");
  builder.AddType("A", "a", "%");
  builder.AddStart("R");
  Edtd schema = ReduceEdtd(builder.Build());
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(schema));
  std::string exported = ExportXsd(xsd);
  EXPECT_NE(exported.find("minOccurs=\"2\""), std::string::npos) << exported;
  EXPECT_NE(exported.find("maxOccurs=\"5\""), std::string::npos) << exported;
  StatusOr<Edtd> imported = ImportXsd(exported);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_TRUE(SingleTypeEquivalent(schema, *imported));
  // Second generation: the re-imported schema exports with bounds intact.
  std::string again =
      ExportXsd(MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(*imported))));
  EXPECT_NE(again.find("minOccurs=\"2\""), std::string::npos) << again;
  EXPECT_NE(again.find("maxOccurs=\"5\""), std::string::npos) << again;
}

// Satellite: namespace-prefix resolution. The XSD namespace may be bound
// to any prefix (xs:, xsd:, other) or be the default namespace; what
// matters is the binding, not the spelling.
TEST(XsdImportTest, NamespacePrefixVariants) {
  const char* xsd_prefixed = R"(
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="a" type="T"/>
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="b" type="E" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="E"><xsd:sequence/></xsd:complexType>
</xsd:schema>
)";
  const char* unprefixed = R"(
<schema xmlns="http://www.w3.org/2001/XMLSchema">
  <element name="a" type="T"/>
  <complexType name="T">
    <sequence>
      <element name="b" type="E" minOccurs="0"/>
    </sequence>
  </complexType>
  <complexType name="E"><sequence/></complexType>
</schema>
)";
  StatusOr<Edtd> from_xsd = ImportXsd(xsd_prefixed);
  ASSERT_TRUE(from_xsd.ok()) << from_xsd.status();
  StatusOr<Edtd> from_default = ImportXsd(unprefixed);
  ASSERT_TRUE(from_default.ok()) << from_default.status();
  for (const Edtd* schema : {&*from_xsd, &*from_default}) {
    int a = schema->sigma.Find("a"), b = schema->sigma.Find("b");
    EXPECT_TRUE(schema->Accepts(Tree(a)));
    EXPECT_TRUE(schema->Accepts(Tree(a, {Tree(b)})));
    EXPECT_FALSE(schema->Accepts(Tree(a, {Tree(b), Tree(b)})));
  }
}

// A prefix explicitly bound to a non-XSD namespace is not an XSD schema,
// even if it is spelled "xs".
TEST(XsdImportTest, RejectsForeignRootNamespace) {
  StatusOr<Edtd> schema = ImportXsd(R"(
<xs:schema xmlns:xs="http://example.com/not-xsd">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T"><xs:sequence/></xs:complexType>
</xs:schema>
)");
  EXPECT_FALSE(schema.ok());
}

// Satellite: duplicate top-level complexType names are an error, not a
// silent last-wins overwrite.
TEST(XsdImportTest, RejectsDuplicateComplexType) {
  StatusOr<Edtd> schema = ImportXsd(R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T"><xs:sequence/></xs:complexType>
  <xs:complexType name="T">
    <xs:sequence><xs:element name="b" type="T"/></xs:sequence>
  </xs:complexType>
</xs:schema>
)");
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().ToString().find("duplicate"), std::string::npos)
      << schema.status();
}

// Satellite: maxOccurs="0" drops the particle (the W3C-sanctioned idiom
// for "absent"), but an explicit minOccurs > 0 contradicting it is an
// error.
TEST(XsdImportTest, MaxOccursZeroDropsParticle) {
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:sequence>
      <xs:element name="b" type="E" maxOccurs="0"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="E"><xs:sequence/></xs:complexType>
</xs:schema>
)";
  StatusOr<Edtd> schema = ImportXsd(source);
  ASSERT_TRUE(schema.ok()) << schema.status();
  int a = schema->sigma.Find("a"), b = schema->sigma.Find("b");
  EXPECT_TRUE(schema->Accepts(Tree(a)));
  if (b != kNoSymbol) {
    EXPECT_FALSE(schema->Accepts(Tree(a, {Tree(b)})));
  }
  EXPECT_FALSE(ImportXsd(R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:sequence>
      <xs:element name="b" type="E" minOccurs="1" maxOccurs="0"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="E"><xs:sequence/></xs:complexType>
</xs:schema>)").ok());
}

// Satellite: ExportXsd must key off automaton.initial(), not assume state
// 0 is the initial state.
TEST(XsdExportTest, HandlesNonZeroInitialState) {
  DfaXsd xsd;
  int a = xsd.sigma.Intern("a");
  xsd.start_symbols = {a};
  xsd.automaton = Dfa(2, 1);
  xsd.automaton.SetInitial(1);
  xsd.automaton.SetTransition(1, a, 0);
  xsd.state_label = {a, kNoSymbol};
  xsd.content.resize(2);
  xsd.content[0] = Dfa::EpsilonOnly(1);
  xsd.CheckWellFormed();

  std::string exported = ExportXsd(xsd);
  StatusOr<Edtd> imported = ImportXsd(exported);
  ASSERT_TRUE(imported.ok()) << imported.status() << "\n" << exported;
  int ia = imported->sigma.Find("a");
  ASSERT_NE(ia, kNoSymbol) << exported;
  EXPECT_TRUE(imported->Accepts(Tree(ia)));
  EXPECT_FALSE(imported->Accepts(Tree(ia, {Tree(ia)})));
}

// Hostile counted bounds are caught by the state budget at expansion
// time instead of exhausting memory.
TEST(XsdImportTest, HostileCountsExhaustBudget) {
  const char* source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:sequence>
      <xs:element name="b" type="E" minOccurs="1" maxOccurs="1000000"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="E"><xs:sequence/></xs:complexType>
</xs:schema>
)";
  Budget budget;
  budget.set_max_states(10000);
  StatusOr<Edtd> schema = ImportXsd(source, &budget);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kResourceExhausted)
      << schema.status();
}

TEST(XsdExportTest, UpaRepairApproximatesNonDeterministicContent) {
  // Content language (a|b)*a(a|b) is the classical non-one-unambiguous
  // language: without repair the export flags it; with repair it is
  // replaced by a deterministic upper approximation.
  SchemaBuilder builder;
  builder.AddType("R", "r", "(A | B)* A (A | B)");
  builder.AddType("A", "a", "%");
  builder.AddType("B", "b", "%");
  builder.AddStart("R");
  Edtd schema = ReduceEdtd(builder.Build());
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(schema));

  std::string flagged = ExportXsd(xsd);
  EXPECT_NE(flagged.find("stap-upa=\"unsatisfiable\""), std::string::npos);

  XsdExportOptions repair;
  repair.repair_upa = true;
  std::string repaired = ExportXsd(xsd, repair);
  EXPECT_NE(repaired.find("stap-upa=\"approximated\""), std::string::npos);
  StatusOr<Edtd> imported = ImportXsd(repaired);
  ASSERT_TRUE(imported.ok()) << imported.status();
  // The repaired schema is a superset of the original...
  EXPECT_TRUE(IncludedInSingleType(schema, *imported)) << repaired;
  // ...and strictly larger (the content language was not a chain).
  EXPECT_FALSE(IncludedInSingleType(*imported, schema));
}

TEST(XsdImportTest, ImportedSchemasRoundTripThroughTextFormat) {
  // Imported type names carry '$'; the textual format must accept them.
  Edtd schema = ReduceEdtd(LibrarySchema());
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(schema));
  StatusOr<Edtd> imported = ImportXsd(ExportXsd(xsd));
  ASSERT_TRUE(imported.ok());
  std::string text = SchemaToText(ReduceEdtd(*imported));
  StatusOr<Edtd> reparsed = ParseSchema(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_TRUE(SingleTypeEquivalent(*imported, *reparsed));
}

TEST(XmlDomTest, AttributesParseAndSerialize) {
  StatusOr<XmlElement> element = ParseXmlDocument(
      "<a x=\"1\" y='two'><b z=\"3\"/></a>");
  ASSERT_TRUE(element.ok()) << element.status();
  ASSERT_EQ(element->attributes.size(), 2u);
  EXPECT_EQ(*element->FindAttribute("x"), "1");
  EXPECT_EQ(*element->FindAttribute("y"), "two");
  EXPECT_EQ(element->FindAttribute("missing"), nullptr);
  EXPECT_EQ(*element->children[0].FindAttribute("z"), "3");
  StatusOr<XmlElement> reparsed =
      ParseXmlDocument(XmlElementToString(*element));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->attributes.size(), 2u);
}

// Random round trips: export the minimized schema, import it, compare
// languages.
class XsdRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(XsdRoundTripTest, ExportImportPreservesLanguage) {
  std::mt19937 rng(GetParam() * 40927 + 19);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = 5;
  Edtd schema = RandomStEdtd(&rng, params);
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(schema));
  StatusOr<Edtd> imported = ImportXsd(ExportXsd(xsd));
  ASSERT_TRUE(imported.ok()) << imported.status() << "\n" << ExportXsd(xsd);
  EXPECT_TRUE(SingleTypeEquivalent(schema, *imported)) << ExportXsd(xsd);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XsdRoundTripTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace stap
