// Tests for type assignments (schema/typing.h).
#include <gtest/gtest.h>

#include <random>

#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/typing.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

Edtd ContextSchema() {
  SchemaBuilder builder;
  builder.AddType("Root", "a", "Left Right");
  builder.AddType("Left", "l", "X1?");
  builder.AddType("Right", "r", "X2?");
  builder.AddType("X1", "x", "%");
  builder.AddType("X2", "x", "%");
  builder.AddStart("Root");
  return ReduceEdtd(builder.Build());
}

TEST(TypingTest, SingleTypeAssignmentIsDeterminedByContext) {
  Edtd schema = ContextSchema();
  DfaXsd xsd = DfaXsdFromStEdtd(schema);
  Alphabet& s = xsd.sigma;
  int a = s.Find("a"), l = s.Find("l"), r = s.Find("r"), x = s.Find("x");
  Tree doc(a, {Tree(l, {Tree(x)}), Tree(r, {Tree(x)})});
  std::optional<Typing> typing = AssignTypes(xsd, doc);
  ASSERT_TRUE(typing.has_value());
  ASSERT_EQ(typing->paths.size(), 5u);
  // The two x-nodes receive different types, keyed by their ancestors.
  Edtd view = StEdtdFromDfaXsd(xsd);
  int type_left_x = -1, type_right_x = -1;
  for (size_t i = 0; i < typing->paths.size(); ++i) {
    if (typing->paths[i] == TreePath{0, 0}) type_left_x = typing->types[i];
    if (typing->paths[i] == TreePath{1, 0}) type_right_x = typing->types[i];
  }
  ASSERT_GE(type_left_x, 0);
  ASSERT_GE(type_right_x, 0);
  EXPECT_NE(type_left_x, type_right_x);
  EXPECT_EQ(view.mu[type_left_x], x);
  EXPECT_EQ(view.mu[type_right_x], x);
  // Invalid documents yield no typing.
  EXPECT_FALSE(AssignTypes(xsd, Tree(a)).has_value());
  EXPECT_FALSE(AssignTypes(xsd, Tree(x)).has_value());
}

TEST(TypingTest, EdtdTypingExistsIffAccepted) {
  Edtd schema = ContextSchema();
  for (const Tree& tree : EnumerateTrees({3, 2, schema.sigma.size()})) {
    std::optional<Typing> typing = AssignTypesEdtd(schema, tree);
    EXPECT_EQ(typing.has_value(), schema.Accepts(tree))
        << tree.ToString(schema.sigma);
    if (typing.has_value()) {
      EXPECT_EQ(typing->paths.size(),
                static_cast<size_t>(tree.NumNodes()));
    }
  }
}

TEST(TypingTest, ExtractedTypingsAreConsistent) {
  // Verify the extracted typing satisfies the schema: each node's
  // children types form a word in its content language.
  Edtd schema = ContextSchema();
  Alphabet& s = schema.sigma;
  Tree doc(s.Find("a"), {Tree(s.Find("l"), {Tree(s.Find("x"))}),
                         Tree(s.Find("r"))});
  std::optional<Typing> typing = AssignTypesEdtd(schema, doc);
  ASSERT_TRUE(typing.has_value());
  // Index types by path for lookup.
  auto type_at = [&](const TreePath& path) {
    for (size_t i = 0; i < typing->paths.size(); ++i) {
      if (typing->paths[i] == path) return typing->types[i];
    }
    return -1;
  };
  for (const TreePath& path : doc.AllPaths()) {
    int tau = type_at(path);
    ASSERT_GE(tau, 0);
    EXPECT_EQ(schema.mu[tau], doc.At(path).label);
    Word child_types;
    const Tree& node = doc.At(path);
    for (size_t i = 0; i < node.children.size(); ++i) {
      TreePath child = path;
      child.push_back(static_cast<int>(i));
      child_types.push_back(type_at(child));
    }
    EXPECT_TRUE(schema.content[tau].Accepts(child_types));
  }
}

TEST(TypingTest, AmbiguityCounting) {
  // Two interchangeable types for the same leaf: 2 typings per leaf.
  SchemaBuilder builder;
  builder.AddType("R", "r", "(A1 | A2) (A1 | A2)");
  builder.AddType("A1", "a", "%");
  builder.AddType("A2", "a", "%");
  builder.AddStart("R");
  Edtd schema = builder.Build();
  int r = schema.sigma.Find("r"), a = schema.sigma.Find("a");
  Tree doc(r, {Tree(a), Tree(a)});
  EXPECT_EQ(CountTypings(schema, doc), 4);
  EXPECT_EQ(CountTypings(schema, Tree(r)), 0);
  EXPECT_EQ(CountTypings(schema, Tree(a)), 0);
}

TEST(TypingTest, SingleTypeSchemasAreUnambiguous) {
  Edtd schema = ContextSchema();
  ASSERT_TRUE(IsSingleType(schema));
  for (const Tree& tree : EnumerateTrees({3, 2, schema.sigma.size()})) {
    int64_t count = CountTypings(schema, tree);
    EXPECT_EQ(count, schema.Accepts(tree) ? 1 : 0)
        << tree.ToString(schema.sigma);
  }
}

// Property: for random single-type schemas, XSD typing and EDTD typing
// agree on existence, and single-type counting is 0/1.
class TypingRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TypingRandomTest, XsdAndEdtdTypingsAgree) {
  std::mt19937 rng(GetParam() * 1723 + 9);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  Edtd schema = RandomStEdtd(&rng, params);
  DfaXsd xsd = DfaXsdFromStEdtd(schema);
  for (const Tree& tree : EnumerateTrees({3, 2, 2})) {
    bool accepted = schema.Accepts(tree);
    EXPECT_EQ(AssignTypes(xsd, tree).has_value(), accepted);
    EXPECT_EQ(AssignTypesEdtd(schema, tree).has_value(), accepted);
    EXPECT_EQ(CountTypings(schema, tree), accepted ? 1 : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypingRandomTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace stap
