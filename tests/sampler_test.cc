// Exact-weight uniform sampling tests (gen/random.h SampleTreeUniform).
//
// Three claims, each checked against brute force:
//  * the size tables are exact — totals[s] equals the number of accepted
//    trees with exactly s nodes, counted by enumerating every tree of
//    that size and calling Accepts;
//  * every sampled tree validates and has exactly the requested size
//    (differential check over random single-type schemas);
//  * the draw is uniform — a chi-squared test over all size-k members of
//    a fixed schema, seeded and deterministic.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "stap/count/counter.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/validate.h"
#include "stap/tree/tree.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

std::vector<std::vector<Tree>> ForestsOfTotal(int total, int num_symbols);

// Every tree with exactly `size` nodes over labels 0..num_symbols-1.
std::vector<Tree> TreesOfSize(int size, int num_symbols) {
  std::vector<Tree> result;
  if (size <= 0) return result;
  for (const std::vector<Tree>& forest :
       ForestsOfTotal(size - 1, num_symbols)) {
    for (int label = 0; label < num_symbols; ++label) {
      result.push_back(Tree(label, forest));
    }
  }
  return result;
}

// Every ordered forest with `total` nodes across its trees.
std::vector<std::vector<Tree>> ForestsOfTotal(int total, int num_symbols) {
  std::vector<std::vector<Tree>> result;
  if (total == 0) {
    result.emplace_back();
    return result;
  }
  for (int head = 1; head <= total; ++head) {
    for (const Tree& tree : TreesOfSize(head, num_symbols)) {
      for (const std::vector<Tree>& rest :
           ForestsOfTotal(total - head, num_symbols)) {
        std::vector<Tree> forest;
        forest.reserve(rest.size() + 1);
        forest.push_back(tree);
        forest.insert(forest.end(), rest.begin(), rest.end());
        result.push_back(std::move(forest));
      }
    }
  }
  return result;
}

// One type per label, so single-type by construction: a's children are
// any word over {b, c}, c optionally wraps one b, b is a leaf. Twelve
// accepted trees have exactly four nodes.
DfaXsd FixedXsd() {
  SchemaBuilder builder;
  builder.AddType("Root", "a", "(B | C)*");
  builder.AddType("B", "b", "%");
  builder.AddType("C", "c", "B?");
  builder.AddStart("Root");
  return DfaXsdFromStEdtd(ReduceEdtd(builder.Build()));
}

uint64_t OracleSizeCount(const DfaXsd& xsd, int size) {
  uint64_t count = 0;
  for (const Tree& tree : TreesOfSize(size, xsd.sigma.size())) {
    if (xsd.Accepts(tree)) ++count;
  }
  return count;
}

TEST(SamplerTest, SizeTableTotalsMatchExactSizeEnumeration) {
  const DfaXsd fixed = FixedXsd();
  StatusOr<XsdSizeTables> tables = BuildXsdSizeTables(fixed, 6, nullptr);
  ASSERT_TRUE(tables.ok());
  for (int s = 1; s <= 6; ++s) {
    EXPECT_EQ(tables->totals[s].ToString(),
              std::to_string(OracleSizeCount(fixed, s)))
        << "fixed schema, size " << s;
  }
  EXPECT_EQ(tables->totals[4].ToString(), "12");

  for (int i = 0; i < 40; ++i) {
    std::mt19937 rng(MixSeed(0x5A3B1E + i));
    RandomSchemaParams params;
    params.num_symbols = 2;
    params.num_types = 3;
    params.repeat_percent = (i % 2 == 0) ? 40 : 0;
    const DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
    StatusOr<XsdSizeTables> random_tables =
        BuildXsdSizeTables(xsd, 6, nullptr);
    ASSERT_TRUE(random_tables.ok()) << "schema " << i;
    for (int s = 1; s <= 6; ++s) {
      ASSERT_EQ(random_tables->totals[s].ToString(),
                std::to_string(OracleSizeCount(xsd, s)))
          << "schema " << i << ", size " << s << "\n"
          << StEdtdFromDfaXsd(xsd).ToString();
    }
  }
}

TEST(SamplerTest, EverySampledTreeValidatesAtTheRequestedSize) {
  for (int i = 0; i < 25; ++i) {
    std::mt19937 rng(MixSeed(0xFACADE + i));
    RandomSchemaParams params;
    params.num_symbols = 3;
    params.num_types = 4;
    params.repeat_percent = (i % 3 == 0) ? 40 : 0;
    const DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
    StatusOr<XsdSizeTables> tables = BuildXsdSizeTables(xsd, 8, nullptr);
    ASSERT_TRUE(tables.ok()) << "schema " << i;
    for (int size = 1; size <= 8; ++size) {
      const bool language_has_size = !tables->totals[size].IsZero();
      for (int draw = 0; draw < 8; ++draw) {
        std::optional<Tree> tree =
            SampleTreeUniform(xsd, *tables, size, &rng);
        ASSERT_EQ(tree.has_value(), language_has_size)
            << "schema " << i << " size " << size;
        if (!tree.has_value()) break;
        EXPECT_EQ(tree->NumNodes(), size) << "schema " << i;
        EXPECT_TRUE(xsd.Accepts(*tree))
            << "schema " << i << ": sampled invalid tree "
            << tree->ToString(xsd.sigma);
        EXPECT_TRUE(ValidateWithDiagnostics(xsd, *tree).ok)
            << "schema " << i;
      }
    }
  }
}

TEST(SamplerTest, ChiSquaredUniformityOverAllSizeFourTrees) {
  const DfaXsd xsd = FixedXsd();
  constexpr int kSize = 4;
  StatusOr<XsdSizeTables> tables = BuildXsdSizeTables(xsd, kSize, nullptr);
  ASSERT_TRUE(tables.ok());

  // Outcome space: the 12 accepted trees with four nodes.
  std::map<Tree, int> index;
  for (const Tree& tree : TreesOfSize(kSize, xsd.sigma.size())) {
    if (xsd.Accepts(tree)) {
      const int next = static_cast<int>(index.size());
      index.emplace(tree, next);
    }
  }
  ASSERT_EQ(index.size(), 12u);
  ASSERT_EQ(tables->totals[kSize].ToString(), "12");

  constexpr int kDraws = 4096;
  std::vector<int> observed(index.size(), 0);
  std::mt19937 rng(MixSeed(0xC215A));
  for (int draw = 0; draw < kDraws; ++draw) {
    std::optional<Tree> tree = SampleTreeUniform(xsd, *tables, kSize, &rng);
    ASSERT_TRUE(tree.has_value());
    auto it = index.find(*tree);
    ASSERT_NE(it, index.end())
        << "sampled a tree outside the enumerated outcome space: "
        << tree->ToString(xsd.sigma);
    ++observed[it->second];
  }

  const double expected =
      static_cast<double>(kDraws) / static_cast<double>(index.size());
  double chi_squared = 0.0;
  for (int count : observed) {
    const double delta = count - expected;
    chi_squared += delta * delta / expected;
    EXPECT_GT(count, 0) << "an outcome was never sampled in " << kDraws
                        << " draws";
  }
  // 11 degrees of freedom; the 99.99th percentile is ~37.4. A correct
  // uniform sampler fails this deterministic seeded check with
  // probability ~1e-4 only if the seed stream changes.
  EXPECT_LT(chi_squared, 40.0);
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
