// Tests for monoid forest automata (Section 4.4.1).
#include <gtest/gtest.h>

#include <random>

#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/tree/enumerate.h"
#include "stap/treeauto/forest_monoid.h"

namespace stap {
namespace {

TEST(FiniteMonoidTest, AxiomsCheckedOnHandBuiltExamples) {
  // (Z3, +): identity 0.
  std::vector<int> z3(9);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) z3[a * 3 + b] = (a + b) % 3;
  }
  EXPECT_TRUE(FiniteMonoid(3, 0, z3).CheckAxioms());

  // Broken associativity.
  std::vector<int> broken = z3;
  broken[1 * 3 + 2] = 1;  // 1+2 := 1
  EXPECT_FALSE(FiniteMonoid(3, 0, broken).CheckAxioms());
}

DfaXsd LibraryXsd() {
  SchemaBuilder builder;
  builder.AddType("Lib", "library", "Book*");
  builder.AddType("Book", "book", "Title Chapter?");
  builder.AddType("Title", "title", "%");
  builder.AddType("Chapter", "chapter", "%");
  builder.AddStart("Lib");
  return DfaXsdFromStEdtd(ReduceEdtd(builder.Build()));
}

TEST(MfaTest, MonoidFromXsdSatisfiesTheAxioms) {
  MonoidForestAutomaton mfa = MfaFromXsd(LibraryXsd());
  EXPECT_GE(mfa.monoid().size(), 2);
  EXPECT_TRUE(mfa.monoid().CheckAxioms());
}

TEST(MfaTest, TreeAcceptanceMatchesTheXsd) {
  DfaXsd xsd = LibraryXsd();
  MonoidForestAutomaton mfa = MfaFromXsd(xsd);
  for (const Tree& tree : EnumerateTrees({3, 2, xsd.sigma.size()})) {
    EXPECT_EQ(mfa.AcceptsTree(tree), xsd.Accepts(tree))
        << tree.ToString(xsd.sigma);
  }
}

TEST(MfaTest, ForestEvaluationIsCompositional) {
  DfaXsd xsd = LibraryXsd();
  MonoidForestAutomaton mfa = MfaFromXsd(xsd);
  int lib = xsd.sigma.Find("library"), book = xsd.sigma.Find("book"),
      title = xsd.sigma.Find("title");
  Tree valid_book(book, {Tree(title)});
  Forest two_books = {valid_book, valid_book};
  // A(f1 f2) = A(f1) + A(f2).
  EXPECT_EQ(mfa.EvalForest(two_books),
            mfa.monoid().Compose(mfa.EvalTree(valid_book),
                                 mfa.EvalTree(valid_book)));
  // Multi-tree forests are not documents.
  EXPECT_FALSE(mfa.Accepts(two_books));
  EXPECT_FALSE(mfa.Accepts(Forest{}));
  EXPECT_TRUE(mfa.Accepts(Forest{Tree(lib, {valid_book})}));
}

// Property: the MFA agrees with the XSD on random schemas and documents.
class MfaRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MfaRandomTest, AgreesWithXsd) {
  std::mt19937 rng(GetParam() * 3571 + 13);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  params.content_breadth = 1;
  DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
  MonoidForestAutomaton mfa = MfaFromXsd(xsd);
  EXPECT_TRUE(mfa.monoid().CheckAxioms());
  for (const Tree& tree : EnumerateTrees({3, 2, 2})) {
    EXPECT_EQ(mfa.AcceptsTree(tree), xsd.Accepts(tree))
        << tree.ToString(xsd.sigma);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MfaRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace stap
