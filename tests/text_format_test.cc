// Unit tests for the textual schema format and the schema builder.
#include <gtest/gtest.h>

#include "stap/approx/inclusion.h"
#include "stap/schema/builder.h"
#include "stap/schema/text_format.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

constexpr const char* kLibrary = R"(
# A small library schema.
start Lib
type Lib     : library -> Book*
type Book    : book    -> Title Chapter+
type Title   : title   -> %
type Chapter : chapter -> %
)";

TEST(TextFormatTest, ParsesDeclarations) {
  StatusOr<Edtd> schema = ParseSchema(kLibrary);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_types(), 4);
  EXPECT_EQ(schema->start_types.size(), 1u);
  EXPECT_EQ(schema->types.Name(schema->start_types[0]), "Lib");
  EXPECT_EQ(schema->sigma.Find("library"), schema->mu[0]);

  int lib = schema->sigma.Find("library"), book = schema->sigma.Find("book"),
      title = schema->sigma.Find("title"),
      chapter = schema->sigma.Find("chapter");
  Tree ok(lib, {Tree(book, {Tree(title), Tree(chapter)})});
  EXPECT_TRUE(schema->Accepts(ok));
  Tree bad(lib, {Tree(book, {Tree(title)})});
  EXPECT_FALSE(schema->Accepts(bad));
}

TEST(TextFormatTest, ForwardReferencesAllowed) {
  StatusOr<Edtd> schema = ParseSchema(
      "start A\n"
      "type A : a -> B\n"
      "type B : b -> %\n");
  ASSERT_TRUE(schema.ok()) << schema.status();
}

TEST(TextFormatTest, ReportsErrors) {
  EXPECT_FALSE(ParseSchema("type A a -> %\n").ok());   // missing ':'
  EXPECT_FALSE(ParseSchema("type A : a %\n").ok());    // missing '->'
  EXPECT_FALSE(ParseSchema("start Missing\n").ok());   // unknown start
  EXPECT_FALSE(ParseSchema("bogus directive\n").ok());
  EXPECT_FALSE(ParseSchema("type A : a -> Unknown\n").ok());
  EXPECT_FALSE(
      ParseSchema("type A : a -> %\ntype A : b -> %\n").ok());  // dup
}

TEST(TextFormatTest, RoundTripPreservesLanguage) {
  StatusOr<Edtd> schema = ParseSchema(kLibrary);
  ASSERT_TRUE(schema.ok());
  std::string text = SchemaToText(*schema);
  StatusOr<Edtd> reparsed = ParseSchema(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  ASSERT_TRUE(IsSingleType(*schema));
  EXPECT_TRUE(SingleTypeEquivalent(*schema, *reparsed)) << text;
}

TEST(SchemaBuilderTest, MatchesTextFormatSemantics) {
  SchemaBuilder builder;
  builder.AddType("Lib", "library", "Book*");
  builder.AddType("Book", "book", "Title Chapter+");
  builder.AddType("Title", "title", "%");
  builder.AddType("Chapter", "chapter", "%");
  builder.AddStart("Lib");
  Edtd built = builder.Build();
  StatusOr<Edtd> parsed = ParseSchema(kLibrary);
  ASSERT_TRUE(parsed.ok());
  for (const Tree& tree : EnumerateTrees({3, 2, 4})) {
    EXPECT_EQ(built.Accepts(tree), parsed->Accepts(tree));
  }
}

}  // namespace
}  // namespace stap
