// Integration tests for the `stap serve` daemon: real sockets, real
// threads. Covers the binary protocol end to end (validate / included /
// approx / ping / reload), concurrent clients, snapshot hot-swap under
// live traffic, hostile framing (malformed, truncated, oversized),
// overload shedding, per-request budget exhaustion, the HTTP metrics
// surface, and the 32-client cold-schema compile stampede whose
// exactly-once guarantee is asserted through the cache.insert counter.
//
// Also holds the regression tests for the batch-validation budget fix
// (post-parse tree charge) and the batch.valid counter, which share
// ValidateDocument with the serve hot path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stap/base/budget.h"
#include "stap/base/compile_cache.h"
#include "stap/base/metrics.h"
#include "stap/gen/families.h"
#include "stap/io/artifact.h"
#include "stap/schema/text_format.h"
#include "stap/io/batch_validate.h"
#include "stap/serve/client.h"
#include "stap/serve/protocol.h"
#include "stap/serve/server.h"
#include "stap/serve/snapshot.h"

namespace stap {
namespace {

constexpr char kLibSchema[] = R"(
start Lib
type Lib     : library -> Book*
type Book    : book    -> Title Chapter+
type Title   : title   -> %
type Chapter : chapter -> (Section | %)
type Section : section -> %
)";

constexpr char kValidDoc[] =
    "<library><book><title/><chapter/></book></library>";
constexpr char kInvalidDoc[] = "<library><book><title/></book></library>";

// Starts a server with `options` and registers the Lib schema as "@lib".
std::unique_ptr<Server> StartWithLib(ServeOptions options) {
  auto server = std::make_unique<Server>(std::move(options));
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started;
  StatusOr<CompiledSchema> lib = CompileSchema(kLibSchema, nullptr);
  EXPECT_TRUE(lib.ok()) << lib.status();
  SchemaMap schemas;
  schemas["lib"] = std::make_shared<const CompiledSchema>(std::move(*lib));
  server->registry()->Swap(std::move(schemas));
  return server;
}

ServeRequest ValidateRequest(uint64_t id, std::string schema_ref,
                             std::string payload) {
  ServeRequest request;
  request.id = id;
  request.op = Opcode::kValidate;
  request.schema_ref = std::move(schema_ref);
  request.payload = std::move(payload);
  return request;
}

std::string U32Le(uint32_t value) {
  std::string out(4, '\0');
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
  return out;
}

// A raw HTTP/1.0 GET, bypassing ServeClient (which speaks the binary
// preamble).
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(WriteAll(fd, request).ok());
  std::string response;
  char chunk[1024];
  ssize_t r;
  while ((r = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(r));
  }
  ::close(fd);
  return response;
}

TEST(Serve, PingEchoesPayload) {
  std::unique_ptr<Server> server = StartWithLib({});
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  ServeRequest ping;
  ping.id = 7;
  ping.op = Opcode::kPing;
  ping.payload = "hello";
  StatusOr<ServeResponse> response = client.Call(ping);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->id, 7u);
  EXPECT_EQ(response->code, ResponseCode::kOk);
  EXPECT_EQ(response->body, "hello");
}

TEST(Serve, ValidateAgainstRegisteredSchema) {
  std::unique_ptr<Server> server = StartWithLib({});
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  StatusOr<ServeResponse> valid =
      client.Call(ValidateRequest(1, "@lib", kValidDoc));
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(valid->code, ResponseCode::kOk);

  StatusOr<ServeResponse> invalid =
      client.Call(ValidateRequest(2, "@lib", kInvalidDoc));
  ASSERT_TRUE(invalid.ok());
  EXPECT_EQ(invalid->code, ResponseCode::kInvalid);
  EXPECT_FALSE(invalid->body.empty());

  StatusOr<ServeResponse> missing =
      client.Call(ValidateRequest(3, "@nope", kValidDoc));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, ResponseCode::kNotFound);
}

TEST(Serve, InlineSchemaTextCompilesAndMemoizes) {
  std::unique_ptr<Server> server = StartWithLib({});
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  StatusOr<ServeResponse> first =
      client.Call(ValidateRequest(1, kLibSchema, kValidDoc));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, ResponseCode::kOk);
  EXPECT_EQ(server->registry()->num_inline(), 1);

  // Warm: the same text resolves from the inline memo.
  StatusOr<ServeResponse> second =
      client.Call(ValidateRequest(2, kLibSchema, kInvalidDoc));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->code, ResponseCode::kInvalid);
  EXPECT_EQ(server->registry()->num_inline(), 1);

  // Garbage schema text reports an error without killing the connection.
  StatusOr<ServeResponse> bad =
      client.Call(ValidateRequest(3, "not a schema", kValidDoc));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->code, ResponseCode::kError);
}

TEST(Serve, InclusionAndApproximationOps) {
  std::unique_ptr<Server> server = StartWithLib({});
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  ServeRequest included;
  included.id = 1;
  included.op = Opcode::kIncluded;
  included.schema_ref = "@lib";
  included.payload = "@lib";  // L ⊆ L
  StatusOr<ServeResponse> inclusion = client.Call(included);
  ASSERT_TRUE(inclusion.ok());
  EXPECT_EQ(inclusion->code, ResponseCode::kOk);
  EXPECT_EQ(inclusion->body, "INCLUDED");

  ServeRequest approx;
  approx.id = 2;
  approx.op = Opcode::kApprox;
  approx.schema_ref = "@lib";
  StatusOr<ServeResponse> approximation = client.Call(approx);
  ASSERT_TRUE(approximation.ok());
  EXPECT_EQ(approximation->code, ResponseCode::kOk);
  EXPECT_NE(approximation->body.find("start "), std::string::npos);
}

TEST(Serve, ConcurrentClients) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 40;
  ServeOptions options;
  options.max_connections = kClients + 2;
  std::unique_ptr<Server> server = StartWithLib(std::move(options));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!client.Connect("127.0.0.1", server->port()).ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const bool want_valid = (c + i) % 2 == 0;
        StatusOr<ServeResponse> response = client.Call(ValidateRequest(
            static_cast<uint64_t>(c * 1000 + i), "@lib",
            want_valid ? kValidDoc : kInvalidDoc));
        const ResponseCode want =
            want_valid ? ResponseCode::kOk : ResponseCode::kInvalid;
        if (!response.ok() || response->code != want) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// Snapshot hot-swap under live traffic: a client validates in a loop
// while the registry swaps epochs; every response must be kOk — an
// in-flight request keeps the epoch it pinned, a new one sees the new
// epoch, and no request ever observes a torn or missing schema.
TEST(Serve, HotSwapMidTraffic) {
  std::unique_ptr<Server> server = StartWithLib({});
  StatusOr<CompiledSchema> lib = CompileSchema(kLibSchema, nullptr);
  ASSERT_TRUE(lib.ok());
  auto shared_lib = std::make_shared<const CompiledSchema>(std::move(*lib));

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> validated{0};
  std::thread traffic([&] {
    ServeClient client;
    if (!client.Connect("127.0.0.1", server->port()).ok()) {
      failures.fetch_add(1);
      return;
    }
    uint64_t id = 1;
    while (!stop.load()) {
      StatusOr<ServeResponse> response =
          client.Call(ValidateRequest(id++, "@lib", kValidDoc));
      if (!response.ok() || response->code != ResponseCode::kOk) {
        failures.fetch_add(1);
        return;
      }
      validated.fetch_add(1);
    }
  });

  const int64_t version0 = server->registry()->Current()->version;
  for (int swap = 0; swap < 100; ++swap) {
    SchemaMap schemas;
    schemas["lib"] = shared_lib;  // every epoch still serves @lib
    server->registry()->Swap(std::move(schemas));
    std::this_thread::yield();
  }
  // Let traffic observe the final epoch before stopping.
  const int target = validated.load() + 5;
  while (validated.load() < target && failures.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  traffic.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(validated.load(), 5);
  EXPECT_EQ(server->registry()->Current()->version, version0 + 100);
}

TEST(Serve, MalformedBodyKeepsConnectionUsable) {
  std::unique_ptr<Server> server = StartWithLib({});
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  // Intact framing, garbage body: the server rejects the request with an
  // ERROR frame (id 0, since no id could be decoded) and keeps reading.
  const std::string garbage = "junk!";
  ASSERT_TRUE(
      client.SendRaw(U32Le(static_cast<uint32_t>(garbage.size())) + garbage)
          .ok());
  StatusOr<ServeResponse> error = client.Receive();
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->code, ResponseCode::kError);
  EXPECT_EQ(error->id, 0u);

  // The stream is still synchronized: a real request succeeds.
  StatusOr<ServeResponse> after =
      client.Call(ValidateRequest(9, "@lib", kValidDoc));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, ResponseCode::kOk);
}

TEST(Serve, OversizedFrameIsRejectedAndConnectionClosed) {
  ServeOptions options;
  options.max_frame_bytes = 1024;
  std::unique_ptr<Server> server = StartWithLib(std::move(options));
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  // A length prefix past the cap: un-resynchronizable, so the server
  // reports and hangs up without ever allocating the claimed body.
  ASSERT_TRUE(client.SendRaw(U32Le(1u << 20)).ok());
  StatusOr<ServeResponse> error = client.Receive();
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->code, ResponseCode::kError);
  EXPECT_FALSE(client.Receive().ok());  // closed after the error frame

  // The server survives and takes new connections.
  ServeClient again;
  ASSERT_TRUE(again.Connect("127.0.0.1", server->port()).ok());
  StatusOr<ServeResponse> ok =
      again.Call(ValidateRequest(1, "@lib", kValidDoc));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->code, ResponseCode::kOk);
}

TEST(Serve, TruncatedFrameDoesNotCrashTheServer) {
  std::unique_ptr<Server> server = StartWithLib({});
  Counter* bad_frames = GetCounter("serve.bad_frame");
  const int64_t bad0 = bad_frames->value();
  {
    ServeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
    // Claim 100 bytes, deliver 5, hang up mid-body.
    ASSERT_TRUE(client.SendRaw(U32Le(100) + "short").ok());
  }
  // The handler observes the truncation and drains; the server stays up.
  ServeClient again;
  ASSERT_TRUE(again.Connect("127.0.0.1", server->port()).ok());
  StatusOr<ServeResponse> ok =
      again.Call(ValidateRequest(1, "@lib", kValidDoc));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->code, ResponseCode::kOk);
  EXPECT_GE(bad_frames->value() - bad0, 1);
}

TEST(Serve, BudgetExhaustionReturnsExhaustedFrame) {
  ServeOptions options;
  options.request_max_states = 8;
  std::unique_ptr<Server> server = StartWithLib(std::move(options));
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  // A document with more nodes than the per-request state quota.
  std::string big = "<library>";
  for (int i = 0; i < 20; ++i) big += "<book><title/><chapter/></book>";
  big += "</library>";
  StatusOr<ServeResponse> exhausted =
      client.Call(ValidateRequest(1, "@lib", big));
  ASSERT_TRUE(exhausted.ok());
  EXPECT_EQ(exhausted->code, ResponseCode::kExhausted);

  // Budgets are per-request: the connection stays healthy and a small
  // document still validates.
  StatusOr<ServeResponse> small =
      client.Call(ValidateRequest(2, "@lib", kValidDoc));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->code, ResponseCode::kOk);
}

TEST(Serve, ConnectionCapShedsWithBusyFrame) {
  ServeOptions options;
  options.max_connections = 1;
  std::unique_ptr<Server> server = StartWithLib(std::move(options));

  ServeClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server->port()).ok());
  ServeRequest ping;
  ping.id = 1;
  ping.op = Opcode::kPing;
  ASSERT_TRUE(first.Call(ping).ok());  // first connection is established

  ServeClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server->port()).ok());
  StatusOr<ServeResponse> busy = second.Receive();
  ASSERT_TRUE(busy.ok()) << busy.status();
  EXPECT_EQ(busy->code, ResponseCode::kBusy);
  second.Close();

  // Releasing the first connection frees the slot (the handler drains
  // asynchronously, so poll briefly).
  first.Close();
  bool reconnected = false;
  for (int attempt = 0; attempt < 200 && !reconnected; ++attempt) {
    ServeClient retry;
    if (retry.Connect("127.0.0.1", server->port()).ok()) {
      ping.id = 2;
      StatusOr<ServeResponse> response = retry.Call(ping);
      if (response.ok() && response->code == ResponseCode::kOk) {
        reconnected = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(reconnected);
}

// The acceptance-criteria stampede: 32 cold clients reference the same
// inline schema at once. Exactly one ParseSchema runs (the inline memo),
// each distinct content model is compiled exactly once (the compile
// cache), and no request fails.
TEST(Serve, ColdSchemaStampedeCompilesExactlyOnce) {
  constexpr int kClients = 32;
  constexpr char kZooSchema[] = R"(
start Zoo
type Zoo    : zoo    -> Pen*
type Pen    : pen    -> Animal+
type Animal : animal -> (Toy | %)
type Toy    : toy    -> %
)";
  constexpr char kZooDoc[] = "<zoo><pen><animal><toy/></animal></pen></zoo>";

  CompileCache cache(4);
  ServeOptions options;
  options.max_connections = kClients + 2;
  options.cache = &cache;
  auto server = std::make_unique<Server>(std::move(options));
  ASSERT_TRUE(server->Start().ok());

  Counter* inserts = GetCounter("cache.insert");
  const int64_t inserts0 = inserts->value();

  std::atomic<int> failures{0};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> herd;
  herd.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    herd.emplace_back([&, c] {
      ServeClient client;
      if (!client.Connect("127.0.0.1", server->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      StatusOr<ServeResponse> response = client.Call(ValidateRequest(
          static_cast<uint64_t>(c), kZooSchema, kZooDoc));
      if (!response.ok() || response->code != ResponseCode::kOk) {
        failures.fetch_add(1);
      }
    });
  }
  while (ready.load() < kClients) std::this_thread::yield();
  go.store(true);
  for (std::thread& thread : herd) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // Zoo has 4 distinct content models: Pen*, Animal+, (Toy | %), %.
  EXPECT_EQ(inserts->value() - inserts0, 4);
  EXPECT_EQ(cache.size(), 4);
  EXPECT_EQ(server->registry()->num_inline(), 1);
}

TEST(Serve, ReloadSwapsInNewSchemaDirectory) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "stap_serve_reload_test";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));
  { std::ofstream(dir / "lib.stap") << kLibSchema; }

  ServeOptions options;
  options.schema_dir = dir.string();
  auto server = std::make_unique<Server>(std::move(options));
  ASSERT_TRUE(server->Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  StatusOr<ServeResponse> before =
      client.Call(ValidateRequest(1, "@lib", kValidDoc));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->code, ResponseCode::kOk);
  StatusOr<ServeResponse> missing =
      client.Call(ValidateRequest(2, "@tiny", "<a/>"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, ResponseCode::kNotFound);

  { std::ofstream(dir / "tiny.stap") << "start A\ntype A : a -> %\n"; }
  ServeRequest reload;
  reload.id = 3;
  reload.op = Opcode::kReload;
  StatusOr<ServeResponse> reloaded = client.Call(reload);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->code, ResponseCode::kOk);
  EXPECT_NE(reloaded->body.find("2 schemas"), std::string::npos);

  StatusOr<ServeResponse> after =
      client.Call(ValidateRequest(4, "@tiny", "<a/>"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, ResponseCode::kOk);

  fs::remove_all(dir);
}

TEST(Serve, HttpHealthzAndMetrics) {
  std::unique_ptr<Server> server = StartWithLib({});
  // Touch the binary path so serve counters exist in the exposition.
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(client.Call(ValidateRequest(1, "@lib", kValidDoc)).ok());

  const std::string health = HttpGet(server->port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string metrics = HttpGet(server->port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("stap_serve_requests"), std::string::npos);
  EXPECT_NE(metrics.find("stap_serve_ok"), std::string::npos);

  const std::string missing = HttpGet(server->port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

// Strips the HTTP header block, returning just the body.
std::string HttpBody(const std::string& response) {
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return "";
  return response.substr(header_end + 4);
}

TEST(Serve, HealthzFirstLineIsExactlyOk) {
  std::unique_ptr<Server> server = StartWithLib({});
  const std::string body = HttpBody(HttpGet(server->port(), "/healthz"));
  // The CI smoke greps `^ok`; the machine-readable detail rides behind it
  // on separate lines.
  ASSERT_NE(body.find('\n'), std::string::npos);
  EXPECT_EQ(body.substr(0, body.find('\n')), "ok");
  EXPECT_NE(body.find("epoch="), std::string::npos);
  EXPECT_NE(body.find("schemas=1"), std::string::npos);
  EXPECT_NE(body.find("uptime_s="), std::string::npos);
}

TEST(Serve, StatuszReportsRequestsAndWindows) {
  std::unique_ptr<Server> server = StartWithLib({});
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(client.Call(ValidateRequest(1, "@lib", kValidDoc)).ok());
  ASSERT_TRUE(client.Call(ValidateRequest(2, "@lib", kInvalidDoc)).ok());
  ASSERT_TRUE(client.Call(ValidateRequest(3, "@nope", kValidDoc)).ok());

  const std::string response = HttpGet(server->port(), "/statusz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("\"service\": \"stap-serve\""), std::string::npos);
  EXPECT_NE(body.find("\"snapshot_epoch\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"schema_count\": 1"), std::string::npos);
  // Request counters and rolling windows are process-global, so earlier
  // tests in this binary contribute: assert lower bounds, not equality.
  auto field = [&body](const char* key) {
    const std::string needle = std::string("\"") + key + "\": ";
    const size_t pos = body.find(needle);
    EXPECT_NE(pos, std::string::npos) << key << " missing from " << body;
    if (pos == std::string::npos) return -1.0;
    return std::strtod(body.c_str() + pos + needle.size(), nullptr);
  };
  EXPECT_GE(field("total_requests"), 3);
  EXPECT_GE(field("window_ok"), 1);
  EXPECT_GE(field("window_invalid"), 1);
  EXPECT_GE(field("window_not_found"), 1);
  EXPECT_GT(field("p99_us"), 0);
  EXPECT_GE(field("uptime_s"), 0);
  EXPECT_GE(field("active_connections"), 1);
}

TEST(Serve, SlowRequestKeepsItsSpanTreeInRequestz) {
  ServeOptions options;
  options.slow_request_ms = 1;
  std::unique_ptr<Server> server = StartWithLib(std::move(options));
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());

  // A fast request stays out of the slow ring...
  ASSERT_TRUE(client.Call(ValidateRequest(1, "@lib", kValidDoc)).ok());
  // ...while the approximation of the Theorem 3.2 family (necessarily
  // exponential, well past 1 ms) lands in it with its span tree.
  ServeRequest slow;
  slow.id = 2;
  slow.op = Opcode::kApprox;
  slow.schema_ref = SchemaToText(Theorem32Family(8));
  StatusOr<ServeResponse> response = client.Call(slow);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->code, ResponseCode::kOk);

  const std::string body = HttpBody(HttpGet(server->port(), "/requestz"));
  const size_t slow_section = body.find("\"slow\":");
  ASSERT_NE(slow_section, std::string::npos) << body;
  EXPECT_NE(body.find("\"op\":\"approx\"", slow_section), std::string::npos)
      << body;
  EXPECT_NE(body.find("serve.request", slow_section), std::string::npos)
      << body;
  // The fast request shows up in the recent ring only.
  EXPECT_EQ(body.find("\"op\":\"validate\"", slow_section),
            std::string::npos);
  EXPECT_NE(body.find("\"op\":\"validate\""), std::string::npos);
}

TEST(Serve, RequestzRecentRingWraps) {
  ServeOptions options;
  options.access_log_ring = 2;
  std::unique_ptr<Server> server = StartWithLib(std::move(options));
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client.Call(ValidateRequest(i, "@lib", kValidDoc)).ok());
  }
  const std::string body = HttpBody(HttpGet(server->port(), "/requestz"));
  // Server-assigned ids are monotonic from 1; only the last two survive.
  EXPECT_EQ(body.find("\"req\":3,"), std::string::npos) << body;
  const size_t pos4 = body.find("\"req\":4,");
  const size_t pos5 = body.find("\"req\":5,");
  ASSERT_NE(pos4, std::string::npos) << body;
  ASSERT_NE(pos5, std::string::npos) << body;
  EXPECT_LT(pos4, pos5);  // oldest first
}

// --- regression tests for the batch-validation budget fix --------------

// A budget that survives the pre-parse deadline check must still stop an
// oversized document: the tree is charged against the state quota after
// parsing, before validation walks it.
TEST(ValidateDocument, ChargesParsedTreeAgainstStateQuota) {
  StatusOr<CompiledSchema> schema = CompileSchema(kLibSchema, nullptr);
  ASSERT_TRUE(schema.ok());

  std::string big = "<library>";
  for (int i = 0; i < 50; ++i) big += "<book><title/><chapter/></book>";
  big += "</library>";

  Budget budget;
  budget.set_max_states(10);
  DocumentVerdict verdict = ValidateDocument(*schema, big, &budget);
  EXPECT_EQ(verdict.kind, DocumentVerdict::Kind::kError);
  EXPECT_EQ(verdict.error_code, StatusCode::kResourceExhausted);

  // The same document sails through without a budget...
  DocumentVerdict unlimited = ValidateDocument(*schema, big, nullptr);
  EXPECT_EQ(unlimited.kind, DocumentVerdict::Kind::kValid);

  // ...and a small document fits inside the quota.
  Budget roomy;
  roomy.set_max_states(10);
  DocumentVerdict small = ValidateDocument(*schema, kValidDoc, &roomy);
  EXPECT_EQ(small.kind, DocumentVerdict::Kind::kValid);
}

TEST(BatchValidate, ExportsTheValidCounter) {
  StatusOr<CompiledSchema> schema = CompileSchema(kLibSchema, nullptr);
  ASSERT_TRUE(schema.ok());
  Counter* valid = GetCounter("batch.valid");
  Counter* invalid = GetCounter("batch.invalid");
  const int64_t valid0 = valid->value();
  const int64_t invalid0 = invalid->value();

  std::vector<BatchDocument> documents(3);
  documents[0] = {"a.xml", kValidDoc, ""};
  documents[1] = {"b.xml", kValidDoc, ""};
  documents[2] = {"c.xml", kInvalidDoc, ""};
  BatchResult result = BatchValidate(*schema, documents, BatchOptions());
  EXPECT_EQ(result.num_valid, 2);
  EXPECT_EQ(valid->value() - valid0, 2);
  EXPECT_EQ(invalid->value() - invalid0, 1);
}

}  // namespace
}  // namespace stap
