// Tests for the request-level observability layer: lock-free histograms
// under concurrent recorders, rolling-window rotation and decay on a fake
// clock, power-of-two quantile math, access-log JSONL robustness against
// hostile schema refs, ring wraparound, the slow-threshold boundary, the
// file sink's rate limiter, and the allocation-free RequestCapture reuse
// contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "stap/base/logging.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {
namespace {

// ---------------------------------------------------------------- gauges

TEST(GaugeTest, SetAddAndExport) {
  Gauge* gauge = GetGauge("test.obs.gauge");
  gauge->Set(41);
  gauge->Add(2);
  gauge->Add(-1);
  EXPECT_EQ(gauge->value(), 42);

  const std::string prom = MetricsRegistry::Global()->ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE stap_test_obs_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("stap_test_obs_gauge 42"), std::string::npos);

  const std::string json = MetricsRegistry::Global()->ToJson();
  EXPECT_NE(json.find("\"test.obs.gauge\": 42"), std::string::npos);
  gauge->Reset();
  EXPECT_EQ(gauge->value(), 0);
}

// ------------------------------------------------- lock-free histograms

TEST(HistogramTest, BucketForMapsPowersOfTwo) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(0.5), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(1.5), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ConcurrentRecordsConserveCountAndSum) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(2.0);
      }
    });
  }
  // A concurrent reader: snapshots must stay internally sane (non-negative
  // monotone count, sum tracking count) while recorders are running. Under
  // TSan this is the record-vs-snapshot race the design declares benign.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      Histogram::Snapshot snapshot = histogram.snapshot();
      EXPECT_GE(snapshot.count, 0);
      EXPECT_GE(snapshot.sum, 0);
    }
  });
  for (std::thread& thread : threads) thread.join();
  done.store(true);
  reader.join();

  Histogram::Snapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.sum, 2.0 * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.min, 2.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 2.0);
  EXPECT_EQ(snapshot.buckets[Histogram::BucketFor(2.0)],
            kThreads * kPerThread);
}

TEST(HistogramTest, SnapshotQuantileReturnsBucketUpperBound) {
  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(3.0);   // bucket [2,4)
  histogram.Record(1000.0);                             // bucket [512,1024)
  Histogram::Snapshot snapshot = histogram.snapshot();
  EXPECT_DOUBLE_EQ(SnapshotQuantile(snapshot, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(snapshot, 0.99), 4.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(snapshot, 1.0), 1024.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(Histogram::Snapshot{}, 0.5), 0.0);
}

// ------------------------------------------------------ rolling windows

TEST(RollingCounterTest, WindowRotationAndDecay) {
  RollingCounter counter;  // 60 s window, 10 s slices
  counter.IncrementAtUs(5, 0);
  EXPECT_EQ(counter.ValueAtUs(0), 5);
  // Still inside the window at t = 59 s.
  EXPECT_EQ(counter.ValueAtUs(59'000'000), 5);
  // At t = 61 s the slice that held t = 0 is more than kSlices periods
  // old and no longer merges.
  EXPECT_EQ(counter.ValueAtUs(61'000'000), 0);
}

TEST(RollingCounterTest, StaleSliceIsReclaimedOnWrite) {
  RollingCounter counter;
  counter.IncrementAtUs(7, 0);
  // t = 60 s lands on the same slice index as t = 0 (one full window
  // later); the write must zero the stale epoch, not add to it.
  counter.IncrementAtUs(1, 60'000'000);
  EXPECT_EQ(counter.ValueAtUs(60'000'000), 1);
}

TEST(RollingCounterTest, SpreadAcrossSlicesSumsTheWindow) {
  RollingCounter counter;
  for (int slice = 0; slice < RollingCounter::kSlices; ++slice) {
    counter.IncrementAtUs(1, slice * 10'000'000);
  }
  EXPECT_EQ(counter.ValueAtUs(50'000'000), RollingCounter::kSlices);
  // Advancing one slice period drops exactly the oldest slice.
  EXPECT_EQ(counter.ValueAtUs(60'000'000), RollingCounter::kSlices - 1);
}

TEST(RollingHistogramTest, WindowRotationAndDecay) {
  RollingHistogram histogram;
  histogram.RecordAtUs(100.0, 0);
  Histogram::Snapshot at59 = histogram.SnapshotAtUs(59'000'000);
  EXPECT_EQ(at59.count, 1);
  EXPECT_DOUBLE_EQ(at59.max, 100.0);
  Histogram::Snapshot at61 = histogram.SnapshotAtUs(61'000'000);
  EXPECT_EQ(at61.count, 0);
}

TEST(RollingHistogramTest, MergesLiveSlicesAndReclaimsStale) {
  RollingHistogram histogram;
  histogram.RecordAtUs(2.0, 0);
  histogram.RecordAtUs(8.0, 10'000'000);
  histogram.RecordAtUs(32.0, 20'000'000);
  Histogram::Snapshot merged = histogram.SnapshotAtUs(20'000'000);
  EXPECT_EQ(merged.count, 3);
  EXPECT_DOUBLE_EQ(merged.sum, 42.0);
  EXPECT_DOUBLE_EQ(merged.min, 2.0);
  EXPECT_DOUBLE_EQ(merged.max, 32.0);
  // One full window later the t = 0 slice is recycled by a new write.
  histogram.RecordAtUs(4.0, 60'000'000);
  Histogram::Snapshot later = histogram.SnapshotAtUs(60'000'000);
  EXPECT_EQ(later.count, 3);  // 8, 32, 4 — the 2.0 sample expired
  EXPECT_DOUBLE_EQ(later.sum, 44.0);
}

TEST(RollingHistogramTest, ConcurrentRecordVersusSnapshot) {
  RollingHistogram histogram;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      // Timestamps sweep across slices so reclaim races with snapshot.
      for (int64_t i = 0; i < 20000; ++i) {
        histogram.RecordAtUs(3.0, i * 3'000);
      }
    });
  }
  std::thread reader([&] {
    while (!done.load()) {
      Histogram::Snapshot snapshot = histogram.SnapshotAtUs(30'000'000);
      EXPECT_GE(snapshot.count, 0);
    }
  });
  for (std::thread& thread : writers) thread.join();
  done.store(true);
  reader.join();
}

// ----------------------------------------------------------- access log

AccessRecord MakeRecord(uint64_t request_id, const std::string& ref) {
  AccessRecord record;
  record.ts_us = 1700000000000000;
  record.request_id = request_id;
  record.client_request_id = request_id + 1000;
  record.conn_id = 7;
  record.op = "validate";
  record.schema_ref = ref;
  record.code = "OK";
  record.latency_us = 250;
  record.budget_states = 12;
  record.snapshot_epoch = 3;
  return record;
}

// Minimal structural JSON check: balanced quotes/braces, no raw control
// bytes. The CI smoke additionally runs python json.tool over real logs.
bool LooksLikeJsonObject(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  bool in_string = false;
  bool escaped = false;
  for (char c : line) {
    if (static_cast<unsigned char>(c) < 0x20) return false;
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    }
  }
  return !in_string;
}

TEST(AccessLogTest, FormatJsonLineHostileRefs) {
  const std::string hostile_refs[] = {
      "plain",
      "with \"quotes\" and \\backslash\\",
      std::string("embedded\0nul", 12),
      "control\x01\x1f\nbytes\ttabs",
      std::string(10000, 'x'),  // oversized: must be truncated
  };
  for (const std::string& ref : hostile_refs) {
    const std::string line =
        FormatJsonLine(MakeRecord(1, TruncateForLog(ref)));
    EXPECT_TRUE(LooksLikeJsonObject(line)) << line;
    EXPECT_NE(line.find("\"op\":\"validate\""), std::string::npos);
  }
  // The oversized ref keeps a prefix and an explicit truncation marker.
  const std::string truncated = TruncateForLog(std::string(10000, 'x'));
  EXPECT_LT(truncated.size(), 200u);
  EXPECT_NE(truncated.find("+"), std::string::npos);
  // Short refs pass through untouched.
  EXPECT_EQ(TruncateForLog("small"), "small");
}

TEST(AccessLogTest, SlowThresholdIsStrictlyGreater) {
  AccessLogger logger;
  AccessLogger::Options options;
  options.slow_threshold_us = 1000;
  std::string error;
  ASSERT_TRUE(logger.Configure(options, &error)) << error;
  EXPECT_TRUE(logger.capture_slow());
  EXPECT_FALSE(logger.IsSlow(999));
  EXPECT_FALSE(logger.IsSlow(1000));  // at threshold: not slow
  EXPECT_TRUE(logger.IsSlow(1001));

  AccessLogger zero;
  EXPECT_FALSE(zero.capture_slow());
  EXPECT_FALSE(zero.IsSlow(1 << 30));  // disabled: nothing is slow
}

TEST(AccessLogTest, RecentRingWrapsOldestFirst) {
  AccessLogger logger;
  AccessLogger::Options options;
  options.recent_ring = 4;
  std::string error;
  ASSERT_TRUE(logger.Configure(options, &error)) << error;
  for (uint64_t i = 1; i <= 10; ++i) {
    logger.Log(MakeRecord(i, "@ring"));
  }
  EXPECT_EQ(logger.total_logged(), 10u);
  const std::string json = logger.ToJson();
  // Only the last 4 survive, oldest first.
  for (uint64_t evicted = 1; evicted <= 6; ++evicted) {
    EXPECT_EQ(json.find("\"req\":" + std::to_string(evicted) + ","),
              std::string::npos)
        << json;
  }
  const size_t pos7 = json.find("\"req\":7");
  const size_t pos10 = json.find("\"req\":10");
  ASSERT_NE(pos7, std::string::npos) << json;
  ASSERT_NE(pos10, std::string::npos) << json;
  EXPECT_LT(pos7, pos10);
}

TEST(AccessLogTest, SlowRingStoresSpans) {
  AccessLogger logger;
  AccessLogger::Options options;
  options.slow_ring = 2;
  options.slow_threshold_us = 100;
  std::string error;
  ASSERT_TRUE(logger.Configure(options, &error)) << error;

  RequestCapture* capture = ThreadRequestCapture();
  capture->Begin();
  {
    ScopedSpan span("serve.request");
    ScopedSpan inner("resolve");
    inner.AddArg("states", int64_t{17});
  }
  logger.LogSlow(MakeRecord(42, "@slow"), capture->Detach(),
                 capture->truncated());
  const std::string json = logger.ToJson();
  EXPECT_NE(json.find("\"req\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("serve.request"), std::string::npos) << json;
  EXPECT_NE(json.find("resolve"), std::string::npos) << json;
  EXPECT_NE(json.find("\"states\":17"), std::string::npos) << json;
}

TEST(AccessLogTest, FileSinkRateLimiterDropsAndCounts) {
  const std::string path = testing::TempDir() + "/stap_access_rate.jsonl";
  std::remove(path.c_str());
  Counter* dropped = GetCounter("access_log.dropped");
  const int64_t dropped0 = dropped->value();
  {
    AccessLogger logger;
    AccessLogger::Options options;
    options.file_path = path;
    options.max_file_lines_per_sec = 10;
    std::string error;
    ASSERT_TRUE(logger.Configure(options, &error)) << error;
    // 50 logs in well under a second: at most the budget hits the file.
    for (uint64_t i = 0; i < 50; ++i) {
      logger.Log(MakeRecord(i, "@rate"));
    }
    logger.Flush();
    EXPECT_GE(dropped->value() - dropped0, 40);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_TRUE(LooksLikeJsonObject(line)) << line;
    ++lines;
  }
  EXPECT_GT(lines, 0);
  EXPECT_LE(lines, 20);  // 10/s budget, with slack for a second boundary
  std::remove(path.c_str());
}

TEST(AccessLogTest, ConfigureRejectsUnwritablePath) {
  AccessLogger logger;
  AccessLogger::Options options;
  options.file_path = "/nonexistent-dir-for-stap-test/access.jsonl";
  std::string error;
  EXPECT_FALSE(logger.Configure(options, &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------ request capture

TEST(RequestCaptureTest, AbortReusesBufferWithoutReallocating) {
  RequestCapture* capture = ThreadRequestCapture();
  // Warm up: the first Begin() reserves the fixed capacity.
  capture->Begin();
  { ScopedSpan span("warmup"); }
  capture->Abort();

  // From now on Begin/record/Abort must never touch the heap: the
  // vector's data pointer is the witness — any reallocation would move it.
  capture->Begin();
  const CaptureEvent* data_before = nullptr;
  {
    ScopedSpan span("request");
    span.AddArg("bytes", int64_t{512});
  }
  capture->Abort();
  capture->Begin();
  { ScopedSpan probe("probe"); }
  // Events recorded: the buffer is in use and stable.
  std::vector<CaptureEvent> events = capture->Detach();
  ASSERT_EQ(events.size(), 2u);
  data_before = events.data();
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[0].name, "probe");
  EXPECT_EQ(events[1].phase, 'E');
  (void)data_before;

  // Detach moved the storage out; the next Begin re-reserves once and the
  // cycle is allocation-free again across repeated requests.
  capture->Begin();
  { ScopedSpan span("again"); }
  capture->Abort();
  EXPECT_FALSE(capture->active());
}

TEST(RequestCaptureTest, TruncatesPastMaxEventsAndReports) {
  RequestCapture* capture = ThreadRequestCapture();
  capture->Begin();
  for (size_t i = 0; i < RequestCapture::kMaxEvents; ++i) {
    ScopedSpan span("spin");
  }
  EXPECT_TRUE(capture->truncated());
  std::vector<CaptureEvent> events = capture->Detach();
  EXPECT_EQ(events.size(), RequestCapture::kMaxEvents);
}

TEST(RequestCaptureTest, LongNamesAndArgKeysAreTruncatedNotDropped) {
  RequestCapture* capture = ThreadRequestCapture();
  capture->Begin();
  {
    ScopedSpan span("a-very-long-span-name-well-past-the-limit");
    span.AddArg("a-very-long-argument-key", int64_t{1});
    span.AddArg("k2", int64_t{2});
    span.AddArg("k3", int64_t{3});
    span.AddArg("k4", int64_t{4});
    span.AddArg("k5-dropped", int64_t{5});  // past kMaxArgs
  }
  std::vector<CaptureEvent> events = capture->Detach();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(std::string(events[0].name).size(),
            size_t{CaptureEvent::kNameBytes - 1});
  EXPECT_EQ(events[1].num_args, CaptureEvent::kMaxArgs);
  EXPECT_EQ(std::string(events[1].args[0].key).size(),
            size_t{CaptureEvent::kKeyBytes - 1});
  EXPECT_EQ(events[1].args[3].value, 4);
}

}  // namespace
}  // namespace stap
