// Cross-cutting edge cases: degenerate alphabets and languages, deep and
// wide documents, and boundary behaviors the main suites do not reach.
#include <gtest/gtest.h>

#include "stap/approx/inclusion.h"
#include "stap/approx/nv.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/approx/witness.h"
#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/schema/builder.h"
#include "stap/schema/count.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/streaming.h"
#include "stap/schema/type_automaton.h"

namespace stap {
namespace {

Edtd SingleLeafSchema() {
  SchemaBuilder builder;
  builder.AddType("A", "a", "%");
  builder.AddStart("A");
  return builder.Build();
}

Edtd EmptyLanguageSchema() {
  SchemaBuilder builder;
  builder.AddType("A", "a", "A");
  builder.AddStart("A");
  return builder.Build();
}

TEST(EdgeCaseTest, SingletonLanguageThroughEveryOperator) {
  Edtd leaf = SingleLeafSchema();
  // Upper approximation of a singleton is itself.
  DfaXsd upper = MinimalUpperApproximation(leaf);
  EXPECT_TRUE(upper.Accepts(Tree(0)));
  EXPECT_FALSE(upper.Accepts(Tree(0, {Tree(0)})));
  EXPECT_EQ(MinimizeXsd(upper).type_size(), 1);
  // Union / intersection / difference with itself.
  EXPECT_TRUE(UpperUnion(leaf, leaf).Accepts(Tree(0)));
  EXPECT_TRUE(UpperIntersection(leaf, leaf).Accepts(Tree(0)));
  EXPECT_EQ(MinimizeXsd(UpperDifference(leaf, leaf)).type_size(), 0);
  // Complement: everything except the single leaf.
  DfaXsd complement = UpperComplement(leaf);
  EXPECT_FALSE(complement.Accepts(Tree(0)));
  EXPECT_TRUE(complement.Accepts(Tree(0, {Tree(0)})));
  // Lower approximations.
  DfaXsd lower = LowerUnionFixingFirst(leaf, leaf);
  EXPECT_TRUE(lower.Accepts(Tree(0)));
}

TEST(EdgeCaseTest, EmptyLanguageThroughEveryOperator) {
  Edtd empty = EmptyLanguageSchema();
  Edtd leaf = SingleLeafSchema();
  EXPECT_EQ(MinimalUpperApproximation(empty).type_size(), 0);
  EXPECT_TRUE(
      SingleTypeEquivalent(StEdtdFromDfaXsd(UpperUnion(empty, leaf)), leaf));
  EXPECT_EQ(MinimizeXsd(UpperIntersection(empty, leaf)).type_size(), 0);
  EXPECT_EQ(MinimizeXsd(UpperDifference(empty, leaf)).type_size(), 0);
  // Difference from the other side: leaf \ ∅ = leaf.
  DfaXsd diff = UpperDifference(leaf, empty);
  EXPECT_TRUE(diff.Accepts(Tree(0)));
  // Complement of ∅ is everything.
  DfaXsd complement = UpperComplement(empty);
  EXPECT_TRUE(complement.Accepts(Tree(0)));
  EXPECT_TRUE(complement.Accepts(Tree(0, {Tree(0), Tree(0)})));
  // nv(∅, leaf) is empty; nv(leaf, ∅) is all of leaf.
  EXPECT_EQ(MinimizeXsd(NonViolating(leaf, empty)).type_size(), 0);
  EXPECT_TRUE(NonViolating(empty, leaf).Accepts(Tree(0)));
  // Inclusions.
  EXPECT_TRUE(IncludedInSingleType(empty, leaf));
  EXPECT_TRUE(IncludedInSingleType(empty, empty));
  EXPECT_FALSE(IncludedInSingleType(leaf, empty));
  EXPECT_FALSE(XsdInclusionWitness(empty,
                                   DfaXsdFromStEdtd(ReduceEdtd(leaf)))
                   .has_value());
}

TEST(EdgeCaseTest, UnaryAlphabetApproximations) {
  // Unary alphabet, recursive schema: chains of even length.
  SchemaBuilder builder;
  builder.AddType("E", "a", "O");
  builder.AddType("O", "a", "E?");
  builder.AddStart("E");
  Edtd even = builder.Build();
  ASSERT_TRUE(IsSingleType(even));
  EXPECT_TRUE(even.Accepts(Tree::Unary(Word(2, 0))));
  EXPECT_FALSE(even.Accepts(Tree::Unary(Word(3, 0))));
  // The complement contains all odd chains AND all branching a-trees;
  // exchanging a branching tree's subtree with an odd chain's recreates
  // the even chains (e.g. a(a,a) ⟷ a(a(a)) at depth 2 yields a(a)), so
  // the minimal upper approximation collapses to all a-trees.
  DfaXsd complement = UpperComplement(even);
  EXPECT_TRUE(complement.Accepts(Tree::Unary(Word(3, 0))));
  EXPECT_TRUE(complement.Accepts(Tree::Unary(Word(2, 0))));
  EXPECT_TRUE(complement.Accepts(Tree(0, {Tree(0), Tree(0)})));
}

TEST(EdgeCaseTest, DeepDocuments) {
  SchemaBuilder builder;
  builder.AddType("N", "a", "N?");
  builder.AddStart("N");
  Edtd chains = ReduceEdtd(builder.Build());
  DfaXsd xsd = DfaXsdFromStEdtd(chains);
  Tree deep = Tree::Unary(Word(20000, 0));
  EXPECT_TRUE(xsd.Accepts(deep));
  EXPECT_TRUE(ValidateStreaming(xsd, deep));
  Tree bad = deep;
  bad.At(TreePath(10000, 0)).children.push_back(Tree(0));  // rank 2 node
  EXPECT_FALSE(xsd.Accepts(bad));
  EXPECT_FALSE(ValidateStreaming(xsd, bad));
}

TEST(EdgeCaseTest, WideDocuments) {
  SchemaBuilder builder;
  builder.AddType("R", "r", "A*");
  builder.AddType("A", "a", "%");
  builder.AddStart("R");
  DfaXsd xsd = DfaXsdFromStEdtd(ReduceEdtd(builder.Build()));
  Tree wide(xsd.sigma.Find("r"));
  wide.children.assign(50000, Tree(xsd.sigma.Find("a")));
  EXPECT_TRUE(xsd.Accepts(wide));
  EXPECT_TRUE(ValidateStreaming(xsd, wide));
  EXPECT_GT(CountDocuments(xsd, 2, 50), 50.0);
}

TEST(EdgeCaseTest, SharedLabelsAcrossManyContexts) {
  // The same element name under 5 different parents with 5 different
  // content models — stress for the type automaton and minimization.
  SchemaBuilder builder;
  std::string roots;
  for (int i = 0; i < 5; ++i) {
    std::string p = "P" + std::to_string(i);
    std::string x = "X" + std::to_string(i);
    roots += p + " ";
    builder.AddType(p, "p" + std::to_string(i), x);
    // X under P_i allows exactly i x-children.
    std::string content;
    for (int j = 0; j < i; ++j) content += "Leaf ";
    if (content.empty()) content = "%";
    builder.AddType(x, "x", content);
  }
  builder.AddType("Root", "root", roots);
  builder.AddType("Leaf", "leaf", "%");
  builder.AddStart("Root");
  Edtd schema = ReduceEdtd(builder.Build());
  ASSERT_TRUE(IsSingleType(schema));
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(schema));
  // No two X-types merge (all content languages differ).
  int x_states = 0;
  for (int q = 1; q < xsd.automaton.num_states(); ++q) {
    if (xsd.state_label[q] == xsd.sigma.Find("x")) ++x_states;
  }
  EXPECT_EQ(x_states, 5);
}

TEST(EdgeCaseTest, MinimizeHandlesCompleteAutomata) {
  // An already-complete DFA with every state final.
  Dfa all = Dfa::AllWords(3);
  EXPECT_EQ(Minimize(all), all);
  // Determinizing an NFA with no initial states.
  Nfa no_init(2, 2);
  no_init.SetFinal(1);
  Dfa dfa = Determinize(no_init);
  EXPECT_TRUE(dfa.IsEmpty());
}

}  // namespace
}  // namespace stap
