// Seed plumbing for randomized differential tests.
//
// Tests that draw from RandomNfa/RandomEdtd derive their std::mt19937
// seeds through MixSeed(salt), which folds in a process-wide base seed.
// The base seed defaults to 0 (fully deterministic CI runs) and can be
// overridden to explore new random streams:
//
//   ./hotpath_differential_test --seed=12345
//   STAP_SEED=12345 ./hotpath_differential_test
//
// A test binary using this header must provide its own main() (link
// against gtest, not gtest_main) and call InitTestSeed(&argc, argv) after
// InitGoogleTest. On any test failure a listener prints the reproduction
// flag, so a red run from a randomized sweep is always replayable.
#ifndef STAP_TESTS_TEST_SEED_H_
#define STAP_TESTS_TEST_SEED_H_

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stap {
namespace test {

inline uint64_t& BaseSeedRef() {
  static uint64_t seed = 0;
  return seed;
}

inline uint64_t BaseSeed() { return BaseSeedRef(); }

// splitmix64 finalizer over (base seed, salt): well-spread 32-bit seeds
// for per-test std::mt19937 streams, deterministic for a fixed base.
inline uint32_t MixSeed(uint64_t salt) {
  uint64_t z = BaseSeedRef() + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<uint32_t>(z ^ (z >> 31));
}

namespace internal {

class SeedReportListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed()) return;
    std::fprintf(stderr,
                 "[  SEED    ] reproduce with --seed=%" PRIu64
                 " (or STAP_SEED=%" PRIu64 ")\n",
                 BaseSeed(), BaseSeed());
  }
};

}  // namespace internal

// Parses --seed=N out of argv (also honoring the STAP_SEED environment
// variable; the flag wins) and installs the failure-reporting listener.
inline void InitTestSeed(int* argc, char** argv) {
  if (const char* env = std::getenv("STAP_SEED")) {
    BaseSeedRef() = std::strtoull(env, nullptr, 10);
  }
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      BaseSeedRef() = std::strtoull(argv[i] + 7, nullptr, 10);
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      --i;
    }
  }
  if (BaseSeed() != 0) {
    std::printf("[  SEED    ] running with --seed=%" PRIu64 "\n", BaseSeed());
  }
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new internal::SeedReportListener);
}

}  // namespace test
}  // namespace stap

#endif  // STAP_TESTS_TEST_SEED_H_
