// Differential tests for schema-guided determinization
// (automata/determinize.h): the guided result must agree with the dense
// oracle on every word the context admits, exactly match it under
// exact-mode contexts, latch budget exhaustion mid-construction, and
// genuinely prune the paper's exponential family under a bounded-letter
// ambient schema. Seeded (see test_seed.h): --seed=N / STAP_SEED=N
// replays any failure.
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "stap/approx/upper.h"
#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/base/budget.h"
#include "stap/base/metrics.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/regex/bkw.h"
#include "stap/regex/dre_approx.h"
#include "stap/regex/glushkov.h"
#include "stap/schema/minimize.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

// L(result) restricted to the context must equal L(dense) restricted to
// the context (the contract in determinize.h), and L(result) ⊆ L(dense)
// always. 300 random (NFA, context) pairs, both arbitrary.
TEST(DeterminizeSchemaTest, RestrictedLanguageEquivalence) {
  for (int iter = 0; iter < 300; ++iter) {
    std::mt19937 rng(MixSeed(1000 + iter));
    const int num_symbols = 2 + static_cast<int>(rng() % 3);
    Nfa nfa = RandomNfa(&rng, 2 + rng() % 6, num_symbols);
    Nfa context = RandomNfa(&rng, 1 + rng() % 5, num_symbols);

    Dfa dense = Determinize(nfa);
    StatusOr<Dfa> guided = DeterminizeUnderSchema(nfa, context);
    ASSERT_TRUE(guided.ok());
    Dfa ctx_dfa = Determinize(context);

    EXPECT_TRUE(DfaIncludedIn(*guided, dense)) << "iter " << iter;
    EXPECT_TRUE(DfaEquivalent(DfaProduct(*guided, ctx_dfa, BoolOp::kAnd),
                              DfaProduct(dense, ctx_dfa, BoolOp::kAnd)))
        << "iter " << iter;
  }
}

// Sampled context-accepted words (all their prefixes are context-live by
// definition) must get identical verdicts from both constructions.
TEST(DeterminizeSchemaTest, LivePrefixWordAgreement) {
  int words_checked = 0;
  for (int iter = 0; iter < 100; ++iter) {
    std::mt19937 rng(MixSeed(2000 + iter));
    const int num_symbols = 2 + static_cast<int>(rng() % 3);
    Nfa nfa = RandomNfa(&rng, 2 + rng() % 6, num_symbols);
    Nfa context = RandomNfa(&rng, 1 + rng() % 5, num_symbols);

    Dfa dense = Determinize(nfa);
    StatusOr<Dfa> guided = DeterminizeUnderSchema(nfa, context);
    ASSERT_TRUE(guided.ok());
    Dfa ctx_dfa = Determinize(context);

    for (int w = 0; w < 8; ++w) {
      auto word = SampleWord(ctx_dfa, &rng);
      if (!word.has_value()) break;
      EXPECT_EQ(dense.Accepts(*word), guided->Accepts(*word))
          << "iter " << iter;
      ++words_checked;
    }
  }
  // The sweep must have exercised real words, not empty languages only.
  EXPECT_GT(words_checked, 200);
}

// Exact mode: when L(context) ⊇ L(nfa), the guided result accepts
// exactly L(nfa). The NFA itself is such a context (self-context), and
// so is its union with anything.
TEST(DeterminizeSchemaTest, ExactModeMatchesDense) {
  for (int iter = 0; iter < 100; ++iter) {
    std::mt19937 rng(MixSeed(3000 + iter));
    const int num_symbols = 2 + static_cast<int>(rng() % 3);
    Nfa nfa = RandomNfa(&rng, 2 + rng() % 6, num_symbols);
    Nfa padding = RandomNfa(&rng, 1 + rng() % 4, num_symbols);
    Nfa exact_context = iter % 2 == 0 ? nfa : NfaUnion(nfa, padding);

    Dfa dense = Determinize(nfa);
    StatusOr<Dfa> guided = DeterminizeUnderSchema(nfa, exact_context);
    ASSERT_TRUE(guided.ok());
    EXPECT_TRUE(DfaEquivalent(dense, *guided)) << "iter " << iter;
  }
}

// The inclusion oracle built on the schema-guided determinizer must
// agree with the antichain engine on random pairs.
TEST(DeterminizeSchemaTest, InclusionOracleAgreesWithAntichain) {
  int included = 0;
  for (int iter = 0; iter < 100; ++iter) {
    std::mt19937 rng(MixSeed(4000 + iter));
    const int num_symbols = 2 + static_cast<int>(rng() % 2);
    Nfa a = RandomNfa(&rng, 2 + rng() % 5, num_symbols);
    Nfa b = RandomNfa(&rng, 2 + rng() % 5, num_symbols);
    // Make inclusions non-vacuously common: half the time b also gets
    // all of a's structure.
    if (iter % 2 == 0) b = NfaUnion(b, a);

    StatusOr<bool> via_schema = NfaIncludedInNfaViaSchemaDeterminize(a, b);
    ASSERT_TRUE(via_schema.ok());
    EXPECT_EQ(*via_schema, NfaIncludedInNfa(a, b)) << "iter " << iter;
    included += *via_schema ? 1 : 0;
  }
  EXPECT_GT(included, 30);  // both verdicts must actually occur
}

// Random EDTDs through the full upper approximation: the
// union-of-contents context is exact-mode, so with minimize_content the
// schema-guided XSD is *structurally identical* to the dense one
// (canonical minimization erases the pair structure).
TEST(DeterminizeSchemaTest, UpperApproximationStructurallyIdentical) {
  for (int iter = 0; iter < 100; ++iter) {
    std::mt19937 rng(MixSeed(5000 + iter));
    RandomSchemaParams params;
    params.num_symbols = 2 + static_cast<int>(rng() % 3);
    params.num_types = 3 + static_cast<int>(rng() % 4);
    Edtd edtd = RandomEdtd(&rng, params);

    DfaXsd dense = MinimalUpperApproximation(edtd);
    Nfa context = ContentUnionContext(edtd);
    UpperOptions options;
    options.content_context = &context;
    StatusOr<DfaXsd> guided =
        MinimalUpperApproximation(edtd, nullptr, options);
    ASSERT_TRUE(guided.ok());
    EXPECT_TRUE(XsdStructurallyEqual(dense, *guided)) << "iter " << iter;
  }
}

// MinimizeXsdUnderContext with an exact-mode context is the identity
// relative to plain MinimizeXsd.
TEST(DeterminizeSchemaTest, MinimizeXsdUnderExactContextIsCanonical) {
  for (int iter = 0; iter < 50; ++iter) {
    std::mt19937 rng(MixSeed(6000 + iter));
    RandomSchemaParams params;
    params.num_symbols = 2 + static_cast<int>(rng() % 2);
    params.num_types = 3 + static_cast<int>(rng() % 4);
    Edtd edtd = RandomStEdtd(&rng, params);
    DfaXsd xsd = DfaXsdFromStEdtd(edtd);

    DfaXsd dense = MinimizeXsd(xsd);
    Nfa context = ContentUnionContext(edtd);
    StatusOr<DfaXsd> guided = MinimizeXsdUnderContext(xsd, context);
    ASSERT_TRUE(guided.ok());
    EXPECT_TRUE(XsdStructurallyEqual(dense, *guided)) << "iter " << iter;
  }
}

// BKW language one-unambiguity and the DRE chain approximation through
// the schema-guided NFA entry points, under self-context (exact mode):
// verdicts match the dense path, and the approximation regex still
// contains the NFA's language.
TEST(DeterminizeSchemaTest, RegexEntryPointsUnderSelfContext) {
  for (int iter = 0; iter < 50; ++iter) {
    std::mt19937 rng(MixSeed(7000 + iter));
    const int num_symbols = 2 + static_cast<int>(rng() % 2);
    Nfa nfa = RandomNfa(&rng, 2 + rng() % 4, num_symbols);

    Dfa dense = Determinize(nfa);
    StatusOr<bool> guided_verdict =
        IsOneUnambiguousLanguage(nfa, &nfa, nullptr);
    ASSERT_TRUE(guided_verdict.ok());
    EXPECT_EQ(*guided_verdict, IsOneUnambiguousLanguage(dense))
        << "iter " << iter;

    StatusOr<RegexPtr> approx = ApproximateDreUnderSchema(nfa, &nfa);
    ASSERT_TRUE(approx.ok());
    Dfa approx_dfa = RegexToDfa(**approx, num_symbols);
    EXPECT_TRUE(NfaIncludedInDfa(nfa, approx_dfa)) << "iter " << iter;
  }
}

// Budget exhaustion must latch mid-construction: the guided run on an
// exponential instance stops with kResourceExhausted, the budget stays
// latched for later charges, and a second run fails immediately.
TEST(DeterminizeSchemaTest, BudgetExhaustionLatchesMidConstruction) {
  TypeAutomaton ta = BuildTypeAutomaton(Theorem32Family(16));
  // Universal context (= Σ*): guided degenerates to dense, so the 2^16
  // subsets are all live and the quota trips mid-construction.
  Nfa universal(1, ta.nfa.num_symbols());
  universal.AddInitial(0);
  universal.SetFinal(0);
  for (int a = 0; a < ta.nfa.num_symbols(); ++a) {
    universal.AddTransition(0, a, 0);
  }

  Budget budget;
  budget.set_max_states(500);
  StatusOr<Dfa> result = DeterminizeUnderSchema(ta.nfa, universal, &budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // Latched: every further charge and every further run fails.
  EXPECT_EQ(budget.ChargeStates().code(), StatusCode::kResourceExhausted);
  StatusOr<Dfa> again = DeterminizeUnderSchema(ta.nfa, universal, &budget);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kResourceExhausted);
}

// The motivating pruning case: the Theorem 3.2 type automaton explodes
// to 2^n dense subsets, but under a bounded-letter ambient schema only
// O(n·k) pairs are live. Checks the per-call stats, the registry
// counters, and the ≥2x acceptance bar at modest n.
TEST(DeterminizeSchemaTest, BoundedContextPrunesTheorem32) {
  const int n = 12;
  TypeAutomaton ta = BuildTypeAutomaton(Theorem32Family(n));
  Nfa context = BoundedLetterContext(/*symbol=*/1, /*max_count=*/3,
                                     ta.nfa.num_symbols());

  Counter* const pruned_counter =
      GetCounter("determinize.schema_pruned_states");
  Counter* const created_counter = GetCounter("determinize.states_created");

  const int64_t created_before_dense = created_counter->value();
  Dfa dense = Determinize(ta.nfa);
  const int64_t dense_created = created_counter->value() -
                                created_before_dense;

  const int64_t pruned_before = pruned_counter->value();
  const int64_t created_before = created_counter->value();
  SchemaDeterminizeStats stats;
  StatusOr<Dfa> guided = DeterminizeUnderSchema(
      ta.nfa, context, nullptr, nullptr, nullptr, &stats);
  ASSERT_TRUE(guided.ok());
  const int64_t guided_created = created_counter->value() - created_before;

  EXPECT_EQ(stats.pair_states, guided->num_states());
  EXPECT_GT(stats.pruned_states, 0);
  EXPECT_GT(stats.pruned_transitions, 0);
  EXPECT_GT(stats.max_subset_size, 0);
  EXPECT_EQ(pruned_counter->value() - pruned_before, stats.pruned_states);
  // The acceptance bar: at least 2x fewer DFA states created, by the
  // same metrics counter the bench reports. (At n=12 the dense path
  // creates >4096 states; the guided one stays polynomial.)
  EXPECT_GE(dense_created, 2 * guided_created)
      << "dense=" << dense_created << " guided=" << guided_created;

  // And the restriction is still correct.
  Dfa ctx_dfa = Determinize(context);
  EXPECT_TRUE(DfaEquivalent(DfaProduct(*guided, ctx_dfa, BoolOp::kAnd),
                            DfaProduct(dense, ctx_dfa, BoolOp::kAnd)));
}

// Empty-context edge case: a context with no initial states (or whose
// language is empty at the root) collapses the whole result to the dead
// sink, which accepts nothing.
TEST(DeterminizeSchemaTest, DeadContextYieldsEmptyLanguage) {
  std::mt19937 rng(MixSeed(8000));
  Nfa nfa = RandomNfa(&rng, 4, 2);
  Nfa dead(1, 2);  // no initial states at all
  StatusOr<Dfa> guided = DeterminizeUnderSchema(nfa, dead);
  ASSERT_TRUE(guided.ok());
  EXPECT_TRUE(DfaEquivalent(*guided, Dfa::EmptyLanguage(2)));
}

// Subset out-params: per DFA state the NFA half and context half, both
// empty exactly for the sink.
TEST(DeterminizeSchemaTest, SubsetOutParamsDecomposePairs) {
  std::mt19937 rng(MixSeed(8100));
  for (int iter = 0; iter < 25; ++iter) {
    Nfa nfa = RandomNfa(&rng, 2 + rng() % 5, 2);
    Nfa context = RandomNfa(&rng, 1 + rng() % 4, 2);
    std::vector<StateSet> subsets;
    std::vector<StateSet> context_subsets;
    StatusOr<Dfa> guided = DeterminizeUnderSchema(
        nfa, context, nullptr, &subsets, &context_subsets);
    ASSERT_TRUE(guided.ok());
    ASSERT_EQ(static_cast<int>(subsets.size()), guided->num_states());
    ASSERT_EQ(static_cast<int>(context_subsets.size()), guided->num_states());
    for (int s = 0; s < guided->num_states(); ++s) {
      EXPECT_EQ(subsets[s].empty(), context_subsets[s].empty())
          << "state " << s << ": the sink is the only state with an "
          << "empty half, and it has both empty";
      if (subsets[s].empty()) {
        EXPECT_FALSE(guided->IsFinal(s));
      }
    }
  }
}

// A budget shared by concurrent guided determinizations must stay
// race-free (TSan matrix) and deliver either success or a latched
// kResourceExhausted in every thread.
TEST(DeterminizeSchemaTest, ConcurrentSharedBudget) {
  TypeAutomaton ta = BuildTypeAutomaton(Theorem32Family(12));
  Nfa context = BoundedLetterContext(1, 4, ta.nfa.num_symbols());
  Budget budget;
  budget.set_max_states(2000);

  constexpr int kThreads = 8;
  std::vector<StatusCode> codes(kThreads, StatusCode::kOk);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        StatusOr<Dfa> result =
            DeterminizeUnderSchema(ta.nfa, context, &budget);
        codes[t] = result.ok() ? StatusCode::kOk : result.status().code();
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(codes[t] == StatusCode::kOk ||
                codes[t] == StatusCode::kResourceExhausted)
        << "thread " << t;
  }
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
