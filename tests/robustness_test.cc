// Robustness tests: parsers and renderers must reject malformed input
// with Status errors (never crash), and renderer output must stay
// re-parseable under mutation-free round trips.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "stap/automata/dot.h"
#include "stap/regex/parser.h"
#include "stap/schema/builder.h"
#include "stap/schema/dtd_io.h"
#include "stap/schema/nfa_schema.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/streaming.h"
#include "stap/schema/text_format.h"
#include "stap/schema/validate.h"
#include "stap/schema/xsd_io.h"
#include "stap/tree/xml.h"

namespace stap {
namespace {

// Deterministic pseudo-random printable garbage.
std::string Garbage(std::mt19937* rng, int length) {
  static constexpr char kChars[] =
      "<>/=\"' \n\tabcxyz%~|()*+?#!ELEMENT:->startype";
  std::string result;
  for (int i = 0; i < length; ++i) {
    result += kChars[(*rng)() % (sizeof(kChars) - 1)];
  }
  return result;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, ParsersNeverCrashOnGarbage) {
  std::mt19937 rng(GetParam() * 2246822519u + 3266489917u);
  for (int round = 0; round < 50; ++round) {
    std::string input = Garbage(&rng, 1 + static_cast<int>(rng() % 120));
    Alphabet alphabet;
    (void)ParseXml(input, &alphabet);
    (void)ParseXmlDocument(input);
    (void)ParseSchema(input);
    (void)ParseSchemaNfa(input);
    (void)ParseDtd(input);
    (void)ImportXsd(input);
    Alphabet regex_alphabet;
    (void)ParseRegex(input, &regex_alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 10));

TEST(FuzzTest, TruncationsOfValidInputsFailCleanly) {
  const std::string schema =
      "start Lib\n"
      "type Lib : library -> Book*\n"
      "type Book : book -> %\n";
  for (size_t cut = 0; cut < schema.size(); ++cut) {
    (void)ParseSchema(schema.substr(0, cut));  // must not crash
  }
  const std::string xml = "<a x=\"1\"><b/><c/></a>";
  for (size_t cut = 0; cut < xml.size(); ++cut) {
    (void)ParseXmlDocument(xml.substr(0, cut));
  }
  const std::string dtd = "<!ELEMENT a (b | c)*><!ELEMENT b EMPTY>"
                          "<!ELEMENT c EMPTY>";
  for (size_t cut = 0; cut < dtd.size(); ++cut) {
    (void)ParseDtd(dtd.substr(0, cut));
  }
}

// Validation walks (tree and streaming) and the Tree special members must
// all be iterative: a path-shaped document deeper than the OS stack limit
// would otherwise crash in validation or even in the Tree destructor.
TEST(DeepDocumentTest, PathTreeDepth150kValidatesWithoutStackOverflow) {
  SchemaBuilder builder;
  builder.AddType("X", "x", "X | Y | %");
  builder.AddType("Y", "y", "%");
  builder.AddStart("X");
  Edtd edtd = ReduceEdtd(builder.Build());
  DfaXsd xsd = DfaXsdFromStEdtd(edtd);
  const int x = xsd.sigma.Find("x");
  const int y = xsd.sigma.Find("y");

  constexpr int kDepth = 150000;
  Word deep_word(kDepth, x);
  deep_word.push_back(y);
  Tree deep = Tree::Unary(deep_word);
  EXPECT_EQ(deep.Depth(), kDepth + 1);
  EXPECT_EQ(deep.NumNodes(), kDepth + 1);
  EXPECT_TRUE(xsd.Accepts(deep));
  EXPECT_TRUE(ValidateWithDiagnostics(xsd, deep).ok);
  EXPECT_TRUE(ValidateStreaming(xsd, deep));

  // An interior <y> violates its (empty) content model kDepth/2 levels
  // below the root; the walk must descend that far to find it.
  Word broken_word = deep_word;
  broken_word[kDepth / 2] = y;
  Tree broken = Tree::Unary(broken_word);
  EXPECT_FALSE(xsd.Accepts(broken));
  ValidationResult result = ValidateWithDiagnostics(xsd, broken);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(static_cast<int>(result.violation_path.size()), kDepth / 2);
  EXPECT_FALSE(ValidateStreaming(xsd, broken));
  // `deep` and `broken` are destroyed here; the iterative ~Tree keeps that
  // from recursing kDepth frames deep.
}

// The XML reader feeds the validators at the CLI surface, so it has to
// survive the same depths they do: parsing, DOM-to-tree conversion, and
// XmlElement teardown are all iterative.
TEST(DeepDocumentTest, ParsesDepth150kXmlWithoutStackOverflow) {
  constexpr int kDepth = 150000;
  std::string xml;
  xml.reserve(kDepth * 9 + 8);
  for (int i = 0; i < kDepth; ++i) xml += "<x>";
  xml += "<y/>";
  for (int i = 0; i < kDepth; ++i) xml += "</x>";

  Alphabet alphabet;
  StatusOr<Tree> tree = ParseXml(xml, &alphabet);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Depth(), kDepth + 1);
  EXPECT_EQ(tree->NumNodes(), kDepth + 1);

  StatusOr<XmlElement> document = ParseXmlDocument(xml);
  ASSERT_TRUE(document.ok());

  // Unbalanced nesting must still fail cleanly at depth.
  std::string truncated = xml.substr(0, xml.size() - 4);
  EXPECT_FALSE(ParseXml(truncated, &alphabet).ok());
  // `tree` and `document` are torn down here without recursing.
}

TEST(DotTest, RendersDfaAndNfa) {
  Alphabet alphabet({"a", "b"});
  Dfa dfa(2, 2);
  dfa.SetTransition(0, 0, 1);
  dfa.SetTransition(1, 1, 1);
  dfa.SetFinal(1);
  std::string dot = DfaToDot(dfa, &alphabet);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q0 -> q1 [label=\"a\"]"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);

  Nfa nfa(2, 2);
  nfa.AddInitial(0);
  nfa.AddTransition(0, 1, 0);
  nfa.AddTransition(0, 1, 1);
  nfa.SetFinal(1);
  std::string nfa_dot = NfaToDot(nfa);  // raw symbol ids
  EXPECT_NE(nfa_dot.find("q0 -> q1 [label=\"1\"]"), std::string::npos);
}

}  // namespace
}  // namespace stap
