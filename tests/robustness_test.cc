// Robustness tests: parsers and renderers must reject malformed input
// with Status errors (never crash), and renderer output must stay
// re-parseable under mutation-free round trips.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "stap/automata/dot.h"
#include "stap/regex/parser.h"
#include "stap/schema/dtd_io.h"
#include "stap/schema/nfa_schema.h"
#include "stap/schema/text_format.h"
#include "stap/schema/xsd_io.h"
#include "stap/tree/xml.h"

namespace stap {
namespace {

// Deterministic pseudo-random printable garbage.
std::string Garbage(std::mt19937* rng, int length) {
  static constexpr char kChars[] =
      "<>/=\"' \n\tabcxyz%~|()*+?#!ELEMENT:->startype";
  std::string result;
  for (int i = 0; i < length; ++i) {
    result += kChars[(*rng)() % (sizeof(kChars) - 1)];
  }
  return result;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, ParsersNeverCrashOnGarbage) {
  std::mt19937 rng(GetParam() * 2246822519u + 3266489917u);
  for (int round = 0; round < 50; ++round) {
    std::string input = Garbage(&rng, 1 + static_cast<int>(rng() % 120));
    Alphabet alphabet;
    (void)ParseXml(input, &alphabet);
    (void)ParseXmlDocument(input);
    (void)ParseSchema(input);
    (void)ParseSchemaNfa(input);
    (void)ParseDtd(input);
    (void)ImportXsd(input);
    Alphabet regex_alphabet;
    (void)ParseRegex(input, &regex_alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 10));

TEST(FuzzTest, TruncationsOfValidInputsFailCleanly) {
  const std::string schema =
      "start Lib\n"
      "type Lib : library -> Book*\n"
      "type Book : book -> %\n";
  for (size_t cut = 0; cut < schema.size(); ++cut) {
    (void)ParseSchema(schema.substr(0, cut));  // must not crash
  }
  const std::string xml = "<a x=\"1\"><b/><c/></a>";
  for (size_t cut = 0; cut < xml.size(); ++cut) {
    (void)ParseXmlDocument(xml.substr(0, cut));
  }
  const std::string dtd = "<!ELEMENT a (b | c)*><!ELEMENT b EMPTY>"
                          "<!ELEMENT c EMPTY>";
  for (size_t cut = 0; cut < dtd.size(); ++cut) {
    (void)ParseDtd(dtd.substr(0, cut));
  }
}

TEST(DotTest, RendersDfaAndNfa) {
  Alphabet alphabet({"a", "b"});
  Dfa dfa(2, 2);
  dfa.SetTransition(0, 0, 1);
  dfa.SetTransition(1, 1, 1);
  dfa.SetFinal(1);
  std::string dot = DfaToDot(dfa, &alphabet);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q0 -> q1 [label=\"a\"]"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);

  Nfa nfa(2, 2);
  nfa.AddInitial(0);
  nfa.AddTransition(0, 1, 0);
  nfa.AddTransition(0, 1, 1);
  nfa.SetFinal(1);
  std::string nfa_dot = NfaToDot(nfa);  // raw symbol ids
  EXPECT_NE(nfa_dot.find("q0 -> q1 [label=\"1\"]"), std::string::npos);
}

}  // namespace
}  // namespace stap
