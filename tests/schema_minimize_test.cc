// Unit tests for XSD minimization (the paper's reference [20]):
// uniqueness of the minimal DFA-based XSD and language preservation.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

TEST(MinimizeXsdTest, MergesEquivalentTypes) {
  // Two copies of the same a/c structure, reachable via different parents
  // (so the single-type property is kept).
  SchemaBuilder builder;
  builder.AddType("Root", "r", "P Q");
  builder.AddType("P", "p", "A1*");
  builder.AddType("Q", "q", "A2*");
  builder.AddType("A1", "a", "C1*");
  builder.AddType("A2", "a", "C2*");
  builder.AddType("C1", "c", "%");
  builder.AddType("C2", "c", "%");
  builder.AddStart("Root");
  Edtd edtd = builder.Build();
  ASSERT_TRUE(IsSingleType(edtd));
  DfaXsd minimized = MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(edtd)));
  // A1/A2 collapse, as do C1/C2: states r, p, q, a, c remain.
  EXPECT_EQ(minimized.type_size(), 5);
}

TEST(MinimizeXsdTest, PreservesLanguage) {
  SchemaBuilder builder;
  builder.AddType("Root", "r", "A B?");
  builder.AddType("A", "a", "C*");
  builder.AddType("B", "b", "C C?");
  builder.AddType("C", "c", "%");
  builder.AddStart("Root");
  Edtd edtd = ReduceEdtd(builder.Build());
  ASSERT_TRUE(IsSingleType(edtd));
  DfaXsd original = DfaXsdFromStEdtd(edtd);
  DfaXsd minimized = MinimizeXsd(original);
  for (const Tree& tree : EnumerateTrees({3, 2, 4})) {
    EXPECT_EQ(original.Accepts(tree), minimized.Accepts(tree))
        << tree.ToString(edtd.sigma);
  }
  EXPECT_LE(minimized.type_size(), original.type_size());
}

TEST(MinimizeXsdTest, CanonicalAcrossPresentations) {
  // Same language, different presentations (redundant content regex, an
  // orphan type): minimization converges to structurally equal results.
  SchemaBuilder b1;
  b1.AddType("R", "r", "A B?");
  b1.AddType("A", "a", "%");
  b1.AddType("B", "b", "%");
  b1.AddStart("R");

  SchemaBuilder b2;
  b2.AddType("R", "r", "A | A B");
  b2.AddType("A", "a", "~ | %");
  b2.AddType("B", "b", "%");
  b2.AddType("Orphan", "b", "Orphan");
  b2.AddStart("R");

  DfaXsd m1 = MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(b1.Build())));
  DfaXsd m2 = MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(b2.Build())));
  EXPECT_TRUE(XsdStructurallyEqual(m1, m2));
}

TEST(MinimizeXsdTest, EmptyLanguage) {
  SchemaBuilder builder;
  builder.AddType("R", "r", "R");
  builder.AddStart("R");
  Edtd reduced = ReduceEdtd(builder.Build());
  DfaXsd minimized = MinimizeXsd(DfaXsdFromStEdtd(reduced));
  EXPECT_EQ(minimized.type_size(), 0);
}

TEST(MinimizeStEdtdTest, RoundTrip) {
  SchemaBuilder builder;
  builder.AddType("R", "r", "X | Y");
  builder.AddType("X", "a", "%");
  builder.AddType("Y", "b", "%");
  builder.AddStart("R");
  Edtd edtd = builder.Build();
  Edtd minimized = MinimizeStEdtd(edtd);
  EXPECT_TRUE(SingleTypeEquivalent(edtd, minimized));
}

// Property sweep: for random single-type schemas, the minimized XSD is
// language-equivalent, no bigger, and canonical (minimizing twice is a
// fixpoint).
class MinimizeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeRandomTest, SoundCanonicalAndIdempotent) {
  std::mt19937 rng(GetParam() * 7919 + 13);
  RandomSchemaParams params;
  params.num_types = 6;
  Edtd edtd = RandomStEdtd(&rng, params);
  ASSERT_TRUE(IsSingleType(edtd));
  DfaXsd original = DfaXsdFromStEdtd(edtd);
  DfaXsd minimized = MinimizeXsd(original);
  EXPECT_LE(minimized.type_size(), original.type_size());
  EXPECT_TRUE(
      SingleTypeEquivalent(edtd, StEdtdFromDfaXsd(minimized)));
  EXPECT_TRUE(XsdStructurallyEqual(minimized, MinimizeXsd(minimized)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeRandomTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace stap
