// Differential tests for the hash-interned automata kernels: the
// production implementations (determinize, minimize, inclusion) must agree
// with the original std::map-based versions, which are embedded here as
// reference oracles. Determinize discovers subsets in the same order in
// both implementations, so the DFAs must match structurally; Minimize
// numbers Moore classes differently, so both sides are compared after
// canonical renumbering.
//
// Run with --seed=N (or STAP_SEED=N) to explore a different random
// stream; failures print the reproduction flag (see test_seed.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/automata/state_set_hash.h"
#include "stap/gen/random.h"
#include "test_seed.h"

namespace stap {
namespace {

// ---------------------------------------------------------------------
// Reference kernels: verbatim ports of the pre-interning implementations.
// ---------------------------------------------------------------------

Dfa MapDeterminize(const Nfa& nfa, std::vector<StateSet>* subsets = nullptr) {
  const int num_symbols = nfa.num_symbols();
  std::map<StateSet, int> ids;
  std::vector<StateSet> worklist;

  Dfa dfa(0, num_symbols);
  auto intern = [&](StateSet set) -> int {
    auto [it, inserted] = ids.emplace(std::move(set), dfa.num_states());
    if (inserted) {
      dfa.AddState();
      worklist.push_back(it->first);
      if (subsets != nullptr) subsets->push_back(it->first);
    }
    return it->second;
  };

  int start = intern(nfa.initial());
  dfa.SetInitial(start);

  size_t processed = 0;
  while (processed < worklist.size()) {
    StateSet current = worklist[processed];
    int current_id = ids.at(current);
    ++processed;
    for (int q : current) {
      if (nfa.IsFinal(q)) {
        dfa.SetFinal(current_id);
        break;
      }
    }
    for (int a = 0; a < num_symbols; ++a) {
      int next_id = intern(nfa.Next(current, a));
      dfa.SetTransition(current_id, a, next_id);
    }
  }
  return dfa;
}

Dfa MapCanonicalizeNumbering(const Dfa& dfa) {
  const int num_symbols = dfa.num_symbols();
  std::vector<int> remap(dfa.num_states(), kNoState);
  std::vector<int> order;
  std::deque<int> queue = {dfa.initial()};
  remap[dfa.initial()] = 0;
  order.push_back(dfa.initial());
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int a = 0; a < num_symbols; ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState && remap[r] == kNoState) {
        remap[r] = static_cast<int>(order.size());
        order.push_back(r);
        queue.push_back(r);
      }
    }
  }
  Dfa result(static_cast<int>(order.size()), num_symbols);
  result.SetInitial(0);
  for (int q : order) {
    if (dfa.IsFinal(q)) result.SetFinal(remap[q]);
    for (int a = 0; a < num_symbols; ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState && remap[r] != kNoState) {
        result.SetTransition(remap[q], a, remap[r]);
      }
    }
  }
  return result;
}

Dfa MapMinimize(const Dfa& input) {
  Dfa dfa = input.Trimmed().Completed();
  const int n = dfa.num_states();
  const int num_symbols = dfa.num_symbols();

  std::vector<int> classes(n);
  for (int q = 0; q < n; ++q) classes[q] = dfa.IsFinal(q) ? 1 : 0;

  int num_classes = 2;
  while (true) {
    std::map<std::vector<int>, int> signature_ids;
    std::vector<int> next_classes(n);
    for (int q = 0; q < n; ++q) {
      std::vector<int> signature;
      signature.reserve(num_symbols + 1);
      signature.push_back(classes[q]);
      for (int a = 0; a < num_symbols; ++a) {
        signature.push_back(classes[dfa.Next(q, a)]);
      }
      auto [it, inserted] =
          signature_ids.emplace(std::move(signature), signature_ids.size());
      next_classes[q] = it->second;
    }
    int next_num_classes = static_cast<int>(signature_ids.size());
    classes = std::move(next_classes);
    if (next_num_classes == num_classes) break;
    num_classes = next_num_classes;
  }

  Dfa quotient(num_classes, num_symbols);
  quotient.SetInitial(classes[dfa.initial()]);
  for (int q = 0; q < n; ++q) {
    if (dfa.IsFinal(q)) quotient.SetFinal(classes[q]);
    for (int a = 0; a < num_symbols; ++a) {
      quotient.SetTransition(classes[q], a, classes[dfa.Next(q, a)]);
    }
  }

  Dfa trimmed = quotient.Trimmed();
  if (trimmed.IsEmpty()) return Dfa::EmptyLanguage(num_symbols);
  return MapCanonicalizeNumbering(trimmed);
}

std::optional<Word> MapSearchCounterexample(const Nfa& nfa, const Dfa& dfa_in) {
  const Dfa dfa = dfa_in.Completed();
  const int num_symbols = nfa.num_symbols();

  auto nfa_accepts = [&](const StateSet& set) {
    return std::any_of(set.begin(), set.end(),
                       [&](int q) { return nfa.IsFinal(q); });
  };

  using Pair = std::pair<StateSet, int>;
  std::map<Pair, int> ids;
  std::vector<Pair> nodes;
  std::vector<int> parent;
  std::vector<int> via_symbol;
  std::deque<int> queue;

  auto intern = [&](StateSet set, int dfa_state, int from, int symbol) -> int {
    auto [it, inserted] =
        ids.emplace(Pair(std::move(set), dfa_state), nodes.size());
    if (inserted) {
      nodes.push_back(it->first);
      parent.push_back(from);
      via_symbol.push_back(symbol);
      queue.push_back(it->second);
    }
    return it->second;
  };

  intern(nfa.initial(), dfa.initial(), -1, kNoSymbol);
  while (!queue.empty()) {
    int id = queue.front();
    queue.pop_front();
    const auto [set, dfa_state] = nodes[id];
    if (nfa_accepts(set) && !dfa.IsFinal(dfa_state)) {
      Word word;
      for (int cur = id; parent[cur] >= 0; cur = parent[cur]) {
        word.push_back(via_symbol[cur]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (int sym = 0; sym < num_symbols; ++sym) {
      StateSet next_set = nfa.Next(set, sym);
      if (next_set.empty()) continue;
      intern(std::move(next_set), dfa.Next(dfa_state, sym), id, sym);
    }
  }
  return std::nullopt;
}

bool MapNfaIncludedInNfa(const Nfa& a, const Nfa& b) {
  const int num_symbols = a.num_symbols();
  std::map<std::pair<StateSet, StateSet>, bool> seen;
  std::vector<std::pair<StateSet, StateSet>> worklist;
  auto visit = [&](StateSet sa, StateSet sb) {
    auto [it, inserted] =
        seen.emplace(std::make_pair(std::move(sa), std::move(sb)), true);
    if (inserted) worklist.push_back(it->first);
  };
  visit(a.initial(), b.initial());
  auto accepts = [](const Nfa& nfa, const StateSet& set) {
    for (int q : set) {
      if (nfa.IsFinal(q)) return true;
    }
    return false;
  };
  size_t processed = 0;
  while (processed < worklist.size()) {
    auto [sa, sb] = worklist[processed];
    ++processed;
    if (accepts(a, sa) && !accepts(b, sb)) return false;
    for (int sym = 0; sym < num_symbols; ++sym) {
      StateSet next_a = a.Next(sa, sym);
      if (next_a.empty()) continue;
      visit(std::move(next_a), b.Next(sb, sym));
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Differential properties over random NFAs.
// ---------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, DeterminizeMatchesMapReference) {
  std::mt19937 rng(test::MixSeed(GetParam() * 2654435761ull + 97));
  for (int round = 0; round < 20; ++round) {
    int n = 2 + round % 14;
    int sym = 2 + round % 4;
    Nfa nfa = RandomNfa(&rng, n, sym, 2 + round % 3);
    std::vector<StateSet> subsets;
    std::vector<StateSet> map_subsets;
    Dfa hashed = Determinize(nfa, &subsets);
    Dfa reference = MapDeterminize(nfa, &map_subsets);
    // Both implementations assign subset ids in discovery order (BFS over
    // ids, symbols ascending), so the results agree structurally.
    EXPECT_EQ(hashed, reference);
    EXPECT_EQ(subsets, map_subsets);
  }
}

TEST_P(DifferentialTest, MinimizeMatchesMapReference) {
  std::mt19937 rng(test::MixSeed(GetParam() * 40503ull + 2166136261ull));
  for (int round = 0; round < 20; ++round) {
    Nfa nfa = RandomNfa(&rng, 2 + round % 12, 2 + round % 3);
    Dfa dfa = Determinize(nfa);
    // Both sides end in a canonical BFS numbering, so structural equality
    // is language equality here.
    EXPECT_EQ(Minimize(dfa), MapMinimize(dfa));
  }
}

TEST_P(DifferentialTest, InclusionAgreesWithMapReference) {
  std::mt19937 rng(test::MixSeed(GetParam() * 314159ull + 2718281));
  for (int round = 0; round < 20; ++round) {
    int sym = 2 + round % 3;
    Nfa a = RandomNfa(&rng, 2 + round % 10, sym);
    Nfa b = RandomNfa(&rng, 2 + round % 8, sym);
    EXPECT_EQ(NfaIncludedInNfa(a, b), MapNfaIncludedInNfa(a, b));

    Dfa dfa = Determinize(b);
    std::optional<Word> witness = NfaDfaInclusionCounterexample(a, dfa);
    std::optional<Word> reference = MapSearchCounterexample(a, dfa);
    ASSERT_EQ(witness.has_value(), reference.has_value());
    if (witness.has_value()) {
      // Both searches are breadth-first, so they agree on the length of a
      // shortest counterexample (the words themselves may differ when the
      // BFS layers are visited in different orders).
      EXPECT_EQ(witness->size(), reference->size());
      EXPECT_TRUE(a.Accepts(*witness));
      EXPECT_FALSE(dfa.Accepts(*witness));
    }
    EXPECT_EQ(NfaIncludedInDfa(a, dfa), !witness.has_value());

    // A strict superset of `a` makes inclusion hold, forcing both
    // searches through the whole reachable pair space (no early exit).
    Nfa superset = a;
    superset.SetFinal(0);
    for (int q = 0; q < superset.num_states(); ++q) {
      superset.AddTransition(q, q % sym, (q + 1) % superset.num_states());
    }
    EXPECT_TRUE(NfaIncludedInNfa(a, superset));
    EXPECT_TRUE(MapNfaIncludedInNfa(a, superset));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// StateSetInterner unit tests.
// ---------------------------------------------------------------------

TEST(StateSetInternerTest, DedupesAndKeepsStableIds) {
  StateSetInterner interner;
  auto [id0, new0] = interner.Intern(StateSet{1, 2, 3});
  auto [id1, new1] = interner.Intern(StateSet{});
  auto [id2, new2] = interner.Intern(StateSet{1, 2, 3});
  EXPECT_TRUE(new0);
  EXPECT_TRUE(new1);
  EXPECT_FALSE(new2);
  EXPECT_EQ(id0, 0);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(id2, id0);
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner[0], (StateSet{1, 2, 3}));
  EXPECT_TRUE(interner[1].empty());
}

TEST(StateSetInternerTest, ReferencesSurviveTableGrowth) {
  StateSetInterner interner;
  interner.Intern(StateSet{7});
  const StateSet& first = interner[0];
  // Push well past the initial table size to force several rehashes.
  for (int i = 0; i < 500; ++i) {
    auto [id, inserted] = interner.Intern(StateSet{i, i + 1000});
    EXPECT_TRUE(inserted);
    EXPECT_EQ(id, i + 1);
  }
  EXPECT_EQ(first, (StateSet{7}));  // deque storage: no reallocation
  for (int i = 0; i < 500; ++i) {
    auto [id, inserted] = interner.Intern(StateSet{i, i + 1000});
    EXPECT_FALSE(inserted);
    EXPECT_EQ(id, i + 1);
  }
}

TEST(StateSetInternerTest, MoveSetsIntoPreservesIdOrder) {
  StateSetInterner interner;
  interner.Intern(StateSet{3});
  interner.Intern(StateSet{1, 4});
  interner.Intern(StateSet{1, 5, 9});
  std::vector<StateSet> sets;
  interner.MoveSetsInto(&sets);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (StateSet{3}));
  EXPECT_EQ(sets[1], (StateSet{1, 4}));
  EXPECT_EQ(sets[2], (StateSet{1, 5, 9}));
}

TEST(StateSetHashTest, OrderSensitiveAndConsistent) {
  IntVectorHash hash;
  std::vector<int> v1 = {1, 2, 3};
  std::vector<int> v2 = {1, 2, 3};
  std::vector<int> v3 = {3, 2, 1};
  EXPECT_EQ(hash(v1), hash(v2));
  EXPECT_NE(hash(v1), hash(v3));  // astronomically unlikely to collide
  EXPECT_NE(hash(std::vector<int>{}), hash(std::vector<int>{0}));
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
