// Tests for the trace layer (base/trace.h): disabled sessions record
// nothing, begin/end events balance per thread — including under a
// concurrent ParallelFor — args round-trip with their types, the Chrome
// JSON export is well-formed, the phase-table rollup aggregates by
// (depth, name), and worker threads appear under their stable names.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/base/metrics.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/regex/ast.h"
#include "stap/regex/glushkov.h"

namespace stap {
namespace {

// Minimal JSON well-formedness check: string/escape discipline plus
// bracket balance outside strings. Not a grammar check, but it rejects
// everything a broken escaper or unbalanced emitter would produce.
bool JsonWellFormed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control byte inside a string
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

// Per-thread B/E discipline: every end matches an open begin, nothing
// stays open, and timestamps never run backwards within the thread.
void ExpectBalanced(const TraceSession::ThreadTrace& thread) {
  int depth = 0;
  int64_t last_ts = 0;
  for (const TraceEvent& event : thread.events) {
    EXPECT_GE(event.ts_us, last_ts) << "thread " << thread.tid;
    last_ts = event.ts_us;
    if (event.phase == 'B') {
      ++depth;
    } else {
      ASSERT_EQ(event.phase, 'E');
      ASSERT_GT(depth, 0) << "end without begin on thread " << thread.tid;
      --depth;
    }
  }
  EXPECT_EQ(depth, 0) << "unclosed span on thread " << thread.tid;
}

TEST(TraceTest, DisabledSessionRecordsNothing) {
  ASSERT_EQ(ActiveTraceSession(), nullptr);
  {
    ScopedSpan span("ignored");
    EXPECT_FALSE(span.active());
    span.AddArg("n", 42);
    span.End();
  }
  TraceSession session;
  EXPECT_FALSE(session.active());
  EXPECT_TRUE(session.Snapshot().empty());
  // The never-started session still exports an empty, valid document.
  EXPECT_TRUE(JsonWellFormed(session.ToChromeJson()));
  EXPECT_TRUE(session.PhaseTable().empty());
}

TEST(TraceTest, SpansBalanceAndNest) {
  TraceSession session;
  session.Start();
  EXPECT_TRUE(session.active());
  {
    ScopedSpan outer("outer");
    EXPECT_TRUE(outer.active());
    { ScopedSpan inner("inner"); }
    { ScopedSpan inner("inner"); }
  }
  session.Stop();
  EXPECT_FALSE(session.active());

  std::vector<TraceSession::ThreadTrace> threads = session.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ExpectBalanced(threads[0]);
  ASSERT_EQ(threads[0].events.size(), 6u);
  EXPECT_EQ(threads[0].events[0].name, "outer");
  EXPECT_EQ(threads[0].events[1].name, "inner");
}

TEST(TraceTest, EndIsIdempotentAndSurvivesStop) {
  TraceSession session;
  session.Start();
  {
    ScopedSpan span("crosses-stop");
    ScopedSpan early("ended-early");
    early.End();
    early.End();  // second End is a no-op
    session.Stop();
    // `span` still ends into the session it bound at construction, so
    // the recording stays balanced even though the session stopped.
  }
  std::vector<TraceSession::ThreadTrace> threads = session.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ExpectBalanced(threads[0]);
  EXPECT_EQ(threads[0].events.size(), 4u);
}

TEST(TraceTest, ArgsRoundTripWithTheirTypes) {
  TraceSession session;
  session.Start();
  {
    ScopedSpan span("args");
    span.AddArg("states", int64_t{1} << 40);
    span.AddArg("small", 7);
    span.AddArg("sizes", size_t{9});
    span.AddArg("ratio", 0.25);
    span.AddArg("label", std::string("a\"b\\c\nd"));
  }
  session.Stop();

  std::vector<TraceSession::ThreadTrace> threads = session.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 2u);
  const TraceEvent& end = threads[0].events[1];
  ASSERT_EQ(end.args.size(), 5u);
  EXPECT_EQ(std::get<int64_t>(end.args[0].second), int64_t{1} << 40);
  EXPECT_EQ(std::get<int64_t>(end.args[1].second), 7);
  EXPECT_EQ(std::get<int64_t>(end.args[2].second), 9);
  EXPECT_DOUBLE_EQ(std::get<double>(end.args[3].second), 0.25);
  EXPECT_EQ(std::get<std::string>(end.args[4].second), "a\"b\\c\nd");

  // The JSON stays well-formed with the hostile string arg, keeps
  // integers as numbers, and escapes the string.
  std::string json = session.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"states\":1099511627776"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(TraceTest, ChromeJsonHasHeaderAndThreadMetadata) {
  TraceSession session;
  session.Start();
  { ScopedSpan span("solo"); }
  session.Stop();
  std::string json = session.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stap\""), std::string::npos);
}

TEST(TraceTest, ConcurrentParallelForStaysBalancedPerThread) {
  TraceSession session;
  std::atomic<int64_t> sum{0};
  {
    // Pool scoped so every worker has joined — and flushed its buffered
    // events — before the snapshot reads the buffers.
    ThreadPool pool(4);
    session.Start();
    for (int round = 0; round < 4; ++round) {
      ScopedSpan round_span("round");
      pool.ParallelFor(64, [&](int i) {
        ScopedSpan task("task");
        task.AddArg("i", i);
        sum.fetch_add(i, std::memory_order_relaxed);
        // Slow enough that the caller cannot drain the whole range
        // before the workers wake up and claim chunks of their own.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
    }
    session.Stop();
  }
  EXPECT_EQ(sum.load(), 4 * (64 * 63) / 2);

  int64_t tasks = 0;
  bool saw_worker = false;
  for (const TraceSession::ThreadTrace& thread : session.Snapshot()) {
    ExpectBalanced(thread);
    // Every recording thread is the caller or a named pool worker.
    if (thread.thread_name.rfind("stap-worker-", 0) == 0) saw_worker = true;
    for (const TraceEvent& event : thread.events) {
      if (event.phase == 'B' && event.name == "task") ++tasks;
    }
  }
  EXPECT_EQ(tasks, 4 * 64);
  EXPECT_TRUE(saw_worker);
}

TEST(TraceTest, ThreadNamesLabelTheTracks) {
  TraceSession session;
  session.Start();
  std::thread worker([&] {
    SetCurrentThreadName("trace-test-thread");
    EXPECT_EQ(CurrentThreadName(), "trace-test-thread");
    ScopedSpan span("named");
  });
  worker.join();
  session.Stop();

  bool found = false;
  for (const TraceSession::ThreadTrace& thread : session.Snapshot()) {
    if (thread.thread_name == "trace-test-thread") found = true;
  }
  EXPECT_TRUE(found);
  std::string json = session.ToChromeJson();
  EXPECT_NE(json.find("\"name\":\"trace-test-thread\""), std::string::npos);
}

TEST(TraceTest, PhaseTableAggregatesByDepthAndName) {
  TraceSession session;
  session.Start();
  for (int i = 0; i < 3; ++i) {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
    inner.AddArg("n", 2);
    ScopedSpan deep("deep");  // depth 2: folded out at the default depth
  }
  session.Stop();

  std::vector<TraceSession::PhaseRow> rows = session.PhaseTable();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "outer");
  EXPECT_EQ(rows[0].depth, 0);
  EXPECT_EQ(rows[0].count, 3);
  EXPECT_EQ(rows[1].name, "inner");
  EXPECT_EQ(rows[1].depth, 1);
  EXPECT_EQ(rows[1].count, 3);
  ASSERT_EQ(rows[1].int_args.size(), 1u);
  EXPECT_EQ(rows[1].int_args[0].first, "n");
  EXPECT_EQ(rows[1].int_args[0].second, 6);  // summed across the 3 spans

  // Deeper cutoffs surface the folded span; the rendering mentions every
  // visible row.
  EXPECT_EQ(session.PhaseTable(/*max_depth=*/3).size(), 3u);
  EXPECT_EQ(session.PhaseTable(/*max_depth=*/1).size(), 1u);
  std::string table = TraceSession::FormatPhaseTable(rows);
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("  inner"), std::string::npos);
  EXPECT_NE(table.find("n=6"), std::string::npos);
}

TEST(TraceTest, DeterminizeSpanMatchesTheMetricsRegistry) {
  // The provenance contract behind `stap explain`: the span's
  // states_created arg equals the registry counter's delta for the same
  // call, so the phase table can be cross-checked against the metrics.
  RegexPtr ab = Regex::Union({Regex::Symbol(0), Regex::Symbol(1)});
  std::vector<RegexPtr> parts;
  parts.push_back(Regex::Star(ab));
  parts.push_back(Regex::Symbol(0));
  for (int i = 0; i < 5; ++i) parts.push_back(ab);
  Nfa nfa = GlushkovAutomaton(*Regex::Concat(std::move(parts)),
                              /*num_symbols=*/2);

  Counter* const states = GetCounter("determinize.states_created");
  const int64_t before = states->value();
  TraceSession session;
  session.Start();
  Dfa dfa = Determinize(nfa);
  session.Stop();
  const int64_t registry_delta = states->value() - before;
  EXPECT_EQ(registry_delta, dfa.num_states());

  std::vector<TraceSession::PhaseRow> rows = session.PhaseTable();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "determinize");
  int64_t span_states = 0;
  for (const auto& [key, value] : rows[0].int_args) {
    if (key == "states_created") span_states = value;
  }
  EXPECT_EQ(span_states, registry_delta);
}

}  // namespace
}  // namespace stap
