// Tests for the paper's lower-bound families (gen/families.h): languages
// are what the proofs describe, and the non-uniqueness phenomena of
// Theorems 4.3 / 4.11 reproduce.
#include <gtest/gtest.h>

#include "stap/approx/closure.h"
#include "stap/approx/inclusion.h"
#include "stap/approx/upper_boolean.h"
#include "stap/count/counter.h"
#include "stap/gen/families.h"
#include "stap/regex/parser.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

int CountLabel(const Tree& tree, int label) {
  int count = tree.label == label ? 1 : 0;
  for (const Tree& child : tree.children) count += CountLabel(child, label);
  return count;
}

TEST(UnaryEdtdTest, WordsBecomeChains) {
  Alphabet sigma({"a", "b"});
  StatusOr<RegexPtr> regex = ParseRegex("a b* a", &sigma, false);
  ASSERT_TRUE(regex.ok());
  Edtd edtd = UnaryEdtdFromRegex(**regex, sigma);
  EXPECT_TRUE(edtd.Accepts(Tree::Unary({0, 0})));
  EXPECT_TRUE(edtd.Accepts(Tree::Unary({0, 1, 1, 0})));
  EXPECT_FALSE(edtd.Accepts(Tree::Unary({0, 1})));
  EXPECT_FALSE(edtd.Accepts(Tree(0, {Tree(0), Tree(0)})));  // branching
}

TEST(Theorem32FamilyTest, LanguageMatchesTheRegex) {
  const int n = 2;
  Edtd edtd = Theorem32Family(n);
  int a = edtd.sigma.Find("a");
  for (const Tree& tree : EnumerateTrees({5, 1, 2})) {
    // Unary chains only; member iff symbol n+1 from the end is a.
    Word word = tree.AncestorString(
        TreePath(static_cast<size_t>(tree.Depth() - 1), 0));
    bool expected = tree.Depth() >= n + 1 &&
                    word[word.size() - 1 - n] == a;
    EXPECT_EQ(edtd.Accepts(tree), expected) << tree.ToString(edtd.sigma);
  }
}

TEST(Theorem36FamilyTest, CountsHeavyLabels) {
  const int n = 2;
  auto [d1, d2] = Theorem36Family(n);
  int a = d1.sigma.Find("a");
  int b = d2.sigma.Find("b");
  for (const Tree& tree : EnumerateTrees({4, 1, 2})) {
    EXPECT_EQ(d1.Accepts(tree), CountLabel(tree, a) <= n)
        << tree.ToString(d1.sigma);
    EXPECT_EQ(d2.Accepts(tree), CountLabel(tree, b) <= n)
        << tree.ToString(d2.sigma);
  }
  EXPECT_TRUE(IsSingleType(d1));
  EXPECT_TRUE(IsSingleType(d2));
}

TEST(Theorem38FamilyTest, ChainsOfPrimePeriod) {
  auto [d1, d2] = Theorem38Family(2);  // p1 = 3, p2 = 5
  EXPECT_EQ(ReduceEdtd(d1).num_types(), 3);
  EXPECT_EQ(ReduceEdtd(d2).num_types(), 5);
  EXPECT_TRUE(d1.Accepts(Tree::Unary(Word(3, 0))));
  EXPECT_TRUE(d1.Accepts(Tree::Unary(Word(6, 0))));
  EXPECT_FALSE(d1.Accepts(Tree::Unary(Word(4, 0))));
  EXPECT_TRUE(d2.Accepts(Tree::Unary(Word(5, 0))));
  EXPECT_FALSE(d2.Accepts(Tree::Unary(Word(3, 0))));
}

TEST(Theorem43FamilyTest, SchemasAndTheXnLadder) {
  auto [d1, d2] = Theorem43Schemas();
  int a = d1.sigma.Find("a"), b = d1.sigma.Find("b");
  // D1: chains a^m b, m >= 1.
  EXPECT_TRUE(d1.Accepts(Tree(a, {Tree(b)})));
  EXPECT_TRUE(d1.Accepts(Tree::Unary({a, a, a, b})));
  EXPECT_FALSE(d1.Accepts(Tree(b)));
  EXPECT_FALSE(d1.Accepts(Tree(a)));
  // D2: a-trees of rank <= 2.
  int a2 = d2.sigma.Find("a");
  EXPECT_TRUE(d2.Accepts(Tree(a2)));
  EXPECT_TRUE(d2.Accepts(Tree(a2, {Tree(a2), Tree(a2)})));
  EXPECT_FALSE(d2.Accepts(
      Tree(a2, {Tree(a2), Tree(a2), Tree(a2)})));

  // X_n: single-type lower bounds of the union, pairwise distinct
  // (L(X_n) ∩ L(D1) = { a^m b : m <= n }).
  for (int n = 1; n <= 3; ++n) {
    Edtd xn = Theorem43LowerApproximation(n);
    EXPECT_TRUE(IsSingleType(xn));
    int xa = xn.sigma.Find("a"), xb = xn.sigma.Find("b");
    Word chain(static_cast<size_t>(n), xa);
    chain.push_back(xb);
    EXPECT_TRUE(xn.Accepts(Tree::Unary(chain))) << "n=" << n;
    Word too_long(static_cast<size_t>(n + 1), xa);
    too_long.push_back(xb);
    EXPECT_FALSE(xn.Accepts(Tree::Unary(too_long))) << "n=" << n;
  }
}

TEST(Theorem43FamilyTest, XnIsALowerBoundOfTheUnion) {
  auto [d1, d2] = Theorem43Schemas();
  for (int n = 1; n <= 3; ++n) {
    Edtd xn = Theorem43LowerApproximation(n);
    auto [x, u1] = AlignAlphabets(xn, d1);
    auto [unused, u2] = AlignAlphabets(xn, d2);
    (void)unused;
    for (const Tree& tree : EnumerateTrees({4, 2, 2})) {
      if (x.Accepts(tree)) {
        EXPECT_TRUE(u1.Accepts(tree) || u2.Accepts(tree))
            << "n=" << n << " " << tree.ToString(x.sigma);
      }
    }
  }
}

TEST(Theorem43FamilyTest, ExtendingXnEscapesTheUnion) {
  // The proof's argument: for any tree t in the union but outside X_n,
  // closure(L(X_n) ∪ {t}) leaves the union. Reproduce with the proof's
  // witness t = a^(n+1) b against the member a^n(a, a).
  const int n = 2;
  auto [d1, d2] = Theorem43Schemas();
  Edtd xn = Theorem43LowerApproximation(n);
  int a = xn.sigma.Find("a"), b = xn.sigma.Find("b");

  Word deep_chain(static_cast<size_t>(n + 1), a);
  deep_chain.push_back(b);
  Tree t = Tree::Unary(deep_chain);  // in L(D1), not in L(X_n)
  ASSERT_TRUE(AlignAlphabets(d1, xn).first.Accepts(t));
  ASSERT_FALSE(xn.Accepts(t));

  // a^n(a, a) ∈ L(X_n).
  Tree branching = Tree(a, {Tree(a), Tree(a)});
  for (int i = 1; i < n; ++i) branching = Tree(a, {branching});
  ASSERT_TRUE(xn.Accepts(branching));

  ClosureResult closure = CloseUnderExchange({t, branching});
  ASSERT_TRUE(closure.saturated);
  Edtd u1 = AlignAlphabets(xn, d1).second;
  Edtd u2 = AlignAlphabets(xn, d2).second;
  std::optional<Tree> escape = FindEscape(closure, [&](const Tree& tree) {
    return !u1.Accepts(tree) && !u2.Accepts(tree);
  });
  EXPECT_TRUE(escape.has_value());
}

TEST(Theorem411FamilyTest, LadderOfLowerApproximations) {
  Edtd dtd = Theorem411Dtd();
  int a = dtd.sigma.Find("a");
  // Complement membership = "some node has >= 2 children".
  auto in_complement = [&](const Tree& tree) {
    return !dtd.Accepts(tree);
  };
  for (int n = 1; n <= 3; ++n) {
    Edtd xn = Theorem411LowerApproximation(n);
    EXPECT_TRUE(IsSingleType(xn));
    // Every member branches somewhere (lower bound of the complement).
    for (const Tree& tree : EnumerateTrees({4, 2, 1})) {
      if (xn.Accepts(tree)) {
        EXPECT_TRUE(in_complement(tree)) << "n=" << n;
      }
    }
    // Distinctness witness t_{n+1} = chain of depth n with (a, a) at the
    // bottom: accepted by X_n only.
    Tree witness(a, {Tree(a), Tree(a)});
    for (int i = 1; i < n; ++i) witness = Tree(a, {witness});
    EXPECT_TRUE(xn.Accepts(witness)) << "n=" << n;
    if (n >= 2) {
      EXPECT_FALSE(
          Theorem411LowerApproximation(n - 1).Accepts(witness));
    }
  }
}

// doc(header, item(field^fields)^items [, footer]) — the only tree shape
// CountedFamily accepts, parameterized by the counted bounds.
Tree CountedDoc(const Edtd& edtd, int items, int fields, bool footer) {
  int doc = edtd.sigma.Find("doc"), header = edtd.sigma.Find("header");
  int item = edtd.sigma.Find("item"), field = edtd.sigma.Find("field");
  std::vector<Tree> children;
  children.push_back(Tree(header));
  for (int i = 0; i < items; ++i) {
    children.push_back(
        Tree(item, std::vector<Tree>(fields, Tree(field))));
  }
  if (footer) children.push_back(Tree(edtd.sigma.Find("footer")));
  return Tree(doc, std::move(children));
}

TEST(CountedFamilyTest, HonorsTheOccurrenceBounds) {
  Edtd edtd = CountedFamily(2, 4);
  for (int items = 0; items <= 6; ++items) {
    for (bool footer : {false, true}) {
      bool expected = items >= 2 && items <= 4;
      EXPECT_EQ(edtd.Accepts(CountedDoc(edtd, items, 1, footer)), expected)
          << items << " items, footer=" << footer;
      EXPECT_EQ(edtd.Accepts(CountedDoc(edtd, items, 3, footer)), expected)
          << items << " items, footer=" << footer;
    }
  }
  // Field counts outside 1..3 break the inner counted bound.
  EXPECT_FALSE(edtd.Accepts(CountedDoc(edtd, 2, 0, false)));
  EXPECT_FALSE(edtd.Accepts(CountedDoc(edtd, 2, 4, false)));
}

TEST(CountedFamilyTest, RecordsRepeatProvenance) {
  Edtd edtd = CountedFamily(1, 2);
  ASSERT_EQ(edtd.content_source.size(),
            static_cast<size_t>(edtd.num_types()));
  const RegexPtr& doc_source =
      edtd.content_source[edtd.types.Find("Doc")];
  ASSERT_NE(doc_source, nullptr);
  EXPECT_TRUE(doc_source->ContainsRepeat());
  const RegexPtr& item_source =
      edtd.content_source[edtd.types.Find("Item")];
  ASSERT_NE(item_source, nullptr);
  EXPECT_TRUE(item_source->ContainsRepeat());
}

TEST(CountedFamilyTest, SliceCountMatchesClosedForm) {
  // CountedFamily(1, 2) at depth 3, width >= 4: the doc node carries a
  // header, k ∈ {1, 2} items of 1..3 fields each, and an optional
  // footer — (3 + 3²) × 2 = 24 documents.
  Edtd edtd = CountedFamily(1, 2);
  CountBounds bounds;
  bounds.max_depth = 3;
  bounds.max_width = 4;
  StatusOr<std::vector<CountValue>> counts =
      CountEdtdByDepth(edtd, bounds, nullptr);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)[0].ToString(), "0");  // a bare doc is invalid
  EXPECT_EQ((*counts)[1].ToString(), "0");  // items need fields
  EXPECT_EQ((*counts)[2].ToString(), "24");
}

TEST(Example26Test, MatchesThePaper) {
  Edtd edtd = Example26Edtd();
  EXPECT_EQ(edtd.num_types(), 3);
  EXPECT_EQ(edtd.start_types.size(), 1u);
  int a = edtd.sigma.Find("a"), b = edtd.sigma.Find("b");
  // τ1 -> τ1 + τ2¹: an a-chain ending in b(b...(b)).
  EXPECT_TRUE(edtd.Accepts(Tree::Unary({a, a, b})));
  EXPECT_TRUE(edtd.Accepts(Tree::Unary({a, b, b, b})));
  EXPECT_TRUE(edtd.Accepts(Tree::Unary({a, b, b, a, b})));
  EXPECT_FALSE(edtd.Accepts(Tree(a)));
  EXPECT_FALSE(edtd.Accepts(Tree(b)));
}

}  // namespace
}  // namespace stap
