// Tests for the Section 5 machinery: EDTD(NFA) schemas, Lemma 5.1's
// inclusion test, and the BKW one-unambiguous-language decision.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/automata/inclusion.h"
#include "stap/gen/random.h"
#include "stap/regex/bkw.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"
#include "stap/schema/nfa_schema.h"
#include "stap/schema/reduce.h"
#include "stap/schema/text_format.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

constexpr const char* kNfaFriendly = R"(
start Root
type Root : r -> (A | B)* A
type A    : a -> %
type B    : b -> %
)";

TEST(NfaSchemaTest, ParseAndAccept) {
  StatusOr<EdtdNfa> schema = ParseSchemaNfa(kNfaFriendly);
  ASSERT_TRUE(schema.ok()) << schema.status();
  int r = schema->sigma.Find("r"), a = schema->sigma.Find("a"),
      b = schema->sigma.Find("b");
  EXPECT_TRUE(schema->Accepts(Tree(r, {Tree(a)})));
  EXPECT_TRUE(schema->Accepts(Tree(r, {Tree(b), Tree(a), Tree(a)})));
  EXPECT_FALSE(schema->Accepts(Tree(r, {Tree(a), Tree(b)})));
  EXPECT_FALSE(schema->Accepts(Tree(r)));
  EXPECT_FALSE(schema->Accepts(Tree(a)));
}

TEST(NfaSchemaTest, DeterminizedAgrees) {
  StatusOr<EdtdNfa> schema = ParseSchemaNfa(kNfaFriendly);
  ASSERT_TRUE(schema.ok());
  Edtd determinized = schema->Determinized();
  for (const Tree& tree : EnumerateTrees({2, 3, 3})) {
    EXPECT_EQ(schema->Accepts(tree), determinized.Accepts(tree))
        << tree.ToString(schema->sigma);
  }
}

TEST(NfaSchemaTest, AgreesWithDfaParseSemantics) {
  StatusOr<EdtdNfa> nfa_schema = ParseSchemaNfa(kNfaFriendly);
  StatusOr<Edtd> dfa_schema = ParseSchema(kNfaFriendly);
  ASSERT_TRUE(nfa_schema.ok());
  ASSERT_TRUE(dfa_schema.ok());
  for (const Tree& tree : EnumerateTrees({2, 3, 3})) {
    EXPECT_EQ(nfa_schema->Accepts(tree), dfa_schema->Accepts(tree));
  }
}

TEST(NfaSchemaTest, SingleTypeTestMatchesDfaVariant) {
  StatusOr<EdtdNfa> st = ParseSchemaNfa(kNfaFriendly);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(IsSingleTypeNfa(*st));
  StatusOr<EdtdNfa> not_st = ParseSchemaNfa(
      "start Root\n"
      "type Root : r -> A1 | A2\n"
      "type A1 : a -> %\n"
      "type A2 : a -> A1?\n");
  ASSERT_TRUE(not_st.ok());
  EXPECT_FALSE(IsSingleTypeNfa(*not_st));
}

TEST(NfaSchemaTest, Lemma51InclusionAgreesWithLemma33) {
  // Same instances through both pipelines: NFA contents (Lemma 5.1) and
  // determinized contents (Lemma 3.3).
  const char* sub = R"(
start Root
type Root : r -> A A
type A    : a -> %
)";
  const char* super = R"(
start Root
type Root : r -> (A | B)* A | %
type A    : a -> %
type B    : b -> %
)";
  StatusOr<EdtdNfa> small_nfa = ParseSchemaNfa(sub);
  StatusOr<EdtdNfa> big_nfa = ParseSchemaNfa(super);
  ASSERT_TRUE(small_nfa.ok());
  ASSERT_TRUE(big_nfa.ok());
  // Align by construction: parse the small schema against the super
  // schema's alphabet order instead.
  const char* sub_aligned = R"(
start Root
type Root : r -> A A
type A    : a -> %
type B    : b -> ~
)";
  StatusOr<EdtdNfa> small2 = ParseSchemaNfa(sub_aligned);
  ASSERT_TRUE(small2.ok());
  ASSERT_TRUE(small2->sigma == big_nfa->sigma);
  EXPECT_TRUE(IncludedInSingleTypeNfa(*small2, *big_nfa));
  EXPECT_FALSE(IncludedInSingleTypeNfa(*big_nfa, *small2));
  // Cross-check through the DFA pipeline.
  EXPECT_TRUE(IncludedInSingleType(ReduceEdtd(small2->Determinized()),
                                   big_nfa->Determinized()));
}

TEST(NfaInclusionTest, NfaIncludedInNfaBasics) {
  Alphabet alphabet({"a", "b"});
  auto compile = [&](const char* text) {
    StatusOr<RegexPtr> regex = ParseRegex(text, &alphabet, false);
    EXPECT_TRUE(regex.ok());
    return GlushkovAutomaton(**regex, alphabet.size());
  };
  EXPECT_TRUE(NfaIncludedInNfa(compile("a b"), compile("(a | b)*")));
  EXPECT_TRUE(NfaIncludedInNfa(compile("(a b)+"), compile("a (b a)* b")));
  EXPECT_FALSE(NfaIncludedInNfa(compile("a*"), compile("a a*")));
  EXPECT_TRUE(NfaIncludedInNfa(compile("~"), compile("a")));
}

TEST(BkwTest, KnownOneUnambiguousLanguages) {
  Alphabet alphabet({"a", "b"});
  auto language = [&](const char* text) {
    StatusOr<RegexPtr> regex = ParseRegex(text, &alphabet, false);
    EXPECT_TRUE(regex.ok());
    return RegexToDfa(**regex, alphabet.size());
  };
  // (a+b)*a equals (b*a)+, which is deterministic.
  EXPECT_TRUE(IsOneUnambiguousLanguage(language("(a | b)* a")));
  EXPECT_TRUE(IsOneUnambiguousLanguage(language("a* b a*")));
  EXPECT_TRUE(IsOneUnambiguousLanguage(language("%")));
  EXPECT_TRUE(IsOneUnambiguousLanguage(language("~")));
  EXPECT_TRUE(IsOneUnambiguousLanguage(language("(a b)*")));
  EXPECT_TRUE(IsOneUnambiguousLanguage(language("b* a (a | b)*")));
}

TEST(BkwTest, KnownNonDeterministicLanguages) {
  Alphabet alphabet({"a", "b"});
  auto language = [&](const char* text) {
    StatusOr<RegexPtr> regex = ParseRegex(text, &alphabet, false);
    EXPECT_TRUE(regex.ok());
    return RegexToDfa(**regex, alphabet.size());
  };
  // The BKW flagship: "second-to-last symbol is a".
  EXPECT_FALSE(IsOneUnambiguousLanguage(language("(a | b)* a (a | b)")));
  // And its longer variants (the Theorem 3.2 family's string languages).
  EXPECT_FALSE(
      IsOneUnambiguousLanguage(language("(a | b)* a (a | b) (a | b)")));
}

// Soundness sweep: the language of any Glushkov-deterministic expression
// must be accepted by the BKW test (no false negatives).
class BkwSoundnessTest : public ::testing::TestWithParam<int> {};

RegexPtr RandomRegex(std::mt19937* rng, int depth) {
  int choice = static_cast<int>((*rng)() % (depth <= 0 ? 2 : 6));
  switch (choice) {
    case 0:
      return Regex::Symbol(static_cast<int>((*rng)() % 2));
    case 1:
      return Regex::Epsilon();
    case 2:
      return Regex::Star(RandomRegex(rng, depth - 1));
    case 3:
      return Regex::Union(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    case 4:
      return Regex::Concat(
          {RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1)});
    default:
      return Regex::Optional(RandomRegex(rng, depth - 1));
  }
}

TEST_P(BkwSoundnessTest, DeterministicExpressionsPass) {
  std::mt19937 rng(GetParam() * 7 + 1);
  int found = 0;
  for (int i = 0; i < 40 && found < 5; ++i) {
    RegexPtr regex = RandomRegex(&rng, 4);
    if (!IsOneUnambiguous(*regex, 2)) continue;
    ++found;
    EXPECT_TRUE(IsOneUnambiguousLanguage(RegexToDfa(*regex, 2)));
  }
  EXPECT_GT(found, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BkwSoundnessTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace stap
