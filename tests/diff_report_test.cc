// Tests for schema comparison reports (approx/diff_report.h).
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/diff_report.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"

namespace stap {
namespace {

Edtd Orders(const std::string& items) {
  SchemaBuilder builder;
  builder.AddType("Order", "order", "Customer " + items);
  builder.AddType("Customer", "customer", "%");
  builder.AddType("Item", "item", "%");
  builder.AddStart("Order");
  return builder.Build();
}

TEST(DiffReportTest, DetectsSubsetWithWitness) {
  Edtd v1 = Orders("Item+");
  Edtd v2 = Orders("Item*");
  SchemaDiffReport report = CompareSchemas(v1, v2);
  EXPECT_EQ(report.relation, SchemaRelation::kSubset);
  EXPECT_FALSE(report.only_in_a.has_value());
  ASSERT_TRUE(report.only_in_b.has_value());
  // The witness is the item-less order.
  EXPECT_EQ(report.only_in_b->children.size(), 1u);
  EXPECT_GT(report.count_b, report.count_a);
  EXPECT_EQ(report.count_intersection, report.count_a);
}

TEST(DiffReportTest, DetectsEquivalence) {
  Edtd v1 = Orders("Item Item*");
  Edtd v2 = Orders("Item+");
  SchemaDiffReport report = CompareSchemas(v1, v2);
  EXPECT_EQ(report.relation, SchemaRelation::kEquivalent);
  EXPECT_FALSE(report.only_in_a.has_value());
  EXPECT_FALSE(report.only_in_b.has_value());
  EXPECT_EQ(report.count_a, report.count_b);
}

TEST(DiffReportTest, DetectsIncomparability) {
  Edtd v1 = Orders("Item");
  Edtd v2 = Orders("Item Item");
  SchemaDiffReport report = CompareSchemas(v1, v2);
  EXPECT_EQ(report.relation, SchemaRelation::kIncomparable);
  EXPECT_TRUE(report.only_in_a.has_value());
  EXPECT_TRUE(report.only_in_b.has_value());
  EXPECT_NE(report.ToString().find("INCOMPARABLE"), std::string::npos);
}

// Property: the report's relation matches pairwise inclusion semantics on
// random schema pairs, and the witnesses certify it.
class DiffReportRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DiffReportRandomTest, RelationMatchesWitnesses) {
  std::mt19937 rng(GetParam() * 6151 + 5);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  Edtd a = RandomStEdtd(&rng, params);
  Edtd b = RandomStEdtd(&rng, params);
  SchemaDiffReport report = CompareSchemas(a, b, 3, 3);
  switch (report.relation) {
    case SchemaRelation::kEquivalent:
      EXPECT_EQ(report.count_a, report.count_b);
      EXPECT_EQ(report.count_a, report.count_intersection);
      break;
    case SchemaRelation::kSubset:
      EXPECT_LE(report.count_a, report.count_b);
      EXPECT_EQ(report.count_intersection, report.count_a);
      break;
    case SchemaRelation::kSuperset:
      EXPECT_GE(report.count_a, report.count_b);
      EXPECT_EQ(report.count_intersection, report.count_b);
      break;
    case SchemaRelation::kIncomparable:
      EXPECT_LE(report.count_intersection, report.count_a);
      EXPECT_LE(report.count_intersection, report.count_b);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffReportRandomTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace stap
