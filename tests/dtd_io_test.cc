// Tests for DTD import/export (schema/dtd_io.h).
#include <gtest/gtest.h>

#include "stap/approx/inclusion.h"
#include "stap/schema/dtd_io.h"
#include "stap/schema/edtd.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

constexpr const char* kLibraryDtd = R"(
<!-- A classic library DTD. -->
<!ELEMENT library (book)*>
<!ELEMENT book (title, chapter+)>
<!ELEMENT title EMPTY>
<!ELEMENT chapter (section | title)?>
<!ELEMENT section EMPTY>
)";

TEST(DtdIoTest, ParsesDeclarations) {
  StatusOr<Dtd> dtd = ParseDtd(kLibraryDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  Alphabet& s = dtd->sigma;
  int library = s.Find("library"), book = s.Find("book"),
      title = s.Find("title"), chapter = s.Find("chapter"),
      section = s.Find("section");
  EXPECT_EQ(dtd->start_symbols, std::vector<int>{library});

  Tree good(library, {Tree(book, {Tree(title), Tree(chapter),
                                  Tree(chapter, {Tree(section)})})});
  EXPECT_TRUE(dtd->Accepts(good));
  Tree empty_lib(library);
  EXPECT_TRUE(dtd->Accepts(empty_lib));
  Tree bad(library, {Tree(book, {Tree(chapter)})});  // missing title
  EXPECT_FALSE(dtd->Accepts(bad));
}

TEST(DtdIoTest, RootOverride) {
  StatusOr<Dtd> dtd = ParseDtd(kLibraryDtd, "book");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  int book = dtd->sigma.Find("book"), title = dtd->sigma.Find("title"),
      chapter = dtd->sigma.Find("chapter");
  EXPECT_TRUE(dtd->Accepts(Tree(book, {Tree(title), Tree(chapter)})));
  EXPECT_FALSE(dtd->Accepts(Tree(dtd->sigma.Find("library"))));
}

TEST(DtdIoTest, AnyContent) {
  StatusOr<Dtd> dtd = ParseDtd(
      "<!ELEMENT a ANY>\n<!ELEMENT b EMPTY>\n");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  int a = dtd->sigma.Find("a"), b = dtd->sigma.Find("b");
  EXPECT_TRUE(dtd->Accepts(Tree(a)));
  EXPECT_TRUE(dtd->Accepts(Tree(a, {Tree(b), Tree(a), Tree(b)})));
  EXPECT_FALSE(dtd->Accepts(Tree(a, {Tree(b, {Tree(b)})})));
}

TEST(DtdIoTest, ErrorsAreDescriptive) {
  EXPECT_FALSE(ParseDtd("").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b)>").ok());  // b never declared
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (#PCDATA)>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b, c | d)>"
                        "<!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
                        "<!ELEMENT d EMPTY>").ok());  // mixed separators
  EXPECT_FALSE(
      ParseDtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>").ok());  // duplicate
  EXPECT_FALSE(ParseDtd(kLibraryDtd, "nosuch").ok());
}

TEST(DtdIoTest, RoundTripPreservesLanguage) {
  StatusOr<Dtd> dtd = ParseDtd(kLibraryDtd);
  ASSERT_TRUE(dtd.ok());
  std::string rendered = DtdToString(*dtd);
  StatusOr<Dtd> reparsed = ParseDtd(rendered, "library");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << rendered;
  Edtd original = Edtd::FromDtd(*dtd);
  Edtd back = Edtd::FromDtd(*reparsed);
  ASSERT_TRUE(IsSingleType(original));
  EXPECT_TRUE(SingleTypeEquivalent(original, back)) << rendered;
}

TEST(DtdIoTest, DtdsFeedTheApproximationPipeline) {
  // DTDs are (degenerate) single-type EDTDs; the taxonomy in action.
  StatusOr<Dtd> dtd = ParseDtd(kLibraryDtd);
  ASSERT_TRUE(dtd.ok());
  Edtd edtd = Edtd::FromDtd(*dtd);
  EXPECT_TRUE(IsSingleType(edtd));
  for (const Tree& tree : EnumerateTrees({3, 2, dtd->num_symbols()})) {
    EXPECT_EQ(dtd->Accepts(tree), edtd.Accepts(tree));
  }
}

}  // namespace
}  // namespace stap
