// Round-trip tests for the compiled-schema artifact format.
//
// For 500+ seeded random automata, content models, and schemas, asserts
// that Deserialize(Serialize(x)) reproduces x — structurally (the format
// preserves state numbering bit-for-bit) and semantically (language
// equivalence checked through the antichain inclusion engine, so a
// numbering-preserving-but-language-breaking encoder bug cannot hide
// behind the structural check agreeing with itself).
//
// Run with --seed=N (or STAP_SEED=N) to explore a different random
// stream; failures print the reproduction flag.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/gen/random.h"
#include "stap/io/artifact.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"
#include "stap/schema/text_format.h"
#include "stap/schema/type_automaton.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

// --- structural comparators ------------------------------------------
// Dfa and Alphabet have operator==; Nfa, Edtd, and DfaXsd are compared
// field by field so a failure names the divergent component.

void ExpectNfaEqual(const Nfa& a, const Nfa& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_symbols(), b.num_symbols());
  EXPECT_EQ(a.initial(), b.initial());
  EXPECT_EQ(a.FinalStates(), b.FinalStates());
  for (int q = 0; q < a.num_states(); ++q) {
    for (int s = 0; s < a.num_symbols(); ++s) {
      EXPECT_EQ(a.Next(q, s), b.Next(q, s))
          << "transition row (" << q << ", " << s << ")";
    }
  }
}

void ExpectEdtdEqual(const Edtd& a, const Edtd& b) {
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.types, b.types);
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.start_types, b.start_types);
  ASSERT_EQ(a.content.size(), b.content.size());
  for (size_t i = 0; i < a.content.size(); ++i) {
    EXPECT_EQ(a.content[i], b.content[i]) << "content model " << i;
  }
}

void ExpectXsdEqual(const DfaXsd& a, const DfaXsd& b) {
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.start_symbols, b.start_symbols);
  EXPECT_EQ(a.automaton, b.automaton);
  EXPECT_EQ(a.state_label, b.state_label);
  ASSERT_EQ(a.content.size(), b.content.size());
  for (size_t i = 0; i < a.content.size(); ++i) {
    EXPECT_EQ(a.content[i], b.content[i]) << "content model " << i;
  }
}

// Language equivalence via the antichain engine, both directions.
void ExpectSameLanguage(const Nfa& a, const Nfa& b) {
  EXPECT_TRUE(NfaIncludedInNfa(a, b));
  EXPECT_TRUE(NfaIncludedInNfa(b, a));
}

// --- random NFAs ------------------------------------------------------

TEST(ArtifactRoundTrip, RandomNfas) {
  for (int i = 0; i < 150; ++i) {
    std::mt19937 rng(MixSeed(1000 + i));
    const int num_states = 1 + static_cast<int>(rng() % 12);
    const int num_symbols = 1 + static_cast<int>(rng() % 5);
    const int fanout = 1 + static_cast<int>(rng() % 3);
    Nfa nfa = RandomNfa(&rng, num_states, num_symbols, fanout);

    StatusOr<Nfa> back = DeserializeNfa(SerializeNfa(nfa));
    ASSERT_TRUE(back.ok()) << back.status().message() << " (instance " << i
                           << ")";
    ExpectNfaEqual(nfa, *back);
    ExpectSameLanguage(nfa, *back);
  }
}

// --- random (minimized) DFAs -----------------------------------------

TEST(ArtifactRoundTrip, RandomMinimizedDfas) {
  for (int i = 0; i < 150; ++i) {
    std::mt19937 rng(MixSeed(2000 + i));
    const int num_states = 1 + static_cast<int>(rng() % 10);
    const int num_symbols = 1 + static_cast<int>(rng() % 4);
    Nfa nfa = RandomNfa(&rng, num_states, num_symbols);
    Dfa dfa = Minimize(Determinize(nfa));

    StatusOr<Dfa> back = DeserializeDfa(SerializeDfa(dfa));
    ASSERT_TRUE(back.ok()) << back.status().message() << " (instance " << i
                           << ")";
    EXPECT_EQ(dfa, *back);
    EXPECT_TRUE(DfaEquivalent(dfa, *back));
    ExpectSameLanguage(dfa.ToNfa(), back->ToNfa());
  }
}

// Partial (trimmed, non-complete) DFAs exercise the kNoState encoding.
TEST(ArtifactRoundTrip, PartialDfas) {
  for (int i = 0; i < 40; ++i) {
    std::mt19937 rng(MixSeed(2500 + i));
    Nfa nfa = RandomNfa(&rng, 8, 3, 1);  // sparse: runs die often
    Dfa dfa = Determinize(nfa).Trimmed();

    StatusOr<Dfa> back = DeserializeDfa(SerializeDfa(dfa));
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(dfa, *back);
  }
}

// --- regex-derived content models ------------------------------------

TEST(ArtifactRoundTrip, RegexDerivedContentModels) {
  const char* kRegexes[] = {
      "a",          "a b",         "a | b",      "a*",
      "a+",         "a?",          "%",          "~",
      "(a b)* c",   "a (b | c)+",  "(a | %) b*", "a b c d",
      "(a | b)*",   "a* b* c*",    "(a b | c)?", "a (a (a | b))*",
  };
  int instance = 0;
  for (const char* source : kRegexes) {
    Alphabet alphabet;
    alphabet.Intern("a");
    alphabet.Intern("b");
    alphabet.Intern("c");
    alphabet.Intern("d");
    StatusOr<RegexPtr> regex = ParseRegex(source, &alphabet, false);
    ASSERT_TRUE(regex.ok()) << source;
    Dfa dfa = RegexToDfa(**regex, alphabet.size());

    StatusOr<Dfa> back = DeserializeDfa(SerializeDfa(dfa));
    ASSERT_TRUE(back.ok()) << source << ": " << back.status().message();
    EXPECT_EQ(dfa, *back) << source;
    EXPECT_TRUE(DfaEquivalent(dfa, *back)) << source;
    ++instance;
  }
  EXPECT_EQ(instance, 16);
}

// --- alphabets --------------------------------------------------------

TEST(ArtifactRoundTrip, Alphabets) {
  // Empty.
  {
    StatusOr<Alphabet> back = DeserializeAlphabet(SerializeAlphabet(Alphabet()));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->size(), 0);
  }
  // Names with every non-NUL structure the format must preserve.
  {
    Alphabet alphabet;
    alphabet.Intern("a");
    alphabet.Intern("name with spaces");
    alphabet.Intern("unicode-\xc3\xa9\xc3\xa8");
    alphabet.Intern(std::string(kMaxSymbolNameBytes, 'x'));  // at the cap
    StatusOr<Alphabet> back = DeserializeAlphabet(SerializeAlphabet(alphabet));
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(alphabet, *back);
  }
  // Large alphabet (~5000 symbols).
  {
    Alphabet alphabet;
    for (int i = 0; i < 5000; ++i) {
      alphabet.Intern("sym" + std::to_string(i));
    }
    StatusOr<Alphabet> back = DeserializeAlphabet(SerializeAlphabet(alphabet));
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(alphabet, *back);
  }
}

// --- edge-case automata ----------------------------------------------

TEST(ArtifactRoundTrip, EdgeCaseAutomata) {
  // The zero-state placeholder.
  {
    StatusOr<Dfa> back = DeserializeDfa(SerializeDfa(Dfa()));
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(Dfa(), *back);
  }
  // Canonical one-state languages at several alphabet widths.
  for (int k : {0, 1, 3, 17}) {
    for (const Dfa& dfa :
         {Dfa::EmptyLanguage(k), Dfa::EpsilonOnly(k), Dfa::AllWords(k)}) {
      StatusOr<Dfa> back = DeserializeDfa(SerializeDfa(dfa));
      ASSERT_TRUE(back.ok()) << back.status().message() << " (k=" << k << ")";
      EXPECT_EQ(dfa, *back);
    }
  }
  // Single-state NFAs: final and non-final, with and without a self loop.
  for (int variant = 0; variant < 4; ++variant) {
    Nfa nfa(1, 2);
    nfa.AddInitial(0);
    if (variant & 1) nfa.SetFinal(0);
    if (variant & 2) nfa.AddTransition(0, 1, 0);
    StatusOr<Nfa> back = DeserializeNfa(SerializeNfa(nfa));
    ASSERT_TRUE(back.ok()) << back.status().message();
    ExpectNfaEqual(nfa, *back);
  }
  // Empty NFA (no states, no initial states).
  {
    Nfa nfa(0, 3);
    StatusOr<Nfa> back = DeserializeNfa(SerializeNfa(nfa));
    ASSERT_TRUE(back.ok()) << back.status().message();
    ExpectNfaEqual(nfa, *back);
  }
  // A DFA over a large alphabet: one state, a few scattered transitions.
  {
    Dfa dfa(2, 5000);
    dfa.SetTransition(0, 0, 1);
    dfa.SetTransition(0, 4999, 0);
    dfa.SetTransition(1, 2500, 1);
    dfa.SetFinal(1);
    StatusOr<Dfa> back = DeserializeDfa(SerializeDfa(dfa));
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(dfa, *back);
  }
}

// --- random EDTDs and single-type EDTDs ------------------------------

TEST(ArtifactRoundTrip, RandomEdtds) {
  for (int i = 0; i < 50; ++i) {
    std::mt19937 rng(MixSeed(3000 + i));
    RandomSchemaParams params;
    params.num_symbols = 2 + static_cast<int>(rng() % 3);
    params.num_types = 2 + static_cast<int>(rng() % 5);
    Edtd edtd = RandomEdtd(&rng, params);

    StatusOr<Edtd> back = DeserializeEdtd(SerializeEdtd(edtd));
    ASSERT_TRUE(back.ok()) << back.status().message() << " (instance " << i
                           << ")";
    ExpectEdtdEqual(edtd, *back);
  }
}

TEST(ArtifactRoundTrip, RandomStEdtdsAndXsds) {
  for (int i = 0; i < 50; ++i) {
    std::mt19937 rng(MixSeed(4000 + i));
    RandomSchemaParams params;
    params.num_symbols = 2 + static_cast<int>(rng() % 3);
    params.num_types = 2 + static_cast<int>(rng() % 5);
    Edtd edtd = RandomStEdtd(&rng, params);
    ASSERT_TRUE(IsSingleType(edtd));

    StatusOr<Edtd> back = DeserializeEdtd(SerializeEdtd(edtd));
    ASSERT_TRUE(back.ok()) << back.status().message();
    ExpectEdtdEqual(edtd, *back);

    DfaXsd xsd = DfaXsdFromStEdtd(edtd);
    StatusOr<DfaXsd> xsd_back = DeserializeDfaXsd(SerializeDfaXsd(xsd));
    ASSERT_TRUE(xsd_back.ok()) << xsd_back.status().message();
    ExpectXsdEqual(xsd, *xsd_back);
  }
}

// --- full artifacts ---------------------------------------------------

void ExpectCompiledSchemaEqual(const CompiledSchema& a,
                               const CompiledSchema& b) {
  ExpectEdtdEqual(a.edtd, b.edtd);
  EXPECT_EQ(a.single_type, b.single_type);
  if (a.single_type) ExpectXsdEqual(a.xsd, b.xsd);
  EXPECT_EQ(a.source_hash, b.source_hash);
  EXPECT_EQ(a.content_hashes, b.content_hashes);
}

TEST(ArtifactRoundTrip, RandomCompiledSchemas) {
  for (int i = 0; i < 50; ++i) {
    std::mt19937 rng(MixSeed(5000 + i));
    RandomSchemaParams params;
    params.num_symbols = 2 + static_cast<int>(rng() % 3);
    params.num_types = 2 + static_cast<int>(rng() % 4);
    // Alternate single-type and general schemas so both artifact shapes
    // (with and without the DfaXsd section) see coverage.
    Edtd edtd = (i % 2 == 0) ? RandomStEdtd(&rng, params)
                             : RandomEdtd(&rng, params);
    CompiledSchema schema = MakeCompiledSchema(edtd, /*source_hash=*/rng());

    std::string bytes = SerializeArtifact(schema);
    ASSERT_TRUE(LooksLikeArtifact(bytes));
    StatusOr<CompiledSchema> back = DeserializeArtifact(bytes);
    ASSERT_TRUE(back.ok()) << back.status().message() << " (instance " << i
                           << ")";
    ExpectCompiledSchemaEqual(schema, *back);
  }
}

// Serialization is a pure function of the schema: compiling the same
// source twice yields byte-identical artifacts (the property the batch
// determinism check and cache correctness both lean on).
TEST(ArtifactRoundTrip, SerializationIsDeterministic) {
  for (int i = 0; i < 20; ++i) {
    std::mt19937 rng(MixSeed(5500 + i));
    RandomSchemaParams params;
    Edtd edtd = RandomStEdtd(&rng, params);
    CompiledSchema schema = MakeCompiledSchema(edtd, 42);
    EXPECT_EQ(SerializeArtifact(schema), SerializeArtifact(schema));
  }
}

// --- worked examples --------------------------------------------------

constexpr char kLibrarySchema[] = R"(
# The paper's running example: a book store with optional sections.
start Lib
type Lib     : library -> Book*
type Book    : book    -> Title Chapter+
type Title   : title   -> %
type Chapter : chapter -> (Section | %)
type Section : section -> %
)";

// A non-single-type EDTD: two Book types with the same label but
// different content, discriminated by position.
constexpr char kDealerSchema[] = R"(
start Dealer
type Dealer  : dealer  -> UsedBook* NewBook*
type UsedBook: book    -> Title Year
type NewBook : book    -> Title
type Title   : title   -> %
type Year    : year    -> %
)";

TEST(ArtifactRoundTrip, WorkedExampleSchemas) {
  for (const char* source : {kLibrarySchema, kDealerSchema}) {
    StatusOr<CompiledSchema> schema = CompileSchema(source, nullptr);
    ASSERT_TRUE(schema.ok()) << schema.status().message();

    std::string bytes = SerializeArtifact(*schema);
    StatusOr<CompiledSchema> back = DeserializeArtifact(bytes);
    ASSERT_TRUE(back.ok()) << back.status().message();
    ExpectCompiledSchemaEqual(*schema, *back);

    // The textual rendering of the schema survives the trip too.
    EXPECT_EQ(SchemaToText(schema->edtd), SchemaToText(back->edtd));
  }
}

TEST(ArtifactRoundTrip, WorkedExampleValidatesThroughArtifact) {
  StatusOr<CompiledSchema> schema = CompileSchema(kLibrarySchema, nullptr);
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(schema->single_type);
  StatusOr<CompiledSchema> back =
      DeserializeArtifact(SerializeArtifact(*schema));
  ASSERT_TRUE(back.ok());

  // Sample accepted trees from the original; the round-tripped validator
  // must agree on every one of them, and on a rejected mutation.
  std::mt19937 rng(MixSeed(6000));
  for (int i = 0; i < 25; ++i) {
    std::optional<Tree> tree = SampleTree(schema->xsd, &rng);
    ASSERT_TRUE(tree.has_value());
    EXPECT_TRUE(back->xsd.Accepts(*tree));
    EXPECT_TRUE(back->edtd.Accepts(*tree));
  }
  const Alphabet& sigma = schema->edtd.sigma;
  Tree bad(sigma.Find("library"),
           {Tree(sigma.Find("book"),
                 {Tree(sigma.Find("title"))})});  // missing chapter
  EXPECT_FALSE(schema->xsd.Accepts(bad));
  EXPECT_FALSE(back->xsd.Accepts(bad));
}

// Provenance hashes commit to the content models: the recorded hash of
// each deserialized content DFA matches a fresh recomputation.
TEST(ArtifactRoundTrip, ProvenanceHashesRecomputable) {
  std::mt19937 rng(MixSeed(6100));
  Edtd edtd = RandomStEdtd(&rng, RandomSchemaParams());
  CompiledSchema schema = MakeCompiledSchema(edtd);
  StatusOr<CompiledSchema> back =
      DeserializeArtifact(SerializeArtifact(schema));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->content_hashes.size(), back->edtd.content.size());
  for (size_t i = 0; i < back->edtd.content.size(); ++i) {
    EXPECT_EQ(back->content_hashes[i], DfaStructuralHash(back->edtd.content[i]));
  }
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
