// Unit tests for the string-automata substrate (NFA, DFA, determinize,
// minimize, Boolean ops, inclusion).
#include <gtest/gtest.h>

#include <random>

#include "stap/automata/determinize.h"
#include "stap/automata/dfa.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/automata/nfa.h"
#include "stap/automata/ops.h"

namespace stap {
namespace {

// DFA over {0,1} for words ending in 1.
Dfa EndsInOne() {
  Dfa dfa(2, 2);
  dfa.SetTransition(0, 0, 0);
  dfa.SetTransition(0, 1, 1);
  dfa.SetTransition(1, 0, 0);
  dfa.SetTransition(1, 1, 1);
  dfa.SetFinal(1);
  return dfa;
}

// NFA over {0,1} for words whose n-th symbol from the end is 1.
Nfa NthFromEndIsOne(int n) {
  Nfa nfa(n + 1, 2);
  nfa.AddInitial(0);
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  nfa.AddTransition(0, 1, 1);
  for (int i = 1; i < n; ++i) {
    nfa.AddTransition(i, 0, i + 1);
    nfa.AddTransition(i, 1, i + 1);
  }
  nfa.SetFinal(n);
  return nfa;
}

TEST(StateSetTest, InsertKeepsSortedUnique) {
  StateSet set;
  EXPECT_TRUE(StateSetInsert(set, 5));
  EXPECT_TRUE(StateSetInsert(set, 1));
  EXPECT_FALSE(StateSetInsert(set, 5));
  EXPECT_TRUE(StateSetInsert(set, 3));
  EXPECT_EQ(set, (StateSet{1, 3, 5}));
  EXPECT_TRUE(StateSetContains(set, 3));
  EXPECT_FALSE(StateSetContains(set, 2));
}

TEST(DfaTest, AcceptsBasicWords) {
  Dfa dfa = EndsInOne();
  EXPECT_FALSE(dfa.Accepts({}));
  EXPECT_TRUE(dfa.Accepts({1}));
  EXPECT_TRUE(dfa.Accepts({0, 0, 1}));
  EXPECT_FALSE(dfa.Accepts({1, 0}));
}

TEST(DfaTest, FactoryLanguages) {
  EXPECT_TRUE(Dfa::EmptyLanguage(2).IsEmpty());
  EXPECT_TRUE(Dfa::EpsilonOnly(2).Accepts({}));
  EXPECT_FALSE(Dfa::EpsilonOnly(2).Accepts({0}));
  EXPECT_TRUE(Dfa::AllWords(2).Accepts({0, 1, 1}));
}

TEST(DfaTest, FromWordsBuildsTrie) {
  Dfa dfa = Dfa::FromWords({{0, 1}, {0}, {}}, 2);
  EXPECT_TRUE(dfa.Accepts({}));
  EXPECT_TRUE(dfa.Accepts({0}));
  EXPECT_TRUE(dfa.Accepts({0, 1}));
  EXPECT_FALSE(dfa.Accepts({1}));
  EXPECT_FALSE(dfa.Accepts({0, 1, 1}));
}

TEST(DfaTest, ShortestWordFindsLengthLexSmallest) {
  Dfa dfa = Dfa::FromWords({{1, 1, 1}, {1, 0}, {0, 1}}, 2);
  Word word;
  ASSERT_TRUE(dfa.ShortestWord(&word));
  EXPECT_EQ(word, (Word{0, 1}));
}

TEST(DfaTest, WordsUpToLengthEnumerates) {
  Dfa dfa = EndsInOne();
  std::vector<Word> words = dfa.WordsUpToLength(2);
  EXPECT_EQ(words, (std::vector<Word>{{1}, {0, 1}, {1, 1}}));
}

TEST(DfaTest, CompletedAddsSink) {
  Dfa dfa = Dfa::FromWords({{0}}, 2);
  EXPECT_FALSE(dfa.IsComplete());
  Dfa complete = dfa.Completed();
  EXPECT_TRUE(complete.IsComplete());
  EXPECT_TRUE(complete.Accepts({0}));
  EXPECT_FALSE(complete.Accepts({0, 0}));
}

TEST(DfaTest, TrimmedDropsDeadStates) {
  Dfa dfa(4, 1);
  dfa.SetTransition(0, 0, 1);
  dfa.SetTransition(1, 0, 2);  // 2 is a dead end
  dfa.SetFinal(1);
  // State 3 is unreachable.
  Dfa trimmed = dfa.Trimmed();
  EXPECT_EQ(trimmed.num_states(), 2);
  EXPECT_TRUE(trimmed.Accepts({0}));
  EXPECT_FALSE(trimmed.Accepts({0, 0}));
}

TEST(NfaTest, RunAndAccepts) {
  Nfa nfa = NthFromEndIsOne(2);
  EXPECT_TRUE(nfa.Accepts({1, 0, 1, 0}));
  EXPECT_FALSE(nfa.Accepts({0, 0, 0, 1}));
  EXPECT_FALSE(nfa.Accepts({1}));
}

TEST(NfaTest, TrimmedPreservesLanguage) {
  Nfa nfa = NthFromEndIsOne(2);
  int dead = nfa.AddState();
  nfa.AddTransition(0, 0, dead);  // dead has no path to final
  Nfa trimmed = nfa.Trimmed();
  EXPECT_EQ(trimmed.num_states(), 3);
  EXPECT_TRUE(trimmed.Accepts({1, 0, 1, 0}));
  EXPECT_FALSE(trimmed.Accepts({0, 0}));
}

TEST(NfaTest, IsEmptyDetectsUnreachableFinal) {
  Nfa nfa(2, 1);
  nfa.AddInitial(0);
  nfa.SetFinal(1);
  EXPECT_TRUE(nfa.IsEmpty());
  nfa.AddTransition(0, 0, 1);
  EXPECT_FALSE(nfa.IsEmpty());
}

TEST(DeterminizeTest, MatchesNfaOnAllShortWords) {
  Nfa nfa = NthFromEndIsOne(3);
  Dfa dfa = Determinize(nfa);
  for (int len = 0; len <= 6; ++len) {
    for (int bits = 0; bits < (1 << len); ++bits) {
      Word word;
      for (int i = 0; i < len; ++i) word.push_back((bits >> i) & 1);
      EXPECT_EQ(dfa.Accepts(word), nfa.Accepts(word));
    }
  }
}

TEST(DeterminizeTest, SubsetBlowupIsExponential) {
  // The classical (a+b)*a(a+b)^(n-1) family needs 2^n deterministic
  // states.
  for (int n = 2; n <= 6; ++n) {
    Dfa dfa = Minimize(Determinize(NthFromEndIsOne(n)));
    EXPECT_EQ(dfa.num_states(), 1 << n) << "n=" << n;
  }
}

TEST(MinimizeTest, CanonicalFormsAgree) {
  // Two structurally different automata for "ends in 1".
  Dfa a = EndsInOne();
  Dfa b(4, 2);
  b.SetTransition(0, 0, 2);
  b.SetTransition(0, 1, 1);
  b.SetTransition(1, 0, 2);
  b.SetTransition(1, 1, 3);
  b.SetTransition(2, 0, 0);
  b.SetTransition(2, 1, 3);
  b.SetTransition(3, 0, 2);
  b.SetTransition(3, 1, 1);
  b.SetFinal(1);
  b.SetFinal(3);
  EXPECT_EQ(Minimize(a), Minimize(b));
  EXPECT_EQ(Minimize(a).num_states(), 2);
}

TEST(MinimizeTest, EmptyLanguageIsCanonical) {
  Dfa dead(3, 2);
  dead.SetTransition(0, 0, 1);
  EXPECT_EQ(Minimize(dead), Dfa::EmptyLanguage(2));
}

TEST(OpsTest, ProductImplementsBooleanOps) {
  Dfa ends1 = EndsInOne();
  Dfa contains0 = Dfa(2, 2);
  contains0.SetTransition(0, 1, 0);
  contains0.SetTransition(0, 0, 1);
  contains0.SetTransition(1, 0, 1);
  contains0.SetTransition(1, 1, 1);
  contains0.SetFinal(1);

  Dfa both = DfaIntersection(ends1, contains0);
  EXPECT_TRUE(both.Accepts({0, 1}));
  EXPECT_FALSE(both.Accepts({1}));
  EXPECT_FALSE(both.Accepts({0}));

  Dfa either = DfaUnion(ends1, contains0);
  EXPECT_TRUE(either.Accepts({1}));
  EXPECT_TRUE(either.Accepts({0}));
  EXPECT_FALSE(either.Accepts({}));

  Dfa diff = DfaDifference(ends1, contains0);
  EXPECT_TRUE(diff.Accepts({1, 1}));
  EXPECT_FALSE(diff.Accepts({0, 1}));
}

TEST(OpsTest, ComplementFlipsMembership) {
  Dfa complement = DfaComplement(EndsInOne());
  EXPECT_TRUE(complement.Accepts({}));
  EXPECT_TRUE(complement.Accepts({1, 0}));
  EXPECT_FALSE(complement.Accepts({1}));
}

TEST(OpsTest, NfaUnionCombines) {
  Nfa u = NfaUnion(NthFromEndIsOne(1), NthFromEndIsOne(3));
  EXPECT_TRUE(u.Accepts({1}));
  EXPECT_TRUE(u.Accepts({1, 0, 0}));
  EXPECT_FALSE(u.Accepts({0, 1, 0}));
}

TEST(OpsTest, HomomorphicImageMergesSymbols) {
  // DFA over {0,1,2} accepting exactly 0·2; map 0,1 -> a(0), 2 -> b(1).
  Dfa dfa = Dfa::FromWords({{0, 2}}, 3);
  Nfa image = HomomorphicImage(dfa, {0, 0, 1}, 2);
  EXPECT_TRUE(image.Accepts({0, 1}));
  EXPECT_FALSE(image.Accepts({0, 0}));
}

TEST(OpsTest, InverseHomomorphismLifts) {
  // L = words over {a,b} ending in b(1); lift via map x->a, y->b, z->a.
  Dfa dfa = EndsInOne();
  Dfa lifted = InverseHomomorphism(dfa, {0, 1, 0}, 3);
  EXPECT_TRUE(lifted.Accepts({0, 1}));   // xy -> ab
  EXPECT_TRUE(lifted.Accepts({2, 1}));   // zy -> ab
  EXPECT_FALSE(lifted.Accepts({1, 2}));  // yz -> ba
}

TEST(InclusionTest, DfaInclusionAndEquivalence) {
  Dfa ends1 = EndsInOne();
  Dfa all = Dfa::AllWords(2);
  EXPECT_TRUE(DfaIncludedIn(ends1, all));
  EXPECT_FALSE(DfaIncludedIn(all, ends1));
  EXPECT_TRUE(DfaEquivalent(ends1, Minimize(ends1)));

  std::optional<Word> witness = DfaInclusionCounterexample(all, ends1);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(all.Accepts(*witness));
  EXPECT_FALSE(ends1.Accepts(*witness));
}

TEST(InclusionTest, NfaIncludedInDfa) {
  Nfa nfa = NthFromEndIsOne(2);
  Dfa superset = Determinize(NthFromEndIsOne(2));
  EXPECT_TRUE(NfaIncludedInDfa(nfa, superset));
  EXPECT_FALSE(NfaIncludedInDfa(nfa, EndsInOne()));
  std::optional<Word> witness =
      NfaDfaInclusionCounterexample(nfa, EndsInOne());
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(nfa.Accepts(*witness));
  EXPECT_FALSE(EndsInOne().Accepts(*witness));
}

TEST(AlphabetTest, InternAndFind) {
  Alphabet alphabet;
  EXPECT_EQ(alphabet.Intern("book"), 0);
  EXPECT_EQ(alphabet.Intern("title"), 1);
  EXPECT_EQ(alphabet.Intern("book"), 0);
  EXPECT_EQ(alphabet.Find("title"), 1);
  EXPECT_EQ(alphabet.Find("chapter"), kNoSymbol);
  EXPECT_EQ(alphabet.Name(1), "title");
  EXPECT_EQ(alphabet.size(), 2);
}

// Property sweep: Boolean identities on random small DFAs.
class DfaAlgebraTest : public ::testing::TestWithParam<int> {};

Dfa RandomSmallDfa(uint32_t seed) {
  std::mt19937 rng(seed);
  int states = 1 + rng() % 4;
  Dfa dfa(states, 2);
  for (int q = 0; q < states; ++q) {
    for (int a = 0; a < 2; ++a) {
      if (rng() % 4 != 0) {
        dfa.SetTransition(q, a, static_cast<int>(rng() % states));
      }
    }
    if (rng() % 2 == 0) dfa.SetFinal(q);
  }
  return dfa;
}

TEST_P(DfaAlgebraTest, DeMorganAndDoubleComplement) {
  Dfa a = RandomSmallDfa(GetParam() * 2 + 1);
  Dfa b = RandomSmallDfa(GetParam() * 2 + 2);
  // ¬(A ∪ B) == ¬A ∩ ¬B
  Dfa lhs = DfaComplement(DfaUnion(a, b));
  Dfa rhs = DfaIntersection(DfaComplement(a), DfaComplement(b));
  EXPECT_TRUE(DfaEquivalent(lhs, rhs));
  // ¬¬A == A
  EXPECT_TRUE(DfaEquivalent(DfaComplement(DfaComplement(a)), a));
  // A \ B == A ∩ ¬B
  EXPECT_TRUE(DfaEquivalent(DfaDifference(a, b),
                            DfaIntersection(a, DfaComplement(b))));
  // Minimization preserves the language.
  EXPECT_TRUE(DfaEquivalent(Minimize(a), a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaAlgebraTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace stap
