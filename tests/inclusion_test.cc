// Tests for Lemma 3.3: polynomial inclusion of an EDTD in a single-type
// EDTD, cross-checked against the exact tree-automata route.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/treeauto/exact.h"

namespace stap {
namespace {

TEST(InclusionTest, BasicContainments) {
  SchemaBuilder small;
  small.AddType("R", "r", "A A");
  small.AddType("A", "a", "%");
  small.AddStart("R");

  SchemaBuilder big;
  big.AddType("R", "r", "A*");
  big.AddType("A", "a", "B?");
  big.AddType("B", "b", "%");
  big.AddStart("R");

  Edtd d_small = small.Build();
  Edtd d_big = big.Build();
  EXPECT_TRUE(IncludedInSingleType(d_small, d_big));
  EXPECT_FALSE(IncludedInSingleType(d_big, d_small));
  EXPECT_TRUE(SingleTypeEquivalent(d_small, d_small));
  EXPECT_FALSE(SingleTypeEquivalent(d_small, d_big));
}

TEST(InclusionTest, NonSingleTypeLeftSide) {
  // Lemma 3.3 allows an arbitrary EDTD on the left.
  SchemaBuilder nst;
  nst.AddType("R1", "a", "B1");
  nst.AddType("R2", "a", "B2");
  nst.AddType("B1", "b", "C");
  nst.AddType("B2", "b", "%");
  nst.AddType("C", "c", "%");
  nst.AddStart("R1");
  nst.AddStart("R2");
  Edtd left = nst.Build();

  SchemaBuilder st;
  st.AddType("R", "a", "B");
  st.AddType("B", "b", "C?");
  st.AddType("C", "c", "%");
  st.AddStart("R");
  Edtd right = st.Build();

  EXPECT_TRUE(IncludedInSingleType(left, right));
  // Shrinking the right side breaks it.
  SchemaBuilder smaller;
  smaller.AddType("R", "a", "B");
  smaller.AddType("B", "b", "C");
  smaller.AddType("C", "c", "%");
  smaller.AddStart("R");
  EXPECT_FALSE(IncludedInSingleType(left, smaller.Build()));
}

TEST(InclusionTest, AlphabetMismatchesHandled) {
  SchemaBuilder b1;
  b1.AddType("A", "a", "%");
  b1.AddStart("A");
  SchemaBuilder b2;
  b2.AddType("B", "b", "%");
  b2.AddStart("B");
  EXPECT_FALSE(IncludedInSingleType(b1.Build(), b2.Build()));
  // Extra unknown symbols on the left must fail, not crash.
  SchemaBuilder b3;
  b3.AddType("A", "a", "C?");
  b3.AddType("C", "c", "%");
  b3.AddStart("A");
  SchemaBuilder b4;
  b4.AddType("A", "a", "%");
  b4.AddStart("A");
  EXPECT_FALSE(IncludedInSingleType(b3.Build(), b4.Build()));
  EXPECT_TRUE(IncludedInSingleType(b4.Build(), b3.Build()));
}

TEST(InclusionTest, EmptyLanguages) {
  SchemaBuilder empty;
  empty.AddType("R", "a", "R");
  empty.AddStart("R");
  SchemaBuilder leaf;
  leaf.AddType("R", "a", "%");
  leaf.AddStart("R");
  EXPECT_TRUE(IncludedInSingleType(empty.Build(), leaf.Build()));
  EXPECT_FALSE(IncludedInSingleType(leaf.Build(), empty.Build()));
  EXPECT_TRUE(IncludedInSingleType(empty.Build(), empty.Build()));
}

TEST(InclusionTest, ContentModelSubtleties) {
  // Same shape, different counting: a^(<=2) vs a^(<=3) children.
  SchemaBuilder b1;
  b1.AddType("R", "r", "A? A?");
  b1.AddType("A", "a", "%");
  b1.AddStart("R");
  SchemaBuilder b2;
  b2.AddType("R", "r", "A? A? A?");
  b2.AddType("A", "a", "%");
  b2.AddStart("R");
  EXPECT_TRUE(IncludedInSingleType(b1.Build(), b2.Build()));
  EXPECT_FALSE(IncludedInSingleType(b2.Build(), b1.Build()));
}

// Property sweep: the PTIME algorithm agrees with the exact EXPTIME route
// on random schema pairs.
class InclusionAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(InclusionAgreementTest, AgreesWithExactDecision) {
  std::mt19937 rng(GetParam() * 104729 + 7);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  Edtd left = RandomEdtd(&rng, params);
  Edtd right = RandomStEdtd(&rng, params);
  auto [l, r] = AlignAlphabets(left, right);
  bool ptime = IncludedInSingleType(l, r);
  bool exact = EdtdIncludedInExact(ReduceEdtd(l), ReduceEdtd(r));
  EXPECT_EQ(ptime, exact);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InclusionAgreementTest,
                         ::testing::Range(0, 40));

// Checks that MinimalUpperApproximation is a fixpoint on its own output
// (single-type inputs are reproduced exactly), which catches gross
// inflation bugs in Construction 3.1.
bool UpperIsFixpoint(const DfaXsd& upper) {
  Edtd upper_edtd = StEdtdFromDfaXsd(upper);
  DfaXsd twice = MinimalUpperApproximation(upper_edtd);
  return EdtdIncludedInExact(StEdtdFromDfaXsd(twice), upper_edtd);
}

// The upper approximation is always a superset (property over random
// EDTDs) and idempotent.
class UpperIsUpperTest : public ::testing::TestWithParam<int> {};

TEST_P(UpperIsUpperTest, InputIncludedInApproximation) {
  std::mt19937 rng(GetParam() * 31337 + 5);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  Edtd edtd = RandomEdtd(&rng, params);
  DfaXsd upper = MinimalUpperApproximation(edtd);
  EXPECT_TRUE(EdtdIncludedInXsd(edtd, upper));
  EXPECT_TRUE(UpperIsFixpoint(upper));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpperIsUpperTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace stap
