// Unit tests for the XML-lite reader/writer.
#include <gtest/gtest.h>

#include "stap/tree/xml.h"

namespace stap {
namespace {

TEST(XmlTest, ParsesNestedElements) {
  Alphabet alphabet;
  StatusOr<Tree> tree = ParseXml(
      "<library><book><title/><chapter/></book><book><title/></book>"
      "</library>",
      &alphabet);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->label, alphabet.Find("library"));
  ASSERT_EQ(tree->children.size(), 2u);
  EXPECT_EQ(tree->children[0].children.size(), 2u);
  EXPECT_EQ(tree->children[1].children.size(), 1u);
}

TEST(XmlTest, AcceptsDeclarationCommentsAndWhitespace) {
  Alphabet alphabet;
  StatusOr<Tree> tree = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- catalog -->\n"
      "<a>\n  <!-- inner -->\n  <b/>\n</a>\n",
      &alphabet);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->children.size(), 1u);
}

TEST(XmlTest, ExplicitClosingTagsForLeaves) {
  Alphabet alphabet;
  StatusOr<Tree> tree = ParseXml("<a><b></b></a>", &alphabet);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_TRUE(tree->children[0].IsLeaf());
}

TEST(XmlTest, RejectsMalformedDocuments) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseXml("<a><b></a></b>", &alphabet).ok());  // mismatched
  EXPECT_FALSE(ParseXml("<a>", &alphabet).ok());             // unclosed
  EXPECT_FALSE(ParseXml("<a/><b/>", &alphabet).ok());        // two roots
  EXPECT_FALSE(ParseXml("<a x=\"1\"/>", &alphabet).ok());    // attributes
  EXPECT_FALSE(ParseXml("<a>text</a>", &alphabet).ok());     // text
  EXPECT_FALSE(ParseXml("", &alphabet).ok());
}

TEST(XmlTest, RoundTripsThroughSerializer) {
  Alphabet alphabet;
  const char* source = "<a><b><c/><c/></b><d/></a>";
  StatusOr<Tree> tree = ParseXml(source, &alphabet);
  ASSERT_TRUE(tree.ok());
  std::string serialized = ToXml(*tree, alphabet);
  StatusOr<Tree> reparsed = ParseXml(serialized, &alphabet);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*tree, *reparsed);
}

TEST(XmlTest, SerializerUsesSelfClosingLeaves) {
  Alphabet alphabet({"a", "b"});
  Tree tree(0, {Tree(1)});
  EXPECT_EQ(ToXml(tree, alphabet), "<a>\n  <b/>\n</a>\n");
  EXPECT_EQ(ToXml(Tree(1), alphabet), "<b/>\n");
}

}  // namespace
}  // namespace stap
