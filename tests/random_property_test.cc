// Randomized end-to-end properties tying the whole pipeline together:
// generators produce valid schemas, sampling produces members, and the
// approximation operators satisfy their lattice laws.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/random.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/text_format.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

class PipelineTest : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937 rng_{static_cast<uint32_t>(GetParam() * 69061 + 17)};
};

TEST_P(PipelineTest, GeneratorsProduceReducedNonEmptySchemas) {
  RandomSchemaParams params;
  Edtd general = RandomEdtd(&rng_, params);
  EXPECT_GT(general.num_types(), 0);
  EXPECT_TRUE(IsReduced(general));
  Edtd single = RandomStEdtd(&rng_, params);
  EXPECT_GT(single.num_types(), 0);
  EXPECT_TRUE(IsSingleType(single));
  EXPECT_TRUE(IsReduced(single));
}

TEST_P(PipelineTest, SampledTreesAreMembers) {
  RandomSchemaParams params;
  Edtd schema = RandomStEdtd(&rng_, params);
  DfaXsd xsd = DfaXsdFromStEdtd(schema);
  for (int i = 0; i < 10; ++i) {
    std::optional<Tree> tree = SampleTree(xsd, &rng_, 5);
    ASSERT_TRUE(tree.has_value());
    EXPECT_TRUE(xsd.Accepts(*tree)) << tree->ToString(xsd.sigma);
  }
}

TEST_P(PipelineTest, TextFormatRoundTripsRandomSchemas) {
  RandomSchemaParams params;
  params.num_types = 4;
  Edtd schema = RandomStEdtd(&rng_, params);
  std::string text = SchemaToText(schema);
  StatusOr<Edtd> reparsed = ParseSchema(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_TRUE(SingleTypeEquivalent(schema, *reparsed)) << text;
}

TEST_P(PipelineTest, UpperBooleanLatticeLaws) {
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  params.content_breadth = 1;
  Edtd d1 = RandomStEdtd(&rng_, params);
  Edtd d2 = RandomStEdtd(&rng_, params);

  // Union upper bound contains both inputs.
  DfaXsd u = UpperUnion(d1, d2);
  EXPECT_TRUE(EdtdIncludedInXsd(d1, u));
  EXPECT_TRUE(EdtdIncludedInXsd(d2, u));

  // Intersection is exact: included in both inputs.
  DfaXsd i = UpperIntersection(d1, d2);
  Edtd i_edtd = StEdtdFromDfaXsd(i);
  EXPECT_TRUE(IncludedInSingleType(i_edtd, d1));
  EXPECT_TRUE(IncludedInSingleType(i_edtd, d2));

  // On bounded documents: union upper accepts everything either accepts;
  // intersection accepts exactly the common documents.
  auto [a1, a2] = AlignAlphabets(d1, d2);
  for (const Tree& tree : EnumerateTrees({3, 2, 2})) {
    bool in1 = a1.Accepts(tree), in2 = a2.Accepts(tree);
    if (in1 || in2) {
      EXPECT_TRUE(u.Accepts(tree));
    }
    EXPECT_EQ(i.Accepts(tree), in1 && in2) << tree.ToString(a1.sigma);
  }
}

TEST_P(PipelineTest, ComplementUpperCoversAllNonMembers) {
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  Edtd d = RandomStEdtd(&rng_, params);
  DfaXsd upper = UpperComplement(d);
  for (const Tree& tree : EnumerateTrees({3, 2, 2})) {
    if (!d.Accepts(tree)) {
      EXPECT_TRUE(upper.Accepts(tree)) << tree.ToString(d.sigma);
    }
  }
}

TEST_P(PipelineTest, DifferenceUpperSandwich) {
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  Edtd d1 = RandomStEdtd(&rng_, params);
  Edtd d2 = RandomStEdtd(&rng_, params);
  DfaXsd diff = UpperDifference(d1, d2);
  auto [a1, a2] = AlignAlphabets(d1, d2);
  for (const Tree& tree : EnumerateTrees({3, 2, 2})) {
    bool in_diff_semantics = a1.Accepts(tree) && !a2.Accepts(tree);
    // Upper bound of the difference...
    if (in_diff_semantics) {
      EXPECT_TRUE(diff.Accepts(tree)) << tree.ToString(a1.sigma);
    }
    // ...and never exceeding D1 (closure stays within the single-type
    // superset D1).
    if (!a1.Accepts(tree)) {
      EXPECT_FALSE(diff.Accepts(tree)) << tree.ToString(a1.sigma);
    }
  }
}

TEST_P(PipelineTest, MinimizationIsOrderInsensitive) {
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  Edtd d1 = RandomStEdtd(&rng_, params);
  Edtd d2 = RandomStEdtd(&rng_, params);
  // minimize(upper(d1 ∪ d2)) must equal minimize(upper(d2 ∪ d1)).
  DfaXsd u12 = MinimizeXsd(UpperUnion(d1, d2));
  DfaXsd u21 = MinimizeXsd(UpperUnion(d2, d1));
  // Alphabets may be permuted between the two orders; compare languages.
  EXPECT_TRUE(SingleTypeEquivalent(StEdtdFromDfaXsd(u12),
                                   StEdtdFromDfaXsd(u21)));
}

// The counted-content variants: with repeat_percent set the generators
// route through RandomRepeatContent, so the pipeline laws above are also
// exercised on kRepeat (r{n,m}) content models — a path PR 8 added that
// the original tests never reached.

TEST_P(PipelineTest, CountedContentSampledTreesAreMembers) {
  RandomSchemaParams params;
  params.repeat_percent = 100;
  Edtd schema = RandomStEdtd(&rng_, params);
  EXPECT_TRUE(IsSingleType(schema));
  DfaXsd xsd = DfaXsdFromStEdtd(schema);
  for (int i = 0; i < 10; ++i) {
    std::optional<Tree> tree = SampleTree(xsd, &rng_, 5);
    ASSERT_TRUE(tree.has_value());
    EXPECT_TRUE(xsd.Accepts(*tree)) << tree->ToString(xsd.sigma);
  }
}

TEST_P(PipelineTest, CountedContentTextFormatRoundTrips) {
  RandomSchemaParams params;
  params.num_types = 4;
  params.repeat_percent = 100;
  Edtd schema = RandomStEdtd(&rng_, params);
  std::string text = SchemaToText(schema);
  StatusOr<Edtd> reparsed = ParseSchema(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_TRUE(SingleTypeEquivalent(schema, *reparsed)) << text;
}

TEST_P(PipelineTest, CountedContentUpperBooleanLatticeLaws) {
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  params.content_breadth = 1;
  params.repeat_percent = 100;
  Edtd d1 = RandomStEdtd(&rng_, params);
  Edtd d2 = RandomStEdtd(&rng_, params);

  DfaXsd u = UpperUnion(d1, d2);
  EXPECT_TRUE(EdtdIncludedInXsd(d1, u));
  EXPECT_TRUE(EdtdIncludedInXsd(d2, u));

  DfaXsd i = UpperIntersection(d1, d2);
  Edtd i_edtd = StEdtdFromDfaXsd(i);
  EXPECT_TRUE(IncludedInSingleType(i_edtd, d1));
  EXPECT_TRUE(IncludedInSingleType(i_edtd, d2));

  auto [a1, a2] = AlignAlphabets(d1, d2);
  for (const Tree& tree : EnumerateTrees({3, 3, 2})) {
    bool in1 = a1.Accepts(tree), in2 = a2.Accepts(tree);
    if (in1 || in2) {
      EXPECT_TRUE(u.Accepts(tree));
    }
    EXPECT_EQ(i.Accepts(tree), in1 && in2) << tree.ToString(a1.sigma);
  }
}

// The generators must actually emit kRepeat nodes, not just set the
// plumbing up: across the fixed seed range, reduction keeps at least
// some counted provenance, and every surviving entry contains a repeat.
TEST(PipelineRepeatProvenanceTest, GeneratorsEmitRepeatNodes) {
  int surviving_repeat_sources = 0;
  for (int seed = 0; seed < 20; ++seed) {
    std::mt19937 rng(static_cast<uint32_t>(seed * 69061 + 17));
    RandomSchemaParams params;
    params.repeat_percent = 100;
    Edtd edtd = RandomEdtd(&rng, params);
    EXPECT_TRUE(IsReduced(edtd)) << "seed " << seed;
    if (edtd.content_source.empty()) continue;  // retry-exhausted fallback
    EXPECT_EQ(edtd.content_source.size(), edtd.content.size());
    for (const RegexPtr& source : edtd.content_source) {
      if (source == nullptr) continue;
      EXPECT_TRUE(source->ContainsRepeat()) << "seed " << seed;
      ++surviving_repeat_sources;
    }
  }
  EXPECT_GT(surviving_repeat_sources, 0)
      << "no counted content model survived generator reduction";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace stap
