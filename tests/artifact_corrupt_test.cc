// Hostile-input tests for the compiled-schema artifact format.
//
// Every mutilation of a valid artifact — truncation at every 8-byte
// boundary, random bit flips, wrong magic, future version, oversized
// length fields, embedded NULs — must come back as a kInvalidArgument
// Status. Never a crash, never an abort in a STAP_CHECK'd setter, and
// never an attacker-sized allocation (the CI sanitizer jobs run this
// binary under ASan/UBSan, where an over-allocation or OOB read fails
// loudly).
//
// Run with --seed=N (or STAP_SEED=N) to explore different bit-flip
// streams; failures print the reproduction flag.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "stap/base/check.h"
#include "stap/gen/random.h"
#include "stap/io/artifact.h"
#include "stap/schema/text_format.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

constexpr char kSchemaSource[] = R"(
start Lib
type Lib     : library -> Book*
type Book    : book    -> Title Chapter+
type Title   : title   -> %
type Chapter : chapter -> (Section | %)
type Section : section -> %
)";

// One valid artifact every case mutates. Built once; tests copy it.
const std::string& ValidArtifact() {
  static const std::string* artifact = [] {
    StatusOr<CompiledSchema> schema = CompileSchema(kSchemaSource, nullptr);
    STAP_CHECK(schema.ok());
    return new std::string(SerializeArtifact(*schema));
  }();
  return *artifact;
}

// Asserts that `bytes` deserializes to kInvalidArgument (not OK, not a
// crash — the crash case fails by the process dying).
void ExpectRejected(const std::string& bytes, const std::string& what) {
  StatusOr<CompiledSchema> result = DeserializeArtifact(bytes);
  ASSERT_FALSE(result.ok()) << what << ": corrupt artifact was accepted";
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << what << ": " << result.status().message();
}

// Patches `artifact`'s payload through `mutate` and re-seals the header
// checksum, so the mutation reaches the structural validators instead of
// being caught by the (already well-tested) checksum gate.
std::string Reseal(std::string artifact,
                   const std::function<void(std::string*)>& mutate) {
  std::string payload = artifact.substr(kArtifactHeaderSize);
  mutate(&payload);
  const uint64_t checksum = HashBytes(payload);
  std::memcpy(&artifact[12], &checksum, sizeof(checksum));
  artifact.resize(kArtifactHeaderSize);
  artifact += payload;
  return artifact;
}

// Overwrites 4 bytes at `offset` in the payload with `value` (LE).
void PatchU32(std::string* payload, size_t offset, uint32_t value) {
  ASSERT_LE(offset + 4, payload->size());
  std::memcpy(&(*payload)[offset], &value, sizeof(value));
}

TEST(ArtifactCorrupt, ValidArtifactStillParses) {
  // Sanity: the fixture itself is accepted, so every rejection below is
  // caused by the mutation and not a broken fixture.
  EXPECT_TRUE(DeserializeArtifact(ValidArtifact()).ok());
  // And Reseal with an identity mutation keeps it accepted.
  std::string resealed = Reseal(ValidArtifact(), [](std::string*) {});
  EXPECT_TRUE(DeserializeArtifact(resealed).ok());
}

TEST(ArtifactCorrupt, EmptyAndTinyInputs) {
  ExpectRejected("", "empty input");
  for (size_t n = 1; n < kArtifactHeaderSize; ++n) {
    ExpectRejected(ValidArtifact().substr(0, n),
                   "sub-header prefix of " + std::to_string(n) + " bytes");
  }
}

TEST(ArtifactCorrupt, TruncationAtEvery8ByteBoundary) {
  const std::string& artifact = ValidArtifact();
  ASSERT_GT(artifact.size(), kArtifactHeaderSize);
  for (size_t cut = 0; cut < artifact.size(); cut += 8) {
    ExpectRejected(artifact.substr(0, cut),
                   "truncated to " + std::to_string(cut) + " bytes");
  }
  // One past every boundary and one short of the end, for good measure.
  ExpectRejected(artifact.substr(0, artifact.size() - 1), "last byte cut");
  ExpectRejected(artifact + '\0', "one trailing byte added");
}

TEST(ArtifactCorrupt, WrongMagic) {
  for (size_t i = 0; i < 8; ++i) {
    std::string bytes = ValidArtifact();
    bytes[i] ^= 0x01;
    ExpectRejected(bytes, "magic byte " + std::to_string(i) + " flipped");
    EXPECT_FALSE(LooksLikeArtifact(bytes));
  }
  EXPECT_TRUE(LooksLikeArtifact(ValidArtifact()));
}

TEST(ArtifactCorrupt, FutureVersionRejected) {
  for (uint32_t version : {kArtifactVersion + 1, kArtifactVersion + 1000,
                           0xffffffffu, 0u}) {
    std::string bytes = ValidArtifact();
    std::memcpy(&bytes[8], &version, sizeof(version));
    ExpectRejected(bytes, "version " + std::to_string(version));
  }
}

TEST(ArtifactCorrupt, ChecksumMismatchRejected) {
  std::string bytes = ValidArtifact();
  bytes[12] ^= 0x40;  // corrupt the stored checksum itself
  ExpectRejected(bytes, "checksum field flipped");
}

TEST(ArtifactCorrupt, RandomBitFlips) {
  const std::string& artifact = ValidArtifact();
  const size_t nbits = artifact.size() * 8;
  for (int i = 0; i < 500; ++i) {
    std::mt19937 rng(MixSeed(7000 + i));
    std::string bytes = artifact;
    const size_t bit = rng() % nbits;
    bytes[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    // A flip anywhere is fatal: header flips break magic/version/checksum,
    // payload flips break the checksum.
    ExpectRejected(bytes, "bit " + std::to_string(bit) + " flipped");
  }
}

TEST(ArtifactCorrupt, RandomMultiBitFlips) {
  const std::string& artifact = ValidArtifact();
  const size_t nbits = artifact.size() * 8;
  for (int i = 0; i < 100; ++i) {
    std::mt19937 rng(MixSeed(7600 + i));
    std::string bytes = artifact;
    const int flips = 2 + static_cast<int>(rng() % 16);
    for (int f = 0; f < flips; ++f) {
      const size_t bit = rng() % nbits;
      bytes[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
    StatusOr<CompiledSchema> result = DeserializeArtifact(bytes);
    // An even number of flips can cancel out; anything else must reject.
    if (bytes == artifact) continue;
    ASSERT_FALSE(result.ok()) << "multi-flip instance " << i;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

// --- resealed payload attacks ----------------------------------------
// These pass the checksum gate on purpose, exercising the structural
// validators: counts vs. remaining bytes, name caps, id ranges.

TEST(ArtifactCorrupt, OversizedCountFields) {
  // Stomp a huge count over every u32-aligned payload position. Whatever
  // field it lands on (a count, a dimension, a state id), deserialization
  // must reject without allocating anywhere near 4 GiB (ASan would OOM).
  const std::string& artifact = ValidArtifact();
  const size_t payload_size = artifact.size() - kArtifactHeaderSize;
  for (uint32_t evil : {0xffffffffu, 0x7fffffffu, 0x10000000u}) {
    for (size_t offset = 8; offset + 4 <= payload_size; offset += 4) {
      std::string bytes = Reseal(artifact, [&](std::string* payload) {
        PatchU32(payload, offset, evil);
      });
      StatusOr<CompiledSchema> result = DeserializeArtifact(bytes);
      if (result.ok()) continue;  // landed on a don't-care byte
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << "evil=" << evil << " offset=" << offset;
    }
  }
}

TEST(ArtifactCorrupt, SymbolNameOverCapRejected) {
  // The first alphabet section starts right after the payload's leading
  // source-hash u64: symbol count, then (length, bytes) pairs. Claiming a
  // length over kMaxSymbolNameBytes must be rejected even if the bytes
  // were actually present.
  std::string bytes = Reseal(ValidArtifact(), [](std::string* payload) {
    const uint32_t evil_len =
        static_cast<uint32_t>(kMaxSymbolNameBytes) + 1;
    PatchU32(payload, 12, evil_len);  // first name's length field
    // Supply that many bytes so only the cap (not truncation) can fire.
    payload->insert(16, evil_len, 'x');
  });
  ExpectRejected(bytes, "symbol name over the length cap");
}

TEST(ArtifactCorrupt, EmbeddedNulInSymbolNameRejected) {
  std::string bytes = Reseal(ValidArtifact(), [](std::string* payload) {
    // First symbol name's first byte -> NUL (length stays the same, so
    // the reader consumes it and must notice the NUL itself).
    (*payload)[16] = '\0';
  });
  ExpectRejected(bytes, "embedded NUL in symbol name");
}

TEST(ArtifactCorrupt, DuplicateSymbolNamesRejected) {
  // Hand-craft an alphabet section claiming two symbols both named "dup";
  // interning must notice the collision and reject.
  std::string crafted;
  auto put_u32 = [&crafted](uint32_t v) {
    crafted.append(reinterpret_cast<const char*>(&v), 4);
  };
  put_u32(2);
  put_u32(3);
  crafted += "dup";
  put_u32(3);
  crafted += "dup";
  StatusOr<Alphabet> result = DeserializeAlphabet(crafted);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArtifactCorrupt, TrailingGarbageRejected) {
  std::string bytes = Reseal(ValidArtifact(), [](std::string* payload) {
    payload->append(8, '\x5a');
  });
  ExpectRejected(bytes, "trailing bytes after the last section");
}

// --- raw section fuzzing ----------------------------------------------
// The standalone section deserializers see artifact-internal buffers, but
// tests and future tooling call them on raw files too; they get the same
// no-crash guarantee at single-byte truncation granularity.

TEST(ArtifactCorrupt, RawDfaTruncationsNeverCrash) {
  std::mt19937 rng(MixSeed(8000));
  Nfa nfa = RandomNfa(&rng, 6, 3);
  std::string bytes = SerializeDfa(Dfa::AllWords(3));
  std::string nfa_bytes = SerializeNfa(nfa);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    StatusOr<Dfa> result = DeserializeDfa(bytes.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "Dfa prefix of " << cut << " bytes";
  }
  for (size_t cut = 0; cut < nfa_bytes.size(); ++cut) {
    StatusOr<Nfa> result = DeserializeNfa(nfa_bytes.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "Nfa prefix of " << cut << " bytes";
  }
}

TEST(ArtifactCorrupt, RawSectionBitFlipsNeverCrash) {
  // Unlike the artifact, raw sections have no checksum: a flip may yield
  // a different-but-valid value, or an error — both fine. What is not
  // fine is a crash, an abort, or a sanitizer report.
  std::mt19937 rng(MixSeed(8100));
  Edtd edtd = RandomStEdtd(&rng, RandomSchemaParams());
  const std::string bytes = SerializeEdtd(edtd);
  for (int i = 0; i < 300; ++i) {
    std::mt19937 flip_rng(MixSeed(8200 + i));
    std::string mutated = bytes;
    const size_t bit = flip_rng() % (mutated.size() * 8);
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    StatusOr<Edtd> result = DeserializeEdtd(mutated);
    if (result.ok()) {
      // Accepted values must at least be internally consistent enough to
      // survive the structural invariant check without aborting.
      EXPECT_EQ(result->mu.size(), result->content.size());
    }
  }
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
