// Unit tests for DFA-based XSDs: Proposition 2.9 conversions and one-pass
// validation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stap/gen/families.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/streaming.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/validate.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

Edtd LibrarySchema() {
  SchemaBuilder builder;
  builder.AddType("Lib", "library", "Book*");
  builder.AddType("Book", "book", "Title Chapter+");
  builder.AddType("Title", "title", "%");
  builder.AddType("Chapter", "chapter", "Section*");
  builder.AddType("Section", "section", "%");
  builder.AddStart("Lib");
  return builder.Build();
}

TEST(DfaXsdTest, ConversionRoundTripPreservesLanguage) {
  Edtd edtd = ReduceEdtd(LibrarySchema());
  ASSERT_TRUE(IsSingleType(edtd));
  DfaXsd xsd = DfaXsdFromStEdtd(edtd);
  Edtd back = StEdtdFromDfaXsd(xsd);
  for (const Tree& tree : EnumerateTrees({3, 2, 5})) {
    bool expected = edtd.Accepts(tree);
    EXPECT_EQ(xsd.Accepts(tree), expected) << tree.ToString(edtd.sigma);
    EXPECT_EQ(back.Accepts(tree), expected) << tree.ToString(edtd.sigma);
  }
}

TEST(DfaXsdTest, TypeSizeMatchesTypeCount) {
  Edtd edtd = ReduceEdtd(LibrarySchema());
  DfaXsd xsd = DfaXsdFromStEdtd(edtd);
  EXPECT_EQ(xsd.type_size(), edtd.num_types());
}

TEST(DfaXsdTest, ContextSensitiveTyping) {
  // The same label validates differently under different ancestors — the
  // defining power of XSD over DTD.
  SchemaBuilder builder;
  builder.AddType("Root", "a", "Left Right");
  builder.AddType("Left", "l", "X1");
  builder.AddType("Right", "r", "X2");
  builder.AddType("X1", "x", "%");      // x under l must be a leaf
  builder.AddType("X2", "x", "X2?");    // x under r may nest
  builder.AddStart("Root");
  Edtd edtd = ReduceEdtd(builder.Build());
  ASSERT_TRUE(IsSingleType(edtd));
  DfaXsd xsd = DfaXsdFromStEdtd(edtd);
  Alphabet& s = xsd.sigma;
  int a = s.Find("a"), l = s.Find("l"), r = s.Find("r"), x = s.Find("x");
  Tree nested_right(a, {Tree(l, {Tree(x)}),
                        Tree(r, {Tree(x, {Tree(x)})})});
  EXPECT_TRUE(xsd.Accepts(nested_right));
  Tree nested_left(a, {Tree(l, {Tree(x, {Tree(x)})}),
                       Tree(r, {Tree(x)})});
  EXPECT_FALSE(xsd.Accepts(nested_left));
}

TEST(DfaXsdTest, SizeAndWellFormedness) {
  DfaXsd xsd = DfaXsdFromStEdtd(ReduceEdtd(LibrarySchema()));
  xsd.CheckWellFormed();
  EXPECT_GT(xsd.Size(), xsd.type_size());
}

TEST(DfaXsdTest, NonZeroInitialStateValidates) {
  // A hand-built XSD whose q_init is the highest-numbered state instead of
  // state 0. Every validator must route the root lookup through
  // automaton.initial(); the old code hard-coded state 0 and either
  // aborted in CheckWellFormed or rejected every document.
  DfaXsd xsd;
  xsd.sigma = Alphabet({"a", "b"});
  const int a = 0, b = 1;
  Dfa automaton(3, 2);
  automaton.SetInitial(2);
  automaton.SetTransition(2, a, 1);  // root <a> is typed by state 1
  automaton.SetTransition(1, b, 0);  // <b> under <a> is typed by state 0
  xsd.automaton = automaton;
  xsd.state_label = {b, a, kNoSymbol};
  xsd.content.resize(3, Dfa::EpsilonOnly(2));
  Dfa b_optional(2, 2);  // content of <a>: "b?"
  b_optional.SetTransition(0, b, 1);
  b_optional.SetFinal(0);
  b_optional.SetFinal(1);
  xsd.content[1] = b_optional;
  xsd.start_symbols = {a};
  xsd.CheckWellFormed();

  Tree good(a, {Tree(b)});
  Tree bad(a, {Tree(a)});
  EXPECT_TRUE(xsd.Accepts(good));
  EXPECT_TRUE(xsd.Accepts(Tree(a)));
  EXPECT_FALSE(xsd.Accepts(bad));
  EXPECT_FALSE(xsd.Accepts(Tree(b)));

  EXPECT_TRUE(ValidateWithDiagnostics(xsd, good).ok);
  EXPECT_FALSE(ValidateWithDiagnostics(xsd, bad).ok);
  EXPECT_TRUE(ValidateStreaming(xsd, good));
  EXPECT_FALSE(ValidateStreaming(xsd, bad));

  // The EDTD conversion handles the shifted state numbering too.
  Edtd back = StEdtdFromDfaXsd(xsd);
  EXPECT_TRUE(back.Accepts(good));
  EXPECT_FALSE(back.Accepts(bad));
}

TEST(ValidateTest, ReportsViolationPathAndMessage) {
  DfaXsd xsd = DfaXsdFromStEdtd(ReduceEdtd(LibrarySchema()));
  Alphabet& s = xsd.sigma;
  int library = s.Find("library"), book = s.Find("book"),
      title = s.Find("title"), chapter = s.Find("chapter");

  Tree ok(library, {Tree(book, {Tree(title), Tree(chapter)})});
  EXPECT_TRUE(ValidateWithDiagnostics(xsd, ok).ok);

  // book missing its chapters.
  Tree missing(library, {Tree(book, {Tree(title)})});
  ValidationResult result = ValidateWithDiagnostics(xsd, missing);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.violation_path, TreePath{0});
  EXPECT_NE(result.message.find("book"), std::string::npos);

  // Wrong root.
  ValidationResult wrong_root = ValidateWithDiagnostics(xsd, Tree(book));
  EXPECT_FALSE(wrong_root.ok);
  EXPECT_NE(wrong_root.message.find("start"), std::string::npos);
}

TEST(ValidateTest, TruncatesLongChildStringsInDiagnostics) {
  DfaXsd xsd = DfaXsdFromStEdtd(ReduceEdtd(LibrarySchema()));
  Alphabet& s = xsd.sigma;
  int library = s.Find("library"), book = s.Find("book"),
      chapter = s.Find("chapter");

  // 40 chapters but no title: the content-model failure at <book> would
  // otherwise echo all 40 symbols; only 32 are shown.
  std::vector<Tree> chapters(40, Tree(chapter));
  Tree wide(library, {Tree(book, std::move(chapters))});
  ValidationResult result = ValidateWithDiagnostics(xsd, wide);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.violation_path, TreePath{0});
  EXPECT_NE(result.message.find("... (+8 more; 40 symbols total)"),
            std::string::npos)
      << result.message;
}

TEST(ValidateTest, AgreesWithAcceptsOnEnumeration) {
  DfaXsd xsd = DfaXsdFromStEdtd(ReduceEdtd(LibrarySchema()));
  for (const Tree& tree : EnumerateTrees({3, 2, 5})) {
    EXPECT_EQ(ValidateWithDiagnostics(xsd, tree).ok, xsd.Accepts(tree));
  }
}

// Paper families are single-type and the conversions stay faithful.
class FamilyConversionTest : public ::testing::TestWithParam<int> {};

TEST_P(FamilyConversionTest, Theorem36FamilyRoundTrips) {
  auto [d1, d2] = Theorem36Family(GetParam());
  for (Edtd* schema : {&d1, &d2}) {
    Edtd reduced = ReduceEdtd(*schema);
    ASSERT_TRUE(IsSingleType(reduced));
    DfaXsd xsd = DfaXsdFromStEdtd(reduced);
    for (const Tree& tree : EnumerateTrees({4, 1, 2})) {
      EXPECT_EQ(xsd.Accepts(tree), schema->Accepts(tree));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FamilyConversionTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace stap
