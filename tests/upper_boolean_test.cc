// Tests for Theorems 3.6 / 3.8 / 3.9 / 3.10: upper approximations of
// union, intersection, complement, difference of XSDs.
#include <gtest/gtest.h>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

// D1 = documents r(x(a), y(a)); D2 = documents r(x(b), y(b)).
std::pair<Edtd, Edtd> SiblingSchemas() {
  auto make = [](const std::string& leaf) {
    SchemaBuilder builder;
    builder.AddType("R", "r", "X Y");
    builder.AddType("X", "x", "Leaf");
    builder.AddType("Y", "y", "Leaf");
    builder.AddType("Leaf", leaf, "%");
    builder.AddStart("R");
    return builder.Build();
  };
  return {make("a"), make("b")};
}

TEST(UpperUnionTest, CoversBothAndAddsTheForcedMix) {
  auto [d1, d2] = SiblingSchemas();
  DfaXsd upper = UpperUnion(d1, d2);
  Alphabet& s = upper.sigma;
  int r = s.Find("r"), x = s.Find("x"), y = s.Find("y"), a = s.Find("a"),
      b = s.Find("b");
  EXPECT_TRUE(upper.Accepts(Tree(r, {Tree(x, {Tree(a)}),
                                     Tree(y, {Tree(a)})})));
  EXPECT_TRUE(upper.Accepts(Tree(r, {Tree(x, {Tree(b)}),
                                     Tree(y, {Tree(b)})})));
  // Forced by ancestor-guarded exchange between the two disjuncts:
  EXPECT_TRUE(upper.Accepts(Tree(r, {Tree(x, {Tree(a)}),
                                     Tree(y, {Tree(b)})})));
  // Not everything enters: shapes outside both schemas stay out.
  EXPECT_FALSE(upper.Accepts(Tree(r, {Tree(x, {Tree(a)})})));
  EXPECT_FALSE(upper.Accepts(Tree(x)));
}

TEST(UpperUnionTest, InclusionAndMinimalityOnEnumeration) {
  auto [d1, d2] = SiblingSchemas();
  DfaXsd upper = UpperUnion(d1, d2);
  // Upper bound property.
  EXPECT_TRUE(EdtdIncludedInXsd(d1, upper));
  EXPECT_TRUE(EdtdIncludedInXsd(d2, upper));
  // Minimality: equal to Construction 3.1 on the union EDTD, which the
  // paper proves minimal; cross-check against the generic path.
  DfaXsd generic = MinimalUpperApproximation(EdtdUnion(d1, d2));
  EXPECT_TRUE(XsdStructurallyEqual(MinimizeXsd(upper),
                                   MinimizeXsd(generic)));
}

TEST(UpperUnionTest, UnionOfSameSchemaIsIdentity) {
  auto [d1, d2] = SiblingSchemas();
  (void)d2;
  DfaXsd upper = UpperUnion(d1, d1);
  EXPECT_TRUE(SingleTypeEquivalent(d1, StEdtdFromDfaXsd(upper)));
}

TEST(UpperUnionTest, DisjointAlphabetsAlign) {
  SchemaBuilder b1;
  b1.AddType("A", "a", "%");
  b1.AddStart("A");
  SchemaBuilder b2;
  b2.AddType("B", "b", "%");
  b2.AddStart("B");
  DfaXsd upper = UpperUnion(b1.Build(), b2.Build());
  EXPECT_TRUE(upper.Accepts(Tree(upper.sigma.Find("a"))));
  EXPECT_TRUE(upper.Accepts(Tree(upper.sigma.Find("b"))));
}

TEST(UpperIntersectionTest, IsExact) {
  // D1: r with a* children; D2: r with exactly two a children.
  SchemaBuilder b1;
  b1.AddType("R", "r", "A*");
  b1.AddType("A", "a", "%");
  b1.AddStart("R");
  SchemaBuilder b2;
  b2.AddType("R", "r", "A A");
  b2.AddType("A", "a", "A?");
  b2.AddStart("R");
  Edtd d1 = b1.Build(), d2 = b2.Build();
  DfaXsd inter = UpperIntersection(d1, d2);
  Alphabet& s = inter.sigma;
  int r = s.Find("r"), a = s.Find("a");
  EXPECT_TRUE(inter.Accepts(Tree(r, {Tree(a), Tree(a)})));
  EXPECT_FALSE(inter.Accepts(Tree(r, {Tree(a)})));
  // d2 allows nested a's, d1 does not: intersection must not.
  EXPECT_FALSE(inter.Accepts(Tree(r, {Tree(a, {Tree(a)}), Tree(a)})));
  // Exactness on a full enumeration.
  for (const Tree& tree : EnumerateTrees({3, 3, 2})) {
    EXPECT_EQ(inter.Accepts(tree), d1.Accepts(tree) && d2.Accepts(tree))
        << tree.ToString(s);
  }
}

TEST(UpperIntersectionTest, EmptyIntersection) {
  SchemaBuilder b1;
  b1.AddType("A", "a", "%");
  b1.AddStart("A");
  SchemaBuilder b2;
  b2.AddType("B", "b", "%");
  b2.AddStart("B");
  DfaXsd inter = UpperIntersection(b1.Build(), b2.Build());
  EXPECT_EQ(inter.type_size(), 0);
}

TEST(UpperComplementTest, Theorem411ComplementWidensToAllNonLeaves) {
  // Complement of the Theorem 4.11 DTD (unary a-chains): trees with a
  // rank >= 2 node somewhere. That language is NOT single-type definable
  // (Theorem 4.11 shows it has infinitely many maximal lower
  // approximations); its closure under ancestor-guarded exchange pulls
  // every chain of length >= 2 back in, so the minimal upper
  // approximation is "every a-tree with at least two nodes".
  Edtd chains = Theorem411Dtd();
  DfaXsd upper = UpperComplement(chains);
  for (const Tree& tree : EnumerateTrees({4, 2, 1})) {
    EXPECT_EQ(upper.Accepts(tree), tree.NumNodes() >= 2)
        << tree.ToString(chains.sigma);
  }
}

TEST(UpperComplementTest, IsAnUpperBoundInGeneral) {
  auto [d1, d2] = SiblingSchemas();
  (void)d2;
  DfaXsd upper = UpperComplement(d1);
  // Every non-member within bounds is accepted by the approximation.
  for (const Tree& tree : EnumerateTrees({3, 2, d1.sigma.size()})) {
    if (!d1.Accepts(tree)) {
      EXPECT_TRUE(upper.Accepts(tree)) << tree.ToString(d1.sigma);
    }
  }
}

TEST(UpperDifferenceTest, CarvesOutTheSecondLanguage) {
  // D1: r -> a?; D2: r -> a. Difference: exactly { r } (the childless
  // root), which is single-type definable, so the result is exact.
  SchemaBuilder b1;
  b1.AddType("R", "r", "A?");
  b1.AddType("A", "a", "%");
  b1.AddStart("R");
  SchemaBuilder b2;
  b2.AddType("R", "r", "A");
  b2.AddType("A", "a", "%");
  b2.AddStart("R");
  Edtd d1 = b1.Build(), d2 = b2.Build();
  DfaXsd diff = UpperDifference(d1, d2);
  int r = diff.sigma.Find("r"), a = diff.sigma.Find("a");
  EXPECT_TRUE(diff.Accepts(Tree(r)));
  EXPECT_FALSE(diff.Accepts(Tree(r, {Tree(a)})));
  EXPECT_FALSE(diff.Accepts(Tree(a)));
}

TEST(UpperDifferenceTest, UpperBoundOnEnumeration) {
  auto [d1, d2] = Theorem43Schemas();
  // D1 is not single-type-comparable with D2? Both are DTDs, hence
  // single-type. Difference: a*b chains minus a-trees = all of L(D1).
  DfaXsd diff = UpperDifference(d1, d2);
  for (const Tree& tree : EnumerateTrees({4, 2, 2})) {
    if (d1.Accepts(tree) && !d2.Accepts(tree)) {
      EXPECT_TRUE(diff.Accepts(tree)) << tree.ToString(d1.sigma);
    }
    // The approximation never exceeds L(D1) (D_c ⊆ D1 and upper
    // approximations of sub-languages of a single-type language stay
    // inside it).
    if (!d1.Accepts(tree)) {
      EXPECT_FALSE(diff.Accepts(tree)) << tree.ToString(d1.sigma);
    }
  }
}

TEST(UpperDifferenceTest, DifferenceWithSelfIsEmpty) {
  auto [d1, d2] = SiblingSchemas();
  (void)d2;
  DfaXsd diff = UpperDifference(d1, d1);
  EXPECT_EQ(MinimizeXsd(diff).type_size(), 0);
}

TEST(EdtdIntersectionTest, ExactOnGeneralEdtds) {
  // Non-single-type inputs: the intersection must respect typings, not
  // just labels.
  SchemaBuilder b1;
  b1.AddType("R1", "r", "X1");
  b1.AddType("R2", "r", "X2 X2");
  b1.AddType("X1", "x", "%");
  b1.AddType("X2", "x", "%");
  b1.AddStart("R1");
  b1.AddStart("R2");
  SchemaBuilder b2;
  b2.AddType("R", "r", "X X?");
  b2.AddType("X", "x", "X?");
  b2.AddStart("R");
  Edtd d1 = b1.Build(), d2 = b2.Build();
  Edtd inter = EdtdIntersection(d1, d2);
  auto [a1, a2] = AlignAlphabets(d1, d2);
  for (const Tree& tree : EnumerateTrees({3, 2, a1.sigma.size()})) {
    EXPECT_EQ(inter.Accepts(tree), a1.Accepts(tree) && a2.Accepts(tree))
        << tree.ToString(a1.sigma);
  }
}

TEST(EdtdIntersectionTest, AgreesWithSingleTypeProduct) {
  auto [d1, d2] = Theorem38Family(2);
  Edtd inter = EdtdIntersection(d1, d2);
  DfaXsd product = UpperIntersection(d1, d2);
  for (int len : {3, 5, 15, 16}) {
    Tree chain = Tree::Unary(Word(static_cast<size_t>(len), 0));
    EXPECT_EQ(inter.Accepts(chain), product.Accepts(chain)) << len;
  }
  EXPECT_TRUE(inter.Accepts(Tree::Unary(Word(15, 0))));  // lcm(3, 5)
}

TEST(ComplementEdtdTest, DefinesTheExactComplement) {
  auto [d1, d2] = SiblingSchemas();
  (void)d2;
  Edtd reduced = ReduceEdtd(d1);
  Edtd complement = ComplementEdtd(DfaXsdFromStEdtd(reduced));
  for (const Tree& tree : EnumerateTrees({3, 2, d1.sigma.size()})) {
    EXPECT_EQ(complement.Accepts(tree), !d1.Accepts(tree))
        << tree.ToString(d1.sigma);
  }
}

TEST(DifferenceEdtdTest, DefinesTheExactDifference) {
  auto [d1, d2] = Theorem43Schemas();
  Edtd r1 = ReduceEdtd(d1);
  Edtd r2 = ReduceEdtd(d2);
  // Align to a common alphabet first.
  auto [a1, a2] = AlignAlphabets(r1, r2);
  Edtd difference = DifferenceEdtd(ReduceEdtd(a1),
                                   DfaXsdFromStEdtd(ReduceEdtd(a2)));
  for (const Tree& tree : EnumerateTrees({4, 2, 2})) {
    EXPECT_EQ(difference.Accepts(tree),
              a1.Accepts(tree) && !a2.Accepts(tree))
        << tree.ToString(a1.sigma);
  }
}

// The Theorem 3.6 family: quadratic type-size of the union approximation.
class Theorem36Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem36Test, QuadraticTypeSize) {
  const int n = GetParam();
  auto [d1, d2] = Theorem36Family(n);
  DfaXsd upper = MinimizeXsd(UpperUnion(d1, d2));
  // The proof exhibits n^2 pairwise-distinct types (reached by a^k b^l).
  EXPECT_GE(upper.type_size(), n * n);
  // Sanity: members of both languages stay in.
  EXPECT_TRUE(EdtdIncludedInXsd(d1, upper));
  EXPECT_TRUE(EdtdIncludedInXsd(d2, upper));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem36Test, ::testing::Values(2, 3, 4));

// Theorem 3.8's intersection family: Ω(p1·p2) types.
class Theorem38Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem38Test, ProductTypeSize) {
  const int n = GetParam();
  auto [d1, d2] = Theorem38Family(n);
  int p1 = ReduceEdtd(d1).num_types();
  int p2 = ReduceEdtd(d2).num_types();
  DfaXsd inter = MinimizeXsd(UpperIntersection(d1, d2));
  EXPECT_GE(inter.type_size(), p1 * p2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem38Test, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace stap
