// Seeded property test for the XSD frontend: random schemas with counted
// content models must survive export → import → export → import with
// their language intact and their bounds un-expanded, under every
// namespace-prefix spelling; hostile inputs (duplicate types, inverted
// or enormous bounds) must fail cleanly. Runs in the ASan/UBSan CI
// matrix, so the importer's parsing paths get sanitizer coverage on
// randomized documents.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "stap/approx/inclusion.h"
#include "stap/base/budget.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/xsd_io.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

// A random DTD-shaped schema (one type per label, so trivially
// single-type) over an acyclic type graph, where each particle carries a
// random occurrence modifier — counted bounds included. Each content
// model references each later type at most once, so the result is
// one-unambiguous and exports without UPA repair.
Edtd RandomCountedSchema(std::mt19937* rng) {
  const int num_types = 3 + static_cast<int>((*rng)() % 4);  // 3..6
  SchemaBuilder builder;
  std::vector<std::string> names;
  for (int i = 0; i < num_types; ++i) {
    names.push_back("T" + std::to_string(i));
  }
  for (int i = 0; i < num_types; ++i) {
    std::string content;
    for (int j = i + 1; j < num_types; ++j) {
      if ((*rng)() % 2 == 0) continue;  // skip this successor
      if (!content.empty()) content += " ";
      content += names[j];
      switch ((*rng)() % 5) {
        case 0:
          break;  // exactly once
        case 1:
          content += "?";
          break;
        case 2:
          content += "*";
          break;
        case 3: {  // bounded counted repetition
          int lo = static_cast<int>((*rng)() % 3);
          int hi = lo + 1 + static_cast<int>((*rng)() % 3);
          content += "{" + std::to_string(lo) + "," + std::to_string(hi) +
                     "}";
          break;
        }
        case 4: {  // unbounded counted repetition
          int lo = 1 + static_cast<int>((*rng)() % 3);
          content += "{" + std::to_string(lo) + ",}";
          break;
        }
      }
    }
    if (content.empty()) content = "%";
    builder.AddType(names[i], "l" + std::to_string(i), content);
  }
  builder.AddStart(names[0]);
  return builder.Build();
}

// Swaps the export's xs: prefix spelling for another binding of the XSD
// namespace, to drive the importer's prefix resolution.
std::string Reprefix(const std::string& xml, const std::string& prefix) {
  std::string out;
  size_t pos = 0;
  while (pos < xml.size()) {
    if (xml.compare(pos, 3, "xs:") == 0) {
      out += prefix.empty() ? "" : prefix + ":";
      pos += 3;
    } else if (xml.compare(pos, 9, "xmlns:xs=") == 0) {
      out += prefix.empty() ? "xmlns=" : "xmlns:" + prefix + "=";
      pos += 9;
    } else {
      out += xml[pos++];
    }
  }
  return out;
}

class CountedRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(CountedRoundTripTest, ExportImportPreservesCountedLanguages) {
  std::mt19937 rng(MixSeed(7300 + GetParam()));
  Edtd schema = ReduceEdtd(RandomCountedSchema(&rng));
  ASSERT_TRUE(IsSingleType(schema));
  DfaXsd xsd = MinimizeXsd(DfaXsdFromStEdtd(schema));

  std::string exported = ExportXsd(xsd);
  // The exporter must never fall back to expanding a counted bound into
  // a repeated particle: every counted content model in this family is
  // small in the bounds, so the document stays small too.
  EXPECT_LT(exported.size(), 8192u) << exported;
  StatusOr<Edtd> imported = ImportXsd(exported);
  ASSERT_TRUE(imported.ok()) << imported.status() << "\n" << exported;
  EXPECT_TRUE(SingleTypeEquivalent(schema, *imported)) << exported;

  // Second generation: provenance survives the re-import's own compile.
  std::string again =
      ExportXsd(MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(*imported))));
  StatusOr<Edtd> twice = ImportXsd(again);
  ASSERT_TRUE(twice.ok()) << twice.status() << "\n" << again;
  EXPECT_TRUE(SingleTypeEquivalent(schema, *twice)) << again;
}

TEST_P(CountedRoundTripTest, NamespaceSpellingsAreInterchangeable) {
  std::mt19937 rng(MixSeed(7400 + GetParam()));
  Edtd schema = ReduceEdtd(RandomCountedSchema(&rng));
  std::string exported = ExportXsd(MinimizeXsd(DfaXsdFromStEdtd(schema)));
  for (const char* prefix : {"xsd", "w", ""}) {
    std::string respelled = Reprefix(exported, prefix);
    StatusOr<Edtd> imported = ImportXsd(respelled);
    ASSERT_TRUE(imported.ok())
        << imported.status() << "\nprefix='" << prefix << "'\n" << respelled;
    EXPECT_TRUE(SingleTypeEquivalent(schema, *imported)) << respelled;
  }
}

TEST_P(CountedRoundTripTest, DuplicatedComplexTypeIsRejected) {
  std::mt19937 rng(MixSeed(7500 + GetParam()));
  Edtd schema = ReduceEdtd(RandomCountedSchema(&rng));
  std::string exported = ExportXsd(MinimizeXsd(DfaXsdFromStEdtd(schema)));
  // Duplicate the first top-level complexType block verbatim (export
  // never nests complexType elements, so the close tag is unambiguous).
  size_t open = exported.find("<xs:complexType");
  ASSERT_NE(open, std::string::npos) << exported;
  const std::string close_tag = "</xs:complexType>";
  size_t close = exported.find(close_tag, open);
  ASSERT_NE(close, std::string::npos) << exported;
  std::string block = exported.substr(open, close + close_tag.size() - open);
  std::string doctored = exported;
  doctored.insert(close + close_tag.size(), "\n" + block);
  StatusOr<Edtd> imported = ImportXsd(doctored);
  ASSERT_FALSE(imported.ok()) << doctored;
  EXPECT_NE(imported.status().ToString().find("duplicate"),
            std::string::npos)
      << imported.status();
}

TEST_P(CountedRoundTripTest, HostileBoundsFailCleanlyUnderBudget) {
  std::mt19937 rng(MixSeed(7600 + GetParam()));
  const int bound = 500000 + static_cast<int>(rng() % 500000);
  const std::string source = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:sequence>
      <xs:element name="b" type="E" minOccurs="1" maxOccurs=")" +
                             std::to_string(bound) + R"("/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="E"><xs:sequence/></xs:complexType>
</xs:schema>
)";
  Budget budget;
  budget.set_max_states(10000);
  StatusOr<Edtd> schema = ImportXsd(source, &budget);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kResourceExhausted)
      << schema.status();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountedRoundTripTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
