// Brute-force enumeration oracle for the counting DPs.
//
// The counters claim *exact* counts of the depth/width-bounded slice of
// L(D). This test enumerates every tree within tiny bounds, counts
// membership by calling Edtd::Accepts per tree, and requires all three
// implementations — the profile DP (CountEdtdByDepth), the binary-
// encoding DP over the determinized BTA (CountEdtdByDepthViaBinary), and
// for single-type inputs the per-state XSD DP (CountXsdByDepth) plus the
// joint intersection DP — to match the oracle on 500+ seeded random
// EDTDs, counted content models included. Runs in the ASan/UBSan and
// TSan CI matrices; the shared-budget test exercises the counters'
// concurrent charging paths under TSan.
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "stap/base/budget.h"
#include "stap/count/binary.h"
#include "stap/count/counter.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/tree/enumerate.h"
#include "test_seed.h"

namespace stap {
namespace {

using test::MixSeed;

// Oracle: per-depth cumulative membership counts of the enumerated slice.
std::vector<uint64_t> OracleCounts(const Edtd& edtd,
                                   const std::vector<Tree>& trees,
                                   int max_depth) {
  std::vector<uint64_t> counts(max_depth, 0);
  for (const Tree& tree : trees) {
    if (!edtd.Accepts(tree)) continue;
    for (int d = tree.Depth(); d <= max_depth; ++d) ++counts[d - 1];
  }
  return counts;
}

void ExpectMatchesOracle(const std::vector<uint64_t>& oracle,
                         const std::vector<CountValue>& counts,
                         const char* which) {
  ASSERT_EQ(oracle.size(), counts.size()) << which;
  for (size_t d = 0; d < oracle.size(); ++d) {
    ASSERT_TRUE(counts[d].exact()) << which << " depth " << (d + 1);
    EXPECT_EQ(counts[d].ToString(), std::to_string(oracle[d]))
        << which << " depth " << (d + 1);
  }
}

TEST(CountOracleTest, ProfileAndBinaryDpsMatchEnumerationOn500RandomEdtds) {
  TreeBounds tree_bounds;
  tree_bounds.max_depth = 3;
  tree_bounds.max_width = 2;
  tree_bounds.num_symbols = 2;
  const std::vector<Tree> trees = EnumerateTrees(tree_bounds);

  CountBounds bounds;
  bounds.max_depth = 3;
  bounds.max_width = 2;

  for (int i = 0; i < 500; ++i) {
    std::mt19937 rng(MixSeed(0x0C0DE000 + i));
    RandomSchemaParams params;
    params.num_symbols = 2;
    params.num_types = 3 + i % 2;
    params.content_breadth = 2;
    // Half the schemas carry counted (kRepeat) content models, so the
    // counters see the PR-8 content-model pipeline too.
    params.repeat_percent = (i % 2 == 0) ? 60 : 0;
    const Edtd edtd = RandomEdtd(&rng, params);
    const std::vector<uint64_t> oracle =
        OracleCounts(edtd, trees, bounds.max_depth);

    StatusOr<std::vector<CountValue>> profile =
        CountEdtdByDepth(edtd, bounds, nullptr);
    ASSERT_TRUE(profile.ok()) << "schema " << i << ": " << edtd.ToString();
    ExpectMatchesOracle(oracle, *profile, "profile DP");

    StatusOr<std::vector<CountValue>> binary =
        CountEdtdByDepthViaBinary(edtd, bounds, nullptr);
    ASSERT_TRUE(binary.ok()) << "schema " << i;
    ExpectMatchesOracle(oracle, *binary, "binary-encoding DP");

    if (HasFailure()) {
      ADD_FAILURE() << "failing schema " << i << ":\n" << edtd.ToString();
      return;
    }
  }
}

TEST(CountOracleTest, XsdAndIntersectionDpsMatchEnumerationOnSingleType) {
  TreeBounds tree_bounds;
  tree_bounds.max_depth = 3;
  tree_bounds.max_width = 2;
  tree_bounds.num_symbols = 3;
  const std::vector<Tree> trees = EnumerateTrees(tree_bounds);

  CountBounds bounds;
  bounds.max_depth = 3;
  bounds.max_width = 2;

  for (int i = 0; i < 120; ++i) {
    std::mt19937 rng(MixSeed(0x51D00000 + i));
    RandomSchemaParams params;
    params.num_symbols = 3;
    params.num_types = 4;
    params.content_breadth = 2;
    params.repeat_percent = (i % 3 == 0) ? 60 : 0;
    const Edtd st = RandomStEdtd(&rng, params);
    const DfaXsd xsd = DfaXsdFromStEdtd(st);
    const std::vector<uint64_t> oracle =
        OracleCounts(st, trees, bounds.max_depth);

    StatusOr<std::vector<CountValue>> by_state =
        CountXsdByDepth(xsd, bounds, nullptr);
    ASSERT_TRUE(by_state.ok()) << "schema " << i;
    ExpectMatchesOracle(oracle, *by_state, "XSD DP");

    StatusOr<std::vector<CountValue>> by_profile =
        CountEdtdByDepth(st, bounds, nullptr);
    ASSERT_TRUE(by_profile.ok()) << "schema " << i;
    ExpectMatchesOracle(oracle, *by_profile, "profile DP");

    // |L(xsd) ∩ L(xsd)| = |L(xsd)|: the joint DP agrees with both.
    StatusOr<std::vector<CountValue>> self =
        CountIntersectionByDepth(xsd, st, bounds, nullptr);
    ASSERT_TRUE(self.ok()) << "schema " << i;
    ExpectMatchesOracle(oracle, *self, "intersection DP");

    if (HasFailure()) {
      ADD_FAILURE() << "failing schema " << i << ":\n" << st.ToString();
      return;
    }
  }
}

// A fixed recursive schema whose slice counts are known in closed form:
// root(a) -> (leaf | root)^{0..w}, leaf(b) -> ε. Checked by the oracle at
// small bounds, then by monotone growth at bounds the enumerator cannot
// reach — the exactness argument the DP makes must not depend on the
// language being finite.
TEST(CountOracleTest, RecursiveSchemaMatchesOracleAndKeepsGrowing) {
  SchemaBuilder builder;
  builder.AddType("Root", "a", "(Leaf | Root)*");
  builder.AddType("Leaf", "b", "%");
  builder.AddStart("Root");
  const Edtd edtd = ReduceEdtd(builder.Build());

  TreeBounds tree_bounds;
  tree_bounds.max_depth = 4;
  tree_bounds.max_width = 2;
  tree_bounds.num_symbols = 2;
  const std::vector<Tree> trees = EnumerateTrees(tree_bounds);
  const std::vector<uint64_t> oracle = OracleCounts(edtd, trees, 4);

  CountBounds bounds;
  bounds.max_depth = 4;
  bounds.max_width = 2;
  StatusOr<std::vector<CountValue>> counts =
      CountEdtdByDepth(edtd, bounds, nullptr);
  ASSERT_TRUE(counts.ok());
  ExpectMatchesOracle(oracle, *counts, "profile DP");

  bounds.max_depth = 9;
  bounds.max_width = 3;
  counts = CountEdtdByDepth(edtd, bounds, nullptr);
  ASSERT_TRUE(counts.ok());
  for (int d = 1; d < bounds.max_depth; ++d) {
    EXPECT_LT(CountValue::Compare((*counts)[d - 1], (*counts)[d]), 0)
        << "slice count must strictly grow at depth " << (d + 1);
  }
}

TEST(CountOracleTest, ExhaustedBudgetSurfacesAsResourceExhausted) {
  std::mt19937 rng(MixSeed(0xB4D9E7));
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = 5;
  const Edtd edtd = RandomEdtd(&rng, params);

  CountBounds bounds;
  bounds.max_depth = 6;
  bounds.max_width = 4;

  Budget sets_budget;
  sets_budget.set_max_sets(1);
  StatusOr<std::vector<CountValue>> counts =
      CountEdtdByDepth(edtd, bounds, &sets_budget);
  EXPECT_FALSE(counts.ok());
  EXPECT_EQ(counts.status().code(), StatusCode::kResourceExhausted);

  Budget states_budget;
  states_budget.set_max_states(1);
  counts = CountEdtdByDepth(edtd, bounds, &states_budget);
  EXPECT_FALSE(counts.ok());
  EXPECT_EQ(counts.status().code(), StatusCode::kResourceExhausted);

  Budget binary_budget;
  binary_budget.set_max_states(1);
  counts = CountEdtdByDepthViaBinary(edtd, bounds, &binary_budget);
  EXPECT_FALSE(counts.ok());
  EXPECT_EQ(counts.status().code(), StatusCode::kResourceExhausted);
}

// Many threads drive independent counts through one shared Budget — the
// pattern `stap serve` uses for per-request quotas. TSan checks the
// charging paths; the assert checks that a shared budget stays latched
// or clean consistently (every thread sees the same terminal behavior
// for an unlimited budget: success with identical counts).
TEST(CountOracleTest, ConcurrentCountsShareOneBudget) {
  std::mt19937 rng(MixSeed(0xC0C0));
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 4;
  const Edtd edtd = RandomEdtd(&rng, params);

  CountBounds bounds;
  bounds.max_depth = 4;
  bounds.max_width = 3;

  Budget budget;
  budget.set_max_states(1 << 22);
  budget.set_max_sets(1 << 22);

  StatusOr<std::vector<CountValue>> baseline =
      CountEdtdByDepth(edtd, bounds, nullptr);
  ASSERT_TRUE(baseline.ok());

  constexpr int kThreads = 4;
  std::vector<std::string> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      StatusOr<std::vector<CountValue>> counts =
          CountEdtdByDepth(edtd, bounds, &budget);
      results[t] = counts.ok() ? counts->back().ToString()
                               : counts.status().ToString();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], baseline->back().ToString()) << "thread " << t;
  }
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  stap::test::InitTestSeed(&argc, argv);
  return RUN_ALL_TESTS();
}
