// Tests for Construction 3.1 / Theorem 3.2: the minimal upper
// XSD-approximation of an EDTD.
#include <gtest/gtest.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/approx/lower_check.h"
#include "stap/approx/closure.h"
#include "stap/approx/upper.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/enumerate.h"
#include "stap/treeauto/exact.h"

namespace stap {
namespace {

// The canonical non-single-type language { a(b(c)), a(b) } whose minimal
// upper approximation is { a(b(c?)) }.
Edtd TwoRootsEdtd() {
  SchemaBuilder builder;
  builder.AddType("R1", "a", "B1");
  builder.AddType("R2", "a", "B2");
  builder.AddType("B1", "b", "C");
  builder.AddType("B2", "b", "%");
  builder.AddType("C", "c", "%");
  builder.AddStart("R1");
  builder.AddStart("R2");
  return builder.Build();
}

TEST(UpperTest, ContainsTheInputLanguage) {
  Edtd edtd = TwoRootsEdtd();
  DfaXsd upper = MinimalUpperApproximation(edtd);
  EXPECT_TRUE(EdtdIncludedInXsd(edtd, upper));
}

TEST(UpperTest, ComputesTheSubsetMerge) {
  Edtd edtd = TwoRootsEdtd();
  DfaXsd upper = MinimalUpperApproximation(edtd);
  Alphabet& s = upper.sigma;
  int a = s.Find("a"), b = s.Find("b"), c = s.Find("c");
  // The merged schema is a(b(c?)).
  EXPECT_TRUE(upper.Accepts(Tree(a, {Tree(b, {Tree(c)})})));
  EXPECT_TRUE(upper.Accepts(Tree(a, {Tree(b)})));
  EXPECT_FALSE(upper.Accepts(Tree(a)));
  EXPECT_FALSE(upper.Accepts(Tree(a, {Tree(b, {Tree(c), Tree(c)})})));
  // Type-size: one merged state per ancestor path a, ab, abc.
  EXPECT_EQ(MinimizeXsd(upper).type_size(), 3);
}

TEST(UpperTest, ExactForSingleTypeInputs) {
  SchemaBuilder builder;
  builder.AddType("R", "a", "B*");
  builder.AddType("B", "b", "%");
  builder.AddStart("R");
  Edtd edtd = builder.Build();
  ASSERT_TRUE(IsSingleType(edtd));
  DfaXsd upper = MinimalUpperApproximation(edtd);
  EXPECT_TRUE(SingleTypeEquivalent(edtd, StEdtdFromDfaXsd(upper)));
}

TEST(UpperTest, ApproximationIsExactIffDefinable) {
  // { a(b(c)), a(b) } IS closed under ancestor-guarded exchange, so it is
  // single-type definable and the approximation adds nothing.
  Edtd definable = TwoRootsEdtd();
  EXPECT_TRUE(IsSingleTypeDefinable(definable));
  DfaXsd upper = MinimalUpperApproximation(definable);
  for (const Tree& tree : EnumerateTrees({3, 2, 3})) {
    EXPECT_EQ(upper.Accepts(tree), definable.Accepts(tree))
        << tree.ToString(definable.sigma);
  }
}

TEST(UpperTest, ClosureEscapeForcesTheApproximation) {
  // Sibling-content interaction: L = { r(x(a), y(a)), r(x(b), y(b)) }
  // is not closed under exchange; the upper approximation must also
  // accept the mixed documents.
  SchemaBuilder builder;
  builder.AddType("R1", "r", "X1 Y1");
  builder.AddType("R2", "r", "X2 Y2");
  builder.AddType("X1", "x", "A1");
  builder.AddType("Y1", "y", "A2");
  builder.AddType("X2", "x", "B1");
  builder.AddType("Y2", "y", "B2");
  builder.AddType("A1", "a", "%");
  builder.AddType("A2", "a", "%");
  builder.AddType("B1", "b", "%");
  builder.AddType("B2", "b", "%");
  builder.AddStart("R1");
  builder.AddStart("R2");
  Edtd edtd = builder.Build();
  DfaXsd upper = MinimalUpperApproximation(edtd);
  Alphabet& s = upper.sigma;
  int r = s.Find("r"), x = s.Find("x"), y = s.Find("y"), a = s.Find("a"),
      b = s.Find("b");
  Tree mixed(r, {Tree(x, {Tree(a)}), Tree(y, {Tree(b)})});
  EXPECT_FALSE(edtd.Accepts(mixed));
  EXPECT_TRUE(upper.Accepts(mixed));
  // And the approximation is tight: it equals the product of the per-path
  // possibilities; nothing with wrong shape enters.
  EXPECT_FALSE(upper.Accepts(Tree(r, {Tree(x, {Tree(a), Tree(a)}),
                                      Tree(y, {Tree(b)})})));
  // And this is the witness that the language is not definable.
  EXPECT_FALSE(IsSingleTypeDefinable(edtd));
}

TEST(UpperTest, UpperOfUpperIsIdentity) {
  Edtd edtd = TwoRootsEdtd();
  DfaXsd upper = MinimalUpperApproximation(edtd);
  DfaXsd twice = MinimalUpperApproximation(StEdtdFromDfaXsd(upper));
  EXPECT_TRUE(XsdStructurallyEqual(MinimizeXsd(upper), MinimizeXsd(twice)));
}

TEST(UpperTest, ContentMinimizationIsLanguageNeutral) {
  // The UpperOptions ablation only changes representation sizes, never
  // the language.
  Edtd edtd = TwoRootsEdtd();
  UpperOptions no_minimize;
  no_minimize.minimize_content = false;
  DfaXsd with = MinimalUpperApproximation(edtd);
  DfaXsd without = MinimalUpperApproximation(edtd, no_minimize);
  EXPECT_TRUE(SingleTypeEquivalent(StEdtdFromDfaXsd(with),
                                   StEdtdFromDfaXsd(without)));
  EXPECT_LE(with.Size(), without.Size());
}

TEST(UpperTest, EmptyLanguage) {
  SchemaBuilder builder;
  builder.AddType("R", "a", "R");
  builder.AddStart("R");
  DfaXsd upper = MinimalUpperApproximation(builder.Build());
  EXPECT_EQ(upper.type_size(), 0);
  EXPECT_FALSE(upper.Accepts(Tree(0)));
}

// Theorem 3.2's exponential family: type-size of the approximation is
// exactly 2^n-ish while the input is linear in n.
class Theorem32Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem32Test, ExponentialBlowupAndCorrectness) {
  const int n = GetParam();
  Edtd edtd = Theorem32Family(n);
  EXPECT_LE(edtd.Size(), 64 * (n + 2));  // linear-size input
  DfaXsd upper = MinimizeXsd(MinimalUpperApproximation(edtd));
  // Minimal DFA for (a+b)*a(a+b)^n has 2^(n+1) states; the unary-tree XSD
  // mirrors it (up to final-state bookkeeping), so expect >= 2^n types.
  EXPECT_GE(upper.type_size(), 1 << n) << "n=" << n;
  // Unary members: exactly the words of the regex. Check a few.
  int a = upper.sigma.Find("a");
  int b = upper.sigma.Find("b");
  Word all_b(n + 1, b);
  Word good = all_b;
  good[0] = a;
  EXPECT_TRUE(upper.Accepts(Tree::Unary(good)));
  EXPECT_FALSE(upper.Accepts(Tree::Unary(all_b)));
  // Inclusion of the original language.
  EXPECT_TRUE(EdtdIncludedInXsd(edtd, upper));
  // Unary languages are closed under exchange only when the underlying
  // string language is "path-closed"; here the language IS definable —
  // unary tree languages are always single-type definable — so the
  // approximation is exact.
  EXPECT_TRUE(EdtdIncludedInExact(StEdtdFromDfaXsd(upper), edtd));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem32Test, ::testing::Values(1, 2, 3, 4));

// Ground-truth minimality on random *finite* EDTDs: the approximation
// must accept exactly closure(L(D)) (Theorem 3.2's characterization),
// which is computable exactly when L(D) is finite.
class UpperFiniteTest : public ::testing::TestWithParam<int> {};

TEST_P(UpperFiniteTest, EqualsExactClosureOfFiniteLanguages) {
  std::mt19937 rng(GetParam() * 60013 + 29);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  params.content_breadth = 2;
  Edtd edtd = RandomFiniteEdtd(&rng, params);
  // Depth <= 3 (DAG over 3 types), width <= 2: the enumeration is
  // complete, but cap the member count to keep closures tractable.
  std::vector<Tree> members;
  for (const Tree& tree : EnumerateTrees({3, 2, edtd.sigma.size()})) {
    if (edtd.Accepts(tree)) members.push_back(tree);
  }
  if (members.size() > 40) GTEST_SKIP() << "instance too large";
  ClosureOptions options;
  options.max_trees = 20000;
  ClosureResult closure = CloseUnderExchange(members, options);
  ASSERT_TRUE(closure.saturated);

  DfaXsd upper = MinimalUpperApproximation(edtd);
  // Every closure member is in the approximation (closedness direction).
  for (const Tree& tree : closure.trees) {
    EXPECT_TRUE(upper.Accepts(tree)) << tree.ToString(edtd.sigma);
  }
  // And nothing else within the bounds (minimality direction).
  for (const Tree& tree : EnumerateTrees({3, 2, edtd.sigma.size()})) {
    if (upper.Accepts(tree)) {
      EXPECT_TRUE(closure.Contains(tree)) << tree.ToString(edtd.sigma);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpperFiniteTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace stap
