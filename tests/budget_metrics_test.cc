// Tests for the resource-budget layer and the metrics registry: quota
// and deadline exhaustion surface as kResourceExhausted in bounded time
// on the paper's exponential family, null/unlimited budgets change
// nothing, exhaustion latches across threads, and the metrics dump stays
// parseable and resettable.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper.h"
#include "stap/automata/antichain.h"
#include "stap/automata/determinize.h"
#include "stap/base/budget.h"
#include "stap/base/metrics.h"
#include "stap/base/thread_pool.h"
#include "stap/gen/families.h"
#include "stap/regex/ast.h"
#include "stap/regex/glushkov.h"
#include "stap/schema/reduce.h"

namespace stap {
namespace {

// The Glushkov NFA of (a+b)* a (a+b)^n (Theorem 3.2's string language):
// determinization necessarily builds 2^(n+1) states, the canonical
// workload a budget must be able to stop.
Nfa LastLetterNfa(int n) {
  RegexPtr ab = Regex::Union({Regex::Symbol(0), Regex::Symbol(1)});
  std::vector<RegexPtr> parts;
  parts.push_back(Regex::Star(ab));
  parts.push_back(Regex::Symbol(0));
  for (int i = 0; i < n; ++i) parts.push_back(ab);
  return GlushkovAutomaton(*Regex::Concat(std::move(parts)),
                           /*num_symbols=*/2);
}

TEST(BudgetTest, StateQuotaStopsDeterminization) {
  Nfa nfa = LastLetterNfa(20);  // 2^21 subsets without a cap
  Budget budget;
  budget.set_max_states(1000);
  StatusOr<Dfa> dfa = Determinize(nfa, &budget);
  ASSERT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(dfa.status().message().find("budget exhausted"),
            std::string::npos)
      << dfa.status();
  // The construction stopped close to the quota, not far past it.
  EXPECT_GE(budget.states_charged(), 1000);
  EXPECT_LE(budget.states_charged(), 1100);
}

TEST(BudgetTest, DeadlineStopsApproximationInBoundedTime) {
  // The acceptance bar from the issue: a budget-exhausted run on the
  // family returns a clean Status within a small factor of the deadline
  // instead of grinding through the exponential construction.
  Edtd family = ReduceEdtd(Theorem32Family(16));
  Budget budget;
  budget.set_deadline_ms(100);
  const auto start = std::chrono::steady_clock::now();
  StatusOr<DfaXsd> xsd = MinimalUpperApproximation(family, &budget);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(xsd.ok());
  EXPECT_EQ(xsd.status().code(), StatusCode::kResourceExhausted);
  // Generous bound (CI machines vary), but far below the unbudgeted
  // runtime of the n=16 instance.
  EXPECT_LT(elapsed_ms, 2000.0) << xsd.status();
}

TEST(BudgetTest, NullAndUnlimitedBudgetsMatchTheWrapper) {
  Nfa nfa = LastLetterNfa(6);
  Dfa plain = Determinize(nfa);
  StatusOr<Dfa> via_null = Determinize(nfa, static_cast<Budget*>(nullptr));
  ASSERT_TRUE(via_null.ok());
  EXPECT_EQ(via_null->num_states(), plain.num_states());

  Budget unlimited;
  StatusOr<Dfa> via_unlimited = Determinize(nfa, &unlimited);
  ASSERT_TRUE(via_unlimited.ok());
  EXPECT_EQ(via_unlimited->num_states(), plain.num_states());
  EXPECT_EQ(unlimited.states_charged(), plain.num_states());
}

TEST(BudgetTest, ExhaustionLatchesAndKeepsTheFirstReason) {
  Budget budget;
  budget.set_max_sets(2);
  EXPECT_TRUE(budget.ChargeSets().ok());
  EXPECT_TRUE(budget.ChargeSets().ok());
  Status first = budget.ChargeSets();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  // Later charges of either kind fail fast with the original reason.
  Status later = budget.ChargeStates();
  ASSERT_FALSE(later.ok());
  EXPECT_EQ(later.message(), first.message());
  EXPECT_FALSE(budget.CheckDeadline().ok());
}

TEST(BudgetTest, NullTolerantStaticsAreUnlimited) {
  EXPECT_TRUE(Budget::ChargeStates(nullptr, 1 << 30).ok());
  EXPECT_TRUE(Budget::ChargeSets(nullptr, 1 << 30).ok());
  EXPECT_TRUE(Budget::CheckDeadline(nullptr).ok());
}

TEST(BudgetTest, AntichainInclusionRespectsTheBudget) {
  Nfa nfa = LastLetterNfa(12);
  Budget budget;
  budget.set_max_sets(10);
  StatusOr<bool> included = AntichainIncluded(nfa, nfa, &budget);
  ASSERT_FALSE(included.ok());
  EXPECT_EQ(included.status().code(), StatusCode::kResourceExhausted);
  // With room to finish, the budgeted path agrees with the wrapper.
  Budget enough;
  StatusOr<bool> ok = AntichainIncluded(nfa, nfa, &enough);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(SharedStatusTest, KeepsTheFirstErrorAndFlipsOk) {
  SharedStatus shared;
  EXPECT_TRUE(shared.ok());
  EXPECT_TRUE(shared.ToStatus().ok());
  shared.Update(Status());  // ok updates are no-ops
  shared.Update(ResourceExhaustedError("first"));
  shared.Update(InvalidArgumentError("second"));
  EXPECT_FALSE(shared.ok());
  EXPECT_EQ(shared.ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shared.ToStatus().message(), "first");
}

TEST(MetricsTest, CountersAccumulateAndSurviveReset) {
  Counter* counter = GetCounter("test.budget_metrics.counter");
  counter->Reset();
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42);
  // Reset zeroes the value; the pointer stays valid (cached lookups).
  MetricsRegistry::Global()->Reset();
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(GetCounter("test.budget_metrics.counter"), counter);
}

TEST(MetricsTest, HistogramTracksCountSumMinMax) {
  Histogram* histogram = GetHistogram("test.budget_metrics.histogram");
  histogram->Reset();
  histogram->Record(0.5);
  histogram->Record(3.0);
  histogram->Record(100.0);
  Histogram::Snapshot snapshot = histogram->snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_DOUBLE_EQ(snapshot.sum, 103.5);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);
  int64_t total = 0;
  for (int64_t bucket : snapshot.buckets) total += bucket;
  EXPECT_EQ(total, 3);
}

TEST(MetricsTest, ScopedTimerRecordsOnDestruction) {
  Histogram* histogram = GetHistogram("test.budget_metrics.timer");
  histogram->Reset();
  { ScopedTimer timer(histogram); }
  { ScopedTimer disabled(nullptr); }  // null histogram is a no-op
  EXPECT_EQ(histogram->snapshot().count, 1);
}

TEST(MetricsTest, KernelsPopulateTheRegistry) {
  MetricsRegistry::Global()->Reset();
  Nfa nfa = LastLetterNfa(6);
  Dfa dfa = Determinize(nfa);
  EXPECT_GE(GetCounter("determinize.calls")->value(), 1);
  EXPECT_GE(GetCounter("determinize.states_created")->value(),
            dfa.num_states());
}

TEST(MetricsTest, JsonDumpIsWellFormed) {
  MetricsRegistry::Global()->Reset();
  GetCounter("test.json \"quoted\\name")->Increment(7);
  GetHistogram("test.json.histogram")->Record(2.5);
  std::string json = MetricsRegistry::Global()->ToJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // The awkward name is escaped, not emitted raw.
  EXPECT_NE(json.find("test.json \\\"quoted\\\\name"), std::string::npos);
  // Braces balance (JsonEscape never emits bare braces).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsTest, PrometheusDumpExposesCountersAndHistograms) {
  MetricsRegistry::Global()->Reset();
  GetCounter("test.prom-counter")->Increment(5);
  Histogram* histogram = GetHistogram("test.prom.histogram");
  histogram->Record(0.5);  // bucket 0: < 1
  histogram->Record(3.0);  // bucket 2: [2, 4)
  histogram->Record(3.5);
  std::string text = MetricsRegistry::Global()->ToPrometheusText();

  // Names are prefixed and sanitized to the exposition charset.
  EXPECT_NE(text.find("# TYPE stap_test_prom_counter counter\n"
                      "stap_test_prom_counter 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE stap_test_prom_histogram histogram\n"),
            std::string::npos)
      << text;
  // Cumulative buckets: le="1" sees the sub-1 sample, le="2" adds
  // nothing, le="4" has all three; +Inf and _count agree on the total.
  EXPECT_NE(text.find("stap_test_prom_histogram_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stap_test_prom_histogram_bucket{le=\"2\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stap_test_prom_histogram_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stap_test_prom_histogram_sum 7\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("stap_test_prom_histogram_count 3\n"),
            std::string::npos)
      << text;
  // Cumulative counts never decrease across the bucket series.
  const std::string bucket_prefix = "stap_test_prom_histogram_bucket{le=";
  int64_t previous = 0;
  for (size_t pos = text.find(bucket_prefix); pos != std::string::npos;
       pos = text.find(bucket_prefix, pos + 1)) {
    size_t space = text.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    int64_t value = std::atoll(text.c_str() + space + 2);
    EXPECT_GE(value, previous) << text;
    previous = value;
  }
  // Every line is a comment or a `name value` sample (no JSON leakage).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_EQ(line.rfind("stap_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(ThreadPoolTest, DefaultThreadsHonorsTheEnvironmentOverride) {
  ASSERT_EQ(setenv("STAP_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3);
  ASSERT_EQ(setenv("STAP_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 0);
  // Malformed, negative, and out-of-range values fall back to hardware.
  for (const char* bad : {"abc", "-2", "12x", "", "99999"}) {
    ASSERT_EQ(setenv("STAP_THREADS", bad, 1), 0);
    EXPECT_GE(ThreadPool::DefaultThreads(), 1) << bad;
  }
  ASSERT_EQ(unsetenv("STAP_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, BudgetedSweepStopsOnSharedExhaustion) {
  // A parallel sweep sharing one small budget: every worker charges, the
  // first trip latches, and the sweep's SharedStatus reports exactly one
  // clean kResourceExhausted.
  ThreadPool pool(4);
  Budget budget;
  budget.set_max_states(50);
  SharedStatus shared;
  ThreadPool::ParallelFor(&pool, 200, [&](int) {
    if (!shared.ok()) return;
    shared.Update(budget.ChargeStates());
  });
  EXPECT_FALSE(shared.ok());
  EXPECT_EQ(shared.ToStatus().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace stap
