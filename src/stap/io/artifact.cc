#include "stap/io/artifact.h"

#include <cstring>
#include <utility>

#include "stap/automata/state_set_hash.h"
#include "stap/base/compile_cache.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"
#include "stap/schema/reduce.h"
#include "stap/schema/text_format.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/xsd_io.h"

namespace stap {

namespace {

// Caps on declared dimensions, over and above the bytes-remaining
// guards: no legitimate schema approaches them, and they keep every
// derived product (states × symbols) inside int64 arithmetic.
constexpr uint32_t kMaxDimension = 1u << 28;

// --- primitive writer -------------------------------------------------

class Writer {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      bytes_.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  }

  void PutU64(uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      bytes_.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  }

  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    bytes_.append(s);
  }

  void PutIntVector(const std::vector<int>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (int x : v) PutI32(x);
  }

  std::string Take() { return std::move(bytes_); }
  void Append(std::string_view s) { bytes_.append(s); }

 private:
  std::string bytes_;
};

// --- primitive bounds-checked reader ----------------------------------

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return bytes_.size() - offset_; }

  Status Truncated(size_t need) const {
    return InvalidArgumentError(
        "artifact truncated at byte " + std::to_string(offset_) + ": need " +
        std::to_string(need) + " bytes, have " + std::to_string(remaining()));
  }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated(1);
    *out = static_cast<uint8_t>(bytes_[offset_++]);
    return Status();
  }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated(4);
    uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[offset_ + b]))
           << (8 * b);
    }
    offset_ += 4;
    *out = v;
    return Status();
  }

  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated(8);
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes_[offset_ + b]))
           << (8 * b);
    }
    offset_ += 8;
    *out = v;
    return Status();
  }

  Status ReadI32(int32_t* out) {
    uint32_t v = 0;
    STAP_RETURN_IF_ERROR(ReadU32(&v));
    *out = static_cast<int32_t>(v);
    return Status();
  }

  // Reads an element count that is followed by at least
  // `min_bytes_per_element` bytes per element — the over-allocation
  // guard: a hostile count can never exceed what the buffer could hold.
  Status ReadCount(uint32_t* out, size_t min_bytes_per_element) {
    const size_t at = offset_;
    uint32_t n = 0;
    STAP_RETURN_IF_ERROR(ReadU32(&n));
    if (min_bytes_per_element > 0 &&
        static_cast<uint64_t>(n) >
            static_cast<uint64_t>(remaining()) / min_bytes_per_element) {
      return InvalidArgumentError(
          "artifact count " + std::to_string(n) + " at byte " +
          std::to_string(at) + " exceeds the " + std::to_string(remaining()) +
          " bytes remaining");
    }
    *out = n;
    return Status();
  }

  // Reads a length-prefixed string, enforcing the symbol-name hardening:
  // a byte-length cap and no embedded NUL bytes.
  Status ReadString(std::string* out, size_t max_bytes) {
    const size_t at = offset_;
    uint32_t len = 0;
    STAP_RETURN_IF_ERROR(ReadU32(&len));
    if (len > max_bytes) {
      return InvalidArgumentError("artifact string at byte " +
                                  std::to_string(at) + " has length " +
                                  std::to_string(len) + " > cap " +
                                  std::to_string(max_bytes));
    }
    if (remaining() < len) return Truncated(len);
    std::string_view raw = bytes_.substr(offset_, len);
    if (raw.find('\0') != std::string_view::npos) {
      return InvalidArgumentError("artifact string at byte " +
                                  std::to_string(at) +
                                  " contains an embedded NUL byte");
    }
    offset_ += len;
    out->assign(raw);
    return Status();
  }

  Status ExpectDone() const {
    if (remaining() == 0) return Status();
    return InvalidArgumentError(std::to_string(remaining()) +
                                " trailing bytes after artifact payload");
  }

 private:
  std::string_view bytes_;
  size_t offset_ = 0;
};

Status BadValue(const char* what, int64_t value, const Reader& reader) {
  return InvalidArgumentError("artifact: invalid " + std::string(what) + " " +
                              std::to_string(value) + " before byte " +
                              std::to_string(reader.offset()));
}

// Reads a dimension (state or symbol count).
Status ReadDimension(Reader* reader, const char* what, int* out) {
  uint32_t v = 0;
  STAP_RETURN_IF_ERROR(reader->ReadU32(&v));
  if (v > kMaxDimension) return BadValue(what, v, *reader);
  *out = static_cast<int>(v);
  return Status();
}

// Reads a sorted, duplicate-free id set with every element in
// [0, bound).
Status ReadSortedIdSet(Reader* reader, const char* what, int bound,
                       std::vector<int>* out) {
  uint32_t count = 0;
  STAP_RETURN_IF_ERROR(reader->ReadCount(&count, 4));
  out->clear();
  out->reserve(count);
  int previous = -1;
  for (uint32_t i = 0; i < count; ++i) {
    int32_t v = 0;
    STAP_RETURN_IF_ERROR(reader->ReadI32(&v));
    if (v <= previous || v >= bound) return BadValue(what, v, *reader);
    out->push_back(v);
    previous = v;
  }
  return Status();
}

// Reads a per-state finality vector (one 0/1 byte per state).
Status ReadFinalBytes(Reader* reader, int num_states,
                      std::vector<bool>* out) {
  if (reader->remaining() < static_cast<size_t>(num_states)) {
    return reader->Truncated(num_states);
  }
  out->assign(num_states, false);
  for (int q = 0; q < num_states; ++q) {
    uint8_t b = 0;
    STAP_RETURN_IF_ERROR(reader->ReadU8(&b));
    if (b > 1) return BadValue("final flag", b, *reader);
    (*out)[q] = b == 1;
  }
  return Status();
}

// --- Alphabet ---------------------------------------------------------

void AppendAlphabet(Writer* w, const Alphabet& alphabet) {
  w->PutU32(static_cast<uint32_t>(alphabet.size()));
  for (const std::string& name : alphabet.names()) w->PutString(name);
}

Status ReadAlphabet(Reader* reader, Alphabet* out) {
  uint32_t count = 0;
  STAP_RETURN_IF_ERROR(reader->ReadCount(&count, 4));
  Alphabet alphabet;
  std::string name;
  for (uint32_t i = 0; i < count; ++i) {
    STAP_RETURN_IF_ERROR(reader->ReadString(&name, kMaxSymbolNameBytes));
    if (alphabet.Intern(name) != static_cast<int>(i)) {
      return InvalidArgumentError("artifact alphabet: duplicate symbol '" +
                                  name + "'");
    }
  }
  *out = std::move(alphabet);
  return Status();
}

// --- Dfa --------------------------------------------------------------

void AppendDfa(Writer* w, const Dfa& dfa) {
  w->PutU32(static_cast<uint32_t>(dfa.num_states()));
  w->PutU32(static_cast<uint32_t>(dfa.num_symbols()));
  w->PutI32(dfa.initial());
  for (int q = 0; q < dfa.num_states(); ++q) {
    for (int a = 0; a < dfa.num_symbols(); ++a) w->PutI32(dfa.Next(q, a));
  }
  for (int q = 0; q < dfa.num_states(); ++q) {
    w->PutU8(dfa.IsFinal(q) ? 1 : 0);
  }
}

Status ReadDfa(Reader* reader, Dfa* out) {
  int num_states = 0;
  int num_symbols = 0;
  STAP_RETURN_IF_ERROR(ReadDimension(reader, "DFA state count", &num_states));
  STAP_RETURN_IF_ERROR(
      ReadDimension(reader, "DFA symbol count", &num_symbols));
  int32_t initial = 0;
  STAP_RETURN_IF_ERROR(reader->ReadI32(&initial));
  const bool initial_ok = num_states == 0
                              ? initial == 0
                              : (initial >= 0 && initial < num_states);
  if (!initial_ok) return BadValue("DFA initial state", initial, *reader);
  // Each delta entry is 4 serialized bytes, so this guard bounds the
  // allocation below by the buffer size.
  const uint64_t cells =
      static_cast<uint64_t>(num_states) * static_cast<uint64_t>(num_symbols);
  if (cells > reader->remaining() / 4) {
    return InvalidArgumentError(
        "artifact DFA " + std::to_string(num_states) + "x" +
        std::to_string(num_symbols) + " transition table exceeds the " +
        std::to_string(reader->remaining()) + " bytes remaining");
  }
  Dfa dfa(num_states, num_symbols);
  if (num_states > 0) dfa.SetInitial(initial);
  for (int q = 0; q < num_states; ++q) {
    for (int a = 0; a < num_symbols; ++a) {
      int32_t to = 0;
      STAP_RETURN_IF_ERROR(reader->ReadI32(&to));
      if (to != kNoState && (to < 0 || to >= num_states)) {
        return BadValue("DFA transition target", to, *reader);
      }
      if (to != kNoState) dfa.SetTransition(q, a, to);
    }
  }
  std::vector<bool> finals;
  STAP_RETURN_IF_ERROR(ReadFinalBytes(reader, num_states, &finals));
  for (int q = 0; q < num_states; ++q) {
    if (finals[q]) dfa.SetFinal(q);
  }
  *out = std::move(dfa);
  return Status();
}

// --- Nfa --------------------------------------------------------------

void AppendNfa(Writer* w, const Nfa& nfa) {
  w->PutU32(static_cast<uint32_t>(nfa.num_states()));
  w->PutU32(static_cast<uint32_t>(nfa.num_symbols()));
  w->PutIntVector(nfa.initial());
  for (int q = 0; q < nfa.num_states(); ++q) {
    w->PutU8(nfa.IsFinal(q) ? 1 : 0);
  }
  for (int q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.num_symbols(); ++a) {
      w->PutIntVector(nfa.Next(q, a));
    }
  }
}

Status ReadNfa(Reader* reader, Nfa* out) {
  int num_states = 0;
  int num_symbols = 0;
  STAP_RETURN_IF_ERROR(ReadDimension(reader, "NFA state count", &num_states));
  STAP_RETURN_IF_ERROR(
      ReadDimension(reader, "NFA symbol count", &num_symbols));
  // Every transition row costs at least its 4-byte count in the stream;
  // bounding rows by remaining/4 bounds the row-vector allocation.
  const uint64_t rows =
      static_cast<uint64_t>(num_states) * static_cast<uint64_t>(num_symbols);
  if (rows > reader->remaining() / 4) {
    return InvalidArgumentError(
        "artifact NFA " + std::to_string(num_states) + "x" +
        std::to_string(num_symbols) + " transition rows exceed the " +
        std::to_string(reader->remaining()) + " bytes remaining");
  }
  Nfa nfa(num_states, num_symbols);
  std::vector<int> initial;
  STAP_RETURN_IF_ERROR(
      ReadSortedIdSet(reader, "NFA initial state", num_states, &initial));
  for (int q : initial) nfa.AddInitial(q);
  std::vector<bool> finals;
  STAP_RETURN_IF_ERROR(ReadFinalBytes(reader, num_states, &finals));
  for (int q = 0; q < num_states; ++q) {
    if (finals[q]) nfa.SetFinal(q);
  }
  std::vector<int> row;
  for (int q = 0; q < num_states; ++q) {
    for (int a = 0; a < num_symbols; ++a) {
      STAP_RETURN_IF_ERROR(
          ReadSortedIdSet(reader, "NFA transition target", num_states, &row));
      if (!row.empty()) nfa.SetTransitionRow(q, a, row);
      row.clear();
    }
  }
  *out = std::move(nfa);
  return Status();
}

// --- Edtd -------------------------------------------------------------

void AppendEdtd(Writer* w, const Edtd& edtd) {
  AppendAlphabet(w, edtd.sigma);
  AppendAlphabet(w, edtd.types);
  w->PutIntVector(edtd.mu);
  w->PutIntVector(edtd.start_types);
  w->PutU32(static_cast<uint32_t>(edtd.content.size()));
  for (const Dfa& dfa : edtd.content) AppendDfa(w, dfa);
}

Status ReadEdtd(Reader* reader, Edtd* out) {
  Edtd edtd;
  STAP_RETURN_IF_ERROR(ReadAlphabet(reader, &edtd.sigma));
  STAP_RETURN_IF_ERROR(ReadAlphabet(reader, &edtd.types));
  uint32_t mu_count = 0;
  STAP_RETURN_IF_ERROR(reader->ReadCount(&mu_count, 4));
  if (static_cast<int>(mu_count) != edtd.types.size()) {
    return InvalidArgumentError(
        "artifact EDTD: type map covers " + std::to_string(mu_count) +
        " types but the type alphabet has " +
        std::to_string(edtd.types.size()));
  }
  for (uint32_t i = 0; i < mu_count; ++i) {
    int32_t label = 0;
    STAP_RETURN_IF_ERROR(reader->ReadI32(&label));
    if (label < 0 || label >= edtd.sigma.size()) {
      return BadValue("EDTD type label", label, *reader);
    }
    edtd.mu.push_back(label);
  }
  STAP_RETURN_IF_ERROR(ReadSortedIdSet(reader, "EDTD start type",
                                       edtd.types.size(), &edtd.start_types));
  uint32_t content_count = 0;
  STAP_RETURN_IF_ERROR(reader->ReadCount(&content_count, 12));
  if (static_cast<int>(content_count) != edtd.types.size()) {
    return InvalidArgumentError(
        "artifact EDTD: " + std::to_string(content_count) +
        " content models for " + std::to_string(edtd.types.size()) + " types");
  }
  for (uint32_t tau = 0; tau < content_count; ++tau) {
    Dfa dfa;
    STAP_RETURN_IF_ERROR(ReadDfa(reader, &dfa));
    if (dfa.num_symbols() != edtd.types.size()) {
      return InvalidArgumentError(
          "artifact EDTD: content model of type " + std::to_string(tau) +
          " ranges over " + std::to_string(dfa.num_symbols()) +
          " symbols, expected " + std::to_string(edtd.types.size()));
    }
    edtd.content.push_back(std::move(dfa));
  }
  *out = std::move(edtd);
  return Status();
}

// --- DfaXsd -----------------------------------------------------------

void AppendDfaXsd(Writer* w, const DfaXsd& xsd) {
  AppendAlphabet(w, xsd.sigma);
  w->PutIntVector(xsd.start_symbols);
  AppendDfa(w, xsd.automaton);
  w->PutIntVector(xsd.state_label);
  w->PutU32(static_cast<uint32_t>(xsd.content.size()));
  for (const Dfa& dfa : xsd.content) AppendDfa(w, dfa);
}

// Status-returning mirror of DfaXsd::CheckWellFormed (which aborts, and
// so must never see unvalidated bytes).
Status ValidateDfaXsd(const DfaXsd& xsd) {
  const int num_states = xsd.automaton.num_states();
  const int init = xsd.automaton.initial();
  if (num_states < 1) {
    return InvalidArgumentError("artifact XSD: automaton has no states");
  }
  if (xsd.automaton.num_symbols() != xsd.sigma.size()) {
    return InvalidArgumentError(
        "artifact XSD: automaton alphabet disagrees with sigma");
  }
  if (static_cast<int>(xsd.state_label.size()) != num_states ||
      static_cast<int>(xsd.content.size()) != num_states) {
    return InvalidArgumentError(
        "artifact XSD: per-state tables disagree with the state count");
  }
  if (xsd.state_label[init] != kNoSymbol) {
    return InvalidArgumentError("artifact XSD: q_init carries a label");
  }
  for (int q = 0; q < num_states; ++q) {
    const int label = xsd.state_label[q];
    if (q != init && (label < 0 || label >= xsd.sigma.size())) {
      return InvalidArgumentError("artifact XSD: state " + std::to_string(q) +
                                  " has out-of-range label " +
                                  std::to_string(label));
    }
    if (q != init && xsd.content[q].num_symbols() != xsd.sigma.size()) {
      return InvalidArgumentError(
          "artifact XSD: content model of state " + std::to_string(q) +
          " disagrees with the alphabet");
    }
    for (int a = 0; a < xsd.sigma.size(); ++a) {
      const int r = xsd.automaton.Next(q, a);
      if (r == kNoState) continue;
      if (r == init) {
        return InvalidArgumentError(
            "artifact XSD: q_init has an incoming transition");
      }
      if (xsd.state_label[r] != a) {
        return InvalidArgumentError(
            "artifact XSD: transition into state " + std::to_string(r) +
            " violates the state labeling");
      }
    }
  }
  return Status();
}

Status ReadDfaXsd(Reader* reader, DfaXsd* out) {
  DfaXsd xsd;
  STAP_RETURN_IF_ERROR(ReadAlphabet(reader, &xsd.sigma));
  STAP_RETURN_IF_ERROR(ReadSortedIdSet(reader, "XSD start symbol",
                                       xsd.sigma.size(), &xsd.start_symbols));
  STAP_RETURN_IF_ERROR(ReadDfa(reader, &xsd.automaton));
  uint32_t label_count = 0;
  STAP_RETURN_IF_ERROR(reader->ReadCount(&label_count, 4));
  if (static_cast<int>(label_count) != xsd.automaton.num_states()) {
    return InvalidArgumentError(
        "artifact XSD: label table size disagrees with the state count");
  }
  xsd.state_label.clear();
  for (uint32_t i = 0; i < label_count; ++i) {
    int32_t label = 0;
    STAP_RETURN_IF_ERROR(reader->ReadI32(&label));
    if (label != kNoSymbol && (label < 0 || label >= xsd.sigma.size())) {
      return BadValue("XSD state label", label, *reader);
    }
    xsd.state_label.push_back(label);
  }
  uint32_t content_count = 0;
  STAP_RETURN_IF_ERROR(reader->ReadCount(&content_count, 12));
  if (static_cast<int>(content_count) != xsd.automaton.num_states()) {
    return InvalidArgumentError(
        "artifact XSD: content table size disagrees with the state count");
  }
  for (uint32_t i = 0; i < content_count; ++i) {
    Dfa dfa;
    STAP_RETURN_IF_ERROR(ReadDfa(reader, &dfa));
    xsd.content.push_back(std::move(dfa));
  }
  STAP_RETURN_IF_ERROR(ValidateDfaXsd(xsd));
  *out = std::move(xsd);
  return Status();
}

template <typename T, typename AppendFn>
std::string SerializeSection(const T& value, AppendFn append) {
  Writer w;
  append(&w, value);
  return w.Take();
}

template <typename T, typename ReadFn>
StatusOr<T> DeserializeSection(std::string_view bytes, ReadFn read, T value) {
  Reader reader(bytes);
  STAP_RETURN_IF_ERROR(read(&reader, &value));
  STAP_RETURN_IF_ERROR(reader.ExpectDone());
  return value;
}

}  // namespace

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0x5354415043534131ull /* "STAPCSA1" */ ^
               (bytes.size() * 0x9e3779b97f4a7c15ull);
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i + b]))
              << (8 * b);
    }
    h = MixU64(h ^ word);
  }
  if (i < bytes.size()) {
    uint64_t tail = 0;
    for (int b = 0; i + b < bytes.size(); ++b) {
      tail |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i + b]))
              << (8 * b);
    }
    h = MixU64(h ^ tail);
  }
  return MixU64(h);
}

uint64_t DfaStructuralHash(const Dfa& dfa) {
  uint64_t h = MixU64(PackPair(dfa.num_states(), dfa.num_symbols()));
  h = MixU64(h ^ static_cast<uint64_t>(dfa.initial()));
  for (int q = 0; q < dfa.num_states(); ++q) {
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      h = MixU64(h ^ static_cast<uint64_t>(
                         static_cast<uint32_t>(dfa.Next(q, a))));
    }
    h = MixU64(h ^ (dfa.IsFinal(q) ? 0x2ull : 0x3ull));
  }
  return h;
}

std::string SerializeAlphabet(const Alphabet& alphabet) {
  return SerializeSection(alphabet, AppendAlphabet);
}
StatusOr<Alphabet> DeserializeAlphabet(std::string_view bytes) {
  return DeserializeSection<Alphabet>(bytes, ReadAlphabet, Alphabet());
}

std::string SerializeDfa(const Dfa& dfa) {
  return SerializeSection(dfa, AppendDfa);
}
StatusOr<Dfa> DeserializeDfa(std::string_view bytes) {
  return DeserializeSection<Dfa>(bytes, ReadDfa, Dfa());
}

std::string SerializeNfa(const Nfa& nfa) {
  return SerializeSection(nfa, AppendNfa);
}
StatusOr<Nfa> DeserializeNfa(std::string_view bytes) {
  return DeserializeSection<Nfa>(bytes, ReadNfa, Nfa(0, 0));
}

std::string SerializeEdtd(const Edtd& edtd) {
  return SerializeSection(edtd, AppendEdtd);
}
StatusOr<Edtd> DeserializeEdtd(std::string_view bytes) {
  return DeserializeSection<Edtd>(bytes, ReadEdtd, Edtd());
}

std::string SerializeDfaXsd(const DfaXsd& xsd) {
  return SerializeSection(xsd, AppendDfaXsd);
}
StatusOr<DfaXsd> DeserializeDfaXsd(std::string_view bytes) {
  return DeserializeSection<DfaXsd>(bytes, ReadDfaXsd, DfaXsd());
}

bool LooksLikeArtifact(std::string_view bytes) {
  return bytes.size() >= sizeof(kArtifactMagic) &&
         std::memcmp(bytes.data(), kArtifactMagic, sizeof(kArtifactMagic)) ==
             0;
}

std::string SerializeArtifact(const CompiledSchema& schema) {
  ScopedSpan span("artifact.serialize");
  Writer payload;
  payload.PutU64(schema.source_hash);
  AppendEdtd(&payload, schema.edtd);
  payload.PutU8(schema.single_type ? 1 : 0);
  if (schema.single_type) AppendDfaXsd(&payload, schema.xsd);
  payload.PutU32(static_cast<uint32_t>(schema.content_hashes.size()));
  for (uint64_t h : schema.content_hashes) payload.PutU64(h);

  const std::string body = payload.Take();
  Writer artifact;
  artifact.Append(std::string_view(kArtifactMagic, sizeof(kArtifactMagic)));
  artifact.PutU32(kArtifactVersion);
  artifact.PutU64(HashBytes(body));
  artifact.Append(body);
  std::string bytes = artifact.Take();
  GetCounter("artifact.serialize_bytes")->Increment(bytes.size());
  span.AddArg("bytes", static_cast<int64_t>(bytes.size()));
  return bytes;
}

StatusOr<CompiledSchema> DeserializeArtifact(std::string_view bytes) {
  ScopedSpan span("artifact.deserialize");
  span.AddArg("bytes", static_cast<int64_t>(bytes.size()));
  static Counter* const errors = GetCounter("artifact.deserialize_errors");
  auto fail = [&](Status status) {
    errors->Increment();
    return status;
  };
  if (bytes.size() < kArtifactHeaderSize) {
    return fail(InvalidArgumentError(
        "artifact header truncated: " + std::to_string(bytes.size()) +
        " bytes, need " + std::to_string(kArtifactHeaderSize)));
  }
  if (!LooksLikeArtifact(bytes)) {
    return fail(InvalidArgumentError("not a stap artifact (bad magic)"));
  }
  Reader header(bytes.substr(sizeof(kArtifactMagic), 12));
  uint32_t version = 0;
  uint64_t checksum = 0;
  STAP_RETURN_IF_ERROR(header.ReadU32(&version));
  STAP_RETURN_IF_ERROR(header.ReadU64(&checksum));
  if (version != kArtifactVersion) {
    return fail(InvalidArgumentError(
        "artifact format version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kArtifactVersion) + ")"));
  }
  std::string_view payload = bytes.substr(kArtifactHeaderSize);
  if (HashBytes(payload) != checksum) {
    return fail(
        InvalidArgumentError("artifact checksum mismatch (corrupt payload)"));
  }

  Reader reader(payload);
  CompiledSchema schema;
  Status status = [&]() -> Status {
    STAP_RETURN_IF_ERROR(reader.ReadU64(&schema.source_hash));
    STAP_RETURN_IF_ERROR(ReadEdtd(&reader, &schema.edtd));
    uint8_t single_type = 0;
    STAP_RETURN_IF_ERROR(reader.ReadU8(&single_type));
    if (single_type > 1) {
      return BadValue("single-type flag", single_type, reader);
    }
    schema.single_type = single_type == 1;
    if (schema.single_type) {
      STAP_RETURN_IF_ERROR(ReadDfaXsd(&reader, &schema.xsd));
      if (!(schema.xsd.sigma == schema.edtd.sigma)) {
        return InvalidArgumentError(
            "artifact: XSD alphabet disagrees with the schema alphabet");
      }
    }
    uint32_t hash_count = 0;
    STAP_RETURN_IF_ERROR(reader.ReadCount(&hash_count, 8));
    if (static_cast<int>(hash_count) != schema.edtd.num_types()) {
      return InvalidArgumentError(
          "artifact: " + std::to_string(hash_count) +
          " provenance hashes for " +
          std::to_string(schema.edtd.num_types()) + " types");
    }
    for (uint32_t i = 0; i < hash_count; ++i) {
      uint64_t h = 0;
      STAP_RETURN_IF_ERROR(reader.ReadU64(&h));
      if (h != DfaStructuralHash(schema.edtd.content[i])) {
        return InvalidArgumentError(
            "artifact: provenance hash mismatch on content model of type " +
            std::to_string(i));
      }
      schema.content_hashes.push_back(h);
    }
    return reader.ExpectDone();
  }();
  if (!status.ok()) return fail(std::move(status));
  GetCounter("artifact.deserialize_ok")->Increment();
  return schema;
}

CompiledSchema MakeCompiledSchema(const Edtd& edtd, uint64_t source_hash) {
  ScopedSpan span("artifact.compile_schema");
  CompiledSchema schema;
  schema.edtd = ReduceEdtd(edtd);
  schema.source_hash = source_hash;
  schema.single_type = IsSingleType(schema.edtd);
  if (schema.single_type) schema.xsd = DfaXsdFromStEdtd(schema.edtd);
  schema.content_hashes.reserve(schema.edtd.content.size());
  for (const Dfa& dfa : schema.edtd.content) {
    schema.content_hashes.push_back(DfaStructuralHash(dfa));
  }
  span.AddArg("types", schema.edtd.num_types());
  span.AddArg("single_type", static_cast<int64_t>(schema.single_type));
  return schema;
}

bool LooksLikeXml(std::string_view text) {
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    return c == '<';
  }
  return false;
}

StatusOr<CompiledSchema> CompileSchema(std::string_view schema_text,
                                       CompileCache* cache) {
  return CompileSchema(schema_text, cache, nullptr);
}

StatusOr<CompiledSchema> CompileSchema(std::string_view schema_text,
                                       CompileCache* cache, Budget* budget) {
  // Route by sniffing: XML documents go through the XSD frontend, which
  // has its own content-model memoization story (none yet — counted
  // models bypass the cache); everything else is the textual format.
  StatusOr<Edtd> edtd = LooksLikeXml(schema_text)
                            ? ImportXsd(schema_text, budget)
                            : ParseSchema(schema_text, cache, budget);
  if (!edtd.ok()) return edtd.status();
  return MakeCompiledSchema(*edtd, HashBytes(schema_text));
}

}  // namespace stap
