#include "stap/io/batch_validate.h"

#include <sstream>
#include <utility>

#include "stap/base/metrics.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/schema/validate.h"
#include "stap/tree/xml.h"

namespace stap {

DocumentVerdict ValidateDocument(const CompiledSchema& schema,
                                 std::string_view xml, Budget* budget) {
  DocumentVerdict verdict;
  Status deadline = Budget::CheckDeadline(budget);
  if (!deadline.ok()) {
    verdict.kind = DocumentVerdict::Kind::kError;
    verdict.message = deadline.message();
    verdict.error_code = deadline.code();
    return verdict;
  }
  // Per-document alphabet copy: ParseXml interns new names, and the
  // shared schema must stay immutable under the sweep.
  Alphabet alphabet = schema.edtd.sigma;
  StatusOr<Tree> tree = ParseXml(xml, &alphabet);
  if (!tree.ok()) {
    verdict.kind = DocumentVerdict::Kind::kError;
    verdict.message = tree.status().message();
    verdict.error_code = tree.status().code();
    return verdict;
  }
  // The pre-parse deadline check alone lets one huge document blow the
  // shared deadline unboundedly: charge the tree against the state quota
  // and re-sample the clock before walking it, so an oversized document
  // is cut off here instead of after an arbitrarily long validation.
  Status charged = Budget::ChargeStates(budget, tree->NumNodes());
  if (charged.ok()) charged = Budget::CheckDeadline(budget);
  if (!charged.ok()) {
    verdict.kind = DocumentVerdict::Kind::kError;
    verdict.message = charged.message();
    verdict.error_code = charged.code();
    return verdict;
  }
  if (alphabet.size() != schema.edtd.sigma.size()) {
    verdict.kind = DocumentVerdict::Kind::kInvalid;
    verdict.message = "document uses elements the schema does not declare";
    return verdict;
  }
  if (schema.single_type) {
    ValidationResult result = ValidateWithDiagnostics(schema.xsd, *tree);
    verdict.kind = result.ok ? DocumentVerdict::Kind::kValid
                             : DocumentVerdict::Kind::kInvalid;
    verdict.message = result.ok ? "" : result.message;
    return verdict;
  }
  const bool ok = schema.edtd.Accepts(*tree);
  verdict.kind =
      ok ? DocumentVerdict::Kind::kValid : DocumentVerdict::Kind::kInvalid;
  if (!ok) verdict.message = "document not in the schema language";
  return verdict;
}

namespace {

DocumentVerdict ValidateOne(const CompiledSchema& schema,
                            const BatchDocument& document, Budget* budget) {
  if (!document.read_error.empty()) {
    DocumentVerdict verdict;
    verdict.kind = DocumentVerdict::Kind::kError;
    verdict.message = document.read_error;
    verdict.error_code = StatusCode::kNotFound;
    return verdict;
  }
  return ValidateDocument(schema, document.xml, budget);
}

}  // namespace

BatchResult BatchValidate(const CompiledSchema& schema,
                          const std::vector<BatchDocument>& documents,
                          const BatchOptions& options) {
  ScopedSpan span("batch.validate");
  const int n = static_cast<int>(documents.size());
  span.AddArg("documents", n);
  BatchResult result;
  result.verdicts.resize(documents.size());

  const int jobs =
      options.jobs <= 0 ? ThreadPool::DefaultThreads() : options.jobs;
  span.AddArg("jobs", jobs);
  auto validate_index = [&](int i) {
    result.verdicts[i] = ValidateOne(schema, documents[i], options.budget);
  };
  if (jobs <= 1) {
    ThreadPool::ParallelFor(nullptr, n, validate_index);
  } else {
    // The calling thread participates in ParallelFor, so jobs - 1
    // workers gives `jobs` threads draining the batch.
    ThreadPool pool(jobs - 1);
    pool.ParallelFor(n, validate_index);
  }

  for (const DocumentVerdict& verdict : result.verdicts) {
    switch (verdict.kind) {
      case DocumentVerdict::Kind::kValid:
        ++result.num_valid;
        break;
      case DocumentVerdict::Kind::kInvalid:
        ++result.num_invalid;
        break;
      case DocumentVerdict::Kind::kError:
        ++result.num_errors;
        break;
    }
  }
  GetCounter("batch.documents")->Increment(n);
  GetCounter("batch.valid")->Increment(result.num_valid);
  GetCounter("batch.invalid")->Increment(result.num_invalid);
  GetCounter("batch.errors")->Increment(result.num_errors);
  return result;
}

std::string FormatBatchReport(const std::vector<BatchDocument>& documents,
                              const BatchResult& result) {
  std::ostringstream os;
  for (size_t i = 0; i < documents.size(); ++i) {
    const DocumentVerdict& verdict = result.verdicts[i];
    os << documents[i].name << ": ";
    switch (verdict.kind) {
      case DocumentVerdict::Kind::kValid:
        os << "VALID";
        break;
      case DocumentVerdict::Kind::kInvalid:
        os << "INVALID: " << verdict.message;
        break;
      case DocumentVerdict::Kind::kError:
        os << "ERROR: " << verdict.message;
        break;
    }
    os << "\n";
  }
  os << documents.size() << " documents: " << result.num_valid << " valid, "
     << result.num_invalid << " invalid, " << result.num_errors
     << " errors\n";
  return os.str();
}

}  // namespace stap
