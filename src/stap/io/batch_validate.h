// Parallel batch validation: many documents against one compiled schema.
//
// The serving-path counterpart of `stap validate`: given a CompiledSchema
// (loaded from an artifact or compiled through the cache), validate a
// batch of XML documents, fanning the per-document work out over a
// ThreadPool. Reports are indexed by input position and every message is
// a pure function of the document and the schema, so the rendered report
// is byte-identical whatever the job count — `--jobs 1` and `--jobs 8`
// must agree, and the determinism test asserts they do.
#ifndef STAP_IO_BATCH_VALIDATE_H_
#define STAP_IO_BATCH_VALIDATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "stap/base/budget.h"
#include "stap/io/artifact.h"

namespace stap {

struct BatchDocument {
  std::string name;  // display name (usually the file path)
  std::string xml;   // document text
  // Non-empty when the caller could not read the document (missing file,
  // I/O error); the sweep reports it as a per-document ERROR verdict
  // without attempting to parse `xml`.
  std::string read_error;
};

struct DocumentVerdict {
  enum class Kind {
    kValid,    // accepted by the schema
    kInvalid,  // well-formed XML, rejected by the schema
    kError,    // unreadable / malformed / budget exhausted
  };
  Kind kind = Kind::kError;
  std::string message;  // detail for kInvalid / kError, empty for kValid
  // The Status code behind a kError verdict (kResourceExhausted for a
  // tripped budget, kInvalidArgument for a malformed document, ...), so
  // callers like `stap serve` can map errors without string matching.
  StatusCode error_code = StatusCode::kOk;
};

struct BatchResult {
  std::vector<DocumentVerdict> verdicts;  // one per input, in input order
  int num_valid = 0;
  int num_invalid = 0;
  int num_errors = 0;

  bool all_valid() const { return num_invalid == 0 && num_errors == 0; }
};

struct BatchOptions {
  // Total worker count for the sweep. 1 = serial; 0 or negative = one
  // per hardware thread (ThreadPool::DefaultThreads).
  int jobs = 1;
  // Optional shared budget; once its deadline trips, remaining documents
  // report kError instead of validating.
  Budget* budget = nullptr;
};

// Validates one document. Thread-safe: the schema is only read; the
// parse interns into a private alphabet copy. The budget is checked
// before the parse, charged one state per tree node after it, and the
// deadline is re-sampled before validation, so a single oversized
// document cannot overrun a shared deadline unboundedly. Shared by the
// batch sweep below and the `stap serve` request path.
DocumentVerdict ValidateDocument(const CompiledSchema& schema,
                                 std::string_view xml, Budget* budget);

// Validates every document against `schema`. Thread-safe: the schema is
// only read; each worker keeps its own alphabet copy for interning.
BatchResult BatchValidate(const CompiledSchema& schema,
                          const std::vector<BatchDocument>& documents,
                          const BatchOptions& options);

// Renders one status line per document plus a summary line, in input
// order — deterministic for a given (schema, documents) whatever
// `options.jobs` was.
std::string FormatBatchReport(const std::vector<BatchDocument>& documents,
                              const BatchResult& result);

}  // namespace stap

#endif  // STAP_IO_BATCH_VALIDATE_H_
