// Compiled-schema artifacts: a versioned binary serialization of the
// compilation pipeline's outputs, so the serving path loads minimal
// content-model DFAs instead of re-running Glushkov → determinize →
// minimize per invocation.
//
// Layout (all integers little-endian):
//
//   magic[8]  "STAPCSA\n"
//   u32       format version (kArtifactVersion; newer versions rejected)
//   u64       checksum — chained splitmix64 over every payload byte
//   payload:
//     u64     source hash (hash of the schema text the artifact came from)
//     Edtd    the reduced schema (alphabets, type map, content DFAs)
//     u8      single-type flag
//     DfaXsd  (present iff single-type) the one-pass validator
//     u64[n]  per-type content-model provenance hashes
//
// Deserialization is hostile-input safe: every count is validated against
// the bytes actually remaining (no attacker-sized allocations), symbol
// names are capped in length and may not contain NUL bytes, all ids are
// range-checked, and the checksum rejects bit corruption before any
// structure is built. Every failure is a kInvalidArgument Status — never
// a crash.
#ifndef STAP_IO_ARTIFACT_H_
#define STAP_IO_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

class CompileCache;

inline constexpr char kArtifactMagic[8] = {'S', 'T', 'A', 'P',
                                           'C', 'S', 'A', '\n'};
inline constexpr uint32_t kArtifactVersion = 1;
// magic + version + checksum.
inline constexpr size_t kArtifactHeaderSize = 8 + 4 + 8;
// Hard cap on a serialized symbol name; longer names (and names with
// embedded NUL bytes) are rejected at deserialize time so a hostile
// artifact cannot inflate Alphabet memory.
inline constexpr size_t kMaxSymbolNameBytes = 4096;

// The unit the cache and the batch-validation driver share: everything
// `stap validate` needs, compiled once.
struct CompiledSchema {
  Edtd edtd;          // reduced (Proviso 2.3)
  bool single_type = false;
  DfaXsd xsd;         // meaningful iff single_type
  uint64_t source_hash = 0;             // hash of the schema source text
  std::vector<uint64_t> content_hashes;  // per type: DfaStructuralHash
};

// Chained splitmix64 over raw bytes; the artifact checksum and the
// source hash both use it (exposed so tests can re-seal patched payloads).
uint64_t HashBytes(std::string_view bytes);

// Structural hash of a DFA (states, symbols, initial, delta, finals) —
// the per-content-model provenance fingerprint stored in artifacts.
uint64_t DfaStructuralHash(const Dfa& dfa);

// --- standalone section serializers (no header/checksum) -------------
// Each Deserialize* requires the buffer to be fully consumed and returns
// kInvalidArgument on any malformed input.

std::string SerializeAlphabet(const Alphabet& alphabet);
StatusOr<Alphabet> DeserializeAlphabet(std::string_view bytes);

std::string SerializeDfa(const Dfa& dfa);
StatusOr<Dfa> DeserializeDfa(std::string_view bytes);

std::string SerializeNfa(const Nfa& nfa);
StatusOr<Nfa> DeserializeNfa(std::string_view bytes);

std::string SerializeEdtd(const Edtd& edtd);
StatusOr<Edtd> DeserializeEdtd(std::string_view bytes);

std::string SerializeDfaXsd(const DfaXsd& xsd);
StatusOr<DfaXsd> DeserializeDfaXsd(std::string_view bytes);

// --- the artifact itself ---------------------------------------------

std::string SerializeArtifact(const CompiledSchema& schema);
StatusOr<CompiledSchema> DeserializeArtifact(std::string_view bytes);

// True if `bytes` starts with the artifact magic (used by the CLI to
// accept either a textual schema or a compiled artifact).
bool LooksLikeArtifact(std::string_view bytes);

// --- compilation entry points ----------------------------------------

// Reduces `edtd` and derives the single-type validator and provenance
// hashes. `source_hash` identifies the source the schema came from.
CompiledSchema MakeCompiledSchema(const Edtd& edtd, uint64_t source_hash = 0);

// True if the text reads as an XML document (first non-whitespace byte is
// '<'), i.e. a schema source that should go through the XSD importer
// rather than the textual-format parser.
bool LooksLikeXml(std::string_view text);

// Parses a schema source — the textual format, or a W3C XSD document
// (auto-detected via LooksLikeXml) — and compiles it into a
// CompiledSchema, memoizing textual content-model compilation through
// `cache` (null = no cache). The budgeted overload charges content-model
// compilation (counted-repetition expansion, determinize, minimize)
// against `budget`.
StatusOr<CompiledSchema> CompileSchema(std::string_view schema_text,
                                       CompileCache* cache);
StatusOr<CompiledSchema> CompileSchema(std::string_view schema_text,
                                       CompileCache* cache, Budget* budget);

}  // namespace stap

#endif  // STAP_IO_ARTIFACT_H_
