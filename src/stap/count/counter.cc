#include "stap/count/counter.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

namespace {

Status CheckBounds(const CountBounds& bounds) {
  if (bounds.max_depth < 1 || bounds.max_width < 0) {
    return InvalidArgumentError(
        "count bounds require max_depth >= 1 and max_width >= 0");
  }
  return Status();
}

// Do two sorted int sets intersect?
bool IntersectsSorted(const StateSet& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

// Weighted count of words of length <= max_width through `content`, where
// symbol a carries weight[a] child subtrees (CountValue generalization of
// schema/count.cc's CountContent).
CountValue CountContentWeighted(const Dfa& content,
                                const std::vector<CountValue>& weight,
                                int max_width) {
  if (content.num_states() == 0) return CountValue::Zero();
  std::vector<CountValue> paths(content.num_states());
  paths[content.initial()] = CountValue::One();
  CountValue total = content.IsFinal(content.initial()) ? CountValue::One()
                                                        : CountValue::Zero();
  for (int length = 1; length <= max_width; ++length) {
    std::vector<CountValue> next(content.num_states());
    bool alive = false;
    for (int s = 0; s < content.num_states(); ++s) {
      if (paths[s].IsZero()) continue;
      for (int a = 0; a < content.num_symbols(); ++a) {
        const int r = content.Next(s, a);
        if (r == kNoState || weight[a].IsZero()) continue;
        next[r] = CountValue::Add(next[r],
                                  CountValue::Mul(paths[s], weight[a]));
        alive = true;
      }
    }
    if (!alive) break;
    paths = std::move(next);
    for (int s = 0; s < content.num_states(); ++s) {
      if (content.IsFinal(s)) total = CountValue::Add(total, paths[s]);
    }
  }
  return total;
}

// The per-label sibling-word DP shared by the EDTD and intersection
// counters: joint states are tuples of content-DFA state subsets (one per
// type with the current label), optionally paired with an XSD content
// state. Tuples are interned by their serialized form.
class TupleInterner {
 public:
  explicit TupleInterner(Budget* budget) : budget_(budget) {}

  // Interns `tuple` (with an optional scalar prefix distinguishing XSD
  // content states); returns its dense id through `id`.
  Status Intern(int prefix, const std::vector<StateSet>& tuple, int* id) {
    static Counter* const tuples_counter = GetCounter("count.sibling_tuples");
    std::vector<int> key;
    key.push_back(prefix);
    for (const StateSet& subset : tuple) {
      key.insert(key.end(), subset.begin(), subset.end());
      key.push_back(-1);
    }
    auto [it, inserted] = ids_.emplace(std::move(key), tuples_.size());
    if (inserted) {
      STAP_RETURN_IF_ERROR(Budget::ChargeSets(budget_));
      tuples_counter->Increment();
      tuples_.push_back(tuple);
      prefixes_.push_back(prefix);
    }
    *id = it->second;
    return Status();
  }

  const std::vector<StateSet>& tuple(int id) const { return tuples_[id]; }
  int prefix(int id) const { return prefixes_[id]; }

 private:
  Budget* budget_;
  std::unordered_map<std::vector<int>, int, IntVectorHash> ids_;
  std::vector<std::vector<StateSet>> tuples_;
  std::vector<int> prefixes_;
};

// Advances every per-type subset of `tuple` on the child profile
// `child_types` (a set of ∆ symbols). Returns false when every successor
// subset is empty — such a run can never produce a non-empty profile
// again, so the caller prunes it.
bool AdvanceTuple(const std::vector<const Dfa*>& contents,
                  const std::vector<StateSet>& tuple,
                  const StateSet& child_types,
                  std::vector<StateSet>* successor) {
  const int k = static_cast<int>(contents.size());
  successor->assign(k, StateSet{});
  bool alive = false;
  for (int i = 0; i < k; ++i) {
    for (int s : tuple[i]) {
      for (int sigma : child_types) {
        const int r = contents[i]->Next(s, sigma);
        if (r != kNoState) StateSetInsert((*successor)[i], r);
      }
    }
    alive = alive || !(*successor)[i].empty();
  }
  return alive;
}

// The exact profile a tuple denotes: the types whose subset touches a
// final content state.
StateSet TupleProfile(const std::vector<int>& taus,
                      const std::vector<const Dfa*>& contents,
                      const std::vector<StateSet>& tuple) {
  StateSet profile;
  for (size_t i = 0; i < taus.size(); ++i) {
    for (int s : tuple[i]) {
      if (contents[i]->IsFinal(s)) {
        profile.push_back(taus[i]);
        break;
      }
    }
  }
  return profile;
}

std::vector<StateSet> InitialTuple(const std::vector<const Dfa*>& contents) {
  std::vector<StateSet> tuple(contents.size());
  for (size_t i = 0; i < contents.size(); ++i) {
    if (contents[i]->num_states() > 0) tuple[i] = {contents[i]->initial()};
  }
  return tuple;
}

}  // namespace

StatusOr<std::vector<CountValue>> CountXsdByDepth(const DfaXsd& xsd,
                                                  const CountBounds& bounds,
                                                  Budget* budget) {
  STAP_RETURN_IF_ERROR(CheckBounds(bounds));
  static Counter* const calls = GetCounter("count.xsd_calls");
  calls->Increment();
  ScopedSpan span("count.xsd");
  const int n = xsd.automaton.num_states();
  const int num_symbols = xsd.sigma.size();

  std::vector<CountValue> count(n);
  std::vector<CountValue> totals;
  totals.reserve(bounds.max_depth);
  for (int d = 1; d <= bounds.max_depth; ++d) {
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    STAP_RETURN_IF_ERROR(Budget::ChargeSets(budget, n));
    std::vector<CountValue> next(n);
    for (int q = 1; q < n; ++q) {
      std::vector<CountValue> weight(num_symbols);
      for (int a = 0; a < num_symbols; ++a) {
        const int child = xsd.automaton.Next(q, a);
        if (child != kNoState) weight[a] = count[child];
      }
      next[q] = CountContentWeighted(xsd.content[q], weight, bounds.max_width);
    }
    count = std::move(next);
    CountValue total;
    for (int a : xsd.start_symbols) {
      const int q = xsd.automaton.Next(xsd.automaton.initial(), a);
      if (q != kNoState) total = CountValue::Add(total, count[q]);
    }
    totals.push_back(total);
  }
  span.AddArg("depth", bounds.max_depth);
  return totals;
}

StatusOr<std::vector<CountValue>> CountEdtdByDepth(const Edtd& edtd,
                                                   const CountBounds& bounds,
                                                   Budget* budget) {
  STAP_RETURN_IF_ERROR(CheckBounds(bounds));
  static Counter* const calls = GetCounter("count.edtd_calls");
  static Counter* const profiles_counter = GetCounter("count.profiles");
  static Histogram* const latency = GetHistogram("count.edtd_ms");
  calls->Increment();
  ScopedTimer timer(latency);
  ScopedSpan span("count.edtd");

  std::vector<std::vector<int>> types_of(edtd.num_symbols());
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    types_of[edtd.mu[tau]].push_back(tau);
  }

  // Profiles with counts for trees of depth <= d-1 (cumulative).
  std::vector<StateSet> prev_profiles;
  std::vector<CountValue> prev_counts;
  std::vector<CountValue> totals;
  totals.reserve(bounds.max_depth);

  for (int d = 1; d <= bounds.max_depth; ++d) {
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    std::unordered_map<StateSet, int, StateSetHash> next_ids;
    std::vector<StateSet> next_profiles;
    std::vector<CountValue> next_counts;
    auto add_profile = [&](StateSet profile, const CountValue& cnt) -> Status {
      auto [it, inserted] = next_ids.emplace(std::move(profile),
                                             next_profiles.size());
      if (inserted) {
        STAP_RETURN_IF_ERROR(Budget::ChargeStates(budget));
        profiles_counter->Increment();
        next_profiles.push_back(it->first);
        next_counts.push_back(cnt);
      } else {
        next_counts[it->second] =
            CountValue::Add(next_counts[it->second], cnt);
      }
      return Status();
    };

    for (int a = 0; a < edtd.num_symbols(); ++a) {
      const std::vector<int>& taus = types_of[a];
      if (taus.empty()) continue;
      std::vector<const Dfa*> contents;
      contents.reserve(taus.size());
      for (int tau : taus) contents.push_back(&edtd.content[tau]);

      TupleInterner interner(budget);
      int init_id = 0;
      STAP_RETURN_IF_ERROR(
          interner.Intern(0, InitialTuple(contents), &init_id));
      std::unordered_map<int, CountValue> frontier;
      frontier[init_id] = CountValue::One();

      for (int len = 0; len <= bounds.max_width; ++len) {
        for (const auto& [id, cnt] : frontier) {
          StateSet profile = TupleProfile(taus, contents, interner.tuple(id));
          if (!profile.empty()) {
            STAP_RETURN_IF_ERROR(add_profile(std::move(profile), cnt));
          }
        }
        if (len == bounds.max_width || prev_profiles.empty()) break;
        std::unordered_map<int, CountValue> next_frontier;
        std::vector<StateSet> successor;
        for (const auto& [id, cnt] : frontier) {
          // Copy: interning below may reallocate the tuple storage.
          const std::vector<StateSet> tuple = interner.tuple(id);
          for (size_t pi = 0; pi < prev_profiles.size(); ++pi) {
            if (!AdvanceTuple(contents, tuple, prev_profiles[pi],
                              &successor)) {
              continue;
            }
            int sid = 0;
            STAP_RETURN_IF_ERROR(interner.Intern(0, successor, &sid));
            CountValue& slot = next_frontier[sid];
            slot = CountValue::Add(slot,
                                   CountValue::Mul(cnt, prev_counts[pi]));
          }
        }
        if (next_frontier.empty()) break;
        frontier = std::move(next_frontier);
      }
    }

    CountValue total;
    for (size_t pi = 0; pi < next_profiles.size(); ++pi) {
      if (IntersectsSorted(next_profiles[pi], edtd.start_types)) {
        total = CountValue::Add(total, next_counts[pi]);
      }
    }
    totals.push_back(total);
    prev_profiles = std::move(next_profiles);
    prev_counts = std::move(next_counts);
  }
  span.AddArg("profiles", static_cast<int64_t>(prev_profiles.size()));
  return totals;
}

StatusOr<std::vector<CountValue>> CountIntersectionByDepth(
    const DfaXsd& xsd, const Edtd& edtd, const CountBounds& bounds,
    Budget* budget) {
  STAP_RETURN_IF_ERROR(CheckBounds(bounds));
  if (!(xsd.sigma == edtd.sigma)) {
    return InvalidArgumentError(
        "CountIntersectionByDepth requires identical alphabets");
  }
  static Counter* const calls = GetCounter("count.intersection_calls");
  calls->Increment();
  ScopedSpan span("count.intersection");

  std::vector<std::vector<int>> types_of(edtd.num_symbols());
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    types_of[edtd.mu[tau]].push_back(tau);
  }
  const int n = xsd.automaton.num_states();

  // Joint keys: [q, profile...] for trees valid at XSD state q whose
  // exact EDTD profile is the given type set.
  std::unordered_map<std::vector<int>, int, IntVectorHash> prev_ids;
  std::vector<int> prev_states;
  std::vector<StateSet> prev_profiles;
  std::vector<CountValue> prev_counts;
  std::vector<CountValue> totals;
  totals.reserve(bounds.max_depth);

  for (int d = 1; d <= bounds.max_depth; ++d) {
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    std::unordered_map<std::vector<int>, int, IntVectorHash> next_ids;
    std::vector<int> next_states;
    std::vector<StateSet> next_profiles;
    std::vector<CountValue> next_counts;
    auto add_pair = [&](int q, StateSet profile,
                        const CountValue& cnt) -> Status {
      std::vector<int> key;
      key.reserve(profile.size() + 1);
      key.push_back(q);
      key.insert(key.end(), profile.begin(), profile.end());
      auto [it, inserted] = next_ids.emplace(std::move(key),
                                             next_states.size());
      if (inserted) {
        STAP_RETURN_IF_ERROR(Budget::ChargeStates(budget));
        next_states.push_back(q);
        next_profiles.push_back(std::move(profile));
        next_counts.push_back(cnt);
      } else {
        next_counts[it->second] =
            CountValue::Add(next_counts[it->second], cnt);
      }
      return Status();
    };

    for (int q = 1; q < n; ++q) {
      const int a = xsd.state_label[q];
      const std::vector<int>& taus = types_of[a];
      if (taus.empty()) continue;
      const Dfa& content_q = xsd.content[q];
      if (content_q.num_states() == 0) continue;
      std::vector<const Dfa*> contents;
      contents.reserve(taus.size());
      for (int tau : taus) contents.push_back(&edtd.content[tau]);

      TupleInterner interner(budget);
      int init_id = 0;
      STAP_RETURN_IF_ERROR(interner.Intern(content_q.initial(),
                                           InitialTuple(contents), &init_id));
      std::unordered_map<int, CountValue> frontier;
      frontier[init_id] = CountValue::One();

      for (int len = 0; len <= bounds.max_width; ++len) {
        for (const auto& [id, cnt] : frontier) {
          if (!content_q.IsFinal(interner.prefix(id))) continue;
          StateSet profile = TupleProfile(taus, contents, interner.tuple(id));
          if (!profile.empty()) {
            STAP_RETURN_IF_ERROR(add_pair(q, std::move(profile), cnt));
          }
        }
        if (len == bounds.max_width || prev_states.empty()) break;
        std::unordered_map<int, CountValue> next_frontier;
        std::vector<StateSet> successor;
        for (const auto& [id, cnt] : frontier) {
          const std::vector<StateSet> tuple = interner.tuple(id);
          const int cs = interner.prefix(id);
          for (size_t pi = 0; pi < prev_states.size(); ++pi) {
            const int child_q = prev_states[pi];
            const int b = xsd.state_label[child_q];
            if (xsd.automaton.Next(q, b) != child_q) continue;
            const int cs_next = content_q.Next(cs, b);
            if (cs_next == kNoState) continue;
            if (!AdvanceTuple(contents, tuple, prev_profiles[pi],
                              &successor)) {
              continue;
            }
            int sid = 0;
            STAP_RETURN_IF_ERROR(interner.Intern(cs_next, successor, &sid));
            CountValue& slot = next_frontier[sid];
            slot = CountValue::Add(slot,
                                   CountValue::Mul(cnt, prev_counts[pi]));
          }
        }
        if (next_frontier.empty()) break;
        frontier = std::move(next_frontier);
      }
    }

    CountValue total;
    for (int a : xsd.start_symbols) {
      const int q = xsd.automaton.Next(xsd.automaton.initial(), a);
      if (q == kNoState) continue;
      for (size_t pi = 0; pi < next_states.size(); ++pi) {
        if (next_states[pi] == q &&
            IntersectsSorted(next_profiles[pi], edtd.start_types)) {
          total = CountValue::Add(total, next_counts[pi]);
        }
      }
    }
    totals.push_back(total);
    prev_ids = std::move(next_ids);
    prev_states = std::move(next_states);
    prev_profiles = std::move(next_profiles);
    prev_counts = std::move(next_counts);
  }
  span.AddArg("pairs", static_cast<int64_t>(prev_states.size()));
  return totals;
}

StatusOr<XsdSizeTables> BuildXsdSizeTables(const DfaXsd& xsd, int max_size,
                                           Budget* budget) {
  if (max_size < 0) {
    return InvalidArgumentError("BuildXsdSizeTables requires max_size >= 0");
  }
  static Counter* const calls = GetCounter("count.size_table_calls");
  calls->Increment();
  ScopedSpan span("count.size_tables");
  const int n = xsd.automaton.num_states();
  const int num_symbols = xsd.sigma.size();

  XsdSizeTables tables;
  tables.max_size = max_size;
  tables.trees.assign(n, std::vector<BigNat>(max_size + 1));
  tables.forests.resize(n);
  tables.totals.assign(max_size + 1, BigNat());
  int64_t cells_per_size = 0;
  for (int q = 1; q < n; ++q) {
    tables.forests[q].assign(xsd.content[q].num_states(),
                             std::vector<BigNat>(std::max(max_size, 1)));
    cells_per_size += xsd.content[q].num_states();
  }

  for (int s = 1; s <= max_size; ++s) {
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    STAP_RETURN_IF_ERROR(Budget::ChargeStates(budget, cells_per_size + n));
    const int r = s - 1;  // forest size feeding trees of size s
    for (int q = 1; q < n; ++q) {
      const Dfa& content_q = xsd.content[q];
      for (int cs = 0; cs < content_q.num_states(); ++cs) {
        BigNat total;
        if (r == 0) {
          if (content_q.IsFinal(cs)) total = BigNat(1);
        } else {
          for (int a = 0; a < num_symbols; ++a) {
            const int cs_next = content_q.Next(cs, a);
            const int child = xsd.automaton.Next(q, a);
            if (cs_next == kNoState || child == kNoState) continue;
            for (int k = 1; k <= r; ++k) {
              const BigNat& head = tables.trees[child][k];
              const BigNat& rest = tables.forests[q][cs_next][r - k];
              if (head.IsZero() || rest.IsZero()) continue;
              total = BigNat::Add(total, BigNat::Mul(head, rest));
            }
          }
        }
        tables.forests[q][cs][r] = std::move(total);
      }
      if (content_q.num_states() > 0) {
        tables.trees[q][s] = tables.forests[q][content_q.initial()][r];
      }
    }
    BigNat total;
    for (int a : xsd.start_symbols) {
      const int q = xsd.automaton.Next(xsd.automaton.initial(), a);
      if (q != kNoState) total = BigNat::Add(total, tables.trees[q][s]);
    }
    tables.totals[s] = std::move(total);
  }
  span.AddArg("max_size", max_size);
  return tables;
}

}  // namespace stap
