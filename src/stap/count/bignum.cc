#include "stap/count/bignum.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "stap/base/check.h"

namespace stap {

namespace {

constexpr double kLn2 = 0.69314718055994530942;

// log2(2^x + 2^y) for finite x >= y.
double Log2AddExp(double x, double y) {
  return x + std::log1p(std::exp2(y - x)) / kLn2;
}

// log2(2^x - 2^y) for x > y; -inf when the difference underflows.
double Log2SubExp(double x, double y) {
  const double rest = -std::expm1((y - x) * kLn2);
  if (rest <= 0.0) return -std::numeric_limits<double>::infinity();
  return x + std::log2(rest);
}

}  // namespace

BigNat::BigNat(uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

void BigNat::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

int BigNat::BitLength() const {
  if (limbs_.empty()) return 0;
  const uint64_t top = limbs_.back();
  const int top_bits = 64 - __builtin_clzll(top);
  return (static_cast<int>(limbs_.size()) - 1) * 64 + top_bits;
}

BigNat BigNat::Add(const BigNat& a, const BigNat& b) {
  BigNat out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = i < a.limbs_.size() ? a.limbs_[i] : 0;
    const uint64_t y = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const uint64_t sum = x + y;
    const uint64_t with_carry = sum + carry;
    carry = (sum < x || with_carry < sum) ? 1 : 0;
    out.limbs_[i] = with_carry;
  }
  if (carry != 0) out.limbs_.push_back(carry);
  return out;
}

BigNat BigNat::Sub(const BigNat& a, const BigNat& b) {
  STAP_CHECK(Compare(a, b) >= 0);
  BigNat out;
  out.limbs_.resize(a.limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    const uint64_t x = a.limbs_[i];
    const uint64_t y = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const uint64_t diff = x - y;
    const uint64_t with_borrow = diff - borrow;
    borrow = (x < y || diff < borrow) ? 1 : 0;
    out.limbs_[i] = with_borrow;
  }
  STAP_CHECK(borrow == 0);
  out.Normalize();
  return out;
}

BigNat BigNat::Mul(const BigNat& a, const BigNat& b) {
  BigNat out;
  if (a.IsZero() || b.IsZero()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(a.limbs_[i]) * b.limbs_[j] +
          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

int BigNat::Compare(const BigNat& a, const BigNat& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

double BigNat::ToDouble() const {
  double value = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    value = value * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return value;
}

double BigNat::Log2() const {
  STAP_CHECK(!IsZero());
  // Top 128 bits give ~63 significant mantissa bits after normalization.
  const size_t n = limbs_.size();
  double top = static_cast<double>(limbs_[n - 1]);
  double exponent = static_cast<double>((n - 1) * 64);
  if (n >= 2) {
    top = top * 18446744073709551616.0 + static_cast<double>(limbs_[n - 2]);
    exponent -= 64;
  }
  return std::log2(top) + exponent;
}

std::string BigNat::ToString() const {
  if (IsZero()) return "0";
  // Repeated division by 10^19 (the largest power of ten below 2^64).
  constexpr uint64_t kChunk = 10000000000000000000ull;
  std::vector<uint64_t> work = limbs_;
  std::vector<uint64_t> chunks;
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      const unsigned __int128 cur =
          (static_cast<unsigned __int128>(rem) << 64) | work[i];
      work[i] = static_cast<uint64_t>(cur / kChunk);
      rem = static_cast<uint64_t>(cur % kChunk);
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    chunks.push_back(rem);
  }
  std::ostringstream os;
  os << chunks.back();
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string digits = std::to_string(chunks[i]);
    os << std::string(19 - digits.size(), '0') << digits;
  }
  return os.str();
}

BigNat BigNat::RandomBelow(const BigNat& bound, std::mt19937* rng) {
  STAP_CHECK(!bound.IsZero());
  const int bits = bound.BitLength();
  const int limbs = (bits + 63) / 64;
  const int top_bits = bits - (limbs - 1) * 64;
  const uint64_t top_mask =
      top_bits == 64 ? ~0ull : ((1ull << top_bits) - 1);
  BigNat sample;
  while (true) {
    sample.limbs_.assign(limbs, 0);
    for (int i = 0; i < limbs; ++i) {
      const uint64_t lo = (*rng)();
      const uint64_t hi = (*rng)();
      sample.limbs_[i] = lo | (hi << 32);
    }
    sample.limbs_.back() &= top_mask;
    sample.Normalize();
    if (Compare(sample, bound) < 0) return sample;
  }
}

CountValue CountValue::FromUint(uint64_t value) {
  CountValue out;
  out.nat_ = BigNat(value);
  return out;
}

CountValue CountValue::FromBigNat(BigNat value) {
  CountValue out;
  if (value.num_limbs() > kMaxExactLimbs) {
    out.exact_ = false;
    out.log2_ = value.Log2();
  } else {
    out.nat_ = std::move(value);
  }
  return out;
}

const BigNat& CountValue::AsBigNat() const {
  STAP_CHECK(exact_);
  return nat_;
}

CountValue CountValue::Add(const CountValue& a, const CountValue& b) {
  if (a.exact_ && b.exact_) return FromBigNat(BigNat::Add(a.nat_, b.nat_));
  if (a.IsZero()) return b;
  if (b.IsZero()) return a;
  CountValue out;
  out.exact_ = false;
  const double la = a.Log2();
  const double lb = b.Log2();
  out.log2_ = la >= lb ? Log2AddExp(la, lb) : Log2AddExp(lb, la);
  return out;
}

CountValue CountValue::Mul(const CountValue& a, const CountValue& b) {
  if (a.IsZero() || b.IsZero()) return Zero();
  if (a.exact_ && b.exact_) return FromBigNat(BigNat::Mul(a.nat_, b.nat_));
  CountValue out;
  out.exact_ = false;
  out.log2_ = a.Log2() + b.Log2();
  return out;
}

CountValue CountValue::Sub(const CountValue& a, const CountValue& b) {
  if (b.IsZero()) return a;
  if (a.exact_ && b.exact_) {
    if (BigNat::Compare(a.nat_, b.nat_) <= 0) return Zero();
    return FromBigNat(BigNat::Sub(a.nat_, b.nat_));
  }
  const double la = a.Log2();
  const double lb = b.Log2();
  if (la <= lb) return Zero();
  CountValue out;
  const double diff = Log2SubExp(la, lb);
  if (std::isinf(diff)) return Zero();
  out.exact_ = false;
  out.log2_ = diff;
  return out;
}

int CountValue::Compare(const CountValue& a, const CountValue& b) {
  if (a.exact_ && b.exact_) return BigNat::Compare(a.nat_, b.nat_);
  const double la = a.Log2();
  const double lb = b.Log2();
  if (la < lb) return -1;
  if (la > lb) return 1;
  return 0;
}

double CountValue::Log2() const {
  if (!exact_) return log2_;
  if (nat_.IsZero()) return -std::numeric_limits<double>::infinity();
  return nat_.Log2();
}

double CountValue::ToDouble() const {
  if (exact_) return nat_.ToDouble();
  return std::exp2(log2_);
}

std::string CountValue::ToString() const {
  if (exact_) return nat_.ToString();
  std::ostringstream os;
  os << "~2^" << log2_;
  return os.str();
}

double CountRatio(const CountValue& a, const CountValue& b,
                  double if_zero_denominator) {
  if (b.IsZero()) return if_zero_denominator;
  if (a.IsZero()) return 0.0;
  return std::exp2(a.Log2() - b.Log2());
}

}  // namespace stap
