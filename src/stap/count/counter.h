// Depth- and size-bounded tree counting over EDTDs and DFA-based XSDs.
//
// All counters work on the bounded slice
//   L_{d,w} = { t in L : depth(t) <= d, every node has <= w children }
// and report the cumulative count for every depth 1..d. Three DPs share
// the CountValue arithmetic (count/bignum.h):
//
//  * CountXsdByDepth — one-pass top-down validation of a DfaXsd assigns
//    each node a unique state, so per-state subtree counts compose with
//    no double counting (a big-int generalization of schema/count.h).
//  * CountEdtdByDepth — EDTDs are nondeterministic, so per-type counts
//    would double-count trees assignable to several types. The DP instead
//    counts per *profile*: the exact set of types assignable to a
//    subtree. Profiles partition trees, and the sibling-word automaton
//    that computes a node's profile from its children's profiles is the
//    on-the-fly bottom-up determinization of the EDTD's binary
//    (first-child/next-sibling) encoding restricted to one label — its
//    states are tuples of content-DFA state sets, one per type of the
//    label. Worst-case exponential in |∆| (the price of counting a
//    nondeterministic language exactly), so every interned tuple and
//    profile charges the Budget.
//  * CountIntersectionByDepth — joint (XSD state × profile) DP counting
//    |L(xsd) ∩ L(edtd)| without materializing a product automaton, which
//    is what lets `stap measure` report |L(upper) \ L(S)| and
//    |L(S) \ L(lower)| as count differences.
//
// BuildXsdSizeTables indexes by exact node count instead of depth; the
// tables are what gen/random.h's SampleTreeUniform draws from.
#ifndef STAP_COUNT_COUNTER_H_
#define STAP_COUNT_COUNTER_H_

#include <vector>

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/count/bignum.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

struct CountBounds {
  int max_depth = 4;  // a single node has depth 1
  int max_width = 4;  // max children per node
};

// result[d-1] = |{ t in L(xsd) : depth <= d, width <= bounds.max_width }|
// for d = 1..bounds.max_depth. A null budget is unlimited.
StatusOr<std::vector<CountValue>> CountXsdByDepth(const DfaXsd& xsd,
                                                  const CountBounds& bounds,
                                                  Budget* budget);

// Same bounded slice for an arbitrary (not necessarily single-type) EDTD,
// via the profile DP described above. Exact: every tree is counted once.
StatusOr<std::vector<CountValue>> CountEdtdByDepth(const Edtd& edtd,
                                                   const CountBounds& bounds,
                                                   Budget* budget);

// Counts |L(xsd) ∩ L(edtd)| on the bounded slice. Require: identical
// alphabets (same names in the same order).
StatusOr<std::vector<CountValue>> CountIntersectionByDepth(
    const DfaXsd& xsd, const Edtd& edtd, const CountBounds& bounds,
    Budget* budget);

// Size-indexed counting tables for exact-weight uniform sampling.
// All entries are exact BigNats (no log-domain fallback): sampling needs
// exact cumulative weights, so callers bound max_size instead.
struct XsdSizeTables {
  int max_size = 0;

  // trees[q][s] = number of subtrees with exactly s nodes whose root sits
  // in automaton state q (1 <= q < num_states, 1 <= s <= max_size).
  std::vector<std::vector<BigNat>> trees;

  // forests[q][cs][r] = number of child forests of total size r that
  // drive content[q] from state cs to acceptance (each child a subtree of
  // the matching child state). forests[q][cs][0] is 1 iff cs is final.
  std::vector<std::vector<std::vector<BigNat>>> forests;

  // totals[s] = number of accepted documents with exactly s nodes.
  std::vector<BigNat> totals;
};

// Builds the size tables for sizes 1..max_size. A null budget is
// unlimited; each size level charges states proportional to the table
// slice it fills.
StatusOr<XsdSizeTables> BuildXsdSizeTables(const DfaXsd& xsd, int max_size,
                                           Budget* budget);

}  // namespace stap

#endif  // STAP_COUNT_COUNTER_H_
