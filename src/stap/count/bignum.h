// Overflow-safe counts for the tree-counting DPs (stap measure).
//
// Tree counts grow doubly fast in depth — the Theorem 3.2 family already
// exceeds 2^64 distinct documents at modest depth — so the counting DPs
// cannot run on machine integers, and running them on doubles silently
// loses the exactness the enumeration oracles test against. BigNat is a
// minimal arbitrary-precision unsigned integer (base 2^64 limbs,
// schoolbook multiplication — counting tables multiply numbers of a few
// limbs, so asymptotically clever algorithms buy nothing here).
// CountValue wraps it with a log-domain escape hatch: values stay exact
// until they outgrow kMaxExactLimbs, then degrade to a log2-domain double
// with an explicit exact() flag, so a pathological depth degrades
// gracefully into approximate magnitudes instead of unbounded limb growth.
#ifndef STAP_COUNT_BIGNUM_H_
#define STAP_COUNT_BIGNUM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace stap {

// Arbitrary-precision unsigned integer; little-endian 64-bit limbs with
// no trailing zero limbs (zero is the empty limb vector).
class BigNat {
 public:
  BigNat() = default;
  explicit BigNat(uint64_t value);

  bool IsZero() const { return limbs_.empty(); }
  int num_limbs() const { return static_cast<int>(limbs_.size()); }

  // Number of significant bits (0 for zero).
  int BitLength() const;

  static BigNat Add(const BigNat& a, const BigNat& b);
  // Require: a >= b.
  static BigNat Sub(const BigNat& a, const BigNat& b);
  static BigNat Mul(const BigNat& a, const BigNat& b);

  // -1, 0, or 1 as a <, ==, or > b.
  static int Compare(const BigNat& a, const BigNat& b);

  friend bool operator==(const BigNat& a, const BigNat& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator<(const BigNat& a, const BigNat& b) {
    return Compare(a, b) < 0;
  }

  // May overflow to +inf for huge values.
  double ToDouble() const;

  // log2 of the value. Require: !IsZero().
  double Log2() const;

  // Decimal representation.
  std::string ToString() const;

  // Uniform value in [0, bound) by bit-masked rejection sampling.
  // Require: !bound.IsZero().
  static BigNat RandomBelow(const BigNat& bound, std::mt19937* rng);

 private:
  void Normalize();

  std::vector<uint64_t> limbs_;
};

// A tree count: exact BigNat up to kMaxExactLimbs limbs, log2-domain
// double beyond. Zero is always exact. All operations assume non-negative
// counts; Sub clamps at zero (a difference of counts is non-negative
// mathematically, but log-domain rounding can invert tiny gaps).
class CountValue {
 public:
  // Values above 2^(64 * kMaxExactLimbs) ~ 10^1233 degrade to log domain.
  static constexpr int kMaxExactLimbs = 64;

  CountValue() = default;  // zero
  static CountValue FromUint(uint64_t value);
  static CountValue FromBigNat(BigNat value);
  static CountValue Zero() { return CountValue(); }
  static CountValue One() { return FromUint(1); }

  bool exact() const { return exact_; }
  bool IsZero() const { return exact_ && nat_.IsZero(); }

  // The exact value. Require: exact().
  const BigNat& AsBigNat() const;

  static CountValue Add(const CountValue& a, const CountValue& b);
  static CountValue Mul(const CountValue& a, const CountValue& b);
  static CountValue Sub(const CountValue& a, const CountValue& b);

  // -1, 0, or 1; mixed exact/log comparisons go through log2 magnitudes.
  static int Compare(const CountValue& a, const CountValue& b);

  // log2 of the value, or -inf for zero.
  double Log2() const;

  // May be +inf for huge values.
  double ToDouble() const;

  // Exact decimal, or "~2^<log2>" once in the log domain.
  std::string ToString() const;

 private:
  bool exact_ = true;
  BigNat nat_;        // valid when exact_
  double log2_ = 0.0;  // valid when !exact_; value ~ 2^log2_
};

// a / b as a double, computed in the log domain so huge counts divide
// without overflowing. Returns `if_zero_denominator` when b is zero.
double CountRatio(const CountValue& a, const CountValue& b,
                  double if_zero_denominator = 1.0);

}  // namespace stap

#endif  // STAP_COUNT_BIGNUM_H_
