// Precision analytics for single-type approximations (`stap measure`).
//
// Quantifies the paper's central trade-off on the depth/width-bounded
// slice: how many trees the minimal upper approximation gains,
// |L(upper) \ L(S)|, and how many a sound lower approximation loses,
// |L(S) \ L(lower)|, for every depth up to a bound. Both differences are
// computed from the counting DPs (count/counter.h) without materializing
// difference automata: S ⊆ upper gives |upper \ S| = |upper| − |upper ∩ S|
// and lower ⊆ S gives |S \ lower| = |S| − |lower ∩ S|, with the
// intersection counts from the joint (XSD state × profile) DP.
#ifndef STAP_COUNT_MEASURE_H_
#define STAP_COUNT_MEASURE_H_

#include <string>
#include <vector>

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/count/bignum.h"
#include "stap/count/counter.h"
#include "stap/schema/edtd.h"

namespace stap {

struct MeasureOptions {
  CountBounds bounds;
  bool upper = true;
  bool lower = true;
};

struct MeasureResult {
  CountBounds bounds;
  bool single_type = false;  // the reduced input is already single-type
  int schema_types = 0;      // types after reduction

  // |L(S)| per depth 1..max_depth.
  std::vector<CountValue> schema;

  bool has_upper = false;
  int upper_states = 0;  // type size of the minimal upper approximation
  std::vector<CountValue> upper;         // |L(upper)|
  std::vector<CountValue> upper_common;  // |L(upper) ∩ L(S)| (== |L(S)|)
  std::vector<CountValue> gained;        // |L(upper) \ L(S)|

  bool has_lower = false;
  int lower_states = 0;
  std::vector<CountValue> lower;         // |L(lower)|
  std::vector<CountValue> lower_common;  // |L(lower) ∩ L(S)| (== |L(lower)|)
  std::vector<CountValue> lost;          // |L(S) \ L(lower)|

  // Precision of the upper approximation at depth index d:
  // |L(S)| / |L(upper)| in (0, 1]; 1.0 when |L(upper)| is 0.
  double UpperPrecision(int d) const;
  // Recall of the lower approximation: |L(lower) ∩ L(S)| / |L(S)|.
  double LowerRecall(int d) const;

  // Human-readable per-depth table.
  std::string ToText() const;
  // Machine-readable JSON (counts as decimal strings, ratios as numbers).
  std::string ToJson() const;
};

// Counts the schema and its requested approximations. The input is
// reduced internally; an empty-language input yields all-zero counts.
// A null budget is unlimited.
StatusOr<MeasureResult> MeasureSchema(const Edtd& schema,
                                      const MeasureOptions& options,
                                      Budget* budget);

}  // namespace stap

#endif  // STAP_COUNT_MEASURE_H_
