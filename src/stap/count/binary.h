// Tree counting through the binary (first-child/next-sibling) encoding.
//
// A second, independent implementation of the EDTD counter: build the
// binary tree automaton of the encoding (treeauto/encoding.h), determinize
// it bottom-up (treeauto/bta.h), and run the counting DP over DetBta
// states. A bottom-up deterministic automaton assigns every encoded tree
// exactly one state, so per-state counts compose with no double counting —
// the same argument the profile DP makes, reached through a different
// construction. The two counters cross-validate each other in the test
// suite; this one pays the up-front DeterminizeBta cost (worst-case
// exponential, budget-charged), so `stap measure` runs the profile DP and
// the tests run both.
#ifndef STAP_COUNT_BINARY_H_
#define STAP_COUNT_BINARY_H_

#include <vector>

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/count/bignum.h"
#include "stap/count/counter.h"
#include "stap/schema/edtd.h"

namespace stap {

// Same contract as CountEdtdByDepth (count/counter.h): cumulative counts
// of the bounded slice per depth 1..bounds.max_depth, computed over the
// determinized binary encoding instead of sibling-tuple profiles.
StatusOr<std::vector<CountValue>> CountEdtdByDepthViaBinary(
    const Edtd& edtd, const CountBounds& bounds, Budget* budget);

}  // namespace stap

#endif  // STAP_COUNT_BINARY_H_
