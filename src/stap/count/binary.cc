#include "stap/count/binary.h"

#include <unordered_map>
#include <utility>

#include "stap/base/metrics.h"
#include "stap/base/trace.h"
#include "stap/treeauto/bta.h"
#include "stap/treeauto/encoding.h"

namespace stap {

namespace {

Status CheckBounds(const CountBounds& bounds) {
  if (bounds.max_depth < 1 || bounds.max_width < 0) {
    return InvalidArgumentError(
        "count bounds require max_depth >= 1 and max_width >= 0");
  }
  return Status();
}

using StateCounts = std::unordered_map<int, CountValue>;

void AddCount(StateCounts* counts, int state, const CountValue& delta) {
  CountValue& slot = (*counts)[state];
  slot = CountValue::Add(slot, delta);
}

}  // namespace

StatusOr<std::vector<CountValue>> CountEdtdByDepthViaBinary(
    const Edtd& edtd, const CountBounds& bounds, Budget* budget) {
  STAP_RETURN_IF_ERROR(CheckBounds(bounds));
  static Counter* const calls = GetCounter("count.binary_calls");
  calls->Increment();
  ScopedSpan span("count.binary");

  const int num_symbols = edtd.num_symbols();
  const int hash = HashSymbol(num_symbols);
  Bta bta = BtaFromEdtd(edtd);
  StatusOr<DetBta> det_or = DeterminizeBta(bta, budget);
  if (!det_or.ok()) return det_or.status();
  const DetBta det = *std::move(det_or);
  span.AddArg("det_states", det.num_states());

  // enc(a(t1..tn)) = a(spine, #) with the spine a right-leaning chain of
  // #-nodes over the encoded children. A DetBta run maps every encoded
  // tree to one state, so counting per state is exact.
  const int nil_state = det.LeafState(hash);

  // Σ-rooted encodings of trees with depth <= d, keyed by DetBta state.
  StateCounts sigma_prev;
  std::vector<CountValue> totals;
  totals.reserve(bounds.max_depth);

  for (int d = 1; d <= bounds.max_depth; ++d) {
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    // Spines over members from sigma_prev, by forest length 1..max_width.
    StateCounts spines;
    StateCounts chain;
    AddCount(&chain, nil_state, CountValue::One());
    for (int len = 1; len <= bounds.max_width; ++len) {
      StateCounts longer;
      for (const auto& [member_state, member_count] : sigma_prev) {
        for (const auto& [rest_state, rest_count] : chain) {
          const int state = det.InternalState(hash, member_state, rest_state);
          AddCount(&longer, state,
                   CountValue::Mul(member_count, rest_count));
        }
      }
      if (longer.empty()) break;
      STAP_RETURN_IF_ERROR(
          Budget::ChargeSets(budget, static_cast<int64_t>(longer.size())));
      for (const auto& [state, count] : longer) AddCount(&spines, state, count);
      chain = std::move(longer);
    }

    StateCounts sigma_cur;
    for (int a = 0; a < num_symbols; ++a) {
      // Leaves: enc(a) is the bare leaf a.
      AddCount(&sigma_cur, det.LeafState(a), CountValue::One());
      for (const auto& [spine_state, spine_count] : spines) {
        const int state = det.InternalState(a, spine_state, nil_state);
        AddCount(&sigma_cur, state, spine_count);
      }
    }
    STAP_RETURN_IF_ERROR(
        Budget::ChargeSets(budget, static_cast<int64_t>(sigma_cur.size())));

    CountValue total;
    for (const auto& [state, count] : sigma_cur) {
      if (det.IsFinal(state)) total = CountValue::Add(total, count);
    }
    totals.push_back(total);
    sigma_prev = std::move(sigma_cur);
  }
  return totals;
}

}  // namespace stap
