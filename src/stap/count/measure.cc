#include "stap/count/measure.h"

#include <sstream>
#include <utility>

#include "stap/approx/lower.h"
#include "stap/approx/upper.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

namespace {

// JSON string of a count plus its double magnitude, e.g.
// "schema": "42", "schema_approx": 42.0.
void AppendCountField(std::ostringstream* os, const char* name,
                      const CountValue& value) {
  *os << "\"" << name << "\":\"" << value.ToString() << "\",\"" << name
      << "_approx\":" << value.ToDouble();
}

}  // namespace

double MeasureResult::UpperPrecision(int d) const {
  return CountRatio(schema[d], upper[d]);
}

double MeasureResult::LowerRecall(int d) const {
  return CountRatio(lower_common[d], schema[d]);
}

std::string MeasureResult::ToText() const {
  std::ostringstream os;
  os << "bounds: depth <= " << bounds.max_depth << ", width <= "
     << bounds.max_width << "\n";
  os << "schema: " << schema_types << " types"
     << (single_type ? " (single-type)" : "") << "\n";
  if (has_upper) os << "upper approximation: " << upper_states << " states\n";
  if (has_lower) os << "lower approximation: " << lower_states << " states\n";
  for (int d = 0; d < bounds.max_depth; ++d) {
    os << "depth " << (d + 1) << ": |L(S)| = " << schema[d].ToString();
    if (has_upper) {
      os << "  |L(upper)| = " << upper[d].ToString()
         << "  gained = " << gained[d].ToString() << "  precision = "
         << UpperPrecision(d);
    }
    if (has_lower) {
      os << "  |L(lower)| = " << lower[d].ToString()
         << "  lost = " << lost[d].ToString() << "  recall = "
         << LowerRecall(d);
    }
    os << "\n";
  }
  return os.str();
}

std::string MeasureResult::ToJson() const {
  std::ostringstream os;
  os << "{\"max_depth\":" << bounds.max_depth << ",\"max_width\":"
     << bounds.max_width << ",\"single_type\":"
     << (single_type ? "true" : "false") << ",\"schema_types\":"
     << schema_types;
  if (has_upper) os << ",\"upper_states\":" << upper_states;
  if (has_lower) os << ",\"lower_states\":" << lower_states;
  os << ",\"per_depth\":[";
  for (int d = 0; d < bounds.max_depth; ++d) {
    if (d > 0) os << ",";
    os << "{\"depth\":" << (d + 1) << ",";
    AppendCountField(&os, "schema", schema[d]);
    if (has_upper) {
      os << ",";
      AppendCountField(&os, "upper", upper[d]);
      os << ",";
      AppendCountField(&os, "gained", gained[d]);
      os << ",\"upper_precision\":" << UpperPrecision(d);
    }
    if (has_lower) {
      os << ",";
      AppendCountField(&os, "lower", lower[d]);
      os << ",";
      AppendCountField(&os, "lost", lost[d]);
      os << ",\"lower_recall\":" << LowerRecall(d);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

StatusOr<MeasureResult> MeasureSchema(const Edtd& schema,
                                      const MeasureOptions& options,
                                      Budget* budget) {
  static Counter* const calls = GetCounter("count.measure_calls");
  static Histogram* const latency = GetHistogram("count.measure_ms");
  calls->Increment();
  ScopedTimer timer(latency);
  ScopedSpan span("count.measure");

  MeasureResult result;
  result.bounds = options.bounds;

  ScopedSpan reduce_span("measure.reduce");
  const Edtd reduced = ReduceEdtd(schema);
  result.schema_types = reduced.num_types();
  result.single_type = IsSingleType(reduced);
  reduce_span.End();

  ScopedSpan schema_span("measure.count_schema");
  StatusOr<std::vector<CountValue>> schema_counts =
      CountEdtdByDepth(reduced, options.bounds, budget);
  if (!schema_counts.ok()) return schema_counts.status();
  result.schema = *std::move(schema_counts);
  schema_span.End();

  if (options.upper) {
    ScopedSpan upper_span("measure.upper");
    StatusOr<DfaXsd> upper = MinimalUpperApproximation(reduced, budget);
    if (!upper.ok()) return upper.status();
    result.has_upper = true;
    result.upper_states = upper->type_size();
    StatusOr<std::vector<CountValue>> upper_counts =
        CountXsdByDepth(*upper, options.bounds, budget);
    if (!upper_counts.ok()) return upper_counts.status();
    result.upper = *std::move(upper_counts);
    StatusOr<std::vector<CountValue>> common =
        CountIntersectionByDepth(*upper, reduced, options.bounds, budget);
    if (!common.ok()) return common.status();
    result.upper_common = *std::move(common);
    for (int d = 0; d < options.bounds.max_depth; ++d) {
      result.gained.push_back(
          CountValue::Sub(result.upper[d], result.upper_common[d]));
    }
  }

  if (options.lower) {
    ScopedSpan lower_span("measure.lower");
    StatusOr<DfaXsd> lower = SubsetIntersectionLower(reduced, budget);
    if (!lower.ok()) return lower.status();
    result.has_lower = true;
    result.lower_states = lower->type_size();
    StatusOr<std::vector<CountValue>> lower_counts =
        CountXsdByDepth(*lower, options.bounds, budget);
    if (!lower_counts.ok()) return lower_counts.status();
    result.lower = *std::move(lower_counts);
    StatusOr<std::vector<CountValue>> common =
        CountIntersectionByDepth(*lower, reduced, options.bounds, budget);
    if (!common.ok()) return common.status();
    result.lower_common = *std::move(common);
    for (int d = 0; d < options.bounds.max_depth; ++d) {
      result.lost.push_back(
          CountValue::Sub(result.schema[d], result.lower_common[d]));
    }
  }

  span.AddArg("depth", options.bounds.max_depth);
  return result;
}

}  // namespace stap
