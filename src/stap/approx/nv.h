// Maximal lower XSD-approximations of unions fixing one disjunct
// (paper, Section 4.2.2: Definitions 4.4, Lemmas 4.5–4.7, Theorem 4.8).
//
// nv(D2, D1) is the set of trees t ∈ L(D2) that never lead outside
// L(D1) ∪ L(D2) when closed together with L(D1) under ancestor-guarded
// subtree exchange. The paper shows L(D1) ∪ nv(D2, D1) is the unique
// maximal lower XSD-approximation of L(D1) ∪ L(D2) containing L(D1), and
// that everything is computable in polynomial time via the "s-type" /
// "c-type" analysis of the product type automaton:
//
//   s-type τ:  some D1-subtree at ancestor-type τ is not a D2-subtree
//              (S1(τ) \ S2(τ) ≠ ∅)
//   c-type τ:  some D1-context at ancestor-type τ is not a D2-context
//              (C1(τ) \ C2(τ) ≠ ∅)
//
// and then restricts D2's content models per the case split of d'.
#ifndef STAP_APPROX_NV_H_
#define STAP_APPROX_NV_H_

#include <string>
#include <vector>

#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

// Analysis over the reachable states of the product of the two type
// automata (⊥ coordinates are kNoState).
struct NvAnalysis {
  struct PairState {
    int q1 = kNoState;  // state of D1's XSD automaton, or ⊥
    int q2 = kNoState;  // state of D2's XSD automaton, or ⊥
    bool s_type = false;
    bool c_type = false;
  };
  // pair 0 is the product initial state (q_init, q_init).
  std::vector<PairState> pairs;
  // transition[pair * num_symbols + a] -> pair id or -1.
  std::vector<int> transition;
  int num_symbols = 0;

  int Next(int pair, int symbol) const {
    return transition[pair * num_symbols + symbol];
  }

  std::string ToString(const Alphabet& sigma) const;
};

// Both schemas must be single-type (checked); alphabets are aligned and
// the inputs reduced internally.
NvAnalysis AnalyzeNv(const Edtd& d1, const Edtd& d2);

// The single-type schema D' with L(D') = nv(D2, D1). Polynomial
// (Lemma 4.6).
DfaXsd NonViolating(const Edtd& d1, const Edtd& d2);

// L(D1) ∪ nv(D2, D1): the unique maximal lower XSD-approximation of
// L(D1) ∪ L(D2) that contains L(D1) (Theorem 4.8). Polynomial.
DfaXsd LowerUnionFixingFirst(const Edtd& d1, const Edtd& d2);

}  // namespace stap

#endif  // STAP_APPROX_NV_H_
