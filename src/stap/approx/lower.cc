#include "stap/approx/lower.h"

#include <utility>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

StatusOr<DfaXsd> SubsetIntersectionLower(const Edtd& input, Budget* budget) {
  static Counter* const calls = GetCounter("approx.lower_calls");
  static Counter* const merged_states =
      GetCounter("approx.lower_merged_states");
  static Histogram* const latency = GetHistogram("approx.lower_ms");
  calls->Increment();
  ScopedTimer timer(latency);
  ScopedSpan span("approx.lower");

  Edtd edtd = ReduceEdtd(input);
  TypeAutomaton type_automaton = BuildTypeAutomaton(edtd);

  // Same subset construction as the upper approximation: the type
  // automaton's reachable subsets with {q_init} as state 0. Only the
  // per-subset content model differs below.
  std::vector<StateSet> subsets;
  StatusOr<Dfa> determinized_or =
      Determinize(type_automaton.nfa, budget, &subsets);
  if (!determinized_or.ok()) return determinized_or.status();
  Dfa determinized = *std::move(determinized_or);

  const int n = determinized.num_states();
  std::vector<int> remap(n, kNoState);
  STAP_CHECK(subsets[determinized.initial()] ==
             StateSet{TypeAutomaton::kInit});
  remap[determinized.initial()] = 0;
  int next_id = 1;
  for (int s = 0; s < n; ++s) {
    if (s == determinized.initial() || subsets[s].empty()) continue;
    remap[s] = next_id++;
  }

  DfaXsd xsd;
  xsd.sigma = edtd.sigma;
  for (int tau : edtd.start_types) {
    StateSetInsert(xsd.start_symbols, edtd.mu[tau]);
  }
  xsd.automaton = Dfa(next_id, edtd.num_symbols());
  xsd.automaton.SetInitial(0);
  xsd.state_label.assign(next_id, kNoSymbol);
  xsd.content.assign(next_id, Dfa::EmptyLanguage(edtd.num_symbols()));

  merged_states->Increment(next_id);
  for (int s = 0; s < n; ++s) {
    if (remap[s] == kNoState) continue;
    for (int a = 0; a < edtd.num_symbols(); ++a) {
      int t = determinized.Next(s, a);
      if (t != kNoState && remap[t] != kNoState) {
        xsd.automaton.SetTransition(remap[s], a, remap[t]);
      }
    }
    if (remap[s] == 0) continue;

    // Label of the merged state and intersection of the content images.
    // Every word the intersection admits is admitted by every member's
    // content model, which is what the soundness induction needs.
    int label = kNoSymbol;
    Dfa content_meet;
    bool first = true;
    for (int state : subsets[s]) {
      STAP_CHECK(state != TypeAutomaton::kInit);
      int tau = TypeAutomaton::TypeOfState(state);
      Nfa image =
          HomomorphicImage(edtd.content[tau], edtd.mu, edtd.num_symbols());
      StatusOr<Dfa> image_dfa = Determinize(image, budget);
      if (!image_dfa.ok()) return image_dfa.status();
      if (first) {
        label = edtd.mu[tau];
        content_meet = *std::move(image_dfa);
        first = false;
      } else {
        STAP_CHECK(label == edtd.mu[tau]);
        StatusOr<Dfa> product =
            DfaProduct(content_meet, *image_dfa, BoolOp::kAnd, budget);
        if (!product.ok()) return product.status();
        content_meet = *std::move(product);
      }
    }
    STAP_CHECK(!first);  // non-empty subset
    xsd.state_label[remap[s]] = label;
    StatusOr<Dfa> minimized = Minimize(content_meet.Trimmed(), budget);
    if (!minimized.ok()) return minimized.status();
    xsd.content[remap[s]] = *std::move(minimized);
  }
  xsd.CheckWellFormed();
  span.AddArg("xsd_states", xsd.automaton.num_states());
  return xsd;
}

}  // namespace stap
