// Closure under (ancestor-type-)guarded subtree exchange on finite tree
// sets, with derivation-tree witnesses (paper, Section 2.5 and 4.4.2).
//
// closure(X) is the least set containing X closed under ancestor-guarded
// subtree exchange (Definition 2.14); every member has a derivation tree
// (Definition 2.16, Lemma 2.17). These fixpoints are exact on finite seed
// sets and power the maximal-lower-approximation checks (substituting the
// paper's 2EXPTIME automaton construction on bounded instances).
#ifndef STAP_APPROX_CLOSURE_H_
#define STAP_APPROX_CLOSURE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "stap/automata/dfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/tree/tree.h"

namespace stap {

// How a closure member was produced: trees[base] with the subtree at
// base_path replaced by the subtree of trees[donor] at donor_path.
struct ExchangeStep {
  int base;
  TreePath base_path;
  int donor;
  TreePath donor_path;
};

struct ClosureResult {
  // trees[0..seed_count-1] are the seeds, the rest derived members.
  std::vector<Tree> trees;
  int seed_count = 0;
  // provenance[i] is empty for seeds.
  std::vector<std::optional<ExchangeStep>> provenance;
  // False if the fixpoint was stopped by the cap, the stop predicate, or
  // an exhausted budget before saturating.
  bool saturated = true;
  // The member that triggered ClosureOptions::stop_predicate, if any.
  std::optional<Tree> stop_match;
  // kResourceExhausted when ClosureOptions::budget ran out mid-fixpoint
  // (the members accumulated so far are still valid closure members);
  // OK otherwise.
  Status status;

  bool Contains(const Tree& tree) const;
};

struct ClosureOptions {
  // Stop after this many members (saturated=false). Ancestor-string
  // guards keep closures of finite sets finite (exchange positions sit at
  // fixed depths), but type-guarded closures can be infinite — e.g. seeds
  // {a, a(a)} under a one-state guard pump chains of every length.
  int max_trees = 10000;
  // Ignore exchanged results bigger than this many nodes (0 = no limit).
  // Bounding node count keeps fixpoints finite; members beyond the bound
  // are not explored, so use only when the target language is bounded.
  int max_nodes = 0;
  // When set, the fixpoint stops as soon as a member satisfies the
  // predicate (recorded in ClosureResult::stop_match, saturated=false).
  // Used to search for escape witnesses without materializing the whole
  // closure.
  std::function<bool(const Tree&)> stop_predicate;
  // Optional resource budget: every registered member charges the state
  // quota and the fixpoint loop samples the deadline. Exhaustion stops the
  // run with ClosureResult::status = kResourceExhausted. Not owned; null
  // is unlimited.
  Budget* budget = nullptr;
};

// Least fixpoint of ancestor-guarded subtree exchange (Definition 2.10
// guard: equal ancestor *strings*).
ClosureResult CloseUnderExchange(const std::vector<Tree>& seeds,
                                 const ClosureOptions& options = {});

// Ancestor-type-guarded variant (Definition 4.1): nodes are exchangeable
// when `guard` — a DFA over Σ read on ancestor strings — reaches the same
// state on both (and the labels agree, as for state-labeled automata).
// Undefined runs compare by the dead state.
ClosureResult CloseUnderTypeGuardedExchange(const std::vector<Tree>& seeds,
                                            const Dfa& guard,
                                            const ClosureOptions& options = {});

// Binary derivation tree (Definition 2.16): leaves are seeds, internal
// nodes combine their children by one exchange.
struct DerivationTree {
  Tree value;
  std::unique_ptr<DerivationTree> left;   // both null for a seed leaf
  std::unique_ptr<DerivationTree> right;

  int Height() const;
  int NumLeaves() const;
};

// Reconstructs a derivation tree for trees[index] from the provenance
// recorded during the fixpoint (Lemma 2.17's witness).
DerivationTree BuildDerivation(const ClosureResult& result, int index);

// Convenience: the first closure member for which `escapes` returns true,
// if any — used to exhibit counterexamples like the paper's Theorem 4.3.
std::optional<Tree> FindEscape(const ClosureResult& result,
                               const std::function<bool(const Tree&)>& escapes);

}  // namespace stap

#endif  // STAP_APPROX_CLOSURE_H_
