// Maximal lower XSD-approximation checks (paper, Section 4.4).
//
// The paper's general decision procedure (Theorem 4.15) builds a doubly
// exponential tree automaton over the guard automaton N_k; it is a
// decidability result rather than a runnable algorithm. This module
// implements the same predicate for *finite* (depth- and width-bounded)
// instances by computing the closure fixpoints exactly:
//
//   S is a maximal lower approximation of D iff there is no t ∈ L(D) with
//   closure(L(S) ∪ {t}) ⊆ L(D)                       (Section 4.4.2)
//
// quantifying t over the bounded enumeration and evaluating the closure
// with approx/closure.h. The guard automaton N_k (whose states separate
// all ancestor strings up to length k) is also provided, matching the
// paper's reduction of ancestor-guarded to ancestor-type-guarded exchange
// on depth-bounded languages.
#ifndef STAP_APPROX_LOWER_CHECK_H_
#define STAP_APPROX_LOWER_CHECK_H_

#include <optional>

#include "stap/approx/closure.h"
#include "stap/approx/upper.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/tree/enumerate.h"

namespace stap {

class ThreadPool;

// The DFA N_k: separates every pair of distinct strings of length <= k
// (a complete |Σ|-ary trie with an absorbing overflow state).
Dfa NkAutomaton(int k, int num_symbols);

struct LowerCheckResult {
  bool is_lower = false;    // L(S) ⊆ L(D)
  bool is_maximal = false;  // no closure-safe extension tree exists
  // A tree t ∈ L(D) \ L(S) with closure(L(S) ∪ {t}) ⊆ L(D), when found.
  std::optional<Tree> extension;
  // False when a closure fixpoint hit its cap; is_maximal is then only
  // "no extension found within the caps".
  bool exhaustive = true;
  // kResourceExhausted when ClosureOptions::budget tripped during the
  // enumeration or any closure fixpoint (exhaustive is then also false:
  // the budgeted run proved nothing about the skipped extensions); OK
  // otherwise. A found extension is still a real extension.
  Status status;
};

// Decides maximality of the lower approximation on the bounded instance:
// both languages are taken restricted to `bounds` (exact when both are
// finite and contained in the bounds). `candidate` must be single-type.
//
// When a ThreadPool is supplied the per-extension closure fixpoints run
// as one parallel sweep; the result (including which extension tree is
// reported and the `exhaustive` flag) is identical to the serial order.
LowerCheckResult CheckMaximalLowerFinite(const Edtd& candidate,
                                         const Edtd& target,
                                         const TreeBounds& bounds,
                                         const ClosureOptions& options = {},
                                         ThreadPool* pool = nullptr);

// Is L(edtd) definable by a single-type EDTD at all? (Martens et al.'s
// EXPTIME test, via Theorem 3.2: the language is single-type definable iff
// it equals its minimal upper approximation.)
bool IsSingleTypeDefinable(const Edtd& edtd);

// Budgeted variant: the upper construction charges the budget (the
// dominant exponential cost; the converse inclusion runs on whatever it
// built). `options` configures that construction — any context supplied
// there must be exact-mode (upper.h) or the verdict concerns the
// restricted language only. A null budget is unlimited.
StatusOr<bool> IsSingleTypeDefinable(const Edtd& edtd, Budget* budget,
                                     const UpperOptions& options = {});

}  // namespace stap

#endif  // STAP_APPROX_LOWER_CHECK_H_
