// Counterexample documents for failed inclusions (companion to
// Lemma 3.3).
//
// When L(D1) ⊄ L(X) the pair walk of the inclusion test pinpoints a type
// pair whose content models disagree; from it a concrete witness document
// in L(D1) \ L(X) can be assembled in polynomial time: minimal subtrees
// for every type, a spine of minimal contexts down to the offending node,
// and the offending child string itself. Schema-evolution tooling uses
// this to *show* the incompatibility rather than just report it.
#ifndef STAP_APPROX_WITNESS_H_
#define STAP_APPROX_WITNESS_H_

#include <optional>

#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"
#include "stap/tree/tree.h"

namespace stap {

// A tree in L(d1) \ L(xsd2), or nullopt when L(d1) ⊆ L(xsd2).
// Polynomial in |d1| + |xsd2| (alphabets are aligned by name; d1 is
// reduced internally).
std::optional<Tree> XsdInclusionWitness(const Edtd& d1, const DfaXsd& xsd2);

// Minimal member trees per type of a reduced EDTD (each tree uses the
// fewest nodes reachable by the greedy bottom-up construction).
std::vector<Tree> MinimalTypeTrees(const Edtd& edtd);

}  // namespace stap

#endif  // STAP_APPROX_WITNESS_H_
