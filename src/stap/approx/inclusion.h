// Polynomial-time inclusion tests into single-type schemas
// (paper, Lemma 3.3).
//
// L(D1) ⊆ L(D2) for an EDTD D1 and a single-type D2 reduces to (1) the
// reachable pairs of the two type automata and (2) per-pair content-model
// inclusion — both polynomial because D2's type automaton is
// deterministic. Contrast with the EXPTIME route in treeauto/exact.h.
//
// The per-pair content checks are independent of the pair BFS and of each
// other, so they run as one parallel sweep over the reachable pairs when
// a ThreadPool is supplied (they are the dominant cost; the BFS itself is
// a cheap graph walk).
#ifndef STAP_APPROX_INCLUSION_H_
#define STAP_APPROX_INCLUSION_H_

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

class ThreadPool;

// L(d1) ⊆ L(xsd2)? Polynomial in |d1| + |xsd2|. `d1` is reduced
// internally; alphabets are aligned by name. When `pool` is non-null the
// per-pair content-model inclusions run on it.
bool EdtdIncludedInXsd(const Edtd& d1, const DfaXsd& xsd2,
                       ThreadPool* pool = nullptr);

// Budgeted variant: the pair BFS charges states and the per-pair content
// inclusions run the budgeted antichain engine; the first exhausted
// worker wins and the sweep drains cooperatively. No defaults (avoids
// colliding with the defaulted signature above); a null budget is
// unlimited.
StatusOr<bool> EdtdIncludedInXsd(const Edtd& d1, const DfaXsd& xsd2,
                                 ThreadPool* pool, Budget* budget);

// Convenience wrapper: d2 must be single-type (checked).
bool IncludedInSingleType(const Edtd& d1, const Edtd& d2,
                          ThreadPool* pool = nullptr);
StatusOr<bool> IncludedInSingleType(const Edtd& d1, const Edtd& d2,
                                    ThreadPool* pool, Budget* budget);

// Language equivalence of two single-type EDTDs (both checked).
bool SingleTypeEquivalent(const Edtd& d1, const Edtd& d2,
                          ThreadPool* pool = nullptr);
StatusOr<bool> SingleTypeEquivalent(const Edtd& d1, const Edtd& d2,
                                    ThreadPool* pool, Budget* budget);

}  // namespace stap

#endif  // STAP_APPROX_INCLUSION_H_
