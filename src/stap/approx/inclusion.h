// Polynomial-time inclusion tests into single-type schemas
// (paper, Lemma 3.3).
//
// L(D1) ⊆ L(D2) for an EDTD D1 and a single-type D2 reduces to (1) the
// reachable pairs of the two type automata and (2) per-pair content-model
// inclusion — both polynomial because D2's type automaton is
// deterministic. Contrast with the EXPTIME route in treeauto/exact.h.
#ifndef STAP_APPROX_INCLUSION_H_
#define STAP_APPROX_INCLUSION_H_

#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

// L(d1) ⊆ L(xsd2)? Polynomial in |d1| + |xsd2|. `d1` is reduced
// internally; alphabets are aligned by name.
bool EdtdIncludedInXsd(const Edtd& d1, const DfaXsd& xsd2);

// Convenience wrapper: d2 must be single-type (checked).
bool IncludedInSingleType(const Edtd& d1, const Edtd& d2);

// Language equivalence of two single-type EDTDs (both checked).
bool SingleTypeEquivalent(const Edtd& d1, const Edtd& d2);

}  // namespace stap

#endif  // STAP_APPROX_INCLUSION_H_
