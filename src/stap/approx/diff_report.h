// Schema comparison reports.
//
// Bundles the paper's decision procedures into the artifact a schema
// maintainer actually wants when comparing two XSDs: the containment
// relation (Lemma 3.3, both directions), concrete witness documents for
// each strict direction (approx/witness.h), and bounded document counts
// quantifying how much the schemas differ (schema/count.h).
#ifndef STAP_APPROX_DIFF_REPORT_H_
#define STAP_APPROX_DIFF_REPORT_H_

#include <optional>
#include <string>

#include "stap/schema/edtd.h"
#include "stap/tree/tree.h"

namespace stap {

enum class SchemaRelation {
  kEquivalent,       // L(a) == L(b)
  kSubset,           // L(a) ⊂ L(b)
  kSuperset,         // L(a) ⊃ L(b)
  kIncomparable,     // neither contains the other
};

const char* SchemaRelationName(SchemaRelation relation);

struct SchemaDiffReport {
  SchemaRelation relation = SchemaRelation::kEquivalent;
  // A document in L(a) \ L(b), when that set is non-empty; and dually.
  std::optional<Tree> only_in_a;
  std::optional<Tree> only_in_b;
  // Document counts within the bounds used by CompareSchemas.
  double count_a = 0;
  double count_b = 0;
  double count_intersection = 0;
  // The merged alphabet the witness trees are labeled over.
  Alphabet sigma;

  // Human-readable multi-line summary (witnesses rendered as XML).
  std::string ToString() const;
};

// Compares two single-type schemas (checked). Counting uses documents of
// depth <= count_depth with at most count_width children per node.
SchemaDiffReport CompareSchemas(const Edtd& a, const Edtd& b,
                                int count_depth = 4, int count_width = 4);

}  // namespace stap

#endif  // STAP_APPROX_DIFF_REPORT_H_
