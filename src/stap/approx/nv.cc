#include "stap/approx/nv.h"

#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stap/approx/upper_boolean.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

namespace {

// DFA for { w : w uses only symbols with allowed[a] }.
Dfa WordsOver(const std::vector<bool>& allowed) {
  const int num_symbols = static_cast<int>(allowed.size());
  Dfa dfa(1, num_symbols);
  dfa.SetFinal(0);
  for (int a = 0; a < num_symbols; ++a) {
    if (allowed[a]) dfa.SetTransition(0, a, 0);
  }
  return dfa;
}

// DFA for { w : some position of w carries a symbol with marked[a] }.
Dfa ContainsMarked(const std::vector<bool>& marked) {
  const int num_symbols = static_cast<int>(marked.size());
  Dfa dfa(2, num_symbols);
  dfa.SetFinal(1);
  for (int a = 0; a < num_symbols; ++a) {
    dfa.SetTransition(0, a, marked[a] ? 1 : 0);
    dfa.SetTransition(1, a, 1);
  }
  return dfa;
}

// Is there a word in L(f1) with an occurrence of `a` at one position and
// an occurrence of a marked symbol at a *different* position? (Used for
// rule (iii) in the c-type seeds.)
bool HasHoleAndBadSibling(const Dfa& f1, int a,
                          const std::vector<bool>& marked) {
  if (f1.num_states() == 0) return false;
  // Flags: bit0 = hole role assigned, bit1 = bad-sibling role assigned.
  std::vector<bool> seen(static_cast<size_t>(f1.num_states()) * 4, false);
  std::deque<std::pair<int, int>> queue;  // (state, flags)
  auto visit = [&](int s, int flags) {
    size_t key = static_cast<size_t>(s) * 4 + flags;
    if (!seen[key]) {
      seen[key] = true;
      queue.emplace_back(s, flags);
    }
  };
  visit(f1.initial(), 0);
  while (!queue.empty()) {
    auto [s, flags] = queue.front();
    queue.pop_front();
    if (flags == 3 && f1.IsFinal(s)) return true;
    for (int c = 0; c < f1.num_symbols(); ++c) {
      int r = f1.Next(s, c);
      if (r == kNoState) continue;
      visit(r, flags);  // position takes no role
      if (c == a && (flags & 1) == 0) visit(r, flags | 1);
      if (marked[c] && (flags & 2) == 0) visit(r, flags | 2);
    }
  }
  return false;
}

struct ProductBuilder {
  DfaXsd x1;
  DfaXsd x2;
  NvAnalysis analysis;
  std::unordered_map<std::pair<int, int>, int, IntPairHash> pair_ids;

  int Intern(int q1, int q2) {
    auto [it, inserted] =
        pair_ids.emplace(std::make_pair(q1, q2), analysis.pairs.size());
    if (inserted) {
      NvAnalysis::PairState state;
      state.q1 = q1;
      state.q2 = q2;
      analysis.pairs.push_back(state);
    }
    return it->second;
  }

  void Build() {
    const int num_symbols = analysis.num_symbols;
    Intern(0, 0);  // the product initial state
    size_t processed = 0;
    while (processed < analysis.pairs.size()) {
      const int q1 = analysis.pairs[processed].q1;
      const int q2 = analysis.pairs[processed].q2;
      ++processed;
      for (int a = 0; a < num_symbols; ++a) {
        int r1 = q1 == kNoState ? kNoState : x1.automaton.Next(q1, a);
        int r2 = q2 == kNoState ? kNoState : x2.automaton.Next(q2, a);
        if (r1 == kNoState && r2 == kNoState) continue;
        Intern(r1, r2);
      }
    }
    analysis.transition.assign(analysis.pairs.size() * num_symbols, -1);
    for (size_t p = 0; p < analysis.pairs.size(); ++p) {
      const int q1 = analysis.pairs[p].q1;
      const int q2 = analysis.pairs[p].q2;
      for (int a = 0; a < num_symbols; ++a) {
        int r1 = q1 == kNoState ? kNoState : x1.automaton.Next(q1, a);
        int r2 = q2 == kNoState ? kNoState : x2.automaton.Next(q2, a);
        if (r1 == kNoState && r2 == kNoState) continue;
        analysis.transition[p * num_symbols + a] = pair_ids.at({r1, r2});
      }
    }
  }
};

}  // namespace

std::string NvAnalysis::ToString(const Alphabet& sigma) const {
  (void)sigma;
  std::ostringstream os;
  for (size_t p = 0; p < pairs.size(); ++p) {
    os << "pair " << p << " (q1=" << pairs[p].q1 << ", q2=" << pairs[p].q2
       << ")" << (pairs[p].s_type ? " s-type" : "")
       << (pairs[p].c_type ? " c-type" : "") << "\n";
  }
  return os.str();
}

NvAnalysis AnalyzeNv(const Edtd& d1_in, const Edtd& d2_in) {
  auto [a1, a2] = AlignAlphabets(d1_in, d2_in);
  Edtd r1 = ReduceEdtd(a1);
  Edtd r2 = ReduceEdtd(a2);
  STAP_CHECK(IsSingleType(r1));
  STAP_CHECK(IsSingleType(r2));

  ProductBuilder builder;
  builder.x1 = DfaXsdFromStEdtd(r1);
  builder.x2 = DfaXsdFromStEdtd(r2);
  builder.analysis.num_symbols = builder.x1.sigma.size();
  builder.Build();

  NvAnalysis& analysis = builder.analysis;
  const DfaXsd& x1 = builder.x1;
  const DfaXsd& x2 = builder.x2;
  const int num_symbols = analysis.num_symbols;
  const int num_pairs = static_cast<int>(analysis.pairs.size());

  // ---- s-types -----------------------------------------------------------
  // Backward closure, along D1-structure edges, of the "bad" pairs where
  // D1's content model is not included in D2's.
  std::vector<bool> bad(num_pairs, false);
  for (int p = 1; p < num_pairs; ++p) {
    const auto& pair = analysis.pairs[p];
    if (pair.q1 == kNoState) continue;
    bad[p] = pair.q2 == kNoState ||
             !DfaIncludedIn(x1.content[pair.q1], x2.content[pair.q2]);
  }
  std::vector<bool> s_type = bad;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int p = 1; p < num_pairs; ++p) {
      if (s_type[p] || analysis.pairs[p].q1 == kNoState) continue;
      for (int a = 0; a < num_symbols; ++a) {
        int succ = analysis.Next(p, a);
        if (succ < 0 || analysis.pairs[succ].q1 == kNoState) continue;
        if (s_type[succ]) {
          s_type[p] = true;
          changed = true;
          break;
        }
      }
    }
  }
  for (int p = 1; p < num_pairs; ++p) analysis.pairs[p].s_type = s_type[p];

  // ---- c-types -----------------------------------------------------------
  // Seeds:
  //  (root) the hole-only context at a D1 root label that D2 does not
  //         allow as a root;
  //  (ii)   a parent level realizable in D1 whose Σ-string violates the
  //         D2 content model;
  //  (iii)  a parent level realizable in D1 with an s-typed sibling.
  // Then close forward along product edges (a c-typed parent makes every
  // child c-typed — the (i) rule / Lemma 4.5(c)).
  std::vector<bool> c_type(num_pairs, false);
  for (int a = 0; a < num_symbols; ++a) {
    int root_pair = analysis.Next(0, a);
    if (root_pair < 0) continue;
    const auto& pair = analysis.pairs[root_pair];
    if (pair.q1 == kNoState) continue;  // not a D1 root label
    bool d2_allows = pair.q2 != kNoState &&
                     StateSetContains(x2.start_symbols, a);
    if (!d2_allows) c_type[root_pair] = true;
  }
  for (int p = 1; p < num_pairs; ++p) {
    const auto& parent = analysis.pairs[p];
    if (parent.q1 == kNoState) continue;
    const Dfa& f1 = x1.content[parent.q1];
    // Symbols whose successor pair is an s-type.
    std::vector<bool> s_marked(num_symbols, false);
    for (int b = 0; b < num_symbols; ++b) {
      int succ = analysis.Next(p, b);
      if (succ >= 0 && analysis.pairs[succ].s_type) s_marked[b] = true;
    }
    for (int a = 0; a < num_symbols; ++a) {
      int child = analysis.Next(p, a);
      if (child < 0 || analysis.pairs[child].q1 == kNoState) continue;
      if (c_type[child]) continue;
      // (ii): a D1 level containing `a` that D2's content model rejects.
      bool seed = false;
      if (parent.q2 == kNoState) {
        seed = true;  // every D1 level here is invalid for D2
      } else {
        std::vector<bool> only_a(num_symbols, false);
        only_a[a] = true;
        Dfa witness = DfaIntersection(
            DfaIntersection(f1, ContainsMarked(only_a)),
            DfaComplement(x2.content[parent.q2]));
        seed = !witness.IsEmpty();
      }
      // (iii): a D1 level with the hole at `a` and an s-typed sibling.
      if (!seed) seed = HasHoleAndBadSibling(f1, a, s_marked);
      if (seed) c_type[child] = true;
    }
  }
  // Forward closure along product edges between D1-realizable pairs.
  changed = true;
  while (changed) {
    changed = false;
    for (int p = 1; p < num_pairs; ++p) {
      if (!c_type[p]) continue;
      for (int a = 0; a < num_symbols; ++a) {
        int succ = analysis.Next(p, a);
        if (succ < 0 || analysis.pairs[succ].q1 == kNoState) continue;
        if (!c_type[succ]) {
          c_type[succ] = true;
          changed = true;
        }
      }
    }
  }
  for (int p = 1; p < num_pairs; ++p) analysis.pairs[p].c_type = c_type[p];
  return builder.analysis;
}

DfaXsd NonViolating(const Edtd& d1_in, const Edtd& d2_in) {
  auto [a1, a2] = AlignAlphabets(d1_in, d2_in);
  Edtd r1 = ReduceEdtd(a1);
  Edtd r2 = ReduceEdtd(a2);
  STAP_CHECK(IsSingleType(r1));
  STAP_CHECK(IsSingleType(r2));
  NvAnalysis analysis = AnalyzeNv(r1, r2);
  DfaXsd x1 = DfaXsdFromStEdtd(r1);
  DfaXsd x2 = DfaXsdFromStEdtd(r2);
  const int num_symbols = analysis.num_symbols;

  // States of D' are the product pairs with a live D2 coordinate.
  const int num_pairs = static_cast<int>(analysis.pairs.size());
  std::vector<int> remap(num_pairs, kNoState);
  remap[0] = 0;
  int next_id = 1;
  for (int p = 1; p < num_pairs; ++p) {
    if (analysis.pairs[p].q2 != kNoState) remap[p] = next_id++;
  }

  DfaXsd result;
  result.sigma = x2.sigma;
  result.start_symbols = x2.start_symbols;
  result.automaton = Dfa(next_id, num_symbols);
  result.automaton.SetInitial(0);
  result.state_label.assign(next_id, kNoSymbol);
  result.content.assign(next_id, Dfa::EmptyLanguage(num_symbols));

  for (int p = 0; p < num_pairs; ++p) {
    if (remap[p] == kNoState) continue;
    for (int a = 0; a < num_symbols; ++a) {
      int succ = analysis.Next(p, a);
      if (succ >= 0 && remap[succ] != kNoState) {
        result.automaton.SetTransition(remap[p], a, remap[succ]);
      }
    }
    if (p == 0) continue;

    const auto& pair = analysis.pairs[p];
    result.state_label[remap[p]] = x2.state_label[pair.q2];
    const Dfa& f2 = x2.content[pair.q2];
    Dfa f1 = pair.q1 != kNoState ? x1.content[pair.q1]
                                 : Dfa::EmptyLanguage(num_symbols);
    if (pair.c_type) {
      // All of D1's constraints apply below a c-type (rule 1 of d').
      result.content[remap[p]] = Minimize(DfaIntersection(f2, f1));
    } else {
      // Either no child leads to an s-type, or the whole level is also
      // D1-valid (rule 2 of d').
      std::vector<bool> non_slab(num_symbols, true);
      std::vector<bool> slab(num_symbols, false);
      bool any_slab = false;
      for (int a = 0; a < num_symbols; ++a) {
        int succ = analysis.Next(p, a);
        if (succ >= 0 && analysis.pairs[succ].s_type) {
          non_slab[a] = false;
          slab[a] = true;
          any_slab = true;
        }
      }
      Dfa safe = DfaIntersection(f2, WordsOver(non_slab));
      if (any_slab) {
        Dfa risky = DfaIntersection(DfaIntersection(f2, f1),
                                    ContainsMarked(slab));
        result.content[remap[p]] = Minimize(DfaUnion(safe, risky));
      } else {
        result.content[remap[p]] = Minimize(safe);
      }
    }
  }
  return MinimizeXsd(result);
}

DfaXsd LowerUnionFixingFirst(const Edtd& d1, const Edtd& d2) {
  DfaXsd nv = NonViolating(d1, d2);
  Edtd nv_edtd = StEdtdFromDfaXsd(nv);
  auto [d1_aligned, nv_aligned] = AlignAlphabets(d1, nv_edtd);
  return MinimizeXsd(UpperUnion(d1_aligned, nv_aligned));
}

}  // namespace stap
