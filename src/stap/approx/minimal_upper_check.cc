#include "stap/approx/minimal_upper_check.h"

#include <map>
#include <utility>
#include <vector>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper_boolean.h"
#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/base/check.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"

namespace stap {

bool IsMinimalUpperApproximation(const Edtd& candidate_in,
                                 const Edtd& target_in) {
  auto [candidate_aligned, target_aligned] =
      AlignAlphabets(candidate_in, target_in);
  Edtd candidate = ReduceEdtd(candidate_aligned);
  Edtd target = ReduceEdtd(target_aligned);
  STAP_CHECK(IsSingleType(candidate));
  const int num_symbols = candidate.num_symbols();

  // Phase 1: the candidate must be an upper approximation at all:
  // L(target) ⊆ L(candidate). Polynomial (Lemma 3.3).
  if (target.num_types() == 0) return candidate.num_types() == 0;
  if (candidate.num_types() == 0) return false;
  DfaXsd candidate_xsd = DfaXsdFromStEdtd(candidate);
  if (!EdtdIncludedInXsd(target, candidate_xsd)) return false;

  // Phase 2: L(candidate) ⊆ L(minupper(target)) — per the paper it
  // suffices to check inclusion, since minupper is the least single-type
  // language containing L(target). Walk pairs (candidate XSD state,
  // subset of target types) materializing subsets on demand.
  TypeAutomaton target_types = BuildTypeAutomaton(target);

  // Candidate root labels must all be allowed by minupper, whose start
  // symbols are μ(S_target).
  std::vector<bool> target_root(num_symbols, false);
  for (int tau : target.start_types) target_root[target.mu[tau]] = true;
  for (int a : candidate_xsd.start_symbols) {
    if (!target_root[a]) return false;
  }

  // Cache of determinized content unions per target-type subset.
  std::map<StateSet, Dfa> content_cache;
  auto subset_content = [&](const StateSet& subset) -> const Dfa& {
    auto it = content_cache.find(subset);
    if (it != content_cache.end()) return it->second;
    Nfa content_union(0, num_symbols);
    bool first = true;
    for (int state : subset) {
      int tau = TypeAutomaton::TypeOfState(state);
      Nfa image =
          HomomorphicImage(target.content[tau], target.mu, num_symbols);
      content_union = first ? std::move(image)
                            : NfaUnion(content_union, image);
      first = false;
    }
    STAP_CHECK(!first);
    return content_cache.emplace(subset, Determinize(content_union))
        .first->second;
  };

  std::map<std::pair<int, StateSet>, bool> seen;
  std::vector<std::pair<int, StateSet>> worklist;
  auto visit = [&](int q, StateSet subset) {
    auto [it, inserted] =
        seen.emplace(std::make_pair(q, std::move(subset)), true);
    if (inserted) worklist.push_back(it->first);
  };
  visit(0, StateSet{TypeAutomaton::kInit});

  size_t processed = 0;
  while (processed < worklist.size()) {
    auto [q, subset] = worklist[processed];
    ++processed;
    if (q != 0) {
      // Candidate content must be inside the union of the subset's
      // contents.
      Nfa image = candidate_xsd.content[q].ToNfa();
      if (!NfaIncludedInDfa(image, subset_content(subset))) return false;
    }
    for (int a = 0; a < num_symbols; ++a) {
      int q_next = candidate_xsd.automaton.Next(q, a);
      if (q_next == kNoState) continue;
      StateSet subset_next = target_types.nfa.Next(subset, a);
      if (subset_next.empty()) continue;  // caught by the content check
      visit(q_next, std::move(subset_next));
    }
  }
  return true;
}

}  // namespace stap
