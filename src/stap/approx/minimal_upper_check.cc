#include "stap/approx/minimal_upper_check.h"

#include <atomic>
#include <unordered_set>
#include <utility>
#include <vector>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper_boolean.h"
#include "stap/automata/antichain.h"
#include "stap/automata/ops.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"

namespace stap {

StatusOr<bool> IsMinimalUpperApproximation(const Edtd& candidate_in,
                                           const Edtd& target_in,
                                           ThreadPool* pool, Budget* budget) {
  ScopedSpan span("approx.minimal_upper_check");
  auto [candidate_aligned, target_aligned] =
      AlignAlphabets(candidate_in, target_in);
  Edtd candidate = ReduceEdtd(candidate_aligned);
  Edtd target = ReduceEdtd(target_aligned);
  STAP_CHECK(IsSingleType(candidate));
  const int num_symbols = candidate.num_symbols();

  // Phase 1: the candidate must be an upper approximation at all:
  // L(target) ⊆ L(candidate). Polynomial (Lemma 3.3).
  ScopedSpan phase1_span("muc.upper_inclusion");
  if (target.num_types() == 0) return candidate.num_types() == 0;
  if (candidate.num_types() == 0) return false;
  DfaXsd candidate_xsd = DfaXsdFromStEdtd(candidate);
  StatusOr<bool> upper = EdtdIncludedInXsd(target, candidate_xsd, pool, budget);
  if (!upper.ok()) return upper.status();
  if (!*upper) return false;
  phase1_span.End();

  // Phase 2: L(candidate) ⊆ L(minupper(target)) — per the paper it
  // suffices to check inclusion, since minupper is the least single-type
  // language containing L(target). Walk pairs (candidate XSD state,
  // subset of target types) materializing subsets on demand.
  TypeAutomaton target_types = BuildTypeAutomaton(target);

  // Candidate root labels must all be allowed by minupper, whose start
  // symbols are μ(S_target).
  std::vector<bool> target_root(num_symbols, false);
  for (int tau : target.start_types) target_root[target.mu[tau]] = true;
  for (int a : candidate_xsd.start_symbols) {
    if (!target_root[a]) return false;
  }

  // Subsets of target-type states are interned to dense ids; the
  // visited-pair set and the per-subset content unions key off those ids.
  ScopedSpan walk_span("muc.pair_walk");
  StateSetInterner subsets;
  std::unordered_set<uint64_t, U64Hash> seen;
  std::vector<std::pair<int, int>> worklist;  // (candidate state, subset id)
  Status charge_status;
  auto visit = [&](int q, StateSet&& subset) {
    int subset_id = subsets.Intern(std::move(subset)).first;
    if (seen.insert(PackPair(q, subset_id)).second) {
      worklist.emplace_back(q, subset_id);
      if (charge_status.ok()) charge_status = Budget::ChargeSets(budget);
    }
  };
  visit(candidate_xsd.automaton.initial(), StateSet{TypeAutomaton::kInit});

  // BFS over reachable pairs first (cheap graph walk; expansion never
  // depended on the content verdicts), then one parallel sweep of the
  // content checks over the collected pairs.
  StateSet scratch;
  for (size_t processed = 0;
       processed < worklist.size() && charge_status.ok(); ++processed) {
    const auto [q, subset_id] = worklist[processed];
    for (int a = 0; a < num_symbols; ++a) {
      int q_next = candidate_xsd.automaton.Next(q, a);
      if (q_next == kNoState) continue;
      target_types.nfa.NextInto(subsets[subset_id], a, &scratch);
      if (scratch.empty()) continue;  // caught by the content check
      visit(q_next, std::move(scratch));
    }
  }
  walk_span.AddArg("pairs", worklist.size());
  walk_span.AddArg("subsets", subsets.size());
  walk_span.End();
  STAP_RETURN_IF_ERROR(charge_status);

  // Union NFA of a subset's content images. Built once per subset id (all
  // ids occur in the worklist); the antichain inclusion consumes the NFA
  // directly, so the union is never determinized.
  ScopedSpan contents_span("muc.subset_contents");
  std::vector<Nfa> subset_content(subsets.size(), Nfa(0, num_symbols));
  ThreadPool::ParallelFor(pool, subsets.size(), [&](int subset_id) {
    Nfa content_union(0, num_symbols);
    bool first = true;
    for (int state : subsets[subset_id]) {
      if (state == TypeAutomaton::kInit) continue;
      int tau = TypeAutomaton::TypeOfState(state);
      Nfa image =
          HomomorphicImage(target.content[tau], target.mu, num_symbols);
      content_union =
          first ? std::move(image) : NfaUnion(content_union, image);
      first = false;
    }
    subset_content[subset_id] = std::move(content_union);
  });
  contents_span.End();

  ScopedSpan sweep_span("muc.content_sweep");
  sweep_span.AddArg("pairs", worklist.size());
  const int candidate_init = candidate_xsd.automaton.initial();
  std::atomic<bool> failed{false};
  SharedStatus shared;
  ThreadPool::ParallelFor(
      pool, static_cast<int>(worklist.size()), [&](int i) {
        if (failed.load(std::memory_order_relaxed) || !shared.ok()) return;
        const auto [q, subset_id] = worklist[i];
        if (q == candidate_init) return;
        // Candidate content must be inside the union of the subset's
        // contents.
        Nfa image = candidate_xsd.content[q].ToNfa();
        StatusOr<bool> included =
            AntichainIncluded(image, subset_content[subset_id], budget);
        if (!included.ok()) {
          shared.Update(included.status());
          return;
        }
        if (!*included) {
          failed.store(true, std::memory_order_relaxed);
        }
      });
  // A definite non-inclusion verdict stands even if another worker
  // exhausted the budget.
  if (failed.load()) return false;
  STAP_RETURN_IF_ERROR(shared.ToStatus());
  return true;
}

bool IsMinimalUpperApproximation(const Edtd& candidate, const Edtd& target,
                                 ThreadPool* pool) {
  StatusOr<bool> result =
      IsMinimalUpperApproximation(candidate, target, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

}  // namespace stap
