#include "stap/approx/minimal_upper_check.h"

#include <atomic>
#include <utility>
#include <vector>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper_boolean.h"
#include "stap/automata/antichain.h"
#include "stap/automata/determinize.h"
#include "stap/automata/ops.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"

namespace stap {

StatusOr<bool> IsMinimalUpperApproximation(const Edtd& candidate_in,
                                           const Edtd& target_in,
                                           ThreadPool* pool, Budget* budget) {
  ScopedSpan span("approx.minimal_upper_check");
  auto [candidate_aligned, target_aligned] =
      AlignAlphabets(candidate_in, target_in);
  Edtd candidate = ReduceEdtd(candidate_aligned);
  Edtd target = ReduceEdtd(target_aligned);
  STAP_CHECK(IsSingleType(candidate));
  const int num_symbols = candidate.num_symbols();

  // Phase 1: the candidate must be an upper approximation at all:
  // L(target) ⊆ L(candidate). Polynomial (Lemma 3.3).
  ScopedSpan phase1_span("muc.upper_inclusion");
  if (target.num_types() == 0) return candidate.num_types() == 0;
  if (candidate.num_types() == 0) return false;
  DfaXsd candidate_xsd = DfaXsdFromStEdtd(candidate);
  StatusOr<bool> upper = EdtdIncludedInXsd(target, candidate_xsd, pool, budget);
  if (!upper.ok()) return upper.status();
  if (!*upper) return false;
  phase1_span.End();

  // Phase 2: L(candidate) ⊆ L(minupper(target)) — per the paper it
  // suffices to check inclusion, since minupper is the least single-type
  // language containing L(target). The pairs (candidate XSD state,
  // subset of target types) are exactly a schema-guided determinization
  // of the target's type automaton under the candidate as context, so
  // this phase rides the shared kernel (same budget, metrics, and span
  // contract) instead of the hand-rolled joint walk it used to be.
  TypeAutomaton target_types = BuildTypeAutomaton(target);

  // Candidate root labels must all be allowed by minupper, whose start
  // symbols are μ(S_target).
  std::vector<bool> target_root(num_symbols, false);
  for (int tau : target.start_types) target_root[target.mu[tau]] = true;
  for (int a : candidate_xsd.start_symbols) {
    if (!target_root[a]) return false;
  }

  // The kernel materializes only (candidate state, subset) pairs both of
  // whose halves are live; a target move the candidate cannot follow (or
  // vice versa) lands in the shared sink, which the old walk skipped as
  // "caught by the content check".
  ScopedSpan walk_span("muc.pair_walk");
  std::vector<StateSet> pair_subsets;
  std::vector<StateSet> pair_contexts;
  StatusOr<Dfa> joint =
      DeterminizeUnderSchema(target_types.nfa, candidate_xsd.automaton.ToNfa(),
                             budget, &pair_subsets, &pair_contexts);
  if (!joint.ok()) return joint.status();

  // Re-intern the materialized subsets so each distinct subset's content
  // union is built once; keep per live pair the candidate state and the
  // interned subset id. The sink (both halves empty) carries no content
  // obligation, and the initial pair is the ({init}, {q_init}) root
  // marker whose content the root-label check above already covers.
  StateSetInterner subsets;
  struct PairRef {
    int q;
    int subset_id;
  };
  std::vector<PairRef> worklist;
  for (int s = 0; s < joint->num_states(); ++s) {
    if (s == joint->initial() || pair_subsets[s].empty()) continue;
    // The candidate automaton is deterministic, so every live context
    // half is a singleton {q}.
    STAP_CHECK(pair_contexts[s].size() == 1);
    StateSet subset = pair_subsets[s];
    worklist.push_back(
        PairRef{pair_contexts[s][0], subsets.Intern(std::move(subset)).first});
  }
  walk_span.AddArg("pairs", worklist.size());
  walk_span.AddArg("subsets", subsets.size());
  walk_span.End();

  // Union NFA of a subset's content images. Built once per subset id (all
  // ids occur in the worklist); the antichain inclusion consumes the NFA
  // directly, so the union is never determinized.
  ScopedSpan contents_span("muc.subset_contents");
  std::vector<Nfa> subset_content(subsets.size(), Nfa(0, num_symbols));
  ThreadPool::ParallelFor(pool, subsets.size(), [&](int subset_id) {
    Nfa content_union(0, num_symbols);
    bool first = true;
    for (int state : subsets[subset_id]) {
      if (state == TypeAutomaton::kInit) continue;
      int tau = TypeAutomaton::TypeOfState(state);
      Nfa image =
          HomomorphicImage(target.content[tau], target.mu, num_symbols);
      content_union =
          first ? std::move(image) : NfaUnion(content_union, image);
      first = false;
    }
    subset_content[subset_id] = std::move(content_union);
  });
  contents_span.End();

  ScopedSpan sweep_span("muc.content_sweep");
  sweep_span.AddArg("pairs", worklist.size());
  std::atomic<bool> failed{false};
  SharedStatus shared;
  ThreadPool::ParallelFor(
      pool, static_cast<int>(worklist.size()), [&](int i) {
        if (failed.load(std::memory_order_relaxed) || !shared.ok()) return;
        const auto [q, subset_id] = worklist[i];
        // Candidate content must be inside the union of the subset's
        // contents.
        Nfa image = candidate_xsd.content[q].ToNfa();
        StatusOr<bool> included =
            AntichainIncluded(image, subset_content[subset_id], budget);
        if (!included.ok()) {
          shared.Update(included.status());
          return;
        }
        if (!*included) {
          failed.store(true, std::memory_order_relaxed);
        }
      });
  // A definite non-inclusion verdict stands even if another worker
  // exhausted the budget.
  if (failed.load()) return false;
  STAP_RETURN_IF_ERROR(shared.ToStatus());
  return true;
}

bool IsMinimalUpperApproximation(const Edtd& candidate, const Edtd& target,
                                 ThreadPool* pool) {
  StatusOr<bool> result =
      IsMinimalUpperApproximation(candidate, target, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

}  // namespace stap
