#include "stap/approx/decompose.h"

#include <algorithm>

#include "stap/base/check.h"

namespace stap {

namespace {

bool IsPrefix(const TreePath& prefix, const TreePath& path) {
  if (prefix.size() > path.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), path.begin());
}

int HolesBelow(const std::vector<TreePath>& holes, const TreePath& path) {
  int count = 0;
  for (const TreePath& hole : holes) {
    if (IsPrefix(path, hole)) ++count;
  }
  return count;
}

bool IsHole(const std::vector<TreePath>& holes, const TreePath& path) {
  for (const TreePath& hole : holes) {
    if (hole == path) return true;
  }
  return false;
}

// Builds the context piece spanning entry..v: the subtree at `entry` with
// everything below `v` removed and the hole placed at `v` (paths relative
// to entry).
TreeContext ContextPiece(const Tree& root, const TreePath& entry,
                         const TreePath& v) {
  STAP_CHECK(IsPrefix(entry, v));
  TreePath relative(v.begin() + entry.size(), v.end());
  return TreeContext::Extract(root.At(entry), relative);
}

std::unique_ptr<DecompositionNode> DecomposeFrom(
    const Tree& root, const std::vector<TreePath>& holes,
    const TreePath& entry) {
  STAP_CHECK(HolesBelow(holes, entry) >= 1);
  // Walk down while exactly one side still contains holes.
  TreePath v = entry;
  while (true) {
    if (IsHole(holes, v)) {
      auto node = std::make_unique<DecompositionNode>();
      node->context = ContextPiece(root, entry, v);
      return node;  // terminal context: its hole is an original hole
    }
    const Tree& here = root.At(v);
    STAP_CHECK(here.children.size() == 2);  // binary, holes are leaves
    TreePath left = v, right = v;
    left.push_back(0);
    right.push_back(1);
    int holes_left = HolesBelow(holes, left);
    int holes_right = HolesBelow(holes, right);
    STAP_CHECK(holes_left + holes_right >= 1);
    if (holes_left > 0 && holes_right > 0) {
      // Branch node: context down to v, then a fork, then two pieces.
      auto fork_node = std::make_unique<DecompositionNode>();
      fork_node->fork = Fork{here.label, here.children[0].label,
                             here.children[1].label};
      fork_node->children.push_back(DecomposeFrom(root, holes, left));
      fork_node->children.push_back(DecomposeFrom(root, holes, right));

      auto context_node = std::make_unique<DecompositionNode>();
      context_node->context = ContextPiece(root, entry, v);
      context_node->children.push_back(std::move(fork_node));
      return context_node;
    }
    v = holes_left > 0 ? left : right;
  }
}

}  // namespace

GeneralizedContext GeneralizedContext::Make(Tree tree,
                                            std::vector<TreePath> holes) {
  STAP_CHECK(!holes.empty());
  for (const TreePath& hole : holes) {
    STAP_CHECK(tree.IsValidPath(hole));
    STAP_CHECK(tree.At(hole).IsLeaf());
  }
  std::sort(holes.begin(), holes.end());
  return GeneralizedContext{std::move(tree), std::move(holes)};
}

int DecompositionNode::NumContexts() const {
  int count = context.has_value() ? 1 : 0;
  for (const auto& child : children) count += child->NumContexts();
  return count;
}

int DecompositionNode::NumForks() const {
  int count = fork.has_value() ? 1 : 0;
  for (const auto& child : children) count += child->NumForks();
  return count;
}

DecompositionNode Decompose(const GeneralizedContext& input) {
  std::unique_ptr<DecompositionNode> root =
      DecomposeFrom(input.tree, input.holes, TreePath{});
  return std::move(*root);
}

GeneralizedContext Reassemble(const DecompositionNode& node) {
  if (node.fork.has_value()) {
    STAP_CHECK(node.children.size() == 2);
    GeneralizedContext left = Reassemble(*node.children[0]);
    GeneralizedContext right = Reassemble(*node.children[1]);
    STAP_CHECK(left.tree.label == node.fork->left_label);
    STAP_CHECK(right.tree.label == node.fork->right_label);
    GeneralizedContext result;
    result.tree = Tree(node.fork->root_label, {left.tree, right.tree});
    for (const TreePath& hole : left.holes) {
      TreePath path = {0};
      path.insert(path.end(), hole.begin(), hole.end());
      result.holes.push_back(std::move(path));
    }
    for (const TreePath& hole : right.holes) {
      TreePath path = {1};
      path.insert(path.end(), hole.begin(), hole.end());
      result.holes.push_back(std::move(path));
    }
    std::sort(result.holes.begin(), result.holes.end());
    return result;
  }
  STAP_CHECK(node.context.has_value());
  if (node.children.empty()) {
    // Terminal context: its hole is an original hole.
    return GeneralizedContext{node.context->tree, {node.context->hole}};
  }
  STAP_CHECK(node.children.size() == 1);
  GeneralizedContext inner = Reassemble(*node.children[0]);
  STAP_CHECK(inner.tree.label == node.context->hole_label());
  GeneralizedContext result;
  result.tree = node.context->tree.ReplaceSubtree(node.context->hole,
                                                  inner.tree);
  for (const TreePath& hole : inner.holes) {
    TreePath path = node.context->hole;
    path.insert(path.end(), hole.begin(), hole.end());
    result.holes.push_back(std::move(path));
  }
  std::sort(result.holes.begin(), result.holes.end());
  return result;
}

}  // namespace stap
