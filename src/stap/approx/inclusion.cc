#include "stap/approx/inclusion.h"

#include <atomic>
#include <unordered_set>
#include <utility>
#include <vector>

#include "stap/approx/upper_boolean.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/ops.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

StatusOr<bool> EdtdIncludedInXsd(const Edtd& d1_in, const DfaXsd& xsd2,
                                 ThreadPool* pool, Budget* budget) {
  static Counter* const calls = GetCounter("approx.inclusion_calls");
  static Counter* const pairs = GetCounter("approx.inclusion_pairs");
  static Histogram* const latency = GetHistogram("approx.inclusion_ms");
  calls->Increment();
  ScopedTimer timer(latency);
  ScopedSpan span("approx.inclusion");
  // Align alphabets by rebuilding d1 over xsd2's alphabet extended with
  // d1's extra symbols; symbols unknown to xsd2 make inclusion fail as
  // soon as they are reachable.
  Edtd d1 = ReduceEdtd(d1_in);
  if (d1.num_types() == 0) return true;  // empty language

  Alphabet merged = xsd2.sigma;
  std::vector<int> remap(d1.sigma.size());
  for (int a = 0; a < d1.sigma.size(); ++a) {
    remap[a] = merged.Intern(d1.sigma.Name(a));
  }
  const int num_symbols = merged.size();
  const bool extra_symbols = num_symbols > xsd2.sigma.size();
  for (int tau = 0; tau < d1.num_types(); ++tau) d1.mu[tau] = remap[d1.mu[tau]];
  d1.sigma = merged;

  TypeAutomaton a1 = BuildTypeAutomaton(d1);

  // Root check: every D1 start label must be an allowed XSD start symbol.
  const int xsd2_init = xsd2.automaton.initial();
  for (int tau : d1.start_types) {
    if (d1.mu[tau] >= xsd2.sigma.size() ||
        !StateSetContains(xsd2.start_symbols, d1.mu[tau]) ||
        xsd2.automaton.Next(xsd2_init, d1.mu[tau]) == kNoState) {
      return false;
    }
  }

  // Phase 1: BFS over reachable (type-automaton state, XSD state) pairs —
  // a cheap graph walk; the content-model checks are deferred so they can
  // run as one parallel sweep below. Expansion is independent of the
  // content verdicts (a failing pair is still expanded in the serial
  // version), so collecting first is verdict-equivalent.
  ScopedSpan bfs_span("inclusion.pair_bfs");
  std::unordered_set<uint64_t, U64Hash> seen;
  std::vector<std::pair<int, int>> worklist;
  Status charge_status;
  auto visit = [&](int s1, int q2) {
    if (seen.insert(PackPair(s1, q2)).second) {
      worklist.emplace_back(s1, q2);
      pairs->Increment();
      if (charge_status.ok()) charge_status = Budget::ChargeStates(budget);
    }
  };
  visit(TypeAutomaton::kInit, xsd2_init);
  for (size_t processed = 0;
       processed < worklist.size() && charge_status.ok(); ++processed) {
    auto [s1, q2] = worklist[processed];
    // Expand along both automata; when the XSD side has no transition the
    // content check below fails for this pair (reduced d1 guarantees the
    // symbol occurs), so pruning is sound.
    for (int a = 0; a < num_symbols; ++a) {
      const StateSet& succ1 = a1.nfa.Next(s1, a);
      if (succ1.empty()) continue;
      int q2_next =
          a < xsd2.sigma.size() ? xsd2.automaton.Next(q2, a) : kNoState;
      if (q2_next == kNoState) continue;
      for (int s1_next : succ1) visit(s1_next, q2_next);
    }
  }

  bfs_span.AddArg("pairs", worklist.size());
  bfs_span.End();
  STAP_RETURN_IF_ERROR(charge_status);

  // Phase 2: content inclusion μ1(d1(τ)) ⊆ f2(q) at every reachable pair,
  // swept in parallel with a cooperative early-out on the first failure
  // or the first exhausted budget.
  ScopedSpan sweep_span("inclusion.content_sweep");
  sweep_span.AddArg("pairs", worklist.size());
  std::atomic<bool> failed{false};
  SharedStatus shared;
  ThreadPool::ParallelFor(
      pool, static_cast<int>(worklist.size()), [&](int i) {
        if (failed.load(std::memory_order_relaxed) || !shared.ok()) return;
        auto [s1, q2] = worklist[i];
        if (s1 == TypeAutomaton::kInit) return;
        int tau = TypeAutomaton::TypeOfState(s1);
        // Content inclusion. With extra symbols the image ranges over the
        // merged alphabet while f2 ranges over xsd2's; expand f2 (the
        // extra symbols then reject, which is the desired semantics).
        Nfa image = HomomorphicImage(d1.content[tau], d1.mu, num_symbols);
        Dfa f2 = xsd2.content[q2];
        if (extra_symbols) {
          Dfa expanded(std::max(f2.num_states(), 1), num_symbols);
          if (f2.num_states() > 0) {
            expanded.SetInitial(f2.initial());
            for (int s = 0; s < f2.num_states(); ++s) {
              if (f2.IsFinal(s)) expanded.SetFinal(s);
              for (int a = 0; a < f2.num_symbols(); ++a) {
                int r = f2.Next(s, a);
                if (r != kNoState) expanded.SetTransition(s, a, r);
              }
            }
          }
          f2 = std::move(expanded);
        }
        StatusOr<bool> included = NfaIncludedInDfa(image, f2, budget);
        if (!included.ok()) {
          shared.Update(included.status());
          return;
        }
        if (!*included) {
          failed.store(true, std::memory_order_relaxed);
        }
      });
  // A definite counterexample beats an exhausted budget: the verdict is
  // sound regardless of whatever the other workers left unfinished.
  if (failed.load()) return false;
  STAP_RETURN_IF_ERROR(shared.ToStatus());
  return true;
}

bool EdtdIncludedInXsd(const Edtd& d1, const DfaXsd& xsd2, ThreadPool* pool) {
  StatusOr<bool> result = EdtdIncludedInXsd(d1, xsd2, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<bool> IncludedInSingleType(const Edtd& d1, const Edtd& d2_in,
                                    ThreadPool* pool, Budget* budget) {
  auto [d1_aligned, d2_aligned] = AlignAlphabets(d1, d2_in);
  Edtd d2 = ReduceEdtd(d2_aligned);
  STAP_CHECK(IsSingleType(d2));
  if (d2.num_types() == 0) return ReduceEdtd(d1_aligned).num_types() == 0;
  return EdtdIncludedInXsd(d1_aligned, DfaXsdFromStEdtd(d2), pool, budget);
}

bool IncludedInSingleType(const Edtd& d1, const Edtd& d2, ThreadPool* pool) {
  StatusOr<bool> result = IncludedInSingleType(d1, d2, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<bool> SingleTypeEquivalent(const Edtd& d1, const Edtd& d2,
                                    ThreadPool* pool, Budget* budget) {
  StatusOr<bool> forward = IncludedInSingleType(d1, d2, pool, budget);
  if (!forward.ok() || !*forward) return forward;
  return IncludedInSingleType(d2, d1, pool, budget);
}

bool SingleTypeEquivalent(const Edtd& d1, const Edtd& d2, ThreadPool* pool) {
  StatusOr<bool> result = SingleTypeEquivalent(d1, d2, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

}  // namespace stap
