#include "stap/approx/upper_boolean.h"

#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "stap/approx/upper.h"
#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

namespace {

// Re-interprets `dfa` over a larger alphabet; symbol ids keep their
// meaning, the new symbols simply never occur.
Dfa ExpandAlphabet(const Dfa& dfa, int new_num_symbols) {
  STAP_CHECK(new_num_symbols >= dfa.num_symbols());
  Dfa result(std::max(dfa.num_states(), 1), new_num_symbols);
  if (dfa.num_states() == 0) return result;
  result.SetInitial(dfa.initial());
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.IsFinal(q)) result.SetFinal(q);
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState) result.SetTransition(q, a, r);
    }
  }
  return result;
}

// Remaps symbol ids of an Edtd's μ according to `sigma_map` into the
// merged alphabet.
Edtd RelabelSigma(const Edtd& edtd, const Alphabet& merged,
                  const std::vector<int>& sigma_map) {
  Edtd result = edtd;
  result.sigma = merged;
  for (int tau = 0; tau < result.num_types(); ++tau) {
    result.mu[tau] = sigma_map[edtd.mu[tau]];
  }
  return result;
}

}  // namespace

std::pair<Edtd, Edtd> AlignAlphabets(const Edtd& a, const Edtd& b) {
  Alphabet merged = a.sigma;
  std::vector<int> map_a(a.sigma.size());
  for (int i = 0; i < a.sigma.size(); ++i) map_a[i] = i;
  std::vector<int> map_b(b.sigma.size());
  for (int i = 0; i < b.sigma.size(); ++i) {
    map_b[i] = merged.Intern(b.sigma.Name(i));
  }
  return {RelabelSigma(a, merged, map_a), RelabelSigma(b, merged, map_b)};
}

Edtd EdtdUnion(const Edtd& a_in, const Edtd& b_in) {
  ScopedSpan span("boolean.edtd_union");
  auto [a, b] = AlignAlphabets(a_in, b_in);
  const int na = a.num_types();
  const int nb = b.num_types();
  const int n = na + nb;
  span.AddArg("types", n);

  Edtd result;
  result.sigma = a.sigma;
  for (int tau = 0; tau < na; ++tau) {
    result.types.Intern("u1." + a.types.Name(tau));
    result.mu.push_back(a.mu[tau]);
  }
  for (int tau = 0; tau < nb; ++tau) {
    result.types.Intern("u2." + b.types.Name(tau));
    result.mu.push_back(b.mu[tau]);
  }
  STAP_CHECK(result.types.size() == n);

  // Content models keep their transitions; a's type ids are unchanged,
  // b's are shifted by na.
  std::vector<int> shift(nb);
  for (int tau = 0; tau < nb; ++tau) shift[tau] = na + tau;
  for (int tau = 0; tau < na; ++tau) {
    result.content.push_back(ExpandAlphabet(a.content[tau], n));
  }
  for (int tau = 0; tau < nb; ++tau) {
    const Dfa& dfa = b.content[tau];
    Dfa expanded(std::max(dfa.num_states(), 1), n);
    if (dfa.num_states() > 0) {
      expanded.SetInitial(dfa.initial());
      for (int q = 0; q < dfa.num_states(); ++q) {
        if (dfa.IsFinal(q)) expanded.SetFinal(q);
        for (int t = 0; t < nb; ++t) {
          int r = dfa.Next(q, t);
          if (r != kNoState) expanded.SetTransition(q, shift[t], r);
        }
      }
    }
    result.content.push_back(std::move(expanded));
  }

  for (int tau : a.start_types) StateSetInsert(result.start_types, tau);
  for (int tau : b.start_types) StateSetInsert(result.start_types, na + tau);
  result.CheckWellFormed();
  return result;
}

StatusOr<Edtd> EdtdIntersection(const Edtd& a_in, const Edtd& b_in,
                                ThreadPool* pool, Budget* budget) {
  ScopedSpan span("boolean.intersection");
  auto [a, b] = AlignAlphabets(a_in, b_in);
  const int na = a.num_types();
  const int nb = b.num_types();

  // Pair types (τa, τb) with matching labels.
  std::vector<int> pair_id(static_cast<size_t>(na) * nb, -1);
  std::vector<std::pair<int, int>> live_pairs;  // pair of type id k
  Edtd result;
  result.sigma = a.sigma;
  for (int ta = 0; ta < na; ++ta) {
    for (int tb = 0; tb < nb; ++tb) {
      if (a.mu[ta] != b.mu[tb]) continue;
      pair_id[ta * nb + tb] = result.types.Intern(
          a.types.Name(ta) + "&" + b.types.Name(tb));
      result.mu.push_back(a.mu[ta]);
      live_pairs.emplace_back(ta, tb);
    }
  }
  const int n = static_cast<int>(result.mu.size());
  span.AddArg("pairs", n);

  // Content of (τa, τb): words over the pair alphabet whose projections
  // satisfy both sides — the product of the lifted content DFAs. Each pair
  // writes its own slot, so the products run as one parallel sweep.
  std::vector<int> project_a(n), project_b(n);
  for (int id = 0; id < n; ++id) {
    project_a[id] = live_pairs[id].first;
    project_b[id] = live_pairs[id].second;
  }
  result.content.resize(n, Dfa());
  SharedStatus shared;
  ThreadPool::ParallelFor(pool, n, [&](int id) {
    if (!shared.ok()) return;  // another worker already exhausted
    auto [ta, tb] = live_pairs[id];
    Dfa lifted_a = InverseHomomorphism(a.content[ta], project_a, n);
    Dfa lifted_b = InverseHomomorphism(b.content[tb], project_b, n);
    StatusOr<Dfa> product =
        DfaProduct(lifted_a, lifted_b, BoolOp::kAnd, budget);
    if (!product.ok()) {
      shared.Update(product.status());
      return;
    }
    StatusOr<Dfa> minimized = Minimize(*product, budget);
    if (!minimized.ok()) {
      shared.Update(minimized.status());
      return;
    }
    result.content[id] = *std::move(minimized);
  });
  STAP_RETURN_IF_ERROR(shared.ToStatus());
  for (int ta : a.start_types) {
    for (int tb : b.start_types) {
      int id = pair_id[ta * nb + tb];
      if (id >= 0) StateSetInsert(result.start_types, id);
    }
  }
  result.CheckWellFormed();
  return ReduceEdtd(result);
}

Edtd EdtdIntersection(const Edtd& a, const Edtd& b, ThreadPool* pool) {
  StatusOr<Edtd> result = EdtdIntersection(a, b, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<Edtd> ComplementEdtd(const DfaXsd& xsd, ThreadPool* pool,
                              Budget* budget) {
  ScopedSpan span("boolean.complement");
  xsd.CheckWellFormed();
  const int num_symbols = xsd.sigma.size();
  const int num_states = xsd.automaton.num_states();
  const int num_path = num_states - 1;          // path type of state q: q-1
  const int n = num_path + num_symbols;         // any-type of symbol a:
  span.AddArg("path_types", num_path);
  span.AddArg("types", n);
  auto any_type = [&](int a) { return num_path + a; };

  Edtd result;
  result.sigma = xsd.sigma;
  for (int q = 1; q < num_states; ++q) {
    result.types.Intern("p" + std::to_string(q) + "." +
                        xsd.sigma.Name(xsd.state_label[q]));
    result.mu.push_back(xsd.state_label[q]);
  }
  for (int a = 0; a < num_symbols; ++a) {
    result.types.Intern("any." + xsd.sigma.Name(a));
    result.mu.push_back(a);
  }
  STAP_CHECK(result.types.size() == n);

  // Start types: guess an error below a valid root, or reject the root
  // label outright.
  for (int a = 0; a < num_symbols; ++a) {
    int q = xsd.automaton.Next(xsd.automaton.initial(), a);
    if (StateSetContains(xsd.start_symbols, a) && q != kNoState) {
      StateSetInsert(result.start_types, q - 1);
    } else {
      StateSetInsert(result.start_types, any_type(a));
    }
  }

  // Map Δc -> Σ that forbids path types (used to build rule L1 below).
  std::vector<int> any_only(n, kNoSymbol);
  for (int a = 0; a < num_symbols; ++a) any_only[any_type(a)] = a;

  result.content.resize(n, Dfa());
  // One independent content build per path type (disjoint slots), swept in
  // parallel when a pool is supplied.
  SharedStatus shared;
  ThreadPool::ParallelFor(pool, num_path, [&](int i) {
    if (!shared.ok()) return;
    const int q = i + 1;
    // L1: child strings whose Σ-projection violates f(q); all children get
    // "anything" types.
    Dfa l1 = InverseHomomorphism(DfaComplement(xsd.content[q]), any_only, n);
    // L2: any-typed siblings around exactly one path-typed child that
    // continues the guessed route.
    Nfa l2(2, n);
    l2.AddInitial(0);
    l2.SetFinal(1);
    for (int a = 0; a < num_symbols; ++a) {
      l2.AddTransition(0, any_type(a), 0);
      l2.AddTransition(1, any_type(a), 1);
      int next = xsd.automaton.Next(q, a);
      if (next != kNoState) l2.AddTransition(0, next - 1, 1);
    }
    StatusOr<Dfa> content = MinimizeNfa(NfaUnion(l1.ToNfa(), l2), budget);
    if (!content.ok()) {
      shared.Update(content.status());
      return;
    }
    result.content[q - 1] = *std::move(content);
  });
  STAP_RETURN_IF_ERROR(shared.ToStatus());
  // Any-types accept any child string of any-types.
  Dfa all_any(1, n);
  all_any.SetFinal(0);
  for (int a = 0; a < num_symbols; ++a) {
    all_any.SetTransition(0, any_type(a), 0);
  }
  for (int a = 0; a < num_symbols; ++a) result.content[any_type(a)] = all_any;

  result.CheckWellFormed();
  return result;
}

Edtd ComplementEdtd(const DfaXsd& xsd, ThreadPool* pool) {
  StatusOr<Edtd> result = ComplementEdtd(xsd, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<Edtd> DifferenceEdtd(const Edtd& d1, const DfaXsd& xsd2,
                              ThreadPool* pool, Budget* budget) {
  ScopedSpan span("boolean.difference");
  STAP_CHECK(d1.sigma == xsd2.sigma);
  d1.CheckWellFormed();
  xsd2.CheckWellFormed();
  const int n1 = d1.num_types();
  const int m2 = xsd2.automaton.num_states();

  // Pair types (τ1, q2) for label-compatible combinations.
  std::unordered_map<std::pair<int, int>, int, IntPairHash> pair_id;
  std::vector<std::pair<int, int>> pairs;
  for (int tau = 0; tau < n1; ++tau) {
    for (int q = 1; q < m2; ++q) {
      if (d1.mu[tau] == xsd2.state_label[q]) {
        pair_id[{tau, q}] = n1 + static_cast<int>(pairs.size());
        pairs.emplace_back(tau, q);
      }
    }
  }
  const int n = n1 + static_cast<int>(pairs.size());
  span.AddArg("pairs", pairs.size());
  span.AddArg("types", n);

  Edtd result;
  result.sigma = d1.sigma;
  for (int tau = 0; tau < n1; ++tau) {
    result.types.Intern("d1." + d1.types.Name(tau));
    result.mu.push_back(d1.mu[tau]);
  }
  for (const auto& [tau, q] : pairs) {
    result.types.Intern("pair." + d1.types.Name(tau) + "@" +
                        std::to_string(q));
    result.mu.push_back(d1.mu[tau]);
  }
  STAP_CHECK(result.types.size() == n);

  // Start types (paper rule (3)): pairs for roots D2 might accept, plain
  // D1 types for roots D2 rejects outright.
  for (int tau : d1.start_types) {
    int a = d1.mu[tau];
    int q = xsd2.automaton.Next(xsd2.automaton.initial(), a);
    if (StateSetContains(xsd2.start_symbols, a) && q != kNoState) {
      StateSetInsert(result.start_types, pair_id.at({tau, q}));
    } else {
      StateSetInsert(result.start_types, tau);
    }
  }

  result.content.resize(n, Dfa());
  // Rule (5): plain types validate against D1 only.
  for (int tau = 0; tau < n1; ++tau) {
    result.content[tau] = ExpandAlphabet(d1.content[tau], n);
  }

  // Rule (4): pair types either find the violation in this child string or
  // hand the guess to exactly one child. Each pair writes its own content
  // slot; the builds run as one parallel sweep.
  SharedStatus shared;
  ThreadPool::ParallelFor(pool, static_cast<int>(pairs.size()), [&](int p) {
    if (!shared.ok()) return;
    auto [tau, q] = pairs[p];
    const Dfa& c1 = d1.content[tau];
    const Dfa f2 = xsd2.content[q].Completed();

    // L1 = { w ∈ d1(τ) : μ1(w) ∉ f2(q) }, all children typed by D1 only.
    StatusOr<Dfa> violating = DfaProduct(
        c1, InverseHomomorphism(DfaComplement(xsd2.content[q]), d1.mu, n1),
        BoolOp::kAnd, budget);
    if (!violating.ok()) {
      shared.Update(violating.status());
      return;
    }
    Dfa l1 = ExpandAlphabet(*violating, n);

    // L2: product of c1 and f2 with a one-shot switch onto a pair type.
    // States (s1, s2, mode) flattened.
    if (c1.num_states() > 0) {
      const int s1n = c1.num_states();
      const int s2n = f2.num_states();
      auto state_id = [&](int s1, int s2, int mode) {
        return (mode * s2n + s2) * s1n + s1;
      };
      Nfa l2(s1n * s2n * 2, n);
      l2.AddInitial(state_id(c1.initial(), f2.initial(), 0));
      for (int s1 = 0; s1 < s1n; ++s1) {
        for (int s2 = 0; s2 < s2n; ++s2) {
          if (c1.IsFinal(s1) && f2.IsFinal(s2)) {
            l2.SetFinal(state_id(s1, s2, 1));
          }
          for (int t = 0; t < n1; ++t) {
            int r1 = c1.Next(s1, t);
            if (r1 == kNoState) continue;
            int r2 = f2.Next(s2, d1.mu[t]);
            // Keep D1 typing on both modes.
            l2.AddTransition(state_id(s1, s2, 0), t, state_id(r1, r2, 0));
            l2.AddTransition(state_id(s1, s2, 1), t, state_id(r1, r2, 1));
            // Or switch: child continues the guessed route in D2.
            int q2_next = xsd2.automaton.Next(q, d1.mu[t]);
            if (q2_next != kNoState) {
              auto it = pair_id.find({t, q2_next});
              if (it != pair_id.end()) {
                l2.AddTransition(state_id(s1, s2, 0), it->second,
                                 state_id(r1, r2, 1));
              }
            }
          }
        }
      }
      StatusOr<Dfa> content = MinimizeNfa(NfaUnion(l1.ToNfa(), l2), budget);
      if (!content.ok()) {
        shared.Update(content.status());
        return;
      }
      result.content[n1 + p] = *std::move(content);
    } else {
      StatusOr<Dfa> content = Minimize(l1, budget);
      if (!content.ok()) {
        shared.Update(content.status());
        return;
      }
      result.content[n1 + p] = *std::move(content);
    }
  });
  STAP_RETURN_IF_ERROR(shared.ToStatus());

  result.CheckWellFormed();
  return result;
}

Edtd DifferenceEdtd(const Edtd& d1, const DfaXsd& xsd2, ThreadPool* pool) {
  StatusOr<Edtd> result = DifferenceEdtd(d1, xsd2, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<DfaXsd> UpperUnion(const Edtd& d1, const Edtd& d2, Budget* budget,
                            const UpperOptions& options) {
  ScopedSpan span("approx.upper_union");
  STAP_CHECK(IsSingleType(d1));
  STAP_CHECK(IsSingleType(d2));
  return MinimalUpperApproximation(EdtdUnion(d1, d2), budget, options);
}

DfaXsd UpperUnion(const Edtd& d1, const Edtd& d2) {
  StatusOr<DfaXsd> result = UpperUnion(d1, d2, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<DfaXsd> UpperIntersection(const Edtd& d1_in, const Edtd& d2_in,
                                   ThreadPool* pool, Budget* budget) {
  ScopedSpan span("approx.upper_intersection");
  auto [d1, d2] = AlignAlphabets(d1_in, d2_in);
  STAP_CHECK(IsSingleType(d1));
  STAP_CHECK(IsSingleType(d2));
  DfaXsd x1 = DfaXsdFromStEdtd(ReduceEdtd(d1));
  DfaXsd x2 = DfaXsdFromStEdtd(ReduceEdtd(d2));
  const int num_symbols = x1.sigma.size();

  // Product of the two XSD automata over reachable pairs; content models
  // are intersected.
  ScopedSpan walk_span("intersection.product_walk");
  std::unordered_map<std::pair<int, int>, int, IntPairHash> ids;
  std::vector<std::pair<int, int>> worklist;
  DfaXsd product;
  product.sigma = x1.sigma;
  product.automaton = Dfa(0, num_symbols);
  Status charge_status;
  auto intern = [&](int q1, int q2) -> int {
    auto [it, inserted] =
        ids.emplace(std::make_pair(q1, q2), product.automaton.num_states());
    if (inserted) {
      product.automaton.AddState();
      worklist.emplace_back(q1, q2);
      if (charge_status.ok()) charge_status = Budget::ChargeStates(budget);
    }
    return it->second;
  };
  intern(0, 0);
  product.automaton.SetInitial(0);
  size_t processed = 0;
  while (processed < worklist.size() && charge_status.ok()) {
    auto [q1, q2] = worklist[processed];
    int id = ids.at({q1, q2});
    ++processed;
    for (int a = 0; a < num_symbols; ++a) {
      int r1 = x1.automaton.Next(q1, a);
      int r2 = x2.automaton.Next(q2, a);
      if (r1 == kNoState || r2 == kNoState) continue;
      product.automaton.SetTransition(id, a, intern(r1, r2));
    }
  }
  walk_span.AddArg("pairs", worklist.size());
  walk_span.End();
  STAP_RETURN_IF_ERROR(charge_status);
  const int total = product.automaton.num_states();
  product.state_label.assign(total, kNoSymbol);
  product.content.assign(total, Dfa::EmptyLanguage(num_symbols));
  // worklist[id] is the pair interned as state id, so the per-state content
  // intersections index it directly and run as one parallel sweep.
  ScopedSpan sweep_span("intersection.content_sweep");
  sweep_span.AddArg("states", total);
  SharedStatus shared;
  ThreadPool::ParallelFor(pool, total, [&](int id) {
    if (id == 0 || !shared.ok()) return;
    auto [q1, q2] = worklist[id];
    product.state_label[id] = x1.state_label[q1];
    StatusOr<Dfa> content =
        DfaProduct(x1.content[q1], x2.content[q2], BoolOp::kAnd, budget);
    if (content.ok()) content = Minimize(*content, budget);
    if (!content.ok()) {
      shared.Update(content.status());
      return;
    }
    product.content[id] = *std::move(content);
  });
  sweep_span.End();
  STAP_RETURN_IF_ERROR(shared.ToStatus());
  for (int a : x1.start_symbols) {
    if (StateSetContains(x2.start_symbols, a)) {
      StateSetInsert(product.start_symbols, a);
    }
  }
  // Prune unproductive states through the EDTD reduction round trip.
  return MinimizeXsd(product, budget);
}

DfaXsd UpperIntersection(const Edtd& d1, const Edtd& d2, ThreadPool* pool) {
  StatusOr<DfaXsd> result = UpperIntersection(d1, d2, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<DfaXsd> UpperComplement(const Edtd& d, ThreadPool* pool,
                                 Budget* budget, const UpperOptions& options) {
  ScopedSpan span("approx.upper_complement");
  Edtd reduced = ReduceEdtd(d);
  STAP_CHECK(IsSingleType(reduced));
  StatusOr<Edtd> complement =
      ComplementEdtd(DfaXsdFromStEdtd(reduced), pool, budget);
  if (!complement.ok()) return complement.status();
  return MinimalUpperApproximation(*complement, budget, options);
}

DfaXsd UpperComplement(const Edtd& d, ThreadPool* pool) {
  StatusOr<DfaXsd> result = UpperComplement(d, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<DfaXsd> UpperDifference(const Edtd& d1_in, const Edtd& d2_in,
                                 ThreadPool* pool, Budget* budget,
                                 const UpperOptions& options) {
  ScopedSpan span("approx.upper_difference");
  auto [d1, d2] = AlignAlphabets(d1_in, d2_in);
  Edtd r1 = ReduceEdtd(d1);
  Edtd r2 = ReduceEdtd(d2);
  STAP_CHECK(IsSingleType(r1));
  STAP_CHECK(IsSingleType(r2));
  StatusOr<Edtd> difference =
      DifferenceEdtd(r1, DfaXsdFromStEdtd(r2), pool, budget);
  if (!difference.ok()) return difference.status();
  return MinimalUpperApproximation(*difference, budget, options);
}

DfaXsd UpperDifference(const Edtd& d1, const Edtd& d2, ThreadPool* pool) {
  StatusOr<DfaXsd> result = UpperDifference(d1, d2, pool, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

}  // namespace stap
