#include "stap/approx/witness.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "stap/automata/inclusion.h"
#include "stap/automata/ops.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

namespace {

// DFA for { w : w contains `symbol` }.
Dfa ContainsSymbol(int symbol, int num_symbols) {
  Dfa dfa(2, num_symbols);
  dfa.SetFinal(1);
  for (int a = 0; a < num_symbols; ++a) {
    dfa.SetTransition(0, a, a == symbol ? 1 : 0);
    dfa.SetTransition(1, a, 1);
  }
  return dfa;
}

// Expands an XSD to a larger alphabet (new symbols are everywhere
// undeclared).
DfaXsd ExpandXsdAlphabet(const DfaXsd& xsd, const Alphabet& merged) {
  STAP_CHECK(merged.size() >= xsd.sigma.size());
  DfaXsd result = xsd;
  result.sigma = merged;
  Dfa automaton(xsd.automaton.num_states(), merged.size());
  automaton.SetInitial(0);
  for (int q = 0; q < xsd.automaton.num_states(); ++q) {
    for (int a = 0; a < xsd.sigma.size(); ++a) {
      int r = xsd.automaton.Next(q, a);
      if (r != kNoState) automaton.SetTransition(q, a, r);
    }
  }
  result.automaton = std::move(automaton);
  result.state_label.resize(xsd.automaton.num_states());
  for (size_t q = 0; q < result.content.size(); ++q) {
    const Dfa& content = xsd.content[q];
    Dfa expanded(std::max(content.num_states(), 1), merged.size());
    if (content.num_states() > 0) {
      expanded.SetInitial(content.initial());
      for (int s = 0; s < content.num_states(); ++s) {
        if (content.IsFinal(s)) expanded.SetFinal(s);
        for (int a = 0; a < content.num_symbols(); ++a) {
          int r = content.Next(s, a);
          if (r != kNoState) expanded.SetTransition(s, a, r);
        }
      }
    }
    result.content[q] = std::move(expanded);
  }
  return result;
}

// A word of d1.content[tau] containing `needle`, shortest first.
std::optional<Word> ContentWordContaining(const Edtd& d1, int tau,
                                          int needle) {
  Dfa filtered = DfaIntersection(d1.content[tau],
                                 ContainsSymbol(needle, d1.num_types()));
  Word word;
  if (!filtered.ShortestWord(&word)) return std::nullopt;
  return word;
}

}  // namespace

std::vector<Tree> MinimalTypeTrees(const Edtd& edtd) {
  STAP_CHECK(IsReduced(edtd));
  const int n = edtd.num_types();
  std::vector<std::optional<Tree>> witness(n);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int tau = 0; tau < n; ++tau) {
      if (witness[tau].has_value()) continue;
      // Restrict the content model to types that already have a witness.
      const Dfa& content = edtd.content[tau];
      if (content.num_states() == 0) continue;
      Dfa restricted(content.num_states(), n);
      restricted.SetInitial(content.initial());
      for (int s = 0; s < content.num_states(); ++s) {
        if (content.IsFinal(s)) restricted.SetFinal(s);
        for (int t = 0; t < n; ++t) {
          if (!witness[t].has_value()) continue;
          int r = content.Next(s, t);
          if (r != kNoState) restricted.SetTransition(s, t, r);
        }
      }
      Word word;
      if (!restricted.ShortestWord(&word)) continue;
      Tree tree(edtd.mu[tau]);
      for (int t : word) tree.children.push_back(*witness[t]);
      witness[tau] = std::move(tree);
      changed = true;
    }
  }
  std::vector<Tree> result;
  result.reserve(n);
  for (int tau = 0; tau < n; ++tau) {
    STAP_CHECK(witness[tau].has_value());  // reduced => productive
    result.push_back(*std::move(witness[tau]));
  }
  return result;
}

std::optional<Tree> XsdInclusionWitness(const Edtd& d1_in,
                                        const DfaXsd& xsd2_in) {
  Edtd d1 = ReduceEdtd(d1_in);
  if (d1.num_types() == 0) return std::nullopt;  // ∅ ⊆ anything

  // Align the alphabets: d1 over the merged alphabet, xsd2 expanded.
  Alphabet merged = xsd2_in.sigma;
  std::vector<int> remap(d1.sigma.size());
  for (int a = 0; a < d1.sigma.size(); ++a) {
    remap[a] = merged.Intern(d1.sigma.Name(a));
  }
  for (int tau = 0; tau < d1.num_types(); ++tau) d1.mu[tau] = remap[d1.mu[tau]];
  d1.sigma = merged;
  DfaXsd xsd2 = ExpandXsdAlphabet(xsd2_in, merged);

  const int num_symbols = merged.size();
  TypeAutomaton a1 = BuildTypeAutomaton(d1);
  std::vector<Tree> minimal = MinimalTypeTrees(d1);

  // Root violations: a D1 start label the XSD does not allow.
  const int xsd2_init = xsd2.automaton.initial();
  for (int tau : d1.start_types) {
    if (!StateSetContains(xsd2.start_symbols, d1.mu[tau]) ||
        xsd2.automaton.Next(xsd2_init, d1.mu[tau]) == kNoState) {
      return minimal[tau];
    }
  }

  // Pair BFS with parent pointers.
  struct Node {
    int s1;      // type-automaton state of d1
    int q2;      // XSD state
    int parent;  // node index, -1 at the root pair
  };
  std::unordered_map<uint64_t, int, U64Hash> ids;
  std::vector<Node> nodes;
  auto visit = [&](int s1, int q2, int parent) {
    auto [it, inserted] =
        ids.emplace(PackPair(s1, q2), static_cast<int>(nodes.size()));
    if (inserted) nodes.push_back(Node{s1, q2, parent});
  };
  visit(TypeAutomaton::kInit, xsd2_init, -1);

  for (size_t current = 0; current < nodes.size(); ++current) {
    const int s1 = nodes[current].s1;
    const int q2 = nodes[current].q2;
    if (s1 != TypeAutomaton::kInit) {
      const int tau = TypeAutomaton::TypeOfState(s1);
      // Does d1's content at tau escape the XSD's content at q2?
      // Work over the type alphabet so the witness word carries types.
      Dfa lifted_f2 =
          InverseHomomorphism(xsd2.content[q2], d1.mu, d1.num_types());
      std::optional<Word> bad_children =
          DfaInclusionCounterexample(d1.content[tau], lifted_f2);
      if (bad_children.has_value()) {
        // Assemble the offending node...
        Tree offending(d1.mu[tau]);
        for (int child_type : *bad_children) {
          offending.children.push_back(minimal[child_type]);
        }
        // ...and wrap it in minimal valid levels up to the root. Walk the
        // parent chain; at each step the current subtree's type is known.
        int child_tau = tau;
        Tree subtree = std::move(offending);
        int node_index = nodes[current].parent;
        while (node_index >= 0 && nodes[node_index].s1 != TypeAutomaton::kInit) {
          int parent_tau = TypeAutomaton::TypeOfState(nodes[node_index].s1);
          std::optional<Word> level =
              ContentWordContaining(d1, parent_tau, child_tau);
          STAP_CHECK(level.has_value());  // the BFS followed a real edge
          Tree parent_tree(d1.mu[parent_tau]);
          bool placed = false;
          for (int t : *level) {
            if (!placed && t == child_tau) {
              parent_tree.children.push_back(subtree);
              placed = true;
            } else {
              parent_tree.children.push_back(minimal[t]);
            }
          }
          STAP_CHECK(placed);
          subtree = std::move(parent_tree);
          child_tau = parent_tau;
          node_index = nodes[node_index].parent;
        }
        return subtree;
      }
    }
    // Expand (same pruning rationale as the inclusion test: a dead XSD
    // transition implies the content check above fires first).
    for (int a = 0; a < num_symbols; ++a) {
      const StateSet& succ1 = a1.nfa.Next(s1, a);
      if (succ1.empty()) continue;
      int q2_next = xsd2.automaton.Next(q2, a);
      if (q2_next == kNoState) continue;
      for (int s1_next : succ1) {
        visit(s1_next, q2_next, static_cast<int>(current));
      }
    }
  }
  return std::nullopt;
}

}  // namespace stap
