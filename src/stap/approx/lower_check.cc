#include "stap/approx/lower_check.h"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/base/check.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"
#include "stap/treeauto/exact.h"

namespace stap {

Dfa NkAutomaton(int k, int num_symbols) {
  STAP_CHECK(k >= 0);
  STAP_CHECK(num_symbols >= 1);
  // States: one per string of length <= k (trie layout) plus an absorbing
  // overflow state. The trie has (s^(k+1) - 1) / (s - 1) nodes.
  int64_t nodes = 0;
  int64_t layer = 1;
  for (int depth = 0; depth <= k; ++depth) {
    nodes += layer;
    layer *= num_symbols;
  }
  STAP_CHECK(nodes + 1 < (int64_t{1} << 30));  // keep instances sane
  Dfa dfa(static_cast<int>(nodes) + 1, num_symbols);
  const int overflow = static_cast<int>(nodes);
  // Trie numbering: children of node v are v * s + 1 + a.
  for (int v = 0; v < nodes; ++v) {
    for (int a = 0; a < num_symbols; ++a) {
      int64_t child = static_cast<int64_t>(v) * num_symbols + 1 + a;
      dfa.SetTransition(v, a, child < nodes ? static_cast<int>(child)
                                            : overflow);
    }
  }
  for (int a = 0; a < num_symbols; ++a) {
    dfa.SetTransition(overflow, a, overflow);
  }
  return dfa;
}

LowerCheckResult CheckMaximalLowerFinite(const Edtd& candidate_in,
                                         const Edtd& target_in,
                                         const TreeBounds& bounds,
                                         const ClosureOptions& options,
                                         ThreadPool* pool) {
  ScopedSpan span("approx.lower_check");
  auto [candidate_aligned, target_aligned] =
      AlignAlphabets(candidate_in, target_in);
  Edtd candidate = ReduceEdtd(candidate_aligned);
  Edtd target = ReduceEdtd(target_aligned);
  STAP_CHECK(IsSingleType(candidate));

  LowerCheckResult result;
  result.is_lower = EdtdIncludedInExact(candidate, target);
  if (!result.is_lower) return result;

  // Bounded enumerations of both languages. The enumeration itself can be
  // the largest loop on wide bounds, so it samples the deadline too.
  ScopedSpan enum_span("lower_check.enumerate");
  std::vector<Tree> in_candidate;
  std::vector<Tree> extension_pool;
  for (const Tree& tree : EnumerateTrees(bounds)) {
    result.status = Budget::ChargeSets(options.budget);
    if (!result.status.ok()) {
      result.exhaustive = false;
      return result;
    }
    if (candidate.Accepts(tree)) {
      in_candidate.push_back(tree);
    } else if (target.Accepts(tree)) {
      extension_pool.push_back(tree);
    }
  }
  enum_span.AddArg("in_candidate", in_candidate.size());
  enum_span.AddArg("extension_pool", extension_pool.size());
  enum_span.End();

  ClosureOptions exchange_options = options;
  // Abort a closure as soon as it leaves the target language.
  exchange_options.stop_predicate = [&target](const Tree& member) {
    return !target.Accepts(member);
  };

  // The closure fixpoints per extension candidate are independent, so they
  // sweep in parallel. To keep the result bit-identical to the serial
  // early-exit loop (which returns the FIRST saturated extension and only
  // accumulates `exhaustive` over the prefix before it), each index records
  // its outcome and a monotonically decreasing `first_ext` lets workers
  // skip indexes past the earliest saturated one; the fold below then
  // replays the serial order. Skipping i > first_ext is safe because
  // first_ext only decreases, so a skipped index stays past it forever and
  // the fold never reads its outcome.
  enum : uint8_t { kUnknown = 0, kEscaped, kNotSaturated, kSaturated };
  const int n = static_cast<int>(extension_pool.size());
  ScopedSpan sweep_span("lower_check.extension_sweep");
  sweep_span.AddArg("extensions", n);
  std::vector<uint8_t> outcome(n, kUnknown);
  std::atomic<int> first_ext{n};
  SharedStatus shared;
  ThreadPool::ParallelFor(pool, n, [&](int i) {
    if (i > first_ext.load(std::memory_order_relaxed)) return;
    std::vector<Tree> seeds = in_candidate;
    seeds.push_back(extension_pool[i]);
    ClosureResult closure = CloseUnderExchange(seeds, exchange_options);
    shared.Update(closure.status);
    if (closure.stop_match.has_value()) {
      outcome[i] = kEscaped;
    } else if (closure.saturated) {
      outcome[i] = kSaturated;
      int cur = first_ext.load(std::memory_order_relaxed);
      while (i < cur &&
             !first_ext.compare_exchange_weak(cur, i,
                                              std::memory_order_relaxed)) {
      }
    } else {
      // Capped or budget-exhausted fixpoints both prove nothing about
      // this extension.
      outcome[i] = kNotSaturated;
    }
  });
  result.status = shared.ToStatus();
  if (!result.status.ok()) result.exhaustive = false;
  for (int i = 0; i < n; ++i) {
    if (outcome[i] == kNotSaturated) result.exhaustive = false;
    if (outcome[i] == kSaturated) {
      result.extension = extension_pool[i];
      return result;
    }
  }
  result.is_maximal = result.exhaustive;
  return result;
}

bool IsSingleTypeDefinable(const Edtd& edtd) {
  StatusOr<bool> result = IsSingleTypeDefinable(edtd, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<bool> IsSingleTypeDefinable(const Edtd& edtd, Budget* budget,
                                     const UpperOptions& options) {
  // A single-type schema defines itself; skip the EXPTIME inclusion
  // below, which blows up on large content models (e.g. expanded
  // counted bounds) even when the answer is trivially yes.
  Edtd reduced = ReduceEdtd(edtd);
  if (IsSingleType(reduced)) return true;
  StatusOr<DfaXsd> upper = MinimalUpperApproximation(reduced, budget, options);
  if (!upper.ok()) return upper.status();
  // L(edtd) ⊆ L(upper) always; definability is the converse inclusion.
  return EdtdIncludedInExact(StEdtdFromDfaXsd(*upper), reduced);
}

}  // namespace stap
