// Deciding whether a single-type EDTD is the minimal upper
// XSD-approximation of an EDTD (paper, Theorem 3.5 — PSPACE-complete).
//
// The check runs in two phases: the polynomial inclusion
// L(target) ⊆ L(candidate) (Lemma 3.3), then the on-the-fly product of the
// candidate's type automaton with the subset automaton of the target's —
// subsets are materialized lazily, so space stays proportional to the
// frontier rather than to the full exponential construction. The per-pair
// content checks test the candidate content against the *union NFA* of
// the subset's contents with the antichain engine — the union is never
// determinized. When a ThreadPool is supplied the content checks run as
// one parallel sweep.
#ifndef STAP_APPROX_MINIMAL_UPPER_CHECK_H_
#define STAP_APPROX_MINIMAL_UPPER_CHECK_H_

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"

namespace stap {

class ThreadPool;

// Is L(candidate) the minimal upper XSD-approximation of L(target)?
// `candidate` must be single-type (checked); `target` may be any EDTD.
bool IsMinimalUpperApproximation(const Edtd& candidate, const Edtd& target,
                                 ThreadPool* pool = nullptr);

// Budgeted variant: the lazy product pairs charge the set quota and the
// per-pair antichain inclusions charge through the same budget, bounding
// the PSPACE-hard phase. No defaults; a null budget is unlimited.
StatusOr<bool> IsMinimalUpperApproximation(const Edtd& candidate,
                                           const Edtd& target,
                                           ThreadPool* pool, Budget* budget);

}  // namespace stap

#endif  // STAP_APPROX_MINIMAL_UPPER_CHECK_H_
