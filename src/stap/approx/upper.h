// Minimal upper XSD-approximation of an EDTD (paper, Construction 3.1 and
// Theorem 3.2).
//
// Determinizes the type automaton by the subset construction and unions
// the content models of the merged types. The result is the unique
// minimal single-type language containing L(edtd); it can be exponentially
// larger (Theorem 3.2's family, gen/families.h).
#ifndef STAP_APPROX_UPPER_H_
#define STAP_APPROX_UPPER_H_

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

struct UpperOptions {
  // Canonicalize every merged content model (determinize + minimize).
  // Turning this off keeps determinized-but-unminimized content DFAs:
  // same language, larger representation — the ablation measured by
  // bench_upper_edtd.
  bool minimize_content = true;
};

// Returns the minimal upper XSD-approximation of L(edtd). The input is
// reduced internally (Proviso 2.3). States of the result correspond to the
// reachable non-empty subsets of ∆.
DfaXsd MinimalUpperApproximation(const Edtd& edtd,
                                 const UpperOptions& options = {});

// Budgeted variant: the type-automaton subset construction and every
// per-subset content determinization charge the budget's state quota, so
// the Theorem 3.2 exponential family aborts with kResourceExhausted
// instead of exhausting memory. A null budget is unlimited.
StatusOr<DfaXsd> MinimalUpperApproximation(const Edtd& edtd, Budget* budget,
                                           const UpperOptions& options = {});

}  // namespace stap

#endif  // STAP_APPROX_UPPER_H_
