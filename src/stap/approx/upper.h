// Minimal upper XSD-approximation of an EDTD (paper, Construction 3.1 and
// Theorem 3.2).
//
// Determinizes the type automaton by the subset construction and unions
// the content models of the merged types. The result is the unique
// minimal single-type language containing L(edtd); it can be exponentially
// larger (Theorem 3.2's family, gen/families.h).
#ifndef STAP_APPROX_UPPER_H_
#define STAP_APPROX_UPPER_H_

#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

struct UpperOptions {
  // Canonicalize every merged content model (determinize + minimize).
  // Turning this off keeps determinized-but-unminimized content DFAs:
  // same language, larger representation — the ablation measured by
  // bench_upper_edtd.
  bool minimize_content = true;

  // Ambient sibling-word constraint (an NFA over the EDTD's Σ) for the
  // type-automaton subset construction: when non-null, the construction
  // runs schema-guided (determinize.h) and materializes only type
  // subsets reachable along context-live sibling words. The result is
  // then the minimal upper approximation of L(edtd) *restricted to* the
  // context — exact only if L(context) contains every sibling word the
  // type automaton accepts. Null runs the dense path. Both pointers must
  // outlive the call; neither is owned.
  const Nfa* vertical_context = nullptr;

  // Context for every merged-content determinization/minimization. With
  // an exact-mode context (language contains every merged content union,
  // e.g. ContentUnionContext below) the output XSD is language-identical
  // to the dense path — and with minimize_content also structurally
  // identical, which the differential tests exploit. Null = dense.
  const Nfa* content_context = nullptr;
};

// Union of the Σ-homomorphic images of every content model of `edtd`:
// the coarsest exact-mode `content_context` (its language contains every
// per-subset content union MinimalUpperApproximation merges). Because it
// contains each target it never prunes — it exists as the identity
// witness for differential tests and the CLI's --schema-guided mode, not
// as an optimization; see DESIGN.md for where real contexts come from.
Nfa ContentUnionContext(const Edtd& edtd);

// Returns the minimal upper XSD-approximation of L(edtd). The input is
// reduced internally (Proviso 2.3). States of the result correspond to the
// reachable non-empty subsets of ∆.
DfaXsd MinimalUpperApproximation(const Edtd& edtd,
                                 const UpperOptions& options = {});

// Budgeted variant: the type-automaton subset construction and every
// per-subset content determinization charge the budget's state quota, so
// the Theorem 3.2 exponential family aborts with kResourceExhausted
// instead of exhausting memory. A null budget is unlimited.
StatusOr<DfaXsd> MinimalUpperApproximation(const Edtd& edtd, Budget* budget,
                                           const UpperOptions& options = {});

}  // namespace stap

#endif  // STAP_APPROX_UPPER_H_
