#include "stap/approx/upper.h"

#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

StatusOr<DfaXsd> MinimalUpperApproximation(const Edtd& input, Budget* budget,
                                           const UpperOptions& options) {
  static Counter* const calls = GetCounter("approx.upper_calls");
  static Counter* const merged_states =
      GetCounter("approx.upper_merged_states");
  static Histogram* const latency = GetHistogram("approx.upper_ms");
  calls->Increment();
  ScopedTimer timer(latency);
  ScopedSpan span("approx.upper");
  const int64_t budget_states_before =
      budget != nullptr ? budget->states_charged() : 0;

  // Construction 3.1 phases, each its own span so `stap explain` and the
  // trace timeline show where an adversarial schema spends its states.
  ScopedSpan reduce_span("upper.reduce");
  Edtd edtd = ReduceEdtd(input);
  reduce_span.AddArg("types_in", input.num_types());
  reduce_span.AddArg("types_out", edtd.num_types());
  reduce_span.End();

  ScopedSpan ta_span("upper.type_automaton");
  TypeAutomaton type_automaton = BuildTypeAutomaton(edtd);
  ta_span.AddArg("nfa_states", type_automaton.nfa.num_states());
  ta_span.End();

  if (options.vertical_context != nullptr &&
      options.vertical_context->num_symbols() != edtd.num_symbols()) {
    return Status(StatusCode::kInvalidArgument,
                  "vertical_context alphabet does not match the EDTD");
  }
  if (options.content_context != nullptr &&
      options.content_context->num_symbols() != edtd.num_symbols()) {
    return Status(StatusCode::kInvalidArgument,
                  "content_context alphabet does not match the EDTD");
  }

  // Subset construction on the type automaton, schema-guided when a
  // vertical context is supplied. Each materialized subset is either
  // {q_init}, empty (the dead sink, dense or schema-pruned), or a set of
  // type states that all carry the same Σ-label.
  ScopedSpan subset_span("upper.subset_construction");
  std::vector<StateSet> subsets;
  StatusOr<Dfa> determinized_or =
      Determinize(type_automaton.nfa, options.vertical_context, budget,
                  &subsets);
  if (!determinized_or.ok()) return determinized_or.status();
  Dfa determinized = *std::move(determinized_or);
  subset_span.AddArg("subset_states", determinized.num_states());
  subset_span.End();

  ScopedSpan merge_span("upper.merge_contents");
  // Renumber: {q_init} becomes state 0; non-empty subsets get 1..; the
  // empty sink is dropped.
  const int n = determinized.num_states();
  std::vector<int> remap(n, kNoState);
  if (subsets[determinized.initial()].empty()) {
    // Only reachable schema-guided: the vertical context admits no root
    // at all, so the restricted approximation is the empty schema. The
    // DfaXsd representation has no empty form; report it as a bad
    // context rather than fabricating one.
    return Status(StatusCode::kInvalidArgument,
                  "vertical_context admits no document root");
  }
  STAP_CHECK(subsets[determinized.initial()] ==
             StateSet{TypeAutomaton::kInit});
  remap[determinized.initial()] = 0;
  int next_id = 1;
  for (int s = 0; s < n; ++s) {
    if (s == determinized.initial() || subsets[s].empty()) continue;
    remap[s] = next_id++;
  }

  DfaXsd xsd;
  xsd.sigma = edtd.sigma;
  for (int tau : edtd.start_types) {
    StateSetInsert(xsd.start_symbols, edtd.mu[tau]);
  }
  xsd.automaton = Dfa(next_id, edtd.num_symbols());
  xsd.automaton.SetInitial(0);
  xsd.state_label.assign(next_id, kNoSymbol);
  xsd.content.assign(next_id, Dfa::EmptyLanguage(edtd.num_symbols()));

  merged_states->Increment(next_id);
  for (int s = 0; s < n; ++s) {
    if (remap[s] == kNoState) continue;
    for (int a = 0; a < edtd.num_symbols(); ++a) {
      int t = determinized.Next(s, a);
      if (t != kNoState && remap[t] != kNoState) {
        xsd.automaton.SetTransition(remap[s], a, remap[t]);
      }
    }
    if (remap[s] == 0) continue;

    // Label of the merged state and union of the content images.
    int label = kNoSymbol;
    Nfa content_union(0, edtd.num_symbols());
    bool first = true;
    for (int state : subsets[s]) {
      STAP_CHECK(state != TypeAutomaton::kInit);
      int tau = TypeAutomaton::TypeOfState(state);
      if (first) {
        label = edtd.mu[tau];
        content_union =
            HomomorphicImage(edtd.content[tau], edtd.mu, edtd.num_symbols());
        first = false;
      } else {
        STAP_CHECK(label == edtd.mu[tau]);
        content_union = NfaUnion(
            content_union,
            HomomorphicImage(edtd.content[tau], edtd.mu, edtd.num_symbols()));
      }
    }
    STAP_CHECK(!first);  // non-empty subset
    xsd.state_label[remap[s]] = label;
    if (options.minimize_content) {
      StatusOr<Dfa> content =
          MinimizeNfa(content_union, options.content_context, budget);
      if (!content.ok()) return content.status();
      xsd.content[remap[s]] = *std::move(content);
    } else {
      // Trimmed() drops the schema path's dead sink along with any other
      // dead state, so the representation stays comparable to dense.
      StatusOr<Dfa> content =
          Determinize(content_union, options.content_context, budget);
      if (!content.ok()) return content.status();
      xsd.content[remap[s]] = content->Trimmed();
    }
  }
  merge_span.AddArg("merged_states", next_id);
  merge_span.End();
  xsd.CheckWellFormed();
  span.AddArg("xsd_states", xsd.automaton.num_states());
  if (budget != nullptr) {
    span.AddArg("budget_states",
                budget->states_charged() - budget_states_before);
  }
  return xsd;
}

DfaXsd MinimalUpperApproximation(const Edtd& input,
                                 const UpperOptions& options) {
  StatusOr<DfaXsd> result = MinimalUpperApproximation(input, nullptr, options);
  return *std::move(result);  // a null budget never exhausts
}

Nfa ContentUnionContext(const Edtd& edtd) {
  Nfa context(0, edtd.num_symbols());
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    Nfa image = HomomorphicImage(edtd.content[tau], edtd.mu,
                                 edtd.num_symbols());
    context = tau == 0 ? std::move(image) : NfaUnion(context, image);
  }
  return context;
}

}  // namespace stap
