#include "stap/approx/closure.h"

#include <map>
#include <unordered_map>
#include <utility>

#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

namespace {

// A node occurrence inside a closure member, keyed by its exchange guard
// (ancestor string, or guard-DFA state plus label).
struct Occurrence {
  int tree;
  TreePath path;
};

// Guard key for a node: the full ancestor string in the string-guarded
// variant; (guard state, label) in the type-guarded variant.
using GuardKey = std::vector<int>;

class ClosureEngine {
 public:
  ClosureEngine(const Dfa* guard, const ClosureOptions& options)
      : guard_(guard), options_(options) {}

  ClosureResult Run(const std::vector<Tree>& seeds) {
    // The span wraps RunImpl so every early-return path (stop match, cap,
    // budget) still reports final member/exchange tallies.
    ScopedSpan span("closure.run");
    ClosureResult result = RunImpl(seeds);
    span.AddArg("seeds", result.seed_count);
    span.AddArg("members", result.trees.size());
    span.AddArg("exchanges", exchanges_tried_);
    span.AddArg("saturated", static_cast<int64_t>(result.saturated));
    return result;
  }

 private:
  ClosureResult RunImpl(const std::vector<Tree>& seeds) {
    static Counter* const calls = GetCounter("closure.calls");
    static Counter* const members = GetCounter("closure.members_added");
    static Counter* const exchanges = GetCounter("closure.exchanges_tried");
    calls->Increment();
    members_ = members;
    exchanges_ = exchanges;

    for (const Tree& seed : seeds) AddTree(seed, std::nullopt);
    result_.seed_count = static_cast<int>(result_.trees.size());
    if (result_.stop_match.has_value() || !result_.status.ok()) {
      result_.saturated = false;
      return std::move(result_);
    }

    // Process trees in insertion order; for each new tree, try exchanging
    // against all earlier trees (both directions).
    for (size_t current = 0;
         current < result_.trees.size() &&
         static_cast<int>(result_.trees.size()) < options_.max_trees;
         ++current) {
      // One span per fixpoint iteration: how many members the closure held
      // going in and how many this member's exchanges added.
      ScopedSpan iter_span("closure.iteration");
      iter_span.AddArg("member", static_cast<int64_t>(current));
      const size_t members_before = result_.trees.size();
      iter_span.AddArg("members_before", members_before);
      if (result_.status.ok()) {
        result_.status = Budget::CheckDeadline(options_.budget);
      }
      if (!result_.status.ok()) {
        result_.saturated = false;
        return std::move(result_);
      }
      const std::vector<std::pair<GuardKey, TreePath>> nodes =
          GuardedNodes(result_.trees[current]);
      for (const auto& [key, path] : nodes) {
        auto it = occurrences_.find(key);
        if (it == occurrences_.end()) continue;
        // Copy: AddTree mutates occurrences_.
        std::vector<Occurrence> partners = it->second;
        for (const Occurrence& partner : partners) {
          TryExchange(static_cast<int>(current), path, partner.tree,
                      partner.path);
          TryExchange(partner.tree, partner.path, static_cast<int>(current),
                      path);
          if (result_.stop_match.has_value() ||
              static_cast<int>(result_.trees.size()) >= options_.max_trees ||
              !result_.status.ok()) {
            result_.saturated = false;
            return std::move(result_);
          }
        }
      }
      iter_span.AddArg("added", result_.trees.size() - members_before);
    }
    if (static_cast<int>(result_.trees.size()) >= options_.max_trees) {
      result_.saturated = false;
    }
    return std::move(result_);
  }

 private:
  GuardKey KeyFor(const Tree& tree, const TreePath& path) const {
    Word ancestors = tree.AncestorString(path);
    if (guard_ == nullptr) return ancestors;
    // Type-guarded: (guard state after the ancestor string, node label).
    int state = guard_->num_states() > 0
                    ? guard_->Run(guard_->initial(), ancestors)
                    : kNoState;
    return {state, ancestors.back()};
  }

  std::vector<std::pair<GuardKey, TreePath>> GuardedNodes(
      const Tree& tree) const {
    std::vector<std::pair<GuardKey, TreePath>> result;
    for (const TreePath& path : tree.AllPaths()) {
      result.emplace_back(KeyFor(tree, path), path);
    }
    return result;
  }

  // Registers `tree` if new; records provenance and indexes its nodes.
  // Returns true if the tree was new.
  bool AddTree(const Tree& tree, std::optional<ExchangeStep> provenance) {
    if (options_.max_nodes > 0 && tree.NumNodes() > options_.max_nodes) {
      return false;
    }
    auto [it, inserted] = known_.emplace(tree, result_.trees.size());
    if (!inserted) return false;
    int index = it->second;
    result_.trees.push_back(tree);
    result_.provenance.push_back(std::move(provenance));
    members_->Increment();
    if (result_.status.ok()) {
      result_.status = Budget::ChargeStates(options_.budget);
    }
    if (options_.stop_predicate && !result_.stop_match.has_value() &&
        options_.stop_predicate(tree)) {
      result_.stop_match = tree;
    }
    for (const auto& [key, path] : GuardedNodes(result_.trees[index])) {
      occurrences_[key].push_back(Occurrence{index, path});
    }
    return true;
  }

  void TryExchange(int base, const TreePath& base_path, int donor,
                   const TreePath& donor_path) {
    if (base == donor && base_path == donor_path) return;
    exchanges_->Increment();
    ++exchanges_tried_;
    const Tree& base_tree = result_.trees[base];
    const Tree& donor_tree = result_.trees[donor];
    Tree exchanged =
        base_tree.ReplaceSubtree(base_path, donor_tree.At(donor_path));
    AddTree(std::move(exchanged),
            ExchangeStep{base, base_path, donor, donor_path});
  }

  const Dfa* guard_;  // null for the ancestor-string-guarded variant
  ClosureOptions options_;
  ClosureResult result_;
  Counter* members_ = nullptr;    // cached registry pointers, set in Run
  Counter* exchanges_ = nullptr;
  int64_t exchanges_tried_ = 0;   // this engine's own exchanges, for the span
  std::map<Tree, int> known_;
  // Guard keys are int sequences (ancestor strings or (state, label)
  // pairs); hashed lookup keeps the per-node indexing O(|key|).
  std::unordered_map<GuardKey, std::vector<Occurrence>, IntVectorHash>
      occurrences_;
};

}  // namespace

bool ClosureResult::Contains(const Tree& tree) const {
  for (const Tree& member : trees) {
    if (member == tree) return true;
  }
  return false;
}

ClosureResult CloseUnderExchange(const std::vector<Tree>& seeds,
                                 const ClosureOptions& options) {
  return ClosureEngine(nullptr, options).Run(seeds);
}

ClosureResult CloseUnderTypeGuardedExchange(const std::vector<Tree>& seeds,
                                            const Dfa& guard,
                                            const ClosureOptions& options) {
  return ClosureEngine(&guard, options).Run(seeds);
}

int DerivationTree::Height() const {
  if (left == nullptr) return 1;
  return 1 + std::max(left->Height(), right->Height());
}

int DerivationTree::NumLeaves() const {
  if (left == nullptr) return 1;
  return left->NumLeaves() + right->NumLeaves();
}

DerivationTree BuildDerivation(const ClosureResult& result, int index) {
  STAP_CHECK(index >= 0 && index < static_cast<int>(result.trees.size()));
  DerivationTree node;
  node.value = result.trees[index];
  const std::optional<ExchangeStep>& step = result.provenance[index];
  if (step.has_value()) {
    node.left = std::make_unique<DerivationTree>(
        BuildDerivation(result, step->base));
    node.right = std::make_unique<DerivationTree>(
        BuildDerivation(result, step->donor));
  }
  return node;
}

std::optional<Tree> FindEscape(
    const ClosureResult& result,
    const std::function<bool(const Tree&)>& escapes) {
  for (const Tree& tree : result.trees) {
    if (escapes(tree)) return tree;
  }
  return std::nullopt;
}

}  // namespace stap
