// A sound single-type lower approximation of an EDTD.
//
// The dual of Construction 3.1: run the same subset construction on the
// type automaton, but give each merged state the *intersection* of the
// μ-homomorphic images of its members' content models instead of their
// union. A tree accepted by the result assigns, by induction on height,
// every type in a node's subset to that node's subtree — children words
// lie in every member's content image, and the occurring witnesses stay
// inside the child subsets — so the language is contained in L(edtd).
//
// The result is exact on single-type inputs (all reachable subsets are
// singletons, so intersection and union coincide and the output is the
// input's DfaXsd form). It is NOT the maximal single-type sublanguage in
// general: maximality is the paper's open Section 4 problem (no unique
// maximal approximation exists — Theorem 4.3's example has two
// incomparable maximal lower approximations, and this construction may
// undershoot both). What it gives `stap measure` is a sound, cheap
// baseline whose loss |L(S) \ L(lower)| the counting DPs can quantify.
#ifndef STAP_APPROX_LOWER_H_
#define STAP_APPROX_LOWER_H_

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

// Returns a single-type lower approximation with L(result) ⊆ L(edtd).
// The input is reduced internally. For an input with empty language the
// result is the empty XSD (no start symbols). A null budget is unlimited.
StatusOr<DfaXsd> SubsetIntersectionLower(const Edtd& edtd,
                                         Budget* budget = nullptr);

}  // namespace stap

#endif  // STAP_APPROX_LOWER_H_
