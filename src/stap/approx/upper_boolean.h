// Upper XSD-approximations of Boolean combinations of XSDs
// (paper, Sections 3.2–3.4).
//
//  * Union (Theorem 3.6): the minimal upper approximation of
//    L(D1) ∪ L(D2) in time O(|D1||D2|) — the determinized type automaton
//    only reaches pair-sized subsets.
//  * Intersection (Theorem 3.8): single-type languages are closed under
//    intersection, so the "approximation" is exact.
//  * Complement (Theorem 3.9): an EDTD D_c for the complement that guesses
//    the path to a violation, whose determinized type automaton stays
//    polynomial (subsets have at most two elements).
//  * Difference (Theorem 3.10): same idea, run D1 in parallel with the
//    violation guess against D2.
//
// All inputs are single-type EDTDs (checked); schemas over different
// alphabets are aligned by symbol names first.
//
// The dominant cost of each construction is the per-type (or per-pair)
// content-model build — independent automaton products/determinizations
// writing disjoint slots. When a ThreadPool is supplied those loops run
// as parallel sweeps.
#ifndef STAP_APPROX_UPPER_BOOLEAN_H_
#define STAP_APPROX_UPPER_BOOLEAN_H_

#include <utility>

#include "stap/approx/upper.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

class ThreadPool;

// Rewrites both schemas over the union of their alphabets (merged by
// symbol name); languages are unchanged.
std::pair<Edtd, Edtd> AlignAlphabets(const Edtd& a, const Edtd& b);

// An EDTD for L(a) ∪ L(b) (disjoint union of the type sets). Works for
// arbitrary EDTDs; alphabets are aligned internally.
Edtd EdtdUnion(const Edtd& a, const Edtd& b);

// An EDTD for L(a) ∩ L(b) (product of the type sets; regular tree
// languages are closed under intersection — the substrate of
// Proposition 3.7). Works for arbitrary EDTDs; alphabets aligned
// internally; the result is reduced.
Edtd EdtdIntersection(const Edtd& a, const Edtd& b,
                      ThreadPool* pool = nullptr);

// An EDTD for the complement of the single-type `xsd` (Theorem 3.9's D_c):
// one "path" type per XSD state guessing the route to a violation, plus
// one "anything" type per symbol.
Edtd ComplementEdtd(const DfaXsd& xsd, ThreadPool* pool = nullptr);

// An EDTD for L(d1) \ L(xsd2), d1 single-type (Theorem 3.10's D_c).
Edtd DifferenceEdtd(const Edtd& d1, const DfaXsd& xsd2,
                    ThreadPool* pool = nullptr);

// Budgeted EDTD constructions. The per-type content builds (products,
// determinizations, minimizations) all charge `budget`; exhaustion in any
// parallel-sweep worker propagates as kResourceExhausted. The budgeted
// overloads take every parameter explicitly (no defaults) so they never
// collide with the defaulted signatures above; a null budget is
// unlimited.
StatusOr<Edtd> EdtdIntersection(const Edtd& a, const Edtd& b,
                                ThreadPool* pool, Budget* budget);
StatusOr<Edtd> ComplementEdtd(const DfaXsd& xsd, ThreadPool* pool,
                              Budget* budget);
StatusOr<Edtd> DifferenceEdtd(const Edtd& d1, const DfaXsd& xsd2,
                              ThreadPool* pool, Budget* budget);

// Minimal upper XSD-approximations per the theorems. Inputs must be
// single-type (checked).
DfaXsd UpperUnion(const Edtd& d1, const Edtd& d2);
DfaXsd UpperIntersection(const Edtd& d1, const Edtd& d2,
                         ThreadPool* pool = nullptr);  // exact
DfaXsd UpperComplement(const Edtd& d, ThreadPool* pool = nullptr);
DfaXsd UpperDifference(const Edtd& d1, const Edtd& d2,
                       ThreadPool* pool = nullptr);

// Budgeted variants of the four theorems. `options` configures the final
// MinimalUpperApproximation (upper.h) — note that any context supplied
// there constrains the *result* schema's alphabet, not the internal
// types-as-symbols content builds of Complement/Difference, which stay
// dense (their ambient language is all of Σ*; see DESIGN.md on why the
// complement construction is the degenerate case for schema guidance).
StatusOr<DfaXsd> UpperUnion(const Edtd& d1, const Edtd& d2, Budget* budget,
                            const UpperOptions& options = {});
StatusOr<DfaXsd> UpperIntersection(const Edtd& d1, const Edtd& d2,
                                   ThreadPool* pool, Budget* budget);
StatusOr<DfaXsd> UpperComplement(const Edtd& d, ThreadPool* pool,
                                 Budget* budget,
                                 const UpperOptions& options = {});
StatusOr<DfaXsd> UpperDifference(const Edtd& d1, const Edtd& d2,
                                 ThreadPool* pool, Budget* budget,
                                 const UpperOptions& options = {});

}  // namespace stap

#endif  // STAP_APPROX_UPPER_BOOLEAN_H_
