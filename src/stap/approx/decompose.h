// Generalized contexts and their decomposition into contexts and forks
// (paper, Section 4.4.2: Lemmas 4.17–4.19 and Figure 2).
//
// The 2EXPTIME construction of Lemma 4.16 must track how subtree
// exchanges recombine pieces of a tree. The pieces are: subtrees,
// contexts (one hole), and *generalized contexts* (any number of holes).
// A tree automaton cannot remember the unbounded effect of a generalized
// context, but Lemma 4.18 shows every generalized context partitions into
// ordinary contexts and *forks* — three-node binary trees whose two
// leaves are holes — which have bounded effect descriptions. This module
// implements that partition (and its inverse) on binary trees, exactly as
// Figure 2 depicts.
#ifndef STAP_APPROX_DECOMPOSE_H_
#define STAP_APPROX_DECOMPOSE_H_

#include <memory>
#include <optional>
#include <vector>

#include "stap/tree/context.h"
#include "stap/tree/tree.h"

namespace stap {

// A binary tree with >= 1 hole leaves (hole labels kept on the nodes).
struct GeneralizedContext {
  Tree tree;
  std::vector<TreePath> holes;  // sorted lexicographically

  // Marks the subtree positions of `tree` given by `holes` (each must be
  // a leaf) as holes.
  static GeneralizedContext Make(Tree tree, std::vector<TreePath> holes);
};

// A fork: root with two hole children (labels only; Section 4.4.2).
struct Fork {
  int root_label;
  int left_label;
  int right_label;
};

// One node of the decomposition: either a context piece with at most one
// continuation (none when its hole is an original hole), or a fork piece
// with exactly two continuations.
struct DecompositionNode {
  std::optional<TreeContext> context;
  std::optional<Fork> fork;
  std::vector<std::unique_ptr<DecompositionNode>> children;

  int NumContexts() const;
  int NumForks() const;
};

// Lemma 4.18: partitions the generalized context into contexts and forks.
// Require: every node of `input.tree` has 0 or 2 children and every hole
// is a leaf.
DecompositionNode Decompose(const GeneralizedContext& input);

// Inverse of Decompose: plugging the pieces back together returns the
// original generalized context.
GeneralizedContext Reassemble(const DecompositionNode& node);

}  // namespace stap

#endif  // STAP_APPROX_DECOMPOSE_H_
