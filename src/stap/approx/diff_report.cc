#include "stap/approx/diff_report.h"

#include <sstream>

#include "stap/approx/upper_boolean.h"
#include "stap/approx/witness.h"
#include "stap/base/check.h"
#include "stap/schema/count.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/xml.h"

namespace stap {

const char* SchemaRelationName(SchemaRelation relation) {
  switch (relation) {
    case SchemaRelation::kEquivalent:
      return "EQUIVALENT";
    case SchemaRelation::kSubset:
      return "SUBSET";
    case SchemaRelation::kSuperset:
      return "SUPERSET";
    case SchemaRelation::kIncomparable:
      return "INCOMPARABLE";
  }
  return "UNKNOWN";
}

SchemaDiffReport CompareSchemas(const Edtd& a_in, const Edtd& b_in,
                                int count_depth, int count_width) {
  auto [a_aligned, b_aligned] = AlignAlphabets(a_in, b_in);
  Edtd a = ReduceEdtd(a_aligned);
  Edtd b = ReduceEdtd(b_aligned);
  STAP_CHECK(IsSingleType(a));
  STAP_CHECK(IsSingleType(b));

  SchemaDiffReport report;
  report.sigma = a.sigma;

  DfaXsd xsd_a = DfaXsdFromStEdtd(a);
  DfaXsd xsd_b = DfaXsdFromStEdtd(b);
  report.only_in_a = XsdInclusionWitness(a, xsd_b);
  report.only_in_b = XsdInclusionWitness(b, xsd_a);
  if (report.only_in_a.has_value() && report.only_in_b.has_value()) {
    report.relation = SchemaRelation::kIncomparable;
  } else if (report.only_in_a.has_value()) {
    report.relation = SchemaRelation::kSuperset;
  } else if (report.only_in_b.has_value()) {
    report.relation = SchemaRelation::kSubset;
  } else {
    report.relation = SchemaRelation::kEquivalent;
  }

  report.count_a = CountDocuments(xsd_a, count_depth, count_width);
  report.count_b = CountDocuments(xsd_b, count_depth, count_width);
  report.count_intersection = CountDocuments(
      UpperIntersection(a, b), count_depth, count_width);
  return report;
}

std::string SchemaDiffReport::ToString() const {
  std::ostringstream os;
  os << "relation: " << SchemaRelationName(relation) << "\n"
     << "documents (bounded): A=" << count_a << " B=" << count_b
     << " A∩B=" << count_intersection << "\n";
  if (only_in_a.has_value()) {
    os << "only in A:\n" << ToXml(*only_in_a, sigma);
  }
  if (only_in_b.has_value()) {
    os << "only in B:\n" << ToXml(*only_in_b, sigma);
  }
  return os.str();
}

}  // namespace stap
