#include "stap/treeauto/forest_monoid.h"

#include <map>
#include <utility>

#include "stap/base/check.h"

namespace stap {

FiniteMonoid::FiniteMonoid(int size, int identity, std::vector<int> table)
    : size_(size), identity_(identity), table_(std::move(table)) {
  STAP_CHECK(size >= 1);
  STAP_CHECK(identity >= 0 && identity < size);
  STAP_CHECK(static_cast<int>(table_.size()) == size * size);
}

bool FiniteMonoid::CheckAxioms() const {
  for (int a = 0; a < size_; ++a) {
    if (Compose(a, identity_) != a || Compose(identity_, a) != a) {
      return false;
    }
    for (int b = 0; b < size_; ++b) {
      for (int c = 0; c < size_; ++c) {
        if (Compose(Compose(a, b), c) != Compose(a, Compose(b, c))) {
          return false;
        }
      }
    }
  }
  return true;
}

MonoidForestAutomaton::MonoidForestAutomaton(FiniteMonoid monoid,
                                             int num_symbols,
                                             std::vector<int> delta,
                                             std::vector<bool> final)
    : monoid_(std::move(monoid)),
      num_symbols_(num_symbols),
      delta_(std::move(delta)),
      final_(std::move(final)) {
  STAP_CHECK(static_cast<int>(delta_.size()) ==
             num_symbols_ * monoid_.size());
  STAP_CHECK(static_cast<int>(final_.size()) == monoid_.size());
}

int MonoidForestAutomaton::EvalTree(const Tree& tree) const {
  Forest children(tree.children.begin(), tree.children.end());
  return Apply(tree.label, EvalForest(children));
}

int MonoidForestAutomaton::EvalForest(const Forest& forest) const {
  int element = monoid_.identity();
  for (const Tree& tree : forest) {
    element = monoid_.Compose(element, EvalTree(tree));
  }
  return element;
}

bool MonoidForestAutomaton::Accepts(const Forest& forest) const {
  return final_[EvalForest(forest)];
}

bool MonoidForestAutomaton::AcceptsTree(const Tree& tree) const {
  return Accepts(Forest{tree});
}

namespace {

// Builds the root content DFA: accepts exactly the length-1 words over
// the start symbols (so MFA forest acceptance = single valid document).
Dfa RootContent(const DfaXsd& xsd) {
  Dfa dfa(2, xsd.sigma.size());
  dfa.SetFinal(1);
  for (int a : xsd.start_symbols) dfa.SetTransition(0, a, 1);
  return dfa;
}

// Interns the reachable transformation monoid of an XSD. Elements are
// flattened partial maps: slot (q, s) holds the content-DFA state of q
// reached from s after reading the forest, or -1 (⊥) when the forest is
// not a valid child sequence fragment in context q.
class MonoidBuilder {
 public:
  explicit MonoidBuilder(const DfaXsd& xsd)
      : xsd_(xsd), root_content_(RootContent(xsd)) {
    // Slot layout: state q's content DFA occupies [offset_[q],
    // offset_[q] + num_content_states(q)). State 0 uses root_content_.
    offset_.resize(xsd.automaton.num_states());
    int total = 0;
    for (int q = 0; q < xsd.automaton.num_states(); ++q) {
      offset_[q] = total;
      total += Content(q).num_states();
    }
    slots_ = total;
  }

  const Dfa& Content(int q) const {
    return q == 0 ? root_content_ : xsd_.content[q];
  }

  std::vector<int> Identity() const {
    std::vector<int> element(slots_);
    for (int q = 0; q < xsd_.automaton.num_states(); ++q) {
      for (int s = 0; s < Content(q).num_states(); ++s) {
        element[offset_[q] + s] = s;
      }
    }
    return element;
  }

  std::vector<int> Compose(const std::vector<int>& a,
                           const std::vector<int>& b) const {
    std::vector<int> result(slots_);
    for (int q = 0; q < xsd_.automaton.num_states(); ++q) {
      for (int s = 0; s < Content(q).num_states(); ++s) {
        int mid = a[offset_[q] + s];
        result[offset_[q] + s] = mid < 0 ? -1 : b[offset_[q] + mid];
      }
    }
    return result;
  }

  // The element of the single-tree forest a(f), given f's element.
  std::vector<int> Apply(int symbol, const std::vector<int>& child) const {
    std::vector<int> result(slots_);
    for (int q = 0; q < xsd_.automaton.num_states(); ++q) {
      int child_state = xsd_.automaton.Next(q, symbol);
      bool valid = false;
      if (child_state != kNoState) {
        const Dfa& content = Content(child_state);
        if (content.num_states() > 0) {
          int landed = child[offset_[child_state] + content.initial()];
          valid = landed >= 0 && content.IsFinal(landed);
        }
      }
      for (int s = 0; s < Content(q).num_states(); ++s) {
        if (!valid) {
          result[offset_[q] + s] = -1;
          continue;
        }
        int next = Content(q).Next(s, symbol);
        result[offset_[q] + s] = next == kNoState ? -1 : next;
      }
    }
    return result;
  }

  bool IsFinal(const std::vector<int>& element) const {
    int landed = element[offset_[0] + root_content_.initial()];
    return landed >= 0 && root_content_.IsFinal(landed);
  }

 private:
  const DfaXsd& xsd_;
  Dfa root_content_;
  std::vector<int> offset_;
  int slots_ = 0;
};

}  // namespace

MonoidForestAutomaton MfaFromXsd(const DfaXsd& xsd) {
  xsd.CheckWellFormed();
  MonoidBuilder builder(xsd);
  const int num_symbols = xsd.sigma.size();

  std::map<std::vector<int>, int> ids;
  std::vector<std::vector<int>> elements;
  auto intern = [&](std::vector<int> element) -> int {
    auto [it, inserted] = ids.emplace(std::move(element), elements.size());
    if (inserted) elements.push_back(it->first);
    return it->second;
  };
  intern(builder.Identity());

  // Fixpoint: close the reachable set under δ(a, ·) and composition.
  std::map<std::pair<int, int>, int> delta_map;     // (symbol, e) -> e'
  std::map<std::pair<int, int>, int> compose_map;   // (e1, e2) -> e'
  bool changed = true;
  while (changed) {
    changed = false;
    const int known = static_cast<int>(elements.size());
    for (int e = 0; e < known; ++e) {
      for (int a = 0; a < num_symbols; ++a) {
        auto key = std::make_pair(a, e);
        if (delta_map.count(key) > 0) continue;
        delta_map[key] = intern(builder.Apply(a, elements[e]));
        changed = true;
      }
    }
    for (int e1 = 0; e1 < known; ++e1) {
      for (int e2 = 0; e2 < known; ++e2) {
        auto key = std::make_pair(e1, e2);
        if (compose_map.count(key) > 0) continue;
        compose_map[key] =
            intern(builder.Compose(elements[e1], elements[e2]));
        changed = true;
      }
    }
  }

  const int size = static_cast<int>(elements.size());
  std::vector<int> table(static_cast<size_t>(size) * size);
  for (int e1 = 0; e1 < size; ++e1) {
    for (int e2 = 0; e2 < size; ++e2) {
      table[e1 * size + e2] = compose_map.at({e1, e2});
    }
  }
  std::vector<int> delta(static_cast<size_t>(num_symbols) * size);
  for (int a = 0; a < num_symbols; ++a) {
    for (int e = 0; e < size; ++e) {
      delta[a * size + e] = delta_map.at({a, e});
    }
  }
  std::vector<bool> final(size);
  for (int e = 0; e < size; ++e) final[e] = builder.IsFinal(elements[e]);

  return MonoidForestAutomaton(FiniteMonoid(size, 0, std::move(table)),
                               num_symbols, std::move(delta),
                               std::move(final));
}

}  // namespace stap
