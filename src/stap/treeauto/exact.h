// Exact decision procedures on EDTDs via binary tree automata.
//
// These are the classical EXPTIME routes (Theorem 2.13's flavor): encode,
// determinize bottom-up, complement, product, test emptiness. They serve
// as ground truth for the polynomial algorithms of Section 3 and as the
// baseline in benchmark E6.
#ifndef STAP_TREEAUTO_EXACT_H_
#define STAP_TREEAUTO_EXACT_H_

#include <optional>

#include "stap/schema/edtd.h"
#include "stap/tree/tree.h"

namespace stap {

// L(d1) ⊆ L(d2)? Worst-case exponential in |d2|.
bool EdtdIncludedInExact(const Edtd& d1, const Edtd& d2);

// L(d1) == L(d2)?
bool EdtdEquivalentExact(const Edtd& d1, const Edtd& d2);

// A witness unranked tree in L(d1) \ L(d2), if any (smallest found by the
// bottom-up search, not necessarily globally minimal).
std::optional<Tree> EdtdInclusionCounterexample(const Edtd& d1,
                                                const Edtd& d2);

}  // namespace stap

#endif  // STAP_TREEAUTO_EXACT_H_
