// Monoid forest automata (paper, Section 4.4.1, after [6]).
//
// An MFA is a deterministic forest acceptor: a finite monoid (Q, +, q0),
// a transition function δ : Σ × Q → Q, and final states. It evaluates
//   A(ε) = q0,  A(a(s)) = δ(a, A(s)),  A(t1 … tn) = A(t1) + … + A(tn),
// and Theorem 4.12 uses MFAs to regularize maximal lower approximations.
//
// Besides the abstract structure (explicit operation table, axiom
// checker), this module constructs a concrete MFA equivalent to a given
// DFA-based XSD: monoid elements are tuples of partial transformations —
// for every XSD state q, the effect of the forest on q's content DFA
// (⊥ when some tree of the forest is invalid in that context). A virtual
// root state turns tree acceptance into forest acceptance.
#ifndef STAP_TREEAUTO_FOREST_MONOID_H_
#define STAP_TREEAUTO_FOREST_MONOID_H_

#include <string>
#include <vector>

#include "stap/schema/single_type.h"
#include "stap/tree/tree.h"

namespace stap {

// A forest: an ordered sequence of trees.
using Forest = std::vector<Tree>;

// A finite monoid given by its operation table.
class FiniteMonoid {
 public:
  FiniteMonoid(int size, int identity, std::vector<int> table);

  int size() const { return size_; }
  int identity() const { return identity_; }
  int Compose(int a, int b) const { return table_[a * size_ + b]; }

  // Verifies associativity and the identity laws (cubic; for tests).
  bool CheckAxioms() const;

 private:
  int size_;
  int identity_;
  std::vector<int> table_;  // a * size_ + b
};

// A monoid forest automaton with explicit tables.
class MonoidForestAutomaton {
 public:
  MonoidForestAutomaton(FiniteMonoid monoid, int num_symbols,
                        std::vector<int> delta, std::vector<bool> final);

  const FiniteMonoid& monoid() const { return monoid_; }
  int num_symbols() const { return num_symbols_; }

  // δ(symbol, element).
  int Apply(int symbol, int element) const {
    return delta_[symbol * monoid_.size() + element];
  }

  int EvalTree(const Tree& tree) const;
  int EvalForest(const Forest& forest) const;
  bool Accepts(const Forest& forest) const;

  // Acceptance of the single-tree forest {tree}.
  bool AcceptsTree(const Tree& tree) const;

 private:
  FiniteMonoid monoid_;
  int num_symbols_;
  std::vector<int> delta_;  // symbol * |M| + element
  std::vector<bool> final_;
};

// Builds an MFA with AcceptsTree == xsd.Accepts by materializing the
// reachable transformation monoid (worst-case exponential in the content
// DFA sizes; intended for small schemas and the Section 4.4 experiments).
MonoidForestAutomaton MfaFromXsd(const DfaXsd& xsd);

}  // namespace stap

#endif  // STAP_TREEAUTO_FOREST_MONOID_H_
