#include "stap/treeauto/exact.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/treeauto/bta.h"
#include "stap/treeauto/encoding.h"

namespace stap {

namespace {

// Searches bottom-up for a binary tree accepted by `bta1` and rejected by
// `det2` (the determinization of the second automaton). Each discovered
// product state remembers a witness tree.
std::optional<Tree> ProductCounterexample(const Bta& bta1, const DetBta& det2,
                                          int num_binary_symbols) {
  struct Node {
    int q1;
    int s2;
    Tree witness;
  };
  std::unordered_map<std::pair<int, int>, int, IntPairHash> ids;
  std::vector<Node> nodes;
  std::optional<Tree> counterexample;

  auto intern = [&](int q1, int s2, Tree witness) -> bool {
    auto [it, inserted] = ids.emplace(std::make_pair(q1, s2), nodes.size());
    if (!inserted) return false;
    if (!counterexample.has_value() && bta1.IsFinal(q1) && !det2.IsFinal(s2)) {
      counterexample = witness;
    }
    nodes.push_back(Node{q1, s2, std::move(witness)});
    return true;
  };

  for (int a = 0; a < num_binary_symbols; ++a) {
    for (int q1 : bta1.LeafStates(a)) {
      intern(q1, det2.LeafState(a), Tree(a));
      if (counterexample.has_value()) return counterexample;
    }
  }

  bool changed = true;
  while (changed && !counterexample.has_value()) {
    changed = false;
    const size_t known = nodes.size();
    for (size_t i = 0; i < known && !counterexample.has_value(); ++i) {
      for (size_t j = 0; j < known && !counterexample.has_value(); ++j) {
        for (int a = 0; a < num_binary_symbols; ++a) {
          const StateSet& targets =
              bta1.InternalStates(a, nodes[i].q1, nodes[j].q1);
          if (targets.empty()) continue;
          int s2 = det2.InternalState(a, nodes[i].s2, nodes[j].s2);
          Tree witness(a, {nodes[i].witness, nodes[j].witness});
          for (int q1 : targets) {
            if (intern(q1, s2, witness)) changed = true;
            if (counterexample.has_value()) break;
          }
          if (counterexample.has_value()) break;
        }
      }
    }
  }
  return counterexample;
}

}  // namespace

std::optional<Tree> EdtdInclusionCounterexample(const Edtd& d1,
                                                const Edtd& d2) {
  STAP_CHECK(d1.sigma == d2.sigma);
  Bta bta1 = BtaFromEdtd(d1);
  DetBta det2 = DeterminizeBta(BtaFromEdtd(d2));
  std::optional<Tree> binary =
      ProductCounterexample(bta1, det2, d1.num_symbols() + 1);
  if (!binary.has_value()) return std::nullopt;
  StatusOr<Tree> decoded = DecodeBinary(*binary, d1.num_symbols());
  // The counterexample search may surface a non-canonical variant (a Σ node
  // with an explicit empty child list); both automata treat it exactly like
  // its canonical form, so fall back to it via a round trip when needed.
  if (decoded.ok()) return *decoded;
  // Normalize: the only non-canonical shape is a(#, #) standing for leaf a;
  // rewrite bottom-up.
  struct Normalizer {
    int hash;
    Tree operator()(const Tree& t) const {
      if (t.label == hash) {
        Tree copy = t;
        for (Tree& child : copy.children) child = (*this)(child);
        return copy;
      }
      if (t.children.size() == 2 && t.children[0].IsLeaf() &&
          t.children[0].label == hash && t.children[1].IsLeaf() &&
          t.children[1].label == hash) {
        return Tree(t.label);
      }
      Tree copy = t;
      for (Tree& child : copy.children) child = (*this)(child);
      return copy;
    }
  };
  Tree normalized = Normalizer{HashSymbol(d1.num_symbols())}(*binary);
  StatusOr<Tree> retry = DecodeBinary(normalized, d1.num_symbols());
  STAP_CHECK(retry.ok());
  return *retry;
}

bool EdtdIncludedInExact(const Edtd& d1, const Edtd& d2) {
  return !EdtdInclusionCounterexample(d1, d2).has_value();
}

bool EdtdEquivalentExact(const Edtd& d1, const Edtd& d2) {
  return EdtdIncludedInExact(d1, d2) && EdtdIncludedInExact(d2, d1);
}

}  // namespace stap
