#include "stap/treeauto/encoding.h"

#include <vector>

#include "stap/base/check.h"

namespace stap {

namespace {

Tree EncodeList(const std::vector<Tree>& children, size_t index,
                int hash_symbol, int num_symbols);

Tree EncodeNode(const Tree& tree, int hash_symbol, int num_symbols) {
  STAP_CHECK(tree.label >= 0 && tree.label < num_symbols);
  if (tree.children.empty()) return Tree(tree.label);
  Tree result(tree.label);
  result.children.push_back(
      EncodeList(tree.children, 0, hash_symbol, num_symbols));
  result.children.push_back(Tree(hash_symbol));
  return result;
}

Tree EncodeList(const std::vector<Tree>& children, size_t index,
                int hash_symbol, int num_symbols) {
  if (index == children.size()) return Tree(hash_symbol);
  Tree cell(hash_symbol);
  cell.children.push_back(EncodeNode(children[index], hash_symbol, num_symbols));
  cell.children.push_back(
      EncodeList(children, index + 1, hash_symbol, num_symbols));
  return cell;
}

StatusOr<Tree> DecodeNode(const Tree& binary, int hash_symbol);

// Decodes a #-spine into a child list appended to `out`.
Status DecodeList(const Tree& binary, int hash_symbol, std::vector<Tree>* out) {
  if (binary.label != hash_symbol) {
    return InvalidArgumentError("expected # list cell in binary encoding");
  }
  if (binary.children.empty()) return Status::Ok();  // L() = leaf #
  if (binary.children.size() != 2) {
    return InvalidArgumentError("list cell must have exactly two children");
  }
  StatusOr<Tree> head = DecodeNode(binary.children[0], hash_symbol);
  if (!head.ok()) return head.status();
  out->push_back(*std::move(head));
  return DecodeList(binary.children[1], hash_symbol, out);
}

StatusOr<Tree> DecodeNode(const Tree& binary, int hash_symbol) {
  if (binary.label == hash_symbol) {
    return InvalidArgumentError("unexpected # where Σ node expected");
  }
  if (binary.children.empty()) return Tree(binary.label);
  if (binary.children.size() != 2 || !binary.children[1].IsLeaf() ||
      binary.children[1].label != hash_symbol) {
    return InvalidArgumentError("malformed Σ node in binary encoding");
  }
  Tree result(binary.label);
  STAP_RETURN_IF_ERROR(
      DecodeList(binary.children[0], hash_symbol, &result.children));
  if (result.children.empty()) {
    return InvalidArgumentError("Σ node with empty child list must be a leaf");
  }
  return result;
}

}  // namespace

Tree EncodeBinary(const Tree& tree, int num_symbols) {
  return EncodeNode(tree, HashSymbol(num_symbols), num_symbols);
}

StatusOr<Tree> DecodeBinary(const Tree& binary, int num_symbols) {
  return DecodeNode(binary, HashSymbol(num_symbols));
}

Bta BtaFromEdtd(const Edtd& edtd) {
  const int num_symbols = edtd.num_symbols();
  const int hash = HashSymbol(num_symbols);
  const int num_types = edtd.num_types();

  // States:
  //   0 .. num_types-1                 : "subtree has type τ"
  //   end_state                        : the # leaf closing a Σ node
  //   list_base[τ] + q                 : "#-list drives content[τ] from q
  //                                      to acceptance"
  std::vector<int> list_base(num_types);
  int next = num_types;
  const int end_state = next++;
  for (int tau = 0; tau < num_types; ++tau) {
    list_base[tau] = next;
    next += edtd.content[tau].num_states();
  }
  Bta bta(next, num_symbols + 1);

  for (int tau : edtd.start_types) bta.SetFinal(tau);

  // Leaf a -> τ when μ(τ)=a and ε ∈ d(τ).
  for (int tau = 0; tau < num_types; ++tau) {
    if (edtd.content[tau].num_states() > 0 &&
        edtd.content[tau].AcceptsEpsilon()) {
      bta.AddLeafTransition(edtd.mu[tau], tau);
    }
  }
  // Leaf # -> end, and -> (τ, q) for accepting q (empty suffix).
  bta.AddLeafTransition(hash, end_state);
  for (int tau = 0; tau < num_types; ++tau) {
    const Dfa& dfa = edtd.content[tau];
    for (int q = 0; q < dfa.num_states(); ++q) {
      if (dfa.IsFinal(q)) bta.AddLeafTransition(hash, list_base[tau] + q);
    }
  }
  // #( type τ', list (τ, q') ) -> (τ, q) when δ_d(τ)(q, τ') = q'.
  for (int tau = 0; tau < num_types; ++tau) {
    const Dfa& dfa = edtd.content[tau];
    for (int q = 0; q < dfa.num_states(); ++q) {
      for (int tp = 0; tp < num_types; ++tp) {
        int qp = dfa.Next(q, tp);
        if (qp == kNoState) continue;
        bta.AddInternalTransition(hash, tp, list_base[tau] + qp,
                                  list_base[tau] + q);
      }
    }
  }
  // a( list (τ, q0), end ) -> τ when μ(τ)=a.
  for (int tau = 0; tau < num_types; ++tau) {
    const Dfa& dfa = edtd.content[tau];
    if (dfa.num_states() == 0) continue;
    bta.AddInternalTransition(edtd.mu[tau], list_base[tau] + dfa.initial(),
                              end_state, tau);
  }
  return bta;
}

}  // namespace stap
