// Binary encoding of unranked trees (paper, Figure 3).
//
// enc(a)            = leaf a
// enc(a(t1,..,tn))  = a( L(t1..tn), # )      n >= 1
// L(ti..tn)         = #( enc(ti), L(t(i+1)..tn) ),  L() = leaf #
//
// where # is a fresh symbol appended to Σ. As in the paper's encoding,
// every binary subtree rooted at a Σ-label is the encoding of an unranked
// subtree, which is what lets ancestor-type-guarded exchange transfer
// between the two worlds.
#ifndef STAP_TREEAUTO_ENCODING_H_
#define STAP_TREEAUTO_ENCODING_H_

#include "stap/base/status.h"
#include "stap/schema/edtd.h"
#include "stap/tree/tree.h"
#include "stap/treeauto/bta.h"

namespace stap {

// The id of # for an unranked alphabet of `num_symbols` symbols.
inline int HashSymbol(int num_symbols) { return num_symbols; }

// Encodes an unranked tree into its binary form (alphabet Σ ∪ {#}).
Tree EncodeBinary(const Tree& tree, int num_symbols);

// Decodes; fails on trees not in the image of EncodeBinary.
StatusOr<Tree> DecodeBinary(const Tree& binary, int num_symbols);

// A binary tree automaton over Σ ∪ {#} accepting exactly
// { EncodeBinary(t) : t ∈ L(edtd) }. Size is polynomial in |edtd|.
Bta BtaFromEdtd(const Edtd& edtd);

}  // namespace stap

#endif  // STAP_TREEAUTO_ENCODING_H_
