#include "stap/treeauto/bta.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"

namespace stap {

namespace {
const StateSet kEmptySet;
}  // namespace

Bta::Bta(int num_states, int num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      leaf_(num_symbols),
      final_(num_states, false) {
  STAP_CHECK(num_states >= 0 && num_symbols >= 0);
}

int Bta::AddState() {
  final_.push_back(false);
  return num_states_++;
}

void Bta::AddLeafTransition(int symbol, int state) {
  STAP_CHECK(symbol >= 0 && symbol < num_symbols_);
  STAP_CHECK(state >= 0 && state < num_states_);
  StateSetInsert(leaf_[symbol], state);
}

void Bta::AddInternalTransition(int symbol, int left, int right, int state) {
  STAP_CHECK(symbol >= 0 && symbol < num_symbols_);
  STAP_CHECK(left >= 0 && left < num_states_);
  STAP_CHECK(right >= 0 && right < num_states_);
  STAP_CHECK(state >= 0 && state < num_states_);
  StateSetInsert(internal_[{symbol, left, right}], state);
}

void Bta::SetFinal(int state, bool is_final) {
  STAP_CHECK(state >= 0 && state < num_states_);
  final_[state] = is_final;
}

const StateSet& Bta::InternalStates(int symbol, int left, int right) const {
  auto it = internal_.find({symbol, left, right});
  return it == internal_.end() ? kEmptySet : it->second;
}

StateSet Bta::EvalStates(const Tree& tree) const {
  STAP_CHECK(tree.children.empty() || tree.children.size() == 2);
  if (tree.children.empty()) return leaf_[tree.label];
  StateSet left = EvalStates(tree.children[0]);
  StateSet right = EvalStates(tree.children[1]);
  StateSet result;
  for (int l : left) {
    for (int r : right) {
      for (int q : InternalStates(tree.label, l, r)) {
        StateSetInsert(result, q);
      }
    }
  }
  return result;
}

bool Bta::Accepts(const Tree& tree) const {
  for (int q : EvalStates(tree)) {
    if (final_[q]) return true;
  }
  return false;
}

bool Bta::IsEmpty() const {
  std::vector<bool> reachable(num_states_, false);
  bool changed = true;
  for (int a = 0; a < num_symbols_; ++a) {
    for (int q : leaf_[a]) reachable[q] = true;
  }
  while (changed) {
    changed = false;
    for (const auto& [key, targets] : internal_) {
      auto [symbol, left, right] = key;
      (void)symbol;
      if (!reachable[left] || !reachable[right]) continue;
      for (int q : targets) {
        if (!reachable[q]) {
          reachable[q] = true;
          changed = true;
        }
      }
    }
  }
  for (int q = 0; q < num_states_; ++q) {
    if (reachable[q] && final_[q]) return false;
  }
  return true;
}

int64_t Bta::NumTransitions() const {
  int64_t total = 0;
  for (const StateSet& states : leaf_) total += states.size();
  for (const auto& [key, targets] : internal_) {
    (void)key;
    total += targets.size();
  }
  return total;
}

int DetBta::InternalState(int symbol, int left, int right) const {
  auto it = internal_.find({symbol, left, right});
  return it == internal_.end() ? sink_ : it->second;
}

int DetBta::EvalState(const Tree& tree) const {
  STAP_CHECK(tree.children.empty() || tree.children.size() == 2);
  if (tree.children.empty()) return leaf_[tree.label];
  return InternalState(tree.label, EvalState(tree.children[0]),
                       EvalState(tree.children[1]));
}

bool DetBta::Accepts(const Tree& tree) const {
  return final_[EvalState(tree)];
}

StatusOr<DetBta> DeterminizeBta(const Bta& bta, Budget* budget) {
  DetBta det;
  det.num_symbols_ = bta.num_symbols();

  std::unordered_map<StateSet, int, StateSetHash> ids;
  Status charge_status;
  auto intern = [&](const StateSet& subset) -> int {
    auto [it, inserted] = ids.emplace(subset, det.subsets_.size());
    if (inserted) {
      if (charge_status.ok()) charge_status = Budget::ChargeStates(budget);
      det.subsets_.push_back(subset);
      bool is_final = std::any_of(subset.begin(), subset.end(),
                                  [&](int q) { return bta.IsFinal(q); });
      det.final_.push_back(is_final);
    }
    return it->second;
  };

  det.sink_ = intern(StateSet{});
  det.leaf_.resize(bta.num_symbols());
  for (int a = 0; a < bta.num_symbols(); ++a) {
    det.leaf_[a] = intern(bta.LeafStates(a));
  }

  // Fixpoint: combine every pair of known subsets under every symbol until
  // no new subset or entry appears.
  bool changed = true;
  while (changed) {
    STAP_RETURN_IF_ERROR(charge_status);
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    changed = false;
    const int known = det.num_states();
    for (int a = 0; a < bta.num_symbols(); ++a) {
      for (int s1 = 0; s1 < known; ++s1) {
        for (int s2 = 0; s2 < known; ++s2) {
          if (det.internal_.count({a, s1, s2}) > 0) continue;
          STAP_RETURN_IF_ERROR(Budget::ChargeSets(budget));
          StateSet combined;
          for (int q1 : det.subsets_[s1]) {
            for (int q2 : det.subsets_[s2]) {
              for (int q : bta.InternalStates(a, q1, q2)) {
                StateSetInsert(combined, q);
              }
            }
          }
          int target = intern(combined);
          det.internal_[{a, s1, s2}] = target;
          changed = true;
        }
      }
    }
  }
  STAP_RETURN_IF_ERROR(charge_status);
  return det;
}

DetBta DeterminizeBta(const Bta& bta) {
  StatusOr<DetBta> result = DeterminizeBta(bta, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

}  // namespace stap
