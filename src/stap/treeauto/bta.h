// Non-deterministic and bottom-up deterministic binary tree automata
// (paper, Section 4.4.2).
//
// Binary trees here are Tree values in which every node has zero or two
// children. Bta is the non-deterministic model with leaf transitions
// a -> q and internal transitions a(q1, q2) -> q; DetBta is the result of
// the bottom-up subset construction (complete; the empty subset acts as
// the sink).
#ifndef STAP_TREEAUTO_BTA_H_
#define STAP_TREEAUTO_BTA_H_

#include <map>
#include <tuple>
#include <vector>

#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/tree/tree.h"

namespace stap {

class Bta {
 public:
  Bta(int num_states, int num_symbols);

  int num_states() const { return num_states_; }
  int num_symbols() const { return num_symbols_; }

  int AddState();
  void AddLeafTransition(int symbol, int state);
  void AddInternalTransition(int symbol, int left, int right, int state);
  void SetFinal(int state, bool is_final = true);
  bool IsFinal(int state) const { return final_[state]; }

  const StateSet& LeafStates(int symbol) const { return leaf_[symbol]; }
  // States reachable by a(left, right); empty set if none.
  const StateSet& InternalStates(int symbol, int left, int right) const;

  // The set of states at the root of `tree` (bottom-up evaluation).
  // Require: every node has 0 or 2 children.
  StateSet EvalStates(const Tree& tree) const;

  bool Accepts(const Tree& tree) const;

  // True if no binary tree is accepted (bottom-up reachability fixpoint).
  bool IsEmpty() const;

  // Total number of transitions.
  int64_t NumTransitions() const;

 private:
  int num_states_;
  int num_symbols_;
  std::vector<StateSet> leaf_;  // per symbol
  std::map<std::tuple<int, int, int>, StateSet> internal_;
  std::vector<bool> final_;
};

// Bottom-up deterministic (and complete, via the empty-subset sink) binary
// tree automaton produced by DeterminizeBta.
class DetBta {
 public:
  int num_states() const { return static_cast<int>(subsets_.size()); }
  int num_symbols() const { return num_symbols_; }

  int LeafState(int symbol) const { return leaf_[symbol]; }
  // Successor of a(left, right); falls back to the sink when the triple
  // was never materialized (possible only for unreachable combinations).
  int InternalState(int symbol, int left, int right) const;

  bool IsFinal(int state) const { return final_[state]; }
  int sink() const { return sink_; }

  // The NFA subset a DetBta state denotes (for diagnostics).
  const StateSet& Subset(int state) const { return subsets_[state]; }

  int EvalState(const Tree& tree) const;
  bool Accepts(const Tree& tree) const;

 private:
  friend DetBta DeterminizeBta(const Bta& bta);
  friend StatusOr<DetBta> DeterminizeBta(const Bta& bta, Budget* budget);

  int num_symbols_ = 0;
  int sink_ = 0;
  std::vector<StateSet> subsets_;
  std::vector<int> leaf_;  // per symbol
  std::map<std::tuple<int, int, int>, int> internal_;
  std::vector<bool> final_;
};

// Bottom-up subset construction over the reachable subsets (exponential in
// the worst case — the paper's Section 4.4 cost).
DetBta DeterminizeBta(const Bta& bta);

// Budgeted variant: every interned subset charges the state quota and
// every materialized internal transition the set quota, so adversarial
// inputs abort with kResourceExhausted instead of exhausting memory.
// A null budget is unlimited.
StatusOr<DetBta> DeterminizeBta(const Bta& bta, Budget* budget);

}  // namespace stap

#endif  // STAP_TREEAUTO_BTA_H_
