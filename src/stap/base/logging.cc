#include "stap/base/logging.h"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "stap/base/metrics.h"
#include "stap/base/string_util.h"

namespace stap {

namespace {

void AppendInt(std::string* out, int64_t value) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

bool NeedsJsonEscape(std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

// Schema refs are almost always clean identifiers; escape only when a
// hostile one actually needs it, keeping the common path memcpy-only.
void AppendEscaped(std::string* out, std::string_view text) {
  if (NeedsJsonEscape(text)) {
    out->append(JsonEscape(text));
  } else {
    out->append(text);
  }
}

// Renders captured B/E events as completed spans with nesting depth; an
// unclosed span (capture truncated mid-tree) reports duration -1.
void AppendSpansJson(const std::vector<CaptureEvent>& events,
                     std::string* out) {
  struct Row {
    const CaptureEvent* begin;
    const CaptureEvent* end = nullptr;
    int depth = 0;
  };
  std::vector<Row> rows;
  std::vector<size_t> stack;
  for (const CaptureEvent& event : events) {
    if (event.phase == 'B') {
      rows.push_back(Row{&event, nullptr, static_cast<int>(stack.size())});
      stack.push_back(rows.size() - 1);
    } else if (!stack.empty()) {
      rows[stack.back()].end = &event;
      stack.pop_back();
    }
  }
  out->push_back('[');
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out->push_back(',');
    const Row& row = rows[i];
    out->append("{\"name\":\"");
    AppendEscaped(out, row.begin->name);
    out->append("\",\"depth\":");
    AppendInt(out, row.depth);
    out->append(",\"start_us\":");
    AppendInt(out, row.begin->ts_us);
    out->append(",\"dur_us\":");
    AppendInt(out, row.end != nullptr ? row.end->ts_us - row.begin->ts_us
                                      : -1);
    if (row.end != nullptr && row.end->num_args > 0) {
      out->append(",\"args\":{");
      for (int a = 0; a < row.end->num_args; ++a) {
        if (a > 0) out->push_back(',');
        out->push_back('"');
        AppendEscaped(out, row.end->args[a].key);
        out->append("\":");
        AppendInt(out, row.end->args[a].value);
      }
      out->push_back('}');
    }
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace

std::string TruncateForLog(std::string_view ref, size_t max_bytes) {
  if (ref.size() <= max_bytes) return std::string(ref);
  std::string out(ref.substr(0, max_bytes));
  out += "...(+";
  AppendUint(&out, ref.size() - max_bytes);
  out += " bytes)";
  return out;
}

void AppendJsonLine(const AccessRecord& record, std::string* out) {
  out->append("{\"ts_us\":");
  AppendInt(out, record.ts_us);
  out->append(",\"req\":");
  AppendUint(out, record.request_id);
  out->append(",\"id\":");
  AppendUint(out, record.client_request_id);
  out->append(",\"conn\":");
  AppendUint(out, record.conn_id);
  out->append(",\"op\":\"");
  out->append(record.op);
  out->append("\",\"schema\":\"");
  AppendEscaped(out, record.schema_ref);
  out->append("\",\"code\":\"");
  out->append(record.code);
  out->append("\",\"latency_us\":");
  AppendInt(out, record.latency_us);
  out->append(",\"states\":");
  AppendInt(out, record.budget_states);
  out->append(",\"epoch\":");
  AppendInt(out, record.snapshot_epoch);
  out->push_back('}');
}

std::string FormatJsonLine(const AccessRecord& record) {
  std::string out;
  AppendJsonLine(record, &out);
  return out;
}

AccessLogger::AccessLogger() {
  recent_.resize(options_.recent_ring);
  slow_.resize(options_.slow_ring);
}

AccessLogger::~AccessLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

bool AccessLogger::Configure(Options options, std::string* error) {
  options.recent_ring = std::max<size_t>(1, options.recent_ring);
  options.slow_ring = std::max<size_t>(1, options.slow_ring);
  std::FILE* file = nullptr;
  if (!options.file_path.empty()) {
    file = std::fopen(options.file_path.c_str(), "a");
    if (file == nullptr) {
      if (error != nullptr) {
        *error = "cannot open access log: " + options.file_path;
      }
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    options_ = std::move(options);
    recent_.assign(options_.recent_ring, AccessRecord{});
    next_recent_ = 0;
    total_ = 0;
    slow_.assign(options_.slow_ring, SlowEntry{});
    next_slow_ = 0;
    total_slow_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(file_mutex_);
    if (file_ != nullptr) std::fclose(file_);
    file_ = file;
    file_second_ = -1;
    file_lines_this_sec_ = 0;
  }
  return true;
}

void AccessLogger::WriteFileLine(const char* data, size_t size) {
  static Counter* const written = GetCounter("access_log.lines_written");
  static Counter* const dropped = GetCounter("access_log.dropped");
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (file_ == nullptr) return;
  if (options_.max_file_lines_per_sec > 0) {
    const int64_t second = MonotonicNowUs() / 1'000'000;
    if (second != file_second_) {
      file_second_ = second;
      file_lines_this_sec_ = 0;
    }
    if (file_lines_this_sec_ >= options_.max_file_lines_per_sec) {
      dropped->Increment();
      return;
    }
    ++file_lines_this_sec_;
  }
  std::fwrite(data, 1, size, file_);
  std::fputc('\n', file_);
  written->Increment();
}

void AccessLogger::Log(const AccessRecord& record) {
  // Format before taking any lock; the buffer's capacity is reused across
  // requests on this thread.
  thread_local std::string line;
  line.clear();
  AppendJsonLine(record, &line);
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    recent_[next_recent_] = record;  // slot string capacity is reused
    next_recent_ = (next_recent_ + 1) % recent_.size();
    ++total_;
  }
  WriteFileLine(line.data(), line.size());
}

void AccessLogger::LogSlow(const AccessRecord& record,
                           std::vector<CaptureEvent> spans,
                           bool spans_truncated) {
  static Counter* const slow_captured =
      GetCounter("access_log.slow_captured");
  Log(record);
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    SlowEntry& entry = slow_[next_slow_];
    entry.record = record;
    entry.spans = std::move(spans);
    entry.spans_truncated = spans_truncated;
    next_slow_ = (next_slow_ + 1) % slow_.size();
    ++total_slow_;
  }
  slow_captured->Increment();
}

void AccessLogger::Flush() {
  std::lock_guard<std::mutex> lock(file_mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

std::string AccessLogger::ToJson() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  std::string out = "{\"recent\":[";
  const uint64_t recent_count =
      std::min<uint64_t>(total_, recent_.size());
  for (uint64_t i = 0; i < recent_count; ++i) {
    // Oldest first: walk forward from the slot after the newest entry.
    const size_t slot =
        (next_recent_ + recent_.size() - recent_count + i) % recent_.size();
    if (i > 0) out.push_back(',');
    out.push_back('\n');
    AppendJsonLine(recent_[slot], &out);
  }
  out.append("\n],\"slow\":[");
  const uint64_t slow_count = std::min<uint64_t>(total_slow_, slow_.size());
  for (uint64_t i = 0; i < slow_count; ++i) {
    const size_t slot =
        (next_slow_ + slow_.size() - slow_count + i) % slow_.size();
    const SlowEntry& entry = slow_[slot];
    if (i > 0) out.push_back(',');
    out.append("\n{\"request\":");
    AppendJsonLine(entry.record, &out);
    out.append(",\"spans_truncated\":");
    out.append(entry.spans_truncated ? "true" : "false");
    out.append(",\"spans\":");
    AppendSpansJson(entry.spans, &out);
    out.push_back('}');
  }
  out.append("\n]}\n");
  return out;
}

uint64_t AccessLogger::total_logged() const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  return total_;
}

}  // namespace stap
