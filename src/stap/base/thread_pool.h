// A fixed-size thread pool with one shared FIFO queue — deliberately
// work-stealing-free. The approximation pipeline's parallel units (one
// content-model inclusion check, one exchange closure, one product
// content construction) are coarse, so a mutex-guarded queue is nowhere
// near the bottleneck and keeps the pool small enough to audit.
//
// ParallelFor is the primary entry point: the calling thread participates
// in draining the index range, so a pool with zero workers (or a null
// pool via the static overload) degrades to the plain serial loop, and a
// saturated pool can never deadlock a caller — the caller only waits for
// indexes that some thread has actually claimed.
#ifndef STAP_BASE_THREAD_POOL_H_
#define STAP_BASE_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

class ThreadPool {
 public:
  // Spawns max(num_threads, 0) worker threads. A pool with zero workers
  // is valid: Submit runs tasks inline and ParallelFor loops serially.
  explicit ThreadPool(int num_threads) {
    workers_.reserve(num_threads > 0 ? num_threads : 0);
    for (int i = 0; i < num_threads; ++i) {
      // Workers get stable names: the OS sees them in top/gdb, and the
      // trace layer labels each worker's track with it. Named before the
      // loop starts so any session the worker ever records into sees it.
      workers_.emplace_back([this, i] {
        SetCurrentThreadName("stap-worker-" + std::to_string(i));
        WorkerLoop();
      });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // A sensible worker count for CPU-bound sweeps on this machine. The
  // STAP_THREADS environment variable overrides the hardware count —
  // CI runners and benchmark jobs pin it for reproducible parallelism
  // (STAP_THREADS=0 forces every sweep serial). Unparseable or negative
  // values are ignored.
  static int DefaultThreads() {
    if (const char* env = std::getenv("STAP_THREADS")) {
      char* end = nullptr;
      long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed >= 0 && parsed <= 1024) {
        return static_cast<int>(parsed);
      }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  // Enqueues a task; runs it inline when the pool has no workers. Tasks
  // must not throw.
  void Submit(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
  }

  // Runs fn(0), …, fn(n-1), in any order, possibly concurrently. Returns
  // once every index has finished. Reentrant-safe: the caller drains
  // indexes itself and never blocks on unstarted queue entries.
  void ParallelFor(int n, const std::function<void(int)>& fn) {
    if (n <= 0) return;
    CountSweep(n);
    ScopedSpan span("pool.parallel_for");
    span.AddArg("n", n);
    const int helpers =
        std::min(static_cast<int>(workers_.size()), n - 1);
    span.AddArg("helpers", helpers);
    if (helpers == 0) {
      for (int i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<ForState>();
    state->n = n;
    state->fn = &fn;
    for (int t = 0; t < helpers; ++t) {
      Submit([state] { state->Drain(); });
    }
    state->Drain();
    // All indexes are claimed once Drain returns; wait for claimed ones
    // still in flight on other threads. Workers that dequeue the task
    // after this point see next >= n and return untouched.
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&] { return state->completed == n; });
  }

  // Null-tolerant convenience: serial loop when `pool` is null.
  static void ParallelFor(ThreadPool* pool, int n,
                          const std::function<void(int)>& fn) {
    if (pool == nullptr) {
      if (n <= 0) return;
      CountSweep(n);
      ScopedSpan span("pool.parallel_for");
      span.AddArg("n", n);
      span.AddArg("helpers", 0);
      for (int i = 0; i < n; ++i) fn(i);
    } else {
      pool->ParallelFor(n, fn);
    }
  }

 private:
  // Sweep accounting for the metrics dump: how many ParallelFor ranges
  // ran (pooled or serial) and how many per-index tasks they covered.
  static void CountSweep(int n) {
    static Counter* const sweeps = GetCounter("pool.parallel_for_calls");
    static Counter* const tasks = GetCounter("pool.tasks_run");
    sweeps->Increment();
    tasks->Increment(n);
  }
  struct ForState {
    std::atomic<int> next{0};
    int n = 0;
    const std::function<void(int)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable done_cv;
    int completed = 0;  // guarded by mutex

    void Drain() {
      // One span per participating thread, not per index: the chunk is
      // the unit of scheduling, and per-index spans would swamp small
      // tasks. Worker chunks appear on their own named tracks.
      ScopedSpan span("pool.chunk");
      int claimed = 0;
      while (true) {
        int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        (*fn)(i);
        ++claimed;
      }
      span.AddArg("claimed", claimed);
      span.End();
      if (claimed > 0) {
        std::unique_lock<std::mutex> lock(mutex);
        completed += claimed;
        if (completed == n) done_cv.notify_all();
      }
    }
  };

  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown with an empty queue
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace stap

#endif  // STAP_BASE_THREAD_POOL_H_
