// Structured access logging for the serve daemon: one JSONL record per
// request, kept in bounded in-memory rings and optionally appended to a
// file.
//
// Metrics aggregate, traces profile a whole process run; the access log is
// the per-request record in between — the thing an operator greps to
// answer "which schema ref caused that EXHAUSTED at 14:03". Each record
// carries the server-assigned monotonic request id, connection id, op,
// schema ref, response code, budget charge, latency, and the snapshot
// epoch the request was served under.
//
// Cost contract (the logger sits on the serve hot path, budgeted at a few
// hundred ns per request):
//  * the JSONL line is formatted into a thread-local reusable buffer
//    before any lock is taken; integer fields use to_chars and the schema
//    ref is escaped only when it actually contains JSON-significant bytes;
//  * the recent ring holds plain records in preallocated slots whose
//    string capacity is reused, so steady-state logging does not allocate;
//  * the file sink appends under its own mutex through stdio buffering,
//    shedding lines (counted in `access_log.dropped`) past a per-second
//    budget so a overloaded daemon can't drown in its own log.
//
// Requests slower than the configured threshold additionally keep their
// captured span tree (base/trace.h RequestCapture) in a separate slow
// ring; /requestz serves both rings as JSON.
#ifndef STAP_BASE_LOGGING_H_
#define STAP_BASE_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stap/base/trace.h"

namespace stap {

// One request's worth of access-log fields. `op` and `code` point at
// static strings (opcode / response-code names); `schema_ref` is expected
// to be pre-truncated with TruncateForLog.
struct AccessRecord {
  int64_t ts_us = 0;            // wall clock, unix epoch microseconds
  uint64_t request_id = 0;      // server-assigned, monotonic per process
  uint64_t client_request_id = 0;  // id echoed from the request frame
  uint64_t conn_id = 0;
  const char* op = "";
  std::string schema_ref;
  const char* code = "";
  int64_t latency_us = 0;
  int64_t budget_states = 0;  // states charged against the request budget
  int64_t snapshot_epoch = 0;
};

// Caps a schema ref for logging: refs longer than `max_bytes` keep a
// prefix plus a "...(+N bytes)" marker, so an oversized hostile inline
// schema can't balloon the ring or the log file.
std::string TruncateForLog(std::string_view ref, size_t max_bytes = 128);

// Appends `record` as one JSON object (no trailing newline) to `*out`.
// Output is always valid JSON whatever bytes the schema ref contains.
void AppendJsonLine(const AccessRecord& record, std::string* out);
std::string FormatJsonLine(const AccessRecord& record);

class AccessLogger {
 public:
  struct Options {
    // JSONL sink path; empty keeps the log in-memory only.
    std::string file_path;
    // Ring capacities for /requestz.
    size_t recent_ring = 256;
    size_t slow_ring = 64;
    // Requests with latency strictly above this keep their span tree in
    // the slow ring; 0 disables slow capture.
    int64_t slow_threshold_us = 0;
    // File-sink budget; lines past it in one second are dropped (counted
    // in access_log.dropped). 0 means unlimited.
    int64_t max_file_lines_per_sec = 100000;
  };

  AccessLogger();
  ~AccessLogger();
  AccessLogger(const AccessLogger&) = delete;
  AccessLogger& operator=(const AccessLogger&) = delete;

  // Applies options and opens the file sink. Call before concurrent
  // logging starts; returns false (with *error set) if the file can't be
  // opened.
  bool Configure(Options options, std::string* error);

  const Options& options() const { return options_; }

  // True when requests should run under a RequestCapture at all.
  bool capture_slow() const { return options_.slow_threshold_us > 0; }

  // The slow-ring admission test: strictly above the threshold. A request
  // at exactly slow_threshold_us is not slow.
  bool IsSlow(int64_t latency_us) const {
    return options_.slow_threshold_us > 0 &&
           latency_us > options_.slow_threshold_us;
  }

  // Records one request into the recent ring and the file sink.
  void Log(const AccessRecord& record);

  // Same, plus stores the request's span tree in the slow ring.
  void LogSlow(const AccessRecord& record, std::vector<CaptureEvent> spans,
               bool spans_truncated);

  // Flushes the file sink (no-op without one).
  void Flush();

  // {"recent": [...], "slow": [{"request": {...}, "spans": [...]}]} —
  // oldest first within each ring. Slow spans are exported as completed
  // spans with depth/start/duration, paired from the B/E event stream.
  std::string ToJson() const;

  uint64_t total_logged() const;

 private:
  struct SlowEntry {
    AccessRecord record;
    std::vector<CaptureEvent> spans;
    bool spans_truncated = false;
  };

  void WriteFileLine(const char* data, size_t size);

  Options options_;

  mutable std::mutex ring_mutex_;
  std::vector<AccessRecord> recent_;   // fixed-size slots, wrap at next_
  size_t next_recent_ = 0;
  uint64_t total_ = 0;
  std::vector<SlowEntry> slow_;
  size_t next_slow_ = 0;
  uint64_t total_slow_ = 0;

  std::mutex file_mutex_;
  std::FILE* file_ = nullptr;
  int64_t file_second_ = -1;       // rate-limit window (monotonic seconds)
  int64_t file_lines_this_sec_ = 0;
};

}  // namespace stap

#endif  // STAP_BASE_LOGGING_H_
