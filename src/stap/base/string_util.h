// Small string helpers shared by parsers and printers.
#ifndef STAP_BASE_STRING_UTIL_H_
#define STAP_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace stap {

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `input` on `sep`, dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view input, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

// True if `input` starts with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

// Escapes the JSON-significant characters (quote, backslash, control
// bytes) so `input` can sit inside a JSON string literal. Used by the
// metrics and trace dumps, whose names are programmer-chosen but whose
// output must always parse.
std::string JsonEscape(std::string_view input);

}  // namespace stap

#endif  // STAP_BASE_STRING_UTIL_H_
