#include "stap/base/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "stap/base/check.h"
#include "stap/base/string_util.h"

#if defined(__linux__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace stap {

namespace trace_internal {
std::atomic<TraceSession*> g_active_session{nullptr};
thread_local RequestCapture* t_active_capture = nullptr;
}  // namespace trace_internal

namespace {

// Monotone session stamp: Start() assigns the next value, and the
// thread-local buffer cache keys on it, so a thread never writes into a
// buffer belonging to an earlier session that happens to share the
// address of the current one.
std::atomic<uint64_t> g_next_generation{1};

uint64_t CurrentThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id = next.fetch_add(1);
  return id;
}

std::string& ThreadNameStorage() {
  thread_local std::string name;
  return name;
}

struct ThreadBufferCache {
  uint64_t generation = 0;
  TraceSession::ThreadBuffer* buffer = nullptr;
};

ThreadBufferCache& BufferCache() {
  thread_local ThreadBufferCache cache;
  return cache;
}

void AppendJsonValue(std::ostringstream* os, const TraceArgValue& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    *os << *i;
  } else if (const auto* d = std::get_if<double>(&value)) {
    if (std::isfinite(*d)) {
      *os << *d;
    } else {
      *os << 0;  // JSON has no NaN/Inf literals
    }
  } else {
    *os << '"' << JsonEscape(std::get<std::string>(value)) << '"';
  }
}

}  // namespace

void SetCurrentThreadName(std::string name) {
  ThreadNameStorage() = std::move(name);
#if defined(__linux__)
  // The kernel limit is 16 bytes including the terminator; longer names
  // make pthread_setname_np fail, so truncate instead.
  std::string os_name = ThreadNameStorage().substr(0, 15);
  pthread_setname_np(pthread_self(), os_name.c_str());
#elif defined(__APPLE__)
  pthread_setname_np(ThreadNameStorage().c_str());
#endif
}

std::string CurrentThreadName() {
  const std::string& name = ThreadNameStorage();
  if (!name.empty()) return name;
  return "thread-" + std::to_string(CurrentThreadId());
}

TraceSession::~TraceSession() { Stop(); }

void TraceSession::Start() {
  STAP_CHECK(ActiveTraceSession() == nullptr);
  start_ = std::chrono::steady_clock::now();
  generation_ = g_next_generation.fetch_add(1);
  trace_internal::g_active_session.store(this, std::memory_order_release);
}

void TraceSession::Stop() {
  TraceSession* expected = this;
  trace_internal::g_active_session.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel);
}

TraceSession::ThreadBuffer* TraceSession::BufferForCurrentThread() {
  ThreadBufferCache& cache = BufferCache();
  if (cache.generation == generation_) return cache.buffer;
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = CurrentThreadId();
  buffer->thread_name = CurrentThreadName();
  ThreadBuffer* raw = buffer.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
  }
  cache.generation = generation_;
  cache.buffer = raw;
  return raw;
}

std::vector<TraceSession::ThreadTrace> TraceSession::Snapshot() const {
  std::vector<ThreadTrace> result;
  std::lock_guard<std::mutex> lock(mutex_);
  result.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    ThreadTrace trace{buffer->tid, buffer->thread_name, {}};
    size_t total = 0;
    for (const auto& block : buffer->blocks) total += block.size();
    trace.events.reserve(total);
    for (const auto& block : buffer->blocks) {
      trace.events.insert(trace.events.end(), block.begin(), block.end());
    }
    result.push_back(std::move(trace));
  }
  return result;
}

std::string TraceSession::ToChromeJson() const {
  const std::vector<ThreadTrace> threads = Snapshot();
  std::ostringstream os;
  os.precision(17);
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const ThreadTrace& thread : threads) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << thread.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << JsonEscape(thread.thread_name) << "\"}}";
  }
  for (const ThreadTrace& thread : threads) {
    for (const TraceEvent& event : thread.events) {
      sep();
      os << "{\"ph\":\"" << event.phase << "\",\"pid\":1,\"tid\":"
         << thread.tid << ",\"ts\":" << event.ts_us;
      if (event.phase == 'B') {
        os << ",\"cat\":\"stap\",\"name\":\"" << JsonEscape(event.name)
           << '"';
      }
      if (!event.args.empty()) {
        os << ",\"args\":{";
        for (size_t i = 0; i < event.args.size(); ++i) {
          if (i > 0) os << ',';
          os << '"' << JsonEscape(event.args[i].first) << "\":";
          AppendJsonValue(&os, event.args[i].second);
        }
        os << '}';
      }
      os << '}';
    }
  }
  os << "]}\n";
  return os.str();
}

std::vector<TraceSession::PhaseRow> TraceSession::PhaseTable(
    int max_depth) const {
  std::vector<PhaseRow> rows;
  std::map<std::pair<int, std::string>, size_t> row_index;
  // Per-thread open-span stack entry: the row the span feeds (or npos
  // when deeper than max_depth) and its begin timestamp.
  struct Open {
    size_t row;
    int64_t begin_us;
  };
  constexpr size_t kNoRow = static_cast<size_t>(-1);
  for (const ThreadTrace& thread : Snapshot()) {
    std::vector<Open> stack;
    for (const TraceEvent& event : thread.events) {
      if (event.phase == 'B') {
        const int depth = static_cast<int>(stack.size());
        size_t row = kNoRow;
        if (depth < max_depth) {
          auto [it, inserted] =
              row_index.try_emplace({depth, event.name}, rows.size());
          if (inserted) {
            rows.push_back(PhaseRow{event.name, depth, 0, 0, {}});
          }
          row = it->second;
        }
        stack.push_back(Open{row, event.ts_us});
        continue;
      }
      if (event.phase != 'E' || stack.empty()) continue;
      const Open open = stack.back();
      stack.pop_back();
      if (open.row == kNoRow) continue;
      PhaseRow& row = rows[open.row];
      ++row.count;
      row.wall_ms += static_cast<double>(event.ts_us - open.begin_us) / 1e3;
      for (const TraceArg& arg : event.args) {
        if (const auto* i = std::get_if<int64_t>(&arg.second)) {
          auto it = std::find_if(
              row.int_args.begin(), row.int_args.end(),
              [&](const auto& entry) { return entry.first == arg.first; });
          if (it == row.int_args.end()) {
            row.int_args.emplace_back(arg.first, *i);
          } else {
            it->second += *i;
          }
        }
      }
    }
  }
  return rows;
}

std::string TraceSession::FormatPhaseTable(
    const std::vector<PhaseRow>& rows) {
  constexpr int kNameWidth = 34;
  std::ostringstream os;
  os << "phase";
  for (int i = 5; i < kNameWidth; ++i) os << ' ';
  os << "  calls    wall ms  detail\n";
  for (const PhaseRow& row : rows) {
    std::string name(static_cast<size_t>(row.depth) * 2, ' ');
    name += row.name;
    if (static_cast<int>(name.size()) > kNameWidth) {
      name.resize(kNameWidth);
    }
    os << name;
    for (int i = static_cast<int>(name.size()); i < kNameWidth; ++i) {
      os << ' ';
    }
    std::string calls = std::to_string(row.count);
    for (int i = static_cast<int>(calls.size()); i < 7; ++i) os << ' ';
    os << calls;
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%10.2f", row.wall_ms);
    os << wall << "  ";
    bool first = true;
    for (const auto& [key, value] : row.int_args) {
      if (!first) os << ' ';
      os << key << '=' << value;
      first = false;
    }
    os << '\n';
  }
  return os.str();
}

namespace {

// Bounded copy into a fixed char field; always NUL-terminates.
void CopyTruncated(char* dst, size_t dst_bytes, std::string_view src) {
  const size_t n = std::min(src.size(), dst_bytes - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

void RequestCapture::Begin() {
  // First use on a thread reserves the buffer once; every later request
  // on the thread reuses the capacity, so steady-state Begin/Abort cycles
  // never allocate.
  if (events_.capacity() < kMaxEvents) events_.reserve(kMaxEvents);
  events_.clear();
  truncated_ = false;
  active_ = true;
  start_ = std::chrono::steady_clock::now();
  trace_internal::t_active_capture = this;
}

void RequestCapture::Abort() {
  active_ = false;
  events_.clear();
  if (trace_internal::t_active_capture == this) {
    trace_internal::t_active_capture = nullptr;
  }
}

std::vector<CaptureEvent> RequestCapture::Detach() {
  active_ = false;
  if (trace_internal::t_active_capture == this) {
    trace_internal::t_active_capture = nullptr;
  }
  std::vector<CaptureEvent> out = std::move(events_);
  events_ = {};
  return out;
}

void RequestCapture::AppendBegin(std::string_view name) {
  if (!active_) return;
  if (events_.size() >= kMaxEvents) {
    truncated_ = true;
    return;
  }
  CaptureEvent& event = events_.emplace_back();
  event.phase = 'B';
  event.ts_us = NowUs();
  CopyTruncated(event.name, sizeof(event.name), name);
}

void RequestCapture::AppendEnd(const CaptureEvent::Arg* args, int num_args) {
  if (!active_) return;
  if (events_.size() >= kMaxEvents) {
    truncated_ = true;
    return;
  }
  CaptureEvent& event = events_.emplace_back();
  event.phase = 'E';
  event.ts_us = NowUs();
  event.num_args = std::min(num_args, CaptureEvent::kMaxArgs);
  for (int i = 0; i < event.num_args; ++i) event.args[i] = args[i];
}

RequestCapture* ThreadRequestCapture() {
  thread_local RequestCapture capture;
  return &capture;
}

void ScopedSpan::Begin(std::string_view name) {
  if (session_ != nullptr) {
    buffer_ = session_->BufferForCurrentThread();
    buffer_->Append(
        TraceEvent{'B', std::string(name), session_->NowUs(), {}});
  }
  if (capture_ != nullptr) capture_->AppendBegin(name);
}

void ScopedSpan::End() {
  if (session_ != nullptr) {
    buffer_->Append(
        TraceEvent{'E', std::string(), session_->NowUs(), std::move(args_)});
    session_ = nullptr;
  }
  if (capture_ != nullptr) {
    capture_->AppendEnd(capture_args_, num_capture_args_);
    capture_ = nullptr;
  }
}

void ScopedSpan::AddCaptureArg(std::string_view key, int64_t value) {
  if (num_capture_args_ >= CaptureEvent::kMaxArgs) return;
  CaptureEvent::Arg& arg = capture_args_[num_capture_args_++];
  CopyTruncated(arg.key, sizeof(arg.key), key);
  arg.value = value;
}

}  // namespace stap
