#include "stap/base/compile_cache.h"

#include <utility>

#include "stap/automata/state_set_hash.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

namespace {

// Chained splitmix64 over raw bytes, same mixer as HashIntSpan so the
// whole codebase shares one hash family.
uint64_t HashBytes(uint64_t seed, std::string_view bytes) {
  uint64_t h = seed ^ (bytes.size() * 0x9e3779b97f4a7c15ull);
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i + b]))
              << (8 * b);
    }
    h = MixU64(h ^ word);
  }
  uint64_t tail = 0;
  for (int b = 0; i + b < bytes.size(); ++b) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i + b]))
            << (8 * b);
  }
  if (bytes.size() % 8 != 0) h = MixU64(h ^ tail);
  return h;
}

void AppendLengthPrefixed(std::string* out, std::string_view piece) {
  out->append(std::to_string(piece.size()));
  out->push_back(':');
  out->append(piece);
}

}  // namespace

ContentModelKey MakeContentModelKey(std::string_view regex_source,
                                    const Alphabet& types) {
  ContentModelKey key;
  key.canonical.reserve(regex_source.size() + 16 * types.size());
  AppendLengthPrefixed(&key.canonical, regex_source);
  for (const std::string& name : types.names()) {
    AppendLengthPrefixed(&key.canonical, name);
  }
  key.hash = HashBytes(0x7374617063616368ull /* "stapcach" */, key.canonical);
  return key;
}

CompileCache::CompileCache(int num_shards) {
  uint64_t shards = 1;
  while (shards < static_cast<uint64_t>(num_shards > 0 ? num_shards : 1)) {
    shards <<= 1;
  }
  num_shards_ = shards;
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

StatusOr<std::shared_ptr<const Dfa>> CompileCache::GetOrCompile(
    const ContentModelKey& key, const Compiler& compile) {
  static Counter* const hits = GetCounter("cache.hit");
  static Counter* const misses = GetCounter("cache.miss");
  static Counter* const inserts = GetCounter("cache.insert");
  static Counter* const retries = GetCounter("cache.retry");

  Shard& shard = ShardFor(key.hash);
  std::shared_ptr<Entry> entry;
  bool owner = false;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.map.find(key.canonical);
      if (it == shard.map.end()) {
        entry = std::make_shared<Entry>();
        shard.map.emplace(key.canonical, entry);
        owner = true;
      } else {
        entry = it->second;
      }
    }
    if (owner) break;

    hits->Increment();
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->cv.wait(lock, [&] { return entry->done; });
    if (entry->status.ok()) return entry->value;
    // The owner's compilation failed. Its failure may be specific to the
    // owner (a tight per-request budget that ran out mid-compile), so
    // inheriting it would poison every concurrent request for this
    // content model. The owner un-published the entry before waking us;
    // re-enter the lookup and compile with our own resources instead.
    retries->Increment();
  }

  misses->Increment();
  StatusOr<Dfa> compiled = [&] {
    ScopedSpan span("cache.compile");
    return compile();
  }();

  if (!compiled.ok()) {
    // Un-publish before waking waiters so the next arrival retries the
    // compilation instead of observing the stale failed entry. Shard and
    // entry locks are never held together (lock-order discipline).
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.map.find(key.canonical);
      if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
    }
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      entry->status = compiled.status();
      entry->done = true;
    }
    entry->cv.notify_all();
    return compiled.status();
  }

  auto value = std::make_shared<const Dfa>(std::move(*compiled));
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->value = value;
    entry->done = true;
  }
  entry->cv.notify_all();
  inserts->Increment();
  return value;
}

int64_t CompileCache::size() const {
  int64_t total = 0;
  for (uint64_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += static_cast<int64_t>(shards_[s].map.size());
  }
  return total;
}

void CompileCache::Clear() {
  for (uint64_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].map.clear();
  }
}

CompileCache* CompileCache::Global() {
  static CompileCache* const cache = new CompileCache();
  return cache;
}

}  // namespace stap
