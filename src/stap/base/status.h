// Lightweight Status / StatusOr error handling.
//
// The library does not use exceptions (per the style guide); every fallible
// operation returns a Status or StatusOr<T>. Internal invariant violations
// use the check macros from base/check.h instead.
#ifndef STAP_BASE_STATUS_H_
#define STAP_BASE_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace stap {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
};

// Returns a short human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// Value-semantic result of an operation that can fail.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);

// Union of a Status and a value: holds a T exactly when the status is OK.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return SomeError(...);`.
  StatusOr(const T& value) : value_(value) {}           // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}     // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Require: ok(). Checked in debug builds via the optional access.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace stap

// Propagates a non-OK status to the caller.
#define STAP_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::stap::Status stap_status_ = (expr);         \
    if (!stap_status_.ok()) return stap_status_;  \
  } while (false)

#endif  // STAP_BASE_STATUS_H_
