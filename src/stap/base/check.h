// Internal invariant checks. STAP_CHECK aborts the process with a message
// when the condition fails; it is always on (correctness of the
// approximation algorithms matters more than the branch cost).
#ifndef STAP_BASE_CHECK_H_
#define STAP_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define STAP_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "STAP_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define STAP_CHECK_OK(expr)                                                \
  do {                                                                     \
    const ::stap::Status stap_check_status_ = (expr);                      \
    if (!stap_check_status_.ok()) {                                        \
      std::fprintf(stderr, "STAP_CHECK_OK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, stap_check_status_.ToString().c_str());       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // STAP_BASE_CHECK_H_
