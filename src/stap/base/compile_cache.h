// A sharded, thread-safe memo for compiled content models.
//
// Every schema load pays Glushkov → determinize → minimize per content
// model, and a serving process loads the same handful of schemas from
// many threads. This cache makes each distinct content model compile
// exactly once per process: concurrent requests for the same key either
// perform the compilation (the first arrival) or block until the owner
// publishes the result, so a batch of workers warming up on one schema
// does the expensive work once instead of N times.
//
// Keys are canonicalized content models: the regex source text plus the
// ordered type-alphabet names it ranges over (the same source over a
// different alphabet compiles to a different DFA). The 64-bit key hash
// (built from the same splitmix64 mixer as state_set_hash.h) picks the
// shard; exact equality on the canonical string resolves hash collisions,
// so a collision can never serve the wrong DFA.
//
// Failure is not cached, and it is not inherited either: a compilation
// that returns an error (budget exhaustion, parse error) is reported to
// the owner that ran it, the entry is removed, and every thread that was
// blocked on the in-flight entry re-enters the lookup and compiles with
// its own resources. A transient failure — one request's tight budget
// running out mid-compile — therefore cannot poison concurrent requests
// for the same content model; each caller only ever observes its own
// compiler's verdict.
//
// Instrumentation: `cache.hit` counts lookups that found an entry
// (ready or in-flight), `cache.miss` lookups that had to start a
// compilation, `cache.insert` compiled values actually published — so
// `cache.insert` equals the number of distinct keys ever compiled, which
// the concurrency tests assert — and `cache.retry` waiters that observed
// an owner failure and re-entered the lookup.
#ifndef STAP_BASE_COMPILE_CACHE_H_
#define STAP_BASE_COMPILE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "stap/automata/alphabet.h"
#include "stap/automata/dfa.h"
#include "stap/base/status.h"

namespace stap {

// A canonicalized cache key: `hash` routes to a shard, `canonical` is the
// exact identity (hash collisions fall back to string equality).
struct ContentModelKey {
  uint64_t hash = 0;
  std::string canonical;
};

// Builds the canonical key for a content regex over a type alphabet.
// Length-prefixed concatenation, so no (source, names) ambiguity.
ContentModelKey MakeContentModelKey(std::string_view regex_source,
                                    const Alphabet& types);

class CompileCache {
 public:
  // Produces the value for a key on a miss. Must be safe to run on
  // whichever thread arrives first; errors are reported, not cached.
  using Compiler = std::function<StatusOr<Dfa>()>;

  // `num_shards` is rounded up to a power of two (at least 1).
  explicit CompileCache(int num_shards = 16);

  CompileCache(const CompileCache&) = delete;
  CompileCache& operator=(const CompileCache&) = delete;

  // Returns the DFA for `key`, invoking `compile` exactly once per key
  // across all threads while compilation succeeds. Concurrent callers
  // for the same key block until the first caller's compilation finishes
  // and then share its result; if that compilation fails, each blocked
  // caller retries the lookup (typically becoming the new owner) so a
  // non-OK return always reflects the caller's own `compile`.
  StatusOr<std::shared_ptr<const Dfa>> GetOrCompile(const ContentModelKey& key,
                                                    const Compiler& compile);

  // Number of entries (ready or in-flight) across all shards.
  int64_t size() const;

  // Drops every entry. Not linearizable against concurrent GetOrCompile
  // calls (in-flight compilations still publish to their waiters); meant
  // for tests and explicit cache invalidation between workloads.
  void Clear();

  // The process-wide cache used by the CLI and the batch driver.
  static CompileCache* Global();

 private:
  struct Entry {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;           // guarded by mutex
    Status status;               // guarded by mutex; non-OK = failed
    std::shared_ptr<const Dfa> value;  // guarded by mutex until done
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map;
  };

  Shard& ShardFor(uint64_t hash) {
    return shards_[hash & (num_shards_ - 1)];
  }

  uint64_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace stap

#endif  // STAP_BASE_COMPILE_CACHE_H_
