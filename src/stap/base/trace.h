// Structured tracing: nested spans with typed args, exported as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) and as a
// per-phase provenance table (`stap explain`).
//
// Metrics (base/metrics.h) answer "how much, in total"; spans answer
// "where, and when". A TraceSession collects begin/end events from every
// thread that touches the pipeline — one RAII ScopedSpan per phase,
// annotated with the numbers that phase is about (state counts, frontier
// sizes, budget charge) — so the exponential blowups the paper predicts
// (Theorems 3.2/3.6/3.8) show up as visibly wide slices on a timeline
// rather than as an opaque end-of-run total.
//
// Cost contract:
//  * No session active: constructing a ScopedSpan is one relaxed-ish
//    atomic load; AddArg and the destructor are branches on a cached
//    null. Hot paths may leave spans in place unconditionally.
//  * Session active: events append to a per-thread buffer owned by the
//    session — the only lock is taken once per (thread, session) pair at
//    buffer registration, never per event.
//
// Lifetime contract: exactly one session is active at a time (Start
// aborts if another session is live). A ScopedSpan binds to the session
// active at its construction and writes its end event there even if the
// session is stopped in between — so Stop() never unbalances B/E pairs —
// but the session object must outlive every span opened under it.
// Export (ToChromeJson / PhaseTable) is safe once the traced work has
// finished; it snapshots the buffers under the registration lock.
//
//   TraceSession session;
//   session.Start();
//   {
//     ScopedSpan span("determinize");
//     span.AddArg("nfa_states", nfa.num_states());
//     ...
//   }
//   session.Stop();
//   std::ofstream("trace.json") << session.ToChromeJson();
#ifndef STAP_BASE_TRACE_H_
#define STAP_BASE_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace stap {

class TraceSession;

namespace trace_internal {
extern std::atomic<TraceSession*> g_active_session;
}  // namespace trace_internal

// The session spans bind to, or null when tracing is off. Acquire pairs
// with the release in Start() so a thread that sees the session also
// sees it fully constructed.
inline TraceSession* ActiveTraceSession() {
  return trace_internal::g_active_session.load(std::memory_order_acquire);
}

// Names the calling thread for its trace track (and for the OS via
// pthread_setname_np where available, truncated to the platform limit).
// Call before the thread records its first event: a session snapshots
// the name when the thread registers its buffer.
void SetCurrentThreadName(std::string name);

// The name set above, or "thread-<id>" if none was set.
std::string CurrentThreadName();

// Typed span argument; integers and doubles stay numbers in the JSON.
using TraceArgValue = std::variant<int64_t, double, std::string>;
using TraceArg = std::pair<std::string, TraceArgValue>;

struct TraceEvent {
  char phase = 'B';  // 'B' = begin, 'E' = end
  std::string name;  // empty on 'E' (the viewer matches by nesting)
  int64_t ts_us = 0;  // microseconds since session start
  std::vector<TraceArg> args;
};

class TraceSession {
 public:
  TraceSession() = default;
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Installs this session as the process-wide active one and starts the
  // clock. Aborts if another session is already active.
  void Start();

  // Deactivates the session; already-open spans still record their end
  // events here (see the lifetime contract above). Idempotent.
  void Stop();

  bool active() const {
    return ActiveTraceSession() == this;
  }

  // All events of one thread, in recording order.
  struct ThreadTrace {
    uint64_t tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> events;
  };

  // Copies out every thread's events. Call after the traced work has
  // finished; threads registered first come first.
  std::vector<ThreadTrace> Snapshot() const;

  // {"traceEvents":[...]} — one thread_name metadata record per thread,
  // then the B/E events. Valid JSON whatever the span names/args.
  std::string ToChromeJson() const;

  // Provenance rollup: spans aggregated by (nesting depth, name) in
  // first-appearance order, depths beyond `max_depth` folded into their
  // ancestors. Integer args are summed across a row's spans; wall time
  // is the sum of span durations (concurrent spans can exceed the
  // session's wall clock).
  struct PhaseRow {
    std::string name;
    int depth = 0;
    int64_t count = 0;
    double wall_ms = 0;
    std::vector<std::pair<std::string, int64_t>> int_args;
  };
  std::vector<PhaseRow> PhaseTable(int max_depth = 2) const;

  // Human-readable fixed-width rendering of PhaseTable.
  static std::string FormatPhaseTable(const std::vector<PhaseRow>& rows);

  // --- recording interface, used by ScopedSpan ---

  // The calling thread's event buffer, registered on first use. The
  // returned buffer is appended to only by its owning thread. Events are
  // stored in fixed-capacity blocks so an append never relocates earlier
  // events — long recordings (benchmark loops) stay O(1) per event with
  // no realloc copy storms.
  struct ThreadBuffer {
    static constexpr size_t kBlockEvents = 4096;
    uint64_t tid = 0;
    std::string thread_name;
    std::vector<std::vector<TraceEvent>> blocks;

    void Append(TraceEvent event) {
      if (blocks.empty() || blocks.back().size() == kBlockEvents) {
        blocks.emplace_back();
        blocks.back().reserve(kBlockEvents);
      }
      blocks.back().push_back(std::move(event));
    }
  };
  ThreadBuffer* BufferForCurrentThread();

  // Microseconds since Start().
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_{};
  uint64_t generation_ = 0;  // nonzero once started; keys the TL cache

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  // guarded by mutex_
};

// --- per-request slow-span capture --------------------------------------
//
// A TraceSession records whole-process sessions; a RequestCapture records
// the span tree of ONE request on ONE thread, cheaply enough to run on
// every request, so the serve daemon can retroactively keep the trace of a
// request that turned out slow. Events use fixed-size storage and a
// pre-reserved buffer: a request that stays under the slow threshold is
// Abort()ed without touching the heap (the buffer's capacity is reused
// across requests on the thread); only Detach() of a slow request moves
// the events out. Spans opened on other threads (pool workers fanned out
// by the request) are deliberately not captured — the capture is
// per-thread, and the request thread's own span tree already shows where
// the time went.

// Fixed-size capture record: long names and string/double args are
// dropped or truncated rather than allocated.
struct CaptureEvent {
  static constexpr int kNameBytes = 24;
  static constexpr int kKeyBytes = 16;
  static constexpr int kMaxArgs = 4;

  struct Arg {
    char key[kKeyBytes] = {};
    int64_t value = 0;
  };

  char phase = 'B';    // 'B' = begin, 'E' = end
  int64_t ts_us = 0;   // microseconds since capture start
  char name[kNameBytes] = {};  // 'B' only, NUL-terminated, truncated
  int num_args = 0;            // 'E' only
  Arg args[kMaxArgs] = {};
};

// One thread's reusable capture buffer. Begin() installs it as the
// thread's active capture (visible to ScopedSpan via
// ActiveRequestCapture()); Abort() throws the events away allocation-free;
// Detach() uninstalls and hands the events to the caller. Events past
// kMaxEvents are dropped and truncated() reports it.
class RequestCapture {
 public:
  static constexpr size_t kMaxEvents = 256;

  void Begin();
  void Abort();
  std::vector<CaptureEvent> Detach();

  bool active() const { return active_; }
  bool truncated() const { return truncated_; }

  // Microseconds since Begin().
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  // --- recording interface, used by ScopedSpan ---
  void AppendBegin(std::string_view name);
  void AppendEnd(const CaptureEvent::Arg* args, int num_args);

 private:
  std::chrono::steady_clock::time_point start_{};
  std::vector<CaptureEvent> events_;
  bool active_ = false;
  bool truncated_ = false;
};

namespace trace_internal {
extern thread_local RequestCapture* t_active_capture;
}  // namespace trace_internal

// The calling thread's active capture, or null. One plain thread-local
// load: cheap enough for ScopedSpan's constructor on kernel hot paths.
inline RequestCapture* ActiveRequestCapture() {
  return trace_internal::t_active_capture;
}

// The calling thread's lazily-constructed capture buffer (not yet
// active); the serve request loop calls Begin()/Abort()/Detach() on it.
RequestCapture* ThreadRequestCapture();

// RAII span. Binds to the active session and the thread's active request
// capture at construction (no-op when neither is live); records 'B'
// immediately and 'E' — carrying the args added in between — at
// End()/destruction, always on the constructing thread, so begin/end
// events balance per thread by construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name)
      : session_(ActiveTraceSession()), capture_(ActiveRequestCapture()) {
    if (session_ != nullptr || capture_ != nullptr) Begin(name);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  bool active() const { return session_ != nullptr || capture_ != nullptr; }

  // Attaches a key/value to the span's end event. Cheap no-ops when the
  // span is inactive, so call sites need no guards. The capture path
  // keeps integer args only, in a fixed inline array (first kMaxArgs
  // win) — no allocation for requests that stay under the slow threshold.
  void AddArg(std::string_view key, int64_t value) {
    if (session_ != nullptr) {
      ReserveArgs();
      args_.emplace_back(key, value);
    }
    if (capture_ != nullptr) AddCaptureArg(key, value);
  }
  void AddArg(std::string_view key, int value) {
    AddArg(key, static_cast<int64_t>(value));
  }
  void AddArg(std::string_view key, uint64_t value) {
    AddArg(key, static_cast<int64_t>(value));
  }
  void AddArg(std::string_view key, double value) {
    if (session_ != nullptr) {
      ReserveArgs();
      args_.emplace_back(key, value);
    }
  }
  void AddArg(std::string_view key, std::string value) {
    if (session_ != nullptr) {
      ReserveArgs();
      args_.emplace_back(key, std::move(value));
    }
  }

  // Records the end event now; later AddArg/End/destruction are no-ops.
  // Lets sequential phases share one scope without nesting blocks.
  void End();

 private:
  void Begin(std::string_view name);

  // One up-front reservation instead of 1→2→4 growth mallocs: spans
  // carry a handful of args, added back-to-back on the hot path.
  void ReserveArgs() {
    if (args_.capacity() == 0) args_.reserve(6);
  }

  void AddCaptureArg(std::string_view key, int64_t value);

  TraceSession* session_;
  RequestCapture* capture_;
  TraceSession::ThreadBuffer* buffer_ = nullptr;
  std::vector<TraceArg> args_;
  CaptureEvent::Arg capture_args_[CaptureEvent::kMaxArgs];
  int num_capture_args_ = 0;
};

}  // namespace stap

#endif  // STAP_BASE_TRACE_H_
