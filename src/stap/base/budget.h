// Cooperative resource budgets for the worst-case-exponential kernels.
//
// The paper's lower-bound families (Theorems 3.2, 3.6, 3.8) force the
// subset construction, the exchange closure, and Boolean combinations of
// upper approximations into exponential state growth by design. A serving
// system must bound that growth rather than crash or hang: a Budget
// carries a wall-clock deadline and max-states / max-sets quotas, the
// constructions charge units as they allocate, and the first quota or
// deadline trip surfaces as a kResourceExhausted Status — a clean error
// in bounded time instead of unbounded memory and latency.
//
// All checks are cooperative (no signals, no watchdog threads): a call
// site that never charges cannot be interrupted, so every loop that can
// grow state must charge what it creates. The deadline is only sampled
// every kDeadlineStride charges, keeping the common charge path to one
// relaxed atomic increment.
//
// Budgets are shared: the parallel sweeps of the approximation pipeline
// charge one Budget from many ThreadPool workers, so the counters are
// atomics and exhaustion latches. A null Budget* means "unlimited" at
// every call site; the pre-budget call signatures keep working unchanged
// through the null-tolerant static helpers.
#ifndef STAP_BASE_BUDGET_H_
#define STAP_BASE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <utility>

#include "stap/base/status.h"

namespace stap {

class Budget {
 public:
  static constexpr int64_t kUnlimited =
      std::numeric_limits<int64_t>::max();
  // How many charges elapse between wall-clock samples.
  static constexpr int64_t kDeadlineStride = 256;

  Budget() = default;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  // Quotas. Setters are meant for setup, before the budget is shared.
  void set_max_states(int64_t n) { max_states_ = n; }
  void set_max_sets(int64_t n) { max_sets_ = n; }
  void set_deadline_ms(int64_t ms) {
    deadline_ = Clock::now() + std::chrono::milliseconds(ms);
    deadline_ms_ = ms;
    has_deadline_ = true;
  }

  int64_t states_charged() const {
    return states_.load(std::memory_order_relaxed);
  }
  int64_t sets_charged() const {
    return sets_.load(std::memory_order_relaxed);
  }

  // Charges `n` automaton/product/closure states against the quota.
  // Returns kResourceExhausted once the quota or the deadline trips; the
  // failure latches, so later charges keep failing fast.
  Status ChargeStates(int64_t n = 1) {
    return Charge(&states_, max_states_, n, "states");
  }

  // Charges `n` state sets / frontier nodes / visited pairs.
  Status ChargeSets(int64_t n = 1) {
    return Charge(&sets_, max_sets_, n, "sets");
  }

  // Forces a wall-clock check regardless of the charge stride. Use at
  // natural phase boundaries (per refinement round, per BFS layer).
  Status CheckDeadline() {
    if (exhausted_.load(std::memory_order_relaxed)) return ExhaustedError();
    if (!has_deadline_ || Clock::now() < deadline_) return Status();
    return Exhaust("deadline of " + std::to_string(deadline_ms_) +
                   "ms exceeded");
  }

  // Null-tolerant helpers so call sites can stay `Budget* budget`-typed
  // with nullptr meaning unlimited.
  static Status ChargeStates(Budget* budget, int64_t n = 1) {
    return budget == nullptr ? Status() : budget->ChargeStates(n);
  }
  static Status ChargeSets(Budget* budget, int64_t n = 1) {
    return budget == nullptr ? Status() : budget->ChargeSets(n);
  }
  static Status CheckDeadline(Budget* budget) {
    return budget == nullptr ? Status() : budget->CheckDeadline();
  }

 private:
  using Clock = std::chrono::steady_clock;

  Status Charge(std::atomic<int64_t>* counter, int64_t limit, int64_t n,
                const char* what) {
    if (exhausted_.load(std::memory_order_relaxed)) return ExhaustedError();
    const int64_t used =
        counter->fetch_add(n, std::memory_order_relaxed) + n;
    if (used > limit) {
      return Exhaust(std::string(what) + " created " + std::to_string(used) +
                     " > max " + std::to_string(limit));
    }
    if (has_deadline_ &&
        ticks_.fetch_add(1, std::memory_order_relaxed) % kDeadlineStride ==
            kDeadlineStride - 1) {
      return CheckDeadline();
    }
    return Status();
  }

  Status Exhaust(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (reason_.empty()) reason_ = std::move(reason);
    }
    exhausted_.store(true, std::memory_order_relaxed);
    return ExhaustedError();
  }

  Status ExhaustedError() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ResourceExhaustedError("budget exhausted: " + reason_);
  }

  int64_t max_states_ = kUnlimited;
  int64_t max_sets_ = kUnlimited;
  bool has_deadline_ = false;
  int64_t deadline_ms_ = 0;
  Clock::time_point deadline_{};

  std::atomic<int64_t> states_{0};
  std::atomic<int64_t> sets_{0};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<bool> exhausted_{false};
  mutable std::mutex mutex_;
  std::string reason_;  // guarded by mutex_; set once
};

// First-error accumulator for parallel sweeps: workers call Update with
// their per-index Status; the sweep returns ToStatus() afterwards. ok()
// doubles as the cooperative early-out flag the sweeps already poll.
class SharedStatus {
 public:
  void Update(const Status& status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.ok()) status_ = status;
    ok_.store(false, std::memory_order_relaxed);
  }

  bool ok() const { return ok_.load(std::memory_order_relaxed); }

  Status ToStatus() const {
    if (ok()) return Status();
    std::lock_guard<std::mutex> lock(mutex_);
    return status_;
  }

 private:
  std::atomic<bool> ok_{true};
  mutable std::mutex mutex_;
  Status status_;
};

}  // namespace stap

#endif  // STAP_BASE_BUDGET_H_
