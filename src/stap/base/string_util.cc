#include "stap/base/string_util.h"

#include <cctype>
#include <cstdio>

namespace stap {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> SplitAndTrim(std::string_view input, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(sep, start);
    if (end == std::string_view::npos) end = input.size();
    std::string_view piece = StripWhitespace(input.substr(start, end - start));
    if (!piece.empty()) pieces.emplace_back(piece);
    start = end + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

std::string JsonEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace stap
