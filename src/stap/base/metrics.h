// Process-wide metrics: named counters, gauges, histograms, and rolling
// windows with JSON + Prometheus dumps.
//
// The approximation pipeline's cost model lives in a handful of numbers —
// subset-construction states created, antichain frontier sizes and
// subsumption prunes, pool task counts, per-phase wall time. This module
// makes those observable in production builds: a thread-safe registry of
// named instruments, cheap enough to leave on (counters are one relaxed
// atomic add; hot paths cache the instrument pointer in a function-local
// static), dumped as JSON for dashboards and the CI smoke jobs.
//
// Two instrument families serve different questions:
//   - Counter / Histogram / Gauge are cumulative or point-in-time over the
//     process lifetime ("how many requests ever", "how many connections
//     now").
//   - RollingCounter / RollingHistogram answer "what happened in the last
//     minute": samples land in N fixed time slices that expire as the
//     window advances, so a snapshot is a trailing-window aggregate rather
//     than a lifetime average. The serve daemon's /statusz reports SLOs
//     (p50/p95/p99, error rates) from these.
//
// Every record path is lock-free: relaxed atomic adds into fixed bucket
// arrays, CAS loops only for min/max and the floating-point sum. snapshot()
// on a concurrently-recorded instrument is racy-but-consistent-enough: each
// field is read atomically but the tuple is not a linearizable cut, so a
// snapshot taken mid-record may see the count without the sum (or vice
// versa). Totals are exact once concurrent recorders quiesce; monitoring
// readers tolerate the skew of a few in-flight samples.
//
// Instrument pointers returned by the registry are stable for the process
// lifetime: Reset() zeroes values but never invalidates pointers, so
// cached lookups stay valid across runs.
//
//   Counter* states = GetCounter("determinize.states_created");
//   states->Increment(n);
//   {
//     ScopedTimer timer(GetHistogram("approx.upper_ms"));
//     ...  // records elapsed milliseconds on scope exit
//   }
//   std::string json = MetricsRegistry::Global()->ToJson();
#ifndef STAP_BASE_METRICS_H_
#define STAP_BASE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace stap {

// Microseconds since process start on the steady clock. The rolling
// instruments slice time on this scale; tests inject explicit timestamps
// through the *AtUs entry points instead.
int64_t MonotonicNowUs();

// A monotonically increasing (between resets) 64-bit counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A point-in-time value that can move both ways (active connections,
// inflight requests, snapshot epoch). Exported as a Prometheus `gauge`.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }

  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram of non-negative samples (latencies in ms, sizes in states)
// with power-of-two buckets: bucket 0 holds samples < 1, bucket i >= 1
// holds samples in [2^(i-1), 2^i). Tracks count / sum / min / max.
//
// Record is lock-free (it sits on the serve per-request hot path): relaxed
// adds for count/buckets, a CAS loop for the double sum and for min/max.
// See the file comment for snapshot() consistency semantics.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  struct Snapshot {
    int64_t count = 0;
    double sum = 0;
    double min = 0;  // meaningful only when count > 0
    double max = 0;
    std::array<int64_t, kNumBuckets> buckets{};
  };

  // Maps a sample to its bucket index: 0 for values < 1 (and NaN), else
  // min(ilogb(value) + 1, kNumBuckets - 1). Exposed for quantile math.
  static int BucketFor(double value);

  void Record(double value);

  Snapshot snapshot() const;

  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
  // min_/max_ start at +/-infinity so the first CAS always installs.
  std::atomic<double> min_;
  std::atomic<double> max_;
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

// The smallest power-of-two bucket upper bound that covers the q-quantile
// of a snapshot: the ceil(q * count)-th smallest sample lies in some
// bucket [2^(i-1), 2^i), and this returns 2^i (1.0 for bucket 0). Returns
// 0 when the snapshot is empty. Quantiles from power-of-two buckets are
// accurate to one bucket by construction — good enough for SLO dashboards,
// and the guarantee bench_serve's p99 cross-check asserts.
double SnapshotQuantile(const Histogram::Snapshot& snapshot, double q);

// Counts events over a trailing time window (default 60 s) using kSlices
// sub-counters, each owning window/kSlices of time. A slice is lazily
// reclaimed when the window advances onto it again: the first recorder to
// touch it CAS-claims the new epoch and zeroes the stale count. The record
// path is one epoch load + one relaxed add in steady state.
class RollingCounter {
 public:
  static constexpr int kSlices = 6;

  explicit RollingCounter(int64_t window_us = 60'000'000);

  void Increment(int64_t delta = 1) { IncrementAtUs(delta, MonotonicNowUs()); }

  // Trailing-window total as of now. Includes the in-progress slice, so
  // the covered span is between (kSlices-1)/kSlices and 1 full window.
  int64_t value() const { return ValueAtUs(MonotonicNowUs()); }

  // Test hooks: the same operations with an injected clock.
  void IncrementAtUs(int64_t delta, int64_t now_us);
  int64_t ValueAtUs(int64_t now_us) const;

  int64_t window_us() const { return slice_us_ * kSlices; }

  void Reset();

 private:
  struct Slice {
    std::atomic<int64_t> epoch{-1};  // -1: never written
    std::atomic<int64_t> count{0};
  };

  int64_t slice_us_;
  std::array<Slice, kSlices> slices_;
};

// A Histogram over a trailing time window: kSlices time-sliced bucket
// arrays, merged at snapshot time into a regular Histogram::Snapshot.
// Same lock-free record path and slice-reclaim protocol as RollingCounter.
//
// Consistency at slice boundaries: a recorder that lands on a slice while
// another thread is still zeroing it for the new epoch may have its sample
// wiped — the loss is bounded to the handful of samples racing the
// once-per-slice-period reclaim, which is noise at SLO-window scale.
class RollingHistogram {
 public:
  static constexpr int kSlices = 6;

  explicit RollingHistogram(int64_t window_us = 60'000'000);

  void Record(double value) { RecordAtUs(value, MonotonicNowUs()); }

  Histogram::Snapshot snapshot() const {
    return SnapshotAtUs(MonotonicNowUs());
  }

  // Test hooks: the same operations with an injected clock.
  void RecordAtUs(double value, int64_t now_us);
  Histogram::Snapshot SnapshotAtUs(int64_t now_us) const;

  int64_t window_us() const { return slice_us_ * kSlices; }

  void Reset();

 private:
  struct Slice {
    std::atomic<int64_t> epoch{-1};  // -1: never written
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0};
    std::atomic<double> min;
    std::atomic<double> max;
    std::array<std::atomic<int64_t>, Histogram::kNumBuckets> buckets{};
  };

  // CAS-claims `slice` for `epoch` and zeroes its payload; no-op if another
  // thread already claimed it.
  static void Reclaim(Slice* slice, int64_t epoch);

  int64_t slice_us_;
  std::array<Slice, kSlices> slices_;
};

// The process-wide registry. Instruments are created on first lookup and
// live forever; lookups are mutex-guarded, so hot loops should cache the
// returned pointer (function-local static) rather than re-resolve names.
class MetricsRegistry {
 public:
  static MetricsRegistry* Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);
  RollingCounter* GetRollingCounter(std::string_view name);
  RollingHistogram* GetRollingHistogram(std::string_view name);

  // Zeroes every instrument (pointers stay valid).
  void Reset();

  // {"counters": {name: value, ...},
  //  "gauges": {name: value, ...},
  //  "histograms": {name: {count, sum, min, max, buckets}, ...},
  //  "rolling": {name: {window_s, count, sum, p50, p95, p99, max}, ...},
  //  "rolling_counters": {name: value, ...}}
  // Names are sorted, so output is deterministic for a given state.
  std::string ToJson() const;

  // Prometheus exposition format: each counter becomes a `counter`
  // metric, each gauge a `gauge`, each histogram a `histogram` with
  // cumulative power-of-two `le` buckets plus `_sum`/`_count`. Rolling
  // histograms export as `summary` (quantile labels from the merged
  // window) and rolling counters as `gauge` (the trailing-window value
  // is not monotonic). Names are prefixed with `stap_` and
  // non-identifier characters become underscores, so dashboards can
  // scrape the dump without a JSON shim.
  std::string ToPrometheusText() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<RollingCounter>, std::less<>>
      rolling_counters_;
  std::map<std::string, std::unique_ptr<RollingHistogram>, std::less<>>
      rolling_histograms_;
};

// Convenience lookups on the global registry.
Counter* GetCounter(std::string_view name);
Gauge* GetGauge(std::string_view name);
Histogram* GetHistogram(std::string_view name);
RollingCounter* GetRollingCounter(std::string_view name);
RollingHistogram* GetRollingHistogram(std::string_view name);

// Records elapsed wall time in fractional milliseconds into a histogram
// on destruction. A null histogram disables the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(Clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMs());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace stap

#endif  // STAP_BASE_METRICS_H_
