// Process-wide metrics: named counters and histograms with a JSON dump.
//
// The approximation pipeline's cost model lives in a handful of numbers —
// subset-construction states created, antichain frontier sizes and
// subsumption prunes, pool task counts, per-phase wall time. This module
// makes those observable in production builds: a thread-safe registry of
// named instruments, cheap enough to leave on (counters are one relaxed
// atomic add; hot paths cache the instrument pointer in a function-local
// static), dumped as JSON for dashboards and the CI smoke jobs.
//
// Instrument pointers returned by the registry are stable for the process
// lifetime: Reset() zeroes values but never invalidates pointers, so
// cached lookups stay valid across runs.
//
//   Counter* states = GetCounter("determinize.states_created");
//   states->Increment(n);
//   {
//     ScopedTimer timer(GetHistogram("approx.upper_ms"));
//     ...  // records elapsed milliseconds on scope exit
//   }
//   std::string json = MetricsRegistry::Global()->ToJson();
#ifndef STAP_BASE_METRICS_H_
#define STAP_BASE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace stap {

// A monotonically increasing (between resets) 64-bit counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram of non-negative samples (latencies in ms, sizes in states)
// with power-of-two buckets: bucket 0 holds samples < 1, bucket i >= 1
// holds samples in [2^(i-1), 2^i). Tracks count / sum / min / max exactly.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  struct Snapshot {
    int64_t count = 0;
    double sum = 0;
    double min = 0;  // meaningful only when count > 0
    double max = 0;
    std::array<int64_t, kNumBuckets> buckets{};
  };

  void Record(double value);

  Snapshot snapshot() const;

  void Reset();

 private:
  static int BucketFor(double value);

  mutable std::mutex mutex_;
  Snapshot data_;
};

// The process-wide registry. Instruments are created on first lookup and
// live forever; lookups are mutex-guarded, so hot loops should cache the
// returned pointer (function-local static) rather than re-resolve names.
class MetricsRegistry {
 public:
  static MetricsRegistry* Global();

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Zeroes every instrument (pointers stay valid).
  void Reset();

  // {"counters": {name: value, ...},
  //  "histograms": {name: {count, sum, min, max, buckets}, ...}}
  // Names are sorted, so output is deterministic for a given state.
  std::string ToJson() const;

  // Prometheus exposition format: each counter becomes a `counter`
  // metric, each histogram a `histogram` with cumulative power-of-two
  // `le` buckets plus `_sum`/`_count`. Names are prefixed with `stap_`
  // and non-identifier characters become underscores, so dashboards can
  // scrape the dump without a JSON shim.
  std::string ToPrometheusText() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Convenience lookups on the global registry.
Counter* GetCounter(std::string_view name);
Histogram* GetHistogram(std::string_view name);

// Records elapsed wall time in fractional milliseconds into a histogram
// on destruction. A null histogram disables the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(Clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMs());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace stap

#endif  // STAP_BASE_METRICS_H_
