#include "stap/base/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "stap/base/string_util.h"

namespace stap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// JSON has no NaN/Inf literals; clamp to 0 (never produced by the
// instruments, but dumps must always parse).
void AppendNumber(std::ostringstream* os, double value) {
  if (!std::isfinite(value)) value = 0;
  *os << value;
}

// std::atomic<double>::fetch_add is a C++20 library feature that libstdc++
// ships behind __cpp_lib_atomic_float; a CAS loop is portable and costs the
// same on the uncontended path.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

int64_t MonotonicNowUs() {
  static const auto process_start = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - process_start)
      .count();
}

int Histogram::BucketFor(double value) {
  if (!(value >= 1)) return 0;  // also catches NaN
  const int exponent = std::ilogb(value) + 1;
  return std::min(exponent, kNumBuckets - 1);
}

Histogram::Histogram() : min_(kInf), max_(-kInf) {}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // Empty (or raced mid-first-record): report zeros, not infinities.
  if (snap.count <= 0 || !std::isfinite(snap.min)) snap.min = 0;
  if (snap.count <= 0 || !std::isfinite(snap.max)) snap.max = 0;
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double SnapshotQuantile(const Histogram::Snapshot& snapshot, double q) {
  if (snapshot.count <= 0) return 0;
  if (!(q >= 0)) q = 0;
  if (q > 1) q = 1;
  int64_t rank = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(snapshot.count)));
  rank = std::max<int64_t>(1, std::min(rank, snapshot.count));
  int64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    cumulative += snapshot.buckets[i];
    if (cumulative >= rank) return std::ldexp(1.0, i);
  }
  // A racy snapshot can read the count ahead of the bucket adds; fall back
  // to the observed max.
  return snapshot.max;
}

RollingCounter::RollingCounter(int64_t window_us)
    : slice_us_(std::max<int64_t>(1, window_us / kSlices)) {}

void RollingCounter::IncrementAtUs(int64_t delta, int64_t now_us) {
  const int64_t epoch = now_us / slice_us_;
  Slice& slice = slices_[static_cast<size_t>(epoch % kSlices)];
  int64_t seen = slice.epoch.load(std::memory_order_acquire);
  while (seen < epoch) {
    if (slice.epoch.compare_exchange_weak(seen, epoch,
                                          std::memory_order_acq_rel)) {
      slice.count.store(0, std::memory_order_relaxed);
      break;
    }
  }
  slice.count.fetch_add(delta, std::memory_order_relaxed);
}

int64_t RollingCounter::ValueAtUs(int64_t now_us) const {
  const int64_t now_epoch = now_us / slice_us_;
  int64_t total = 0;
  for (const Slice& slice : slices_) {
    const int64_t epoch = slice.epoch.load(std::memory_order_acquire);
    if (epoch >= 0 && now_epoch - epoch < kSlices) {
      total += slice.count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

void RollingCounter::Reset() {
  for (Slice& slice : slices_) {
    slice.epoch.store(-1, std::memory_order_relaxed);
    slice.count.store(0, std::memory_order_relaxed);
  }
}

RollingHistogram::RollingHistogram(int64_t window_us)
    : slice_us_(std::max<int64_t>(1, window_us / kSlices)) {
  for (Slice& slice : slices_) {
    slice.min.store(kInf, std::memory_order_relaxed);
    slice.max.store(-kInf, std::memory_order_relaxed);
  }
}

void RollingHistogram::Reclaim(Slice* slice, int64_t epoch) {
  int64_t seen = slice->epoch.load(std::memory_order_acquire);
  while (seen < epoch) {
    if (slice->epoch.compare_exchange_weak(seen, epoch,
                                           std::memory_order_acq_rel)) {
      // Samples recorded by threads racing this reclaim can be wiped; the
      // loss is bounded to the instants the window advances one slice.
      slice->count.store(0, std::memory_order_relaxed);
      slice->sum.store(0, std::memory_order_relaxed);
      slice->min.store(kInf, std::memory_order_relaxed);
      slice->max.store(-kInf, std::memory_order_relaxed);
      for (auto& bucket : slice->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      return;
    }
  }
}

void RollingHistogram::RecordAtUs(double value, int64_t now_us) {
  if (std::isnan(value)) return;
  const int64_t epoch = now_us / slice_us_;
  Slice& slice = slices_[static_cast<size_t>(epoch % kSlices)];
  Reclaim(&slice, epoch);
  slice.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&slice.sum, value);
  AtomicMin(&slice.min, value);
  AtomicMax(&slice.max, value);
  slice.buckets[Histogram::BucketFor(value)].fetch_add(
      1, std::memory_order_relaxed);
}

Histogram::Snapshot RollingHistogram::SnapshotAtUs(int64_t now_us) const {
  const int64_t now_epoch = now_us / slice_us_;
  Histogram::Snapshot snap;
  snap.min = kInf;
  snap.max = -kInf;
  for (const Slice& slice : slices_) {
    const int64_t epoch = slice.epoch.load(std::memory_order_acquire);
    if (epoch < 0 || now_epoch - epoch >= kSlices) continue;
    snap.count += slice.count.load(std::memory_order_relaxed);
    snap.sum += slice.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, slice.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, slice.max.load(std::memory_order_relaxed));
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      snap.buckets[i] += slice.buckets[i].load(std::memory_order_relaxed);
    }
  }
  if (snap.count <= 0 || !std::isfinite(snap.min)) snap.min = 0;
  if (snap.count <= 0 || !std::isfinite(snap.max)) snap.max = 0;
  return snap;
}

void RollingHistogram::Reset() {
  for (Slice& slice : slices_) {
    slice.epoch.store(-1, std::memory_order_relaxed);
    slice.count.store(0, std::memory_order_relaxed);
    slice.sum.store(0, std::memory_order_relaxed);
    slice.min.store(kInf, std::memory_order_relaxed);
    slice.max.store(-kInf, std::memory_order_relaxed);
    for (auto& bucket : slice.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RollingCounter* MetricsRegistry::GetRollingCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rolling_counters_.find(name);
  if (it == rolling_counters_.end()) {
    it = rolling_counters_
             .emplace(std::string(name), std::make_unique<RollingCounter>())
             .first;
  }
  return it->second.get();
}

RollingHistogram* MetricsRegistry::GetRollingHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rolling_histograms_.find(name);
  if (it == rolling_histograms_.end()) {
    it = rolling_histograms_
             .emplace(std::string(name), std::make_unique<RollingHistogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, rolling] : rolling_counters_) rolling->Reset();
  for (auto& [name, rolling] : rolling_histograms_) rolling->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << counter->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << gauge->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": {\"count\": " << snap.count << ", \"sum\": ";
    AppendNumber(&os, snap.sum);
    os << ", \"min\": ";
    AppendNumber(&os, snap.min);
    os << ", \"max\": ";
    AppendNumber(&os, snap.max);
    os << ", \"buckets\": [";
    // Trailing all-zero buckets are elided to keep dumps small; bucket
    // indexes are implicit, so parsers index from 0.
    int last = Histogram::kNumBuckets - 1;
    while (last > 0 && snap.buckets[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i > 0) os << ", ";
      os << snap.buckets[i];
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"rolling\": {";
  first = true;
  for (const auto& [name, rolling] : rolling_histograms_) {
    const Histogram::Snapshot snap = rolling->snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": {\"window_s\": " << rolling->window_us() / 1000000
       << ", \"count\": " << snap.count << ", \"sum\": ";
    AppendNumber(&os, snap.sum);
    os << ", \"p50\": ";
    AppendNumber(&os, SnapshotQuantile(snap, 0.5));
    os << ", \"p95\": ";
    AppendNumber(&os, SnapshotQuantile(snap, 0.95));
    os << ", \"p99\": ";
    AppendNumber(&os, SnapshotQuantile(snap, 0.99));
    os << ", \"max\": ";
    AppendNumber(&os, snap.max);
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"rolling_counters\": {";
  first = true;
  for (const auto& [name, rolling] : rolling_counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << rolling->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

namespace {

// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; instrument
// names use dots and dashes, which map to underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = "stap_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n"
       << prom << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << ' ' << gauge->value() << '\n';
  }
  // Trailing-window counts are not monotonic, so `gauge` is the honest
  // Prometheus type for rolling counters.
  for (const auto& [name, rolling] : rolling_counters_) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << ' ' << rolling->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    // Bucket i of the snapshot covers [2^(i-1), 2^i) (bucket 0: < 1), so
    // the cumulative count through bucket i has le = 2^i. The all-zero
    // tail is elided; the mandatory +Inf bucket carries the total.
    int last = Histogram::kNumBuckets - 1;
    while (last > 0 && snap.buckets[last] == 0) --last;
    int64_t cumulative = 0;
    for (int i = 0; i < last && i < Histogram::kNumBuckets - 1; ++i) {
      cumulative += snap.buckets[i];
      os << prom << "_bucket{le=\"" << (int64_t{1} << i) << "\"} "
         << cumulative << '\n';
    }
    os << prom << "_bucket{le=\"+Inf\"} " << snap.count << '\n'
       << prom << "_sum ";
    AppendNumber(&os, snap.sum);
    os << '\n' << prom << "_count " << snap.count << '\n';
  }
  // Rolling histograms export as summaries: pre-merged window quantiles,
  // already bucket-quantized, which is what a dashboard wants for SLOs.
  for (const auto& [name, rolling] : rolling_histograms_) {
    const Histogram::Snapshot snap = rolling->snapshot();
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " summary\n";
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.5}, {"0.95", 0.95},
          {"0.99", 0.99}}) {
      os << prom << "{quantile=\"" << label << "\"} ";
      AppendNumber(&os, SnapshotQuantile(snap, q));
      os << '\n';
    }
    os << prom << "_sum ";
    AppendNumber(&os, snap.sum);
    os << '\n' << prom << "_count " << snap.count << '\n';
  }
  return os.str();
}

Counter* GetCounter(std::string_view name) {
  return MetricsRegistry::Global()->GetCounter(name);
}

Gauge* GetGauge(std::string_view name) {
  return MetricsRegistry::Global()->GetGauge(name);
}

Histogram* GetHistogram(std::string_view name) {
  return MetricsRegistry::Global()->GetHistogram(name);
}

RollingCounter* GetRollingCounter(std::string_view name) {
  return MetricsRegistry::Global()->GetRollingCounter(name);
}

RollingHistogram* GetRollingHistogram(std::string_view name) {
  return MetricsRegistry::Global()->GetRollingHistogram(name);
}

}  // namespace stap
