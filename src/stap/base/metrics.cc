#include "stap/base/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "stap/base/string_util.h"

namespace stap {

namespace {

// JSON has no NaN/Inf literals; clamp to 0 (never produced by the
// instruments, but dumps must always parse).
void AppendNumber(std::ostringstream* os, double value) {
  if (!std::isfinite(value)) value = 0;
  *os << value;
}

}  // namespace

int Histogram::BucketFor(double value) {
  if (!(value >= 1)) return 0;  // also catches NaN
  const int exponent = std::ilogb(value) + 1;
  return std::min(exponent, kNumBuckets - 1);
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (data_.count == 0) {
    data_.min = value;
    data_.max = value;
  } else {
    data_.min = std::min(data_.min, value);
    data_.max = std::max(data_.max, value);
  }
  ++data_.count;
  data_.sum += value;
  ++data_.buckets[BucketFor(value)];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = Snapshot{};
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << counter->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": {\"count\": " << snap.count << ", \"sum\": ";
    AppendNumber(&os, snap.sum);
    os << ", \"min\": ";
    AppendNumber(&os, snap.min);
    os << ", \"max\": ";
    AppendNumber(&os, snap.max);
    os << ", \"buckets\": [";
    // Trailing all-zero buckets are elided to keep dumps small; bucket
    // indexes are implicit, so parsers index from 0.
    int last = Histogram::kNumBuckets - 1;
    while (last > 0 && snap.buckets[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i > 0) os << ", ";
      os << snap.buckets[i];
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

namespace {

// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; instrument
// names use dots and dashes, which map to underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = "stap_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n"
       << prom << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    // Bucket i of the snapshot covers [2^(i-1), 2^i) (bucket 0: < 1), so
    // the cumulative count through bucket i has le = 2^i. The all-zero
    // tail is elided; the mandatory +Inf bucket carries the total.
    int last = Histogram::kNumBuckets - 1;
    while (last > 0 && snap.buckets[last] == 0) --last;
    int64_t cumulative = 0;
    for (int i = 0; i < last && i < Histogram::kNumBuckets - 1; ++i) {
      cumulative += snap.buckets[i];
      os << prom << "_bucket{le=\"" << (int64_t{1} << i) << "\"} "
         << cumulative << '\n';
    }
    os << prom << "_bucket{le=\"+Inf\"} " << snap.count << '\n'
       << prom << "_sum ";
    AppendNumber(&os, snap.sum);
    os << '\n' << prom << "_count " << snap.count << '\n';
  }
  return os.str();
}

Counter* GetCounter(std::string_view name) {
  return MetricsRegistry::Global()->GetCounter(name);
}

Histogram* GetHistogram(std::string_view name) {
  return MetricsRegistry::Global()->GetHistogram(name);
}

}  // namespace stap
