#include "stap/automata/dot.h"

#include <sstream>

#include "stap/base/check.h"

namespace stap {

namespace {

std::string SymbolName(int symbol, const Alphabet* alphabet) {
  if (alphabet != nullptr) {
    STAP_CHECK(symbol >= 0 && symbol < alphabet->size());
    return alphabet->Name(symbol);
  }
  return std::to_string(symbol);
}

void EmitHeader(std::ostringstream& os) {
  os << "digraph automaton {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=circle];\n"
     << "  start [shape=point];\n";
}

}  // namespace

std::string DfaToDot(const Dfa& dfa, const Alphabet* alphabet) {
  std::ostringstream os;
  EmitHeader(os);
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.IsFinal(q)) {
      os << "  q" << q << " [shape=doublecircle];\n";
    }
  }
  if (dfa.num_states() > 0) {
    os << "  start -> q" << dfa.initial() << ";\n";
  }
  for (int q = 0; q < dfa.num_states(); ++q) {
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState) {
        os << "  q" << q << " -> q" << r << " [label=\""
           << SymbolName(a, alphabet) << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string NfaToDot(const Nfa& nfa, const Alphabet* alphabet) {
  std::ostringstream os;
  EmitHeader(os);
  for (int q = 0; q < nfa.num_states(); ++q) {
    if (nfa.IsFinal(q)) {
      os << "  q" << q << " [shape=doublecircle];\n";
    }
  }
  for (int q : nfa.initial()) {
    os << "  start -> q" << q << ";\n";
  }
  for (int q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.num_symbols(); ++a) {
      for (int r : nfa.Next(q, a)) {
        os << "  q" << q << " -> q" << r << " [label=\""
           << SymbolName(a, alphabet) << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace stap
