// Boolean operations and alphabet homomorphisms on automata.
#ifndef STAP_AUTOMATA_OPS_H_
#define STAP_AUTOMATA_OPS_H_

#include <vector>

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"

namespace stap {

// Product of two DFAs, exploring only reachable pairs. The resulting DFA
// accepts L(a) op L(b).
enum class BoolOp { kAnd, kOr, kDiff };
Dfa DfaProduct(const Dfa& a, const Dfa& b, BoolOp op);

// Budgeted variant: every reachable product pair charges the state quota,
// so quadratic blowups abort with kResourceExhausted. A null budget is
// unlimited.
StatusOr<Dfa> DfaProduct(const Dfa& a, const Dfa& b, BoolOp op,
                         Budget* budget);

Dfa DfaIntersection(const Dfa& a, const Dfa& b);
Dfa DfaUnion(const Dfa& a, const Dfa& b);
Dfa DfaDifference(const Dfa& a, const Dfa& b);

// Complete complement: accepts exactly the words not in L(dfa).
Dfa DfaComplement(const Dfa& dfa);

// Disjoint union of two NFAs (accepts L(a) ∪ L(b)).
Nfa NfaUnion(const Nfa& a, const Nfa& b);

// Homomorphic image: given `dfa` over alphabet ∆ and a map ∆ -> Σ, returns
// an NFA over Σ for { h(w) : w ∈ L(dfa) }. Non-injective maps produce
// genuine nondeterminism. `image_size` is |Σ|.
Nfa HomomorphicImage(const Dfa& dfa, const std::vector<int>& symbol_map,
                     int image_size);

// Inverse-homomorphism restriction: given `dfa` over Σ and a map ∆ -> Σ,
// returns a DFA over ∆ for { w ∈ ∆* : h(w) ∈ L(dfa) }. Symbols mapped to
// kNoSymbol get no transitions.
Dfa InverseHomomorphism(const Dfa& dfa, const std::vector<int>& symbol_map,
                        int domain_size);

}  // namespace stap

#endif  // STAP_AUTOMATA_OPS_H_
