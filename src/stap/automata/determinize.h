// Subset construction, dense and schema-guided.
//
// The dense path explores every reachable subset of the NFA. The
// schema-guided path (after Niehren, Sakho & Al Serhali, "Schema-Based
// Automata Determinization", PAPERS.md) runs the subset construction
// jointly with a *context automaton*: states are pairs
// (context subset, NFA subset), and a successor whose context half is
// empty can never be reached by any word the ambient schema admits, so
// the pair collapses into one shared dead sink instead of spawning a
// fresh subset. Over schema-constrained content models most of the 2^n
// dense subsets are exactly such unreachable states.
//
// Contract of the schema-guided result (see docs/ALGORITHMS.md):
//  * For every word w all of whose prefixes are live in the context
//    (non-empty context reach set), the result accepts w iff the NFA
//    does. In particular, if L(context) ⊇ L(nfa), the result accepts
//    exactly L(nfa) — pruning is then a pure representation win.
//  * Words with a dead prefix are rejected (routed to the sink), so
//    L(result) ⊆ L(nfa) always, and L(result) ∩ L(context) =
//    L(nfa) ∩ L(context) for any context.
#ifndef STAP_AUTOMATA_DETERMINIZE_H_
#define STAP_AUTOMATA_DETERMINIZE_H_

#include <cstdint>
#include <vector>

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"

namespace stap {

// Determinizes `nfa` by the standard subset construction, exploring only
// reachable subsets. If `subsets` is non-null it receives, for each DFA
// state, the NFA state set it denotes (the empty set is the dead sink,
// created only when reachable). The DFA is complete by construction.
Dfa Determinize(const Nfa& nfa, std::vector<StateSet>* subsets = nullptr);

// Budgeted variant: every DFA state created charges the budget, so the
// exponential families (Theorem 3.2) fail with kResourceExhausted in
// bounded time instead of exhausting memory. A null budget is unlimited.
StatusOr<Dfa> Determinize(const Nfa& nfa, Budget* budget,
                          std::vector<StateSet>* subsets = nullptr);

// Dispatching variant: a non-null `context` selects the schema-guided
// construction below, a null context the dense path — so call sites can
// thread an optional context through without branching themselves, and
// the null-context behavior stays available as a differential oracle.
StatusOr<Dfa> Determinize(const Nfa& nfa, const Nfa* context, Budget* budget,
                          std::vector<StateSet>* subsets = nullptr);

// Construction-time observability of a schema-guided run. The registry
// counters (determinize.schema_pruned_states, …) aggregate the same
// quantities process-wide; this struct reports them per call.
struct SchemaDeterminizeStats {
  // (context subset, NFA subset) pairs materialized as DFA states,
  // including the shared sink when reachable.
  int64_t pair_states = 0;
  // Distinct non-empty NFA subsets observed at the pruning frontier,
  // i.e. computed as a successor but collapsed into the sink because the
  // context half died. Each is a subset the dense construction would
  // have materialized (and expanded) as its own state.
  int64_t pruned_states = 0;
  // Transitions redirected into the sink by a dead context.
  int64_t pruned_transitions = 0;
  // Largest NFA subset materialized.
  int64_t max_subset_size = 0;
};

// Schema-guided subset construction: determinizes `nfa` jointly with
// `context` (an NFA over the same alphabet), materializing only
// (context subset, NFA subset) pairs reachable under the schema. See the
// file header for the language contract. `subsets` / `context_subsets`
// receive, per DFA state, the NFA-half / context-half state set (both
// empty for the sink). Budget charging, interning, metrics, and span
// tracing follow the dense determinizer's contract; every DFA state
// created (sink included) charges the state quota.
StatusOr<Dfa> DeterminizeUnderSchema(
    const Nfa& nfa, const Nfa& context, Budget* budget = nullptr,
    std::vector<StateSet>* subsets = nullptr,
    std::vector<StateSet>* context_subsets = nullptr,
    SchemaDeterminizeStats* stats = nullptr);

}  // namespace stap

#endif  // STAP_AUTOMATA_DETERMINIZE_H_
