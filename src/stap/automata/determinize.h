// Subset construction.
#ifndef STAP_AUTOMATA_DETERMINIZE_H_
#define STAP_AUTOMATA_DETERMINIZE_H_

#include <vector>

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"

namespace stap {

// Determinizes `nfa` by the standard subset construction, exploring only
// reachable subsets. If `subsets` is non-null it receives, for each DFA
// state, the NFA state set it denotes (the empty set is the dead sink,
// created only when reachable). The DFA is complete by construction.
Dfa Determinize(const Nfa& nfa, std::vector<StateSet>* subsets = nullptr);

// Budgeted variant: every DFA state created charges the budget, so the
// exponential families (Theorem 3.2) fail with kResourceExhausted in
// bounded time instead of exhausting memory. A null budget is unlimited.
StatusOr<Dfa> Determinize(const Nfa& nfa, Budget* budget,
                          std::vector<StateSet>* subsets = nullptr);

}  // namespace stap

#endif  // STAP_AUTOMATA_DETERMINIZE_H_
