// Hashing and interning for the subset-construction / product-search
// hot paths.
//
// Every kernel that explores a graph of StateSet-keyed nodes — subset
// construction, Moore refinement signatures, inclusion pair searches,
// bottom-up tree-automaton determinization — previously interned keys
// through std::map, paying O(|set| · log n) element-wise comparisons per
// lookup. This header centralizes one canonical 64-bit hash over int
// sequences plus the building blocks the kernels share:
//
//  * HashIntSpan / IntVectorHash / StateSetHash — the canonical hash,
//    usable directly as an unordered_map hasher for vector<int> keys
//    (StateSets, Moore signatures, guard keys).
//  * PackPair / U64Hash / IntPairHash — product searches walk pairs of
//    small dense ids; packing two 32-bit ids into one uint64_t key keeps
//    the table flat and the probe sequence cache-friendly.
//  * StateSetInterner — an open-addressed table mapping sorted StateSets
//    to dense ids with each set stored exactly once (std::map and
//    unordered_map both duplicate the key per node). Backed by a deque so
//    references returned by operator[] stay valid across inserts, which
//    lets worklist algorithms hold the current set by reference while
//    discovering new ones.
#ifndef STAP_AUTOMATA_STATE_SET_HASH_H_
#define STAP_AUTOMATA_STATE_SET_HASH_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "stap/automata/nfa.h"

namespace stap {

// splitmix64 finalizer: full-avalanche mixing of a 64-bit value.
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Canonical hash of an int sequence (order-sensitive; StateSets are
// sorted, so equal sets hash equally).
inline uint64_t HashIntSpan(const int* data, size_t size) {
  uint64_t h = 0x243f6a8885a308d3ull ^ (size * 0x9e3779b97f4a7c15ull);
  for (size_t i = 0; i < size; ++i) {
    h = MixU64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(data[i])));
  }
  return h;
}

// Hasher for unordered containers keyed by vector<int> (StateSets, Moore
// signatures, ancestor-string guard keys).
struct IntVectorHash {
  size_t operator()(const std::vector<int>& v) const {
    return static_cast<size_t>(HashIntSpan(v.data(), v.size()));
  }
};
using StateSetHash = IntVectorHash;

// Packs two dense non-negative ids into one table key.
inline uint64_t PackPair(int a, int b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

// Hasher for unordered containers keyed by packed pairs.
struct U64Hash {
  size_t operator()(uint64_t key) const {
    return static_cast<size_t>(MixU64(key));
  }
};

// Hasher for unordered containers keyed by std::pair<int, int>.
struct IntPairHash {
  size_t operator()(const std::pair<int, int>& p) const {
    return static_cast<size_t>(MixU64(PackPair(p.first, p.second)));
  }
};

// Maps StateSets to dense ids 0, 1, 2, … in insertion order. Open
// addressing with linear probing over stored hashes; sets live in a
// deque so ids and references are stable across inserts.
class StateSetInterner {
 public:
  StateSetInterner();

  // Interns `set`, returning (id, inserted). On a hit the argument is
  // left untouched, so callers can keep reusing its capacity as a
  // scratch buffer; on a miss it is moved into the table.
  std::pair<int, bool> Intern(StateSet&& set);
  std::pair<int, bool> Intern(const StateSet& set);

  // The set with the given id. The reference stays valid across Intern
  // calls (deque-backed storage).
  const StateSet& operator[](int id) const { return sets_[id]; }

  int size() const { return static_cast<int>(sets_.size()); }

  // Moves all interned sets, in id order, onto the end of `*out`. The
  // interner must not be used afterwards.
  void MoveSetsInto(std::vector<StateSet>* out);

 private:
  // Slot holding `set` (same hash and equal contents), or the empty slot
  // where it belongs.
  size_t FindSlot(const StateSet& set, uint64_t hash) const;
  void Grow();

  std::deque<StateSet> sets_;     // id -> set
  std::vector<uint64_t> hashes_;  // id -> full hash (avoids re-hashing)
  std::vector<int32_t> table_;    // open addressing; -1 = empty
};

}  // namespace stap

#endif  // STAP_AUTOMATA_STATE_SET_HASH_H_
