// Interning of symbol names to dense integer ids.
//
// Trees, schemas, and automata all operate on dense `int` symbol ids;
// an Alphabet maps those ids to human-readable names and back. Symbol id
// 0..size()-1 are valid; kNoSymbol (-1) is the universal "absent" marker.
#ifndef STAP_AUTOMATA_ALPHABET_H_
#define STAP_AUTOMATA_ALPHABET_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stap {

inline constexpr int kNoSymbol = -1;

class Alphabet {
 public:
  Alphabet() = default;

  // Constructs an alphabet with the given symbol names, in order.
  explicit Alphabet(const std::vector<std::string>& names);

  // Returns the id for `name`, interning it if new.
  int Intern(std::string_view name);

  // Returns the id for `name`, or kNoSymbol if it was never interned.
  int Find(std::string_view name) const;

  // Require: 0 <= id < size().
  const std::string& Name(int id) const { return names_[id]; }

  int size() const { return static_cast<int>(names_.size()); }

  const std::vector<std::string>& names() const { return names_; }

  friend bool operator==(const Alphabet& a, const Alphabet& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace stap

#endif  // STAP_AUTOMATA_ALPHABET_H_
