#include "stap/automata/inclusion.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "stap/automata/antichain.h"
#include "stap/automata/determinize.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"

namespace stap {

namespace {

// Oracle path: BFS over pairs (state set of `nfa`, state of completed
// `dfa`) searching for a pair where the NFA accepts and the DFA does not.
// Returns a shortest witness word, or nullopt when L(nfa) ⊆ L(dfa).
//
// The reachable pairs are at most |2^Q_nfa| x |Q_dfa| in principle; the
// antichain engine replaces this with a |Q_nfa| x |Q_dfa| pair search.
// State sets are hash-interned once; the pair table is keyed by packed
// (set id, dfa state) words.
std::optional<Word> SearchCounterexample(const Nfa& nfa, const Dfa& dfa_in) {
  STAP_CHECK(nfa.num_symbols() == dfa_in.num_symbols());
  const Dfa dfa = dfa_in.Completed();
  const int num_symbols = nfa.num_symbols();

  auto nfa_accepts = [&](const StateSet& set) {
    return std::any_of(set.begin(), set.end(),
                       [&](int q) { return nfa.IsFinal(q); });
  };

  StateSetInterner sets;
  std::unordered_map<uint64_t, int, U64Hash> ids;
  struct Node {
    int set_id;
    int dfa_state;
  };
  std::vector<Node> nodes;  // insertion order doubles as the BFS queue
  std::vector<int> parent;
  std::vector<int> via_symbol;

  auto intern = [&](StateSet&& set, int dfa_state, int from, int symbol) {
    const int set_id = sets.Intern(std::move(set)).first;
    auto [it, inserted] =
        ids.emplace(PackPair(set_id, dfa_state), static_cast<int>(nodes.size()));
    if (inserted) {
      nodes.push_back(Node{set_id, dfa_state});
      parent.push_back(from);
      via_symbol.push_back(symbol);
    }
    return it->second;
  };

  {
    StateSet initial = nfa.initial();
    intern(std::move(initial), dfa.initial(), -1, kNoSymbol);
  }
  StateSet scratch;
  for (size_t id = 0; id < nodes.size(); ++id) {
    const int set_id = nodes[id].set_id;
    const int dfa_state = nodes[id].dfa_state;
    if (nfa_accepts(sets[set_id]) && !dfa.IsFinal(dfa_state)) {
      Word word;
      for (int cur = static_cast<int>(id); parent[cur] >= 0;
           cur = parent[cur]) {
        word.push_back(via_symbol[cur]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (int sym = 0; sym < num_symbols; ++sym) {
      nfa.NextInto(sets[set_id], sym, &scratch);
      if (scratch.empty()) continue;  // NFA can never accept from here
      intern(std::move(scratch), dfa.Next(dfa_state, sym),
             static_cast<int>(id), sym);
    }
  }
  return std::nullopt;
}

}  // namespace

bool DfaIncludedIn(const Dfa& a, const Dfa& b) {
  return AntichainIncluded(a.ToNfa(), b.ToNfa());
}

bool NfaIncludedInDfa(const Nfa& nfa, const Dfa& dfa) {
  return AntichainIncluded(nfa, dfa.ToNfa());
}

StatusOr<bool> NfaIncludedInDfa(const Nfa& nfa, const Dfa& dfa,
                                Budget* budget) {
  return AntichainIncluded(nfa, dfa.ToNfa(), budget);
}

bool NfaIncludedInNfa(const Nfa& a, const Nfa& b) {
  return AntichainIncluded(a, b);
}

StatusOr<bool> NfaIncludedInNfa(const Nfa& a, const Nfa& b, Budget* budget) {
  return AntichainIncluded(a, b, budget);
}

bool DfaEquivalent(const Dfa& a, const Dfa& b) {
  return DfaIncludedIn(a, b) && DfaIncludedIn(b, a);
}

std::optional<Word> DfaInclusionCounterexample(const Dfa& a, const Dfa& b) {
  return AntichainInclusionCounterexample(a.ToNfa(), b.ToNfa());
}

std::optional<Word> NfaDfaInclusionCounterexample(const Nfa& nfa,
                                                  const Dfa& dfa) {
  STAP_CHECK(nfa.num_symbols() == dfa.num_symbols());
  return AntichainInclusionCounterexample(nfa, dfa.ToNfa());
}

bool NfaIncludedInNfaViaSubsets(const Nfa& a, const Nfa& b) {
  STAP_CHECK(a.num_symbols() == b.num_symbols());
  const int num_symbols = a.num_symbols();
  // Pairs (state set of a, state set of b), searching for accept/reject.
  // Both components are interned to dense ids; the visited-pair set is a
  // flat table over packed id pairs.
  StateSetInterner sets_a;
  StateSetInterner sets_b;
  std::unordered_set<uint64_t, U64Hash> seen;
  std::vector<std::pair<int, int>> worklist;
  auto visit = [&](StateSet&& sa, StateSet&& sb) {
    int id_a = sets_a.Intern(std::move(sa)).first;
    int id_b = sets_b.Intern(std::move(sb)).first;
    if (seen.insert(PackPair(id_a, id_b)).second) {
      worklist.emplace_back(id_a, id_b);
    }
  };
  {
    StateSet ia = a.initial();
    StateSet ib = b.initial();
    visit(std::move(ia), std::move(ib));
  }
  auto accepts = [](const Nfa& nfa, const StateSet& set) {
    for (int q : set) {
      if (nfa.IsFinal(q)) return true;
    }
    return false;
  };
  StateSet scratch_a;
  StateSet scratch_b;
  for (size_t processed = 0; processed < worklist.size(); ++processed) {
    const auto [id_a, id_b] = worklist[processed];
    if (accepts(a, sets_a[id_a]) && !accepts(b, sets_b[id_b])) return false;
    for (int sym = 0; sym < num_symbols; ++sym) {
      a.NextInto(sets_a[id_a], sym, &scratch_a);
      if (scratch_a.empty()) continue;
      b.NextInto(sets_b[id_b], sym, &scratch_b);
      visit(std::move(scratch_a), std::move(scratch_b));
    }
  }
  return true;
}

std::optional<Word> NfaDfaInclusionCounterexampleViaSubsets(const Nfa& nfa,
                                                            const Dfa& dfa) {
  return SearchCounterexample(nfa, dfa);
}

StatusOr<bool> NfaIncludedInNfaViaSchemaDeterminize(const Nfa& a, const Nfa& b,
                                                    Budget* budget) {
  STAP_CHECK(a.num_symbols() == b.num_symbols());
  // Determinize the right side under the left side as context: subsets of
  // b reachable only outside L(a)'s prefix closure collapse into the
  // sink. The result agrees with det(b) on every word of L(a) (all its
  // prefixes are a-live), which is exactly the set the inclusion check
  // quantifies over.
  StatusOr<Dfa> guided = DeterminizeUnderSchema(b, a, budget);
  if (!guided.ok()) return guided.status();
  return NfaIncludedInDfa(a, *guided, budget);
}

}  // namespace stap
