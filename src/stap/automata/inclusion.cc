#include "stap/automata/inclusion.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "stap/base/check.h"

namespace stap {

namespace {

// BFS over pairs (state set of `nfa`, state of completed `dfa`) searching
// for a pair where the NFA accepts and the DFA does not. Returns a shortest
// witness word, or nullopt when L(nfa) ⊆ L(dfa).
//
// The reachable pairs are at most |2^Q_nfa| x |Q_dfa| in principle, but for
// the deterministic inputs used by Lemma 3.3 the first component stays a
// singleton and the search is polynomial. For genuinely non-deterministic
// inputs this is the textbook subset-product search.
std::optional<Word> SearchCounterexample(const Nfa& nfa, const Dfa& dfa_in) {
  STAP_CHECK(nfa.num_symbols() == dfa_in.num_symbols());
  const Dfa dfa = dfa_in.Completed();
  const int num_symbols = nfa.num_symbols();

  auto nfa_accepts = [&](const StateSet& set) {
    return std::any_of(set.begin(), set.end(),
                       [&](int q) { return nfa.IsFinal(q); });
  };

  using Pair = std::pair<StateSet, int>;
  std::map<Pair, int> ids;
  std::vector<Pair> nodes;
  std::vector<int> parent;
  std::vector<int> via_symbol;
  std::deque<int> queue;

  auto intern = [&](StateSet set, int dfa_state, int from, int symbol) -> int {
    auto [it, inserted] =
        ids.emplace(Pair(std::move(set), dfa_state), nodes.size());
    if (inserted) {
      nodes.push_back(it->first);
      parent.push_back(from);
      via_symbol.push_back(symbol);
      queue.push_back(it->second);
    }
    return it->second;
  };

  intern(nfa.initial(), dfa.initial(), -1, kNoSymbol);
  while (!queue.empty()) {
    int id = queue.front();
    queue.pop_front();
    // Copy: intern() below may reallocate `nodes`.
    const auto [set, dfa_state] = nodes[id];
    if (nfa_accepts(set) && !dfa.IsFinal(dfa_state)) {
      Word word;
      for (int cur = id; parent[cur] >= 0; cur = parent[cur]) {
        word.push_back(via_symbol[cur]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (int sym = 0; sym < num_symbols; ++sym) {
      StateSet next_set = nfa.Next(set, sym);
      if (next_set.empty()) continue;  // NFA can never accept from here
      intern(std::move(next_set), dfa.Next(dfa_state, sym), id, sym);
    }
  }
  return std::nullopt;
}

}  // namespace

bool DfaIncludedIn(const Dfa& a, const Dfa& b) {
  return !DfaInclusionCounterexample(a, b).has_value();
}

bool NfaIncludedInDfa(const Nfa& nfa, const Dfa& dfa) {
  return !SearchCounterexample(nfa, dfa).has_value();
}

bool NfaIncludedInNfa(const Nfa& a, const Nfa& b) {
  STAP_CHECK(a.num_symbols() == b.num_symbols());
  const int num_symbols = a.num_symbols();
  // Pairs (state set of a, state set of b), searching for accept/reject.
  std::map<std::pair<StateSet, StateSet>, bool> seen;
  std::vector<std::pair<StateSet, StateSet>> worklist;
  auto visit = [&](StateSet sa, StateSet sb) {
    auto [it, inserted] = seen.emplace(
        std::make_pair(std::move(sa), std::move(sb)), true);
    if (inserted) worklist.push_back(it->first);
  };
  visit(a.initial(), b.initial());
  auto accepts = [](const Nfa& nfa, const StateSet& set) {
    for (int q : set) {
      if (nfa.IsFinal(q)) return true;
    }
    return false;
  };
  size_t processed = 0;
  while (processed < worklist.size()) {
    auto [sa, sb] = worklist[processed];
    ++processed;
    if (accepts(a, sa) && !accepts(b, sb)) return false;
    for (int sym = 0; sym < num_symbols; ++sym) {
      StateSet next_a = a.Next(sa, sym);
      if (next_a.empty()) continue;
      visit(std::move(next_a), b.Next(sb, sym));
    }
  }
  return true;
}

bool DfaEquivalent(const Dfa& a, const Dfa& b) {
  return DfaIncludedIn(a, b) && DfaIncludedIn(b, a);
}

std::optional<Word> DfaInclusionCounterexample(const Dfa& a, const Dfa& b) {
  return SearchCounterexample(a.ToNfa(), b);
}

std::optional<Word> NfaDfaInclusionCounterexample(const Nfa& nfa,
                                                  const Dfa& dfa) {
  return SearchCounterexample(nfa, dfa);
}

}  // namespace stap
