#include "stap/automata/bitset.h"

namespace stap {

namespace {
constexpr size_t kInitialTableSize = 64;  // power of two
}  // namespace

DenseNfa::DenseNfa(const Nfa& nfa)
    : num_states_(nfa.num_states()),
      num_symbols_(nfa.num_symbols()),
      rows_(static_cast<size_t>(nfa.num_states()) * nfa.num_symbols()),
      initial_(nfa.num_states()),
      finals_(nfa.num_states()) {
  for (int q = 0; q < num_states_; ++q) {
    if (nfa.IsFinal(q)) finals_.Add(q);
    for (int a = 0; a < num_symbols_; ++a) {
      DenseStateSet& row = rows_[static_cast<size_t>(q) * num_symbols_ + a];
      row.Reset(num_states_);
      for (int r : nfa.Next(q, a)) row.Add(r);
    }
  }
  for (int q : nfa.initial()) initial_.Add(q);
}

DenseStateSetInterner::DenseStateSetInterner(int num_states)
    : num_states_(num_states), table_(kInitialTableSize, -1) {}

size_t DenseStateSetInterner::FindSlot(const DenseStateSet& set,
                                       uint64_t hash) const {
  const size_t mask = table_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    int32_t id = table_[i];
    if (id < 0) return i;
    if (hashes_[id] == hash && sets_[id] == set) return i;
    i = (i + 1) & mask;
  }
}

std::pair<int, bool> DenseStateSetInterner::Intern(const DenseStateSet& set) {
  const uint64_t hash = set.Hash();
  const size_t slot = FindSlot(set, hash);
  if (table_[slot] >= 0) return {table_[slot], false};
  const int id = static_cast<int>(sets_.size());
  sets_.push_back(set);
  hashes_.push_back(hash);
  table_[slot] = id;
  // Keep the load factor below 0.7.
  if (sets_.size() * 10 >= table_.size() * 7) Grow();
  return {id, true};
}

void DenseStateSetInterner::Grow() {
  table_.assign(table_.size() * 2, -1);
  const size_t mask = table_.size() - 1;
  // All stored sets are distinct, so reinsertion only probes for a hole.
  for (size_t id = 0; id < hashes_.size(); ++id) {
    size_t i = static_cast<size_t>(hashes_[id]) & mask;
    while (table_[i] >= 0) i = (i + 1) & mask;
    table_[i] = static_cast<int32_t>(id);
  }
}

}  // namespace stap
