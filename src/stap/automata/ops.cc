#include "stap/automata/ops.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

StatusOr<Dfa> DfaProduct(const Dfa& a_in, const Dfa& b_in, BoolOp op,
                         Budget* budget) {
  static Counter* const calls = GetCounter("ops.product_calls");
  static Counter* const states_created =
      GetCounter("ops.product_states_created");
  calls->Increment();
  ScopedSpan span("dfa_product");

  STAP_CHECK(a_in.num_symbols() == b_in.num_symbols());
  const Dfa a = a_in.Completed();
  const Dfa b = b_in.Completed();
  const int num_symbols = a.num_symbols();

  auto combine = [op](bool fa, bool fb) {
    switch (op) {
      case BoolOp::kAnd:
        return fa && fb;
      case BoolOp::kOr:
        return fa || fb;
      case BoolOp::kDiff:
        return fa && !fb;
    }
    return false;
  };

  std::unordered_map<uint64_t, int, U64Hash> ids;
  std::vector<std::pair<int, int>> worklist;  // id -> (qa, qb)
  Dfa product(0, num_symbols);
  // Budget exhaustion inside intern() latches here and unwinds the
  // exploration loop at the next iteration boundary.
  Status charge_status;
  auto intern = [&](int qa, int qb) -> int {
    auto [it, inserted] = ids.emplace(PackPair(qa, qb), product.num_states());
    if (inserted) {
      product.AddState();
      product.SetFinal(it->second, combine(a.IsFinal(qa), b.IsFinal(qb)));
      worklist.emplace_back(qa, qb);
      states_created->Increment();
      if (charge_status.ok()) charge_status = Budget::ChargeStates(budget);
    }
    return it->second;
  };

  product.SetInitial(intern(a.initial(), b.initial()));
  for (size_t id = 0; id < worklist.size() && charge_status.ok(); ++id) {
    auto [qa, qb] = worklist[id];
    for (int sym = 0; sym < num_symbols; ++sym) {
      product.SetTransition(static_cast<int>(id), sym,
                            intern(a.Next(qa, sym), b.Next(qb, sym)));
    }
  }
  STAP_RETURN_IF_ERROR(charge_status);
  span.AddArg("states_created", product.num_states());
  return product.Trimmed();
}

Dfa DfaProduct(const Dfa& a, const Dfa& b, BoolOp op) {
  StatusOr<Dfa> result = DfaProduct(a, b, op, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

Dfa DfaIntersection(const Dfa& a, const Dfa& b) {
  return DfaProduct(a, b, BoolOp::kAnd);
}

Dfa DfaUnion(const Dfa& a, const Dfa& b) {
  return DfaProduct(a, b, BoolOp::kOr);
}

Dfa DfaDifference(const Dfa& a, const Dfa& b) {
  return DfaProduct(a, b, BoolOp::kDiff);
}

Dfa DfaComplement(const Dfa& dfa) {
  Dfa complete = dfa.Completed();
  Dfa result = complete;
  for (int q = 0; q < complete.num_states(); ++q) {
    result.SetFinal(q, !complete.IsFinal(q));
  }
  return result;
}

Nfa NfaUnion(const Nfa& a, const Nfa& b) {
  STAP_CHECK(a.num_symbols() == b.num_symbols());
  Nfa result(a.num_states() + b.num_states(), a.num_symbols());
  // Source rows are already sorted and duplicate-free, so each row is
  // copied (shifted for b) in one bulk assignment instead of per-edge
  // sorted inserts.
  for (int q = 0; q < a.num_states(); ++q) {
    if (a.IsInitial(q)) result.AddInitial(q);
    if (a.IsFinal(q)) result.SetFinal(q);
    for (int sym = 0; sym < a.num_symbols(); ++sym) {
      result.SetTransitionRow(q, sym, a.Next(q, sym));
    }
  }
  const int offset = a.num_states();
  StateSet shifted;
  for (int q = 0; q < b.num_states(); ++q) {
    if (b.IsInitial(q)) result.AddInitial(offset + q);
    if (b.IsFinal(q)) result.SetFinal(offset + q);
    for (int sym = 0; sym < b.num_symbols(); ++sym) {
      const StateSet& row = b.Next(q, sym);
      if (row.empty()) continue;
      shifted.clear();
      shifted.reserve(row.size());
      for (int r : row) shifted.push_back(offset + r);
      result.SetTransitionRow(offset + q, sym, shifted);
    }
  }
  return result;
}

Nfa HomomorphicImage(const Dfa& dfa, const std::vector<int>& symbol_map,
                     int image_size) {
  STAP_CHECK(static_cast<int>(symbol_map.size()) == dfa.num_symbols());
  Nfa nfa(std::max(dfa.num_states(), 1), image_size);
  if (dfa.num_states() == 0) return nfa;
  nfa.AddInitial(dfa.initial());
  // Non-injective maps merge several source symbols into one image row;
  // gather each state's rows first, then sort-unique and emit each row
  // once (same idiom as Nfa::NextInto).
  std::vector<StateSet> rows(image_size);
  std::vector<int> touched;
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.IsFinal(q)) nfa.SetFinal(q);
    touched.clear();
    for (int sym = 0; sym < dfa.num_symbols(); ++sym) {
      int r = dfa.Next(q, sym);
      if (r == kNoState) continue;
      int image = symbol_map[sym];
      STAP_CHECK(image >= 0 && image < image_size);
      if (rows[image].empty()) touched.push_back(image);
      rows[image].push_back(r);
    }
    for (int image : touched) {
      StateSet& row = rows[image];
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      nfa.SetTransitionRow(q, image, std::move(row));
      row.clear();
    }
  }
  return nfa;
}

Dfa InverseHomomorphism(const Dfa& dfa, const std::vector<int>& symbol_map,
                        int domain_size) {
  STAP_CHECK(static_cast<int>(symbol_map.size()) == domain_size);
  Dfa result(std::max(dfa.num_states(), 1), domain_size);
  if (dfa.num_states() == 0) return result;
  result.SetInitial(dfa.initial());
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.IsFinal(q)) result.SetFinal(q);
    for (int sym = 0; sym < domain_size; ++sym) {
      int image = symbol_map[sym];
      if (image == kNoSymbol) continue;
      STAP_CHECK(image >= 0 && image < dfa.num_symbols());
      result.SetTransition(q, sym, dfa.Next(q, image));
    }
  }
  return result;
}

}  // namespace stap
