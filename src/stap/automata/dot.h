// Graphviz (DOT) rendering of automata and type automata, for debugging
// and documentation (e.g. reproducing the Example 2.6 figure).
#ifndef STAP_AUTOMATA_DOT_H_
#define STAP_AUTOMATA_DOT_H_

#include <string>

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"

namespace stap {

// Symbols are rendered via `alphabet` when given (must cover the
// automaton's symbol range), as raw ids otherwise.
std::string DfaToDot(const Dfa& dfa, const Alphabet* alphabet = nullptr);
std::string NfaToDot(const Nfa& nfa, const Alphabet* alphabet = nullptr);

}  // namespace stap

#endif  // STAP_AUTOMATA_DOT_H_
