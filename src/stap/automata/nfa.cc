#include "stap/automata/nfa.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "stap/base/check.h"

namespace stap {

bool StateSetInsert(StateSet& set, int state) {
  auto it = std::lower_bound(set.begin(), set.end(), state);
  if (it != set.end() && *it == state) return false;
  set.insert(it, state);
  return true;
}

bool StateSetContains(const StateSet& set, int state) {
  return std::binary_search(set.begin(), set.end(), state);
}

Nfa::Nfa(int num_states, int num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      delta_(static_cast<size_t>(num_states) * num_symbols),
      final_(num_states, false) {
  STAP_CHECK(num_states >= 0 && num_symbols >= 0);
}

int Nfa::AddState() {
  delta_.insert(delta_.end(), num_symbols_, StateSet());
  final_.push_back(false);
  return num_states_++;
}

void Nfa::AddTransition(int from, int symbol, int to) {
  STAP_CHECK(from >= 0 && from < num_states_);
  STAP_CHECK(to >= 0 && to < num_states_);
  STAP_CHECK(symbol >= 0 && symbol < num_symbols_);
  StateSetInsert(delta_[from * num_symbols_ + symbol], to);
}

void Nfa::SetTransitionRow(int from, int symbol, StateSet targets) {
  STAP_CHECK(from >= 0 && from < num_states_);
  STAP_CHECK(symbol >= 0 && symbol < num_symbols_);
  STAP_CHECK(std::is_sorted(targets.begin(), targets.end()));
  STAP_CHECK(targets.empty() ||
             (targets.front() >= 0 && targets.back() < num_states_));
  STAP_CHECK(std::adjacent_find(targets.begin(), targets.end()) ==
             targets.end());
  delta_[from * num_symbols_ + symbol] = std::move(targets);
}

void Nfa::AddInitial(int state) {
  STAP_CHECK(state >= 0 && state < num_states_);
  StateSetInsert(initial_, state);
}

void Nfa::SetFinal(int state, bool is_final) {
  STAP_CHECK(state >= 0 && state < num_states_);
  final_[state] = is_final;
}

StateSet Nfa::FinalStates() const {
  StateSet result;
  for (int q = 0; q < num_states_; ++q) {
    if (final_[q]) result.push_back(q);
  }
  return result;
}

StateSet Nfa::Next(const StateSet& states, int symbol) const {
  StateSet result;
  NextInto(states, symbol, &result);
  return result;
}

void Nfa::NextInto(const StateSet& states, int symbol, StateSet* out) const {
  // Concatenate all successor lists, then sort + dedupe once — cheaper
  // than the pairwise set_union chain it replaces, and allocation-free
  // when `out` has capacity.
  out->clear();
  for (int q : states) {
    const StateSet& succ = Next(q, symbol);
    out->insert(out->end(), succ.begin(), succ.end());
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

StateSet Nfa::Run(const Word& word) const {
  // Double-buffered NextInto: one allocation pair for the whole run
  // instead of a fresh successor vector per symbol.
  StateSet current = initial_;
  StateSet scratch;
  for (int symbol : word) {
    NextInto(current, symbol, &scratch);
    std::swap(current, scratch);
  }
  return current;
}

bool Nfa::Accepts(const Word& word) const {
  for (int q : Run(word)) {
    if (final_[q]) return true;
  }
  return false;
}

int64_t Nfa::Size() const {
  int64_t transitions = 0;
  for (const StateSet& targets : delta_) {
    transitions += static_cast<int64_t>(targets.size());
  }
  return num_states_ + transitions;
}

namespace {

// Marks all states reachable from `seeds` following `delta` forward.
std::vector<bool> ReachableFrom(const StateSet& seeds,
                                const std::vector<StateSet>& delta,
                                int num_states, int num_symbols) {
  std::vector<bool> seen(num_states, false);
  std::vector<int> stack(seeds.begin(), seeds.end());
  for (int q : seeds) seen[q] = true;
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    for (int a = 0; a < num_symbols; ++a) {
      for (int r : delta[q * num_symbols + a]) {
        if (!seen[r]) {
          seen[r] = true;
          stack.push_back(r);
        }
      }
    }
  }
  return seen;
}

}  // namespace

Nfa Nfa::Trimmed() const {
  std::vector<bool> forward =
      ReachableFrom(initial_, delta_, num_states_, num_symbols_);

  // Reverse transition relation for co-reachability.
  std::vector<StateSet> reverse(delta_.size());
  for (int q = 0; q < num_states_; ++q) {
    for (int a = 0; a < num_symbols_; ++a) {
      for (int r : delta_[q * num_symbols_ + a]) {
        StateSetInsert(reverse[r * num_symbols_ + a], q);
      }
    }
  }
  std::vector<bool> backward =
      ReachableFrom(FinalStates(), reverse, num_states_, num_symbols_);

  std::vector<int> remap(num_states_, -1);
  int next_id = 0;
  for (int q = 0; q < num_states_; ++q) {
    if (forward[q] && backward[q]) remap[q] = next_id++;
  }

  Nfa result(next_id, num_symbols_);
  for (int q = 0; q < num_states_; ++q) {
    if (remap[q] < 0) continue;
    if (IsInitial(q)) result.AddInitial(remap[q]);
    if (final_[q]) result.SetFinal(remap[q]);
    for (int a = 0; a < num_symbols_; ++a) {
      for (int r : delta_[q * num_symbols_ + a]) {
        if (remap[r] >= 0) result.AddTransition(remap[q], a, remap[r]);
      }
    }
  }
  return result;
}

bool Nfa::IsEmpty() const {
  std::vector<bool> seen =
      ReachableFrom(initial_, delta_, num_states_, num_symbols_);
  for (int q = 0; q < num_states_; ++q) {
    if (seen[q] && final_[q]) return false;
  }
  return true;
}

std::string Nfa::ToString() const {
  std::ostringstream os;
  os << "NFA states=" << num_states_ << " symbols=" << num_symbols_
     << " initial={";
  for (size_t i = 0; i < initial_.size(); ++i) {
    if (i > 0) os << ",";
    os << initial_[i];
  }
  os << "}\n";
  for (int q = 0; q < num_states_; ++q) {
    os << "  " << q << (final_[q] ? " [final]" : "") << ":";
    for (int a = 0; a < num_symbols_; ++a) {
      for (int r : delta_[q * num_symbols_ + a]) {
        os << " -" << a << "->" << r;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace stap
