// Dense bitset state sets and bitset-backed NFA transition rows.
//
// The sorted-vector StateSet of nfa.h is the right interchange format at
// API boundaries (sparse, ordered, cheap to diff), but the search kernels
// — subset construction, antichain inclusion, pair products — spend their
// time unioning successor sets and testing membership/subset relations.
// Over a fixed state universe those operations are word-parallel on a
// packed uint64_t representation:
//
//  * union            = block-wise OR
//  * subset test      = (a & ~b) == 0, one word at a time, early exit
//  * intersection test= (a & b) != 0, early exit
//  * hash             = splitmix64 fold over the blocks
//
// DenseNfa precomputes one DenseStateSet row per (state, symbol), so the
// successor set of a frontier is an OR of rows selected by the frontier's
// set bits — no sorting, no deduplication, no per-step allocation.
//
// DenseStateSetInterner mirrors StateSetInterner (state_set_hash.h) for
// the dense representation: open addressing over stored hashes, deque
// storage so references survive growth.
#ifndef STAP_AUTOMATA_BITSET_H_
#define STAP_AUTOMATA_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "stap/automata/nfa.h"
#include "stap/automata/state_set_hash.h"

namespace stap {

// A subset of a fixed universe {0, …, num_states-1}, packed 64 states per
// block. The universe size is fixed at construction (or Reset); all
// binary operations require equal universes.
class DenseStateSet {
 public:
  DenseStateSet() = default;
  explicit DenseStateSet(int num_states) { Reset(num_states); }

  // Clears and re-sizes to a (possibly different) universe.
  void Reset(int num_states) {
    num_states_ = num_states;
    blocks_.assign((static_cast<size_t>(num_states) + 63) / 64, 0);
  }

  int num_states() const { return num_states_; }
  size_t num_blocks() const { return blocks_.size(); }
  const uint64_t* blocks() const { return blocks_.data(); }

  void Clear() { std::fill(blocks_.begin(), blocks_.end(), uint64_t{0}); }

  void Add(int state) {
    blocks_[static_cast<size_t>(state) >> 6] |= uint64_t{1} << (state & 63);
  }

  bool Contains(int state) const {
    return (blocks_[static_cast<size_t>(state) >> 6] >>
            (state & 63)) & 1;
  }

  bool Empty() const {
    for (uint64_t b : blocks_) {
      if (b != 0) return false;
    }
    return true;
  }

  int Count() const {
    int count = 0;
    for (uint64_t b : blocks_) count += std::popcount(b);
    return count;
  }

  // this ⊆ other, word-parallel with early exit.
  bool IsSubsetOf(const DenseStateSet& other) const {
    for (size_t i = 0; i < blocks_.size(); ++i) {
      if ((blocks_[i] & ~other.blocks_[i]) != 0) return false;
    }
    return true;
  }

  // this ∩ other ≠ ∅, word-parallel with early exit.
  bool Intersects(const DenseStateSet& other) const {
    for (size_t i = 0; i < blocks_.size(); ++i) {
      if ((blocks_[i] & other.blocks_[i]) != 0) return true;
    }
    return false;
  }

  void UnionWith(const DenseStateSet& other) {
    for (size_t i = 0; i < blocks_.size(); ++i) {
      blocks_[i] |= other.blocks_[i];
    }
  }

  uint64_t Hash() const {
    uint64_t h = 0x243f6a8885a308d3ull ^
                 (blocks_.size() * 0x9e3779b97f4a7c15ull);
    for (uint64_t b : blocks_) h = MixU64(h ^ b);
    return h;
  }

  // Invokes fn(state) for every member, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < blocks_.size(); ++i) {
      uint64_t b = blocks_[i];
      while (b != 0) {
        fn(static_cast<int>(i * 64 + std::countr_zero(b)));
        b &= b - 1;
      }
    }
  }

  StateSet ToStateSet() const {
    StateSet result;
    result.reserve(Count());
    ForEach([&](int q) { result.push_back(q); });
    return result;
  }

  static DenseStateSet FromStateSet(const StateSet& set, int num_states) {
    DenseStateSet result(num_states);
    for (int q : set) result.Add(q);
    return result;
  }

  friend bool operator==(const DenseStateSet& a, const DenseStateSet& b) {
    return a.blocks_ == b.blocks_;
  }

 private:
  int num_states_ = 0;
  std::vector<uint64_t> blocks_;
};

// An Nfa snapshot with bitset transition rows: Row(q, a) is the successor
// set of q on a, and NextInto ORs the rows selected by a frontier.
class DenseNfa {
 public:
  explicit DenseNfa(const Nfa& nfa);

  int num_states() const { return num_states_; }
  int num_symbols() const { return num_symbols_; }

  const DenseStateSet& initial() const { return initial_; }
  const DenseStateSet& finals() const { return finals_; }

  const DenseStateSet& Row(int state, int symbol) const {
    return rows_[static_cast<size_t>(state) * num_symbols_ + symbol];
  }

  // Successors of every state in `states` on `symbol`, into `*out`
  // (cleared first). `*out` must be sized to this universe.
  void NextInto(const DenseStateSet& states, int symbol,
                DenseStateSet* out) const {
    out->Clear();
    states.ForEach([&](int q) { out->UnionWith(Row(q, symbol)); });
  }

  bool AnyFinal(const DenseStateSet& states) const {
    return states.Intersects(finals_);
  }

 private:
  int num_states_;
  int num_symbols_;
  std::vector<DenseStateSet> rows_;  // state * num_symbols + symbol
  DenseStateSet initial_;
  DenseStateSet finals_;
};

// Maps DenseStateSets (over one fixed universe) to dense ids 0, 1, 2, …
// in insertion order. Same design as StateSetInterner: open addressing
// over stored hashes, deque-backed storage for reference stability.
class DenseStateSetInterner {
 public:
  explicit DenseStateSetInterner(int num_states);

  // Interns a copy of `set`, returning (id, inserted). The argument is
  // never consumed, so callers reuse it as a scratch buffer.
  std::pair<int, bool> Intern(const DenseStateSet& set);

  // The set with the given id; stays valid across Intern calls.
  const DenseStateSet& operator[](int id) const { return sets_[id]; }

  int size() const { return static_cast<int>(sets_.size()); }

 private:
  size_t FindSlot(const DenseStateSet& set, uint64_t hash) const;
  void Grow();

  int num_states_;
  std::deque<DenseStateSet> sets_;  // id -> set
  std::vector<uint64_t> hashes_;    // id -> full hash
  std::vector<int32_t> table_;      // open addressing; -1 = empty
};

}  // namespace stap

#endif  // STAP_AUTOMATA_BITSET_H_
