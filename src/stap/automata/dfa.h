// Deterministic finite automata, possibly partial.
//
// A Dfa stores a transition table state x symbol -> state with kNoState
// marking missing transitions (partial automata are the common case for
// trimmed content models). Dfa values produced by Minimize() are in a
// canonical numbering, so operator== decides language equivalence of
// minimized automata structurally.
#ifndef STAP_AUTOMATA_DFA_H_
#define STAP_AUTOMATA_DFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stap/automata/nfa.h"

namespace stap {

inline constexpr int kNoState = -1;

class Dfa {
 public:
  // Constructs a DFA with `num_states` states, no transitions, and
  // initial state 0 (if any state exists).
  Dfa(int num_states, int num_symbols);

  // A zero-state, zero-symbol placeholder (accepts nothing).
  Dfa() : Dfa(0, 0) {}

  // The DFA accepting the empty language (a single non-final state).
  static Dfa EmptyLanguage(int num_symbols);

  // The DFA accepting exactly the empty word.
  static Dfa EpsilonOnly(int num_symbols);

  // The DFA accepting all words over the alphabet.
  static Dfa AllWords(int num_symbols);

  // The DFA accepting exactly the given finite set of words.
  static Dfa FromWords(const std::vector<Word>& words, int num_symbols);

  int num_states() const { return num_states_; }
  int num_symbols() const { return num_symbols_; }
  int initial() const { return initial_; }

  int AddState();
  void SetInitial(int state);
  void SetTransition(int from, int symbol, int to);
  void SetFinal(int state, bool is_final = true);

  bool IsFinal(int state) const { return final_[state]; }

  // Successor of `state` on `symbol`, or kNoState.
  int Next(int state, int symbol) const {
    return delta_[state * num_symbols_ + symbol];
  }

  // State reached from `from` on `word`, or kNoState if the run dies.
  int Run(int from, const Word& word) const;

  bool Accepts(const Word& word) const;

  // Size per the paper: number of states plus number of transitions.
  int64_t Size() const;

  // True if every (state, symbol) pair has a transition.
  bool IsComplete() const;

  // Returns a complete DFA for the same language (adds a sink if needed).
  Dfa Completed() const;

  // Restricts to reachable and co-reachable states (initial state is kept
  // even if dead, so the result always has >= 1 state).
  Dfa Trimmed() const;

  // True if no word is accepted.
  bool IsEmpty() const;

  // True if the empty word is accepted.
  bool AcceptsEpsilon() const { return final_[initial_]; }

  // View of this DFA as an NFA.
  Nfa ToNfa() const;

  // Lexicographically-shortest accepted word, if the language is non-empty.
  // Returns false if empty.
  bool ShortestWord(Word* out) const;

  // All accepted words of length <= max_length, in length-lex order.
  std::vector<Word> WordsUpToLength(int max_length) const;

  // Structural equality (same numbering). Language equality for canonical
  // (minimized) DFAs.
  friend bool operator==(const Dfa& a, const Dfa& b) {
    return a.num_states_ == b.num_states_ && a.num_symbols_ == b.num_symbols_ &&
           a.initial_ == b.initial_ && a.delta_ == b.delta_ &&
           a.final_ == b.final_;
  }

  std::string ToString() const;

 private:
  int num_states_;
  int num_symbols_;
  int initial_ = 0;
  std::vector<int> delta_;  // indexed by state * num_symbols + symbol
  std::vector<bool> final_;
};

}  // namespace stap

#endif  // STAP_AUTOMATA_DFA_H_
