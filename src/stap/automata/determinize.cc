#include "stap/automata/determinize.h"

#include <utility>

#include "stap/automata/state_set_hash.h"

namespace stap {

Dfa Determinize(const Nfa& nfa, std::vector<StateSet>* subsets) {
  const int num_symbols = nfa.num_symbols();
  StateSetInterner interner;

  Dfa dfa(0, num_symbols);
  interner.Intern(nfa.initial());
  dfa.AddState();
  dfa.SetInitial(0);

  // Subset ids double as the worklist: processing state id may discover
  // new subsets, which are appended and processed in turn. References
  // into the interner stay valid across inserts.
  StateSet scratch;
  for (int id = 0; id < interner.size(); ++id) {
    const StateSet& current = interner[id];
    for (int q : current) {
      if (nfa.IsFinal(q)) {
        dfa.SetFinal(id);
        break;
      }
    }
    for (int a = 0; a < num_symbols; ++a) {
      nfa.NextInto(current, a, &scratch);
      auto [next_id, inserted] = interner.Intern(std::move(scratch));
      if (inserted) dfa.AddState();
      dfa.SetTransition(id, a, next_id);
    }
  }
  if (subsets != nullptr) interner.MoveSetsInto(subsets);
  return dfa;
}

}  // namespace stap
