#include "stap/automata/determinize.h"

#include <map>
#include <utility>

namespace stap {

Dfa Determinize(const Nfa& nfa, std::vector<StateSet>* subsets) {
  const int num_symbols = nfa.num_symbols();
  std::map<StateSet, int> ids;
  std::vector<StateSet> worklist;

  Dfa dfa(0, num_symbols);
  auto intern = [&](StateSet set) -> int {
    auto [it, inserted] = ids.emplace(std::move(set), dfa.num_states());
    if (inserted) {
      dfa.AddState();
      worklist.push_back(it->first);
      if (subsets != nullptr) subsets->push_back(it->first);
    }
    return it->second;
  };

  int start = intern(nfa.initial());
  dfa.SetInitial(start);

  size_t processed = 0;
  while (processed < worklist.size()) {
    StateSet current = worklist[processed];
    int current_id = ids.at(current);
    ++processed;
    for (int q : current) {
      if (nfa.IsFinal(q)) {
        dfa.SetFinal(current_id);
        break;
      }
    }
    for (int a = 0; a < num_symbols; ++a) {
      int next_id = intern(nfa.Next(current, a));
      dfa.SetTransition(current_id, a, next_id);
    }
  }
  return dfa;
}

}  // namespace stap
