#include "stap/automata/determinize.h"

#include <unordered_map>
#include <utility>

#include "stap/automata/bitset.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

namespace {

// One instrument set shared by every entry point. The schema counters are
// resolved eagerly at static-init time (the registry outlives and
// predates any user, Global() being a function-local static), so the
// serve daemon's /metrics exposition lists them from the first scrape
// even before the first schema-guided call runs.
struct DeterminizeMetrics {
  Counter* calls = GetCounter("determinize.calls");
  Counter* states_created = GetCounter("determinize.states_created");
  Counter* schema_calls = GetCounter("determinize.schema_calls");
  Counter* schema_pruned_states = GetCounter("determinize.schema_pruned_states");
  Counter* schema_pruned_transitions =
      GetCounter("determinize.schema_pruned_transitions");
  Histogram* dfa_states = GetHistogram("determinize.dfa_states");
  Histogram* subset_size = GetHistogram("determinize.subset_size");
};

DeterminizeMetrics& Metrics() {
  static DeterminizeMetrics metrics;
  return metrics;
}

const DeterminizeMetrics& g_eager_metrics = Metrics();

// The single budgeted core behind all four public entry points. A null
// `context` runs the dense subset construction; a non-null context runs
// the joint (context subset, NFA subset) construction with sink
// collapsing. Both share the interners, charging, metrics, and span
// contract, so extensions land in one place.
StatusOr<Dfa> DeterminizeCore(const Nfa& nfa, const Nfa* context,
                              Budget* budget, std::vector<StateSet>* subsets,
                              std::vector<StateSet>* context_subsets,
                              SchemaDeterminizeStats* stats) {
  DeterminizeMetrics& metrics = Metrics();
  metrics.calls->Increment();
  // One span name for both paths: `stap explain` cross-checks the
  // states_created args of every "determinize" row against the registry
  // counter, and the schema path must stay inside that invariant. The
  // context_states arg distinguishes the two in the phase table.
  ScopedSpan span("determinize");
  span.AddArg("nfa_states", nfa.num_states());

  const int num_symbols = nfa.num_symbols();
  const DenseNfa dense(nfa);
  DenseStateSetInterner interner(nfa.num_states());

  Dfa dfa(0, num_symbols);
  // state_subset[id] is the interned NFA-subset id of DFA state id, or -1
  // for the shared sink of the schema path.
  std::vector<int> state_subset;
  Status charge_status;
  auto add_state = [&](int subset_id, bool is_final) {
    const int id = dfa.AddState();
    state_subset.push_back(subset_id);
    if (is_final) dfa.SetFinal(id);
    metrics.states_created->Increment();
    if (charge_status.ok()) charge_status = Budget::ChargeStates(budget);
    return id;
  };

  if (context == nullptr) {
    // Dense path. Subset ids double as the worklist: processing state id
    // may discover new subsets, which are appended and processed in turn.
    // Subsets are dense bitsets: the successor computation is an OR of
    // transition rows and interning hashes whole blocks — no sorting, no
    // per-element compares. References into the interner stay valid
    // across inserts.
    interner.Intern(dense.initial());
    add_state(0, dense.AnyFinal(dense.initial()));
    dfa.SetInitial(0);
    STAP_RETURN_IF_ERROR(charge_status);

    DenseStateSet scratch(nfa.num_states());
    for (int id = 0; id < interner.size(); ++id) {
      const DenseStateSet& current = interner[id];
      for (int a = 0; a < num_symbols; ++a) {
        dense.NextInto(current, a, &scratch);
        auto [next_id, inserted] = interner.Intern(scratch);
        if (inserted) {
          add_state(next_id, dense.AnyFinal(scratch));
          STAP_RETURN_IF_ERROR(charge_status);
        }
        dfa.SetTransition(id, a, next_id);
      }
    }
  } else {
    // Schema-guided path: the worklist holds (context subset id, NFA
    // subset id) pairs; a successor with a dead context half collapses
    // into one shared non-final sink, so subsets reachable only outside
    // the schema are never materialized.
    STAP_CHECK(context->num_symbols() == num_symbols);
    metrics.schema_calls->Increment();
    span.AddArg("context_states", context->num_states());

    const DenseNfa ctx(*context);
    DenseStateSetInterner ctx_interner(context->num_states());
    // Distinct NFA subsets seen at the pruning frontier; interned so the
    // pruned-states counter reports unique subsets, not transitions.
    DenseStateSetInterner pruned_interner(nfa.num_states());
    std::unordered_map<uint64_t, int, U64Hash> pair_ids;
    std::vector<std::pair<int, int>> pairs;  // DFA state -> (ctx id, sub id)
    int64_t pruned_transitions = 0;
    int64_t max_subset_size = 0;
    int sink = kNoState;
    auto sink_state = [&]() {
      if (sink == kNoState) {
        sink = add_state(-1, false);
        pairs.emplace_back(-1, -1);
        for (int a = 0; a < num_symbols; ++a) {
          dfa.SetTransition(sink, a, sink);
        }
      }
      return sink;
    };
    auto pair_state = [&](int ctx_id, int sub_id) {
      auto [it, inserted] =
          pair_ids.emplace(PackPair(ctx_id, sub_id), dfa.num_states());
      if (inserted) {
        add_state(sub_id, dense.AnyFinal(interner[sub_id]));
        pairs.emplace_back(ctx_id, sub_id);
        const int64_t size = interner[sub_id].Count();
        metrics.subset_size->Record(static_cast<double>(size));
        if (size > max_subset_size) max_subset_size = size;
      }
      return it->second;
    };

    if (ctx.initial().Empty() || dense.initial().Empty()) {
      // No word is live (or the NFA is empty at the root): the whole
      // automaton is the sink.
      dfa.SetInitial(sink_state());
      STAP_RETURN_IF_ERROR(charge_status);
    } else {
      const int ctx0 = ctx_interner.Intern(ctx.initial()).first;
      const int sub0 = interner.Intern(dense.initial()).first;
      dfa.SetInitial(pair_state(ctx0, sub0));
      STAP_RETURN_IF_ERROR(charge_status);

      DenseStateSet scratch(nfa.num_states());
      DenseStateSet ctx_scratch(context->num_states());
      // `pairs` doubles as the worklist; the sink (pair (-1, -1)) is
      // pre-wired and skipped.
      // `pairs[i]` is the pair interned as DFA state i (both grow in
      // lockstep), so the worklist index is the state id.
      for (size_t i = 0; i < pairs.size(); ++i) {
        const auto [ctx_id, sub_id] = pairs[i];
        if (sub_id < 0) continue;
        const int id = static_cast<int>(i);
        for (int a = 0; a < num_symbols; ++a) {
          ctx.NextInto(ctx_interner[ctx_id], a, &ctx_scratch);
          if (ctx_scratch.Empty()) {
            // Dead under the schema: whatever the NFA half would do,
            // no admitted word continues this way.
            dense.NextInto(interner[sub_id], a, &scratch);
            if (!scratch.Empty()) {
              ++pruned_transitions;
              if (pruned_interner.Intern(scratch).second) {
                metrics.schema_pruned_states->Increment();
              }
            }
            dfa.SetTransition(id, a, sink_state());
            STAP_RETURN_IF_ERROR(charge_status);
            continue;
          }
          dense.NextInto(interner[sub_id], a, &scratch);
          if (scratch.Empty()) {
            // The NFA died on a live context word: every extension is
            // rejected, same as the dense empty subset — one sink
            // serves both collapse rules.
            dfa.SetTransition(id, a, sink_state());
            STAP_RETURN_IF_ERROR(charge_status);
            continue;
          }
          const int next_ctx = ctx_interner.Intern(ctx_scratch).first;
          const int next_sub = interner.Intern(scratch).first;
          dfa.SetTransition(id, a, pair_state(next_ctx, next_sub));
          STAP_RETURN_IF_ERROR(charge_status);
        }
      }
    }
    metrics.schema_pruned_transitions->Increment(pruned_transitions);
    span.AddArg("pruned_states", pruned_interner.size());
    span.AddArg("pruned_transitions", pruned_transitions);
    if (stats != nullptr) {
      stats->pair_states = dfa.num_states();
      stats->pruned_states = pruned_interner.size();
      stats->pruned_transitions = pruned_transitions;
      stats->max_subset_size = max_subset_size;
    }
    if (context_subsets != nullptr) {
      context_subsets->reserve(context_subsets->size() + pairs.size());
      for (const auto& [ctx_id, sub_id] : pairs) {
        context_subsets->push_back(
            ctx_id >= 0 ? ctx_interner[ctx_id].ToStateSet() : StateSet{});
      }
    }
  }

  metrics.dfa_states->Record(dfa.num_states());
  // The same quantity the registry counts: subset states created (the
  // `stap explain` table cross-checks the two).
  span.AddArg("states_created", dfa.num_states());
  if (subsets != nullptr) {
    subsets->reserve(subsets->size() + state_subset.size());
    for (int subset_id : state_subset) {
      subsets->push_back(subset_id >= 0 ? interner[subset_id].ToStateSet()
                                        : StateSet{});
    }
  }
  return dfa;
}

}  // namespace

StatusOr<Dfa> Determinize(const Nfa& nfa, Budget* budget,
                          std::vector<StateSet>* subsets) {
  return DeterminizeCore(nfa, nullptr, budget, subsets, nullptr, nullptr);
}

Dfa Determinize(const Nfa& nfa, std::vector<StateSet>* subsets) {
  // A null budget can never exhaust, so the result is always OK.
  StatusOr<Dfa> result =
      DeterminizeCore(nfa, nullptr, nullptr, subsets, nullptr, nullptr);
  return *std::move(result);
}

StatusOr<Dfa> Determinize(const Nfa& nfa, const Nfa* context, Budget* budget,
                          std::vector<StateSet>* subsets) {
  return DeterminizeCore(nfa, context, budget, subsets, nullptr, nullptr);
}

StatusOr<Dfa> DeterminizeUnderSchema(const Nfa& nfa, const Nfa& context,
                                     Budget* budget,
                                     std::vector<StateSet>* subsets,
                                     std::vector<StateSet>* context_subsets,
                                     SchemaDeterminizeStats* stats) {
  return DeterminizeCore(nfa, &context, budget, subsets, context_subsets,
                         stats);
}

}  // namespace stap
