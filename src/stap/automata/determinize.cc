#include "stap/automata/determinize.h"

#include <utility>

#include "stap/automata/bitset.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

StatusOr<Dfa> Determinize(const Nfa& nfa, Budget* budget,
                          std::vector<StateSet>* subsets) {
  static Counter* const calls = GetCounter("determinize.calls");
  static Counter* const states_created =
      GetCounter("determinize.states_created");
  static Histogram* const dfa_states = GetHistogram("determinize.dfa_states");
  calls->Increment();
  ScopedSpan span("determinize");
  span.AddArg("nfa_states", nfa.num_states());

  const int num_symbols = nfa.num_symbols();
  const DenseNfa dense(nfa);
  DenseStateSetInterner interner(nfa.num_states());

  Dfa dfa(0, num_symbols);
  interner.Intern(dense.initial());
  dfa.AddState();
  dfa.SetInitial(0);
  states_created->Increment();
  STAP_RETURN_IF_ERROR(Budget::ChargeStates(budget));

  // Subset ids double as the worklist: processing state id may discover
  // new subsets, which are appended and processed in turn. Subsets are
  // dense bitsets: the successor computation is an OR of transition rows
  // and interning hashes whole blocks — no sorting, no per-element
  // compares. References into the interner stay valid across inserts.
  DenseStateSet scratch(nfa.num_states());
  for (int id = 0; id < interner.size(); ++id) {
    const DenseStateSet& current = interner[id];
    if (dense.AnyFinal(current)) dfa.SetFinal(id);
    for (int a = 0; a < num_symbols; ++a) {
      dense.NextInto(current, a, &scratch);
      auto [next_id, inserted] = interner.Intern(scratch);
      if (inserted) {
        dfa.AddState();
        states_created->Increment();
        STAP_RETURN_IF_ERROR(Budget::ChargeStates(budget));
      }
      dfa.SetTransition(id, a, next_id);
    }
  }
  dfa_states->Record(dfa.num_states());
  // The same quantity the registry counts: subset states created (the
  // `stap explain` table cross-checks the two).
  span.AddArg("states_created", dfa.num_states());
  if (subsets != nullptr) {
    subsets->reserve(subsets->size() + interner.size());
    for (int id = 0; id < interner.size(); ++id) {
      subsets->push_back(interner[id].ToStateSet());
    }
  }
  return dfa;
}

Dfa Determinize(const Nfa& nfa, std::vector<StateSet>* subsets) {
  // A null budget can never exhaust, so the result is always OK.
  StatusOr<Dfa> result = Determinize(nfa, nullptr, subsets);
  return *std::move(result);
}

}  // namespace stap
