// Non-deterministic finite automata over dense integer alphabets.
//
// States and symbols are dense ids. Transition targets are kept as sorted,
// duplicate-free vectors so that state sets compose cheaply during subset
// construction. An Nfa has no epsilon transitions; the regex module
// compiles expressions via the (epsilon-free) Glushkov construction.
#ifndef STAP_AUTOMATA_NFA_H_
#define STAP_AUTOMATA_NFA_H_

#include <string>
#include <vector>

#include "stap/automata/alphabet.h"

namespace stap {

// A word over an integer alphabet.
using Word = std::vector<int>;

// A sorted, duplicate-free set of state ids.
using StateSet = std::vector<int>;

// Inserts `state` into the sorted set `set` if absent; returns true if added.
bool StateSetInsert(StateSet& set, int state);

// True if the sorted set `set` contains `state`.
bool StateSetContains(const StateSet& set, int state);

class Nfa {
 public:
  Nfa(int num_states, int num_symbols);

  int num_states() const { return num_states_; }
  int num_symbols() const { return num_symbols_; }

  // Adds a state and returns its id.
  int AddState();

  void AddTransition(int from, int symbol, int to);

  // Replaces the whole successor row of (from, symbol). `targets` must be
  // sorted and duplicate-free; bulk construction (ops.cc) uses this to
  // emit each row once instead of paying a sorted insert per edge.
  void SetTransitionRow(int from, int symbol, StateSet targets);

  void AddInitial(int state);
  void SetFinal(int state, bool is_final = true);

  bool IsInitial(int state) const { return StateSetContains(initial_, state); }
  bool IsFinal(int state) const { return final_[state]; }

  const StateSet& initial() const { return initial_; }

  // All final states, as a sorted set.
  StateSet FinalStates() const;

  // Successors of `state` on `symbol` (sorted).
  const StateSet& Next(int state, int symbol) const {
    return delta_[state * num_symbols_ + symbol];
  }

  // Successors of every state in `states` on `symbol` (sorted union).
  StateSet Next(const StateSet& states, int symbol) const;

  // As above, writing into `*out` (cleared first) so hot loops can reuse
  // one scratch buffer instead of allocating per step.
  void NextInto(const StateSet& states, int symbol, StateSet* out) const;

  // The set of states reachable from the initial states on `word`.
  StateSet Run(const Word& word) const;

  // Whether the automaton accepts `word`.
  bool Accepts(const Word& word) const;

  // Size per the paper: number of states plus total transition count.
  int64_t Size() const;

  // Restricts to states that are both reachable and co-reachable; renumbers
  // states. The result accepts the same language.
  Nfa Trimmed() const;

  // True if some word is accepted.
  bool IsEmpty() const;

  // Debug listing of states and transitions.
  std::string ToString() const;

 private:
  int num_states_;
  int num_symbols_;
  std::vector<StateSet> delta_;  // indexed by state * num_symbols + symbol
  StateSet initial_;
  std::vector<bool> final_;
};

}  // namespace stap

#endif  // STAP_AUTOMATA_NFA_H_
