#include "stap/automata/antichain.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "stap/automata/bitset.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

namespace {

// Layered BFS core. The search expands one depth layer at a time; nodes
// are (a_state, b-set) pairs whose set is the EXACT set of b-states
// reachable on the node's path word (sets are only ever propagated along
// transitions, never merged), so an accepting pair certifies a real
// counterexample of exactly its depth.
//
// Pruning happens in two stages, both of which only ever compare against
// pairs with the SAME a-state:
//
//  1. Against kept elders (strictly smaller depth): a candidate (p, S')
//     is discarded when a kept (p, S) with S ⊆ S' exists — every
//     counterexample extension of S' is one of S, at smaller depth.
//     Elders are never dropped in favor of later smaller sets: an elder
//     sits at smaller depth, and removing it could lengthen the first
//     counterexample found.
//  2. Within the layer being built: candidates of equal depth are reduced
//     to the ⊆-minimal antichain (here pruning IS bidirectional — a
//     superset candidate may arrive before the subset that kills it).
//     This is what keeps the frontier polynomial on families like
//     (a+b)*a(a+b)^n, where every layer regenerates the full suffix
//     pattern space but only two sets per a-state are minimal; with
//     insertion-order-only pruning the supersets survive and the layer
//     widths double. Dropping a same-depth superset is witness-safe:
//     if (p, S') accepts (p final, S' ∩ F = ∅), then so does the
//     surviving (p, S ⊆ S') at the same depth.
//
// Acceptance is tested on every GENERATED candidate, before any pruning,
// so detection is not delayed by stage 2. Invariant: for every word w and
// a-state p reachable on w, a kept pair (p, T) with T ⊆ S_w exists at
// depth ≤ |w| (induction: the prefix's kept cover expands, its successor
// candidate is covered by whatever survives stages 1–2). Hence a shortest
// counterexample of length L forces an accepting candidate at some layer
// ≤ L, and any accepting candidate is exact — the first detection depth
// equals L, matching the determinize-based BFS oracle.
//
// Resource accounting: every kept node charges the budget's state quota,
// every generated successor set charges the set quota, and each layer
// boundary samples the deadline, so adversarial instances abort with
// kResourceExhausted after bounded work.
struct Node {
  int a_state;
  int parent;
  int via_symbol;
};

Word ReconstructWord(const std::vector<Node>& nodes, int parent, int via) {
  Word word;
  if (via != kNoSymbol) word.push_back(via);
  for (int cur = parent; cur >= 0 && nodes[cur].parent >= 0;
       cur = nodes[cur].parent) {
    word.push_back(nodes[cur].via_symbol);
  }
  std::reverse(word.begin(), word.end());
  return word;
}

}  // namespace

StatusOr<std::optional<Word>> AntichainInclusionCounterexample(
    const Nfa& a, const Nfa& b, Budget* budget) {
  static Counter* const calls = GetCounter("antichain.calls");
  static Counter* const nodes_kept = GetCounter("antichain.nodes_kept");
  static Counter* const candidates_generated =
      GetCounter("antichain.candidates");
  static Counter* const prunes_layer =
      GetCounter("antichain.subsumption_prunes_layer");
  static Counter* const prunes_elder =
      GetCounter("antichain.subsumption_prunes_elder");
  static Histogram* const frontier_size =
      GetHistogram("antichain.layer_width");
  calls->Increment();
  ScopedSpan call_span("antichain.inclusion");
  call_span.AddArg("a_states", a.num_states());
  call_span.AddArg("b_states", b.num_states());

  STAP_CHECK(a.num_symbols() == b.num_symbols());
  const int num_symbols = a.num_symbols();
  const DenseNfa dense_b(b);

  std::vector<Node> nodes;  // kept nodes, all layers
  std::deque<DenseStateSet> node_sets;      // parallel to nodes
  std::vector<std::vector<int>> kept(a.num_states());  // kept ids per p
  std::vector<int> layer;                   // node ids to expand next

  // Candidates of the layer being built. Successor sets are shared by all
  // a-successors of one (node, symbol) expansion via set ids.
  struct Cand {
    int set_id;
    int parent;
    int via_symbol;
  };
  std::deque<DenseStateSet> cand_sets;
  std::vector<std::vector<Cand>> cand(a.num_states());
  std::vector<int> cand_states;  // a-states with candidates this layer

  // Detected counterexample, if any: returns true when accepting.
  std::optional<Word> witness;
  auto offer = [&](int a_state, const DenseStateSet& s, int set_id,
                   int parent, int via) {
    candidates_generated->Increment();
    if (!witness.has_value() && a.IsFinal(a_state) && !dense_b.AnyFinal(s)) {
      witness = ReconstructWord(nodes, parent, via);
      return true;
    }
    if (cand[a_state].empty()) cand_states.push_back(a_state);
    cand[a_state].push_back(Cand{set_id, parent, via});
    return false;
  };

  // Per-settle tallies mirrored into the layer spans (the registry
  // counters are process-global, so per-layer deltas need locals).
  int64_t settle_prunes = 0;
  int64_t settle_kept = 0;

  // Folds the pending candidates into the kept frontier (stages 1 and 2)
  // and returns the new layer.
  auto settle = [&]() -> Status {
    settle_prunes = 0;
    settle_kept = 0;
    layer.clear();
    for (int p : cand_states) {
      // Stage 2 first: reduce this layer's candidates for p to the
      // ⊆-minimal antichain (survivors are not yet expanded, so dropping
      // a superset — in either arrival order — is safe).
      std::vector<Cand> minimal;
      for (const Cand& c : cand[p]) {
        const DenseStateSet& s = cand_sets[c.set_id];
        bool dominated = false;
        for (const Cand& m : minimal) {
          if (cand_sets[m.set_id].IsSubsetOf(s)) {
            dominated = true;
            break;
          }
        }
        if (dominated) {
          prunes_layer->Increment();
          ++settle_prunes;
          continue;
        }
        const size_t before = minimal.size();
        minimal.erase(
            std::remove_if(minimal.begin(), minimal.end(),
                           [&](const Cand& m) {
                             return s.IsSubsetOf(cand_sets[m.set_id]);
                           }),
            minimal.end());
        prunes_layer->Increment(static_cast<int64_t>(before - minimal.size()));
        settle_prunes += static_cast<int64_t>(before - minimal.size());
        minimal.push_back(c);
      }
      // Stage 1: drop survivors covered by kept elders.
      for (const Cand& c : minimal) {
        const DenseStateSet& s = cand_sets[c.set_id];
        bool dominated = false;
        for (int id : kept[p]) {
          if (node_sets[id].IsSubsetOf(s)) {
            dominated = true;
            break;
          }
        }
        if (dominated) {
          prunes_elder->Increment();
          ++settle_prunes;
          continue;
        }
        int id = static_cast<int>(nodes.size());
        kept[p].push_back(id);
        layer.push_back(id);
        nodes.push_back(Node{p, c.parent, c.via_symbol});
        node_sets.push_back(cand_sets[c.set_id]);
        nodes_kept->Increment();
        ++settle_kept;
        STAP_RETURN_IF_ERROR(Budget::ChargeStates(budget));
      }
      cand[p].clear();
    }
    cand_states.clear();
    cand_sets.clear();
    frontier_size->Record(static_cast<double>(layer.size()));
    return Status();
  };

  // Depth-0 candidates: every a-initial state against the b-initial set.
  {
    ScopedSpan layer_span("antichain.layer");
    layer_span.AddArg("depth", 0);
    const DenseStateSet& init = dense_b.initial();
    cand_sets.push_back(init);
    STAP_RETURN_IF_ERROR(Budget::ChargeSets(budget));
    for (int p : a.initial()) {
      if (offer(p, init, 0, -1, kNoSymbol)) return witness;
    }
    STAP_RETURN_IF_ERROR(settle());
    layer_span.AddArg("frontier", layer.size());
    layer_span.AddArg("prunes", settle_prunes);
  }

  DenseStateSet scratch(b.num_states());
  int depth = 0;
  while (!layer.empty()) {
    ScopedSpan layer_span("antichain.layer");
    layer_span.AddArg("depth", ++depth);
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    std::vector<int> current;
    std::swap(current, layer);
    layer_span.AddArg("expanded", current.size());
    for (int id : current) {
      const int p = nodes[id].a_state;
      for (int sym = 0; sym < num_symbols; ++sym) {
        const StateSet& succ = a.Next(p, sym);
        if (succ.empty()) continue;
        dense_b.NextInto(node_sets[id], sym, &scratch);
        int set_id = static_cast<int>(cand_sets.size());
        cand_sets.push_back(scratch);
        STAP_RETURN_IF_ERROR(Budget::ChargeSets(budget));
        for (int p_next : succ) {
          if (offer(p_next, scratch, set_id, id, sym)) return witness;
        }
      }
    }
    STAP_RETURN_IF_ERROR(settle());
    // Frontier width and subsumption prunes of THIS layer — the numbers
    // that distinguish a polynomial frontier from the 2^n blowup.
    layer_span.AddArg("frontier", layer.size());
    layer_span.AddArg("kept", settle_kept);
    layer_span.AddArg("prunes", settle_prunes);
  }
  call_span.AddArg("nodes_kept", nodes.size());
  call_span.AddArg("layers", depth + 1);
  return std::optional<Word>(std::nullopt);
}

std::optional<Word> AntichainInclusionCounterexample(const Nfa& a,
                                                     const Nfa& b) {
  StatusOr<std::optional<Word>> result =
      AntichainInclusionCounterexample(a, b, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<bool> AntichainIncluded(const Nfa& a, const Nfa& b,
                                 Budget* budget) {
  StatusOr<std::optional<Word>> witness =
      AntichainInclusionCounterexample(a, b, budget);
  if (!witness.ok()) return witness.status();
  return !witness->has_value();
}

bool AntichainIncluded(const Nfa& a, const Nfa& b) {
  return !AntichainInclusionCounterexample(a, b).has_value();
}

StatusOr<std::optional<Word>> AntichainUniversalityCounterexample(
    const Nfa& nfa, Budget* budget) {
  // Universality is inclusion of Σ* — run the engine against the
  // one-state all-accepting NFA on the left.
  const int num_symbols = nfa.num_symbols();
  Nfa all(1, num_symbols);
  all.AddInitial(0);
  all.SetFinal(0);
  for (int sym = 0; sym < num_symbols; ++sym) {
    all.AddTransition(0, sym, 0);
  }
  return AntichainInclusionCounterexample(all, nfa, budget);
}

std::optional<Word> AntichainUniversalityCounterexample(const Nfa& nfa) {
  StatusOr<std::optional<Word>> result =
      AntichainUniversalityCounterexample(nfa, nullptr);
  return *std::move(result);
}

bool AntichainUniversal(const Nfa& nfa) {
  return !AntichainUniversalityCounterexample(nfa).has_value();
}

StatusOr<bool> AntichainEquivalent(const Nfa& a, const Nfa& b,
                                   Budget* budget) {
  StatusOr<bool> forward = AntichainIncluded(a, b, budget);
  if (!forward.ok() || !*forward) return forward;
  return AntichainIncluded(b, a, budget);
}

bool AntichainEquivalent(const Nfa& a, const Nfa& b) {
  return AntichainIncluded(a, b) && AntichainIncluded(b, a);
}

}  // namespace stap
