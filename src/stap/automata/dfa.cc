#include "stap/automata/dfa.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "stap/base/check.h"

namespace stap {

Dfa::Dfa(int num_states, int num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      delta_(static_cast<size_t>(num_states) * num_symbols, kNoState),
      final_(num_states, false) {
  STAP_CHECK(num_states >= 0 && num_symbols >= 0);
}

Dfa Dfa::EmptyLanguage(int num_symbols) { return Dfa(1, num_symbols); }

Dfa Dfa::EpsilonOnly(int num_symbols) {
  Dfa dfa(1, num_symbols);
  dfa.SetFinal(0);
  return dfa;
}

Dfa Dfa::AllWords(int num_symbols) {
  Dfa dfa(1, num_symbols);
  dfa.SetFinal(0);
  for (int a = 0; a < num_symbols; ++a) dfa.SetTransition(0, a, 0);
  return dfa;
}

Dfa Dfa::FromWords(const std::vector<Word>& words, int num_symbols) {
  // Build a trie; tries are deterministic by construction.
  Dfa dfa(1, num_symbols);
  for (const Word& word : words) {
    int state = 0;
    for (int symbol : word) {
      STAP_CHECK(symbol >= 0 && symbol < num_symbols);
      int next = dfa.Next(state, symbol);
      if (next == kNoState) {
        next = dfa.AddState();
        dfa.SetTransition(state, symbol, next);
      }
      state = next;
    }
    dfa.SetFinal(state);
  }
  return dfa;
}

int Dfa::AddState() {
  delta_.insert(delta_.end(), num_symbols_, kNoState);
  final_.push_back(false);
  return num_states_++;
}

void Dfa::SetInitial(int state) {
  STAP_CHECK(state >= 0 && state < num_states_);
  initial_ = state;
}

void Dfa::SetTransition(int from, int symbol, int to) {
  STAP_CHECK(from >= 0 && from < num_states_);
  STAP_CHECK(symbol >= 0 && symbol < num_symbols_);
  STAP_CHECK(to == kNoState || (to >= 0 && to < num_states_));
  delta_[from * num_symbols_ + symbol] = to;
}

void Dfa::SetFinal(int state, bool is_final) {
  STAP_CHECK(state >= 0 && state < num_states_);
  final_[state] = is_final;
}

int Dfa::Run(int from, const Word& word) const {
  int state = from;
  for (int symbol : word) {
    if (state == kNoState) return kNoState;
    state = Next(state, symbol);
  }
  return state;
}

bool Dfa::Accepts(const Word& word) const {
  if (num_states_ == 0) return false;
  int state = Run(initial_, word);
  return state != kNoState && final_[state];
}

int64_t Dfa::Size() const {
  int64_t transitions = 0;
  for (int next : delta_) {
    if (next != kNoState) ++transitions;
  }
  return num_states_ + transitions;
}

bool Dfa::IsComplete() const {
  for (int next : delta_) {
    if (next == kNoState) return false;
  }
  return num_states_ > 0;
}

Dfa Dfa::Completed() const {
  if (IsComplete()) return *this;
  Dfa result = *this;
  if (result.num_states_ == 0) result.SetInitial(result.AddState());
  int sink = result.AddState();
  for (int q = 0; q < result.num_states_; ++q) {
    for (int a = 0; a < num_symbols_; ++a) {
      if (result.Next(q, a) == kNoState) result.SetTransition(q, a, sink);
    }
  }
  return result;
}

Dfa Dfa::Trimmed() const {
  if (num_states_ == 0) return Dfa::EmptyLanguage(num_symbols_);
  // Forward reachability from the initial state.
  std::vector<bool> reach(num_states_, false);
  std::vector<int> stack = {initial_};
  reach[initial_] = true;
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    for (int a = 0; a < num_symbols_; ++a) {
      int r = Next(q, a);
      if (r != kNoState && !reach[r]) {
        reach[r] = true;
        stack.push_back(r);
      }
    }
  }
  // Backward reachability from final states.
  std::vector<std::vector<int>> reverse(num_states_);
  for (int q = 0; q < num_states_; ++q) {
    for (int a = 0; a < num_symbols_; ++a) {
      int r = Next(q, a);
      if (r != kNoState) reverse[r].push_back(q);
    }
  }
  std::vector<bool> coreach(num_states_, false);
  for (int q = 0; q < num_states_; ++q) {
    if (final_[q]) {
      coreach[q] = true;
      stack.push_back(q);
    }
  }
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    for (int p : reverse[q]) {
      if (!coreach[p]) {
        coreach[p] = true;
        stack.push_back(p);
      }
    }
  }

  std::vector<int> remap(num_states_, kNoState);
  int next_id = 0;
  // The initial state is always kept so the result is well-formed.
  remap[initial_] = next_id++;
  for (int q = 0; q < num_states_; ++q) {
    if (q != initial_ && reach[q] && coreach[q]) remap[q] = next_id++;
  }

  Dfa result(next_id, num_symbols_);
  result.SetInitial(0);
  for (int q = 0; q < num_states_; ++q) {
    if (remap[q] == kNoState) continue;
    if (final_[q]) result.SetFinal(remap[q]);
    // Keep only transitions between useful states.
    if (!(reach[q] && coreach[q])) continue;
    for (int a = 0; a < num_symbols_; ++a) {
      int r = Next(q, a);
      if (r != kNoState && reach[r] && coreach[r]) {
        result.SetTransition(remap[q], a, remap[r]);
      }
    }
  }
  return result;
}

bool Dfa::IsEmpty() const {
  Word unused;
  return !ShortestWord(&unused);
}

Nfa Dfa::ToNfa() const {
  Nfa nfa(std::max(num_states_, 1), num_symbols_);
  if (num_states_ == 0) return nfa;
  nfa.AddInitial(initial_);
  for (int q = 0; q < num_states_; ++q) {
    if (final_[q]) nfa.SetFinal(q);
    for (int a = 0; a < num_symbols_; ++a) {
      int r = Next(q, a);
      if (r != kNoState) nfa.AddTransition(q, a, r);
    }
  }
  return nfa;
}

bool Dfa::ShortestWord(Word* out) const {
  if (num_states_ == 0) return false;
  // BFS exploring symbols in increasing order yields the length-lex
  // smallest witness.
  std::vector<int> parent(num_states_, kNoState);
  std::vector<int> via_symbol(num_states_, kNoSymbol);
  std::vector<bool> seen(num_states_, false);
  std::deque<int> queue = {initial_};
  seen[initial_] = true;
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    if (final_[q]) {
      Word word;
      for (int s = q; parent[s] != kNoState; s = parent[s]) {
        word.push_back(via_symbol[s]);
      }
      std::reverse(word.begin(), word.end());
      *out = std::move(word);
      return true;
    }
    for (int a = 0; a < num_symbols_; ++a) {
      int r = Next(q, a);
      if (r != kNoState && !seen[r]) {
        seen[r] = true;
        parent[r] = q;
        via_symbol[r] = a;
        queue.push_back(r);
      }
    }
  }
  return false;
}

std::vector<Word> Dfa::WordsUpToLength(int max_length) const {
  std::vector<Word> result;
  if (num_states_ == 0) return result;
  // Breadth-first over words (length-lex order).
  std::deque<std::pair<Word, int>> queue;
  queue.emplace_back(Word{}, initial_);
  while (!queue.empty()) {
    auto [word, state] = std::move(queue.front());
    queue.pop_front();
    if (final_[state]) result.push_back(word);
    if (static_cast<int>(word.size()) == max_length) continue;
    for (int a = 0; a < num_symbols_; ++a) {
      int r = Next(state, a);
      if (r == kNoState) continue;
      Word next = word;
      next.push_back(a);
      queue.emplace_back(std::move(next), r);
    }
  }
  return result;
}

std::string Dfa::ToString() const {
  std::ostringstream os;
  os << "DFA states=" << num_states_ << " symbols=" << num_symbols_
     << " initial=" << initial_ << "\n";
  for (int q = 0; q < num_states_; ++q) {
    os << "  " << q << (final_[q] ? " [final]" : "") << ":";
    for (int a = 0; a < num_symbols_; ++a) {
      int r = Next(q, a);
      if (r != kNoState) os << " -" << a << "->" << r;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace stap
