// Language inclusion and equivalence tests.
#ifndef STAP_AUTOMATA_INCLUSION_H_
#define STAP_AUTOMATA_INCLUSION_H_

#include <optional>

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"

namespace stap {

// L(a) ⊆ L(b)? Polynomial: product search for a counterexample.
bool DfaIncludedIn(const Dfa& a, const Dfa& b);

// L(nfa) ⊆ L(dfa)? Polynomial: pairs (NFA state, DFA state) search.
// This is the engine behind the paper's Lemma 3.3.
bool NfaIncludedInDfa(const Nfa& nfa, const Dfa& dfa);

// L(a) ⊆ L(b)? Determinizes `b` on the fly (worst-case exponential in
// |b| — the PSPACE-hard case of Section 5's NFA content models).
bool NfaIncludedInNfa(const Nfa& a, const Nfa& b);

// L(a) == L(b)?
bool DfaEquivalent(const Dfa& a, const Dfa& b);

// A shortest word in L(a) \ L(b), if any.
std::optional<Word> DfaInclusionCounterexample(const Dfa& a, const Dfa& b);

// A shortest word in L(nfa) \ L(dfa), if any.
std::optional<Word> NfaDfaInclusionCounterexample(const Nfa& nfa,
                                                  const Dfa& dfa);

}  // namespace stap

#endif  // STAP_AUTOMATA_INCLUSION_H_
