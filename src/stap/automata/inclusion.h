// Language inclusion and equivalence tests.
//
// The production entry points run the antichain engine (antichain.h):
// on-the-fly frontier search over (state, bitset) pairs with subsumption
// pruning, no up-front subset construction. The pre-antichain
// subset-product search is retained under *ViaSubsets names as a
// differential-test oracle and benchmark baseline.
#ifndef STAP_AUTOMATA_INCLUSION_H_
#define STAP_AUTOMATA_INCLUSION_H_

#include <optional>

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"

namespace stap {

// L(a) ⊆ L(b)? Polynomial: antichain pair search over (state, state).
bool DfaIncludedIn(const Dfa& a, const Dfa& b);

// L(nfa) ⊆ L(dfa)? Polynomial: pairs (NFA state, DFA state) search.
// This is the engine behind the paper's Lemma 3.3.
bool NfaIncludedInDfa(const Nfa& nfa, const Dfa& dfa);

// Budgeted variant; a null budget is unlimited.
StatusOr<bool> NfaIncludedInDfa(const Nfa& nfa, const Dfa& dfa,
                                Budget* budget);

// L(a) ⊆ L(b)? Antichain frontier search; worst-case exponential in |b|
// (the PSPACE-hard case of Section 5's NFA content models) but explores
// only ⊆-minimal b-sets, with early exit on the first counterexample.
bool NfaIncludedInNfa(const Nfa& a, const Nfa& b);

// Budgeted variant; a null budget is unlimited.
StatusOr<bool> NfaIncludedInNfa(const Nfa& a, const Nfa& b, Budget* budget);

// L(a) == L(b)?
bool DfaEquivalent(const Dfa& a, const Dfa& b);

// A shortest word in L(a) \ L(b), if any.
std::optional<Word> DfaInclusionCounterexample(const Dfa& a, const Dfa& b);

// A shortest word in L(nfa) \ L(dfa), if any.
std::optional<Word> NfaDfaInclusionCounterexample(const Nfa& nfa,
                                                  const Dfa& dfa);

// ---------------------------------------------------------------------
// Determinize-based oracles (pre-antichain implementations). Verdicts and
// witness lengths match the antichain engine; kept for differential tests
// (tests/antichain_differential_test.cc) and the crossover benchmark in
// bench_hotpath. See DESIGN.md for when these are the right tool.
// ---------------------------------------------------------------------

// L(a) ⊆ L(b) via the on-the-fly subset-product search (determinizes
// both sides' reachable subsets without subsumption pruning).
bool NfaIncludedInNfaViaSubsets(const Nfa& a, const Nfa& b);

// L(a) ⊆ L(b) via DeterminizeUnderSchema(b, context = a): only b-subsets
// reachable along words of L(a)'s prefixes are materialized, and the
// restricted-mode contract (L(result) ∩ L(a) = L(b) ∩ L(a)) makes the
// verdict exact — L(a) ⊆ L(b) iff L(a) ⊆ L(result). Differential oracle
// for the schema-guided determinizer against the antichain engine.
StatusOr<bool> NfaIncludedInNfaViaSchemaDeterminize(const Nfa& a,
                                                    const Nfa& b,
                                                    Budget* budget = nullptr);

// Shortest word in L(nfa) \ L(dfa) via the (subset of nfa, dfa state)
// product BFS.
std::optional<Word> NfaDfaInclusionCounterexampleViaSubsets(const Nfa& nfa,
                                                            const Dfa& dfa);

}  // namespace stap

#endif  // STAP_AUTOMATA_INCLUSION_H_
