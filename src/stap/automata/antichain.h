// Antichain-based language inclusion, universality, and equivalence for
// NFAs — no up-front subset construction.
//
// L(a) ⊆ L(b) fails iff some word reaches a final a-state while the set
// of b-states reachable on the same word contains no final state. The
// engine runs a BFS over pairs (p, S) of one a-state and the dense bitset
// of b-states reachable along the discovery path, with subsumption
// pruning: a newcomer (p, S') is discarded when some kept pair (p, S)
// with S ⊆ S' exists, because every counterexample extension of (p, S')
// is also one of (p, S). Only ⊆-minimal b-sets per a-state are expanded,
// which collapses the exponential subset space whenever short words
// already produce small reachable sets (cf. the antichain algorithms of
// De Wulf–Doyen–Henzinger–Raskin and the schema-guided determinization
// line of work). The search exits on the first counterexample and
// reconstructs a shortest witness word from parent pointers.
//
// The budgeted entry points charge every kept frontier node (states) and
// every generated successor set (sets) against the Budget, so adversarial
// instances whose antichains do blow up (the PSPACE-hard content-model
// cases) return kResourceExhausted instead of running unbounded. The
// engine reports its work through base/metrics.h: nodes kept, candidates
// generated, and subsumption prunes per stage.
//
// The determinize-based subset-product path (inclusion.h *ViaSubsets
// functions) is retained as a differential-test oracle; see DESIGN.md.
#ifndef STAP_AUTOMATA_ANTICHAIN_H_
#define STAP_AUTOMATA_ANTICHAIN_H_

#include <optional>

#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"

namespace stap {

// A shortest word in L(a) \ L(b), or nullopt when L(a) ⊆ L(b).
std::optional<Word> AntichainInclusionCounterexample(const Nfa& a,
                                                     const Nfa& b);

// Budgeted variant; a null budget is unlimited.
StatusOr<std::optional<Word>> AntichainInclusionCounterexample(
    const Nfa& a, const Nfa& b, Budget* budget);

// L(a) ⊆ L(b)?
bool AntichainIncluded(const Nfa& a, const Nfa& b);
StatusOr<bool> AntichainIncluded(const Nfa& a, const Nfa& b, Budget* budget);

// A shortest word outside L(nfa), or nullopt when L(nfa) = Σ*.
std::optional<Word> AntichainUniversalityCounterexample(const Nfa& nfa);
StatusOr<std::optional<Word>> AntichainUniversalityCounterexample(
    const Nfa& nfa, Budget* budget);

// L(nfa) = Σ*?
bool AntichainUniversal(const Nfa& nfa);

// L(a) == L(b)?
bool AntichainEquivalent(const Nfa& a, const Nfa& b);
StatusOr<bool> AntichainEquivalent(const Nfa& a, const Nfa& b,
                                   Budget* budget);

}  // namespace stap

#endif  // STAP_AUTOMATA_ANTICHAIN_H_
