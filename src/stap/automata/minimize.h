// DFA minimization to a canonical form.
#ifndef STAP_AUTOMATA_MINIMIZE_H_
#define STAP_AUTOMATA_MINIMIZE_H_

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"

namespace stap {

// Returns the canonical minimal *partial* DFA for L(dfa): Moore partition
// refinement on the completed automaton, dead states removed, states
// renumbered in BFS order (symbols ascending). Two DFAs accept the same
// language iff Minimize() of both compares operator==.
Dfa Minimize(const Dfa& dfa);

// Budgeted variant: the refinement rounds check the wall-clock deadline
// (minimization never grows the state count, so only time can exhaust).
// A null budget is unlimited.
StatusOr<Dfa> Minimize(const Dfa& dfa, Budget* budget);

// Determinizes and minimizes.
Dfa MinimizeNfa(const Nfa& nfa);

// Budgeted variant: the subset construction charges states, the
// refinement checks the deadline.
StatusOr<Dfa> MinimizeNfa(const Nfa& nfa, Budget* budget);

// Schema-guided variant: a non-null `context` routes the subset
// construction through DeterminizeUnderSchema (see determinize.h),
// exploring only subsets reachable under the ambient schema; a null
// context is the dense path. When L(context) ⊇ L(nfa) the result is the
// same canonical minimal DFA as the dense path (minimization erases the
// pair structure); otherwise it is the canonical minimal DFA of the
// sub-language L(nfa) ∩ L(context)-prefix-live words.
StatusOr<Dfa> MinimizeNfa(const Nfa& nfa, const Nfa* context, Budget* budget);

}  // namespace stap

#endif  // STAP_AUTOMATA_MINIMIZE_H_
