// DFA minimization to a canonical form.
#ifndef STAP_AUTOMATA_MINIMIZE_H_
#define STAP_AUTOMATA_MINIMIZE_H_

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"

namespace stap {

// Returns the canonical minimal *partial* DFA for L(dfa): Moore partition
// refinement on the completed automaton, dead states removed, states
// renumbered in BFS order (symbols ascending). Two DFAs accept the same
// language iff Minimize() of both compares operator==.
Dfa Minimize(const Dfa& dfa);

// Determinizes and minimizes.
Dfa MinimizeNfa(const Nfa& nfa);

}  // namespace stap

#endif  // STAP_AUTOMATA_MINIMIZE_H_
