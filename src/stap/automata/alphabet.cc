#include "stap/automata/alphabet.h"

#include "stap/base/check.h"

namespace stap {

Alphabet::Alphabet(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    int id = Intern(name);
    STAP_CHECK(id == static_cast<int>(ids_.size()) - 1 ||
               names_[id] == name);  // duplicates collapse
  }
}

int Alphabet::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int Alphabet::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNoSymbol : it->second;
}

}  // namespace stap
