#include "stap/automata/minimize.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"

namespace stap {

namespace {

// Renumbers the states of a (partial, trimmed) DFA in BFS order, symbols
// ascending. For a minimal DFA this numbering is canonical.
Dfa CanonicalizeNumbering(const Dfa& dfa) {
  const int num_symbols = dfa.num_symbols();
  std::vector<int> remap(dfa.num_states(), kNoState);
  std::vector<int> order;
  std::deque<int> queue = {dfa.initial()};
  remap[dfa.initial()] = 0;
  order.push_back(dfa.initial());
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int a = 0; a < num_symbols; ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState && remap[r] == kNoState) {
        remap[r] = static_cast<int>(order.size());
        order.push_back(r);
        queue.push_back(r);
      }
    }
  }
  Dfa result(static_cast<int>(order.size()), num_symbols);
  result.SetInitial(0);
  for (int q : order) {
    if (dfa.IsFinal(q)) result.SetFinal(remap[q]);
    for (int a = 0; a < num_symbols; ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState && remap[r] != kNoState) {
        result.SetTransition(remap[q], a, remap[r]);
      }
    }
  }
  return result;
}

}  // namespace

Dfa Minimize(const Dfa& input) {
  Dfa dfa = input.Trimmed().Completed();
  const int n = dfa.num_states();
  const int num_symbols = dfa.num_symbols();

  // Moore partition refinement. classes[q] is the block of q.
  std::vector<int> classes(n);
  for (int q = 0; q < n; ++q) classes[q] = dfa.IsFinal(q) ? 1 : 0;

  int num_classes = 2;
  std::vector<int> signature;
  while (true) {
    // Signature of a state: (its class, classes of its successors).
    // Hash-interned: one O(num_symbols) hash per state instead of
    // O(num_symbols · log n) lexicographic comparisons per tree probe.
    std::unordered_map<std::vector<int>, int, IntVectorHash> signature_ids;
    signature_ids.reserve(static_cast<size_t>(n));
    std::vector<int> next_classes(n);
    for (int q = 0; q < n; ++q) {
      signature.clear();
      signature.reserve(num_symbols + 1);
      signature.push_back(classes[q]);
      for (int a = 0; a < num_symbols; ++a) {
        signature.push_back(classes[dfa.Next(q, a)]);
      }
      auto [it, inserted] =
          signature_ids.emplace(std::move(signature), signature_ids.size());
      next_classes[q] = it->second;
    }
    int next_num_classes = static_cast<int>(signature_ids.size());
    classes = std::move(next_classes);
    if (next_num_classes == num_classes) break;
    num_classes = next_num_classes;
  }

  // Build the quotient automaton.
  Dfa quotient(num_classes, num_symbols);
  quotient.SetInitial(classes[dfa.initial()]);
  for (int q = 0; q < n; ++q) {
    if (dfa.IsFinal(q)) quotient.SetFinal(classes[q]);
    for (int a = 0; a < num_symbols; ++a) {
      quotient.SetTransition(classes[q], a, classes[dfa.Next(q, a)]);
    }
  }

  Dfa trimmed = quotient.Trimmed();
  if (trimmed.IsEmpty()) return Dfa::EmptyLanguage(num_symbols);
  return CanonicalizeNumbering(trimmed);
}

Dfa MinimizeNfa(const Nfa& nfa) { return Minimize(Determinize(nfa)); }

}  // namespace stap
