#include "stap/automata/minimize.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

namespace {

// Interns fixed-width int spans (Moore signatures) to dense ids. All
// signatures of one refinement round have the same width, so they live
// back-to-back in a flat arena — no per-state vector allocation, and the
// probe compares with memcmp over contiguous memory.
class SignatureInterner {
 public:
  SignatureInterner(size_t width, int expected)
      : width_(width), table_(TableSizeFor(expected), -1) {
    arena_.reserve(width * static_cast<size_t>(expected));
    hashes_.reserve(static_cast<size_t>(expected));
  }

  int size() const { return static_cast<int>(hashes_.size()); }

  // Interns `sig` (exactly `width_` ints), returning its dense id.
  int Intern(const int* sig) {
    const uint64_t hash = HashIntSpan(sig, width_);
    const size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (true) {
      int32_t id = table_[i];
      if (id < 0) break;
      if (hashes_[id] == hash &&
          std::memcmp(arena_.data() + id * width_, sig,
                      width_ * sizeof(int)) == 0) {
        return id;
      }
      i = (i + 1) & mask;
    }
    const int id = static_cast<int>(hashes_.size());
    arena_.insert(arena_.end(), sig, sig + width_);
    hashes_.push_back(hash);
    table_[i] = id;
    if (hashes_.size() * 10 >= table_.size() * 7) Grow();
    return id;
  }

 private:
  static size_t TableSizeFor(int expected) {
    size_t size = 64;
    while (size * 7 < static_cast<size_t>(expected) * 10) size *= 2;
    return size;
  }

  void Grow() {
    table_.assign(table_.size() * 2, -1);
    const size_t mask = table_.size() - 1;
    for (size_t id = 0; id < hashes_.size(); ++id) {
      size_t i = static_cast<size_t>(hashes_[id]) & mask;
      while (table_[i] >= 0) i = (i + 1) & mask;
      table_[i] = static_cast<int32_t>(id);
    }
  }

  size_t width_;
  std::vector<int> arena_;        // id * width_ .. (id+1) * width_
  std::vector<uint64_t> hashes_;  // id -> full hash
  std::vector<int32_t> table_;    // open addressing; -1 = empty
};

// Renumbers the states of a (partial, trimmed) DFA in BFS order, symbols
// ascending. For a minimal DFA this numbering is canonical.
Dfa CanonicalizeNumbering(const Dfa& dfa) {
  const int num_symbols = dfa.num_symbols();
  std::vector<int> remap(dfa.num_states(), kNoState);
  std::vector<int> order;
  std::deque<int> queue = {dfa.initial()};
  remap[dfa.initial()] = 0;
  order.push_back(dfa.initial());
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int a = 0; a < num_symbols; ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState && remap[r] == kNoState) {
        remap[r] = static_cast<int>(order.size());
        order.push_back(r);
        queue.push_back(r);
      }
    }
  }
  Dfa result(static_cast<int>(order.size()), num_symbols);
  result.SetInitial(0);
  for (int q : order) {
    if (dfa.IsFinal(q)) result.SetFinal(remap[q]);
    for (int a = 0; a < num_symbols; ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState && remap[r] != kNoState) {
        result.SetTransition(remap[q], a, remap[r]);
      }
    }
  }
  return result;
}

}  // namespace

StatusOr<Dfa> Minimize(const Dfa& input, Budget* budget) {
  static Counter* const calls = GetCounter("minimize.calls");
  static Counter* const rounds = GetCounter("minimize.rounds");
  calls->Increment();
  ScopedSpan span("minimize");
  span.AddArg("states_in", input.num_states());
  int64_t rounds_run = 0;

  Dfa dfa = input.Trimmed().Completed();
  const int n = dfa.num_states();
  const int num_symbols = dfa.num_symbols();

  // Moore partition refinement. classes[q] is the block of q.
  std::vector<int> classes(n);
  for (int q = 0; q < n; ++q) classes[q] = dfa.IsFinal(q) ? 1 : 0;

  int num_classes = 2;
  // Signature of a state: (its class, classes of its successors).
  // One reusable scratch row; signatures are interned through a flat
  // arena table, so the refinement loop performs no allocation per state.
  std::vector<int> signature(static_cast<size_t>(num_symbols) + 1);
  std::vector<int> next_classes(n);
  while (true) {
    // Minimization never grows the state count, so only the wall clock
    // can exhaust the budget; one check per refinement round suffices.
    rounds->Increment();
    ++rounds_run;
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    SignatureInterner signature_ids(signature.size(), n);
    for (int q = 0; q < n; ++q) {
      signature[0] = classes[q];
      for (int a = 0; a < num_symbols; ++a) {
        signature[static_cast<size_t>(a) + 1] = classes[dfa.Next(q, a)];
      }
      next_classes[q] = signature_ids.Intern(signature.data());
    }
    int next_num_classes = signature_ids.size();
    std::swap(classes, next_classes);
    if (next_num_classes == num_classes) break;
    num_classes = next_num_classes;
  }

  // Build the quotient automaton.
  Dfa quotient(num_classes, num_symbols);
  quotient.SetInitial(classes[dfa.initial()]);
  for (int q = 0; q < n; ++q) {
    if (dfa.IsFinal(q)) quotient.SetFinal(classes[q]);
    for (int a = 0; a < num_symbols; ++a) {
      quotient.SetTransition(classes[q], a, classes[dfa.Next(q, a)]);
    }
  }

  Dfa trimmed = quotient.Trimmed();
  span.AddArg("rounds", rounds_run);
  span.AddArg("states_out", trimmed.num_states());
  if (trimmed.IsEmpty()) return Dfa::EmptyLanguage(num_symbols);
  return CanonicalizeNumbering(trimmed);
}

Dfa Minimize(const Dfa& input) {
  StatusOr<Dfa> result = Minimize(input, nullptr);
  return *std::move(result);
}

StatusOr<Dfa> MinimizeNfa(const Nfa& nfa, Budget* budget) {
  return MinimizeNfa(nfa, nullptr, budget);
}

StatusOr<Dfa> MinimizeNfa(const Nfa& nfa, const Nfa* context, Budget* budget) {
  StatusOr<Dfa> determinized = Determinize(nfa, context, budget);
  if (!determinized.ok()) return determinized.status();
  return Minimize(*determinized, budget);
}

Dfa MinimizeNfa(const Nfa& nfa) { return Minimize(Determinize(nfa)); }

}  // namespace stap
