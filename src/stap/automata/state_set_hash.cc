#include "stap/automata/state_set_hash.h"

namespace stap {

namespace {
constexpr size_t kInitialTableSize = 64;  // power of two
}  // namespace

StateSetInterner::StateSetInterner() : table_(kInitialTableSize, -1) {}

size_t StateSetInterner::FindSlot(const StateSet& set, uint64_t hash) const {
  const size_t mask = table_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    int32_t id = table_[i];
    if (id < 0) return i;
    if (hashes_[id] == hash && sets_[id] == set) return i;
    i = (i + 1) & mask;
  }
}

std::pair<int, bool> StateSetInterner::Intern(StateSet&& set) {
  const uint64_t hash = HashIntSpan(set.data(), set.size());
  const size_t slot = FindSlot(set, hash);
  if (table_[slot] >= 0) return {table_[slot], false};
  const int id = static_cast<int>(sets_.size());
  sets_.push_back(std::move(set));
  hashes_.push_back(hash);
  table_[slot] = id;
  // Keep the load factor below 0.7.
  if (sets_.size() * 10 >= table_.size() * 7) Grow();
  return {id, true};
}

std::pair<int, bool> StateSetInterner::Intern(const StateSet& set) {
  const uint64_t hash = HashIntSpan(set.data(), set.size());
  const size_t slot = FindSlot(set, hash);
  if (table_[slot] >= 0) return {table_[slot], false};
  const int id = static_cast<int>(sets_.size());
  sets_.push_back(set);
  hashes_.push_back(hash);
  table_[slot] = id;
  if (sets_.size() * 10 >= table_.size() * 7) Grow();
  return {id, true};
}

void StateSetInterner::Grow() {
  table_.assign(table_.size() * 2, -1);
  const size_t mask = table_.size() - 1;
  // All stored sets are distinct, so reinsertion only needs to probe for
  // an empty slot.
  for (size_t id = 0; id < hashes_.size(); ++id) {
    size_t i = static_cast<size_t>(hashes_[id]) & mask;
    while (table_[i] >= 0) i = (i + 1) & mask;
    table_[i] = static_cast<int32_t>(id);
  }
}

void StateSetInterner::MoveSetsInto(std::vector<StateSet>* out) {
  out->reserve(out->size() + sets_.size());
  for (StateSet& set : sets_) out->push_back(std::move(set));
  sets_.clear();
}

}  // namespace stap
