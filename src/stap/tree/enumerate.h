// Bounded enumeration of Σ-trees.
//
// Used by property tests and by the finite-closure decision procedures:
// enumerate every tree over an alphabet up to a depth and width bound, in a
// deterministic order.
#ifndef STAP_TREE_ENUMERATE_H_
#define STAP_TREE_ENUMERATE_H_

#include <vector>

#include "stap/tree/tree.h"

namespace stap {

struct TreeBounds {
  int max_depth = 3;   // paper's convention: single node has depth 1
  int max_width = 2;   // max children per node
  int num_symbols = 2;
};

// All trees within `bounds`, smallest first. The count grows doubly
// exponentially; keep bounds tiny.
std::vector<Tree> EnumerateTrees(const TreeBounds& bounds);

// Number of trees EnumerateTrees would return (without materializing them),
// capped at `cap`.
int64_t CountTrees(const TreeBounds& bounds, int64_t cap);

}  // namespace stap

#endif  // STAP_TREE_ENUMERATE_H_
