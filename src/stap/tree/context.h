// Contexts: trees with a single hole (paper, Section 2.1).
//
// The hole node is stored as a childless node carrying the hole's Σ-label;
// applying a context to a tree whose root bears that label replaces the
// hole node by the tree (paper's C[t']).
#ifndef STAP_TREE_CONTEXT_H_
#define STAP_TREE_CONTEXT_H_

#include <string>

#include "stap/tree/tree.h"

namespace stap {

struct TreeContext {
  Tree tree;      // hole node is at `hole` and must be a leaf
  TreePath hole;  // path to the hole node

  // context^t(v): the context induced by node v of t (subtree at v removed,
  // v's label kept as the hole label).
  static TreeContext Extract(const Tree& t, const TreePath& v);

  int hole_label() const { return tree.At(hole).label; }

  // C[t']: require t'.label == hole_label().
  Tree Apply(const Tree& replacement) const;

  // C[C']: plugs another context into the hole; the result's hole is C''s.
  TreeContext Compose(const TreeContext& inner) const;

  // Renders as the tree term with "*" appended to the hole label.
  std::string ToString(const Alphabet& alphabet) const;

  friend bool operator==(const TreeContext& a, const TreeContext& b) {
    return a.hole == b.hole && a.tree == b.tree;
  }
  friend bool operator<(const TreeContext& a, const TreeContext& b) {
    if (a.tree != b.tree) return a.tree < b.tree;
    return a.hole < b.hole;
  }
};

}  // namespace stap

#endif  // STAP_TREE_CONTEXT_H_
