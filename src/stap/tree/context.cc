#include "stap/tree/context.h"

#include <sstream>

#include "stap/base/check.h"

namespace stap {

TreeContext TreeContext::Extract(const Tree& t, const TreePath& v) {
  STAP_CHECK(t.IsValidPath(v));
  TreeContext context{t, v};
  context.tree.At(v).children.clear();
  return context;
}

Tree TreeContext::Apply(const Tree& replacement) const {
  STAP_CHECK(replacement.label == hole_label());
  return tree.ReplaceSubtree(hole, replacement);
}

TreeContext TreeContext::Compose(const TreeContext& inner) const {
  STAP_CHECK(inner.tree.label == hole_label());
  TreeContext result;
  result.tree = tree.ReplaceSubtree(hole, inner.tree);
  result.hole = hole;
  result.hole.insert(result.hole.end(), inner.hole.begin(), inner.hole.end());
  return result;
}

namespace {

void Render(const Tree& node, const TreePath& hole, size_t depth, bool on_path,
            const Alphabet& alphabet, std::ostringstream& os) {
  os << alphabet.Name(node.label);
  if (on_path && depth == hole.size()) os << "*";
  if (!node.children.empty()) {
    os << "(";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) os << ", ";
      bool child_on_path = on_path && depth < hole.size() &&
                           hole[depth] == static_cast<int>(i);
      Render(node.children[i], hole, depth + 1, child_on_path, alphabet, os);
    }
    os << ")";
  }
}

}  // namespace

std::string TreeContext::ToString(const Alphabet& alphabet) const {
  std::ostringstream os;
  Render(tree, hole, 0, true, alphabet, os);
  return os.str();
}

}  // namespace stap
