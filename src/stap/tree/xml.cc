#include "stap/tree/xml.h"

#include <cctype>
#include <sstream>
#include <utility>
#include <vector>

namespace stap {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

class XmlParser {
 public:
  XmlParser(std::string_view input, bool allow_attributes)
      : input_(input), allow_attributes_(allow_attributes) {}

  StatusOr<XmlElement> Parse() {
    SkipMisc();
    StatusOr<XmlElement> root = ParseElement();
    if (!root.ok()) return root;
    SkipMisc();
    if (pos_ != input_.size()) {
      return Error("trailing content after root element");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("XML parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, processing instructions, and the XML
  // declaration.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Peek("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else if (Peek("<?")) {
        size_t end = input_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  bool Peek(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  StatusOr<std::string> ParseName() {
    if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<XmlAttribute> ParseAttribute() {
    StatusOr<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    SkipWhitespace();
    if (!Peek("=")) return Error("expected '=' after attribute name");
    ++pos_;
    SkipWhitespace();
    if (pos_ >= input_.size() ||
        (input_[pos_] != '"' && input_[pos_] != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = input_[pos_++];
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
    if (pos_ >= input_.size()) return Error("unterminated attribute value");
    std::string value(input_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return XmlAttribute{*std::move(name), std::move(value)};
  }

  // Parses an opening tag through its '>' or '/>': name plus attributes.
  StatusOr<XmlElement> ParseOpenTag(bool* self_closing) {
    if (!Peek("<")) return Error("expected '<'");
    ++pos_;
    StatusOr<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    XmlElement element;
    element.name = *std::move(name);

    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) return Error("unexpected end of tag");
      if (input_[pos_] == '>' || Peek("/>")) break;
      if (!allow_attributes_) {
        return Error("attributes are not supported by the tree model");
      }
      StatusOr<XmlAttribute> attribute = ParseAttribute();
      if (!attribute.ok()) return attribute.status();
      element.attributes.push_back(*std::move(attribute));
    }
    if (Peek("/>")) {
      pos_ += 2;
      *self_closing = true;
    } else {
      ++pos_;  // '>'
      *self_closing = false;
    }
    return element;
  }

  // Iterative: the open-element ancestry lives on an explicit stack, so
  // document depth is bounded by memory rather than the call stack.
  StatusOr<XmlElement> ParseElement() {
    std::vector<XmlElement> open;
    while (true) {
      // An element opens here.
      bool self_closing = false;
      StatusOr<XmlElement> element = ParseOpenTag(&self_closing);
      if (!element.ok()) return element;
      if (self_closing) {
        if (open.empty()) return element;
        open.back().children.push_back(*std::move(element));
      } else {
        open.push_back(*std::move(element));
      }
      // Content of the innermost open element: closing tags pop, a child
      // opening tag loops back around.
      while (!open.empty()) {
        SkipMisc();
        if (pos_ >= input_.size()) return Error("unexpected end of input");
        if (Peek("</")) {
          pos_ += 2;
          StatusOr<std::string> closing = ParseName();
          if (!closing.ok()) return closing.status();
          if (*closing != open.back().name) {
            return Error("mismatched closing tag </" + *closing + "> for <" +
                         open.back().name + ">");
          }
          SkipWhitespace();
          if (!Peek(">")) return Error("expected '>' after closing tag name");
          ++pos_;
          XmlElement closed = std::move(open.back());
          open.pop_back();
          if (open.empty()) return closed;
          open.back().children.push_back(std::move(closed));
          continue;
        }
        if (!Peek("<")) {
          return Error("text content is not supported by the tree model");
        }
        break;  // a child element opens
      }
    }
  }

  std::string_view input_;
  bool allow_attributes_;
  size_t pos_ = 0;
};

void SerializeElement(const XmlElement& element, int indent,
                      std::ostringstream& os) {
  struct Frame {
    const XmlElement* element;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{&element, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const XmlElement& e = *frame.element;
    const int depth = indent + static_cast<int>(stack.size()) - 1;
    if (frame.next_child == 0) {
      for (int i = 0; i < depth; ++i) os << "  ";
      os << "<" << e.name;
      for (const XmlAttribute& attribute : e.attributes) {
        os << " " << attribute.name << "=\"" << attribute.value << "\"";
      }
      if (e.children.empty()) {
        os << "/>\n";
        stack.pop_back();
        continue;
      }
      os << ">\n";
    }
    if (frame.next_child == e.children.size()) {
      for (int i = 0; i < depth; ++i) os << "  ";
      os << "</" << e.name << ">\n";
      stack.pop_back();
      continue;
    }
    stack.push_back(Frame{&e.children[frame.next_child++], 0});
  }
}

void SerializeTree(const Tree& tree, const Alphabet& alphabet, int indent,
                   std::ostringstream& os) {
  struct Frame {
    const Tree* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{&tree, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Tree& node = *frame.node;
    const std::string& name = alphabet.Name(node.label);
    const int depth = indent + static_cast<int>(stack.size()) - 1;
    if (frame.next_child == 0) {
      for (int i = 0; i < depth; ++i) os << "  ";
      if (node.IsLeaf()) {
        os << "<" << name << "/>\n";
        stack.pop_back();
        continue;
      }
      os << "<" << name << ">\n";
    }
    if (frame.next_child == node.children.size()) {
      for (int i = 0; i < depth; ++i) os << "  ";
      os << "</" << name << ">\n";
      stack.pop_back();
      continue;
    }
    stack.push_back(Frame{&node.children[frame.next_child++], 0});
  }
}

}  // namespace

// Same grandchild-hoisting scheme as Tree::~Tree: flatten descendants into
// this node's child list so vector teardown never recurses.
XmlElement::~XmlElement() {
  while (!children.empty()) {
    XmlElement child = std::move(children.back());
    children.pop_back();
    while (!child.children.empty()) {
      children.push_back(std::move(child.children.back()));
      child.children.pop_back();
    }
  }
}

const std::string* XmlElement::FindAttribute(
    std::string_view attribute_name) const {
  for (const XmlAttribute& attribute : attributes) {
    if (attribute.name == attribute_name) return &attribute.value;
  }
  return nullptr;
}

StatusOr<XmlElement> ParseXmlDocument(std::string_view input) {
  return XmlParser(input, /*allow_attributes=*/true).Parse();
}

std::string XmlElementToString(const XmlElement& element) {
  std::ostringstream os;
  SerializeElement(element, 0, os);
  return os.str();
}

Tree TreeFromXmlElement(const XmlElement& element, Alphabet* alphabet) {
  Tree root(alphabet->Intern(element.name));
  struct Frame {
    const XmlElement* source;
    Tree* target;
    size_t next_child;
  };
  std::vector<Frame> stack;
  // Each target's child vector is reserved to its final size before any
  // child frame is pushed, so the Tree* pointers below stay stable.
  auto open = [&stack](const XmlElement& source, Tree* target) {
    target->children.reserve(source.children.size());
    stack.push_back(Frame{&source, target, 0});
  };
  open(element, &root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == frame.source->children.size()) {
      stack.pop_back();
      continue;
    }
    const XmlElement& child = frame.source->children[frame.next_child++];
    frame.target->children.emplace_back(alphabet->Intern(child.name));
    open(child, &frame.target->children.back());
  }
  return root;
}

StatusOr<Tree> ParseXml(std::string_view input, Alphabet* alphabet) {
  StatusOr<XmlElement> document =
      XmlParser(input, /*allow_attributes=*/false).Parse();
  if (!document.ok()) return document.status();
  return TreeFromXmlElement(*document, alphabet);
}

std::string ToXml(const Tree& tree, const Alphabet& alphabet) {
  std::ostringstream os;
  SerializeTree(tree, alphabet, 0, os);
  return os.str();
}

}  // namespace stap
