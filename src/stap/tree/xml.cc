#include "stap/tree/xml.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace stap {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

class XmlParser {
 public:
  XmlParser(std::string_view input, bool allow_attributes)
      : input_(input), allow_attributes_(allow_attributes) {}

  StatusOr<XmlElement> Parse() {
    SkipMisc();
    StatusOr<XmlElement> root = ParseElement();
    if (!root.ok()) return root;
    SkipMisc();
    if (pos_ != input_.size()) {
      return Error("trailing content after root element");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("XML parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, processing instructions, and the XML
  // declaration.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Peek("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else if (Peek("<?")) {
        size_t end = input_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  bool Peek(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  StatusOr<std::string> ParseName() {
    if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<XmlAttribute> ParseAttribute() {
    StatusOr<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    SkipWhitespace();
    if (!Peek("=")) return Error("expected '=' after attribute name");
    ++pos_;
    SkipWhitespace();
    if (pos_ >= input_.size() ||
        (input_[pos_] != '"' && input_[pos_] != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = input_[pos_++];
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
    if (pos_ >= input_.size()) return Error("unterminated attribute value");
    std::string value(input_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return XmlAttribute{*std::move(name), std::move(value)};
  }

  StatusOr<XmlElement> ParseElement() {
    if (!Peek("<")) return Error("expected '<'");
    ++pos_;
    StatusOr<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    XmlElement element;
    element.name = *name;

    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) return Error("unexpected end of tag");
      if (input_[pos_] == '>' || Peek("/>")) break;
      if (!allow_attributes_) {
        return Error("attributes are not supported by the tree model");
      }
      StatusOr<XmlAttribute> attribute = ParseAttribute();
      if (!attribute.ok()) return attribute.status();
      element.attributes.push_back(*std::move(attribute));
    }
    if (Peek("/>")) {
      pos_ += 2;
      return element;
    }
    ++pos_;  // '>'

    // Children until the closing tag.
    while (true) {
      SkipMisc();
      if (pos_ >= input_.size()) return Error("unexpected end of input");
      if (Peek("</")) break;
      if (!Peek("<")) {
        return Error("text content is not supported by the tree model");
      }
      StatusOr<XmlElement> child = ParseElement();
      if (!child.ok()) return child;
      element.children.push_back(*std::move(child));
    }
    pos_ += 2;  // "</"
    StatusOr<std::string> closing = ParseName();
    if (!closing.ok()) return closing.status();
    if (*closing != element.name) {
      return Error("mismatched closing tag </" + *closing + "> for <" +
                   element.name + ">");
    }
    SkipWhitespace();
    if (!Peek(">")) return Error("expected '>' after closing tag name");
    ++pos_;
    return element;
  }

  std::string_view input_;
  bool allow_attributes_;
  size_t pos_ = 0;
};

void SerializeElement(const XmlElement& element, int indent,
                      std::ostringstream& os) {
  for (int i = 0; i < indent; ++i) os << "  ";
  os << "<" << element.name;
  for (const XmlAttribute& attribute : element.attributes) {
    os << " " << attribute.name << "=\"" << attribute.value << "\"";
  }
  if (element.children.empty()) {
    os << "/>\n";
    return;
  }
  os << ">\n";
  for (const XmlElement& child : element.children) {
    SerializeElement(child, indent + 1, os);
  }
  for (int i = 0; i < indent; ++i) os << "  ";
  os << "</" << element.name << ">\n";
}

void SerializeTree(const Tree& tree, const Alphabet& alphabet, int indent,
                   std::ostringstream& os) {
  for (int i = 0; i < indent; ++i) os << "  ";
  const std::string& name = alphabet.Name(tree.label);
  if (tree.IsLeaf()) {
    os << "<" << name << "/>\n";
    return;
  }
  os << "<" << name << ">\n";
  for (const Tree& child : tree.children) {
    SerializeTree(child, alphabet, indent + 1, os);
  }
  for (int i = 0; i < indent; ++i) os << "  ";
  os << "</" << name << ">\n";
}

}  // namespace

const std::string* XmlElement::FindAttribute(
    std::string_view attribute_name) const {
  for (const XmlAttribute& attribute : attributes) {
    if (attribute.name == attribute_name) return &attribute.value;
  }
  return nullptr;
}

StatusOr<XmlElement> ParseXmlDocument(std::string_view input) {
  return XmlParser(input, /*allow_attributes=*/true).Parse();
}

std::string XmlElementToString(const XmlElement& element) {
  std::ostringstream os;
  SerializeElement(element, 0, os);
  return os.str();
}

Tree TreeFromXmlElement(const XmlElement& element, Alphabet* alphabet) {
  Tree tree(alphabet->Intern(element.name));
  tree.children.reserve(element.children.size());
  for (const XmlElement& child : element.children) {
    tree.children.push_back(TreeFromXmlElement(child, alphabet));
  }
  return tree;
}

StatusOr<Tree> ParseXml(std::string_view input, Alphabet* alphabet) {
  StatusOr<XmlElement> document =
      XmlParser(input, /*allow_attributes=*/false).Parse();
  if (!document.ok()) return document.status();
  return TreeFromXmlElement(*document, alphabet);
}

std::string ToXml(const Tree& tree, const Alphabet& alphabet) {
  std::ostringstream os;
  SerializeTree(tree, alphabet, 0, os);
  return os.str();
}

}  // namespace stap
