// Minimal XML reader and writer.
//
// Two levels of fidelity:
//  * XmlElement — a small DOM with attributes (used by the W3C-style XSD
//    import/export in schema/xsd_io.h);
//  * Tree — the paper's element-only abstraction (labels only).
// Text content, CDATA, entities, namespaces-as-semantics, and DOCTYPE are
// outside the model and rejected with descriptive errors; comments,
// processing instructions, and the XML declaration are skipped.
#ifndef STAP_TREE_XML_H_
#define STAP_TREE_XML_H_

#include <string>
#include <string_view>
#include <vector>

#include "stap/base/status.h"
#include "stap/tree/tree.h"

namespace stap {

struct XmlAttribute {
  std::string name;
  std::string value;
};

struct XmlElement {
  std::string name;
  std::vector<XmlAttribute> attributes;
  std::vector<XmlElement> children;

  // Iterative teardown: the implicit destructor recurses through
  // `children` and overflows the call stack on deeply nested documents.
  XmlElement() = default;
  ~XmlElement();
  XmlElement(const XmlElement&) = default;
  XmlElement(XmlElement&&) noexcept = default;
  XmlElement& operator=(const XmlElement&) = default;
  XmlElement& operator=(XmlElement&&) noexcept = default;

  // The attribute's value, or nullptr if absent.
  const std::string* FindAttribute(std::string_view attribute_name) const;
};

// Parses one XML document into a DOM (attributes allowed).
StatusOr<XmlElement> ParseXmlDocument(std::string_view input);

// Serializes a DOM with 2-space indentation.
std::string XmlElementToString(const XmlElement& element);

// Drops attributes and interns element names.
Tree TreeFromXmlElement(const XmlElement& element, Alphabet* alphabet);

// Parses one XML document into a tree; element names are interned into
// `alphabet`. Attributes are rejected (the tree model has no place for
// them); use ParseXmlDocument when they must be read.
StatusOr<Tree> ParseXml(std::string_view input, Alphabet* alphabet);

// Serializes with 2-space indentation and self-closing leaf tags.
std::string ToXml(const Tree& tree, const Alphabet& alphabet);

}  // namespace stap

#endif  // STAP_TREE_XML_H_
