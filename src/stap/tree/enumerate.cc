#include "stap/tree/enumerate.h"

#include <algorithm>

#include "stap/base/check.h"

namespace stap {

namespace {

// Enumerates trees of depth <= depth recursively: a tree is a root label
// plus a (possibly empty) sequence of at most max_width subtrees of depth
// <= depth - 1.
std::vector<Tree> EnumerateDepth(int depth, const TreeBounds& bounds) {
  std::vector<Tree> result;
  if (depth <= 0) return result;
  std::vector<Tree> shallower = EnumerateDepth(depth - 1, bounds);

  // All child sequences of length 0..max_width over `shallower`.
  std::vector<std::vector<Tree>> sequences = {{}};
  std::vector<std::vector<Tree>> frontier = {{}};
  for (int len = 1; len <= bounds.max_width; ++len) {
    std::vector<std::vector<Tree>> next;
    for (const std::vector<Tree>& prefix : frontier) {
      for (const Tree& child : shallower) {
        std::vector<Tree> extended = prefix;
        extended.push_back(child);
        next.push_back(extended);
      }
    }
    sequences.insert(sequences.end(), next.begin(), next.end());
    frontier = std::move(next);
  }

  for (int label = 0; label < bounds.num_symbols; ++label) {
    for (const std::vector<Tree>& children : sequences) {
      result.emplace_back(label, children);
    }
  }
  return result;
}

}  // namespace

std::vector<Tree> EnumerateTrees(const TreeBounds& bounds) {
  STAP_CHECK(bounds.max_depth >= 1);
  STAP_CHECK(bounds.max_width >= 0);
  STAP_CHECK(bounds.num_symbols >= 1);
  std::vector<Tree> result = EnumerateDepth(bounds.max_depth, bounds);
  std::sort(result.begin(), result.end(), [](const Tree& a, const Tree& b) {
    int na = a.NumNodes(), nb = b.NumNodes();
    if (na != nb) return na < nb;
    return a < b;
  });
  return result;
}

int64_t CountTrees(const TreeBounds& bounds, int64_t cap) {
  // count(d) = trees of depth <= d. count(0) = 0.
  // sequences(d) = sum_{k=0..w} count(d)^k, saturating at cap.
  int64_t count = 0;
  for (int d = 1; d <= bounds.max_depth; ++d) {
    int64_t sequences = 0;
    int64_t power = 1;  // count^k
    for (int k = 0; k <= bounds.max_width; ++k) {
      sequences += power;
      if (sequences >= cap) return cap;
      if (k < bounds.max_width) {
        if (count != 0 && power > cap / count) return cap;
        power *= count;
      }
    }
    int64_t next = static_cast<int64_t>(bounds.num_symbols) * sequences;
    count = std::min(next, cap);
  }
  return std::min(count, cap);
}

}  // namespace stap
