// Unranked Σ-trees (paper, Section 2.1).
//
// A Tree is a value-semantic node: an integer label plus an ordered list of
// child trees. Nodes are addressed by paths (sequences of child indices,
// 0-based); the empty path is the root. This mirrors Dom(t) from the paper
// (there 1-based, here 0-based).
#ifndef STAP_TREE_TREE_H_
#define STAP_TREE_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stap/automata/alphabet.h"
#include "stap/automata/nfa.h"

namespace stap {

// A node address: child indices from the root.
using TreePath = std::vector<int>;

struct Tree {
  int label = kNoSymbol;
  std::vector<Tree> children;

  Tree() = default;
  explicit Tree(int label) : label(label) {}
  Tree(int label, std::vector<Tree> children)
      : label(label), children(std::move(children)) {}

  // The destructor flattens the subtree iteratively: the implicit
  // (recursive) teardown of vector<Tree> overflows the call stack on
  // path-shaped documents hundreds of thousands of nodes deep. Declaring
  // it suppresses the implicit copy/move members, so they are defaulted
  // explicitly.
  ~Tree();
  Tree(const Tree&) = default;
  Tree(Tree&&) noexcept = default;
  Tree& operator=(const Tree&) = default;
  Tree& operator=(Tree&&) noexcept = default;

  // Builds a unary ("linear") tree whose root-to-leaf labels spell `word`.
  // Require: word non-empty.
  static Tree Unary(const Word& word);

  bool IsLeaf() const { return children.empty(); }

  int NumNodes() const;

  // Depth per the paper: a single-node tree has depth 1.
  int Depth() const;

  // The node at `path`. Require: path valid.
  const Tree& At(const TreePath& path) const;
  Tree& At(const TreePath& path);

  bool IsValidPath(const TreePath& path) const;

  // ch-str(path): the labels of the node's children.
  Word ChildString(const TreePath& path) const;

  // anc-str(path): labels from the root down to and including the node.
  Word AncestorString(const TreePath& path) const;

  // t[path <- replacement]: returns a copy with the subtree at `path`
  // replaced. Require: path valid.
  Tree ReplaceSubtree(const TreePath& path, const Tree& replacement) const;

  // All node addresses in breadth-first order (root first).
  std::vector<TreePath> AllPaths() const;

  // Term syntax, e.g. "a(b, c(d))".
  std::string ToString(const Alphabet& alphabet) const;

  // Total order (label, then children lexicographically); enables use in
  // ordered containers for closure fixpoints.
  friend bool operator==(const Tree& a, const Tree& b) {
    return a.label == b.label && a.children == b.children;
  }
  friend bool operator<(const Tree& a, const Tree& b) {
    if (a.label != b.label) return a.label < b.label;
    return a.children < b.children;
  }
};

// Applies ancestor-guarded subtree exchange (Definition 2.10 / Figure 1):
// returns t1[v1 <- subtree^t2(v2)]. Require: the two nodes have equal
// ancestor strings (checked).
Tree AncestorGuardedExchange(const Tree& t1, const TreePath& v1,
                             const Tree& t2, const TreePath& v2);

// True if anc-str^t1(v1) == anc-str^t2(v2).
bool AncestorStringsEqual(const Tree& t1, const TreePath& v1, const Tree& t2,
                          const TreePath& v2);

}  // namespace stap

#endif  // STAP_TREE_TREE_H_
