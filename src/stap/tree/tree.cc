#include "stap/tree/tree.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "stap/base/check.h"

namespace stap {

Tree Tree::Unary(const Word& word) {
  STAP_CHECK(!word.empty());
  Tree result(word.back());
  for (int i = static_cast<int>(word.size()) - 2; i >= 0; --i) {
    Tree parent(word[i]);
    parent.children.push_back(std::move(result));
    result = std::move(parent);
  }
  return result;
}

int Tree::NumNodes() const {
  int count = 1;
  for (const Tree& child : children) count += child.NumNodes();
  return count;
}

int Tree::Depth() const {
  int max_child = 0;
  for (const Tree& child : children) {
    max_child = std::max(max_child, child.Depth());
  }
  return 1 + max_child;
}

const Tree& Tree::At(const TreePath& path) const {
  const Tree* node = this;
  for (int index : path) {
    STAP_CHECK(index >= 0 && index < static_cast<int>(node->children.size()));
    node = &node->children[index];
  }
  return *node;
}

Tree& Tree::At(const TreePath& path) {
  return const_cast<Tree&>(static_cast<const Tree*>(this)->At(path));
}

bool Tree::IsValidPath(const TreePath& path) const {
  const Tree* node = this;
  for (int index : path) {
    if (index < 0 || index >= static_cast<int>(node->children.size())) {
      return false;
    }
    node = &node->children[index];
  }
  return true;
}

Word Tree::ChildString(const TreePath& path) const {
  const Tree& node = At(path);
  Word labels;
  labels.reserve(node.children.size());
  for (const Tree& child : node.children) labels.push_back(child.label);
  return labels;
}

Word Tree::AncestorString(const TreePath& path) const {
  Word labels;
  labels.reserve(path.size() + 1);
  const Tree* node = this;
  labels.push_back(node->label);
  for (int index : path) {
    STAP_CHECK(index >= 0 && index < static_cast<int>(node->children.size()));
    node = &node->children[index];
    labels.push_back(node->label);
  }
  return labels;
}

Tree Tree::ReplaceSubtree(const TreePath& path, const Tree& replacement) const {
  if (path.empty()) return replacement;
  Tree result = *this;
  result.At(path) = replacement;
  return result;
}

std::vector<TreePath> Tree::AllPaths() const {
  std::vector<TreePath> paths;
  std::deque<TreePath> queue = {TreePath{}};
  while (!queue.empty()) {
    TreePath path = std::move(queue.front());
    queue.pop_front();
    const Tree& node = At(path);
    for (int i = 0; i < static_cast<int>(node.children.size()); ++i) {
      TreePath child = path;
      child.push_back(i);
      queue.push_back(std::move(child));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string Tree::ToString(const Alphabet& alphabet) const {
  std::ostringstream os;
  os << alphabet.Name(label);
  if (!children.empty()) {
    os << "(";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) os << ", ";
      os << children[i].ToString(alphabet);
    }
    os << ")";
  }
  return os.str();
}

bool AncestorStringsEqual(const Tree& t1, const TreePath& v1, const Tree& t2,
                          const TreePath& v2) {
  return t1.AncestorString(v1) == t2.AncestorString(v2);
}

Tree AncestorGuardedExchange(const Tree& t1, const TreePath& v1,
                             const Tree& t2, const TreePath& v2) {
  STAP_CHECK(AncestorStringsEqual(t1, v1, t2, v2));
  return t1.ReplaceSubtree(v1, t2.At(v2));
}

}  // namespace stap
