#include "stap/tree/tree.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <utility>

#include "stap/base/check.h"

namespace stap {

Tree Tree::Unary(const Word& word) {
  STAP_CHECK(!word.empty());
  Tree result(word.back());
  for (int i = static_cast<int>(word.size()) - 2; i >= 0; --i) {
    Tree parent(word[i]);
    parent.children.push_back(std::move(result));
    result = std::move(parent);
  }
  return result;
}

Tree::~Tree() {
  // Hoist grandchildren into this node's child list before letting the
  // vector destructor run, so teardown never descends more than one level
  // at a time regardless of document depth. Each popped child has already
  // been emptied, so its own destructor is trivial; total work stays O(n).
  while (!children.empty()) {
    Tree child = std::move(children.back());
    children.pop_back();
    while (!child.children.empty()) {
      children.push_back(std::move(child.children.back()));
      child.children.pop_back();
    }
  }
}

int Tree::NumNodes() const {
  int count = 0;
  std::vector<const Tree*> stack = {this};
  while (!stack.empty()) {
    const Tree* node = stack.back();
    stack.pop_back();
    ++count;
    for (const Tree& child : node->children) stack.push_back(&child);
  }
  return count;
}

int Tree::Depth() const {
  int max_depth = 1;
  std::vector<std::pair<const Tree*, int>> stack = {{this, 1}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    for (const Tree& child : node->children) {
      stack.push_back({&child, depth + 1});
    }
  }
  return max_depth;
}

const Tree& Tree::At(const TreePath& path) const {
  const Tree* node = this;
  for (int index : path) {
    STAP_CHECK(index >= 0 && index < static_cast<int>(node->children.size()));
    node = &node->children[index];
  }
  return *node;
}

Tree& Tree::At(const TreePath& path) {
  return const_cast<Tree&>(static_cast<const Tree*>(this)->At(path));
}

bool Tree::IsValidPath(const TreePath& path) const {
  const Tree* node = this;
  for (int index : path) {
    if (index < 0 || index >= static_cast<int>(node->children.size())) {
      return false;
    }
    node = &node->children[index];
  }
  return true;
}

Word Tree::ChildString(const TreePath& path) const {
  const Tree& node = At(path);
  Word labels;
  labels.reserve(node.children.size());
  for (const Tree& child : node.children) labels.push_back(child.label);
  return labels;
}

Word Tree::AncestorString(const TreePath& path) const {
  Word labels;
  labels.reserve(path.size() + 1);
  const Tree* node = this;
  labels.push_back(node->label);
  for (int index : path) {
    STAP_CHECK(index >= 0 && index < static_cast<int>(node->children.size()));
    node = &node->children[index];
    labels.push_back(node->label);
  }
  return labels;
}

Tree Tree::ReplaceSubtree(const TreePath& path, const Tree& replacement) const {
  if (path.empty()) return replacement;
  Tree result = *this;
  result.At(path) = replacement;
  return result;
}

std::vector<TreePath> Tree::AllPaths() const {
  std::vector<TreePath> paths;
  std::deque<TreePath> queue = {TreePath{}};
  while (!queue.empty()) {
    TreePath path = std::move(queue.front());
    queue.pop_front();
    const Tree& node = At(path);
    for (int i = 0; i < static_cast<int>(node.children.size()); ++i) {
      TreePath child = path;
      child.push_back(i);
      queue.push_back(std::move(child));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string Tree::ToString(const Alphabet& alphabet) const {
  std::ostringstream os;
  os << alphabet.Name(label);
  if (!children.empty()) {
    os << "(";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) os << ", ";
      os << children[i].ToString(alphabet);
    }
    os << ")";
  }
  return os.str();
}

bool AncestorStringsEqual(const Tree& t1, const TreePath& v1, const Tree& t2,
                          const TreePath& v2) {
  return t1.AncestorString(v1) == t2.AncestorString(v2);
}

Tree AncestorGuardedExchange(const Tree& t1, const TreePath& v1,
                             const Tree& t2, const TreePath& v2) {
  STAP_CHECK(AncestorStringsEqual(t1, v1, t2, v2));
  return t1.ReplaceSubtree(v1, t2.At(v2));
}

}  // namespace stap
