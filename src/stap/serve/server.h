// The `stap serve` daemon: a long-running validation service over the
// compiled-schema pipeline.
//
// Architecture (see DESIGN.md, "The serve daemon"):
//
//   - One accept thread; one handler thread per client connection, with
//     a hard connection cap. A connection past the cap is shed with a
//     BUSY frame at accept time — bounded threads, no unbounded queue.
//   - Requests within a connection are processed serially in arrival
//     order; concurrency comes from concurrent connections. A global
//     in-flight gate (max_inflight) sheds individual requests with BUSY
//     when the server is saturated, so overload degrades per-request
//     instead of stalling the socket.
//   - Schema state is an immutable SchemaSnapshot behind one atomic
//     load (snapshot.h); artifact hot-reload swaps the epoch without
//     blocking in-flight requests. Inline schema text compiles through
//     the exactly-once registry memo + CompileCache — a 32-client cold
//     stampede performs each content-model compilation once.
//   - Every request gets its own Budget (deadline + state/set quotas
//     from ServeOptions); exhaustion returns an EXHAUSTED frame, the
//     connection stays healthy.
//   - The same port speaks a minimal HTTP GET surface for scrapers:
//     /metrics (Prometheus exposition of the process-wide registry),
//     /healthz (readiness; first line is exactly "ok"), /statusz (a
//     one-page JSON status: uptime, snapshot epoch, liveness gauges,
//     rolling-window latency/error SLOs, build info), and /requestz (the
//     access log's recent + slow request rings as JSON). The dialect is
//     picked by the 4-byte connection preamble.
//   - Every request is access-logged (base/logging.h): a JSONL record
//     with ids, op, schema ref, code, budget charge, latency, and epoch,
//     kept in a bounded ring and optionally appended to a file. Requests
//     slower than ServeOptions::slow_request_ms retroactively keep their
//     span tree (base/trace.h RequestCapture) for /requestz; requests
//     under the threshold pay a fixed-buffer capture with no per-request
//     heap allocation.
#ifndef STAP_SERVE_SERVER_H_
#define STAP_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "stap/base/budget.h"
#include "stap/base/logging.h"
#include "stap/base/status.h"
#include "stap/serve/protocol.h"
#include "stap/serve/snapshot.h"

namespace stap {

class CompileCache;

struct ServeOptions {
  // Listen address. Port 0 binds an ephemeral port (see Server::port()).
  std::string host = "127.0.0.1";
  int port = 0;
  // Hard cap on concurrent client connections; connection n+1 is shed
  // with a BUSY frame and closed.
  int max_connections = 64;
  // Cap on requests being processed at once across all connections;
  // 0 or negative disables the gate (connections already bound it).
  int max_inflight = 0;
  // Per-request budget; 0 = unlimited for that dimension.
  int64_t request_budget_ms = 0;
  int64_t request_max_states = 0;
  int64_t request_max_sets = 0;
  // Largest accepted frame body.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Directory of *.stapc artifacts / *.stap schemas loaded at Start and
  // re-scanned by kReload; empty = start with an empty snapshot.
  std::string schema_dir;
  // Content-model compile cache; null = CompileCache::Global().
  CompileCache* cache = nullptr;

  // --- request-level observability (base/logging.h) ---
  // JSONL access-log file, appended; empty keeps the log in-memory only
  // (the /requestz rings always run).
  std::string access_log_path;
  // Requests strictly slower than this keep their span tree in the slow
  // ring served by /requestz; 0 disables slow capture entirely.
  int64_t slow_request_ms = 0;
  // Ring capacities for /requestz.
  size_t access_log_ring = 256;
  size_t slow_ring = 64;
  // File-sink overload budget (lines/second, 0 = unlimited); excess
  // lines are dropped and counted, never queued.
  int64_t access_log_max_lines_per_sec = 100000;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();  // Stops if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads the schema directory, binds, listens, and starts accepting.
  Status Start();

  // Shuts the listener and every open connection down and joins all
  // handler threads. Idempotent; safe from a signal-wakeup thread.
  void Stop();

  // The bound port (resolves port 0), valid after a successful Start().
  int port() const { return port_; }

  // The live schema registry: tests and the reload path swap snapshots
  // through it while traffic is in flight.
  SchemaRegistry* registry() { return &registry_; }

  // Computes the response for one decoded request — the protocol-free
  // core of the daemon, exercised directly by unit tests. `conn_id` tags
  // the access-log record (0 = no connection, e.g. direct test calls).
  ServeResponse HandleRequest(const ServeRequest& request,
                              uint64_t conn_id = 0);

  // The request-level access log (rings + optional file sink).
  AccessLogger* access_log() { return &access_log_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd, uint64_t conn_id);
  void ServeBinary(int fd, uint64_t conn_id);
  void ServeHttp(int fd, const char preamble[4]);
  std::string StatuszJson() const;
  std::string HealthzBody() const;
  StatusOr<std::shared_ptr<const CompiledSchema>> ResolveSchema(
      const std::string& ref);
  CompileCache* cache() const;

  // Registers/unregisters live connection fds so Stop can interrupt
  // blocked reads with shutdown(2). Handler threads are detached (a
  // joinable handle per short-lived connection would hold its stack
  // until a join); Stop drains them by waiting for the fd set to empty.
  bool TrackConnection(int fd);
  void ForgetConnection(int fd);

  ServeOptions options_;
  SchemaRegistry registry_;
  AccessLogger access_log_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int> active_connections_{0};
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> next_conn_id_{0};
  std::atomic<uint64_t> next_request_id_{0};
  std::chrono::steady_clock::time_point start_time_{};

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::condition_variable connections_drained_;
  std::unordered_set<int> connection_fds_;  // guarded by connections_mutex_
};

}  // namespace stap

#endif  // STAP_SERVE_SERVER_H_
