// The `stap serve` daemon: a long-running validation service over the
// compiled-schema pipeline.
//
// Architecture (see DESIGN.md, "The serve daemon"):
//
//   - One accept thread; one handler thread per client connection, with
//     a hard connection cap. A connection past the cap is shed with a
//     BUSY frame at accept time — bounded threads, no unbounded queue.
//   - Requests within a connection are processed serially in arrival
//     order; concurrency comes from concurrent connections. A global
//     in-flight gate (max_inflight) sheds individual requests with BUSY
//     when the server is saturated, so overload degrades per-request
//     instead of stalling the socket.
//   - Schema state is an immutable SchemaSnapshot behind one atomic
//     load (snapshot.h); artifact hot-reload swaps the epoch without
//     blocking in-flight requests. Inline schema text compiles through
//     the exactly-once registry memo + CompileCache — a 32-client cold
//     stampede performs each content-model compilation once.
//   - Every request gets its own Budget (deadline + state/set quotas
//     from ServeOptions); exhaustion returns an EXHAUSTED frame, the
//     connection stays healthy.
//   - The same port speaks a minimal HTTP GET surface for scrapers:
//     /metrics (Prometheus exposition of the process-wide registry) and
//     /healthz. The dialect is picked by the 4-byte connection preamble.
#ifndef STAP_SERVE_SERVER_H_
#define STAP_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/serve/protocol.h"
#include "stap/serve/snapshot.h"

namespace stap {

class CompileCache;

struct ServeOptions {
  // Listen address. Port 0 binds an ephemeral port (see Server::port()).
  std::string host = "127.0.0.1";
  int port = 0;
  // Hard cap on concurrent client connections; connection n+1 is shed
  // with a BUSY frame and closed.
  int max_connections = 64;
  // Cap on requests being processed at once across all connections;
  // 0 or negative disables the gate (connections already bound it).
  int max_inflight = 0;
  // Per-request budget; 0 = unlimited for that dimension.
  int64_t request_budget_ms = 0;
  int64_t request_max_states = 0;
  int64_t request_max_sets = 0;
  // Largest accepted frame body.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Directory of *.stapc artifacts / *.stap schemas loaded at Start and
  // re-scanned by kReload; empty = start with an empty snapshot.
  std::string schema_dir;
  // Content-model compile cache; null = CompileCache::Global().
  CompileCache* cache = nullptr;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();  // Stops if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads the schema directory, binds, listens, and starts accepting.
  Status Start();

  // Shuts the listener and every open connection down and joins all
  // handler threads. Idempotent; safe from a signal-wakeup thread.
  void Stop();

  // The bound port (resolves port 0), valid after a successful Start().
  int port() const { return port_; }

  // The live schema registry: tests and the reload path swap snapshots
  // through it while traffic is in flight.
  SchemaRegistry* registry() { return &registry_; }

  // Computes the response for one decoded request — the protocol-free
  // core of the daemon, exercised directly by unit tests.
  ServeResponse HandleRequest(const ServeRequest& request);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  void ServeBinary(int fd);
  void ServeHttp(int fd, const char preamble[4]);
  StatusOr<std::shared_ptr<const CompiledSchema>> ResolveSchema(
      const std::string& ref);
  CompileCache* cache() const;

  // Registers/unregisters live connection fds so Stop can interrupt
  // blocked reads with shutdown(2). Handler threads are detached (a
  // joinable handle per short-lived connection would hold its stack
  // until a join); Stop drains them by waiting for the fd set to empty.
  bool TrackConnection(int fd);
  void ForgetConnection(int fd);

  ServeOptions options_;
  SchemaRegistry registry_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int> active_connections_{0};
  std::atomic<int> inflight_{0};

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::condition_variable connections_drained_;
  std::unordered_set<int> connection_fds_;  // guarded by connections_mutex_
};

}  // namespace stap

#endif  // STAP_SERVE_SERVER_H_
