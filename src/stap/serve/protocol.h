// Wire protocol for the `stap serve` validation daemon.
//
// A connection opens with a 4-byte preamble that picks the dialect:
//
//   "STP1"  length-prefixed binary frames (the request/response protocol)
//   "GET "  a minimal HTTP/1.0 read-only surface: /metrics (Prometheus),
//           /healthz (readiness), /statusz (one-page JSON status with
//           rolling-window SLOs), /requestz (recent + slow request rings)
//
// Binary framing: every frame is a little-endian u32 body length followed
// by that many body bytes. The length is bounded (kDefaultMaxFrameBytes,
// configurable per server) so a hostile length prefix cannot force an
// attacker-sized allocation; oversized, truncated, or otherwise malformed
// frames are a clean kInvalidArgument, never a crash.
//
// Request body layout (all integers little-endian):
//
//   u64  request id (echoed verbatim in the response; never interpreted)
//   u8   opcode (Opcode below)
//   u32  schema-ref length, then that many bytes
//   u32  payload length, then that many bytes
//
// The schema ref is either "@name" — a schema registered in the server's
// snapshot registry (loaded from artifacts at startup or via kReload) —
// or inline schema text in the repo's textual format, compiled on first
// use through the exactly-once compile cache (the stampede guard). The
// payload is the XML document for kValidate, the second schema ref for
// kIncluded, and empty otherwise.
//
// Response body layout:
//
//   u64  request id
//   u8   response code (ResponseCode below)
//   u32  body length, then that many bytes
//
// kBusy is the overload verdict (the 429 analogue): the server sheds the
// request instead of queueing unboundedly, and the client may retry.
// Responses to requests the server could not even parse carry id 0.
#ifndef STAP_SERVE_PROTOCOL_H_
#define STAP_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "stap/base/status.h"

namespace stap {

inline constexpr char kServePreamble[4] = {'S', 'T', 'P', '1'};
inline constexpr size_t kDefaultMaxFrameBytes = 16 * 1024 * 1024;

enum class Opcode : uint8_t {
  kValidate = 1,  // payload: XML document
  kIncluded = 2,  // payload: second schema ref
  kApprox = 3,    // no payload; body of the OK response is the XSD text
  kReload = 4,    // re-scan the server's schema directory, swap snapshot
  kPing = 5,      // no schema; payload echoed back
};

enum class ResponseCode : uint8_t {
  kOk = 0,         // body: result payload (empty for a VALID document)
  kInvalid = 1,    // kValidate only: document rejected; body: diagnostic
  kError = 2,      // malformed request / internal failure; body: message
  kBusy = 3,       // overload shed; retry later
  kExhausted = 4,  // the per-request budget ran out; body: reason
  kNotFound = 5,   // unknown "@name" schema ref
};

// Printable names for logs and test diagnostics ("OK", "BUSY", ...).
const char* ResponseCodeName(ResponseCode code);

// Printable opcode names for the access log ("validate", "ping", ...).
const char* OpcodeName(Opcode op);

struct ServeRequest {
  uint64_t id = 0;
  Opcode op = Opcode::kPing;
  std::string schema_ref;
  std::string payload;
};

struct ServeResponse {
  uint64_t id = 0;
  ResponseCode code = ResponseCode::kError;
  std::string body;
};

// --- body codecs ------------------------------------------------------
// Encode* returns a complete frame (length prefix included). Decode*
// takes a frame body (prefix already stripped) and requires it to be
// fully consumed.

std::string EncodeRequestFrame(const ServeRequest& request);
std::string EncodeResponseFrame(const ServeResponse& response);
StatusOr<ServeRequest> DecodeRequestBody(std::string_view body);
StatusOr<ServeResponse> DecodeResponseBody(std::string_view body);

// --- fd framing helpers ----------------------------------------------
// Blocking loops over read(2)/write(2) with EINTR handling. ReadFrameBody
// reads one length prefix plus body; a clean EOF before the first prefix
// byte is kNotFound (the peer hung up between frames), anything partial
// is kInvalidArgument ("truncated frame").

Status WriteAll(int fd, std::string_view bytes);
StatusOr<std::string> ReadFrameBody(int fd, size_t max_frame_bytes);

}  // namespace stap

#endif  // STAP_SERVE_PROTOCOL_H_
