#include "stap/serve/snapshot.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "stap/base/compile_cache.h"
#include "stap/base/metrics.h"
#include "stap/base/trace.h"

namespace stap {

SchemaRegistry::SchemaRegistry() {
  snapshot_.store(std::make_shared<const SchemaSnapshot>(),
                  std::memory_order_release);
}

std::shared_ptr<const CompiledSchema> SchemaRegistry::Lookup(
    const std::string& name) const {
  std::shared_ptr<const SchemaSnapshot> snapshot = Current();
  auto it = snapshot->schemas.find(name);
  if (it == snapshot->schemas.end()) return nullptr;
  return it->second;
}

int64_t SchemaRegistry::Swap(SchemaMap schemas) {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  auto next = std::make_shared<SchemaSnapshot>();
  next->version = Current()->version + 1;
  next->schemas = std::move(schemas);
  snapshot_.store(std::shared_ptr<const SchemaSnapshot>(std::move(next)),
                  std::memory_order_release);
  GetCounter("serve.snapshot_swaps")->Increment();
  const int64_t version = Current()->version;
  GetGauge("serve.snapshot_epoch")->Set(version);
  return version;
}

StatusOr<std::shared_ptr<const CompiledSchema>>
SchemaRegistry::GetOrCompileText(std::string_view text, CompileCache* cache) {
  static Counter* const hits = GetCounter("serve.inline_hit");
  static Counter* const misses = GetCounter("serve.inline_miss");
  static Counter* const retries = GetCounter("serve.inline_retry");

  std::shared_ptr<InlineEntry> entry;
  bool owner = false;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(inline_mutex_);
      auto it = inline_.find(std::string(text));
      if (it == inline_.end()) {
        entry = std::make_shared<InlineEntry>();
        inline_.emplace(std::string(text), entry);
        owner = true;
      } else {
        entry = it->second;
      }
    }
    if (owner) break;

    hits->Increment();
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->cv.wait(lock, [&] { return entry->done; });
    if (entry->status.ok()) return entry->value;
    // Same non-poisoning discipline as CompileCache::GetOrCompile: the
    // failed owner un-published the entry; retry with our own resources.
    retries->Increment();
  }

  misses->Increment();
  StatusOr<CompiledSchema> compiled = [&] {
    ScopedSpan span("serve.inline_compile");
    return CompileSchema(text, cache);
  }();

  if (!compiled.ok()) {
    {
      std::lock_guard<std::mutex> lock(inline_mutex_);
      auto it = inline_.find(std::string(text));
      if (it != inline_.end() && it->second == entry) inline_.erase(it);
    }
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      entry->status = compiled.status();
      entry->done = true;
    }
    entry->cv.notify_all();
    return compiled.status();
  }

  auto value = std::make_shared<const CompiledSchema>(std::move(*compiled));
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->value = value;
    entry->done = true;
  }
  entry->cv.notify_all();
  return value;
}

int64_t SchemaRegistry::num_inline() const {
  std::lock_guard<std::mutex> lock(inline_mutex_);
  return static_cast<int64_t>(inline_.size());
}

StatusOr<SchemaMap> LoadSchemaDir(const std::string& dir,
                                  CompileCache* cache) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return NotFoundError("schema directory '" + dir + "' does not exist");
  }
  SchemaMap schemas;
  for (const fs::directory_entry& dirent : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!dirent.is_regular_file()) continue;
    const fs::path& path = dirent.path();
    const std::string extension = path.extension().string();
    if (extension != ".stap" && extension != ".stapc") continue;
    std::ifstream file(path, std::ios::binary);
    std::ostringstream buffer;
    if (!file || !(buffer << file.rdbuf())) {
      return NotFoundError("cannot read schema file '" + path.string() + "'");
    }
    const std::string bytes = buffer.str();
    StatusOr<CompiledSchema> schema =
        LooksLikeArtifact(bytes) ? DeserializeArtifact(bytes)
                                 : CompileSchema(bytes, cache);
    if (!schema.ok()) {
      return Status(schema.status().code(),
                    path.string() + ": " + schema.status().message());
    }
    schemas[path.stem().string()] =
        std::make_shared<const CompiledSchema>(std::move(*schema));
  }
  if (ec) {
    return NotFoundError("cannot list schema directory '" + dir +
                         "': " + ec.message());
  }
  return schemas;
}

}  // namespace stap
