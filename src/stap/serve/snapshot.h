// Immutable schema snapshots for the serving daemon.
//
// The serve hot path must read schema state without taking a lock: a
// SchemaSnapshot is an immutable name → CompiledSchema map published
// through a std::atomic<std::shared_ptr<const SchemaSnapshot>>. Readers
// pay one atomic load to pin the current epoch; a hot reload builds a
// whole new snapshot off to the side and swaps it in with one atomic
// store. In-flight requests keep validating against the epoch they
// pinned (the shared_ptr keeps it alive), new requests see the new one —
// RCU by shared_ptr refcount, with no reader-side mutex.
//
// Inline schemas — requests that carry schema text instead of an "@name"
// ref — compile through an exactly-once memo keyed on the source text:
// when many cold clients reference the same not-yet-compiled schema at
// once (the compile stampede), one caller runs ParseSchema (whose
// per-content-model work is itself deduplicated by the CompileCache) and
// everyone else blocks on the in-flight entry. Like the CompileCache,
// failure is neither cached nor inherited: waiters on a failed owner
// retry with their own resources.
#ifndef STAP_SERVE_SNAPSHOT_H_
#define STAP_SERVE_SNAPSHOT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "stap/base/status.h"
#include "stap/io/artifact.h"

namespace stap {

class CompileCache;

using SchemaMap =
    std::unordered_map<std::string, std::shared_ptr<const CompiledSchema>>;

struct SchemaSnapshot {
  int64_t version = 0;
  SchemaMap schemas;
};

class SchemaRegistry {
 public:
  SchemaRegistry();

  SchemaRegistry(const SchemaRegistry&) = delete;
  SchemaRegistry& operator=(const SchemaRegistry&) = delete;

  // The current epoch: one atomic load, never null.
  std::shared_ptr<const SchemaSnapshot> Current() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  // Convenience lookup in the current epoch; null when absent.
  std::shared_ptr<const CompiledSchema> Lookup(const std::string& name) const;

  // Publishes a new epoch holding exactly `schemas`. Returns the new
  // version. Safe against concurrent readers and concurrent Swaps.
  int64_t Swap(SchemaMap schemas);

  // Exactly-once compilation of inline schema text (see file comment).
  // Successful results are memoized for the registry's lifetime, so a
  // warm inline schema costs one lookup.
  StatusOr<std::shared_ptr<const CompiledSchema>> GetOrCompileText(
      std::string_view text, CompileCache* cache);

  // Number of memoized inline schemas (tests).
  int64_t num_inline() const;

 private:
  struct InlineEntry {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;                            // guarded by mutex
    Status status;                                // guarded by mutex
    std::shared_ptr<const CompiledSchema> value;  // guarded by mutex
  };

  std::atomic<std::shared_ptr<const SchemaSnapshot>> snapshot_;
  std::mutex swap_mutex_;  // serializes Swap version bumps

  mutable std::mutex inline_mutex_;
  std::unordered_map<std::string, std::shared_ptr<InlineEntry>> inline_;
};

// Loads every schema in `dir` into a SchemaMap keyed by file basename
// without extension: `*.stapc` files deserialize as compiled artifacts,
// `*.stap` files compile from text through `cache`. Unreadable or
// corrupt files fail the whole load (a serving process should not start
// with a silently partial schema set).
StatusOr<SchemaMap> LoadSchemaDir(const std::string& dir, CompileCache* cache);

}  // namespace stap

#endif  // STAP_SERVE_SNAPSHOT_H_
