// A small blocking client for the stap serve binary protocol, used by
// the integration tests and the bench_serve load generator.
//
// Send/Receive are split so callers can pipeline: write a window of
// requests before reading the first response. Responses come back in
// request order on a connection (the server processes a connection
// serially), so no id matching is needed for pipelined use — but ids are
// echoed, and Call() asserts the echo.
#ifndef STAP_SERVE_CLIENT_H_
#define STAP_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "stap/base/status.h"
#include "stap/serve/protocol.h"

namespace stap {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects and sends the binary-protocol preamble.
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }

  // Writes one request frame.
  Status Send(const ServeRequest& request);

  // Reads one response frame.
  StatusOr<ServeResponse> Receive();

  // Send + Receive, checking the echoed id matches.
  StatusOr<ServeResponse> Call(const ServeRequest& request);

  // Writes raw bytes on the socket (tests use this to inject malformed
  // frames past the codec).
  Status SendRaw(std::string_view bytes);

  void Close();

 private:
  int fd_ = -1;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

// One-shot HTTP/1.0 GET against the daemon's scrape surface (/metrics,
// /statusz, ...): returns the response body with the headers stripped.
// Used by `stap top` and the bench's /statusz cross-check; deliberately
// minimal — the server closes after one response.
StatusOr<std::string> HttpGetBody(const std::string& host, int port,
                                  const std::string& path);

}  // namespace stap

#endif  // STAP_SERVE_CLIENT_H_
