#include "stap/serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace stap {

namespace {

void AppendU32(std::string* out, uint32_t value) {
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((value >> (8 * b)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<char>((value >> (8 * b)) & 0xff));
  }
}

void AppendBytes(std::string* out, std::string_view bytes) {
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

// Cursor over a frame body; every read validates against the bytes
// actually remaining, so a hostile inner length cannot over-read or
// force an oversized allocation.
class BodyReader {
 public:
  explicit BodyReader(std::string_view bytes) : bytes_(bytes) {}

  Status ReadU32(uint32_t* out) {
    if (bytes_.size() - pos_ < 4) return Truncated("u32");
    uint32_t value = 0;
    for (int b = 0; b < 4; ++b) {
      value |= static_cast<uint32_t>(
                   static_cast<unsigned char>(bytes_[pos_ + b]))
               << (8 * b);
    }
    pos_ += 4;
    *out = value;
    return Status();
  }

  Status ReadU64(uint64_t* out) {
    if (bytes_.size() - pos_ < 8) return Truncated("u64");
    uint64_t value = 0;
    for (int b = 0; b < 8; ++b) {
      value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(bytes_[pos_ + b]))
               << (8 * b);
    }
    pos_ += 8;
    *out = value;
    return Status();
  }

  Status ReadU8(uint8_t* out) {
    if (bytes_.size() - pos_ < 1) return Truncated("u8");
    *out = static_cast<unsigned char>(bytes_[pos_++]);
    return Status();
  }

  Status ReadBytes(std::string* out) {
    uint32_t length = 0;
    STAP_RETURN_IF_ERROR(ReadU32(&length));
    if (bytes_.size() - pos_ < length) return Truncated("byte string");
    out->assign(bytes_.substr(pos_, length));
    pos_ += length;
    return Status();
  }

  Status ExpectDone() const {
    if (pos_ == bytes_.size()) return Status();
    return InvalidArgumentError("frame body has " +
                                std::to_string(bytes_.size() - pos_) +
                                " trailing bytes");
  }

 private:
  Status Truncated(const char* what) const {
    return InvalidArgumentError(std::string("frame body truncated reading ") +
                                what);
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

const char* ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk:
      return "OK";
    case ResponseCode::kInvalid:
      return "INVALID";
    case ResponseCode::kError:
      return "ERROR";
    case ResponseCode::kBusy:
      return "BUSY";
    case ResponseCode::kExhausted:
      return "EXHAUSTED";
    case ResponseCode::kNotFound:
      return "NOT_FOUND";
  }
  return "UNKNOWN";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kValidate:
      return "validate";
    case Opcode::kIncluded:
      return "included";
    case Opcode::kApprox:
      return "approx";
    case Opcode::kReload:
      return "reload";
    case Opcode::kPing:
      return "ping";
  }
  return "unknown";
}

std::string EncodeRequestFrame(const ServeRequest& request) {
  std::string body;
  body.reserve(8 + 1 + 8 + request.schema_ref.size() +
               request.payload.size());
  AppendU64(&body, request.id);
  body.push_back(static_cast<char>(request.op));
  AppendBytes(&body, request.schema_ref);
  AppendBytes(&body, request.payload);
  std::string frame;
  frame.reserve(4 + body.size());
  AppendU32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

std::string EncodeResponseFrame(const ServeResponse& response) {
  std::string body;
  body.reserve(8 + 1 + 4 + response.body.size());
  AppendU64(&body, response.id);
  body.push_back(static_cast<char>(response.code));
  AppendBytes(&body, response.body);
  std::string frame;
  frame.reserve(4 + body.size());
  AppendU32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

StatusOr<ServeRequest> DecodeRequestBody(std::string_view body) {
  BodyReader reader(body);
  ServeRequest request;
  uint8_t op = 0;
  STAP_RETURN_IF_ERROR(reader.ReadU64(&request.id));
  STAP_RETURN_IF_ERROR(reader.ReadU8(&op));
  if (op < static_cast<uint8_t>(Opcode::kValidate) ||
      op > static_cast<uint8_t>(Opcode::kPing)) {
    return InvalidArgumentError("unknown opcode " + std::to_string(op));
  }
  request.op = static_cast<Opcode>(op);
  STAP_RETURN_IF_ERROR(reader.ReadBytes(&request.schema_ref));
  STAP_RETURN_IF_ERROR(reader.ReadBytes(&request.payload));
  STAP_RETURN_IF_ERROR(reader.ExpectDone());
  return request;
}

StatusOr<ServeResponse> DecodeResponseBody(std::string_view body) {
  BodyReader reader(body);
  ServeResponse response;
  uint8_t code = 0;
  STAP_RETURN_IF_ERROR(reader.ReadU64(&response.id));
  STAP_RETURN_IF_ERROR(reader.ReadU8(&code));
  if (code > static_cast<uint8_t>(ResponseCode::kNotFound)) {
    return InvalidArgumentError("unknown response code " +
                                std::to_string(code));
  }
  response.code = static_cast<ResponseCode>(code);
  STAP_RETURN_IF_ERROR(reader.ReadBytes(&response.body));
  STAP_RETURN_IF_ERROR(reader.ExpectDone());
  return response;
}

Status WriteAll(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("write failed: ") +
                           std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status();
}

namespace {

// Reads exactly n bytes. `*clean_eof` is set when the peer closed before
// the first byte (only meaningful when it was passed non-null).
Status ReadExact(int fd, char* buf, size_t n, bool* clean_eof) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("read failed: ") +
                           std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return NotFoundError("connection closed");
      }
      return InvalidArgumentError("truncated frame (connection closed after " +
                                  std::to_string(got) + " of " +
                                  std::to_string(n) + " bytes)");
    }
    got += static_cast<size_t>(r);
  }
  return Status();
}

}  // namespace

StatusOr<std::string> ReadFrameBody(int fd, size_t max_frame_bytes) {
  char prefix[4];
  bool clean_eof = false;
  STAP_RETURN_IF_ERROR(ReadExact(fd, prefix, 4, &clean_eof));
  uint32_t length = 0;
  for (int b = 0; b < 4; ++b) {
    length |= static_cast<uint32_t>(static_cast<unsigned char>(prefix[b]))
              << (8 * b);
  }
  if (length > max_frame_bytes) {
    return InvalidArgumentError("frame of " + std::to_string(length) +
                                " bytes exceeds the " +
                                std::to_string(max_frame_bytes) +
                                "-byte limit");
  }
  std::string body(length, '\0');
  if (length > 0) {
    STAP_RETURN_IF_ERROR(ReadExact(fd, body.data(), length, nullptr));
  }
  return body;
}

}  // namespace stap
