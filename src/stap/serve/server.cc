#include "stap/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper.h"
#include "stap/base/compile_cache.h"
#include "stap/base/metrics.h"
#include "stap/base/string_util.h"
#include "stap/base/trace.h"
#include "stap/io/batch_validate.h"
#include "stap/schema/minimize.h"
#include "stap/schema/single_type.h"
#include "stap/schema/text_format.h"

namespace stap {

namespace {

Status ReadExactly(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("read failed: ") +
                           std::strerror(errno));
    }
    if (r == 0) return NotFoundError("connection closed");
    got += static_cast<size_t>(r);
  }
  return Status();
}

ResponseCode CodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return ResponseCode::kExhausted;
    case StatusCode::kNotFound:
      return ResponseCode::kNotFound;
    default:
      return ResponseCode::kError;
  }
}

// Lifetime counters plus per-code rolling windows: /statusz reports
// "errors in the last minute", not just "errors ever".
void CountResponse(ResponseCode code) {
  static Counter* const ok = GetCounter("serve.ok");
  static Counter* const invalid = GetCounter("serve.invalid");
  static Counter* const error = GetCounter("serve.error");
  static Counter* const busy = GetCounter("serve.busy");
  static Counter* const exhausted = GetCounter("serve.exhausted");
  static Counter* const not_found = GetCounter("serve.not_found");
  static RollingCounter* const roll_ok = GetRollingCounter("serve.rolling.ok");
  static RollingCounter* const roll_invalid =
      GetRollingCounter("serve.rolling.invalid");
  static RollingCounter* const roll_error =
      GetRollingCounter("serve.rolling.error");
  static RollingCounter* const roll_busy =
      GetRollingCounter("serve.rolling.busy");
  static RollingCounter* const roll_exhausted =
      GetRollingCounter("serve.rolling.exhausted");
  static RollingCounter* const roll_not_found =
      GetRollingCounter("serve.rolling.not_found");
  switch (code) {
    case ResponseCode::kOk:
      ok->Increment();
      roll_ok->Increment();
      break;
    case ResponseCode::kInvalid:
      invalid->Increment();
      roll_invalid->Increment();
      break;
    case ResponseCode::kError:
      error->Increment();
      roll_error->Increment();
      break;
    case ResponseCode::kBusy:
      busy->Increment();
      roll_busy->Increment();
      break;
    case ResponseCode::kExhausted:
      exhausted->Increment();
      roll_exhausted->Increment();
      break;
    case ResponseCode::kNotFound:
      not_found->Increment();
      roll_not_found->Increment();
      break;
  }
}

// Liveness gauges mirror the server's private atomics into /metrics.
Gauge* ActiveConnectionsGauge() {
  static Gauge* const gauge = GetGauge("serve.active_connections");
  return gauge;
}

Gauge* InflightGauge() {
  static Gauge* const gauge = GetGauge("serve.inflight");
  return gauge;
}

int64_t WallNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string HttpResponse(const char* status_line, const std::string& body,
                         const char* content_type =
                             "text/plain; version=0.0.4") {
  std::string response = "HTTP/1.0 ";
  response += status_line;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Server::~Server() { Stop(); }

CompileCache* Server::cache() const {
  return options_.cache != nullptr ? options_.cache : CompileCache::Global();
}

Status Server::Start() {
  if (running_.load()) return FailedPreconditionError("server already running");
  {
    AccessLogger::Options log_options;
    log_options.file_path = options_.access_log_path;
    log_options.recent_ring = options_.access_log_ring;
    log_options.slow_ring = options_.slow_ring;
    log_options.slow_threshold_us = options_.slow_request_ms * 1000;
    log_options.max_file_lines_per_sec = options_.access_log_max_lines_per_sec;
    std::string log_error;
    if (!access_log_.Configure(std::move(log_options), &log_error)) {
      return InvalidArgumentError(log_error);
    }
  }
  if (!options_.schema_dir.empty()) {
    StatusOr<SchemaMap> schemas = LoadSchemaDir(options_.schema_dir, cache());
    if (!schemas.ok()) return schemas.status();
    registry_.Swap(std::move(*schemas));
  }
  // Eager-register the liveness gauges and rolling windows so the very
  // first /metrics scrape lists them, before any traffic has arrived.
  ActiveConnectionsGauge();
  InflightGauge();
  GetGauge("serve.snapshot_epoch")->Set(registry_.Current()->version);
  GetRollingHistogram("serve.rolling.request_us");
  for (const char* name :
       {"serve.rolling.ok", "serve.rolling.invalid", "serve.rolling.error",
        "serve.rolling.busy", "serve.rolling.exhausted",
        "serve.rolling.not_found"}) {
    GetRollingCounter(name);
  }
  start_time_ = std::chrono::steady_clock::now();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("cannot parse listen address '" +
                                options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = InternalError("cannot bind " + options_.host + ":" +
                                  std::to_string(options_.port) + ": " +
                                  std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) < 0) {
    Status status =
        InternalError(std::string("listen failed: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  running_.store(true);
  accept_thread_ = std::thread([this] {
    SetCurrentThreadName("stap-accept");
    AcceptLoop();
  });
  return Status();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock the accept thread, then every connection read; the detached
  // handler threads observe EOF/errors and drain themselves, each
  // removing its fd from the tracked set on the way out.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connections_drained_.wait(lock, [&] { return connection_fds_.empty(); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  access_log_.Flush();
}

bool Server::TrackConnection(int fd) {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  if (!running_.load()) return false;
  connection_fds_.insert(fd);
  return true;
}

void Server::ForgetConnection(int fd) {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connection_fds_.erase(fd);
  ::close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  ActiveConnectionsGauge()->Add(-1);
  // Notify under the lock: Stop's drain wait must not miss the final
  // removal, and after the lock is released this thread never touches
  // the Server again.
  connections_drained_.notify_all();
}

void Server::AcceptLoop() {
  static Counter* const accepted = GetCounter("serve.connections");
  static Counter* const shed = GetCounter("serve.connections_shed");
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or a fatal accept error) — drain
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Over the connection cap: shed with a BUSY frame instead of
      // queueing. The write is tiny (fits any socket buffer), so doing
      // it from the accept thread cannot stall the listener.
      shed->Increment();
      ServeResponse busy{0, ResponseCode::kBusy, "connection limit reached"};
      WriteAll(fd, EncodeResponseFrame(busy));
      // Closing with unread bytes (the client's preamble) in the receive
      // buffer turns into an RST that can destroy the BUSY frame before
      // the client reads it: signal end-of-stream first, then drain what
      // the client sent — bounded in both time and rounds so a hostile
      // peer cannot stall the accept thread.
      ::shutdown(fd, SHUT_WR);
      timeval drain_timeout{};
      drain_timeout.tv_usec = 20000;  // 20ms
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &drain_timeout,
                   sizeof(drain_timeout));
      char discard[256];
      for (int i = 0; i < 8 && ::read(fd, discard, sizeof(discard)) > 0; ++i) {
      }
      ::close(fd);
      continue;
    }
    if (!TrackConnection(fd)) {
      ::close(fd);
      break;
    }
    accepted->Increment();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    ActiveConnectionsGauge()->Add(1);
    const uint64_t conn_id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::thread([this, fd, conn_id] {
      SetCurrentThreadName("stap-conn");
      HandleConnection(fd, conn_id);
      ForgetConnection(fd);
    }).detach();
  }
}

void Server::HandleConnection(int fd, uint64_t conn_id) {
  char preamble[4];
  if (!ReadExactly(fd, preamble, 4).ok()) return;
  if (std::memcmp(preamble, kServePreamble, 4) == 0) {
    ServeBinary(fd, conn_id);
    return;
  }
  if (std::memcmp(preamble, "GET ", 4) == 0) {
    ServeHttp(fd, preamble);
    return;
  }
  GetCounter("serve.bad_preamble")->Increment();
  ServeResponse error{0, ResponseCode::kError,
                      "unrecognized connection preamble"};
  WriteAll(fd, EncodeResponseFrame(error));
}

void Server::ServeBinary(int fd, uint64_t conn_id) {
  // Requests shed before HandleRequest (undecodable, or BUSY at the
  // inflight gate) still get an access-log record: the access log is the
  // place an operator looks for exactly these.
  const auto log_shed = [&](const ServeRequest* request,
                            const ServeResponse& response) {
    AccessRecord record;
    record.ts_us = WallNowUs();
    record.request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    record.client_request_id = request != nullptr ? request->id : 0;
    record.conn_id = conn_id;
    record.op = request != nullptr ? OpcodeName(request->op) : "unknown";
    if (request != nullptr) {
      record.schema_ref = TruncateForLog(request->schema_ref);
    }
    record.code = ResponseCodeName(response.code);
    record.snapshot_epoch = registry_.Current()->version;
    access_log_.Log(record);
  };
  while (running_.load()) {
    StatusOr<std::string> body = ReadFrameBody(fd, options_.max_frame_bytes);
    if (!body.ok()) {
      // kNotFound marks a clean close between frames; anything else is a
      // framing violation (oversized length, truncated body) after which
      // the stream cannot be re-synchronized — report and hang up.
      if (body.status().code() != StatusCode::kNotFound) {
        GetCounter("serve.bad_frame")->Increment();
        ServeResponse error{0, ResponseCode::kError, body.status().message()};
        WriteAll(fd, EncodeResponseFrame(error));
      }
      return;
    }
    StatusOr<ServeRequest> request = DecodeRequestBody(*body);
    ServeResponse response;
    if (!request.ok()) {
      // The framing was intact, so the stream is still synchronized:
      // reject this request and keep the connection.
      GetCounter("serve.bad_request")->Increment();
      response = {0, ResponseCode::kError, request.status().message()};
      CountResponse(response.code);
      log_shed(nullptr, response);
    } else if (options_.max_inflight > 0 &&
               inflight_.fetch_add(1, std::memory_order_relaxed) + 1 >
                   options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      response = {request->id, ResponseCode::kBusy, "server saturated"};
      CountResponse(response.code);
      log_shed(&*request, response);
    } else {
      if (options_.max_inflight > 0) InflightGauge()->Add(1);
      response = HandleRequest(*request, conn_id);
      if (options_.max_inflight > 0) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        InflightGauge()->Add(-1);
      }
    }
    if (!WriteAll(fd, EncodeResponseFrame(response)).ok()) return;
  }
}

void Server::ServeHttp(int fd, const char preamble[4]) {
  // The first 4 bytes ("GET ") are already consumed; read the rest of
  // the request head, bounded so a hostile client cannot grow the buffer.
  std::string head(preamble, 4);
  char chunk[512];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    head.append(chunk, static_cast<size_t>(r));
  }
  const size_t path_start = 4;
  const size_t path_end = head.find(' ', path_start);
  const std::string path = path_end == std::string::npos
                               ? std::string()
                               : head.substr(path_start, path_end - path_start);
  GetCounter("serve.http_requests")->Increment();
  std::string response;
  if (path == "/healthz") {
    response = HttpResponse("200 OK", HealthzBody());
  } else if (path == "/metrics") {
    response = HttpResponse("200 OK",
                            MetricsRegistry::Global()->ToPrometheusText());
  } else if (path == "/statusz") {
    response = HttpResponse("200 OK", StatuszJson(), "application/json");
  } else if (path == "/requestz") {
    response = HttpResponse("200 OK", access_log_.ToJson(),
                            "application/json");
  } else {
    response = HttpResponse("404 Not Found", "not found\n");
  }
  WriteAll(fd, response);
}

StatusOr<std::shared_ptr<const CompiledSchema>> Server::ResolveSchema(
    const std::string& ref) {
  if (ref.empty()) return InvalidArgumentError("empty schema ref");
  if (ref[0] == '@') {
    std::shared_ptr<const CompiledSchema> schema = registry_.Lookup(
        ref.substr(1));
    if (schema == nullptr) {
      return NotFoundError("unknown schema '" + ref + "'");
    }
    return schema;
  }
  return registry_.GetOrCompileText(ref, cache());
}

ServeResponse Server::HandleRequest(const ServeRequest& request,
                                    uint64_t conn_id) {
  static Counter* const requests = GetCounter("serve.requests");
  static Histogram* const latency = GetHistogram("serve.request_ms");
  static RollingHistogram* const rolling_latency =
      GetRollingHistogram("serve.rolling.request_us");
  requests->Increment();
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  ScopedTimer timer(latency);
  // Under a slow-request threshold every request runs inside the thread's
  // reusable RequestCapture; fast requests Abort() it allocation-free and
  // only the slow ones pay to keep their span tree.
  RequestCapture* capture = nullptr;
  if (access_log_.capture_slow()) {
    capture = ThreadRequestCapture();
    capture->Begin();
  }
  ScopedSpan span("serve.request");
  span.AddArg("op", static_cast<int64_t>(request.op));

  std::unique_ptr<Budget> budget;
  if (options_.request_budget_ms > 0 || options_.request_max_states > 0 ||
      options_.request_max_sets > 0) {
    budget = std::make_unique<Budget>();
    if (options_.request_budget_ms > 0) {
      budget->set_deadline_ms(options_.request_budget_ms);
    }
    if (options_.request_max_states > 0) {
      budget->set_max_states(options_.request_max_states);
    }
    if (options_.request_max_sets > 0) {
      budget->set_max_sets(options_.request_max_sets);
    }
  }

  ServeResponse response;
  response.id = request.id;
  response.code = ResponseCode::kError;

  switch (request.op) {
    case Opcode::kPing: {
      response.code = ResponseCode::kOk;
      response.body = request.payload;
      break;
    }
    case Opcode::kReload: {
      if (options_.schema_dir.empty()) {
        response.body = "server has no schema directory to reload";
        break;
      }
      StatusOr<SchemaMap> schemas =
          LoadSchemaDir(options_.schema_dir, cache());
      if (!schemas.ok()) {
        response.code = CodeForStatus(schemas.status());
        response.body = schemas.status().message();
        break;
      }
      const size_t count = schemas->size();
      const int64_t version = registry_.Swap(std::move(*schemas));
      response.code = ResponseCode::kOk;
      response.body = "snapshot version " + std::to_string(version) + ": " +
                      std::to_string(count) + " schemas";
      break;
    }
    case Opcode::kValidate: {
      StatusOr<std::shared_ptr<const CompiledSchema>> schema =
          ResolveSchema(request.schema_ref);
      if (!schema.ok()) {
        response.code = CodeForStatus(schema.status());
        response.body = schema.status().message();
        break;
      }
      DocumentVerdict verdict =
          ValidateDocument(**schema, request.payload, budget.get());
      switch (verdict.kind) {
        case DocumentVerdict::Kind::kValid:
          response.code = ResponseCode::kOk;
          break;
        case DocumentVerdict::Kind::kInvalid:
          response.code = ResponseCode::kInvalid;
          response.body = verdict.message;
          break;
        case DocumentVerdict::Kind::kError:
          response.code = verdict.error_code == StatusCode::kResourceExhausted
                              ? ResponseCode::kExhausted
                              : ResponseCode::kError;
          response.body = verdict.message;
          break;
      }
      break;
    }
    case Opcode::kIncluded: {
      StatusOr<std::shared_ptr<const CompiledSchema>> s1 =
          ResolveSchema(request.schema_ref);
      if (!s1.ok()) {
        response.code = CodeForStatus(s1.status());
        response.body = s1.status().message();
        break;
      }
      StatusOr<std::shared_ptr<const CompiledSchema>> s2 =
          ResolveSchema(request.payload);
      if (!s2.ok()) {
        response.code = CodeForStatus(s2.status());
        response.body = s2.status().message();
        break;
      }
      if (!(*s2)->single_type) {
        response.body =
            "the second schema must be single-type for the PTIME test";
        break;
      }
      StatusOr<bool> included = IncludedInSingleType(
          (*s1)->edtd, (*s2)->edtd, nullptr, budget.get());
      if (!included.ok()) {
        response.code = CodeForStatus(included.status());
        response.body = included.status().message();
        break;
      }
      response.code = ResponseCode::kOk;
      response.body = *included ? "INCLUDED" : "NOT INCLUDED";
      break;
    }
    case Opcode::kApprox: {
      StatusOr<std::shared_ptr<const CompiledSchema>> schema =
          ResolveSchema(request.schema_ref);
      if (!schema.ok()) {
        response.code = CodeForStatus(schema.status());
        response.body = schema.status().message();
        break;
      }
      StatusOr<DfaXsd> xsd =
          MinimalUpperApproximation((*schema)->edtd, budget.get());
      if (!xsd.ok()) {
        response.code = CodeForStatus(xsd.status());
        response.body = xsd.status().message();
        break;
      }
      response.code = ResponseCode::kOk;
      response.body = SchemaToText(StEdtdFromDfaXsd(MinimizeXsd(*xsd)));
      break;
    }
  }
  CountResponse(response.code);
  span.End();  // close the span tree before detaching the capture

  const int64_t latency_us = std::llround(timer.ElapsedUs());
  rolling_latency->Record(static_cast<double>(latency_us));

  AccessRecord record;
  record.ts_us = WallNowUs();
  record.request_id = request_id;
  record.client_request_id = request.id;
  record.conn_id = conn_id;
  record.op = OpcodeName(request.op);
  record.schema_ref = TruncateForLog(request.schema_ref);
  record.code = ResponseCodeName(response.code);
  record.latency_us = latency_us;
  record.budget_states = budget != nullptr ? budget->states_charged() : 0;
  record.snapshot_epoch = registry_.Current()->version;
  if (capture != nullptr) {
    if (access_log_.IsSlow(latency_us)) {
      const bool truncated = capture->truncated();
      access_log_.LogSlow(record, capture->Detach(), truncated);
    } else {
      capture->Abort();
      access_log_.Log(record);
    }
  } else {
    access_log_.Log(record);
  }
  return response;
}

std::string Server::StatuszJson() const {
  static RollingHistogram* const rolling_latency =
      GetRollingHistogram("serve.rolling.request_us");
  const std::shared_ptr<const SchemaSnapshot> snapshot = registry_.Current();
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const Histogram::Snapshot window = rolling_latency->snapshot();
  const double window_s =
      static_cast<double>(rolling_latency->window_us()) / 1e6;
  std::ostringstream os;
  os.precision(15);
  os << "{\n  \"service\": \"stap-serve\",\n"
     << "  \"build\": \"" << JsonEscape(__VERSION__) << "\",\n"
     << "  \"uptime_s\": " << uptime_s << ",\n"
     << "  \"snapshot_epoch\": " << snapshot->version << ",\n"
     << "  \"schema_count\": " << snapshot->schemas.size() << ",\n"
     << "  \"inline_schemas\": " << registry_.num_inline() << ",\n"
     << "  \"active_connections\": "
     << active_connections_.load(std::memory_order_relaxed) << ",\n"
     << "  \"inflight\": " << inflight_.load(std::memory_order_relaxed)
     << ",\n"
     << "  \"max_connections\": " << options_.max_connections << ",\n"
     << "  \"max_inflight\": " << options_.max_inflight << ",\n"
     << "  \"total_connections\": "
     << GetCounter("serve.connections")->value() << ",\n"
     << "  \"total_requests\": " << GetCounter("serve.requests")->value()
     << ",\n"
     << "  \"window_s\": " << window_s << ",\n"
     << "  \"window_requests\": " << window.count << ",\n"
     << "  \"window_qps\": "
     << (window_s > 0 ? static_cast<double>(window.count) / window_s : 0)
     << ",\n"
     << "  \"p50_us\": " << SnapshotQuantile(window, 0.5) << ",\n"
     << "  \"p95_us\": " << SnapshotQuantile(window, 0.95) << ",\n"
     << "  \"p99_us\": " << SnapshotQuantile(window, 0.99) << ",\n"
     << "  \"max_us\": " << window.max << ",\n"
     << "  \"mean_us\": "
     << (window.count > 0 ? window.sum / static_cast<double>(window.count)
                          : 0)
     << ",\n";
  for (const char* code :
       {"ok", "invalid", "error", "busy", "exhausted", "not_found"}) {
    os << "  \"window_" << code << "\": "
       << GetRollingCounter(std::string("serve.rolling.") + code)->value()
       << ",\n";
  }
  os << "  \"slow_request_ms\": " << options_.slow_request_ms << ",\n"
     << "  \"slow_captured\": "
     << GetCounter("access_log.slow_captured")->value() << ",\n"
     << "  \"access_log_lines\": "
     << GetCounter("access_log.lines_written")->value() << ",\n"
     << "  \"access_log_dropped\": "
     << GetCounter("access_log.dropped")->value() << "\n}\n";
  return os.str();
}

// Machine-readable readiness: the first line stays exactly "ok" (PR 6-era
// scrapers and the CI smoke grep depend on it); detail lines follow in
// key=value form.
std::string Server::HealthzBody() const {
  const std::shared_ptr<const SchemaSnapshot> snapshot = registry_.Current();
  const int64_t uptime_s =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count();
  std::string body = "ok\n";
  body += "epoch=" + std::to_string(snapshot->version) + "\n";
  body += "schemas=" + std::to_string(snapshot->schemas.size()) + "\n";
  body += "uptime_s=" + std::to_string(uptime_s) + "\n";
  return body;
}

}  // namespace stap
