#include "stap/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace stap {

Status ServeClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return InternalError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return InvalidArgumentError("cannot parse address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = InternalError("cannot connect to " + host + ":" +
                                  std::to_string(port) + ": " +
                                  std::strerror(errno));
    Close();
    return status;
  }
  int nodelay = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  Status preamble = WriteAll(fd_, std::string_view(kServePreamble, 4));
  if (!preamble.ok()) Close();
  return preamble;
}

Status ServeClient::Send(const ServeRequest& request) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  return WriteAll(fd_, EncodeRequestFrame(request));
}

StatusOr<ServeResponse> ServeClient::Receive() {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  StatusOr<std::string> body = ReadFrameBody(fd_, max_frame_bytes_);
  if (!body.ok()) return body.status();
  return DecodeResponseBody(*body);
}

StatusOr<ServeResponse> ServeClient::Call(const ServeRequest& request) {
  STAP_RETURN_IF_ERROR(Send(request));
  StatusOr<ServeResponse> response = Receive();
  if (!response.ok()) return response;
  if (response->id != request.id && response->id != 0) {
    return InternalError("response id " + std::to_string(response->id) +
                         " does not match request id " +
                         std::to_string(request.id));
  }
  return response;
}

Status ServeClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  return WriteAll(fd_, bytes);
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace stap
