#include "stap/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace stap {

Status ServeClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return InternalError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return InvalidArgumentError("cannot parse address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = InternalError("cannot connect to " + host + ":" +
                                  std::to_string(port) + ": " +
                                  std::strerror(errno));
    Close();
    return status;
  }
  int nodelay = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  Status preamble = WriteAll(fd_, std::string_view(kServePreamble, 4));
  if (!preamble.ok()) Close();
  return preamble;
}

Status ServeClient::Send(const ServeRequest& request) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  return WriteAll(fd_, EncodeRequestFrame(request));
}

StatusOr<ServeResponse> ServeClient::Receive() {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  StatusOr<std::string> body = ReadFrameBody(fd_, max_frame_bytes_);
  if (!body.ok()) return body.status();
  return DecodeResponseBody(*body);
}

StatusOr<ServeResponse> ServeClient::Call(const ServeRequest& request) {
  STAP_RETURN_IF_ERROR(Send(request));
  StatusOr<ServeResponse> response = Receive();
  if (!response.ok()) return response;
  if (response->id != request.id && response->id != 0) {
    return InternalError("response id " + std::to_string(response->id) +
                         " does not match request id " +
                         std::to_string(request.id));
  }
  return response;
}

Status ServeClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  return WriteAll(fd_, bytes);
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::string> HttpGetBody(const std::string& host, int port,
                                  const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("cannot parse address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = InternalError("cannot connect to " + host + ":" +
                                  std::to_string(port) + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  Status written = WriteAll(fd, request);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    response.append(chunk, static_cast<size_t>(r));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return InternalError("malformed HTTP response for " + path);
  }
  return response.substr(header_end + 4);
}

}  // namespace stap
