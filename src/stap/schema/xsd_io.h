// W3C XML Schema (XSD) import and export for the supported subset.
//
// The paper abstracts XSDs as single-type EDTDs; this module connects the
// abstraction to actual `.xsd` documents so that approximation results
// can round-trip into tooling. Supported subset:
//
//   <xs:schema>
//     <xs:element name="..." type="T"/>          (global = start symbols)
//     <xs:complexType name="T"> particle </xs:complexType>
//   </xs:schema>
//
//   particle ::= <xs:sequence occurs> particle* </xs:sequence>
//              | <xs:choice occurs> particle* </xs:choice>
//              | <xs:element name="..." type="T" occurs/>
//   occurs   ::= minOccurs="<integer>" maxOccurs="<integer>|unbounded"
//
// Occurrence bounds are arbitrary decimal integers (overflow-checked
// against Regex::kMaxRepeatBound); they import as counted repetition
// r{n,m} and are preserved — not expanded — on export. minOccurs >
// maxOccurs is rejected; maxOccurs="0" drops the particle (its content
// contributes ε), unless an explicit minOccurs > 0 contradicts it.
//
// The `xs:` prefix is not hard-coded: the importer resolves, from the
// root's xmlns declarations, every prefix bound to
// http://www.w3.org/2001/XMLSchema (including the default namespace) and
// matches local names under any of them. A root prefix with no xmlns
// declaration at all is accepted by convention, so bare <schema> and
// <xs:schema> documents without namespace boilerplate keep working.
//
// No attributes-on-content, simple types, groups, any-wildcards, or
// substitution groups. Exported documents always stay within the subset,
// so export→import round-trips.
//
// NOTE: exported content models come from state elimination and need not
// satisfy UPA (Section 5 explains why a best deterministic expression may
// not exist); ExportXsd flags non-one-unambiguous content models with an
// <xs:annotation> comment.
#ifndef STAP_SCHEMA_XSD_IO_H_
#define STAP_SCHEMA_XSD_IO_H_

#include <string>
#include <string_view>

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/single_type.h"

namespace stap {

struct XsdExportOptions {
  // Replace content models whose language is not one-unambiguous by their
  // deterministic-RE *upper approximation* (regex/dre_approx.h) — the
  // paper's conclusion composes Section 3's approximations with exactly
  // such a translation to obtain W3C-conformant output. Repaired models
  // are flagged with stap-upa="approximated"; without repair they are
  // flagged stap-upa="unsatisfiable" and emitted as-is.
  bool repair_upa = false;
};

// Renders the schema as a W3C-style XSD document. When the schema carries
// content_source provenance with counted repetition, those models are
// emitted with numeric minOccurs/maxOccurs instead of the expanded
// state-eliminated expression.
std::string ExportXsd(const DfaXsd& xsd, const XsdExportOptions& options = {});

// Parses the supported XSD subset into an EDTD (one type per global
// element / complexType pairing). The result is single-type whenever the
// source satisfies EDC; it is returned unreduced, with content_source
// provenance for each type. Content-model compilation (counted-repetition
// expansion, determinize, minimize) charges `budget` when non-null and
// fails with kResourceExhausted when a quota trips.
StatusOr<Edtd> ImportXsd(std::string_view xml, Budget* budget);
StatusOr<Edtd> ImportXsd(std::string_view xml);

}  // namespace stap

#endif  // STAP_SCHEMA_XSD_IO_H_
