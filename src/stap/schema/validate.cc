#include "stap/schema/validate.h"

#include <algorithm>
#include <cstdint>
#include <sstream>

namespace stap {

namespace {

// Diagnostics on wide elements stay bounded: child strings longer than
// this are truncated with an ellipsis and a count of the omitted tail.
constexpr size_t kMaxFormattedSymbols = 32;

std::string FormatWord(const Word& word, const Alphabet& alphabet) {
  std::ostringstream os;
  os << "[";
  const size_t shown = std::min(word.size(), kMaxFormattedSymbols);
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) os << " ";
    os << alphabet.Name(word[i]);
  }
  if (word.size() > shown) {
    // State the full length explicitly: a bare ellipsis is too easy to
    // overlook, and a truncated witness that reads as complete sends
    // people debugging the wrong child string.
    os << " ... (+" << word.size() - shown << " more; " << word.size()
       << " symbols total)";
  }
  os << "]";
  return os.str();
}

}  // namespace

ValidationResult ValidateWithDiagnostics(const DfaXsd& xsd, const Tree& tree) {
  ValidationResult result;
  // Sign first, then magnitudes in an unsigned domain (correct whatever
  // integer type size() returns; see streaming.cc for the rationale).
  if (tree.label < 0 ||
      static_cast<uint64_t>(tree.label) >=
          static_cast<uint64_t>(xsd.sigma.size()) ||
      !StateSetContains(xsd.start_symbols, tree.label)) {
    result.ok = false;
    result.message = "root element is not an allowed start symbol";
    return result;
  }
  int state = xsd.automaton.Next(xsd.automaton.initial(), tree.label);
  if (state == kNoState) {
    result.ok = false;
    result.message = "root element has no declaration";
    return result;
  }

  // Explicit-stack pre-order walk: documents are only bounded by memory,
  // so recursion over the tree (depth up to millions of nodes on
  // path-shaped documents) is not an option.
  struct Frame {
    const Tree* node;
    int state;
    size_t next_child;
  };
  std::vector<Frame> stack;
  TreePath path;  // path of stack.back(); empty for the root frame

  auto content_ok = [&](const Tree& node, int node_state) {
    Word child_string;
    child_string.reserve(node.children.size());
    for (const Tree& child : node.children) {
      child_string.push_back(child.label);
    }
    if (xsd.content[node_state].Accepts(child_string)) return true;
    result.ok = false;
    result.violation_path = path;
    result.message = "child string " + FormatWord(child_string, xsd.sigma) +
                     " of element <" + xsd.sigma.Name(node.label) +
                     "> does not match its content model";
    return false;
  };

  if (!content_ok(tree, state)) return result;
  stack.push_back(Frame{&tree, state, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Tree& node = *frame.node;
    if (frame.next_child == node.children.size()) {
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const size_t i = frame.next_child++;
    const Tree& child = node.children[i];
    path.push_back(static_cast<int>(i));
    int child_state = xsd.automaton.Next(frame.state, child.label);
    if (child_state == kNoState) {
      result.ok = false;
      result.violation_path = path;
      result.message = "element <" + xsd.sigma.Name(child.label) +
                       "> is not declared in this context";
      return result;
    }
    if (!content_ok(child, child_state)) return result;
    stack.push_back(Frame{&child, child_state, 0});
  }
  return result;
}

}  // namespace stap
