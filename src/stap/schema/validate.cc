#include "stap/schema/validate.h"

#include <sstream>

namespace stap {

namespace {

std::string FormatWord(const Word& word, const Alphabet& alphabet) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < word.size(); ++i) {
    if (i > 0) os << " ";
    os << alphabet.Name(word[i]);
  }
  os << "]";
  return os.str();
}

bool ValidateAt(const DfaXsd& xsd, const Tree& node, int state, TreePath* path,
                ValidationResult* result) {
  Word child_string;
  child_string.reserve(node.children.size());
  for (const Tree& child : node.children) child_string.push_back(child.label);
  if (!xsd.content[state].Accepts(child_string)) {
    result->ok = false;
    result->violation_path = *path;
    result->message = "child string " + FormatWord(child_string, xsd.sigma) +
                      " of element <" + xsd.sigma.Name(node.label) +
                      "> does not match its content model";
    return false;
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const Tree& child = node.children[i];
    int child_state = xsd.automaton.Next(state, child.label);
    if (child_state == kNoState) {
      result->ok = false;
      path->push_back(static_cast<int>(i));
      result->violation_path = *path;
      path->pop_back();
      result->message = "element <" + xsd.sigma.Name(child.label) +
                        "> is not declared in this context";
      return false;
    }
    path->push_back(static_cast<int>(i));
    bool ok = ValidateAt(xsd, child, child_state, path, result);
    path->pop_back();
    if (!ok) return false;
  }
  return true;
}

}  // namespace

ValidationResult ValidateWithDiagnostics(const DfaXsd& xsd, const Tree& tree) {
  ValidationResult result;
  if (tree.label < 0 || tree.label >= xsd.sigma.size() ||
      !StateSetContains(xsd.start_symbols, tree.label)) {
    result.ok = false;
    result.message = "root element is not an allowed start symbol";
    return result;
  }
  int state = xsd.automaton.Next(0, tree.label);
  if (state == kNoState) {
    result.ok = false;
    result.message = "root element has no declaration";
    return result;
  }
  TreePath path;
  ValidateAt(xsd, tree, state, &path, &result);
  return result;
}

}  // namespace stap
