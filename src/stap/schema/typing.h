// Type assignments (typings) of documents.
//
// A tree satisfies an EDTD when *some* typing exists (Definition 2.2);
// this module materializes typings: the unique one for single-type
// schemas (where the ancestor string determines the type — the essence of
// EDC), and the count/one-witness interface for general EDTDs, whose
// typings can be ambiguous.
#ifndef STAP_SCHEMA_TYPING_H_
#define STAP_SCHEMA_TYPING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"

namespace stap {

// A typing maps each node (in the breadth-first order of Tree::AllPaths)
// to a type id.
struct Typing {
  std::vector<TreePath> paths;
  std::vector<int> types;  // parallel to paths

  std::string ToString(const Edtd& schema, const Tree& tree) const;
};

// The unique typing of `tree` under the single-type schema, or nullopt if
// the document is invalid. One top-down pass.
std::optional<Typing> AssignTypes(const DfaXsd& xsd, const Tree& tree);

// Some typing of `tree` under an arbitrary EDTD, or nullopt. Bottom-up
// possible-type computation plus one top-down choice pass.
std::optional<Typing> AssignTypesEdtd(const Edtd& edtd, const Tree& tree);

// The number of distinct typings of `tree` under `edtd` (its *typing
// ambiguity*); single-type schemas always report 0 or 1. Saturates at
// `cap`.
int64_t CountTypings(const Edtd& edtd, const Tree& tree,
                     int64_t cap = int64_t{1} << 40);

}  // namespace stap

#endif  // STAP_SCHEMA_TYPING_H_
