#include "stap/schema/type_automaton.h"

namespace stap {

std::vector<int> TypeAutomaton::TypesAfter(const Word& word) const {
  StateSet states = nfa.Run(word);
  std::vector<int> types;
  types.reserve(states.size());
  for (int q : states) {
    if (q != kInit) types.push_back(TypeOfState(q));
  }
  return types;
}

bool TypeAutomaton::IsDeterministic() const {
  for (int q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.num_symbols(); ++a) {
      if (nfa.Next(q, a).size() > 1) return false;
    }
  }
  return true;
}

TypeAutomaton BuildTypeAutomaton(const Edtd& edtd) {
  TypeAutomaton result{Nfa(edtd.num_types() + 1, edtd.num_symbols()), {}};
  result.nfa.AddInitial(TypeAutomaton::kInit);
  result.state_label.assign(edtd.num_types() + 1, kNoSymbol);

  for (int tau : edtd.start_types) {
    result.nfa.AddTransition(TypeAutomaton::kInit, edtd.mu[tau],
                             TypeAutomaton::StateOfType(tau));
  }
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    result.state_label[TypeAutomaton::StateOfType(tau)] = edtd.mu[tau];
    for (int occ : edtd.OccurringTypes(tau)) {
      result.nfa.AddTransition(TypeAutomaton::StateOfType(tau), edtd.mu[occ],
                               TypeAutomaton::StateOfType(occ));
    }
  }
  return result;
}

bool IsSingleType(const Edtd& edtd) {
  return BuildTypeAutomaton(edtd).IsDeterministic();
}

}  // namespace stap
