// EDTD reduction (paper, Proviso 2.3).
//
// An EDTD is reduced when every type is used by some accepted tree, i.e.
// every type is reachable from a start type and productive (derives at
// least one finite tree). All approximation algorithms assume reduced
// inputs; ReduceEdtd establishes the property in polynomial time without
// changing the language.
#ifndef STAP_SCHEMA_REDUCE_H_
#define STAP_SCHEMA_REDUCE_H_

#include "stap/schema/edtd.h"

namespace stap {

// Returns an equivalent reduced EDTD: useless types removed, type ids
// renumbered densely, content DFAs restricted to surviving types, trimmed,
// and minimized. An EDTD for the empty language comes back with zero types.
Edtd ReduceEdtd(const Edtd& edtd);

// True if every type is reachable and productive (and content DFAs carry
// no transition on a useless type).
bool IsReduced(const Edtd& edtd);

}  // namespace stap

#endif  // STAP_SCHEMA_REDUCE_H_
