// DFA-based XSDs (paper, Definition 2.8) and the linear-time conversions
// to and from single-type EDTDs (Proposition 2.9).
//
// A DfaXsd is a state-labeled DFA over Σ (state 0 = q_init, no finals)
// plus, for every non-initial state, a content language over Σ, plus the
// allowed root symbols. It admits one-pass top-down validation, which is
// what the EDC constraint buys in XML Schema.
#ifndef STAP_SCHEMA_SINGLE_TYPE_H_
#define STAP_SCHEMA_SINGLE_TYPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stap/automata/alphabet.h"
#include "stap/automata/dfa.h"
#include "stap/regex/ast.h"
#include "stap/schema/edtd.h"
#include "stap/tree/tree.h"

namespace stap {

struct DfaXsd {
  Alphabet sigma;
  std::vector<int> start_symbols;  // sorted set S_d ⊆ Σ

  // State-labeled DFA over Σ; state 0 is q_init. Finality is unused.
  Dfa automaton{1, 0};
  std::vector<int> state_label;  // kNoSymbol for q_init

  std::vector<Dfa> content;  // per state, over Σ; content[0] is unused

  // Optional per-state content provenance (over Σ), mirroring
  // Edtd::content_source: empty or sized num_states(), entry-wise
  // nullable, and non-null entries denote the same language as the
  // corresponding content DFA. Preserves counted repetition across
  // compile → export round trips.
  std::vector<RegexPtr> content_source;

  // Number of types (non-initial states) — the paper's type-size measure.
  int type_size() const { return automaton.num_states() - 1; }

  int64_t Size() const;

  // One-pass top-down validation (the EDC payoff): a single root-to-leaf
  // sweep tracking one automaton state per node.
  bool Accepts(const Tree& tree) const;

  void CheckWellFormed() const;

  std::string ToString() const;
};

// Prop. 2.9 conversions. DfaXsdFromStEdtd requires IsSingleType(edtd)
// (checked); both translations are linear up to content-DFA cleanup.
DfaXsd DfaXsdFromStEdtd(const Edtd& edtd);
Edtd StEdtdFromDfaXsd(const DfaXsd& xsd);

}  // namespace stap

#endif  // STAP_SCHEMA_SINGLE_TYPE_H_
