// Counting accepted documents.
//
// Upper approximations buy closure at the price of extra documents; this
// module quantifies the price: the number of documents a schema accepts
// within depth/width bounds, computed by dynamic programming over the
// XSD states and content DFAs (no enumeration). Examples and experiments
// use the ratio count(approx)/count(exact) as an "approximation
// overhead" metric.
#ifndef STAP_SCHEMA_COUNT_H_
#define STAP_SCHEMA_COUNT_H_

#include "stap/schema/single_type.h"

namespace stap {

// Number of distinct documents in L(xsd) with depth <= max_depth and at
// most max_width children per node. Returned as double (counts grow
// doubly exponentially); +inf on overflow.
double CountDocuments(const DfaXsd& xsd, int max_depth, int max_width);

}  // namespace stap

#endif  // STAP_SCHEMA_COUNT_H_
