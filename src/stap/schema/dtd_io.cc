#include "stap/schema/dtd_io.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "stap/regex/ast.h"
#include "stap/regex/from_dfa.h"
#include "stap/regex/glushkov.h"

namespace stap {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

// Parses DTD content particles: `(a, (b | c)*, d?)`, names, EMPTY, ANY.
// Names are *deferred*: symbols ids are interned on sight, and the
// expressions compiled once the alphabet is complete.
class DtdParser {
 public:
  explicit DtdParser(std::string_view input) : input_(input) {}

  StatusOr<Dtd> Parse(std::string_view root) {
    std::vector<std::pair<int, RegexPtr>> rules;  // symbol -> expression
    std::vector<bool> any_content;                // parallel: ANY rules
    while (true) {
      SkipMisc();
      if (pos_ >= input_.size()) break;
      if (!Consume("<!ELEMENT")) {
        return Error("expected <!ELEMENT declaration");
      }
      SkipSpace();
      StatusOr<std::string> name = ParseName();
      if (!name.ok()) return name.status();
      int symbol = alphabet_.Intern(*name);
      SkipSpace();
      bool is_any = false;
      StatusOr<RegexPtr> content = ParseContent(&is_any);
      if (!content.ok()) return content.status();
      SkipSpace();
      if (!Consume(">")) return Error("expected '>' closing the declaration");
      rules.emplace_back(symbol, *content);
      any_content.push_back(is_any);
      if (first_symbol_ < 0) first_symbol_ = symbol;
    }
    if (rules.empty()) return Error("no element declarations found");

    Dtd dtd = Dtd::LeafOnly(alphabet_);
    std::vector<bool> declared(alphabet_.size(), false);
    for (size_t i = 0; i < rules.size(); ++i) {
      auto [symbol, regex] = rules[i];
      if (declared[symbol]) {
        return InvalidArgumentError("duplicate declaration of '" +
                                    alphabet_.Name(symbol) + "'");
      }
      declared[symbol] = true;
      if (any_content[i]) {
        dtd.content[symbol] = Dfa::AllWords(alphabet_.size());
      } else {
        dtd.content[symbol] = RegexToDfa(*regex, alphabet_.size());
      }
    }
    for (int a = 0; a < alphabet_.size(); ++a) {
      if (!declared[a]) {
        return InvalidArgumentError("element '" + alphabet_.Name(a) +
                                    "' is referenced but never declared");
      }
    }
    int start = root.empty() ? first_symbol_ : alphabet_.Find(root);
    if (start == kNoSymbol) {
      return InvalidArgumentError("unknown root element '" +
                                  std::string(root) + "'");
    }
    dtd.start_symbols = {start};
    return dtd;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("DTD parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  void SkipMisc() {
    while (true) {
      SkipSpace();
      if (input_.substr(pos_, 4) == "<!--") {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  StatusOr<std::string> ParseName() {
    if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
      return Error("expected element name");
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<RegexPtr> ParseContent(bool* is_any) {
    *is_any = false;
    if (Consume("EMPTY")) return Regex::Epsilon();
    if (Consume("ANY")) {
      *is_any = true;
      return Regex::Epsilon();  // placeholder; replaced by AllWords
    }
    if (input_.substr(pos_, 1) != "(") {
      return Error("expected EMPTY, ANY, or '('");
    }
    return ParseGroup();
  }

  // group := '(' particle (sep particle)* ')' suffix*, sep consistent.
  StatusOr<RegexPtr> ParseGroup() {
    if (!Consume("(")) return Error("expected '('");
    SkipSpace();
    if (input_.substr(pos_, 7) == "#PCDATA") {
      return Error("#PCDATA / mixed content is outside the tree model");
    }
    std::vector<RegexPtr> parts;
    char separator = '\0';
    while (true) {
      StatusOr<RegexPtr> part = ParseParticle();
      if (!part.ok()) return part;
      parts.push_back(*part);
      SkipSpace();
      if (Consume(")")) break;
      char c = pos_ < input_.size() ? input_[pos_] : '\0';
      if (c != ',' && c != '|') {
        return Error("expected ',', '|', or ')' in content group");
      }
      if (separator != '\0' && c != separator) {
        return Error("mixed ',' and '|' in one group; parenthesize");
      }
      separator = c;
      ++pos_;
      SkipSpace();
    }
    RegexPtr group = separator == '|' ? Regex::Union(std::move(parts))
                                      : Regex::Concat(std::move(parts));
    return ApplySuffix(std::move(group));
  }

  StatusOr<RegexPtr> ParseParticle() {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == '(') return ParseGroup();
    StatusOr<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    return ApplySuffix(Regex::Symbol(alphabet_.Intern(*name)));
  }

  RegexPtr ApplySuffix(RegexPtr regex) {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '*') {
        regex = Regex::Star(std::move(regex));
      } else if (c == '+') {
        regex = Regex::Plus(std::move(regex));
      } else if (c == '?') {
        regex = Regex::Optional(std::move(regex));
      } else {
        break;
      }
      ++pos_;
    }
    return regex;
  }

  std::string_view input_;
  size_t pos_ = 0;
  Alphabet alphabet_;
  int first_symbol_ = -1;
};

}  // namespace

StatusOr<Dtd> ParseDtd(std::string_view input, std::string_view root) {
  return DtdParser(input).Parse(root);
}

namespace {

// DTD has no ε particle; rewrite the expression so ε only appears as the
// whole content (EMPTY) — ε-in-union becomes `?`, ε-in-concat drops out.
// Returns nullptr to denote ε.
RegexPtr NormalizeForDtd(const Regex& regex) {
  switch (regex.kind()) {
    case RegexKind::kEpsilon:
    case RegexKind::kEmptySet:  // only for unreduced inputs; degrades to EMPTY
      return nullptr;
    case RegexKind::kSymbol:
      return Regex::Symbol(regex.symbol());
    case RegexKind::kConcat: {
      std::vector<RegexPtr> parts;
      for (const RegexPtr& child : regex.children()) {
        RegexPtr part = NormalizeForDtd(*child);
        if (part != nullptr) parts.push_back(std::move(part));
      }
      if (parts.empty()) return nullptr;
      return Regex::Concat(std::move(parts));
    }
    case RegexKind::kUnion: {
      std::vector<RegexPtr> parts;
      bool nullable = false;
      for (const RegexPtr& child : regex.children()) {
        RegexPtr part = NormalizeForDtd(*child);
        if (part == nullptr) {
          nullable = true;
        } else {
          parts.push_back(std::move(part));
        }
      }
      if (parts.empty()) return nullptr;
      RegexPtr result = Regex::Union(std::move(parts));
      return nullable ? Regex::Optional(std::move(result)) : result;
    }
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional: {
      RegexPtr child = NormalizeForDtd(*regex.children()[0]);
      if (child == nullptr) return nullptr;
      if (regex.kind() == RegexKind::kStar) return Regex::Star(child);
      if (regex.kind() == RegexKind::kPlus) return Regex::Plus(child);
      return Regex::Optional(child);
    }
    case RegexKind::kRepeat: {
      // DTD content particles have no counted repetition; expand
      // r{n,m} = r^n·(r?)^{m-n} and r{n,} = r^{n-1}·r+.
      RegexPtr child = NormalizeForDtd(*regex.children()[0]);
      if (child == nullptr) return nullptr;
      const int min = regex.repeat_min();
      const bool unbounded = regex.repeat_max() == Regex::kUnboundedRepeat;
      const int copies = unbounded ? min : regex.repeat_max();
      std::vector<RegexPtr> parts;
      parts.reserve(copies);
      for (int i = 0; i < copies; ++i) {
        if (unbounded && i == copies - 1) {
          parts.push_back(Regex::Plus(child));
        } else if (i >= min) {
          parts.push_back(Regex::Optional(child));
        } else {
          parts.push_back(child);
        }
      }
      return Regex::Concat(std::move(parts));
    }
  }
  return nullptr;
}

void RenderParticle(const Regex& regex, const Alphabet& sigma,
                    std::ostringstream& os) {
  switch (regex.kind()) {
    case RegexKind::kSymbol:
      os << sigma.Name(regex.symbol());
      break;
    case RegexKind::kConcat:
    case RegexKind::kUnion: {
      const char* separator =
          regex.kind() == RegexKind::kConcat ? ", " : " | ";
      os << "(";
      for (size_t i = 0; i < regex.children().size(); ++i) {
        if (i > 0) os << separator;
        RenderParticle(*regex.children()[i], sigma, os);
      }
      os << ")";
      break;
    }
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional: {
      const Regex& child = *regex.children()[0];
      if (child.kind() == RegexKind::kSymbol) {
        os << "(";
        RenderParticle(child, sigma, os);
        os << ")";
      } else {
        RenderParticle(child, sigma, os);
      }
      os << (regex.kind() == RegexKind::kStar
                 ? "*"
                 : regex.kind() == RegexKind::kPlus ? "+" : "?");
      break;
    }
    default:
      break;  // ε and ∅ are normalized away before rendering
  }
}

}  // namespace

std::string DtdToString(const Dtd& dtd) {
  std::ostringstream os;
  for (int a = 0; a < dtd.num_symbols(); ++a) {
    os << "<!ELEMENT " << dtd.sigma.Name(a) << " ";
    RegexPtr normalized = NormalizeForDtd(*DfaToRegex(dtd.content[a]));
    if (normalized == nullptr) {
      os << "EMPTY";
    } else if (normalized->kind() == RegexKind::kSymbol ||
               normalized->kind() == RegexKind::kStar ||
               normalized->kind() == RegexKind::kPlus ||
               normalized->kind() == RegexKind::kOptional) {
      std::ostringstream body;
      RenderParticle(*normalized, dtd.sigma, body);
      os << "(" << body.str() << ")";
    } else {
      std::ostringstream body;
      RenderParticle(*normalized, dtd.sigma, body);
      os << body.str();
    }
    os << ">\n";
  }
  return os.str();
}

}  // namespace stap
