#include "stap/schema/text_format.h"

#include <sstream>
#include <vector>

#include "stap/base/compile_cache.h"
#include "stap/base/string_util.h"
#include "stap/regex/from_dfa.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"

namespace stap {

StatusOr<SchemaDeclarations> ParseSchemaDeclarations(std::string_view input) {
  SchemaDeclarations decls;
  std::vector<std::string> start_names;

  std::istringstream stream{std::string(input)};
  std::string raw_line;
  int line_number = 0;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto error = [&](const std::string& message) {
      return InvalidArgumentError("schema line " + std::to_string(line_number) +
                                  ": " + message);
    };
    if (StartsWith(line, "start")) {
      for (const std::string& name : SplitAndTrim(line.substr(5), ' ')) {
        start_names.push_back(name);
      }
      continue;
    }
    if (StartsWith(line, "type")) {
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return error("expected ':' in type rule");
      }
      size_t arrow = line.find("->", colon);
      if (arrow == std::string_view::npos) {
        return error("expected '->' in type rule");
      }
      std::string_view type_name = StripWhitespace(line.substr(4, colon - 4));
      std::string_view label =
          StripWhitespace(line.substr(colon + 1, arrow - colon - 1));
      std::string_view regex_text = StripWhitespace(line.substr(arrow + 2));
      if (type_name.empty()) return error("empty type name");
      if (label.empty()) return error("empty label");
      int type_id = decls.types.Intern(type_name);
      if (type_id < static_cast<int>(decls.mu.size())) {
        return error("duplicate type '" + std::string(type_name) + "'");
      }
      decls.mu.push_back(decls.sigma.Intern(label));
      decls.content_sources.emplace_back(regex_text);
      continue;
    }
    return error("expected 'start' or 'type' directive");
  }

  for (const std::string& name : start_names) {
    int type_id = decls.types.Find(name);
    if (type_id == kNoSymbol) {
      return InvalidArgumentError("unknown start type '" + name + "'");
    }
    StateSetInsert(decls.start_types, type_id);
  }
  return decls;
}

StatusOr<Edtd> ParseSchema(std::string_view input) {
  return ParseSchema(input, nullptr);
}

StatusOr<Edtd> ParseSchema(std::string_view input, CompileCache* cache) {
  return ParseSchema(input, cache, nullptr);
}

StatusOr<Edtd> ParseSchema(std::string_view input, CompileCache* cache,
                           Budget* budget) {
  StatusOr<SchemaDeclarations> decls = ParseSchemaDeclarations(input);
  if (!decls.ok()) return decls.status();

  Edtd edtd;
  edtd.sigma = decls->sigma;
  edtd.types = decls->types;
  edtd.mu = decls->mu;
  edtd.start_types = decls->start_types;
  // Content regexes may mention types declared later; compilation happens
  // after all declarations are in, with the final type count. With a
  // cache, each (source, type alphabet) pair compiles at most once per
  // process; the compiled minimal DFA is copied out of the shared entry.
  // A caller-supplied budget bypasses the cache: a quota-limited compile
  // must neither publish a partial result nor consume someone else's.
  for (const std::string& source : decls->content_sources) {
    StatusOr<RegexPtr> regex =
        ParseRegex(source, &edtd.types, /*intern_new_symbols=*/false);
    if (!regex.ok()) return regex.status();
    auto compile = [&]() -> StatusOr<Dfa> {
      return RegexToDfa(**regex, edtd.types.size(), budget);
    };
    if (cache == nullptr || budget != nullptr) {
      StatusOr<Dfa> dfa = compile();
      if (!dfa.ok()) return dfa.status();
      edtd.content.push_back(std::move(*dfa));
    } else {
      StatusOr<std::shared_ptr<const Dfa>> dfa =
          cache->GetOrCompile(MakeContentModelKey(source, edtd.types), compile);
      if (!dfa.ok()) return dfa.status();
      edtd.content.push_back(**dfa);
    }
    edtd.content_source.push_back(*regex);
  }
  edtd.CheckWellFormed();
  return edtd;
}

std::string SchemaToText(const Edtd& edtd) {
  std::ostringstream os;
  os << "start";
  for (int tau : edtd.start_types) os << " " << edtd.types.Name(tau);
  os << "\n";
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    // Prefer the retained source regex when it carries counted repetition:
    // DfaToRegex would render the expansion, losing the bounds. Elsewhere
    // the state-eliminated form stays the canonical rendering.
    RegexPtr regex;
    if (tau < static_cast<int>(edtd.content_source.size()) &&
        edtd.content_source[tau] != nullptr &&
        edtd.content_source[tau]->ContainsRepeat()) {
      regex = edtd.content_source[tau];
    } else {
      regex = DfaToRegex(edtd.content[tau]);
    }
    os << "type " << edtd.types.Name(tau) << " : "
       << edtd.sigma.Name(edtd.mu[tau]) << " -> "
       << regex->ToString(edtd.types) << "\n";
  }
  return os.str();
}

}  // namespace stap
