// Minimization of single-type schemas (paper's reference [20]).
//
// The minimal DFA-based XSD for a single-type language is unique: it is
// the quotient of the (reduced) type automaton under the coarsest
// equivalence that respects state labels, content languages, and
// successors. MinimizeXsd computes it in polynomial time; the paper uses
// this to deliver "optimal representations of optimal approximations".
#ifndef STAP_SCHEMA_MINIMIZE_H_
#define STAP_SCHEMA_MINIMIZE_H_

#include "stap/schema/single_type.h"

namespace stap {

// Returns the canonical minimal DfaXsd for L(xsd): reduced, merged,
// content DFAs minimized, states in BFS order. Structural equality of two
// minimized XSDs (XsdStructurallyEqual) decides language equivalence.
DfaXsd MinimizeXsd(const DfaXsd& xsd);

// Convenience: minimize a single-type EDTD (checked) through DfaXsd form.
Edtd MinimizeStEdtd(const Edtd& edtd);

// Field-by-field comparison (alphabets must match by name).
bool XsdStructurallyEqual(const DfaXsd& a, const DfaXsd& b);

}  // namespace stap

#endif  // STAP_SCHEMA_MINIMIZE_H_
