// Minimization of single-type schemas (paper's reference [20]).
//
// The minimal DFA-based XSD for a single-type language is unique: it is
// the quotient of the (reduced) type automaton under the coarsest
// equivalence that respects state labels, content languages, and
// successors. MinimizeXsd computes it in polynomial time; the paper uses
// this to deliver "optimal representations of optimal approximations".
#ifndef STAP_SCHEMA_MINIMIZE_H_
#define STAP_SCHEMA_MINIMIZE_H_

#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/single_type.h"

namespace stap {

// Returns the canonical minimal DfaXsd for L(xsd): reduced, merged,
// content DFAs minimized, states in BFS order. Structural equality of two
// minimized XSDs (XsdStructurallyEqual) decides language equivalence.
DfaXsd MinimizeXsd(const DfaXsd& xsd);

// Budgeted variant: the content canonicalizations charge the state quota
// and every refinement round checks the wall-clock deadline. A null
// budget is unlimited.
StatusOr<DfaXsd> MinimizeXsd(const DfaXsd& xsd, Budget* budget);

// Minimizes `xsd` relative to an ambient sibling-word constraint: every
// content DFA is re-canonicalized schema-guided under `sibling_context`
// (automata/determinize.h), so two states whose content languages differ
// only on context-dead words fall into the same block and merge. The
// result is the canonical minimal XSD for the *restricted* schema — it
// validates exactly like `xsd` on documents all of whose child words are
// context-live, and rejects some documents outside the context that
// `xsd` accepted. A context that kills some content language entirely
// makes that type childless-only or unproductive; the reduction pass
// then prunes it like any other unproductive type.
StatusOr<DfaXsd> MinimizeXsdUnderContext(const DfaXsd& xsd,
                                         const Nfa& sibling_context,
                                         Budget* budget = nullptr);

// Convenience: minimize a single-type EDTD (checked) through DfaXsd form.
Edtd MinimizeStEdtd(const Edtd& edtd);

// Field-by-field comparison (alphabets must match by name).
bool XsdStructurallyEqual(const DfaXsd& a, const DfaXsd& b);

}  // namespace stap

#endif  // STAP_SCHEMA_MINIMIZE_H_
