// Programmatic EDTD construction.
//
// A thin builder over the textual format's semantics: declare types with
// labels, give each a content regex over type names, pick start types,
// and Build() compiles everything into a checked EDTD.
//
//   SchemaBuilder b;
//   b.AddType("Book", "book", "Title Chapter+");
//   b.AddType("Title", "title", "%");
//   b.AddType("Chapter", "chapter", "%");
//   b.AddStart("Book");
//   Edtd schema = b.Build();
#ifndef STAP_SCHEMA_BUILDER_H_
#define STAP_SCHEMA_BUILDER_H_

#include <string>
#include <vector>

#include "stap/schema/edtd.h"

namespace stap {

class SchemaBuilder {
 public:
  // Declares a type; `content_regex` (syntax of regex/parser.h, over type
  // names) may reference types declared later. Returns the type id.
  int AddType(const std::string& type_name, const std::string& label,
              const std::string& content_regex);

  void AddStart(const std::string& type_name);

  // Compiles content regexes and returns the schema. Dies (check failure)
  // on malformed regexes or unknown names — builders are for tests,
  // examples, and generators where inputs are program constants.
  Edtd Build() const;

 private:
  Alphabet sigma_;
  Alphabet types_;
  std::vector<int> mu_;
  std::vector<std::string> content_sources_;
  std::vector<std::string> start_names_;
};

}  // namespace stap

#endif  // STAP_SCHEMA_BUILDER_H_
