// Document Type Definitions (paper, Definition 2.1).
//
// A DTD maps each alphabet symbol to a regular language of child strings
// (stored as a DFA over Σ) plus a set of allowed root symbols.
#ifndef STAP_SCHEMA_DTD_H_
#define STAP_SCHEMA_DTD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stap/automata/alphabet.h"
#include "stap/automata/dfa.h"
#include "stap/tree/tree.h"

namespace stap {

struct Dtd {
  Alphabet sigma;
  std::vector<int> start_symbols;  // sorted set S_d ⊆ Σ
  std::vector<Dfa> content;        // content[a] over Σ, one per symbol

  // A DTD where every symbol's content language is empty-word-only and no
  // start symbols are set; callers then fill in rules.
  static Dtd LeafOnly(const Alphabet& sigma);

  int num_symbols() const { return sigma.size(); }

  // |Σ| + |S_d| + Σ_a |A_a| (paper's size measure).
  int64_t Size() const;

  // Whether `tree` satisfies this DTD.
  bool Accepts(const Tree& tree) const;

  std::string ToString() const;
};

}  // namespace stap

#endif  // STAP_SCHEMA_DTD_H_
