#include "stap/schema/reduce.h"

#include <algorithm>
#include <vector>

#include "stap/automata/minimize.h"
#include "stap/base/check.h"

namespace stap {

namespace {

// Drops all transitions on symbols not in `allowed` and trims.
Dfa RestrictToSymbols(const Dfa& dfa, const std::vector<bool>& allowed) {
  Dfa result(dfa.num_states(), dfa.num_symbols());
  if (dfa.num_states() == 0) return result;
  result.SetInitial(dfa.initial());
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.IsFinal(q)) result.SetFinal(q);
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      if (!allowed[a]) continue;
      int r = dfa.Next(q, a);
      if (r != kNoState) result.SetTransition(q, a, r);
    }
  }
  return result.Trimmed();
}

// Renumbers the symbols of `dfa` according to `remap` (old id -> new id or
// kNoSymbol) into an automaton over `new_size` symbols.
Dfa RemapSymbols(const Dfa& dfa, const std::vector<int>& remap, int new_size) {
  Dfa result(std::max(dfa.num_states(), 1), new_size);
  if (dfa.num_states() == 0) return result;
  result.SetInitial(dfa.initial());
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.IsFinal(q)) result.SetFinal(q);
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      if (remap[a] == kNoSymbol) continue;
      int r = dfa.Next(q, a);
      if (r != kNoState) result.SetTransition(q, remap[a], r);
    }
  }
  return result;
}

}  // namespace

Edtd ReduceEdtd(const Edtd& input) {
  input.CheckWellFormed();
  const int n = input.num_types();

  // Productive types: fixpoint from below. A type is productive if its
  // content language contains a word over productive types.
  std::vector<bool> productive(n, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int tau = 0; tau < n; ++tau) {
      if (productive[tau]) continue;
      if (!RestrictToSymbols(input.content[tau], productive).IsEmpty()) {
        productive[tau] = true;
        changed = true;
      }
    }
  }

  // Restrict all content models to productive types, then compute
  // reachability from the start types over "occurs in some accepted word".
  std::vector<Dfa> restricted(n);
  for (int tau = 0; tau < n; ++tau) {
    restricted[tau] = RestrictToSymbols(input.content[tau], productive);
  }
  std::vector<bool> reachable(n, false);
  std::vector<int> stack;
  for (int tau : input.start_types) {
    if (productive[tau] && !reachable[tau]) {
      reachable[tau] = true;
      stack.push_back(tau);
    }
  }
  while (!stack.empty()) {
    int tau = stack.back();
    stack.pop_back();
    const Dfa& dfa = restricted[tau];
    // All transitions of the trimmed, restricted DFA are useful, so any
    // transition symbol occurs in some accepted word.
    for (int q = 0; q < dfa.num_states(); ++q) {
      for (int t = 0; t < n; ++t) {
        if (dfa.Next(q, t) != kNoState && !reachable[t]) {
          reachable[t] = true;
          stack.push_back(t);
        }
      }
    }
  }

  // Keep reachable-and-productive types; renumber densely.
  std::vector<int> remap(n, kNoSymbol);
  Alphabet new_types;
  for (int tau = 0; tau < n; ++tau) {
    if (reachable[tau] && productive[tau]) {
      remap[tau] = new_types.Intern(input.types.Name(tau));
    }
  }
  const int new_n = new_types.size();

  Edtd result;
  result.sigma = input.sigma;
  result.types = new_types;
  result.mu.resize(new_n);
  result.content.resize(new_n);
  if (!input.content_source.empty()) result.content_source.resize(new_n);
  for (int tau = 0; tau < n; ++tau) {
    if (remap[tau] == kNoSymbol) continue;
    result.mu[remap[tau]] = input.mu[tau];
    result.content[remap[tau]] =
        Minimize(RemapSymbols(restricted[tau], remap, new_n));
    if (!input.content_source.empty() &&
        input.content_source[tau] != nullptr) {
      // A source mentioning a dropped (unproductive/unreachable) type
      // substitutes to nullptr: restricting the content language could
      // change it there, so the provenance is no longer trustworthy.
      result.content_source[remap[tau]] =
          Regex::Substitute(input.content_source[tau], remap);
    }
  }
  for (int tau : input.start_types) {
    if (remap[tau] != kNoSymbol) {
      StateSetInsert(result.start_types, remap[tau]);
    }
  }
  result.CheckWellFormed();
  return result;
}

bool IsReduced(const Edtd& edtd) {
  return ReduceEdtd(edtd).num_types() == edtd.num_types();
}

}  // namespace stap
