// Type automata (paper, Definition 2.5).
//
// The type automaton of an EDTD is a state-labeled NFA over Σ whose states
// are q_init plus the types: from q_init, symbol a goes to the start types
// labeled a; from type τ, symbol a goes to the types labeled a that occur
// in some word of d(τ). An EDTD is single-type iff its type automaton is
// deterministic (Observation 2.7(3)).
#ifndef STAP_SCHEMA_TYPE_AUTOMATON_H_
#define STAP_SCHEMA_TYPE_AUTOMATON_H_

#include <vector>

#include "stap/automata/nfa.h"
#include "stap/schema/edtd.h"

namespace stap {

struct TypeAutomaton {
  // State 0 is q_init; state 1 + τ is type τ. Over Σ, no final states.
  Nfa nfa;

  // Label of each state: kNoSymbol for q_init, μ(τ) otherwise.
  std::vector<int> state_label;

  static constexpr int kInit = 0;

  static int StateOfType(int tau) { return tau + 1; }
  static int TypeOfState(int state) { return state - 1; }

  // The set of types reached on `word` from q_init (anc-type of a node
  // whose ancestor string is `word`).
  std::vector<int> TypesAfter(const Word& word) const;

  // True if deterministic, i.e. the underlying EDTD is single-type.
  bool IsDeterministic() const;
};

// Builds the type automaton; linear in the EDTD (Observation 2.7(1)).
TypeAutomaton BuildTypeAutomaton(const Edtd& edtd);

// Single-type test (Definition 2.4 via Observation 2.7(3)).
bool IsSingleType(const Edtd& edtd);

}  // namespace stap

#endif  // STAP_SCHEMA_TYPE_AUTOMATON_H_
