#include "stap/schema/streaming.h"

#include <cstdint>

#include "stap/base/check.h"

namespace stap {

StreamingValidator::StreamingValidator(const DfaXsd* xsd) : xsd_(xsd) {
  STAP_CHECK(xsd != nullptr);
  xsd->CheckWellFormed();
}

bool StreamingValidator::StartElement(int symbol) {
  if (!ok_) return false;
  // Reject-before-negativity matters: a negative symbol promoted into an
  // unsigned comparison would wrap to a huge value and could never be
  // caught below, so test the sign first and compare magnitudes in an
  // unsigned domain that is correct whatever integer type size() returns.
  if (symbol < 0 ||
      static_cast<uint64_t>(symbol) >=
          static_cast<uint64_t>(xsd_->sigma.size())) {
    ok_ = false;
    return false;
  }
  if (stack_.empty()) {
    // Root element: one per document, from the start symbols.
    if (saw_root_ || !StateSetContains(xsd_->start_symbols, symbol)) {
      ok_ = false;
      return false;
    }
    saw_root_ = true;
  } else {
    // Advance the parent's content run.
    Frame& parent = stack_.back();
    if (parent.content_state == kNoState) {
      ok_ = false;
      return false;
    }
    parent.content_state =
        xsd_->content[parent.xsd_state].Next(parent.content_state, symbol);
    if (parent.content_state == kNoState) {
      ok_ = false;
      return false;
    }
  }
  int from = stack_.empty() ? xsd_->automaton.initial() : stack_.back().xsd_state;
  int state = xsd_->automaton.Next(from, symbol);
  if (state == kNoState) {
    ok_ = false;
    return false;
  }
  const Dfa& content = xsd_->content[state];
  stack_.push_back(
      Frame{state, content.num_states() > 0 ? content.initial() : kNoState});
  return true;
}

bool StreamingValidator::EndElement() {
  if (!ok_) return false;
  if (stack_.empty()) {
    ok_ = false;
    return false;
  }
  const Frame& frame = stack_.back();
  if (frame.content_state == kNoState ||
      !xsd_->content[frame.xsd_state].IsFinal(frame.content_state)) {
    ok_ = false;
    return false;
  }
  stack_.pop_back();
  return true;
}

bool StreamingValidator::EndDocument() {
  return ok_ && saw_root_ && stack_.empty();
}

bool ValidateStreaming(const DfaXsd& xsd, const Tree& tree) {
  StreamingValidator validator(&xsd);
  // Explicit-stack event generation: documents can be deeper than the
  // call stack allows. As in the recursive version, an element whose
  // StartElement is rejected gets no matching EndElement (the validator
  // is already latched to rejected at that point).
  struct Frame {
    const Tree* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  if (validator.StartElement(tree.label)) stack.push_back(Frame{&tree, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == frame.node->children.size()) {
      validator.EndElement();
      stack.pop_back();
      continue;
    }
    const Tree& child = frame.node->children[frame.next_child++];
    if (validator.StartElement(child.label)) stack.push_back(Frame{&child, 0});
  }
  return validator.EndDocument();
}

}  // namespace stap
