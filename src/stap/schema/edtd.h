// Extended DTDs (paper, Definition 2.2).
//
// An EDTD is a DTD over a type alphabet ∆ together with a labeling
// μ : ∆ -> Σ. EDTDs capture exactly the unranked regular tree languages;
// single-type EDTDs (Definition 2.4) are the XSD abstraction.
//
// Content models d(τ) are regular languages over ∆, stored as DFAs whose
// alphabet is the type alphabet. Most algorithms assume a *reduced* EDTD
// (Proviso 2.3): every type occurs in some accepted tree. Use
// ReduceEdtd() from schema/reduce.h to establish that invariant.
#ifndef STAP_SCHEMA_EDTD_H_
#define STAP_SCHEMA_EDTD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stap/automata/alphabet.h"
#include "stap/automata/dfa.h"
#include "stap/regex/ast.h"
#include "stap/schema/dtd.h"
#include "stap/tree/tree.h"

namespace stap {

struct Edtd {
  Alphabet sigma;                // Σ
  Alphabet types;                // ∆ (names, for printing)
  std::vector<int> mu;           // μ : type id -> symbol id
  std::vector<int> start_types;  // sorted set S_d ⊆ ∆
  std::vector<Dfa> content;      // content[τ] over ∆

  // Optional content-model provenance: the regex (over ∆) each content
  // DFA was compiled from, preserving counted repetition r{n,m} that the
  // DFA expands away. Either empty (no provenance) or sized num_types(),
  // entry-wise nullable. Invariant: content_source[τ] != nullptr implies
  // L(content_source[τ]) == L(content[τ]). Transformations that cannot
  // maintain the invariant null the entry; consumers (export, printing)
  // must treat it as a hint, never as the ground truth.
  std::vector<RegexPtr> content_source;

  // Views a DTD as the EDTD with one type per symbol.
  static Edtd FromDtd(const Dtd& dtd);

  int num_types() const { return static_cast<int>(mu.size()); }
  int num_symbols() const { return sigma.size(); }

  // |Σ| + size of the underlying DTD over ∆ (paper's size measure).
  int64_t Size() const;

  // Membership test: does some typing of `tree` satisfy the schema?
  // Runs the standard bottom-up unranked-tree-automaton evaluation,
  // polynomial in |tree| * |this|.
  bool Accepts(const Tree& tree) const;

  // The set of types assignable to the root of `subtree` when it occurs
  // as a subtree (ignores start_types). Sorted.
  std::vector<int> PossibleTypes(const Tree& subtree) const;

  // The set of types occurring in some word of L(content[tau]); sorted.
  // This is the transition relation of the type automaton (Def. 2.5).
  std::vector<int> OccurringTypes(int tau) const;

  // Structural sanity checks (sizes agree, ids in range).
  void CheckWellFormed() const;

  std::string ToString() const;
};

}  // namespace stap

#endif  // STAP_SCHEMA_EDTD_H_
