#include "stap/schema/minimize.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stap/automata/minimize.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/schema/reduce.h"
#include "stap/schema/type_automaton.h"

namespace stap {

namespace {

// Removes automaton transitions on symbols that never occur in the source
// state's content language (they can never be exercised by a valid
// document and would otherwise block state merging).
DfaXsd DropUselessTransitions(const DfaXsd& xsd) {
  DfaXsd result = xsd;
  const int num_symbols = xsd.sigma.size();
  const int init = xsd.automaton.initial();
  for (int q = 0; q < xsd.automaton.num_states(); ++q) {
    if (q == init) continue;
    Dfa trimmed = xsd.content[q].Trimmed();
    std::vector<bool> occurs(num_symbols, false);
    for (int s = 0; s < trimmed.num_states(); ++s) {
      for (int a = 0; a < num_symbols; ++a) {
        if (trimmed.Next(s, a) != kNoState) occurs[a] = true;
      }
    }
    for (int a = 0; a < num_symbols; ++a) {
      if (!occurs[a]) result.automaton.SetTransition(q, a, kNoState);
    }
  }
  // From q_init only start symbols matter.
  for (int a = 0; a < num_symbols; ++a) {
    if (!StateSetContains(xsd.start_symbols, a)) {
      result.automaton.SetTransition(init, a, kNoState);
    }
  }
  return result;
}

// BFS canonical renumbering (q_init becomes state 0).
DfaXsd Canonicalize(const DfaXsd& xsd) {
  const int n = xsd.automaton.num_states();
  const int num_symbols = xsd.sigma.size();
  const int init = xsd.automaton.initial();
  std::vector<int> remap(n, kNoState);
  std::vector<int> order = {init};
  remap[init] = 0;
  std::deque<int> queue = {init};
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int a = 0; a < num_symbols; ++a) {
      int r = xsd.automaton.Next(q, a);
      if (r != kNoState && remap[r] == kNoState) {
        remap[r] = static_cast<int>(order.size());
        order.push_back(r);
        queue.push_back(r);
      }
    }
  }
  DfaXsd result;
  result.sigma = xsd.sigma;
  result.start_symbols = xsd.start_symbols;
  result.automaton = Dfa(static_cast<int>(order.size()), num_symbols);
  result.automaton.SetInitial(0);
  result.state_label.resize(order.size());
  result.content.resize(order.size(), Dfa::EmptyLanguage(num_symbols));
  if (!xsd.content_source.empty()) result.content_source.resize(order.size());
  for (int q : order) {
    result.state_label[remap[q]] = xsd.state_label[q];
    result.content[remap[q]] = xsd.content[q];
    if (!xsd.content_source.empty()) {
      result.content_source[remap[q]] = xsd.content_source[q];
    }
    for (int a = 0; a < num_symbols; ++a) {
      int r = xsd.automaton.Next(q, a);
      if (r != kNoState && remap[r] != kNoState) {
        result.automaton.SetTransition(remap[q], a, remap[r]);
      }
    }
  }
  return result;
}

}  // namespace

DfaXsd MinimizeXsd(const DfaXsd& input) {
  StatusOr<DfaXsd> result = MinimizeXsd(input, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<DfaXsd> MinimizeXsd(const DfaXsd& input, Budget* budget) {
  // Step 1: reduce through the EDTD view; this prunes unproductive and
  // unreachable states and canonicalizes every content DFA.
  Edtd reduced = ReduceEdtd(StEdtdFromDfaXsd(input));
  DfaXsd xsd = DropUselessTransitions(DfaXsdFromStEdtd(reduced));
  const int n = xsd.automaton.num_states();
  const int num_symbols = xsd.sigma.size();

  // Step 2: initial partition by (label, content language). Content DFAs
  // are canonical minimal automata here, so structural equality decides
  // language equality. q_init always forms its own block.
  std::unordered_map<std::string, int> block_ids;
  std::vector<int> block(n);
  block[0] = 0;
  block_ids.emplace("", 0);
  for (int q = 1; q < n; ++q) {
    std::string key =
        std::to_string(xsd.state_label[q]) + "\n" + xsd.content[q].ToString();
    auto [it, inserted] = block_ids.emplace(std::move(key), block_ids.size());
    block[q] = it->second;
  }
  int num_blocks = static_cast<int>(block_ids.size());

  // Step 3: refine by successor blocks until stable (hashed signatures,
  // as in automata/minimize.cc). Refinement never grows the state count,
  // so only the wall-clock deadline can exhaust; checked once per round.
  std::vector<int> signature;
  while (true) {
    STAP_RETURN_IF_ERROR(Budget::CheckDeadline(budget));
    std::unordered_map<std::vector<int>, int, IntVectorHash> signature_ids;
    signature_ids.reserve(static_cast<size_t>(n));
    std::vector<int> next_block(n);
    for (int q = 0; q < n; ++q) {
      signature.clear();
      signature.reserve(num_symbols + 1);
      signature.push_back(block[q]);
      for (int a = 0; a < num_symbols; ++a) {
        int r = xsd.automaton.Next(q, a);
        signature.push_back(r == kNoState ? -1 : block[r]);
      }
      auto [it, inserted] =
          signature_ids.emplace(std::move(signature), signature_ids.size());
      next_block[q] = it->second;
    }
    int next_num = static_cast<int>(signature_ids.size());
    block = std::move(next_block);
    if (next_num == num_blocks) break;
    num_blocks = next_num;
  }

  // Step 4: build the quotient.
  DfaXsd quotient;
  quotient.sigma = xsd.sigma;
  quotient.start_symbols = xsd.start_symbols;
  // Renumber blocks so that q_init's block is 0.
  std::vector<int> block_state(num_blocks, kNoState);
  int next_id = 0;
  block_state[block[0]] = next_id++;
  for (int q = 1; q < n; ++q) {
    if (block_state[block[q]] == kNoState) block_state[block[q]] = next_id++;
  }
  quotient.automaton = Dfa(num_blocks, num_symbols);
  quotient.automaton.SetInitial(0);
  quotient.state_label.assign(num_blocks, kNoSymbol);
  quotient.content.assign(num_blocks, Dfa::EmptyLanguage(num_symbols));
  if (!xsd.content_source.empty()) quotient.content_source.resize(num_blocks);
  for (int q = 0; q < n; ++q) {
    int b = block_state[block[q]];
    quotient.state_label[b] = xsd.state_label[q];
    quotient.content[b] = xsd.content[q];
    if (!xsd.content_source.empty() && xsd.content_source[q] != nullptr) {
      // Merged states share one content language (the initial partition
      // keys on it), so any member's provenance serves the block.
      quotient.content_source[b] = xsd.content_source[q];
    }
    for (int a = 0; a < num_symbols; ++a) {
      int r = xsd.automaton.Next(q, a);
      if (r != kNoState) {
        quotient.automaton.SetTransition(b, a, block_state[block[r]]);
      }
    }
  }

  DfaXsd result = Canonicalize(quotient);
  result.CheckWellFormed();
  return result;
}

StatusOr<DfaXsd> MinimizeXsdUnderContext(const DfaXsd& input,
                                         const Nfa& sibling_context,
                                         Budget* budget) {
  if (sibling_context.num_symbols() != input.sigma.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "sibling_context alphabet does not match the XSD");
  }
  // Re-canonicalize every content DFA schema-guided: subsets reachable
  // only on context-dead child words collapse into the sink, and the
  // minimization quotients the result, so contents that agree on every
  // context-live word become structurally identical. MinimizeXsd's
  // block partition then merges the states they label.
  DfaXsd xsd = input;
  // Context-guided re-canonicalization rewrites the content languages
  // themselves, so any counted-source provenance would go stale.
  xsd.content_source.clear();
  const int init = xsd.automaton.initial();
  for (int q = 0; q < xsd.automaton.num_states(); ++q) {
    if (q == init) continue;
    StatusOr<Dfa> content =
        MinimizeNfa(xsd.content[q].ToNfa(), &sibling_context, budget);
    if (!content.ok()) return content.status();
    xsd.content[q] = *std::move(content);
  }
  return MinimizeXsd(xsd, budget);
}

Edtd MinimizeStEdtd(const Edtd& edtd) {
  STAP_CHECK(IsSingleType(edtd));
  return StEdtdFromDfaXsd(MinimizeXsd(DfaXsdFromStEdtd(edtd)));
}

bool XsdStructurallyEqual(const DfaXsd& a, const DfaXsd& b) {
  return a.sigma == b.sigma && a.start_symbols == b.start_symbols &&
         a.automaton == b.automaton && a.state_label == b.state_label &&
         a.content == b.content;
}

}  // namespace stap
